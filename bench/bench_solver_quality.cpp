// Experiment: Algorithm quality (§4).
//
// Compares the three parity-selection solvers on instances small enough
// for the exact optimum: LP relaxation + randomized rounding (Algorithm 1),
// the greedy/local-search baseline, and exhaustive branch-and-bound.
// Also measures randomized-rounding success rate as a function of ITER,
// the retry budget of Algorithm 1.

#include <cstdio>
#include <vector>

#include "benchdata/handwritten.hpp"
#include "common.hpp"
#include "core/exact.hpp"
#include "core/extract.hpp"
#include "kiss/kiss.hpp"
#include "sim/faults.hpp"

namespace {

ced::core::DetectabilityTable table_for(const ced::fsm::Fsm& f, int p) {
  using namespace ced;
  const fsm::FsmCircuit c =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::ExtractOptions opts;
  opts.latency = p;
  return core::extract_cases(c, faults, opts);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ced;
  (void)argc;
  (void)argv;

  std::printf("Solver quality on exactly solvable instances (p = 2)\n");
  std::printf("%-12s | %5s | %7s | %7s | %7s\n", "Circuit", "n", "exact",
              "LP+RR", "greedy");
  std::printf("%s\n", std::string(52, '-').c_str());

  std::vector<std::pair<std::string, fsm::Fsm>> machines;
  for (const auto& e : benchdata::handwritten_fsms()) {
    machines.emplace_back(e.name,
                          fsm::Fsm::from_kiss(kiss::parse(e.kiss)));
  }
  machines.emplace_back("s27", benchdata::suite_fsm("s27"));
  machines.emplace_back("tav", benchdata::suite_fsm("tav"));
  machines.emplace_back("dk14", benchdata::suite_fsm("dk14"));

  int exact_total = 0, rr_total = 0, greedy_total = 0, counted = 0;
  for (const auto& [name, f] : machines) {
    const auto table = table_for(f, 2);
    const auto exact = core::exact_min_cover(table);
    if (!exact) {
      std::printf("%-12s | %5d | (too large for exact)\n", name.c_str(),
                  table.num_bits);
      continue;
    }
    core::Algorithm1Options a1;
    a1.repair = false;  // paper-faithful: pure LP + randomized rounding
    const auto rr = core::minimize_parity_functions(table, a1);
    const auto greedy = core::greedy_cover(table);
    std::printf("%-12s | %5d | %7zu | %7zu | %7zu\n", name.c_str(),
                table.num_bits, exact->size(), rr.size(), greedy.size());
    std::fflush(stdout);
    exact_total += static_cast<int>(exact->size());
    rr_total += static_cast<int>(rr.size());
    greedy_total += static_cast<int>(greedy.size());
    ++counted;
  }
  std::printf("%s\n", std::string(52, '-').c_str());
  std::printf("totals over %d instances: exact %d, LP+RR %d, greedy %d\n\n",
              counted, exact_total, rr_total, greedy_total);

  // ---- Where the solving power comes from: an ablation of Algorithm 1's
  // stages at the optimal q (success rate over 20 seeds).
  std::printf("Algorithm 1 stage ablation at the optimal q (link_rx, p=2)\n");
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("link_rx")));
  const auto table = table_for(f, 2);
  const auto exact = core::exact_min_cover(table);
  const int q_opt = exact ? static_cast<int>(exact->size()) : 3;
  std::printf("optimal q = %d\n", q_opt);
  std::printf("%6s | %12s | %12s | %12s | %12s\n", "ITER", "rounding",
              "+row-gen", "+repair", "+drop-opt");

  auto success_rate = [&](int iter, int row_rounds, bool repair,
                          bool post_opt) {
    int successes = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      core::Algorithm1Options opts;
      opts.iter = iter;
      opts.repair = repair;
      opts.post_optimize = post_opt;
      opts.row_rounds = row_rounds;
      opts.seed = 0x1234 + static_cast<std::uint64_t>(t) * 7919;
      if (post_opt) {
        // Full Algorithm 1 + post-optimization: success = reaching q*.
        const auto sol = core::minimize_parity_functions(table, opts);
        if (static_cast<int>(sol.size()) <= q_opt) ++successes;
      } else if (core::solve_for_q(table, q_opt, opts)) {
        ++successes;
      }
    }
    return 100.0 * successes / static_cast<double>(trials);
  };

  for (int iter : {1, 5, 20, 80}) {
    std::printf("%6d | %11.0f%% | %11.0f%% | %11.0f%% | %11.0f%%\n", iter,
                success_rate(iter, 1, false, false),
                success_rate(iter, 4, false, false),
                success_rate(iter, 4, true, false),
                success_rate(iter, 4, true, true));
    std::fflush(stdout);
  }
  std::printf(
      "\nReading: rounding the fractional LP point alone rarely produces an\n"
      "exact parity cover at q = q* — the LP relaxation loses the GF(2)\n"
      "structure (Statement 5's mod-removal is tight only at integer\n"
      "points), so the binary search settles one tree high. The practical\n"
      "power comes from the drop-one-tree-and-repair post-optimization\n"
      "(last column; on by default in the pipeline), which walks a q*+1\n"
      "cover down to the optimum. The headline comparison above holds:\n"
      "the full solver matches the exact optimum within one tree on every\n"
      "instance.\n");
  return 0;
}
