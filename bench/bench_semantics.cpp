// Ablation: the paper's EC definition vs the implementable one.
//
// §3.1 defines an erroneous case from the divergence of GM(A, c) and
// BM_f(A, c) — two machines drifting apart from a shared start state
// ("machine-level"). The Fig. 3 checker, whose predictor reads the FSM's
// actual state register, can only observe the faulty logic differing from
// the fault-free logic *at the same register state* ("implementable").
//
// Machine-level tables accumulate ever-larger difference sets along a path,
// so added latency buys more there — these are the savings Table 1 reports.
// The implementable semantics is the one whose covers pass sequential
// verification (core/verify.hpp). This harness quantifies the gap: q(p)
// under both semantics, plus sequential verification of each cover with
// the real checker hardware.

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/run.hpp"
#include "core/verify.hpp"

int main(int argc, char** argv) {
  using namespace ced;
  auto circuits = bench::circuits_from_args(argc, argv);
  if (!bench::quick_mode(argc, argv) && circuits.size() > 8) {
    circuits.resize(8);  // the ablation does 2x the work per circuit
  }
  const std::vector<int> ps{1, 2, 3};

  std::printf("EC semantics ablation: machine-level (paper) vs implementable\n");
  std::printf("%-8s | %-17s | %-17s | %-10s | %-10s\n", "",
              "machine-level q", "implementable q", "ML verify", "IMPL verify");
  std::printf("%-8s | %5s %5s %5s | %5s %5s %5s | %10s | %10s\n", "Circuit",
              "p=1", "p=2", "p=3", "p=1", "p=2", "p=3", "(p=2)", "(p=2)");
  std::printf("%s\n", std::string(84, '-').c_str());

  for (const auto& name : circuits) {
    const fsm::Fsm f = benchdata::suite_fsm(name);

    core::PipelineOptions ml;
    ml.extract.semantics = core::DiffSemantics::kMachineLevel;
    const auto ml_reps = ced::run_latency_sweep(f, ps, RunConfig::wrap(ml));

    core::PipelineOptions impl;
    impl.extract.semantics = core::DiffSemantics::kImplementable;
    const auto impl_reps =
        ced::run_latency_sweep(f, ps, RunConfig::wrap(impl));

    // Sequential verification of the p=2 covers against the real checker.
    const fsm::FsmCircuit circuit =
        fsm::synthesize_fsm(f, impl.encoding, impl.synth);
    const auto faults = sim::enumerate_stuck_at(circuit.netlist);
    core::VerifyOptions vo;
    vo.walks = 6;
    vo.walk_length = 64;
    const core::CedHardware hw_ml =
        core::synthesize_ced(circuit, ml_reps[1].parities);
    const core::CedHardware hw_impl =
        core::synthesize_ced(circuit, impl_reps[1].parities);
    const auto vr_ml =
        core::verify_bounded_detection(circuit, hw_ml, faults, 2, vo);
    const auto vr_impl =
        core::verify_bounded_detection(circuit, hw_impl, faults, 2, vo);

    std::printf("%-8s | %5d %5d %5d | %5d %5d %5d | %10s | %10s\n",
                name.c_str(), ml_reps[0].num_trees, ml_reps[1].num_trees,
                ml_reps[2].num_trees, impl_reps[0].num_trees,
                impl_reps[1].num_trees, impl_reps[2].num_trees,
                vr_ml.ok() ? "OK" : "VIOLATES", vr_impl.ok() ? "OK" : "FAILS?");
    std::fflush(stdout);
  }
  std::printf("%s\n", std::string(84, '-').c_str());
  std::printf(
      "Reading: at p=1 both semantics coincide (no state drift yet).\n"
      "For p>1 the machine-level table is more optimistic (fewer trees,\n"
      "matching the paper's Table 1 trend) but its covers may miss the\n"
      "bound on real hardware; implementable covers always verify.\n");
  return 0;
}
