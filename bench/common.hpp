#pragma once

// Shared helpers for the experiment harnesses: suite selection via argv,
// aligned table printing, and cached per-circuit pipeline sweeps.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "benchdata/suite.hpp"
#include "core/pipeline.hpp"

namespace ced::bench {

/// Parses harness arguments:
///   --quick            run only the small circuits (fast smoke mode)
///   --circuits=a,b,c   explicit circuit list
/// Default: the full 16-circuit Table 1 suite.
std::vector<std::string> circuits_from_args(int argc, char** argv);

/// True when --quick was passed.
bool quick_mode(int argc, char** argv);

/// Parses --threads=N (how many workers the harness may use). Returns 0
/// when absent or non-positive, meaning "auto": the CED_THREADS environment
/// variable if set, otherwise hardware concurrency.
int threads_from_args(int argc, char** argv);

/// Parses --store=DIR: directory of a crash-safe artifact store that caches
/// extraction results between harness runs. Empty (the default) = no store.
std::string store_from_args(int argc, char** argv);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters). Returns the escaped body only —
/// the caller supplies the surrounding quotes.
std::string json_escape(std::string_view s);

/// Renders a double as a JSON number. NaN and infinities have no JSON
/// representation; they come out as "null" so emitted files always parse.
std::string json_number(double v);

/// Runs the shared-extraction latency sweep for one circuit with the given
/// latencies, printing progress to stderr. A non-empty `store_dir` routes
/// extraction through the artifact store there (resume enabled): warm
/// sweeps skip extraction, corrupt artifacts are quarantined and recomputed.
std::vector<core::PipelineReport> sweep_circuit(const std::string& name,
                                                const std::vector<int>& ps,
                                                core::PipelineOptions opts =
                                                    {},
                                                const std::string& store_dir =
                                                    {});

/// Runs sweep_circuit for every name concurrently — one circuit per worker
/// — and returns the per-circuit reports in input order, so harness tables
/// print identically at every thread count. When more than one worker runs,
/// the inner pipelines are forced serial (opts.threads = 1) to avoid
/// oversubscribing the machine; with one worker the inner thread setting
/// passes through untouched.
std::vector<std::vector<core::PipelineReport>> sweep_suite(
    const std::vector<std::string>& names, const std::vector<int>& ps,
    core::PipelineOptions opts = {}, int threads = 0,
    const std::string& store_dir = {});

/// Percent change helper: 100 * (from - to) / from (positive = reduction).
double reduction_pct(double from, double to);

/// True when any report in the sweep ran degraded (budget valve fired or
/// the solver cascade fell back); sweep_circuit already printed details.
bool any_degraded(const std::vector<core::PipelineReport>& reps);

/// "*" when the report is degraded (append to table cells so a truncated
/// row is never mistaken for a full-quality number), "" otherwise.
const char* quality_tag(const core::PipelineReport& r);

}  // namespace ced::bench
