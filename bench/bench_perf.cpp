// Perf-trajectory harness: per-circuit wall-clock of the pipeline's hot
// stages (extraction / solve / CED synthesis) at a ladder of thread counts,
// plus the final q, emitted both as a human table and as machine-readable
// JSON (BENCH_perf.json) so the repo has a perf history to track across
// changes.
//
//   bench_perf [--quick|--circuits=a,b,c] [--threads=N] [--latency=P]
//              [--out=path.json]
//
// --threads caps the ladder (default: CED_THREADS env or hardware
// concurrency); the ladder is 1, 2, 4, ... up to that cap, cap included.
// Every run at every thread count must produce the same q — the harness
// exits 1 on a determinism mismatch or a degraded run, 0 otherwise.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/parallel.hpp"

namespace {

std::string arg_value(int argc, char** argv, const char* key,
                      const char* fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

std::vector<int> thread_ladder(int max_threads) {
  std::vector<int> ladder;
  for (int t = 1; t < max_threads; t *= 2) ladder.push_back(t);
  ladder.push_back(max_threads);
  return ladder;
}

struct Run {
  int threads = 0;
  double t_synth = 0, t_extract = 0, t_solve = 0, t_ced = 0, t_total = 0;
  std::vector<int> qs;
  bool degraded = false;
};

struct CircuitPerf {
  std::string name;
  std::size_t num_cases = 0;
  std::vector<Run> runs;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ced;
  const auto circuits = bench::circuits_from_args(argc, argv);
  const int max_threads =
      resolve_threads(bench::threads_from_args(argc, argv));
  const int p_max = std::atoi(arg_value(argc, argv, "--latency", "3").c_str());
  const std::string out_path =
      arg_value(argc, argv, "--out", "BENCH_perf.json");
  std::vector<int> ps;
  for (int p = 1; p <= std::max(p_max, 1); ++p) ps.push_back(p);
  const auto ladder = thread_ladder(max_threads);

  std::printf("Pipeline wall-clock vs worker threads (latency sweep 1..%d)\n",
              p_max);
  std::printf("%-8s | %7s | %9s %9s %9s %9s | %s\n", "Circuit", "threads",
              "extract_s", "solve_s", "ced_s", "total_s", "q(1..p)");
  std::printf("%s\n", std::string(76, '-').c_str());

  std::vector<CircuitPerf> perf;
  bool failed = false;
  for (const auto& name : circuits) {
    CircuitPerf cp;
    cp.name = name;
    for (const int threads : ladder) {
      core::PipelineOptions opts;
      opts.threads = threads;
      Run run;
      run.threads = threads;
      const auto t0 = std::chrono::steady_clock::now();
      const auto reps = bench::sweep_circuit(name, ps, opts);
      run.t_total =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      for (const auto& r : reps) {
        run.qs.push_back(r.num_trees);
        run.t_solve += r.t_solve;
        run.t_ced += r.t_ced;
        run.degraded = run.degraded || r.resilience.degraded();
      }
      if (!reps.empty()) {
        run.t_synth = reps.back().t_synth;
        run.t_extract = reps.back().t_extract;  // extracted once per sweep
        cp.num_cases = reps.back().num_cases;
      }
      std::string qs_text;
      for (const int q : run.qs) {
        qs_text += (qs_text.empty() ? "" : ",") + std::to_string(q);
      }
      std::printf("%-8s | %7d | %9.3f %9.3f %9.3f %9.3f | %s%s\n",
                  name.c_str(), threads, run.t_extract, run.t_solve, run.t_ced,
                  run.t_total, qs_text.c_str(), run.degraded ? " *" : "");
      std::fflush(stdout);
      if (run.degraded) failed = true;
      if (!cp.runs.empty() && cp.runs.front().qs != run.qs) {
        std::fprintf(stderr,
                     "[bench_perf] %s: q differs between threads=%d and "
                     "threads=%d — determinism violation\n",
                     name.c_str(), cp.runs.front().threads, threads);
        failed = true;
      }
      cp.runs.push_back(std::move(run));
    }
    perf.push_back(std::move(cp));
  }

  // Headline: extraction+solve speedup at the top of the ladder on the
  // largest instance (most erroneous cases — the circuit the paper's
  // tables sweat over is also the one parallelism must pay off on).
  if (!perf.empty() && ladder.size() > 1) {
    const CircuitPerf* largest = &perf.front();
    for (const auto& cp : perf) {
      if (cp.num_cases > largest->num_cases) largest = &cp;
    }
    const Run& serial = largest->runs.front();
    const Run& wide = largest->runs.back();
    const double before = serial.t_extract + serial.t_solve;
    const double after = wide.t_extract + wide.t_solve;
    if (after > 0.0) {
      std::printf("%s\n", std::string(76, '-').c_str());
      std::printf(
          "largest circuit %s: extract+solve %.3fs @1 thread -> %.3fs @%d "
          "threads (%.2fx)\n",
          largest->name.c_str(), before, after, wide.threads, before / after);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench_perf] cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"ced-bench-perf-v1\",\n");
  std::fprintf(out, "  \"latency_max\": %d,\n", p_max);
  std::fprintf(out, "  \"hardware_threads\": %d,\n", resolve_threads(0));
  std::fprintf(out, "  \"circuits\": [\n");
  for (std::size_t c = 0; c < perf.size(); ++c) {
    const auto& cp = perf[c];
    // Names pass through json_escape and timings through json_number so the
    // file parses even with hostile circuit names or NaN/Inf timings.
    std::fprintf(out, "    {\"name\": \"%s\", \"cases\": %zu, \"runs\": [\n",
                 bench::json_escape(cp.name).c_str(), cp.num_cases);
    for (std::size_t i = 0; i < cp.runs.size(); ++i) {
      const Run& r = cp.runs[i];
      std::fprintf(out,
                   "      {\"threads\": %d, \"t_synth\": %s, "
                   "\"t_extract\": %s, \"t_solve\": %s, \"t_ced\": %s, "
                   "\"t_total\": %s, \"q\": [",
                   r.threads, bench::json_number(r.t_synth).c_str(),
                   bench::json_number(r.t_extract).c_str(),
                   bench::json_number(r.t_solve).c_str(),
                   bench::json_number(r.t_ced).c_str(),
                   bench::json_number(r.t_total).c_str());
      for (std::size_t k = 0; k < r.qs.size(); ++k) {
        std::fprintf(out, "%s%d", k ? ", " : "", r.qs[k]);
      }
      std::fprintf(out, "], \"degraded\": %s}%s\n",
                   r.degraded ? "true" : "false",
                   i + 1 < cp.runs.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", c + 1 < perf.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return failed ? 1 : 0;
}
