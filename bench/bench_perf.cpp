// Perf-trajectory harness: per-circuit wall-clock of the pipeline's hot
// stages (extraction / solve / CED synthesis) at a ladder of thread counts,
// plus the final q, emitted both as a human table and as machine-readable
// JSON (BENCH_perf.json) so the repo has a perf history to track across
// changes.
//
//   bench_perf [--quick|--circuits=a,b,c] [--threads=N] [--latency=P]
//              [--out=path.json] [--smoke]
//
// --threads caps the ladder (default: CED_THREADS env or hardware
// concurrency); the ladder is 1, 2, 4, ... up to that cap, cap included.
// Every run at every thread count must produce the same q — the harness
// exits 1 on a determinism mismatch or a degraded run, 0 otherwise.
//
// On top of the ladder, every circuit gets a solver-stage mode matrix at
// p=2, threads=1 — {bit-sliced, scalar} x {condensed, raw} — plus a
// kernel-throughput microbench (case-evaluations/s, transposed kernel vs
// the scalar popcount loop). The bit-sliced and scalar paths must agree on
// q AND on the selected parity functions byte-for-byte at fixed
// condensation; any divergence is an exit-1 failure.
//
// --smoke runs only that equivalence check (small suite by default, no
// thread ladder, no JSON): a seconds-scale CI gate that the kernel is a
// pure speedup, never a result change.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/parallel.hpp"
#include "core/coverkernel.hpp"

namespace {

std::string arg_value(int argc, char** argv, const char* key,
                      const char* fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::vector<int> thread_ladder(int max_threads) {
  std::vector<int> ladder;
  for (int t = 1; t < max_threads; t *= 2) ladder.push_back(t);
  ladder.push_back(max_threads);
  return ladder;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Run {
  int threads = 0;
  double t_synth = 0, t_extract = 0, t_solve = 0, t_ced = 0, t_total = 0;
  std::vector<int> qs;
  bool degraded = false;
};

/// One cell of the p=2 solver-stage mode matrix.
struct ModeRun {
  bool bitsliced = false;
  bool condense = false;
  double t_solve = 0;
  std::vector<ced::core::ParityFunc> parities;
  std::size_t condensed_cases = 0;
  bool degraded = false;
};

/// Kernel-throughput microbench numbers (case-evaluations per second).
struct KernelBench {
  double build_s = 0;
  double bitsliced_mcps = 0;  ///< million case-evals/s, transposed kernel
  double scalar_mcps = 0;     ///< million case-evals/s, popcount loop
};

struct CircuitPerf {
  std::string name;
  std::size_t num_cases = 0;
  std::vector<Run> runs;
  // p=2 solver-stage section (empty modes = table build failed).
  std::size_t p2_cases = 0;
  std::vector<ModeRun> modes;
  KernelBench kernel;
};

/// Synthesizes the circuit and extracts its detectability table at latency
/// `p`, serially (the mode matrix fixes threads=1 end to end).
ced::core::DetectabilityTable build_table(const std::string& name, int p) {
  using namespace ced;
  const fsm::Fsm f = benchdata::suite_fsm(name);
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto faults = sim::enumerate_stuck_at(circuit.netlist, {});
  core::ExtractOptions ex;
  ex.latency = p;
  ex.threads = 1;
  return core::extract_cases(circuit, faults, ex);
}

/// Runs the solver stage (greedy seeding + Algorithm 1, i.e. exactly what
/// the pipeline's t_solve measures) on `table` in the given mode.
ModeRun solve_mode(const ced::core::DetectabilityTable& table, bool bitsliced,
                   bool condense) {
  using namespace ced;
  ModeRun r;
  r.bitsliced = bitsliced;
  r.condense = condense;
  const core::ScopedKernelMode mode(bitsliced ? core::KernelMode::kBitsliced
                                              : core::KernelMode::kScalar);
  core::PipelineOptions opts;
  opts.threads = 1;
  opts.condense = condense;
  core::Algorithm1Stats stats;
  core::ResilienceReport resilience;
  const auto t0 = std::chrono::steady_clock::now();
  r.parities = core::select_parities_resilient(table, opts, core::Deadline{},
                                               &stats, {}, resilience);
  r.t_solve = seconds_since(t0);
  r.condensed_cases = stats.condensed_cases;
  r.degraded = resilience.degraded();
  return r;
}

const char* mode_name(const ModeRun& r) {
  if (r.bitsliced) return r.condense ? "bitsliced/condensed" : "bitsliced/raw";
  return r.condense ? "scalar/condensed" : "scalar/raw";
}

/// Deterministic beta stream for the throughput microbench (splitmix64).
std::vector<ced::core::ParityFunc> bench_betas(int n, std::size_t count) {
  std::vector<ced::core::ParityFunc> betas;
  betas.reserve(count);
  const std::uint64_t mask =
      n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  while (betas.size() < count) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const std::uint64_t beta = z & mask;
    betas.push_back(beta != 0 ? beta : 1);
  }
  return betas;
}

/// Repeats `body` until at least 50ms elapsed; returns seconds per call.
template <typename F>
double time_per_call(F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t reps = 0;
  double elapsed = 0;
  do {
    body();
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < 0.05);
  return elapsed / static_cast<double>(reps);
}

KernelBench bench_kernel(const ced::core::DetectabilityTable& table) {
  using namespace ced;
  KernelBench kb;
  if (table.cases.empty()) return kb;
  const auto betas = bench_betas(table.num_bits, 32);
  const double m = static_cast<double>(table.cases.size());
  const double evals = m * static_cast<double>(betas.size());

  std::optional<core::CoverKernel> kernel;
  kb.build_s = time_per_call([&] { kernel.emplace(table); });

  // volatile sink so the evaluation loops cannot be optimized away.
  volatile std::size_t sink = 0;
  const double t_bits = time_per_call([&] {
    std::size_t acc = 0;
    for (const core::ParityFunc beta : betas) {
      acc += kernel->coverage_count(beta);
    }
    sink = acc;
  });
  const double t_scalar = time_per_call([&] {
    std::size_t acc = 0;
    for (const core::ParityFunc beta : betas) {
      for (const core::ErroneousCase& ec : table.cases) {
        acc += core::covers(beta, ec) ? 1 : 0;
      }
    }
    sink = acc;
  });
  (void)sink;
  kb.bitsliced_mcps = t_bits > 0 ? evals / t_bits / 1e6 : 0;
  kb.scalar_mcps = t_scalar > 0 ? evals / t_scalar / 1e6 : 0;
  return kb;
}

/// Runs the p=2 mode matrix + kernel microbench for one circuit; returns
/// false on a kernel-vs-scalar result divergence (the harness must fail).
bool run_solver_modes(CircuitPerf& cp, bool with_kernel_bench) {
  using namespace ced;
  core::DetectabilityTable table;
  try {
    table = build_table(cp.name, 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench_perf] %s: p=2 table build failed: %s\n",
                 cp.name.c_str(), e.what());
    return true;  // already reported as a degraded sweep row
  }
  cp.p2_cases = table.cases.size();
  for (const bool condense : {true, false}) {
    for (const bool bitsliced : {true, false}) {
      cp.modes.push_back(solve_mode(table, bitsliced, condense));
    }
  }
  if (with_kernel_bench) cp.kernel = bench_kernel(table);

  bool ok = true;
  // Byte-identity gate: at fixed condensation, the bit-sliced and scalar
  // paths must select the exact same parity functions.
  for (std::size_t i = 0; i + 1 < cp.modes.size(); i += 2) {
    const ModeRun& bits = cp.modes[i];
    const ModeRun& scalar = cp.modes[i + 1];
    if (bits.parities != scalar.parities) {
      std::fprintf(stderr,
                   "[bench_perf] %s: %s selected q=%zu but %s selected q=%zu "
                   "with different parities — kernel/scalar divergence\n",
                   cp.name.c_str(), mode_name(bits), bits.parities.size(),
                   mode_name(scalar), scalar.parities.size());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ced;
  const bool smoke = flag_present(argc, argv, "--smoke");
  const auto circuits =
      smoke && !flag_present(argc, argv, "--quick") &&
              arg_value(argc, argv, "--circuits", "").empty()
          ? benchdata::small_suite_names()
          : bench::circuits_from_args(argc, argv);

  if (smoke) {
    // CI gate: kernel-vs-scalar q/parity equality at p=2, threads=1.
    bool ok = true;
    for (const auto& name : circuits) {
      CircuitPerf cp;
      cp.name = name;
      bool circuit_ok = run_solver_modes(cp, /*with_kernel_bench=*/false);
      for (const ModeRun& r : cp.modes) circuit_ok = circuit_ok && !r.degraded;
      ok = ok && circuit_ok;
      if (!cp.modes.empty()) {
        std::printf("[smoke] %-8s q=%zu (%zu cases, %zu condensed) %s\n",
                    name.c_str(), cp.modes.front().parities.size(),
                    cp.p2_cases, cp.modes.front().condensed_cases,
                    circuit_ok ? "ok" : "MISMATCH");
      }
    }
    std::printf("[smoke] kernel-vs-scalar equivalence: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  const int max_threads =
      resolve_threads(bench::threads_from_args(argc, argv));
  const int p_max = std::atoi(arg_value(argc, argv, "--latency", "3").c_str());
  const std::string out_path =
      arg_value(argc, argv, "--out", "BENCH_perf.json");
  std::vector<int> ps;
  for (int p = 1; p <= std::max(p_max, 1); ++p) ps.push_back(p);
  const auto ladder = thread_ladder(max_threads);

  std::printf("Pipeline wall-clock vs worker threads (latency sweep 1..%d)\n",
              p_max);
  std::printf("%-8s | %7s | %9s %9s %9s %9s | %s\n", "Circuit", "threads",
              "extract_s", "solve_s", "ced_s", "total_s", "q(1..p)");
  std::printf("%s\n", std::string(76, '-').c_str());

  std::vector<CircuitPerf> perf;
  bool failed = false;
  for (const auto& name : circuits) {
    CircuitPerf cp;
    cp.name = name;
    for (const int threads : ladder) {
      core::PipelineOptions opts;
      opts.threads = threads;
      Run run;
      run.threads = threads;
      const auto reps = bench::sweep_circuit(name, ps, opts);
      for (const auto& r : reps) {
        run.qs.push_back(r.num_trees);
        run.t_solve += r.t_solve;
        run.t_ced += r.t_ced;
        run.degraded = run.degraded || r.resilience.degraded();
      }
      if (!reps.empty()) {
        run.t_synth = reps.back().t_synth;
        run.t_extract = reps.back().t_extract;  // extracted once per sweep
        cp.num_cases = reps.back().num_cases;
      }
      // The pipeline's StageClock takes one clock sample per stage
      // boundary, so the stage laps telescope: their sum IS the pipeline
      // wall-clock, with no harness overhead or inter-stage gaps mixed in.
      run.t_total = run.t_synth + run.t_extract + run.t_solve + run.t_ced;
      std::string qs_text;
      for (const int q : run.qs) {
        qs_text += (qs_text.empty() ? "" : ",") + std::to_string(q);
      }
      std::printf("%-8s | %7d | %9.3f %9.3f %9.3f %9.3f | %s%s\n",
                  name.c_str(), threads, run.t_extract, run.t_solve, run.t_ced,
                  run.t_total, qs_text.c_str(), run.degraded ? " *" : "");
      std::fflush(stdout);
      if (run.degraded) failed = true;
      if (!cp.runs.empty() && cp.runs.front().qs != run.qs) {
        std::fprintf(stderr,
                     "[bench_perf] %s: q differs between threads=%d and "
                     "threads=%d — determinism violation\n",
                     name.c_str(), cp.runs.front().threads, threads);
        failed = true;
      }
      cp.runs.push_back(std::move(run));
    }
    // Solver-stage mode matrix + kernel throughput at p=2, threads=1.
    if (!run_solver_modes(cp, /*with_kernel_bench=*/true)) failed = true;
    for (const ModeRun& r : cp.modes) {
      std::printf("%-8s | %19s | solve %9.3fs | q=%zu%s\n", cp.name.c_str(),
                  mode_name(r), r.t_solve, r.parities.size(),
                  r.degraded ? " *" : "");
    }
    if (cp.kernel.bitsliced_mcps > 0) {
      std::printf(
          "%-8s | kernel: build %.4fs, eval %.1f Mcase/s bit-sliced vs "
          "%.1f Mcase/s scalar (%.1fx)\n",
          cp.name.c_str(), cp.kernel.build_s, cp.kernel.bitsliced_mcps,
          cp.kernel.scalar_mcps,
          cp.kernel.scalar_mcps > 0
              ? cp.kernel.bitsliced_mcps / cp.kernel.scalar_mcps
              : 0.0);
    }
    std::fflush(stdout);
    perf.push_back(std::move(cp));
  }

  // Headline 1: extraction+solve speedup at the top of the ladder on the
  // largest instance (most erroneous cases — the circuit the paper's
  // tables sweat over is also the one parallelism must pay off on).
  const CircuitPerf* largest = nullptr;
  for (const auto& cp : perf) {
    if (largest == nullptr || cp.num_cases > largest->num_cases) {
      largest = &cp;
    }
  }
  if (largest != nullptr && ladder.size() > 1) {
    const Run& serial = largest->runs.front();
    const Run& wide = largest->runs.back();
    const double before = serial.t_extract + serial.t_solve;
    const double after = wide.t_extract + wide.t_solve;
    if (after > 0.0) {
      std::printf("%s\n", std::string(76, '-').c_str());
      std::printf(
          "largest circuit %s: extract+solve %.3fs @1 thread -> %.3fs @%d "
          "threads (%.2fx)\n",
          largest->name.c_str(), before, after, wide.threads, before / after);
    }
  }
  // Headline 2: solver-stage kernel speedup on the largest instance at
  // p=2, threads=1 (the tentpole's acceptance number).
  if (largest != nullptr && largest->modes.size() == 4) {
    std::printf("%s\n", std::string(76, '-').c_str());
    for (std::size_t i = 0; i + 1 < largest->modes.size(); i += 2) {
      const ModeRun& bits = largest->modes[i];
      const ModeRun& scalar = largest->modes[i + 1];
      if (bits.t_solve > 0.0) {
        std::printf(
            "largest circuit %s (%s): solver stage %.3fs scalar -> %.3fs "
            "bit-sliced (%.2fx)\n",
            largest->name.c_str(), bits.condense ? "condensed" : "raw",
            scalar.t_solve, bits.t_solve, scalar.t_solve / bits.t_solve);
      }
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench_perf] cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"ced-bench-perf-v2\",\n");
  std::fprintf(out, "  \"latency_max\": %d,\n", p_max);
  std::fprintf(out, "  \"hardware_threads\": %d,\n", resolve_threads(0));
  std::fprintf(out, "  \"circuits\": [\n");
  for (std::size_t c = 0; c < perf.size(); ++c) {
    const auto& cp = perf[c];
    // Names pass through json_escape and timings through json_number so the
    // file parses even with hostile circuit names or NaN/Inf timings.
    std::fprintf(out, "    {\"name\": \"%s\", \"cases\": %zu, \"runs\": [\n",
                 bench::json_escape(cp.name).c_str(), cp.num_cases);
    for (std::size_t i = 0; i < cp.runs.size(); ++i) {
      const Run& r = cp.runs[i];
      std::fprintf(out,
                   "      {\"threads\": %d, \"t_synth\": %s, "
                   "\"t_extract\": %s, \"t_solve\": %s, \"t_ced\": %s, "
                   "\"t_total\": %s, \"q\": [",
                   r.threads, bench::json_number(r.t_synth).c_str(),
                   bench::json_number(r.t_extract).c_str(),
                   bench::json_number(r.t_solve).c_str(),
                   bench::json_number(r.t_ced).c_str(),
                   bench::json_number(r.t_total).c_str());
      for (std::size_t k = 0; k < r.qs.size(); ++k) {
        std::fprintf(out, "%s%d", k ? ", " : "", r.qs[k]);
      }
      std::fprintf(out, "], \"degraded\": %s}%s\n",
                   r.degraded ? "true" : "false",
                   i + 1 < cp.runs.size() ? "," : "");
    }
    std::fprintf(out, "    ],\n");
    std::fprintf(out, "     \"solver_p2\": {\"cases\": %zu, \"modes\": [\n",
                 cp.p2_cases);
    for (std::size_t i = 0; i < cp.modes.size(); ++i) {
      const ModeRun& r = cp.modes[i];
      std::fprintf(out,
                   "      {\"eval\": \"%s\", \"condense\": %s, "
                   "\"t_solve\": %s, \"q\": %zu, \"condensed_cases\": %zu, "
                   "\"degraded\": %s}%s\n",
                   r.bitsliced ? "bitsliced" : "scalar",
                   r.condense ? "true" : "false",
                   bench::json_number(r.t_solve).c_str(), r.parities.size(),
                   r.condensed_cases, r.degraded ? "true" : "false",
                   i + 1 < cp.modes.size() ? "," : "");
    }
    std::fprintf(out,
                 "    ], \"kernel\": {\"build_s\": %s, "
                 "\"bitsliced_mcps\": %s, \"scalar_mcps\": %s}}}%s\n",
                 bench::json_number(cp.kernel.build_s).c_str(),
                 bench::json_number(cp.kernel.bitsliced_mcps).c_str(),
                 bench::json_number(cp.kernel.scalar_mcps).c_str(),
                 c + 1 < perf.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return failed ? 1 : 0;
}
