// Experiment: claim C4 (§5 prose, the dk16 observation).
//
// The reduction in parity-function count and the reduction in CED hardware
// cost are not proportional: one complex parity function can cost as much
// area as several simple ones (the paper saw dk16's cost *rise* by 3.7%
// from p=2 to p=3 while the tree count fell). This harness reports both
// deltas side by side and flags anomalies where cost moves against count.

#include <cstdio>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace ced;
  const auto circuits = bench::circuits_from_args(argc, argv);
  const std::vector<int> ps{1, 2, 3};

  std::printf("Tree-count reduction vs hardware-cost reduction\n");
  std::printf("%-8s | %9s %9s | %9s %9s | %s\n", "Circuit", "dTree12%%",
              "dCost12%%", "dTree23%%", "dCost23%%", "anomaly");
  std::printf("%s\n", std::string(72, '-').c_str());

  int anomalies = 0;
  core::PipelineOptions opts;
  opts.extract.semantics = core::DiffSemantics::kMachineLevel;
  for (const auto& name : circuits) {
    const auto reps = bench::sweep_circuit(name, ps, opts);
    const double t12 =
        bench::reduction_pct(reps[0].num_trees, reps[1].num_trees);
    const double c12 = bench::reduction_pct(reps[0].ced_area, reps[1].ced_area);
    const double t23 =
        bench::reduction_pct(reps[1].num_trees, reps[2].num_trees);
    const double c23 = bench::reduction_pct(reps[1].ced_area, reps[2].ced_area);
    // Anomaly: trees went down (or equal) but the cost went up.
    const bool anomaly = (t12 >= 0 && c12 < 0) || (t23 >= 0 && c23 < 0);
    anomalies += anomaly ? 1 : 0;
    std::printf("%-8s | %8.1f%% %8.1f%% | %8.1f%% %8.1f%% | %s\n",
                name.c_str(), t12, c12, t23, c23,
                anomaly ? "cost rose while trees fell" : "-");
    std::fflush(stdout);
  }
  std::printf("%s\n", std::string(72, '-').c_str());
  std::printf(
      "%d circuit(s) show the paper's dk16-style anomaly (fewer, more\n"
      "complex parity functions costing more area). Count and cost are\n"
      "correlated but not proportional, as §5 observes.\n",
      anomalies);
  return 0;
}
