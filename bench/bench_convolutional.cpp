// Related-work experiment: convolutional-code CED vs the paper's scheme.
//
// §1 of the paper: the only previously proposed bounded-latency method uses
// convolutional codes [4][14], "yet no indication of its cost is provided.
// Unfortunately, for convolutional codes of latency more than one clock
// cycle, the method becomes cumbersome." This harness provides the missing
// cost indication: a functional convolutional checker (latency-1 key cover,
// XOR accumulators sampled every K cycles) against the paper's bounded-
// latency parity scheme at the same bound, plus a sequential measurement of
// detection escapes for each.

#include <cstdio>

#include "common.hpp"
#include "core/convolutional.hpp"
#include "core/extract.hpp"
#include "core/rng.hpp"
#include "core/run.hpp"
#include "core/verify.hpp"
#include "sim/faults.hpp"

namespace {

using namespace ced;

/// Random-walk escape measurement for the convolutional checker.
struct ConvOutcome {
  std::size_t activations = 0;
  std::size_t escapes = 0;  // activation with no error within 2 windows
};

ConvOutcome measure_conv(const fsm::FsmCircuit& circuit,
                         const core::ConvolutionalCed& ced,
                         const std::vector<sim::StuckAtFault>& faults) {
  ConvOutcome out;
  core::Rng rng(0xc04f);
  const std::uint64_t input_mask = (std::uint64_t{1} << circuit.r()) - 1;
  for (const auto& f : faults) {
    const logic::Injection inj = f.injection();
    core::ConvolutionalChecker checker(ced);
    for (int w = 0; w < 4; ++w) {
      std::uint64_t state = circuit.enc.reset_code;
      checker.reset();
      int pending = -1;
      for (int t = 0; t < 64; ++t) {
        const std::uint64_t a = rng.next() & input_mask;
        const std::uint64_t obs = circuit.eval(a, state, &inj);
        const bool err = checker.step(a, state, obs);
        if (obs != circuit.eval(a, state) && pending < 0) {
          pending = t;
          ++out.activations;
        }
        if (err) {
          pending = -1;
          state = circuit.enc.reset_code;
          checker.reset();
          continue;
        }
        if (pending >= 0 && t - pending + 1 >= 2 * ced.window) {
          ++out.escapes;
          pending = -1;
          state = circuit.enc.reset_code;
          checker.reset();
          continue;
        }
        state = circuit.next_state_of(obs);
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ced;
  auto circuits = bench::circuits_from_args(argc, argv);
  if (!bench::quick_mode(argc, argv) && circuits.size() > 10) {
    circuits.resize(10);
  }

  std::printf(
      "Convolutional-code CED (window K) vs bounded-latency parity CED\n");
  std::printf("%-8s | %4s %9s %7s | %4s %9s | %4s %9s %7s | %4s %9s\n",
              "Circuit", "qcnv", "cost(K=2)", "escapes", "q(2)", "cost(p=2)",
              "qcnv", "cost(K=3)", "escapes", "q(3)", "cost(p=3)");
  std::printf("%s\n", std::string(100, '-').c_str());

  for (const auto& name : circuits) {
    const fsm::Fsm f = benchdata::suite_fsm(name);
    core::PipelineOptions popts;
    const std::vector<int> ps{1, 2, 3};
    const auto reps = ced::run_latency_sweep(f, ps, RunConfig::wrap(popts));

    const fsm::FsmCircuit circuit =
        fsm::synthesize_fsm(f, popts.encoding, popts.synth);
    const auto faults = sim::enumerate_stuck_at(circuit.netlist);
    core::ExtractOptions ex;
    ex.latency = 1;
    const auto p1 = core::extract_cases(circuit, faults, ex);

    const auto& lib = logic::CellLibrary::mcnc();
    double conv_cost[2];
    std::size_t conv_escapes[2];
    std::size_t conv_q = 0;
    for (int i = 0; i < 2; ++i) {
      const int window = i + 2;
      const core::ConvolutionalCed ced =
          core::synthesize_convolutional(circuit, p1, window);
      conv_q = ced.keys.size();
      conv_cost[i] = ced.cost(lib).area;
      conv_escapes[i] = measure_conv(circuit, ced, faults).escapes;
    }

    std::printf(
        "%-8s | %4zu %9.1f %7zu | %4d %9.1f | %4zu %9.1f %7zu | %4d %9.1f\n",
        name.c_str(), conv_q, conv_cost[0], conv_escapes[0],
        reps[1].num_trees, reps[1].ced_area, conv_q, conv_cost[1],
        conv_escapes[1], reps[2].num_trees, reps[2].ced_area);
    std::fflush(stdout);
  }
  std::printf("%s\n", std::string(100, '-').c_str());
  std::printf(
      "Reading: the convolutional checker keeps the full latency-1 key set\n"
      "plus accumulator state, so its cost does not drop as the bound\n"
      "grows, while the paper's scheme sheds parity trees; this is the\n"
      "cost comparison the paper said was missing from [14].\n");
  return 0;
}
