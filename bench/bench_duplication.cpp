// Experiment: claim C1 (§5 prose).
//
// The basic parity-based method at latency p=1 needs, on average, far fewer
// functions (paper: ~53% fewer) and lower hardware cost (~22% lower) than
// duplicate-and-compare. This harness reproduces that comparison: for every
// circuit it reports the duplication baseline (n predicted bits, full logic
// copy + comparator + shadow register) against the p=1 parity CED.

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/duplication.hpp"

int main(int argc, char** argv) {
  using namespace ced;
  const auto circuits = bench::circuits_from_args(argc, argv);

  std::printf("Duplication baseline vs parity-based CED (latency p = 1)\n");
  std::printf("%-8s | %6s %9s | %6s %9s | %9s %9s\n", "Circuit", "dupFn",
              "dupCost", "q(p=1)", "cedCost", "fnRed%%", "costRed%%");
  std::printf("%s\n", std::string(72, '-').c_str());

  double fn_red = 0, cost_red = 0;
  std::size_t count = 0;
  core::PipelineOptions opts;
  opts.latency = 1;
  // The expensive pipeline runs fan out across circuits; the cheap
  // duplication baselines are computed serially below, in print order.
  const auto sweeps = bench::sweep_suite(circuits, {1}, opts,
                                         bench::threads_from_args(argc, argv));
  for (std::size_t c = 0; c < circuits.size(); ++c) {
    const auto& name = circuits[c];
    const fsm::Fsm f = benchdata::suite_fsm(name);
    const core::PipelineReport& rep = sweeps[c][0];

    const fsm::FsmCircuit circuit =
        fsm::synthesize_fsm(f, opts.encoding, opts.synth);
    const core::DuplicationReport dup =
        core::duplication_baseline(circuit, opts.library);

    const double fr = bench::reduction_pct(
        static_cast<double>(dup.functions), rep.num_trees);
    const double cr = bench::reduction_pct(dup.area, rep.ced_area);
    std::printf("%-8s | %6zu %9.1f | %6d %9.1f | %8.1f%% %8.1f%%\n",
                name.c_str(), dup.functions, dup.area, rep.num_trees,
                rep.ced_area, fr, cr);
    std::fflush(stdout);
    fn_red += fr;
    cost_red += cr;
    ++count;
  }

  std::printf("%s\n", std::string(72, '-').c_str());
  std::printf(
      "average: %.1f%% fewer functions, %.1f%% lower cost than duplication\n",
      fn_red / static_cast<double>(count),
      cost_red / static_cast<double>(count));
  std::printf("(paper reports ~53%% fewer functions, ~22.4%% lower cost)\n");
  return 0;
}
