#include "common.hpp"

#include <cstdlib>
#include <cstring>
#include <optional>

#include "common/parallel.hpp"
#include "core/run.hpp"
#include "obs/json.hpp"
#include "storage/store.hpp"

namespace ced::bench {

bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

int threads_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const int v = std::atoi(argv[i] + 10);
      return v >= 1 ? v : 0;
    }
  }
  return 0;
}

std::vector<std::string> circuits_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--circuits=", 11) == 0) {
      std::vector<std::string> out;
      std::string cur;
      for (const char* c = arg + 11; ; ++c) {
        if (*c == ',' || *c == '\0') {
          if (!cur.empty()) out.push_back(cur);
          cur.clear();
          if (*c == '\0') break;
        } else {
          cur.push_back(*c);
        }
      }
      return out;
    }
  }
  if (quick_mode(argc, argv)) return benchdata::small_suite_names();
  std::vector<std::string> all;
  for (const auto& e : benchdata::mcnc_suite()) all.push_back(e.name);
  return all;
}

std::string store_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--store=", 8) == 0) return argv[i] + 8;
  }
  return {};
}

std::string json_escape(std::string_view s) { return obs::json_escape(s); }

std::string json_number(double v) { return obs::json_number(v); }

std::vector<core::PipelineReport> sweep_circuit(const std::string& name,
                                                const std::vector<int>& ps,
                                                core::PipelineOptions opts,
                                                const std::string& store_dir) {
  std::fprintf(stderr, "[bench] %s ...\n", name.c_str());
  // The store (when used) is scoped to this sweep; the directory persists
  // between harness runs. Concurrent sweeps over the same directory are
  // safe: every write is atomic and every read is validated.
  std::optional<storage::ArtifactStore> store;
  std::optional<storage::StoreArchive> archive;
  if (!store_dir.empty()) {
    store.emplace(store_dir);
    archive.emplace(*store);
    opts.archive = &*archive;
    opts.resume = true;
  }
  std::vector<core::PipelineReport> reps;
  try {
    const fsm::Fsm f = benchdata::suite_fsm(name);
    reps = ced::run_latency_sweep(f, ps, RunConfig::wrap(opts));
  } catch (const std::exception& e) {
    // Unknown circuit name (or any setup failure): emit classified rows so
    // the sweep's remaining circuits still run.
    for (const int p : ps) {
      core::PipelineReport r;
      r.latency = p;
      r.resilience.status =
          Status::invalid_input(Stage::kPipeline, e.what());
      reps.push_back(r);
    }
  }
  // One oversized/misbehaving circuit must not silently poison a Table-1
  // sweep: flag every degraded row so its numbers are read as lower bounds.
  for (const core::PipelineReport& r : reps) {
    if (r.resilience.degraded()) {
      std::fprintf(stderr, "[bench] %s p=%d DEGRADED\n%s", name.c_str(),
                   r.latency, r.resilience.summary().c_str());
    }
  }
  return reps;
}

std::vector<std::vector<core::PipelineReport>> sweep_suite(
    const std::vector<std::string>& names, const std::vector<int>& ps,
    core::PipelineOptions opts, int threads, const std::string& store_dir) {
  const int workers = resolve_threads(threads);
  core::PipelineOptions inner = opts;
  if (workers > 1 && names.size() > 1) inner.threads = 1;
  std::vector<std::vector<core::PipelineReport>> out(names.size());
  parallel_for(workers, names.size(), [&](std::size_t i) {
    out[i] = sweep_circuit(names[i], ps, inner, store_dir);
  });
  return out;
}

bool any_degraded(const std::vector<core::PipelineReport>& reps) {
  for (const core::PipelineReport& r : reps) {
    if (r.resilience.degraded()) return true;
  }
  return false;
}

const char* quality_tag(const core::PipelineReport& r) {
  return r.resilience.degraded() ? "*" : "";
}

double reduction_pct(double from, double to) {
  if (from == 0.0) return 0.0;
  return 100.0 * (from - to) / from;
}

}  // namespace ced::bench
