#include "common.hpp"

#include <cstring>

namespace ced::bench {

bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

std::vector<std::string> circuits_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--circuits=", 11) == 0) {
      std::vector<std::string> out;
      std::string cur;
      for (const char* c = arg + 11; ; ++c) {
        if (*c == ',' || *c == '\0') {
          if (!cur.empty()) out.push_back(cur);
          cur.clear();
          if (*c == '\0') break;
        } else {
          cur.push_back(*c);
        }
      }
      return out;
    }
  }
  if (quick_mode(argc, argv)) return benchdata::small_suite_names();
  std::vector<std::string> all;
  for (const auto& e : benchdata::mcnc_suite()) all.push_back(e.name);
  return all;
}

std::vector<core::PipelineReport> sweep_circuit(const std::string& name,
                                                const std::vector<int>& ps,
                                                core::PipelineOptions opts) {
  std::fprintf(stderr, "[bench] %s ...\n", name.c_str());
  const fsm::Fsm f = benchdata::suite_fsm(name);
  return core::run_latency_sweep(f, ps, opts);
}

double reduction_pct(double from, double to) {
  if (from == 0.0) return 0.0;
  return 100.0 * (from - to) / from;
}

}  // namespace ced::bench
