// Extension experiment: area-aware parity selection.
//
// §5 of the paper: "the literature lacks solutions that consider the actual
// area cost of parity functions as a metric in choosing which parity
// functions to select. In the absence of such methods, the most promising
// direction is to reduce the number of parity functions." This harness
// implements and evaluates the missing method: starting from the
// count-minimal cover, a local search accepts single-bit tree edits that
// keep full coverage and reduce the *synthesized* CED area.

#include <cstdio>

#include "common.hpp"
#include "core/area_aware.hpp"
#include "core/extract.hpp"
#include "sim/faults.hpp"

int main(int argc, char** argv) {
  using namespace ced;
  auto circuits = bench::circuits_from_args(argc, argv);
  if (!bench::quick_mode(argc, argv) && circuits.size() > 10) {
    circuits.resize(10);  // each evaluation synthesizes the full checker
  }

  std::printf("Area-aware parity selection (latency p = 2)\n");
  std::printf("%-8s | %3s | %10s | %10s | %8s | %5s\n", "Circuit", "q",
              "countArea", "areaAware", "saved%%", "evals");
  std::printf("%s\n", std::string(60, '-').c_str());

  double total_saved = 0;
  int counted = 0;
  for (const auto& name : circuits) {
    const fsm::Fsm f = benchdata::suite_fsm(name);
    const fsm::FsmCircuit circuit =
        fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
    const auto faults = sim::enumerate_stuck_at(circuit.netlist);
    core::ExtractOptions ex;
    ex.latency = 2;
    const auto table = core::extract_cases(circuit, faults, ex);

    const core::AreaAwareResult r =
        core::minimize_parity_area(circuit, table);
    const double saved =
        bench::reduction_pct(r.initial_area, r.final_area);
    std::printf("%-8s | %3zu | %10.1f | %10.1f | %7.1f%% | %5d\n",
                name.c_str(), r.parities.size(), r.initial_area,
                r.final_area, saved, r.evaluations);
    std::fflush(stdout);
    total_saved += saved;
    ++counted;
  }
  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("average additional area saving at equal tree count: %.1f%%\n",
              total_saved / std::max(counted, 1));
  std::printf(
      "(the paper proposed this direction as future work; the saving comes\n"
      "on top of Algorithm 1's count minimization, confirming that count\n"
      "and area are correlated but not interchangeable objectives)\n");
  return 0;
}
