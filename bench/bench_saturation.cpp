// Experiment: claim C3 (§2 + §5).
//
// The benefit of added latency saturates: once every faulty machine has
// looped, more latency cannot add detection alternatives. The bound is the
// largest over faults of the shortest loop of the faulty product machine.
// Small, self-loop-heavy FSMs (donfile, s27, s386) saturate almost
// immediately; larger machines (pma, s298, s1488) keep improving longer.
//
// This harness reports, per circuit: the computed maximum useful latency
// and the parity-tree count q(p) for p = 1..4, whose flattening should
// align with the bound.

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/latency.hpp"
#include "core/run.hpp"
#include "sim/faults.hpp"

int main(int argc, char** argv) {
  using namespace ced;
  const auto circuits = bench::circuits_from_args(argc, argv);
  const std::vector<int> ps{1, 2, 3, 4};

  std::printf("Latency saturation: q(p) and the shortest-loop bound\n");
  std::printf("%-8s | %9s | %5s %5s %5s %5s | %s\n", "Circuit", "maxUseful",
              "q(1)", "q(2)", "q(3)", "q(4)", "saturated at");
  std::printf("%s\n", std::string(72, '-').c_str());

  for (const auto& name : circuits) {
    const fsm::Fsm f = benchdata::suite_fsm(name);
    core::PipelineOptions opts;
    opts.extract.semantics = core::DiffSemantics::kMachineLevel;
    const auto reps = ced::run_latency_sweep(f, ps, RunConfig::wrap(opts));

    const fsm::FsmCircuit circuit =
        fsm::synthesize_fsm(f, opts.encoding, opts.synth);
    const auto faults = sim::enumerate_stuck_at(circuit.netlist, opts.faults);
    core::LatencyAnalysisOptions lo;
    lo.max_latency = 4;
    const core::LatencyAnalysis la =
        core::analyze_useful_latency(circuit, faults, lo);

    // First p after which q stops strictly decreasing.
    int saturated = 1;
    for (std::size_t i = 1; i < reps.size(); ++i) {
      if (reps[i].num_trees < reps[i - 1].num_trees) {
        saturated = static_cast<int>(i) + 1;
      }
    }
    std::printf("%-8s | %9d | %5d %5d %5d %5d | p=%d\n", name.c_str(),
                la.max_useful_latency, reps[0].num_trees, reps[1].num_trees,
                reps[2].num_trees, reps[3].num_trees, saturated);
    std::fflush(stdout);
  }
  std::printf(
      "\nReading: q(p) flattens at or before the shortest-loop bound;\n"
      "self-loop-heavy profiles (donfile, s27, s386) flatten earliest.\n");
  return 0;
}
