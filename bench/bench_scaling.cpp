// Experiment: runtime scaling (implicit in §5's feasibility claim).
//
// google-benchmark microbenchmarks of the pipeline's stages as FSM size and
// the latency bound grow: detectability-table extraction, the LP solve, and
// randomized rounding + verification.

#include <benchmark/benchmark.h>

#include "benchdata/generator.hpp"
#include "core/algorithm1.hpp"
#include "core/extract.hpp"
#include "core/ilp.hpp"
#include "fsm/synthesize.hpp"
#include "lp/simplex.hpp"
#include "sim/faults.hpp"

namespace {

using namespace ced;

fsm::FsmCircuit make_circuit(int states) {
  benchdata::SyntheticSpec spec;
  spec.name = "scal";
  spec.inputs = 4;
  spec.states = states;
  spec.outputs = 4;
  spec.branches = 6;
  spec.self_loop_bias = 0.2;
  spec.seed = 42;
  return fsm::synthesize_fsm(benchdata::generate_fsm(spec),
                             fsm::EncodingKind::kBinary, {});
}

void BM_ExtractVsStates(benchmark::State& state) {
  const fsm::FsmCircuit c = make_circuit(static_cast<int>(state.range(0)));
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::ExtractOptions opts;
  opts.latency = 2;
  for (auto _ : state) {
    auto table = core::extract_cases(c, faults, opts);
    benchmark::DoNotOptimize(table.cases.size());
  }
  state.counters["faults"] = static_cast<double>(faults.size());
}
BENCHMARK(BM_ExtractVsStates)->Arg(8)->Arg(16)->Arg(32)->Unit(
    benchmark::kMillisecond);

void BM_ExtractVsLatency(benchmark::State& state) {
  const fsm::FsmCircuit c = make_circuit(16);
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::ExtractOptions opts;
  opts.latency = static_cast<int>(state.range(0));
  std::size_t cases = 0;
  for (auto _ : state) {
    auto table = core::extract_cases(c, faults, opts);
    cases = table.cases.size();
    benchmark::DoNotOptimize(cases);
  }
  state.counters["cases"] = static_cast<double>(cases);
}
BENCHMARK(BM_ExtractVsLatency)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_LpSolve(benchmark::State& state) {
  const fsm::FsmCircuit c = make_circuit(16);
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::ExtractOptions eo;
  eo.latency = 2;
  const auto table = core::extract_cases(c, faults, eo);
  std::vector<std::uint32_t> rows;
  for (std::uint32_t i = 0;
       i < std::min<std::size_t>(static_cast<std::size_t>(state.range(0)),
                                 table.cases.size());
       ++i) {
    rows.push_back(i);
  }
  for (auto _ : state) {
    auto f = core::build_lp(table, rows, 4);
    auto res = lp::solve(f.problem);
    benchmark::DoNotOptimize(res.status);
  }
  state.counters["rows"] = static_cast<double>(rows.size());
}
BENCHMARK(BM_LpSolve)->Arg(16)->Arg(32)->Arg(64)->Unit(
    benchmark::kMillisecond);

void BM_RoundAndVerify(benchmark::State& state) {
  const fsm::FsmCircuit c = make_circuit(16);
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::ExtractOptions eo;
  eo.latency = 2;
  const auto table = core::extract_cases(c, faults, eo);
  core::Algorithm1Options opts;
  opts.iter = static_cast<int>(state.range(0));
  opts.row_rounds = 1;
  opts.repair = false;
  for (auto _ : state) {
    auto sol = core::solve_for_q(table, 6, opts);
    benchmark::DoNotOptimize(sol.has_value());
  }
}
BENCHMARK(BM_RoundAndVerify)->Arg(5)->Arg(20)->Arg(40)->Unit(
    benchmark::kMillisecond);

void BM_GreedyCover(benchmark::State& state) {
  const fsm::FsmCircuit c = make_circuit(static_cast<int>(state.range(0)));
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::ExtractOptions eo;
  eo.latency = 2;
  const auto table = core::extract_cases(c, faults, eo);
  for (auto _ : state) {
    auto sol = core::greedy_cover(table);
    benchmark::DoNotOptimize(sol.size());
  }
  state.counters["cases"] = static_cast<double>(table.cases.size());
}
BENCHMARK(BM_GreedyCover)->Arg(8)->Arg(16)->Arg(32)->Unit(
    benchmark::kMillisecond);

void BM_FaultSimTransition(benchmark::State& state) {
  const fsm::FsmCircuit c = make_circuit(32);
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  std::size_t fi = 0;
  for (auto _ : state) {
    const auto inj = faults[fi % faults.size()].injection();
    auto rows = sim::simulate_all_inputs(c, 3, &inj);
    benchmark::DoNotOptimize(rows.data());
    ++fi;
  }
}
BENCHMARK(BM_FaultSimTransition)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
