// Experiment: Table 1 of the paper (plus the §5 prose averages, claim C2).
//
// For every benchmark FSM: original circuit statistics (inputs, state bits,
// outputs, gates, cost) and, for latency bounds p = 1, 2, 3, the minimum
// number of parity trees found by Algorithm 1 together with the gate count
// and standard-cell cost of the synthesized CED hardware (compaction trees
// + prediction logic + comparator + hold registers, Fig. 3).
//
// Expected shape (paper): the number of parity functions and the CED cost
// decrease monotonically (on average) as the latency bound grows, with
// diminishing returns from p=2 to p=3.

#include <cstdio>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace ced;
  const auto circuits = bench::circuits_from_args(argc, argv);
  const std::vector<int> ps{1, 2, 3};

  // The paper's detectability tables follow the GM/BM machine-level EC
  // definition of Section 3.1; use it here for fidelity (see
  // bench_semantics for the implementable-vs-paper ablation).
  core::PipelineOptions opts;
  opts.extract.semantics = core::DiffSemantics::kMachineLevel;

  std::printf(
      "Table 1: CED with bounded latency on MCNC-profile benchmark FSMs\n");
  std::printf("(machine-level EC semantics, as in the paper's Section 3.1)\n");
  std::printf(
      "%-8s | %3s %3s %3s %5s %7s | %4s %5s %7s | %4s %5s %7s | %4s %5s %7s\n",
      "Circuit", "In", "St", "Out", "Gates", "Cost", "q1", "Gat1", "Cost1",
      "q2", "Gat2", "Cost2", "q3", "Gat3", "Cost3");
  std::printf("%s\n", std::string(118, '-').c_str());

  struct Row {
    core::PipelineReport p1, p2, p3;
  };
  std::vector<Row> rows;
  bool degraded = false;

  // All circuits sweep concurrently (--threads=N / CED_THREADS); results
  // come back in input order so the table prints identically at any count.
  // --store=DIR caches extraction between runs of the harness.
  const auto sweeps =
      bench::sweep_suite(circuits, ps, opts, bench::threads_from_args(argc, argv),
                         bench::store_from_args(argc, argv));
  for (std::size_t c = 0; c < circuits.size(); ++c) {
    const auto& name = circuits[c];
    const auto& reps = sweeps[c];
    degraded = degraded || bench::any_degraded(reps);
    const auto& r1 = reps[0];
    const auto& r2 = reps[1];
    const auto& r3 = reps[2];
    std::printf(
        "%-8s | %3d %3d %3d %5zu %7.1f | %4d%s %4zu %7.1f | %4d%s %4zu %7.1f "
        "| %4d%s %4zu %7.1f\n",
        name.c_str(), r1.inputs, r1.state_bits, r1.outputs, r1.orig_gates,
        r1.orig_area, r1.num_trees, bench::quality_tag(r1), r1.ced_gates,
        r1.ced_area, r2.num_trees, bench::quality_tag(r2), r2.ced_gates,
        r2.ced_area, r3.num_trees, bench::quality_tag(r3), r3.ced_gates,
        r3.ced_area);
    std::fflush(stdout);
    rows.push_back(Row{reps[0], reps[1], reps[2]});
  }

  // ---- Claim C2: average reductions (paper: p1->p2 about 17% trees / 8%
  // cost; p2->p3 a further ~7.2% / ~7.1%).
  double tree12 = 0, cost12 = 0, tree23 = 0, cost23 = 0;
  for (const auto& r : rows) {
    tree12 += bench::reduction_pct(r.p1.num_trees, r.p2.num_trees);
    cost12 += bench::reduction_pct(r.p1.ced_area, r.p2.ced_area);
    tree23 += bench::reduction_pct(r.p2.num_trees, r.p3.num_trees);
    cost23 += bench::reduction_pct(r.p2.ced_area, r.p3.ced_area);
  }
  const double n = static_cast<double>(rows.size());
  std::printf("%s\n", std::string(118, '-').c_str());
  std::printf(
      "avg reduction p=1 -> p=2: parity trees %.1f%%, CED cost %.1f%%\n",
      tree12 / n, cost12 / n);
  std::printf(
      "avg reduction p=2 -> p=3: parity trees %.1f%%, CED cost %.1f%%\n",
      tree23 / n, cost23 / n);
  std::printf(
      "(paper reports ~17%%/~8%% and ~7.2%%/~7.1%% on the original MCNC "
      "netlists)\n");
  if (degraded) {
    std::printf(
        "note: rows marked '*' ran degraded (budget valve / solver "
        "fallback); their q is an upper bound, see stderr for details\n");
  }
  return degraded ? 1 : 0;
}
