// The paper's §2 assumption made visible: bounded-latency CED relies on
// the fault persisting for at least p clock cycles after causing an error.
// Permanent and wear-out intermittent faults qualify; single-event upsets
// (SEUs) do not. This example enumerates every activation scenario
// (fault, reachable state, input) of a p=2 protected design via the
// exhaustive campaign engine and replays it with three fault durations —
// a single cycle, p cycles, and persistent — showing that exactly the
// step-2-reliant error patterns escape the single-cycle case.

#include <cstdio>
#include <vector>

#include "benchdata/suite.hpp"
#include "core/extract.hpp"
#include "core/parity.hpp"
#include "core/run.hpp"
#include "sim/campaign.hpp"

using namespace ced;

namespace {

struct Outcome {
  std::size_t scenarios = 0;
  std::size_t caught_at_activation = 0;
  std::size_t caught_later = 0;
  std::size_t escaped = 0;
};

/// Exhaustive campaign with the fault active for `duration` cycles after
/// each activation. horizon == bound, so every activation not caught
/// within the bound lands in silent_escape — the example's "ESCAPED".
Outcome measure(const fsm::FsmCircuit& circuit, const core::CedHardware& hw,
                const std::vector<sim::StuckAtFault>& faults, int bound,
                int duration) {
  sim::CampaignOptions opts;
  opts.model = sim::FaultModel::kStuckAt;
  opts.policy = sim::CampaignPolicy::kExhaustive;
  opts.latency_bound = bound;
  opts.horizon = bound;
  opts.persistence = duration;
  const sim::CampaignReport rep =
      sim::run_campaign(circuit, hw, faults, opts);
  Outcome out;
  out.scenarios = static_cast<std::size_t>(rep.activations);
  out.caught_at_activation = static_cast<std::size_t>(rep.histogram[0]);
  out.caught_later =
      static_cast<std::size_t>(rep.detected_in_bound - rep.histogram[0]);
  out.escaped =
      static_cast<std::size_t>(rep.detected_late + rep.silent_escape);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "dk16";
  const int p = 2;
  const fsm::Fsm machine = benchdata::suite_fsm(name);

  // Sweep p=1,2 so the p=2 solution actually exploits the latency.
  core::PipelineOptions opts;
  const std::vector<int> ps{1, 2};
  const auto reps =
      ced::run_latency_sweep(machine, ps, ced::RunConfig::wrap(opts));
  const core::PipelineReport& rep = reps[1];
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(machine, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist, opts.faults);
  const core::CedHardware hw =
      core::synthesize_ced(circuit, rep.parities, opts.ced);

  core::ExtractOptions e1;
  e1.latency = 1;
  const auto t1 = core::extract_cases(circuit, faults, e1);
  const auto deferred = core::uncovered_cases(rep.parities, t1);
  std::printf("%s at latency bound p=%d: q=%d trees (latency-1 needs %d); "
              "%zu/%zu step-1 patterns deferred to step 2\n",
              name, p, rep.num_trees, reps[0].num_trees, deferred.size(),
              t1.cases.size());

  std::printf("\n%-22s | %9s | %9s | %9s | %9s\n", "fault duration",
              "scenarios", "at once", "later", "ESCAPED");
  for (int duration : {1, p, 1000}) {
    const Outcome o = measure(circuit, hw, faults, p, duration);
    std::printf("%-22s | %9zu | %9zu | %9zu | %9zu\n",
                duration == 1000 ? "persistent"
                : duration == 1  ? "1 cycle (SEU-like)"
                                 : "p cycles",
                o.scenarios, o.caught_at_activation, o.caught_later,
                o.escaped);
  }
  std::printf(
      "\nReading: persistent (and >= p-cycle) faults are always caught —\n"
      "the §2 guarantee. Single-cycle upsets escape exactly when their\n"
      "error pattern was deferred to step-2 detection, which is why the\n"
      "paper excludes SEUs unless p = 1 or a memory-based checker\n"
      "(convolutional codes) is used.\n");
  return 0;
}
