// The paper's §2 assumption made visible: bounded-latency CED relies on
// the fault persisting for at least p clock cycles after causing an error.
// Permanent and wear-out intermittent faults qualify; single-event upsets
// (SEUs) do not. This example enumerates every activation scenario
// (fault, reachable state, input) of a p=2 protected design and replays it
// twice — once with the fault lasting a single cycle, once persisting —
// showing that exactly the step-2-reliant error patterns escape the
// single-cycle case.

#include <cstdio>
#include <vector>

#include "benchdata/suite.hpp"
#include "core/extract.hpp"
#include "core/parity.hpp"
#include "core/rng.hpp"
#include "core/run.hpp"
#include "sim/fault_sim.hpp"

using namespace ced;

namespace {

struct Outcome {
  std::size_t scenarios = 0;
  std::size_t caught_at_activation = 0;
  std::size_t caught_later = 0;
  std::size_t escaped = 0;
};

/// Replays one activation (fault at state `c` under input `a`) with the
/// fault active for `duration` cycles; follows every input for up to
/// `bound` further steps (exhaustive tree, the bound is small).
bool detected_within(const fsm::FsmCircuit& circuit,
                     const core::CedHardware& hw, const logic::Injection& inj,
                     std::uint64_t state, int steps_left, int age,
                     int duration) {
  if (steps_left == 0) return false;
  const std::uint64_t inputs = std::uint64_t{1} << circuit.r();
  for (std::uint64_t a = 0; a < inputs; ++a) {
    const bool active = age < duration;
    const std::uint64_t obs = circuit.eval(a, state, active ? &inj : nullptr);
    if (hw.error_asserted(a, state, obs)) continue;  // this path is caught
    // Not detected on this input: must be caught deeper (within bound).
    if (!detected_within(circuit, hw, inj, circuit.next_state_of(obs),
                         steps_left - 1, age + 1, duration)) {
      return false;
    }
  }
  return true;
}

Outcome measure(const fsm::FsmCircuit& circuit, const core::CedHardware& hw,
                const std::vector<sim::StuckAtFault>& faults, int bound,
                int duration) {
  Outcome out;
  const auto reachable = sim::reachable_codes(circuit, circuit.enc.reset_code);
  const std::uint64_t inputs = std::uint64_t{1} << circuit.r();
  for (const auto& f : faults) {
    const logic::Injection inj = f.injection();
    for (std::uint64_t c : reachable) {
      for (std::uint64_t a = 0; a < inputs; ++a) {
        const std::uint64_t obs_f = circuit.eval(a, c, &inj);
        if (obs_f == circuit.eval(a, c)) continue;  // no activation here
        ++out.scenarios;
        if (hw.error_asserted(a, c, obs_f)) {
          ++out.caught_at_activation;
          continue;
        }
        if (detected_within(circuit, hw, inj, circuit.next_state_of(obs_f),
                            bound - 1, 1, duration)) {
          ++out.caught_later;
        } else {
          ++out.escaped;
        }
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "dk16";
  const int p = 2;
  const fsm::Fsm machine = benchdata::suite_fsm(name);

  // Sweep p=1,2 so the p=2 solution actually exploits the latency.
  core::PipelineOptions opts;
  const std::vector<int> ps{1, 2};
  const auto reps =
      ced::run_latency_sweep(machine, ps, ced::RunConfig::wrap(opts));
  const core::PipelineReport& rep = reps[1];
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(machine, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist, opts.faults);
  const core::CedHardware hw =
      core::synthesize_ced(circuit, rep.parities, opts.ced);

  core::ExtractOptions e1;
  e1.latency = 1;
  const auto t1 = core::extract_cases(circuit, faults, e1);
  const auto deferred = core::uncovered_cases(rep.parities, t1);
  std::printf("%s at latency bound p=%d: q=%d trees (latency-1 needs %d); "
              "%zu/%zu step-1 patterns deferred to step 2\n",
              name, p, rep.num_trees, reps[0].num_trees, deferred.size(),
              t1.cases.size());

  std::printf("\n%-22s | %9s | %9s | %9s | %9s\n", "fault duration",
              "scenarios", "at once", "later", "ESCAPED");
  for (int duration : {1, p, 1000}) {
    const Outcome o = measure(circuit, hw, faults, p, duration);
    std::printf("%-22s | %9zu | %9zu | %9zu | %9zu\n",
                duration == 1000 ? "persistent"
                : duration == 1  ? "1 cycle (SEU-like)"
                                 : "p cycles",
                o.scenarios, o.caught_at_activation, o.caught_later,
                o.escaped);
  }
  std::printf(
      "\nReading: persistent (and >= p-cycle) faults are always caught —\n"
      "the §2 guarantee. Single-cycle upsets escape exactly when their\n"
      "error pattern was deferred to step-2 detection, which is why the\n"
      "paper excludes SEUs unless p = 1 or a memory-based checker\n"
      "(convolutional codes) is used.\n");
  return 0;
}
