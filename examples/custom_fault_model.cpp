// The paper's method works for ANY restricted fault model, not just
// stuck-at (§1, §2): the error detectability table only needs the
// error-free and erroneous responses per transition. This example protects
// an FSM against a *custom* fault model — input-line bridging faults
// (a pair of primary inputs shorted to AND of their values) — by reusing
// the whole pipeline with a user-supplied fault list.
//
// Bridging is modeled on the netlist by rewriting: a fresh netlist is built
// in which the victim input is replaced by AND(victim, aggressor).

#include <cstdio>
#include <vector>

#include "benchdata/handwritten.hpp"
#include "core/algorithm1.hpp"
#include "core/extract.hpp"
#include "core/parity_synth.hpp"
#include "fsm/synthesize.hpp"
#include "kiss/kiss.hpp"
#include "sim/fault_sim.hpp"

using namespace ced;

namespace {

/// A stuck-at injection cannot express a bridge, but the detectability
/// table only needs *responses*. We therefore simulate the bridged machine
/// directly: for each state, evaluate the circuit on the bridged input
/// vector (victim forced to victim AND aggressor).
std::vector<std::uint64_t> bridged_rows(const fsm::FsmCircuit& c,
                                        std::uint64_t state_code, int victim,
                                        int aggressor) {
  std::vector<std::uint64_t> rows(std::uint64_t{1} << c.r());
  for (std::uint64_t a = 0; a < rows.size(); ++a) {
    const std::uint64_t va = (a >> victim) & 1;
    const std::uint64_t ag = (a >> aggressor) & 1;
    std::uint64_t bridged = a;
    bridged &= ~(std::uint64_t{1} << victim);
    bridged |= (va & ag) << victim;
    rows[a] = c.eval(bridged, state_code);
  }
  return rows;
}

}  // namespace

int main() {
  const fsm::Fsm machine =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("vending")));
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(machine, fsm::EncodingKind::kBinary, {});
  std::printf("machine: %d inputs, %d states -> %d observable bits\n",
              circuit.r(), machine.num_states(), circuit.n());

  // Build the error detectability table for every ordered bridge pair,
  // latency p = 2, directly from response differences (the general recipe
  // of Section 3.1 — EC = difference sets along every faulty path).
  const int p = 2;
  core::DetectabilityTable table;
  table.num_bits = circuit.n();
  table.latency = p;

  sim::GoldenCache golden(circuit);
  const auto codes = sim::reachable_codes(circuit, circuit.enc.reset_code);
  std::size_t num_bridges = 0;
  for (int v = 0; v < circuit.r(); ++v) {
    for (int g = 0; g < circuit.r(); ++g) {
      if (v == g) continue;
      ++num_bridges;
      for (std::uint64_t c0 : codes) {
        const auto good = golden.rows(c0);
        const auto bad = bridged_rows(circuit, c0, v, g);
        for (std::uint64_t a = 0; a < good.size(); ++a) {
          if (good[a] == bad[a]) continue;
          // One-step lookahead (p = 2): enumerate every second input.
          const std::uint64_t h1 = circuit.next_state_of(bad[a]);
          const auto good1 = golden.rows(h1);
          const auto bad1 = bridged_rows(circuit, h1, v, g);
          for (std::uint64_t a2 = 0; a2 < good1.size(); ++a2) {
            core::ErroneousCase ec;
            ec.length = 2;
            ec.diff[0] = good[a] ^ bad[a];
            ec.diff[1] = good1[a2] ^ bad1[a2];
            table.cases.push_back(ec);
          }
        }
      }
    }
  }
  // Deduplicate (the library's extractor does this internally; here we do
  // it by sorting).
  std::sort(table.cases.begin(), table.cases.end(),
            [](const core::ErroneousCase& x, const core::ErroneousCase& y) {
              return std::tie(x.length, x.diff) < std::tie(y.length, y.diff);
            });
  table.cases.erase(std::unique(table.cases.begin(), table.cases.end()),
                    table.cases.end());
  std::printf("%zu bridge faults -> %zu distinct erroneous cases (p = %d)\n",
              num_bridges, table.cases.size(), p);

  // Minimize parity functions and synthesize the checker.
  const auto parities = core::minimize_parity_functions(table);
  std::printf("parity trees needed: %zu\n", parities.size());
  const core::CedHardware hw = core::synthesize_ced(circuit, parities);
  const auto cost = hw.cost(logic::CellLibrary::mcnc());
  std::printf("CED hardware: %zu gates, area %.1f\n", cost.gates, cost.area);

  // Spot-verify: every bridge activation is caught within p transitions.
  std::size_t activations = 0, detected_in_bound = 0;
  for (int v = 0; v < circuit.r(); ++v) {
    for (int g = 0; g < circuit.r(); ++g) {
      if (v == g) continue;
      for (std::uint64_t c0 : codes) {
        const auto good = golden.rows(c0);
        const auto bad = bridged_rows(circuit, c0, v, g);
        for (std::uint64_t a = 0; a < good.size(); ++a) {
          if (good[a] == bad[a]) continue;
          ++activations;
          if (hw.error_asserted(a, c0, bad[a])) {
            ++detected_in_bound;
            continue;
          }
          // Must be caught on every second step.
          const std::uint64_t h1 = circuit.next_state_of(bad[a]);
          const auto bad1 = bridged_rows(circuit, h1, v, g);
          bool all = true;
          for (std::uint64_t a2 = 0; a2 < bad1.size(); ++a2) {
            if (!hw.error_asserted(a2, h1, bad1[a2])) all = false;
          }
          if (all) ++detected_in_bound;
        }
      }
    }
  }
  std::printf("activations: %zu, detected within p=%d: %zu -> %s\n",
              activations, p, detected_in_bound,
              activations == detected_in_bound ? "OK" : "FAILED");
  return activations == detected_in_bound ? 0 : 1;
}
