// Explores the latency/overhead trade-off on one FSM (the paper's central
// idea): sweep the detection-latency bound p, report the minimum number of
// parity trees, the CED hardware cost, and the point where the benefit
// saturates (the shortest-loop bound of §2).
//
// Usage: latency_tradeoff [suite-circuit-name]   (default: donfile)

#include <cstdio>
#include <string>
#include <vector>

#include "benchdata/suite.hpp"
#include "core/latency.hpp"
#include "core/run.hpp"
#include "sim/faults.hpp"

int main(int argc, char** argv) {
  using namespace ced;
  const std::string name = argc > 1 ? argv[1] : "donfile";
  const fsm::Fsm machine = benchdata::suite_fsm(name);
  std::printf("circuit %s: %d inputs, %d states, %d outputs\n", name.c_str(),
              machine.num_inputs(), machine.num_states(),
              machine.num_outputs());

  core::PipelineOptions opts;
  const std::vector<int> latencies{1, 2, 3, 4};
  const auto reports =
      ced::run_latency_sweep(machine, latencies, RunConfig::wrap(opts));

  // Loop analysis: the latency beyond which no further benefit is possible.
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(machine, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist, opts.faults);
  core::LatencyAnalysisOptions lo;
  lo.max_latency = 4;
  const core::LatencyAnalysis la =
      core::analyze_useful_latency(circuit, faults, lo);

  std::printf("\n%3s | %6s | %10s | %10s | %s\n", "p", "trees", "CED gates",
              "CED cost", "cost vs p=1");
  for (const auto& r : reports) {
    std::printf("%3d | %6d | %10zu | %10.1f | %+9.1f%%\n", r.latency,
                r.num_trees, r.ced_gates, r.ced_area,
                100.0 * (r.ced_area - reports[0].ced_area) /
                    reports[0].ced_area);
  }
  std::printf(
      "\nmaximum useful latency (shortest loop over faulty machines): %d\n",
      la.max_useful_latency);
  std::printf(
      "beyond that bound, every faulty path has looped and added latency\n"
      "cannot open new detection opportunities (Section 2 of the paper).\n");
  return 0;
}
