// Sequential demonstration of the bounded-latency guarantee: builds the
// full Fig. 3 architecture for a suite circuit, injects every stuck-at
// fault, drives random input walks, and prints the distribution of observed
// detection latencies (how many activations were caught after 1, 2, ... p
// transitions), confirming none exceeds the bound.
//
// Usage: verify_detection [suite-circuit-name] [latency]   (default: dk16 2)

#include <cstdio>
#include <string>

#include "benchdata/suite.hpp"
#include "core/rng.hpp"
#include "core/run.hpp"
#include "core/verify.hpp"

int main(int argc, char** argv) {
  using namespace ced;
  const std::string name = argc > 1 ? argv[1] : "dk16";
  const int p = argc > 2 ? std::atoi(argv[2]) : 2;

  const fsm::Fsm machine = benchdata::suite_fsm(name);
  const Result<RunConfig> cfg = RunConfig::Builder().latency(p).build();
  if (!cfg) {
    std::fprintf(stderr, "bad config: %s\n", cfg.status().to_text().c_str());
    return 2;
  }
  const core::PipelineOptions& opts = cfg->options();
  const core::PipelineReport rep = ced::run_pipeline(machine, *cfg);
  std::printf("%s at latency bound p=%d: %d parity trees, CED area %.1f\n",
              name.c_str(), p, rep.num_trees, rep.ced_area);

  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(machine, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist, opts.faults);
  const core::CedHardware hw =
      core::synthesize_ced(circuit, rep.parities, opts.ced);

  // Histogram of detection latencies over random walks.
  std::size_t histogram[core::kMaxLatency + 2] = {};
  std::size_t violations = 0;
  core::Rng rng(0xd15ea5e);
  const auto reachable = sim::reachable_codes(circuit, circuit.enc.reset_code);
  const std::uint64_t input_mask = (std::uint64_t{1} << circuit.r()) - 1;

  for (const auto& f : faults) {
    const logic::Injection inj = f.injection();
    for (int w = 0; w < 6; ++w) {
      std::uint64_t state = reachable[(f.net + static_cast<std::uint64_t>(w)) %
                                      reachable.size()];
      int pending = -1;
      for (int t = 0; t < 80; ++t) {
        const std::uint64_t a = rng.next() & input_mask;
        const std::uint64_t obs = circuit.eval(a, state, &inj);
        const bool err = hw.error_asserted(a, state, obs);
        const bool diff = obs != circuit.eval(a, state);
        if (diff && pending < 0) pending = t;
        if (err) {
          if (pending >= 0) {
            const int lat = t - pending + 1;
            if (lat <= p) {
              ++histogram[lat];
            } else {
              ++violations;
            }
            pending = -1;
          }
          state = circuit.enc.reset_code;  // system-level recovery
          continue;
        }
        if (pending >= 0 && t - pending + 1 >= p) {
          ++violations;
          pending = -1;
          state = circuit.enc.reset_code;
          continue;
        }
        state = circuit.next_state_of(obs);
      }
    }
  }

  std::printf("\ndetection-latency histogram (transitions from activation):\n");
  std::size_t total = 0;
  for (int l = 1; l <= p; ++l) total += histogram[l];
  for (int l = 1; l <= p; ++l) {
    std::printf("  %d cycle%s: %8zu (%.1f%%)\n", l, l == 1 ? " " : "s",
                histogram[l],
                total ? 100.0 * histogram[l] / static_cast<double>(total) : 0);
  }
  std::printf("violations of the bound: %zu -> %s\n", violations,
              violations == 0 ? "GUARANTEE HOLDS" : "FAILED");
  return violations == 0 ? 0 : 1;
}
