// Sequential demonstration of the bounded-latency guarantee: builds the
// full Fig. 3 architecture for a suite circuit, injects every stuck-at
// fault, drives random input walks through the campaign engine, and prints
// the distribution of observed detection latencies (how many activations
// were caught after 1, 2, ... p transitions), confirming none exceeds the
// bound.
//
// Usage: verify_detection [suite-circuit-name] [latency]   (default: dk16 2)

#include <cstdio>
#include <string>

#include "benchdata/suite.hpp"
#include "core/run.hpp"
#include "sim/campaign.hpp"

int main(int argc, char** argv) {
  using namespace ced;
  const std::string name = argc > 1 ? argv[1] : "dk16";
  const int p = argc > 2 ? std::atoi(argv[2]) : 2;

  const fsm::Fsm machine = benchdata::suite_fsm(name);
  const Result<RunConfig> cfg = RunConfig::Builder().latency(p).build();
  if (!cfg) {
    std::fprintf(stderr, "bad config: %s\n", cfg.status().to_text().c_str());
    return 2;
  }
  const core::PipelineOptions& opts = cfg->options();
  const core::PipelineReport rep = ced::run_pipeline(machine, *cfg);
  std::printf("%s at latency bound p=%d: %d parity trees, CED area %.1f\n",
              name.c_str(), p, rep.num_trees, rep.ced_area);

  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(machine, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist, opts.faults);
  const core::CedHardware hw =
      core::synthesize_ced(circuit, rep.parities, opts.ced);

  // Persistent stuck-at campaign on random input walks: every fault walked
  // from every reachable activation state, detection past the bound counts
  // as a violation (horizon == p, so detected_late cannot occur and any
  // slower episode lands in silent_escape).
  sim::CampaignOptions copts;
  copts.model = sim::FaultModel::kStuckAt;
  copts.policy = sim::CampaignPolicy::kRandomWalks;
  copts.latency_bound = p;
  copts.horizon = p;
  copts.walks = 4;
  copts.walk_length = 80;
  copts.seed = 0xd15ea5e;
  const sim::CampaignReport report =
      sim::run_campaign(circuit, hw, faults, copts);
  const std::size_t violations =
      static_cast<std::size_t>(report.detected_late + report.silent_escape);

  std::printf("\ndetection-latency histogram (transitions from activation):\n");
  const std::uint64_t total = report.detected_in_bound;
  for (int l = 1; l <= p; ++l) {
    const std::uint64_t h = report.histogram[static_cast<std::size_t>(l - 1)];
    std::printf("  %d cycle%s: %8zu (%.1f%%)\n", l, l == 1 ? " " : "s",
                static_cast<std::size_t>(h),
                total ? 100.0 * static_cast<double>(h) /
                            static_cast<double>(total)
                      : 0);
  }
  std::printf("violations of the bound: %zu -> %s\n", violations,
              violations == 0 ? "GUARANTEE HOLDS" : "FAILED");
  return violations == 0 ? 0 : 1;
}
