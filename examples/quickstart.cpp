// Quickstart: protect a small FSM with bounded-latency concurrent error
// detection and verify the detection-latency guarantee end to end.
//
// Flow (the paper's Fig. 3 architecture):
//   KISS2 -> state assignment -> two-level synthesis -> stuck-at fault list
//   -> error detectability table at latency p -> minimal parity functions
//   (LP relaxation + randomized rounding, Algorithm 1) -> XOR compaction
//   trees + prediction logic + comparator -> sequential verification.

#include <cstdio>

#include "benchdata/handwritten.hpp"
#include "core/run.hpp"
#include "core/verify.hpp"
#include "kiss/kiss.hpp"

int main() {
  using namespace ced;

  // 1. Load an FSM (a hand-written link-layer receiver).
  const fsm::Fsm machine =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("link_rx")));
  std::printf("FSM: %d inputs, %d states, %d outputs\n", machine.num_inputs(),
              machine.num_states(), machine.num_outputs());

  // 2. Run the pipeline at latency bound p = 2 through the validated
  // configuration builder (build() returns Result<RunConfig>; an invalid
  // knob is reported there instead of deep inside the run).
  const Result<RunConfig> cfg = RunConfig::Builder().latency(2).build();
  const core::PipelineOptions& opts = cfg->options();
  const core::PipelineReport rep = ced::run_pipeline(machine, *cfg);

  std::printf("original logic : %zu gates, area %.1f\n", rep.orig_gates,
              rep.orig_area);
  std::printf("fault model    : %zu collapsed stuck-at faults, %zu erroneous "
              "cases\n",
              rep.num_faults, rep.num_cases);
  std::printf("parity trees   : q = %d\n", rep.num_trees);
  for (std::size_t l = 0; l < rep.parities.size(); ++l) {
    std::printf("  tree %zu taps bits: ", l);
    for (int j = 0; j < rep.state_bits + rep.outputs; ++j) {
      if ((rep.parities[l] >> j) & 1) std::printf("b%d ", j + 1);
    }
    std::printf("\n");
  }
  std::printf("CED hardware   : %zu gates, area %.1f (%.1f%% of original)\n",
              rep.ced_gates, rep.ced_area, 100.0 * rep.ced_area / rep.orig_area);

  // 3. Re-synthesize and verify the bound by sequential fault simulation.
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(machine, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);
  const core::CedHardware hw =
      core::synthesize_ced(circuit, rep.parities, opts.ced);
  const core::VerifyResult vr =
      core::verify_bounded_detection(circuit, hw, faults, opts.latency);
  std::printf("verification   : %zu faults, %zu activations checked, "
              "%zu violations, %zu false alarms -> %s\n",
              vr.faults_total, vr.activations_checked, vr.violations,
              vr.false_alarms, vr.ok() ? "OK" : "FAILED");
  return vr.ok() ? 0 : 1;
}
