// Minimal tour of the FSM substrate: parse KISS2 from stdin (or a built-in
// sample), validate it, print STG statistics and the synthesized logic
// costs under three state encodings, and write normalized KISS2 back out.
//
// Usage: kiss_roundtrip < my_machine.kiss
//        kiss_roundtrip --sample

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>

#include "benchdata/handwritten.hpp"
#include "fsm/analysis.hpp"
#include "fsm/synthesize.hpp"
#include "kiss/kiss.hpp"
#include "logic/area.hpp"

int main(int argc, char** argv) {
  using namespace ced;
  std::string text;
  if (argc > 1 && std::strcmp(argv[1], "--sample") == 0) {
    text = benchdata::handwritten_kiss("arbiter");
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
    if (text.empty()) text = benchdata::handwritten_kiss("arbiter");
  }

  const kiss::Kiss2 k = kiss::parse(text);
  const fsm::Fsm machine = fsm::Fsm::from_kiss(k);
  const fsm::StgStats st = fsm::analyze_stg(machine);

  std::printf("inputs=%d outputs=%d states=%d edges=%d\n",
              machine.num_inputs(), machine.num_outputs(), st.num_states,
              st.num_edges);
  std::printf("self-loops=%d (on %d states), shortest cycle=%d, "
              "reachable=%d/%d, complete=%s\n",
              st.num_self_loops, st.states_with_self_loop, st.shortest_cycle,
              st.reachable_states, st.num_states,
              machine.is_complete() ? "yes" : "no");

  std::printf("\nsynthesized two-level logic by encoding:\n");
  const auto& lib = logic::CellLibrary::mcnc();
  struct {
    const char* name;
    fsm::EncodingKind kind;
  } encodings[] = {{"binary", fsm::EncodingKind::kBinary},
                   {"gray", fsm::EncodingKind::kGray},
                   {"spread", fsm::EncodingKind::kSpread}};
  for (const auto& e : encodings) {
    const fsm::FsmCircuit c = fsm::synthesize_fsm(machine, e.kind, {});
    const auto area = logic::measure_area(
        c.netlist, lib, static_cast<std::size_t>(c.s()));
    std::printf("  %-7s: %d state bits, %zu gates, area %.1f\n", e.name,
                c.s(), area.gates, area.area);
  }

  std::printf("\nnormalized KISS2:\n%s", kiss::write(machine.to_kiss()).c_str());
  return 0;
}
