// ced_serve — the long-running protection daemon (DESIGN.md §12).
//
//   ced_serve [--socket=PATH] [--tcp-port=N] [--metrics-port=N]
//             [--store=DIR] [--workers=N] [--queue-depth=N]
//             [--threads-per-request=N] [--checkpoint-shards=N]
//             [--degrade-on-overload] [--degraded-budget-seconds=F]
//             [--default-deadline-seconds=F] [--drain-grace-seconds=F]
//             [--chaos-job-delay-ms=N] [--chaos-shard-delay-ms=N]
//
// At least one of --socket / --tcp-port is required (--tcp-port=0 picks an
// ephemeral port; same for --metrics-port=0). Once the listeners are up
// the daemon prints exactly one machine-parsable line to stdout:
//
//   READY tcp=<port|-> metrics=<port|-> socket=<path|->
//
// and serves until SIGTERM or SIGINT, upon which it drains gracefully
// (stop accepting, let in-flight work finish within the grace period or
// checkpoint, answer queued requests with kDraining, flush manifests) and
// exits 0. kill -9 is the tested crash path: a restart with the same
// --store resumes cold extractions from their checkpoint shards.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.hpp"

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void on_shutdown_signal(int) {
  g_shutdown.store(true, std::memory_order_relaxed);
}

std::string arg_value(int argc, char** argv, const char* key,
                      const char* fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: ced_serve [--socket=PATH] [--tcp-port=N] [--metrics-port=N]\n"
      "                 [--store=DIR] [--workers=N] [--queue-depth=N]\n"
      "                 [--threads-per-request=N] [--checkpoint-shards=N]\n"
      "                 [--degrade-on-overload] [--degraded-budget-seconds=F]\n"
      "                 [--default-deadline-seconds=F] "
      "[--drain-grace-seconds=F]\n"
      "                 [--chaos-job-delay-ms=N] [--chaos-shard-delay-ms=N]\n"
      "at least one of --socket / --tcp-port is required "
      "(--tcp-port=0 = ephemeral)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help")) return usage();

  ced::serve::ServerOptions opts;
  opts.unix_socket = arg_value(argc, argv, "--socket", "");
  opts.tcp_port = std::atoi(arg_value(argc, argv, "--tcp-port", "-1").c_str());
  opts.metrics_port =
      std::atoi(arg_value(argc, argv, "--metrics-port", "-1").c_str());
  opts.store_dir = arg_value(argc, argv, "--store", "");
  opts.workers = std::atoi(arg_value(argc, argv, "--workers", "2").c_str());
  opts.queue_depth =
      std::atoi(arg_value(argc, argv, "--queue-depth", "16").c_str());
  opts.threads_per_request =
      std::atoi(arg_value(argc, argv, "--threads-per-request", "1").c_str());
  opts.checkpoint_shards =
      std::atoi(arg_value(argc, argv, "--checkpoint-shards", "0").c_str());
  opts.degrade_on_overload = has_flag(argc, argv, "--degrade-on-overload");
  opts.degraded_budget_s = std::atof(
      arg_value(argc, argv, "--degraded-budget-seconds", "0.5").c_str());
  opts.default_deadline_s = std::atof(
      arg_value(argc, argv, "--default-deadline-seconds", "0").c_str());
  opts.drain_grace_s =
      std::atof(arg_value(argc, argv, "--drain-grace-seconds", "5").c_str());
  opts.chaos_job_delay_ms =
      std::atoi(arg_value(argc, argv, "--chaos-job-delay-ms", "0").c_str());
  opts.chaos_shard_delay_ms =
      std::atoi(arg_value(argc, argv, "--chaos-shard-delay-ms", "0").c_str());
  if (opts.unix_socket.empty() && opts.tcp_port < 0) return usage();

  // Signals before start(): a supervisor that SIGTERMs immediately after
  // fork must still get a drain, not the default kill.
  struct sigaction sa = {};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  ced::serve::Server server(opts);
  const ced::Status st = server.start();
  if (!st.ok()) {
    std::fprintf(stderr, "ced_serve: %s\n", st.to_text().c_str());
    return 1;
  }

  std::printf("READY tcp=%s metrics=%s socket=%s\n",
              server.tcp_port() >= 0 ? std::to_string(server.tcp_port()).c_str()
                                     : "-",
              server.metrics_port() >= 0
                  ? std::to_string(server.metrics_port()).c_str()
                  : "-",
              opts.unix_socket.empty() ? "-" : opts.unix_socket.c_str());
  std::fflush(stdout);

  while (!g_shutdown.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "ced_serve: draining\n");
  server.drain();
  std::fprintf(stderr, "ced_serve: drained, exiting\n");
  return 0;
}
