#!/usr/bin/env bash
# Tier-1 gate plus the kernel/obs smoke checks, the deprecation build
# gate, and the sanitizer passes.
#
#   tools/ci.sh            # plain build + full ctest, then ASan+UBSan build
#                          # + full ctest under sanitizers, then TSan build
#                          # + full ctest with 4 worker threads
#   tools/ci.sh --fast     # ASan+UBSan pass runs only the resilience,
#                          # parser and storage suites (the crash-prone
#                          # surface: budget valves, malformed input, and
#                          # corrupt-artifact fault injection); TSan pass
#                          # runs only the concurrency-bearing suites
#                          # (parallel extraction, pipeline, resume)
#
# Run from anywhere; paths resolve relative to the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier-1: plain build + tests =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

echo "== solver kernel: bit-sliced vs scalar q-equality =="
# The cover kernel must be a pure speedup: the bit-sliced and scalar paths
# have to select identical parities on the small suite (exit 1 otherwise).
./build/bench/bench_perf --smoke

echo "== obs smoke: exporters parse, q unaffected =="
# Observability must be write-only: run s1488 p=2 with and without the
# collectors, assert the JSON exports parse and carry real data, and that
# the printed parities are identical (the exports add information, never
# perturb the answer).
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
./build/tools/ced_cli generate --suite=s1488 > "$obs_tmp/s1488.kiss"
./build/tools/ced_cli protect "$obs_tmp/s1488.kiss" --latency=2 --threads=4 \
    > "$obs_tmp/plain.out"
./build/tools/ced_cli protect "$obs_tmp/s1488.kiss" --latency=2 --threads=4 \
    --metrics-out="$obs_tmp/m.json" --trace-out="$obs_tmp/t.json" \
    --prom-out="$obs_tmp/p.prom" > "$obs_tmp/obs.out"
python3 - "$obs_tmp" <<'PYEOF'
import json, sys
d = sys.argv[1]
m = json.load(open(d + "/m.json"))
t = json.load(open(d + "/t.json"))
assert m["counters"].get("ced_extract_cases_total", 0) > 0, \
    "metrics JSON parsed but carries no extraction counters"
assert any(s["name"] == "pipeline" for s in t["spans"]), \
    "trace JSON parsed but has no pipeline root span"
assert any(l.startswith("# TYPE") for l in open(d + "/p.prom")), \
    "Prometheus exposition has no TYPE lines"
PYEOF
grep -E 'q=|mask' "$obs_tmp/plain.out" > "$obs_tmp/plain.q"
grep -E 'q=|mask' "$obs_tmp/obs.out" > "$obs_tmp/obs.q"
diff -u "$obs_tmp/plain.q" "$obs_tmp/obs.q" \
  || { echo "obs run changed q/parities"; exit 1; }

echo "== deprecation gate: in-tree code uses only the new API =="
# The old core::run_pipeline / core::run_latency_sweep signatures are
# [[deprecated]] shims. Recompile everything with the warning promoted to
# an error so no in-tree caller can quietly regress (the one sanctioned
# shim-equivalence test suppresses the warning with a pragma).
cmake -B build-deprec -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-Werror=deprecated-declarations" >/dev/null
cmake --build build-deprec -j "$jobs"

echo "== sanitizers: ASan + UBSan =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$jobs"
if [[ "$fast" == 1 ]]; then
  ctest --preset asan-ubsan -j "$jobs" -R 'Resilience|KissMalformed|KissParse|Storage'
else
  ctest --preset asan-ubsan -j "$jobs"
fi

echo "== sanitizers: TSan (CED_THREADS=4) =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs"
if [[ "$fast" == 1 ]]; then
  ctest --preset tsan -j "$jobs" -R 'Parallel|Resilience|Pipeline|Resume'
else
  ctest --preset tsan -j "$jobs"
fi

echo "ci: all green"
