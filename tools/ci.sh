#!/usr/bin/env bash
# Tier-1 gate plus the kernel/obs smoke checks, the deprecation build
# gate, and the sanitizer passes.
#
#   tools/ci.sh            # plain build + full ctest, then ASan+UBSan build
#                          # + full ctest under sanitizers, then TSan build
#                          # + full ctest with 4 worker threads
#   tools/ci.sh --fast     # ASan+UBSan pass runs only the resilience,
#                          # parser and storage suites (the crash-prone
#                          # surface: budget valves, malformed input, and
#                          # corrupt-artifact fault injection); TSan pass
#                          # runs only the concurrency-bearing suites
#                          # (parallel extraction, pipeline, resume)
#
# Run from anywhere; paths resolve relative to the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier-1: plain build + tests =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

echo "== solver kernel: bit-sliced vs scalar q-equality =="
# The cover kernel must be a pure speedup: the bit-sliced and scalar paths
# have to select identical parities on the small suite (exit 1 otherwise).
./build/bench/bench_perf --smoke

echo "== obs smoke: exporters parse, q unaffected =="
# Observability must be write-only: run s1488 p=2 with and without the
# collectors, assert the JSON exports parse and carry real data, and that
# the printed parities are identical (the exports add information, never
# perturb the answer).
obs_tmp=$(mktemp -d)
serve_pid=""
trap '[[ -n "$serve_pid" ]] && kill -9 "$serve_pid" 2>/dev/null; rm -rf "$obs_tmp"' EXIT
./build/tools/ced_cli generate --suite=s1488 > "$obs_tmp/s1488.kiss"
./build/tools/ced_cli protect "$obs_tmp/s1488.kiss" --latency=2 --threads=4 \
    > "$obs_tmp/plain.out"
./build/tools/ced_cli protect "$obs_tmp/s1488.kiss" --latency=2 --threads=4 \
    --metrics-out="$obs_tmp/m.json" --trace-out="$obs_tmp/t.json" \
    --prom-out="$obs_tmp/p.prom" > "$obs_tmp/obs.out"
python3 - "$obs_tmp" <<'PYEOF'
import json, sys
d = sys.argv[1]
m = json.load(open(d + "/m.json"))
t = json.load(open(d + "/t.json"))
assert m["counters"].get("ced_extract_cases_total", 0) > 0, \
    "metrics JSON parsed but carries no extraction counters"
assert any(s["name"] == "pipeline" for s in t["spans"]), \
    "trace JSON parsed but has no pipeline root span"
assert any(l.startswith("# TYPE") for l in open(d + "/p.prom")), \
    "Prometheus exposition has no TYPE lines"
PYEOF
grep -E 'q=|mask' "$obs_tmp/plain.out" > "$obs_tmp/plain.q"
grep -E 'q=|mask' "$obs_tmp/obs.out" > "$obs_tmp/obs.q"
diff -u "$obs_tmp/plain.q" "$obs_tmp/obs.q" \
  || { echo "obs run changed q/parities"; exit 1; }

echo "== serve smoke: cold/warm protect, metrics endpoint, drain =="
# The daemon must agree with the CLI (same q and parities for the same
# machine), serve the repeat request from the store, expose Prometheus
# metrics over HTTP, and exit 0 on a SIGTERM drain.
./build/tools/ced_cli generate --states=16 --inputs=3 --outputs=2 --seed=11 \
    > "$obs_tmp/serve.kiss"
./build/tools/ced_serve --tcp-port=0 --metrics-port=0 \
    --store="$obs_tmp/serve-store" > "$obs_tmp/serve.ready" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  grep -q '^READY' "$obs_tmp/serve.ready" 2>/dev/null && break
  sleep 0.05
done
sport=$(sed -n 's/^READY tcp=\([0-9]*\).*/\1/p' "$obs_tmp/serve.ready")
mport=$(sed -n 's/^READY.*metrics=\([0-9]*\).*/\1/p' "$obs_tmp/serve.ready")
[[ -n "$sport" && -n "$mport" ]] || { echo "ced_serve never became ready"; exit 1; }
./build/tools/ced_client protect "$obs_tmp/serve.kiss" --tcp-port="$sport" \
    --latency=3 > "$obs_tmp/serve-cold.out"
./build/tools/ced_client protect "$obs_tmp/serve.kiss" --tcp-port="$sport" \
    --latency=3 > "$obs_tmp/serve-warm.out"
grep -q '\[cached\]' "$obs_tmp/serve-warm.out" \
  || { echo "repeat protect was not served from the store"; exit 1; }
./build/tools/ced_cli protect "$obs_tmp/serve.kiss" --latency=3 \
    > "$obs_tmp/serve-direct.out"
for f in serve-cold serve-warm serve-direct; do
  grep -E 'q=|mask' "$obs_tmp/$f.out" | sed 's/ \[[a-z]*\]//g' \
      > "$obs_tmp/$f.q"
done
diff -u "$obs_tmp/serve-direct.q" "$obs_tmp/serve-cold.q" \
  || { echo "daemon q/parities diverge from ced_cli"; exit 1; }
diff -u "$obs_tmp/serve-cold.q" "$obs_tmp/serve-warm.q" \
  || { echo "warm answer diverges from cold"; exit 1; }
python3 - "$mport" <<'PYEOF'
import sys, urllib.request
url = "http://127.0.0.1:%s/metrics" % sys.argv[1]
text = urllib.request.urlopen(url, timeout=5).read().decode()
def counter(name):
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    raise AssertionError("metric %s missing from scrape" % name)
assert counter("ced_serve_cold_misses_total") == 1, "expected exactly 1 cold miss"
assert counter("ced_serve_warm_hits_total") == 1, "expected exactly 1 warm hit"
assert any(l.startswith("# TYPE") for l in text.splitlines()), "no TYPE lines"
print("metrics scrape: 1 cold miss, 1 warm hit")
PYEOF
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "SIGTERM drain exited nonzero"; exit 1; }
serve_pid=""

echo "== campaign smoke: empirical bounded-latency gate =="
# Protect a small Table-1 circuit, then *prove the bound empirically*: the
# exhaustive campaign drives every persistent stuck-at fault over every
# bounded input path and must classify zero episodes detected_late or
# silent_escape. The verdict artifact must be byte-identical at 1 vs 4
# threads, and a campaign interrupted by the deterministic shard valve
# (the reproducible analogue of the kill -9 chaos_serve.sh throws at the
# daemon) must resume from its checkpoints to the same bytes.
./build/tools/ced_cli generate --suite=dk16 > "$obs_tmp/dk16.kiss"
for t in 1 4; do
  ./build/tools/ced_cli protect "$obs_tmp/dk16.kiss" --latency=2 \
      --store="$obs_tmp/camp-$t" > /dev/null
  ./build/tools/ced_cli campaign "$obs_tmp/dk16.kiss" --latency=2 \
      --store="$obs_tmp/camp-$t" --threads="$t" \
      --json-out="$obs_tmp/camp-$t.json" > "$obs_tmp/camp-$t.out"
done
python3 - "$obs_tmp/camp-1.json" <<'PYEOF'
import json, sys
c = json.load(open(sys.argv[1]))["campaigns"][0]
assert c["model"] == "stuck-at" and c["policy"] == "exhaustive", c
assert c["hard_guarantee"] and not c["truncated"], c
assert c["detected_late"] == 0, "detected_late episodes: %d" % c["detected_late"]
assert c["silent_escape"] == 0, "silent escapes: %d" % c["silent_escape"]
assert c["activations"] > 0 and c["max_latency"] <= c["latency_bound"], c
print("campaign gate: %d units, %d activations, max latency %d <= p=%d"
      % (c["units_judged"], c["activations"], c["max_latency"],
         c["latency_bound"]))
PYEOF
cmp "$obs_tmp"/camp-1/camp-*.ced "$obs_tmp"/camp-4/camp-*.ced \
  || { echo "campaign verdicts differ across thread counts"; exit 1; }
./build/tools/ced_cli protect "$obs_tmp/dk16.kiss" --latency=2 \
    --store="$obs_tmp/camp-r" > /dev/null
if ./build/tools/ced_cli campaign "$obs_tmp/dk16.kiss" --latency=2 \
    --store="$obs_tmp/camp-r" --max-new-shards=2 \
    --json-out="$obs_tmp/camp-trunc.json" > "$obs_tmp/camp-trunc.out"; then
  echo "interrupted campaign did not report truncation"; exit 1
fi
./build/tools/ced_cli campaign "$obs_tmp/dk16.kiss" --latency=2 \
    --store="$obs_tmp/camp-r" --resume \
    --json-out="$obs_tmp/camp-resume.json" > "$obs_tmp/camp-resume.out"
cmp "$obs_tmp"/camp-r/camp-*.ced "$obs_tmp"/camp-1/camp-*.ced \
  || { echo "resumed campaign verdicts diverge from the clean run"; exit 1; }

echo "== deprecation gate: in-tree code uses only the new API =="
# The old core::run_pipeline / core::run_latency_sweep signatures are
# [[deprecated]] shims. Recompile everything with the warning promoted to
# an error so no in-tree caller can quietly regress (the one sanctioned
# shim-equivalence test suppresses the warning with a pragma).
cmake -B build-deprec -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-Werror=deprecated-declarations" >/dev/null
cmake --build build-deprec -j "$jobs"

echo "== sanitizers: ASan + UBSan =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$jobs"
if [[ "$fast" == 1 ]]; then
  ctest --preset asan-ubsan -j "$jobs" -R 'Resilience|KissMalformed|KissParse|Storage'
else
  ctest --preset asan-ubsan -j "$jobs"
fi

echo "== sanitizers: TSan (CED_THREADS=4) =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs"
if [[ "$fast" == 1 ]]; then
  ctest --preset tsan -j "$jobs" \
      -R 'Parallel|Resilience|Pipeline|Resume|Serve|Campaign'
else
  ctest --preset tsan -j "$jobs"
fi

echo "== campaign under TSan: 4-thread shard fan-out is race-free =="
# Rerun the campaign gate's circuit against the TSan-instrumented CLI so
# the parallel_for shard fan-out, checkpoint saves and metric shards are
# exercised as a data-race check, not just for correctness.
./build-tsan/tools/ced_cli protect "$obs_tmp/dk16.kiss" --latency=2 \
    --store="$obs_tmp/camp-tsan" > /dev/null
./build-tsan/tools/ced_cli campaign "$obs_tmp/dk16.kiss" --latency=2 \
    --store="$obs_tmp/camp-tsan" --threads=4 \
    --json-out="$obs_tmp/camp-tsan.json" > "$obs_tmp/camp-tsan.out"
cmp "$obs_tmp"/camp-tsan/camp-*.ced "$obs_tmp"/camp-1/camp-*.ced \
  || { echo "TSan campaign verdicts diverge from the plain build"; exit 1; }

echo "== chaos: crash/overload/drain harness against the TSan daemon =="
# Run the full chaos suite (kill -9 + resume, saturation, drain, wire
# garbage, store corruption) against the TSan-instrumented binaries so
# every recovery path is also a data-race check.
tools/chaos_serve.sh build-tsan

echo "ci: all green"
