#!/usr/bin/env bash
# Tier-1 gate plus the sanitizer passes.
#
#   tools/ci.sh            # plain build + full ctest, then ASan+UBSan build
#                          # + full ctest under sanitizers, then TSan build
#                          # + full ctest with 4 worker threads
#   tools/ci.sh --fast     # ASan+UBSan pass runs only the resilience,
#                          # parser and storage suites (the crash-prone
#                          # surface: budget valves, malformed input, and
#                          # corrupt-artifact fault injection); TSan pass
#                          # runs only the concurrency-bearing suites
#                          # (parallel extraction, pipeline, resume)
#
# Run from anywhere; paths resolve relative to the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier-1: plain build + tests =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

echo "== solver kernel: bit-sliced vs scalar q-equality =="
# The cover kernel must be a pure speedup: the bit-sliced and scalar paths
# have to select identical parities on the small suite (exit 1 otherwise).
./build/bench/bench_perf --smoke

echo "== sanitizers: ASan + UBSan =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$jobs"
if [[ "$fast" == 1 ]]; then
  ctest --preset asan-ubsan -j "$jobs" -R 'Resilience|KissMalformed|KissParse|Storage'
else
  ctest --preset asan-ubsan -j "$jobs"
fi

echo "== sanitizers: TSan (CED_THREADS=4) =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs"
if [[ "$fast" == 1 ]]; then
  ctest --preset tsan -j "$jobs" -R 'Parallel|Resilience|Pipeline|Resume'
else
  ctest --preset tsan -j "$jobs"
fi

echo "ci: all green"
