#!/usr/bin/env bash
# Deterministic chaos harness for ced_serve (ISSUE 6 acceptance): every
# failure the daemon claims to survive is injected here for real, from
# outside the process —
#
#   1. kill -9 mid-cold-extraction, restart, retry: the retried request
#      must resume from the persisted checkpoint shards and produce
#      parities byte-identical to a direct `ced_cli protect` of the same
#      machine (the crash must cost time, never answers).
#   2. queue saturation: overflow requests get a structured kOverloaded
#      (exit 3 with an 'overloaded' diagnostic), the daemon never crashes.
#   3. SIGTERM drain: the daemon stops accepting, finishes in-flight work,
#      stores its manifest, and exits 0.
#   4. wire garbage: oversized length prefixes, garbage JSON, and a client
#      that disconnects mid-frame — all answered structurally or absorbed.
#   5. store corruption: a flipped byte in a cached artifact is
#      quarantined and recomputed, and the answer still matches.
#
# Usage: tools/chaos_serve.sh [BUILD_DIR]   (default: build)
# Exits 0 only if every scenario holds.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVE="$BUILD/tools/ced_serve"
CLIENT="$BUILD/tools/ced_client"
CLI="$BUILD/tools/ced_cli"
[[ -x "$SERVE" && -x "$CLIENT" && -x "$CLI" ]] \
  || { echo "chaos: binaries missing under $BUILD/tools"; exit 1; }

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "chaos: FAIL — $1"; exit 1; }

# Starts the daemon with the given extra flags; sets $daemon_pid and $port.
start_daemon() {
  : > "$tmp/daemon.out"
  "$SERVE" --tcp-port=0 --metrics-port=0 "$@" > "$tmp/daemon.out" 2>> "$tmp/daemon.err" &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    if grep -q '^READY' "$tmp/daemon.out" 2>/dev/null; then break; fi
    kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died on startup"
    sleep 0.05
  done
  grep -q '^READY' "$tmp/daemon.out" || fail "daemon never became ready"
  port=$(sed -n 's/^READY tcp=\([0-9]*\).*/\1/p' "$tmp/daemon.out")
  [[ -n "$port" ]] || fail "could not parse daemon port"
}

# A machine big enough that extraction takes multiple checkpoint shards.
"$CLI" generate --states=24 --inputs=3 --outputs=2 --seed=5 > "$tmp/m.kiss"

echo "chaos: reference run (direct ced_cli protect)"
"$CLI" protect "$tmp/m.kiss" --latency=3 --store="$tmp/ref-store" \
    > "$tmp/ref.out"
grep 'mask' "$tmp/ref.out" > "$tmp/ref.masks"
[[ -s "$tmp/ref.masks" ]] || fail "reference run produced no parities"

echo "chaos: scenario 1 — kill -9 mid-cold-extraction, restart, resume"
# The per-shard delay stretches extraction so the kill lands mid-flight.
start_daemon --store="$tmp/store" --checkpoint-shards=8 \
    --chaos-shard-delay-ms=120
"$CLIENT" protect "$tmp/m.kiss" --tcp-port="$port" --latency=3 --retries=1 \
    > "$tmp/doomed.out" 2>&1 &
doomed=$!
sleep 0.6                   # a few shards persist; extraction is not done
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
wait "$doomed" && fail "client succeeded against a kill -9'd daemon" || true
shards=$(find "$tmp/store" -name 'shard-*.ced' | wc -l)
[[ "$shards" -gt 0 ]] || fail "no checkpoint shards survived the crash"
echo "chaos:   $shards shard checkpoints survived, restarting"
start_daemon --store="$tmp/store" --checkpoint-shards=8
"$CLIENT" protect "$tmp/m.kiss" --tcp-port="$port" --latency=3 \
    > "$tmp/resumed.out"
grep 'mask' "$tmp/resumed.out" > "$tmp/resumed.masks"
diff -u "$tmp/ref.masks" "$tmp/resumed.masks" \
  || fail "post-crash resume changed the parities"
kill -TERM "$daemon_pid"; wait "$daemon_pid" || fail "drain exit != 0"
daemon_pid=""

echo "chaos: scenario 2 — queue saturation answers kOverloaded, no crash"
start_daemon --store="$tmp/store2" --workers=1 --queue-depth=1 \
    --chaos-job-delay-ms=600
pids=()
for seed in 1 2 3 4 5; do
  "$CLIENT" protect "$tmp/m.kiss" --tcp-port="$port" --latency=2 \
      --request-seed="$seed" --retries=1 > "$tmp/sat.$seed.out" 2>&1 &
  pids+=($!)
  sleep 0.05
done
overloaded=0
for i in "${!pids[@]}"; do
  wait "${pids[$i]}" || true
  grep -qi 'overloaded' "$tmp/sat.$((i + 1)).out" && overloaded=$((overloaded + 1))
done
[[ "$overloaded" -gt 0 ]] || fail "saturation never produced kOverloaded"
kill -0 "$daemon_pid" || fail "daemon crashed under saturation"
"$CLIENT" health --tcp-port="$port" | grep -q 'state=ready' \
  || fail "daemon unhealthy after saturation"
echo "chaos:   $overloaded/5 requests pushed back with kOverloaded"
kill -TERM "$daemon_pid"; wait "$daemon_pid" || fail "drain exit != 0"
daemon_pid=""

echo "chaos: scenario 3 — SIGTERM drains, stores manifest, exits 0"
start_daemon --store="$tmp/store3" --chaos-job-delay-ms=300 \
    --drain-grace-seconds=10
"$CLIENT" protect "$tmp/m.kiss" --tcp-port="$port" --latency=2 \
    > "$tmp/inflight.out" 2>&1 &
inflight=$!
sleep 0.15                  # request admitted, job started
kill -TERM "$daemon_pid"
wait "$daemon_pid" || fail "SIGTERM drain exited nonzero"
daemon_pid=""
wait "$inflight" || fail "in-flight request was dropped by the drain"
grep -q 'mask' "$tmp/inflight.out" || fail "drained request lost its answer"
manifests=$(find "$tmp/store3" -name 'man-*.ced' | wc -l)
[[ "$manifests" -gt 0 ]] || fail "drain did not store the in-flight manifest"

echo "chaos: scenario 4 — wire garbage and mid-frame disconnects"
start_daemon --store="$tmp/store4"
python3 - "$port" <<'PYEOF'
import json, socket, struct, sys
port = int(sys.argv[1])

def frame(payload: bytes) -> bytes:
    return struct.pack(">I", len(payload)) + payload

def roundtrip(raw: bytes):
    s = socket.create_connection(("127.0.0.1", port), timeout=5)
    s.sendall(raw)
    hdr = s.recv(4)
    assert len(hdr) == 4, "daemon closed without a structured answer"
    n = struct.unpack(">I", hdr)[0]
    body = b""
    while len(body) < n:
        chunk = s.recv(n - len(body))
        assert chunk, "short response frame"
        body += chunk
    s.close()
    return json.loads(body)

# Garbage JSON, invalid UTF-8, and a lying length prefix: each must earn a
# structured invalid-input response, never a dropped connection.
assert roundtrip(frame(b"complete garbage"))["status"] == "invalid-input"
assert roundtrip(frame(b'{"op":"protect","kiss":"\xff\xfe"}'))["status"] == "invalid-input"
assert roundtrip(struct.pack(">I", 0x7FFFFFFF))["status"] == "invalid-input"

# Mid-frame disconnect: declare 100 bytes, send 10, vanish. The daemon
# must absorb it (asserted by the health probe below).
s = socket.create_connection(("127.0.0.1", port), timeout=5)
s.sendall(struct.pack(">I", 100) + b"ten bytes!")
s.close()
print("wire attacks: all answered structurally")
PYEOF
"$CLIENT" health --tcp-port="$port" | grep -q 'state=ready' \
  || fail "daemon unhealthy after wire garbage"
kill -TERM "$daemon_pid"; wait "$daemon_pid" || fail "drain exit != 0"
daemon_pid=""

echo "chaos: scenario 5 — store corruption is quarantined and recomputed"
start_daemon --store="$tmp/store5"
"$CLIENT" protect "$tmp/m.kiss" --tcp-port="$port" --latency=3 \
    > "$tmp/first.out"
grep 'mask' "$tmp/first.out" > "$tmp/first.masks"
diff -u "$tmp/ref.masks" "$tmp/first.masks" >/dev/null \
  || fail "pre-corruption answer already wrong"
# Flip one byte in every cached artifact: warm loads must all detect it.
for f in "$tmp/store5"/*.ced; do
  printf '\x5a' | dd of="$f" bs=1 seek=12 count=1 conv=notrunc 2>/dev/null
done
"$CLIENT" protect "$tmp/m.kiss" --tcp-port="$port" --latency=3 \
    > "$tmp/after.out"
grep 'mask' "$tmp/after.out" > "$tmp/after.masks"
diff -u "$tmp/ref.masks" "$tmp/after.masks" \
  || fail "corruption changed the answer instead of being recomputed"
ls "$tmp/store5/quarantine"/*.ced >/dev/null 2>&1 \
  || fail "corrupt artifacts were not quarantined"
kill -TERM "$daemon_pid"; wait "$daemon_pid" || fail "drain exit != 0"
daemon_pid=""

echo "chaos: all scenarios green"
