// ced_client — command-line client and load generator for ced_serve.
//
//   ced_client protect <machine.kiss|-> (--socket=PATH | --tcp-port=N)
//              [--latency=N] [--solver=lp|greedy|exact]
//              [--encoding=binary|gray|onehot|spread] [--semantics=impl|machine]
//              [--deadline-ms=N] [--tenant=S] [--id=S] [--seed=N]
//              [--request-seed=N] [--retries=N] [--json]
//   ced_client verify <machine.kiss|->  ... same endpoint/shape flags ...
//   ced_client sweep  <machine.kiss|-> --latencies=1,2,3 ...
//   ced_client health  (--socket=PATH | --tcp-port=N)
//   ced_client metrics (--socket=PATH | --tcp-port=N)
//   ced_client loadgen (--socket=PATH | --tcp-port=N) [--out=FILE]
//              [--concurrency=1,4,8] [--requests=8] [--states=12]
//              [--latency=N] [--tenant-per-thread]
//
// All requests go through the resilient retry path (capped exponential
// backoff with decorrelated jitter, honoring the daemon's retry-after
// hints), so a briefly overloaded or restarting daemon is survivable
// without any caller-side logic.
//
// `loadgen` is the latency benchmark behind BENCH_serve.json: for each
// concurrency level it generates a fresh set of synthetic machines, runs a
// COLD pass (every request misses the cache and runs the pipeline) and
// then a WARM pass (same machines again: every request must be served from
// the store), recording p50/p95/p99 for both. Daemon metrics are scraped
// before and after the warm pass to *prove* warm hits never ran
// extraction (the cold-miss counter must not move).
//
// Exit codes mirror ced_cli: 0 ok, 1 degraded, 2 invalid input,
// 3 transport/internal failure.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchdata/generator.hpp"
#include "serve/client.hpp"

namespace {

using namespace ced;
using namespace ced::serve;

constexpr int kExitOk = 0;
constexpr int kExitDegraded = 1;
constexpr int kExitInvalidInput = 2;
constexpr int kExitInternal = 3;

std::string arg_value(int argc, char** argv, const char* key,
                      const char* fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int usage() {
  std::fprintf(stderr,
               "usage: ced_client protect|verify|sweep <machine.kiss|-> "
               "(--socket=PATH | --tcp-port=N) [flags]\n"
               "       ced_client health|metrics (--socket=PATH | "
               "--tcp-port=N)\n"
               "       ced_client loadgen (--socket=PATH | --tcp-port=N) "
               "[--out=FILE] [--concurrency=1,4,8] [--requests=8]\n"
               "see the header of tools/ced_client.cpp for the full list\n");
  return kExitInvalidInput;
}

ClientOptions endpoint_from_args(int argc, char** argv) {
  ClientOptions copts;
  copts.unix_socket = arg_value(argc, argv, "--socket", "");
  copts.tcp_port = std::atoi(arg_value(argc, argv, "--tcp-port", "-1").c_str());
  const int retries = std::atoi(arg_value(argc, argv, "--retries", "5").c_str());
  copts.retry.max_attempts = std::max(1, retries);
  copts.seed = std::strtoull(arg_value(argc, argv, "--seed", "0").c_str(),
                             nullptr, 10) |
               1;
  return copts;
}

std::string read_machine(const std::string& path) {
  std::ostringstream ss;
  if (path == "-") {
    ss << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      std::exit(kExitInvalidInput);
    }
    ss << in.rdbuf();
  }
  return ss.str();
}

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::atoi(item.c_str()));
  }
  return out;
}

Request request_from_args(int argc, char** argv, const std::string& op) {
  Request req;
  req.op = op;
  req.id = arg_value(argc, argv, "--id", "");
  req.tenant = arg_value(argc, argv, "--tenant", "");
  req.latency = std::atoi(arg_value(argc, argv, "--latency", "2").c_str());
  req.solver = arg_value(argc, argv, "--solver", "lp");
  req.encoding = arg_value(argc, argv, "--encoding", "binary");
  req.semantics = arg_value(argc, argv, "--semantics", "impl");
  req.deadline_ms =
      std::atof(arg_value(argc, argv, "--deadline-ms", "0").c_str());
  req.seed = std::strtoull(
      arg_value(argc, argv, "--request-seed", "0").c_str(), nullptr, 10);
  req.latencies =
      parse_int_list(arg_value(argc, argv, "--latencies", ""));
  return req;
}

int exit_code_for(Code code) {
  switch (code) {
    case Code::kOk: return kExitOk;
    case Code::kDegraded: return kExitDegraded;
    case Code::kInvalidInput:
    case Code::kNotFound: return kExitInvalidInput;
    case Code::kOverloaded:
    case Code::kDraining:
    case Code::kInternal: break;
  }
  return kExitInternal;
}

void print_response(const Response& resp) {
  std::printf("status: %s\n", to_string(resp.code));
  if (!resp.error.empty()) std::printf("error: %s\n", resp.error.c_str());
  if (resp.code == Code::kOk || resp.code == Code::kDegraded) {
    if (!resp.sweep.empty()) {
      for (const SweepEntry& e : resp.sweep) {
        std::printf("p=%d -> q=%d%s\n", e.latency, e.q,
                    e.degraded ? " (degraded)" : "");
      }
    } else if (resp.q > 0 || !resp.parities.empty()) {
      std::printf("latency bound p=%d -> q=%d parity trees%s%s%s\n",
                  resp.latency, resp.q, resp.cached ? " [cached]" : "",
                  resp.deduped ? " [deduped]" : "",
                  resp.degraded ? " [degraded]" : "");
      for (std::size_t i = 0; i < resp.parities.size(); ++i) {
        std::printf("  tree %zu: mask 0x%llx\n", i,
                    static_cast<unsigned long long>(resp.parities[i]));
      }
    }
    if (resp.activations > 0 || resp.violations > 0) {
      std::printf("verification: %llu activations, %llu violations -> %s\n",
                  static_cast<unsigned long long>(resp.activations),
                  static_cast<unsigned long long>(resp.violations),
                  resp.violations == 0 ? "OK" : "FAILED");
    }
    if (!resp.state.empty()) {
      std::printf("state=%s workers=%d queued=%d active=%d\n",
                  resp.state.c_str(), resp.workers, resp.queued, resp.active);
    }
    if (!resp.prometheus.empty()) std::fputs(resp.prometheus.c_str(), stdout);
  }
}

int run_simple(int argc, char** argv, const std::string& op,
               bool needs_machine) {
  if (needs_machine && argc < 3) return usage();
  Client client(endpoint_from_args(argc, argv));
  Request req = request_from_args(argc, argv, op);
  if (needs_machine) req.kiss = read_machine(argv[2]);
  if (op == "sweep" && req.latencies.empty()) {
    std::fprintf(stderr, "error: sweep needs --latencies=1,2,...\n");
    return kExitInvalidInput;
  }
  const Result<Response> resp = client.call(req);
  if (!resp) {
    std::fprintf(stderr, "error: %s\n", resp.status().to_text().c_str());
    return resp.status().code == StatusCode::kInvalidInput ? kExitInvalidInput
                                                           : kExitInternal;
  }
  if (has_flag(argc, argv, "--json")) {
    std::printf("%s\n", encode_response(*resp).c_str());
  } else {
    print_response(*resp);
  }
  return exit_code_for(resp->code);
}

// ------------------------------------------------------------- loadgen

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted_ms.size()) - 1,
                       p / 100.0 * static_cast<double>(sorted_ms.size())));
  return sorted_ms[idx];
}

/// Scrapes one counter from a Prometheus text payload (0 when absent —
/// registries only materialize counters that have been touched).
double scrape_counter(const std::string& prom, const std::string& name) {
  std::stringstream ss(prom);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.rfind(name, 0) == 0 && line.size() > name.size() &&
        (line[name.size()] == ' ' || line[name.size()] == '{')) {
      const std::size_t sp = line.find_last_of(' ');
      if (sp != std::string::npos) return std::atof(line.c_str() + sp + 1);
    }
  }
  return 0.0;
}

struct PhaseStats {
  std::string phase;
  int concurrency = 0;
  int requests = 0;
  int errors = 0;
  int cached = 0;
  int degraded = 0;
  double p50 = 0, p95 = 0, p99 = 0, mean = 0;
};

PhaseStats run_phase(const ClientOptions& copts, const std::string& phase,
                     int concurrency, const std::vector<std::string>& machines,
                     int latency, bool tenant_per_thread) {
  PhaseStats stats;
  stats.phase = phase;
  stats.concurrency = concurrency;
  stats.requests = static_cast<int>(machines.size());
  std::mutex mu;
  std::vector<double> lat_ms;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> next{0};
  for (int t = 0; t < concurrency; ++t) {
    threads.emplace_back([&, t] {
      Client client(copts);
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= machines.size()) break;
        Request req;
        req.op = "protect";
        req.kiss = machines[i];
        req.latency = latency;
        req.id = phase + "-" + std::to_string(i);
        if (tenant_per_thread) req.tenant = "t" + std::to_string(t);
        const auto t0 = std::chrono::steady_clock::now();
        const Result<Response> resp = client.call(req);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        std::lock_guard<std::mutex> lock(mu);
        lat_ms.push_back(ms);
        if (!resp || (resp->code != Code::kOk &&
                      resp->code != Code::kDegraded)) {
          ++stats.errors;
        } else {
          if (resp->cached) ++stats.cached;
          if (resp->degraded) ++stats.degraded;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  std::sort(lat_ms.begin(), lat_ms.end());
  double sum = 0;
  for (const double v : lat_ms) sum += v;
  stats.mean = lat_ms.empty() ? 0 : sum / static_cast<double>(lat_ms.size());
  stats.p50 = percentile(lat_ms, 50);
  stats.p95 = percentile(lat_ms, 95);
  stats.p99 = percentile(lat_ms, 99);
  return stats;
}

int cmd_loadgen(int argc, char** argv) {
  const ClientOptions copts = endpoint_from_args(argc, argv);
  const std::vector<int> levels =
      parse_int_list(arg_value(argc, argv, "--concurrency", "1,4,8"));
  const int per_level =
      std::max(1, std::atoi(arg_value(argc, argv, "--requests", "8").c_str()));
  const int states = std::atoi(arg_value(argc, argv, "--states", "12").c_str());
  const int latency = std::atoi(arg_value(argc, argv, "--latency", "2").c_str());
  const std::string out_path = arg_value(argc, argv, "--out", "");
  const bool tenant_per_thread = has_flag(argc, argv, "--tenant-per-thread");
  if (levels.empty()) return usage();

  const auto scrape = [&]() -> std::string {
    Client client(copts);
    Request req;
    req.op = "metrics";
    const Result<Response> resp = client.call(req);
    return resp ? resp->prometheus : std::string();
  };

  std::vector<PhaseStats> all;
  double warm_phase_cold_misses = 0;
  int level_index = 0;
  for (const int conc : levels) {
    if (conc <= 0) continue;
    // Fresh machines per level: this level's cold pass is genuinely cold.
    std::vector<std::string> machines;
    for (int i = 0; i < per_level; ++i) {
      benchdata::SyntheticSpec spec;
      spec.states = states;
      spec.seed = 1000003ull * static_cast<unsigned long long>(level_index) +
                  static_cast<unsigned long long>(i) + 1;
      machines.push_back(benchdata::generate_kiss(spec));
    }
    PhaseStats cold = run_phase(copts, "cold", conc, machines, latency,
                                tenant_per_thread);
    const std::string before = scrape();
    PhaseStats warm = run_phase(copts, "warm", conc, machines, latency,
                                tenant_per_thread);
    const std::string after = scrape();
    // The proof that warm hits skip extraction: the daemon's cold-miss
    // counter may not move across the warm pass.
    warm_phase_cold_misses +=
        scrape_counter(after, "ced_serve_cold_misses_total") -
        scrape_counter(before, "ced_serve_cold_misses_total");
    std::printf(
        "conc=%d cold: p50=%.1fms p95=%.1fms p99=%.1fms (cached %d/%d)\n"
        "conc=%d warm: p50=%.1fms p95=%.1fms p99=%.1fms (cached %d/%d)\n",
        conc, cold.p50, cold.p95, cold.p99, cold.cached, cold.requests, conc,
        warm.p50, warm.p95, warm.p99, warm.cached, warm.requests);
    all.push_back(std::move(cold));
    all.push_back(std::move(warm));
    ++level_index;
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"serve\",\n  \"requests_per_level\": " << per_level
       << ",\n  \"machine_states\": " << states
       << ",\n  \"warm_phase_cold_misses\": " << warm_phase_cold_misses
       << ",\n  \"levels\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const PhaseStats& s = all[i];
    json << "    {\"phase\": \"" << s.phase
         << "\", \"concurrency\": " << s.concurrency
         << ", \"requests\": " << s.requests << ", \"errors\": " << s.errors
         << ", \"cached\": " << s.cached << ", \"degraded\": " << s.degraded
         << ", \"p50_ms\": " << s.p50 << ", \"p95_ms\": " << s.p95
         << ", \"p99_ms\": " << s.p99 << ", \"mean_ms\": " << s.mean << "}"
         << (i + 1 < all.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fputs(json.str().c_str(), stdout);
  }

  int errors = 0;
  for (const PhaseStats& s : all) errors += s.errors;
  if (warm_phase_cold_misses > 0) {
    std::fprintf(stderr,
                 "loadgen: FAIL — %d cold misses during warm passes (warm "
                 "hits must never run extraction)\n",
                 static_cast<int>(warm_phase_cold_misses));
    return kExitDegraded;
  }
  return errors == 0 ? kExitOk : kExitDegraded;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "protect" || cmd == "verify" || cmd == "sweep") {
    return run_simple(argc, argv, cmd, /*needs_machine=*/true);
  }
  if (cmd == "health" || cmd == "metrics") {
    return run_simple(argc, argv, cmd, /*needs_machine=*/false);
  }
  if (cmd == "loadgen") return cmd_loadgen(argc, argv);
  return usage();
}
