// ced_cli — end-to-end command-line driver for the library.
//
//   ced_cli protect  <machine.kiss> [--latency=N] [--solver=lp|greedy|exact]
//                    [--encoding=binary|gray|onehot|spread] [--semantics=impl|machine]
//                    [--minimize-states] [--area-aware] [--verify]
//   ced_cli analyze  <machine.kiss>
//   ced_cli generate --states=N --inputs=N --outputs=N [--seed=N] [--self-loops=F]
//
// `protect` runs the full bounded-latency CED pipeline and prints the
// chosen parity functions and hardware costs; `analyze` prints STG and
// synthesis statistics; `generate` emits a synthetic KISS2 benchmark to
// stdout. A file name of "-" reads the machine from stdin.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "benchdata/generator.hpp"
#include "core/area_aware.hpp"
#include "core/latency.hpp"
#include "core/pipeline.hpp"
#include "core/verify.hpp"
#include "fsm/analysis.hpp"
#include "fsm/minimize_states.hpp"
#include "kiss/kiss.hpp"

namespace {

using namespace ced;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ced_cli protect <machine.kiss> [--latency=N] "
               "[--solver=lp|greedy|exact]\n"
               "          [--encoding=binary|gray|onehot|spread] "
               "[--semantics=impl|machine]\n"
               "          [--minimize-states] [--area-aware] [--verify]\n"
               "  ced_cli analyze <machine.kiss>\n"
               "  ced_cli generate --states=N --inputs=N --outputs=N "
               "[--seed=N] [--self-loops=F]\n");
  return 2;
}

std::string arg_value(int argc, char** argv, const char* key,
                      const char* fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

fsm::Fsm load_machine(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  return fsm::Fsm::from_kiss(kiss::parse(text));
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) return usage();
  const fsm::Fsm f = load_machine(argv[2]);
  const fsm::StgStats st = fsm::analyze_stg(f);
  std::printf("inputs=%d outputs=%d states=%d edges=%d\n", f.num_inputs(),
              f.num_outputs(), st.num_states, st.num_edges);
  std::printf("reachable=%d complete=%s self-loops=%d shortest-cycle=%d\n",
              st.reachable_states, f.is_complete() ? "yes" : "no",
              st.num_self_loops, st.shortest_cycle);
  const auto exact = fsm::minimize_states(f);
  const auto compat = fsm::merge_compatible_states(f);
  std::printf("state minimization: exact %d -> %d, compatible-merge -> %d\n",
              exact.states_before, exact.states_after, compat.states_after);
  const fsm::FsmCircuit c =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto area = logic::measure_area(
      c.netlist, logic::CellLibrary::mcnc(), static_cast<std::size_t>(c.s()));
  std::printf("synthesized (binary encoding): %d state bits, %zu gates, "
              "area %.1f\n",
              c.s(), area.gates, area.area);
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::LatencyAnalysisOptions lo;
  lo.max_latency = 4;
  const auto la = core::analyze_useful_latency(c, faults, lo);
  std::printf("collapsed stuck-at faults: %zu; max useful CED latency: %d\n",
              faults.size(), la.max_useful_latency);
  return 0;
}

int cmd_protect(int argc, char** argv) {
  if (argc < 3) return usage();
  fsm::Fsm f = load_machine(argv[2]);

  if (has_flag(argc, argv, "--minimize-states")) {
    const auto r = fsm::merge_compatible_states(f);
    std::printf("state minimization: %d -> %d states\n", r.states_before,
                r.states_after);
    f = r.machine;
  }

  core::PipelineOptions opts;
  opts.latency = std::atoi(arg_value(argc, argv, "--latency", "2").c_str());
  const std::string solver = arg_value(argc, argv, "--solver", "lp");
  opts.solver = solver == "greedy"  ? core::SolverKind::kGreedy
                : solver == "exact" ? core::SolverKind::kExact
                                    : core::SolverKind::kLpRounding;
  const std::string enc = arg_value(argc, argv, "--encoding", "binary");
  opts.encoding = enc == "gray"     ? fsm::EncodingKind::kGray
                  : enc == "onehot" ? fsm::EncodingKind::kOneHot
                  : enc == "spread" ? fsm::EncodingKind::kSpread
                                    : fsm::EncodingKind::kBinary;
  if (arg_value(argc, argv, "--semantics", "impl") == std::string("machine")) {
    opts.extract.semantics = core::DiffSemantics::kMachineLevel;
  }

  const core::PipelineReport rep = core::run_pipeline(f, opts);
  std::printf("original: %zu gates, area %.1f\n", rep.orig_gates,
              rep.orig_area);
  std::printf("faults: %zu collapsed stuck-at; erroneous cases: %zu\n",
              rep.num_faults, rep.num_cases);
  std::printf("latency bound p=%d -> q=%d parity trees\n", rep.latency,
              rep.num_trees);
  for (std::size_t l = 0; l < rep.parities.size(); ++l) {
    std::printf("  tree %zu: mask 0x%llx\n", l,
                static_cast<unsigned long long>(rep.parities[l]));
  }
  std::printf("CED hardware: %zu gates, area %.1f (%.1f%% of original)\n",
              rep.ced_gates, rep.ced_area,
              100.0 * rep.ced_area / rep.orig_area);

  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist, opts.faults);

  if (has_flag(argc, argv, "--area-aware")) {
    core::ExtractOptions ex = opts.extract;
    ex.latency = opts.latency;
    const auto table = core::extract_cases(circuit, faults, ex);
    const auto aa = core::minimize_parity_area(circuit, table);
    std::printf("area-aware refinement: %.1f -> %.1f (%d evaluations)\n",
                aa.initial_area, aa.final_area, aa.evaluations);
  }

  if (has_flag(argc, argv, "--verify")) {
    const core::CedHardware hw =
        core::synthesize_ced(circuit, rep.parities, opts.ced);
    const core::VerifyResult vr =
        core::verify_bounded_detection(circuit, hw, faults, opts.latency);
    std::printf("verification: %zu activations, %zu violations, "
                "%zu false alarms -> %s\n",
                vr.activations_checked, vr.violations, vr.false_alarms,
                vr.ok() ? "OK" : "FAILED");
    return vr.ok() ? 0 : 1;
  }
  return 0;
}

int cmd_generate(int argc, char** argv) {
  benchdata::SyntheticSpec spec;
  spec.name = "generated";
  spec.states = std::atoi(arg_value(argc, argv, "--states", "12").c_str());
  spec.inputs = std::atoi(arg_value(argc, argv, "--inputs", "3").c_str());
  spec.outputs = std::atoi(arg_value(argc, argv, "--outputs", "3").c_str());
  spec.seed = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--seed", "1").c_str()));
  spec.self_loop_bias =
      std::atof(arg_value(argc, argv, "--self-loops", "0.2").c_str());
  spec.branches = std::atoi(arg_value(argc, argv, "--branches", "5").c_str());
  std::fputs(benchdata::generate_kiss(spec).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "analyze") == 0) return cmd_analyze(argc, argv);
    if (std::strcmp(argv[1], "protect") == 0) return cmd_protect(argc, argv);
    if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
