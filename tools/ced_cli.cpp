// ced_cli — end-to-end command-line driver for the library.
//
//   ced_cli protect  <machine.kiss> [--latency=N] [--solver=lp|greedy|exact]
//                    [--encoding=binary|gray|onehot|spread] [--semantics=impl|machine]
//                    [--minimize-states] [--area-aware] [--verify] [--threads=N]
//                    [--budget-seconds=F] [--max-cases=N] [--max-lp-iters=N]
//                    [--max-roundings=N] [--max-exact-nodes=N]
//                    [--metrics-out=FILE] [--trace-out=FILE] [--prom-out=FILE]
//                    [--explain]
//   ced_cli analyze  <machine.kiss>
//   ced_cli generate --states=N --inputs=N --outputs=N [--seed=N] [--self-loops=F]
//   ced_cli verify   <machine.kiss> --store=DIR [--latency=N] [--solver=...]
//   ced_cli campaign <machine.kiss> --store=DIR [--model=stuck|transient|adversarial]
//                    [--policy=exhaustive|walks] [--persistence=N] [--k=N]
//                    [--walks=N] [--walk-length=N] [--seed=N] [--horizon=N]
//                    [--soak] [--json-out=FILE] [--resume] [--max-new-shards=N]
//   ced_cli store    verify|gc|list --store=DIR
//   ced_cli store    show <name> --store=DIR
//   ced_cli help
//
// `protect` runs the full bounded-latency CED pipeline and prints the
// chosen parity functions and hardware costs; `analyze` prints STG and
// synthesis statistics; `generate` emits a synthetic KISS2 benchmark to
// stdout. A file name of "-" reads the machine from stdin.
//
// With --store=DIR, `protect` caches extraction results and checkpoints
// in a crash-safe artifact store: a warm rerun skips extraction entirely
// (watch t_extract in the stage-times line), an interrupted run resumed
// with --resume completes only the missing shards and produces the same
// tables byte for byte, and a corrupted artifact is quarantined and
// recomputed (reported on stderr, never a crash). `verify` re-proves the
// bounded-detection property for a scheme previously stored by `protect`.
//
// Exit codes:
//   0  success, full-quality result
//   1  degraded/truncated result (a budget valve fired, a solver fell back
//      down the cascade, or --verify found violations) — still usable, the
//      resilience report on stderr says exactly what happened
//   2  invalid input (unreadable file, malformed KISS2, bad flags)
//   3  internal error — including interruption: Ctrl-C during `protect`
//      trips the run's cooperative interrupt valve, so in-flight work
//      checkpoints (with --store, completed shards are already durable and
//      a rerun with --resume picks them up) and the process exits 3
//      instead of dying mid-write

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "benchdata/generator.hpp"
#include "benchdata/suite.hpp"
#include "common/parallel.hpp"
#include "core/area_aware.hpp"
#include "core/latency.hpp"
#include "core/run.hpp"
#include "core/verify.hpp"
#include "fsm/analysis.hpp"
#include "fsm/minimize_states.hpp"
#include "kiss/kiss.hpp"
#include "obs/export.hpp"
#include "sim/campaign.hpp"
#include "storage/store.hpp"

namespace {

using namespace ced;

constexpr int kExitOk = 0;
constexpr int kExitDegraded = 1;
constexpr int kExitInvalidInput = 2;
constexpr int kExitInternal = 3;

/// Thrown for problems in what the user handed us (files, flags, KISS2
/// text) so main() can map them to kExitInvalidInput instead of the
/// blanket internal-error path.
struct InvalidInputError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// SIGINT handling for long runs: the handler only sets this flag (the one
/// async-signal-safe thing it may do); the pipeline polls it through
/// RunBudget.interrupt at every stage's deadline check, so interruption
/// surfaces as an orderly truncated result, not a torn process.
std::atomic<bool> g_interrupted{false};

extern "C" void on_sigint(int) {
  g_interrupted.store(true, std::memory_order_relaxed);
}

/// Installs the SIGINT handler for one run's scope; restores the previous
/// disposition on exit so a second Ctrl-C after the run behaves normally.
class ScopedSigint {
 public:
  ScopedSigint() {
    struct sigaction sa = {};
    sa.sa_handler = on_sigint;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, &prev_);
  }
  ~ScopedSigint() { ::sigaction(SIGINT, &prev_, nullptr); }
  ScopedSigint(const ScopedSigint&) = delete;
  ScopedSigint& operator=(const ScopedSigint&) = delete;

 private:
  struct sigaction prev_ = {};
};

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ced_cli protect <machine.kiss> [--latency=N] "
               "[--solver=lp|greedy|exact]\n"
               "          [--encoding=binary|gray|onehot|spread] "
               "[--semantics=impl|machine]\n"
               "          [--minimize-states] [--area-aware] [--verify] "
               "[--threads=N]\n"
               "          [--budget-seconds=F] [--max-cases=N] "
               "[--max-lp-iters=N]\n"
               "          [--max-roundings=N] [--max-exact-nodes=N]\n"
               "          [--store=DIR] [--resume] [--checkpoint-shards=N] "
               "[--max-new-shards=N]\n"
               "          [--metrics-out=FILE] [--trace-out=FILE] "
               "[--prom-out=FILE] [--explain]\n"
               "  ced_cli analyze <machine.kiss>\n"
               "  ced_cli generate --states=N --inputs=N --outputs=N "
               "[--seed=N] [--self-loops=F]\n"
               "  ced_cli generate --suite=NAME   emit a Table-1 suite "
               "circuit as KISS2\n"
               "  ced_cli verify <machine.kiss> --store=DIR [--latency=N] "
               "[--solver=...]\n"
               "  ced_cli campaign <machine.kiss> --store=DIR "
               "[--model=stuck|transient|adversarial]\n"
               "          [--policy=exhaustive|walks] [--persistence=N] "
               "[--k=N] [--walks=N]\n"
               "          [--walk-length=N] [--seed=N] [--horizon=N] "
               "[--threads=N] [--soak]\n"
               "          [--json-out=FILE] [--resume] [--checkpoint-shards=N] "
               "[--max-new-shards=N]\n"
               "  ced_cli store verify|gc|list --store=DIR\n"
               "  ced_cli store show <name> --store=DIR\n"
               "  ced_cli help      full flag reference incl. budget table\n");
  return kExitInvalidInput;
}

int cmd_help() {
  std::printf(
      "ced_cli — bounded-latency concurrent error detection driver\n"
      "\n"
      "Exit codes: 0 ok, 1 degraded/truncated result, 2 invalid input,\n"
      "            3 internal error.\n"
      "\n"
      "Budget flags (protect): every limit is cooperative — when it trips,\n"
      "the stage keeps its partial results and the solver cascade degrades\n"
      "exact -> lp+rounding -> greedy -> duplication-style floor instead of\n"
      "aborting. A degraded run exits 1 and prints a resilience report on\n"
      "stderr.\n"
      "\n"
      "  flag                 default    meaning\n"
      "  --budget-seconds=F   unlimited  wall-clock budget for the whole "
      "run\n"
      "  --max-cases=N        5000000    erroneous-case cap per table; on\n"
      "                                  overflow the table truncates and\n"
      "                                  keeps the cases found so far\n"
      "  --max-lp-iters=N     200000     simplex pivot cap per LP solve\n"
      "  --max-roundings=N    40         randomized-rounding attempts per\n"
      "                                  LP solution\n"
      "  --max-exact-nodes=N  50000000   branch-and-bound node cap for\n"
      "                                  --solver=exact\n"
      "\n"
      "Other protect flags:\n"
      "  --latency=N          2          detection-latency bound p\n"
      "  --threads=N          0          worker threads for extraction and\n"
      "                                  rounding; 0 = CED_THREADS env or\n"
      "                                  hardware concurrency, 1 = serial.\n"
      "                                  Results are identical at any count.\n"
      "  --solver=KIND        lp         lp | greedy | exact\n"
      "  --encoding=KIND      binary     binary | gray | onehot | spread\n"
      "  --semantics=KIND     impl       impl | machine (see DESIGN.md)\n"
      "  --minimize-states               merge compatible states first\n"
      "  --area-aware                    area-driven parity refinement\n"
      "  --verify                        sequential bounded-latency proof\n"
      "\n"
      "Artifact store flags (protect):\n"
      "  --store=DIR                     cache extraction tables, shard\n"
      "                                  checkpoints and the parity scheme\n"
      "                                  in a crash-safe store; warm reruns\n"
      "                                  skip extraction (t_extract ~ 0)\n"
      "  --resume                        load checkpoint shards left by an\n"
      "                                  interrupted run; the completed run\n"
      "                                  is byte-identical to an\n"
      "                                  uninterrupted one\n"
      "  --checkpoint-shards=N 16        fault-shard partition for\n"
      "                                  checkpoints (part of the cache\n"
      "                                  key; independent of --threads)\n"
      "  --max-new-shards=N    0         stop after computing N new shards\n"
      "                                  (deterministic interruption for\n"
      "                                  testing resume; 0 = no limit)\n"
      "\n"
      "Observability flags (protect): collectors are off by default; any\n"
      "of these flags (or --store, which embeds the span tree in the run\n"
      "manifest) turns them on. Instrumentation is write-only: q and the\n"
      "parity masks are byte-identical with observability on or off.\n"
      "  --metrics-out=FILE              write the metrics snapshot as JSON\n"
      "  --trace-out=FILE                write the span trace as JSON\n"
      "  --prom-out=FILE                 write Prometheus text exposition\n"
      "  --explain                       print the human span tree +\n"
      "                                  metrics appendix to stdout\n"
      "\n"
      "Campaign (fault-injection against the stored scheme):\n"
      "  ced_cli campaign <m.kiss> --store=DIR runs the full protected\n"
      "      design (FSM + predictor + comparator) under injected faults and\n"
      "      classifies every activation episode as detected_in_bound,\n"
      "      detected_late or silent_escape. Pass the same shape flags\n"
      "      (--latency/--solver/--encoding/--semantics) as the protect run\n"
      "      that stored the scheme.\n"
      "  --model=KIND         stuck      stuck | transient | adversarial\n"
      "  --policy=KIND        exhaustive exhaustive (stuck only: worst case\n"
      "                                  over every bounded input path — a\n"
      "                                  proof) | walks (seeded random walks\n"
      "                                  from every reachable state)\n"
      "  --persistence=N      0          cycles a stuck fault stays active\n"
      "                                  after activation (0 = permanent)\n"
      "  --k=N                1          adversarial model: max flipped bits\n"
      "  --walks=N --walk-length=N       walk count per (fault, state) and\n"
      "                                  walk length (soak: 32 x 512)\n"
      "  --horizon=N          p+2        escape cutoff in cycles\n"
      "  --seed=N                        campaign seed (part of the key)\n"
      "  --soak                          long randomized sweep: walks policy\n"
      "                                  over all three fault models\n"
      "  --json-out=FILE      BENCH_campaign.json\n"
      "  --resume                        reuse checkpointed campaign shards\n"
      "  For stuck-at faults with persistence 0 or >= p the campaign checks\n"
      "  the paper's hard guarantee: any late/silent episode exits 1. The\n"
      "  verdict sheet is stored under camp-<key> and is byte-identical at\n"
      "  any thread count and across kill/resume.\n"
      "\n"
      "Store subcommands:\n"
      "  ced_cli verify <m.kiss> --store=DIR   re-prove bounded detection\n"
      "      for the scheme stored by a previous protect run (pass the same\n"
      "      --latency/--solver/--encoding/--semantics/--checkpoint-shards)\n"
      "  ced_cli store verify --store=DIR      integrity-scan every\n"
      "      artifact; corrupt ones are quarantined (exit 1 if any)\n"
      "  ced_cli store gc --store=DIR          remove stray temp files,\n"
      "      quarantined artifacts and superseded shard checkpoints\n"
      "  ced_cli store list --store=DIR        list artifact names\n"
      "  ced_cli store show <name> --store=DIR print a run manifest\n"
      "      (config digest, extraction key, parities, resilience events,\n"
      "      stage times and the recorded span tree)\n");
  return kExitOk;
}

std::string arg_value(int argc, char** argv, const char* key,
                      const char* fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

fsm::Fsm load_machine(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) throw InvalidInputError("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  const Result<kiss::Kiss2> parsed = kiss::try_parse(text);
  if (!parsed) {
    throw InvalidInputError(parsed.status().to_text());
  }
  try {
    return fsm::Fsm::from_kiss(*parsed);
  } catch (const std::exception& e) {
    throw InvalidInputError(std::string("invalid machine: ") + e.what());
  }
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) return usage();
  const fsm::Fsm f = load_machine(argv[2]);
  const fsm::StgStats st = fsm::analyze_stg(f);
  std::printf("inputs=%d outputs=%d states=%d edges=%d\n", f.num_inputs(),
              f.num_outputs(), st.num_states, st.num_edges);
  std::printf("reachable=%d complete=%s self-loops=%d shortest-cycle=%d\n",
              st.reachable_states, f.is_complete() ? "yes" : "no",
              st.num_self_loops, st.shortest_cycle);
  const auto exact = fsm::minimize_states(f);
  const auto compat = fsm::merge_compatible_states(f);
  std::printf("state minimization: exact %d -> %d, compatible-merge -> %d\n",
              exact.states_before, exact.states_after, compat.states_after);
  const fsm::FsmCircuit c =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto area = logic::measure_area(
      c.netlist, logic::CellLibrary::mcnc(), static_cast<std::size_t>(c.s()));
  std::printf("synthesized (binary encoding): %d state bits, %zu gates, "
              "area %.1f\n",
              c.s(), area.gates, area.area);
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::LatencyAnalysisOptions lo;
  lo.max_latency = 4;
  const auto la = core::analyze_useful_latency(c, faults, lo);
  std::printf("collapsed stuck-at faults: %zu; max useful CED latency: %d\n",
              faults.size(), la.max_useful_latency);
  return kExitOk;
}

core::RunBudget budget_from_args(int argc, char** argv) {
  // Negative or unparsable values mean "no limit" (same as 0) rather than
  // wrapping to a huge unsigned cap.
  const auto count = [&](const char* key) -> long long {
    const long long v = std::atoll(arg_value(argc, argv, key, "0").c_str());
    return v > 0 ? v : 0;
  };
  core::RunBudget b;
  const double secs =
      std::atof(arg_value(argc, argv, "--budget-seconds", "0").c_str());
  b.wall_seconds = secs > 0.0 ? secs : 0.0;
  b.max_cases = static_cast<std::size_t>(count("--max-cases"));
  b.max_lp_iterations = static_cast<int>(count("--max-lp-iters"));
  b.max_rounding_attempts = static_cast<int>(count("--max-roundings"));
  b.max_exact_nodes = static_cast<std::size_t>(count("--max-exact-nodes"));
  return b;
}

/// Canonical solver tag used in stored-scheme names.
const char* solver_tag(core::SolverKind solver) {
  switch (solver) {
    case core::SolverKind::kGreedy: return "greedy";
    case core::SolverKind::kExact: return "exact";
    case core::SolverKind::kLpRounding: break;
  }
  return "lp";
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw InvalidInputError("cannot write " + path);
  out << text;
  if (!out.flush()) throw InvalidInputError("cannot write " + path);
}

int cmd_protect(int argc, char** argv) {
  if (argc < 3) return usage();
  fsm::Fsm f = load_machine(argv[2]);

  if (has_flag(argc, argv, "--minimize-states")) {
    const auto r = fsm::merge_compatible_states(f);
    std::printf("state minimization: %d -> %d states\n", r.states_before,
                r.states_after);
    f = r.machine;
  }

  // Observability: collectors are off unless an export flag asks for them
  // or a store is bound (run manifests embed the span tree). Results are
  // byte-identical either way — the sinks are write-only.
  const std::string metrics_out = arg_value(argc, argv, "--metrics-out", "");
  const std::string trace_out = arg_value(argc, argv, "--trace-out", "");
  const std::string prom_out = arg_value(argc, argv, "--prom-out", "");
  const bool explain = has_flag(argc, argv, "--explain");
  const std::string store_dir = arg_value(argc, argv, "--store", "");
  const bool observing = explain || !metrics_out.empty() ||
                         !trace_out.empty() || !prom_out.empty() ||
                         !store_dir.empty();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const obs::Sinks sinks =
      observing ? obs::Sinks{&tracer, &metrics, 0} : obs::Sinks{};

  std::optional<storage::ArtifactStore> store;
  std::optional<storage::StoreArchive> archive;
  if (!store_dir.empty()) {
    store.emplace(store_dir);
    store->set_sinks(sinks);
    archive.emplace(*store);
  }

  const std::string solver = arg_value(argc, argv, "--solver", "lp");
  const std::string enc = arg_value(argc, argv, "--encoding", "binary");
  // 0 = auto (CED_THREADS env or hardware concurrency); negatives mean auto
  // too rather than wrapping.
  const int threads =
      std::atoi(arg_value(argc, argv, "--threads", "0").c_str());

  RunConfig::Builder builder;
  builder.latency(std::atoi(arg_value(argc, argv, "--latency", "2").c_str()))
      .solver(solver == "greedy"  ? core::SolverKind::kGreedy
              : solver == "exact" ? core::SolverKind::kExact
                                  : core::SolverKind::kLpRounding)
      .encoding(enc == "gray"     ? fsm::EncodingKind::kGray
                : enc == "onehot" ? fsm::EncodingKind::kOneHot
                : enc == "spread" ? fsm::EncodingKind::kSpread
                                  : fsm::EncodingKind::kBinary)
      .threads(threads >= 1 ? threads : 0)
      .budget(budget_from_args(argc, argv))
      .observe(sinks)
      .tune([](core::PipelineOptions& o) {
        o.budget.interrupt = &g_interrupted;
      });
  if (arg_value(argc, argv, "--semantics", "impl") == std::string("machine")) {
    builder.semantics(core::DiffSemantics::kMachineLevel);
  }
  if (store) {
    builder.archive(&*archive)
        .resume(has_flag(argc, argv, "--resume"))
        .checkpoint_shards(std::atoi(
            arg_value(argc, argv, "--checkpoint-shards", "0").c_str()))
        .max_new_shards(
            std::atoi(arg_value(argc, argv, "--max-new-shards", "0").c_str()));
  }
  const Result<RunConfig> cfg = builder.build();
  if (!cfg) throw InvalidInputError(cfg.status().message);
  const core::PipelineOptions& opts = cfg->options();

  // Armed for the duration of the run (synthesis through store flush):
  // Ctrl-C trips the valve, the stages checkpoint and return truncated,
  // and the manifest below still records what happened.
  ScopedSigint sigint_guard;
  const core::PipelineReport rep = ced::run_pipeline(f, *cfg);
  const core::ResilienceReport& res = rep.resilience;
  if (res.status.code == StatusCode::kInvalidInput) {
    std::fprintf(stderr, "error: %s\n", res.status.to_text().c_str());
    return kExitInvalidInput;
  }
  if (res.status.code == StatusCode::kInternal ||
      res.status.code == StatusCode::kInfeasible) {
    std::fprintf(stderr, "error: %s\n", res.status.to_text().c_str());
    return kExitInternal;
  }

  std::printf("original: %zu gates, area %.1f\n", rep.orig_gates,
              rep.orig_area);
  std::printf("faults: %zu collapsed stuck-at; erroneous cases: %zu\n",
              rep.num_faults, rep.num_cases);
  std::printf("latency bound p=%d -> q=%d parity trees\n", rep.latency,
              rep.num_trees);
  for (std::size_t l = 0; l < rep.parities.size(); ++l) {
    std::printf("  tree %zu: mask 0x%llx\n", l,
                static_cast<unsigned long long>(rep.parities[l]));
  }
  std::printf("CED hardware: %zu gates, area %.1f (%.1f%% of original)\n",
              rep.ced_gates, rep.ced_area,
              rep.orig_area > 0 ? 100.0 * rep.ced_area / rep.orig_area : 0.0);
  // A warm store makes the skipped extraction stage directly visible here.
  // The laps come from one boundary-consistent StageClock, so the printed
  // total is exactly their sum — no leaked gaps between stages.
  std::printf(
      "stage times: synth=%.3fs extract=%.3fs solve=%.3fs ced=%.3fs "
      "total=%.3fs\n",
      rep.t_synth, rep.t_extract, rep.t_solve, rep.t_ced,
      rep.t_synth + rep.t_extract + rep.t_solve + rep.t_ced);

  const std::string res_summary = res.summary();
  if (!res_summary.empty()) {
    std::fputs(res_summary.c_str(), stderr);
  }

  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist, opts.faults);

  if (store) {
    // Persist the scheme under the extraction cache key so `ced_cli verify`
    // can re-prove it later. Degraded schemes (truncated tables, cascade
    // floors) are deliberately not stored: they cover what was seen, not
    // necessarily the full fault set.
    std::string key = rep.extraction_key;
    if (key.empty()) {
      core::ExtractOptions ex = opts.extract;
      ex.latency = opts.latency;
      const int num_shards = core::resolve_checkpoint_shards(
          opts.checkpoint_shards, faults.size());
      key = core::extraction_digest(circuit, faults, ex, num_shards);
    }
    if (!res.degraded()) {
      storage::SchemeArtifact scheme;
      scheme.latency = rep.latency;
      scheme.parities = rep.parities;
      storage::store_scheme(
          *store, storage::scheme_name(key, rep.latency, solver_tag(opts.solver)),
          scheme);
    }
    // The run manifest is the audit record and is stored for degraded runs
    // too — a degraded manifest documents exactly how the run degraded.
    storage::ManifestArtifact man;
    man.config_digest = cfg->digest();
    man.extraction_key = key;
    man.circuit = argv[2];
    man.latency = rep.latency;
    man.threads = opts.threads;
    man.parities = rep.parities;
    man.resilience = res;
    man.t_synth = rep.t_synth;
    man.t_extract = rep.t_extract;
    man.t_solve = rep.t_solve;
    man.t_ced = rep.t_ced;
    man.spans = tracer.snapshot();
    const std::string man_name =
        storage::manifest_name(key, rep.latency, solver_tag(opts.solver));
    storage::store_manifest(*store, man_name, man);
    std::printf("manifest: %s\n", man_name.c_str());
  }

  if (has_flag(argc, argv, "--area-aware")) {
    core::ExtractOptions ex = opts.extract;
    ex.latency = opts.latency;
    const auto table = core::extract_cases(circuit, faults, ex);
    const auto aa = core::minimize_parity_area(circuit, table);
    std::printf("area-aware refinement: %.1f -> %.1f (%d evaluations)\n",
                aa.initial_area, aa.final_area, aa.evaluations);
  }

  bool verify_failed = false;
  if (has_flag(argc, argv, "--verify")) {
    const core::CedHardware hw =
        core::synthesize_ced(circuit, rep.parities, opts.ced);
    const core::VerifyResult vr =
        core::verify_bounded_detection(circuit, hw, faults, opts.latency);
    std::printf("verification: %zu activations, %zu violations, "
                "%zu false alarms -> %s\n",
                vr.activations_checked, vr.violations, vr.false_alarms,
                vr.ok() ? "OK" : "FAILED");
    verify_failed = !vr.ok();
  }

  // Exports go last so they cover the whole run, store traffic included.
  if (!metrics_out.empty()) {
    write_text_file(metrics_out, obs::metrics_json(metrics.snapshot()));
  }
  if (!prom_out.empty()) {
    write_text_file(prom_out, obs::prometheus_text(metrics.snapshot()));
  }
  if (!trace_out.empty()) {
    write_text_file(trace_out,
                    obs::trace_json(tracer.snapshot(), tracer.dropped()));
  }
  if (explain) {
    std::fputs(obs::explain_tree(tracer.snapshot(), metrics.snapshot()).c_str(),
               stdout);
  }
  if (g_interrupted.load(std::memory_order_relaxed)) {
    // Documented contract: interruption is exit 3. Everything durable
    // (checkpoint shards, the manifest) was flushed above; stderr says how
    // to pick the run back up.
    std::fprintf(stderr,
                 "interrupted: run stopped at the next valve check%s\n",
                 store ? "; rerun with --store --resume to continue from the "
                         "completed shards"
                       : "");
    return kExitInternal;
  }
  return (res.degraded() || verify_failed) ? kExitDegraded : kExitOk;
}

/// `ced_cli verify <machine.kiss> --store=DIR`: load the parity scheme a
/// previous `protect --store` run persisted (after full deserialization +
/// integrity checks) and re-prove the bounded-detection property against a
/// freshly synthesized circuit. The shape flags must match the protect run:
/// they are part of the cache key the scheme is filed under.
int cmd_verify(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string store_dir = arg_value(argc, argv, "--store", "");
  if (store_dir.empty()) {
    throw InvalidInputError("verify requires --store=DIR");
  }
  fsm::Fsm f = load_machine(argv[2]);
  if (has_flag(argc, argv, "--minimize-states")) {
    f = fsm::merge_compatible_states(f).machine;
  }
  const int latency =
      std::atoi(arg_value(argc, argv, "--latency", "2").c_str());
  const std::string solver = arg_value(argc, argv, "--solver", "lp");
  const core::SolverKind solver_kind =
      solver == "greedy"  ? core::SolverKind::kGreedy
      : solver == "exact" ? core::SolverKind::kExact
                          : core::SolverKind::kLpRounding;
  const std::string enc = arg_value(argc, argv, "--encoding", "binary");
  const fsm::EncodingKind encoding =
      enc == "gray"     ? fsm::EncodingKind::kGray
      : enc == "onehot" ? fsm::EncodingKind::kOneHot
      : enc == "spread" ? fsm::EncodingKind::kSpread
                        : fsm::EncodingKind::kBinary;

  const fsm::FsmCircuit circuit = fsm::synthesize_fsm(f, encoding, {});
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);

  core::ExtractOptions ex;
  ex.latency = latency;
  if (arg_value(argc, argv, "--semantics", "impl") == std::string("machine")) {
    ex.semantics = core::DiffSemantics::kMachineLevel;
  }
  const int num_shards = core::resolve_checkpoint_shards(
      std::atoi(arg_value(argc, argv, "--checkpoint-shards", "0").c_str()),
      faults.size());
  const std::string key =
      core::extraction_digest(circuit, faults, ex, num_shards);
  const std::string name =
      storage::scheme_name(key, latency, solver_tag(solver_kind));

  storage::ArtifactStore store(store_dir);
  auto scheme = storage::load_scheme(store, name);
  for (const auto& e : store.drain_events()) {
    std::fprintf(stderr, "  [store] %s\n", e.c_str());
  }
  if (!scheme) {
    throw InvalidInputError(
        "no stored scheme " + name + " in " + store_dir + " (" +
        scheme.status().message +
        "); run `ced_cli protect <machine> --store=" + store_dir +
        "` with the same shape flags first");
  }

  std::printf("scheme %s: p=%d, q=%zu parity trees\n", name.c_str(),
              scheme->latency, scheme->parities.size());
  const core::CedHardware hw =
      core::synthesize_ced(circuit, scheme->parities, {});
  const core::VerifyResult vr =
      core::verify_bounded_detection(circuit, hw, faults, scheme->latency);
  std::printf("verification: %zu activations, %zu violations, "
              "%zu false alarms -> %s\n",
              vr.activations_checked, vr.violations, vr.false_alarms,
              vr.ok() ? "OK" : "FAILED");
  for (const auto& m : vr.messages) {
    std::fprintf(stderr, "  %s\n", m.c_str());
  }
  return vr.ok() ? kExitOk : kExitDegraded;
}

/// Runs one campaign, prints its verdict summary, persists the verdict
/// sheet, and appends its JSON entry. Returns the worst exit code observed.
int run_one_campaign(const fsm::FsmCircuit& circuit,
                     const core::CedHardware& hw,
                     const std::vector<sim::StuckAtFault>& faults,
                     const sim::CampaignOptions& copts,
                     const sim::CampaignShardingOptions& sharding,
                     storage::ArtifactStore& store, bool resume,
                     const std::string& label,
                     std::vector<std::string>& json_entries) {
  const auto units = sim::campaign_units(circuit, faults, copts);
  const int num_shards =
      core::resolve_checkpoint_shards(sharding.num_shards, units.size());
  const std::string ckey =
      sim::campaign_digest(circuit, hw, faults, copts, num_shards);

  sim::CampaignCheckpointHooks hooks = storage::make_campaign_hooks(store, ckey);
  if (!resume) hooks.load = {};  // checkpoint reuse is opt-in, like protect

  const auto t0 = std::chrono::steady_clock::now();
  const sim::CampaignReport rep =
      sim::run_campaign(circuit, hw, faults, copts, sharding, hooks);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& e : store.drain_events()) {
    std::fprintf(stderr, "  [store] %s\n", e.c_str());
  }

  std::printf("campaign %s/%s: %llu units, %llu activations (key %s)\n",
              sim::to_string(rep.model), sim::to_string(rep.policy),
              static_cast<unsigned long long>(rep.num_units),
              static_cast<unsigned long long>(rep.activations), ckey.c_str());
  std::printf("  in bound: %llu  late: %llu  silent escapes: %llu  "
              "benign units: %llu\n",
              static_cast<unsigned long long>(rep.detected_in_bound),
              static_cast<unsigned long long>(rep.detected_late),
              static_cast<unsigned long long>(rep.silent_escape),
              static_cast<unsigned long long>(rep.benign_units));
  std::printf("  max latency: %d (bound p=%d, horizon %d)\n", rep.max_latency,
              rep.latency_bound, rep.horizon);
  if (rep.truncated) {
    std::fprintf(stderr, "  truncated: %s\n", rep.truncation_reason.c_str());
  }
  if (rep.hard_guarantee()) {
    std::printf("  guarantee: %s\n",
                rep.bound_holds() ? "HOLDS" : "VIOLATED");
    if (!rep.bound_holds()) {
      // Name the first offending fault so the failure is actionable.
      for (const sim::FaultVerdict& v : rep.verdicts) {
        if (v.detected_late > 0 || v.silent_escape > 0) {
          std::fprintf(stderr,
                       "  first violating unit: %s (late %llu, silent %llu)\n",
                       sim::unit_label(rep.model, v.unit).c_str(),
                       static_cast<unsigned long long>(v.detected_late),
                       static_cast<unsigned long long>(v.silent_escape));
          break;
        }
      }
    }
  } else {
    const double covered =
        rep.activations > 0
            ? 100.0 * static_cast<double>(rep.detected_in_bound) /
                  static_cast<double>(rep.activations)
            : 0.0;
    std::printf("  coverage: %.1f%% of activations within bound "
                "(diagnostic model)\n",
                covered);
  }

  if (!rep.truncated) {
    storage::store_campaign_report(store, storage::campaign_report_name(ckey),
                                   rep);
    storage::drop_campaign_shards(store, ckey);
  }
  json_entries.push_back(sim::campaign_report_json(
      rep, label, wall, resolve_threads(copts.threads)));

  if (rep.hard_guarantee() && !rep.bound_holds()) return kExitDegraded;
  return rep.truncated ? kExitDegraded : kExitOk;
}

/// `ced_cli campaign <machine.kiss> --store=DIR`: close the loop on the
/// paper's claim by injecting faults into the full protected design and
/// watching the checker fire. Loads the scheme stored by a `protect
/// --store` run (same shape flags), builds the Fig. 3 hardware, and runs
/// the fault-injection campaign; for §2-class stuck-at faults the bound is
/// asserted (violations exit 1), for flip models coverage is measured.
int cmd_campaign(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string store_dir = arg_value(argc, argv, "--store", "");
  if (store_dir.empty()) {
    throw InvalidInputError("campaign requires --store=DIR");
  }
  fsm::Fsm f = load_machine(argv[2]);
  if (has_flag(argc, argv, "--minimize-states")) {
    f = fsm::merge_compatible_states(f).machine;
  }

  // Shape flags: must match the protect run that stored the scheme (they
  // are part of the scheme's cache key).
  const int latency =
      std::atoi(arg_value(argc, argv, "--latency", "2").c_str());
  const std::string solver = arg_value(argc, argv, "--solver", "lp");
  const core::SolverKind solver_kind =
      solver == "greedy"  ? core::SolverKind::kGreedy
      : solver == "exact" ? core::SolverKind::kExact
                          : core::SolverKind::kLpRounding;
  const std::string enc = arg_value(argc, argv, "--encoding", "binary");
  const fsm::EncodingKind encoding =
      enc == "gray"     ? fsm::EncodingKind::kGray
      : enc == "onehot" ? fsm::EncodingKind::kOneHot
      : enc == "spread" ? fsm::EncodingKind::kSpread
                        : fsm::EncodingKind::kBinary;

  const std::string metrics_out = arg_value(argc, argv, "--metrics-out", "");
  const std::string trace_out = arg_value(argc, argv, "--trace-out", "");
  const bool observing = !metrics_out.empty() || !trace_out.empty();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const obs::Sinks sinks =
      observing ? obs::Sinks{&tracer, &metrics, 0} : obs::Sinks{};

  const fsm::FsmCircuit circuit = fsm::synthesize_fsm(f, encoding, {});
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);

  core::ExtractOptions ex;
  ex.latency = latency;
  if (arg_value(argc, argv, "--semantics", "impl") == std::string("machine")) {
    ex.semantics = core::DiffSemantics::kMachineLevel;
  }
  const int scheme_shards = core::resolve_checkpoint_shards(
      std::atoi(arg_value(argc, argv, "--checkpoint-shards", "0").c_str()),
      faults.size());
  const std::string key =
      core::extraction_digest(circuit, faults, ex, scheme_shards);
  const std::string name =
      storage::scheme_name(key, latency, solver_tag(solver_kind));

  storage::ArtifactStore store(store_dir);
  store.set_sinks(sinks);
  auto scheme = storage::load_scheme(store, name);
  for (const auto& e : store.drain_events()) {
    std::fprintf(stderr, "  [store] %s\n", e.c_str());
  }
  if (!scheme) {
    throw InvalidInputError(
        "no stored scheme " + name + " in " + store_dir + " (" +
        scheme.status().message +
        "); run `ced_cli protect <machine> --store=" + store_dir +
        "` with the same shape flags first");
  }
  std::printf("scheme %s: p=%d, q=%zu parity trees\n", name.c_str(),
              scheme->latency, scheme->parities.size());
  const core::CedHardware hw =
      core::synthesize_ced(circuit, scheme->parities, {});

  const bool soak = has_flag(argc, argv, "--soak");
  sim::CampaignOptions base;
  base.latency_bound = scheme->latency;
  base.horizon = std::atoi(arg_value(argc, argv, "--horizon", "0").c_str());
  base.persistence =
      std::atoi(arg_value(argc, argv, "--persistence", "0").c_str());
  base.flip_bits = std::atoi(arg_value(argc, argv, "--k", "1").c_str());
  base.walks =
      std::atoi(arg_value(argc, argv, "--walks", soak ? "32" : "8").c_str());
  base.walk_length = std::atoi(
      arg_value(argc, argv, "--walk-length", soak ? "512" : "96").c_str());
  base.seed = static_cast<std::uint64_t>(std::strtoull(
      arg_value(argc, argv, "--seed", "212250478").c_str(), nullptr, 0));
  base.threads = std::atoi(arg_value(argc, argv, "--threads", "0").c_str());
  core::RunBudget budget = budget_from_args(argc, argv);
  budget.interrupt = &g_interrupted;
  base.deadline = core::Deadline::from(budget);
  base.obs = sinks;

  sim::CampaignShardingOptions sharding;
  sharding.num_shards =
      std::atoi(arg_value(argc, argv, "--checkpoint-shards", "0").c_str());
  sharding.max_new_shards =
      std::atoi(arg_value(argc, argv, "--max-new-shards", "0").c_str());
  const bool resume = has_flag(argc, argv, "--resume");

  // Which (model, policy) pairs run: one, or the full soak sweep.
  std::vector<sim::CampaignOptions> runs;
  if (soak) {
    for (const sim::FaultModel m :
         {sim::FaultModel::kStuckAt, sim::FaultModel::kTransientFlip,
          sim::FaultModel::kAdversarialFlip}) {
      sim::CampaignOptions o = base;
      o.model = m;
      o.policy = sim::CampaignPolicy::kRandomWalks;
      runs.push_back(o);
    }
  } else {
    const std::string model = arg_value(argc, argv, "--model", "stuck");
    const std::string policy = arg_value(
        argc, argv, "--policy", model == "stuck" ? "exhaustive" : "walks");
    sim::CampaignOptions o = base;
    o.model = model == "transient"     ? sim::FaultModel::kTransientFlip
              : model == "adversarial" ? sim::FaultModel::kAdversarialFlip
                                       : sim::FaultModel::kStuckAt;
    o.policy = policy == "walks" ? sim::CampaignPolicy::kRandomWalks
                                 : sim::CampaignPolicy::kExhaustive;
    runs.push_back(o);
  }

  ScopedSigint sigint_guard;
  std::vector<std::string> json_entries;
  int exit_code = kExitOk;
  try {
    for (const sim::CampaignOptions& copts : runs) {
      exit_code = std::max(
          exit_code, run_one_campaign(circuit, hw, faults, copts, sharding,
                                      store, resume, argv[2], json_entries));
    }
  } catch (const std::invalid_argument& e) {
    throw InvalidInputError(e.what());
  }

  const std::string json_out =
      arg_value(argc, argv, "--json-out", "BENCH_campaign.json");
  if (!json_out.empty() && json_out != "-") {
    std::string doc = "{\"schema\":\"ced-campaign-v1\",\"campaigns\":[";
    for (std::size_t i = 0; i < json_entries.size(); ++i) {
      if (i != 0) doc += ",";
      doc += json_entries[i];
    }
    doc += "]}\n";
    write_text_file(json_out, doc);
    std::printf("wrote %s (%zu campaign%s)\n", json_out.c_str(),
                json_entries.size(), json_entries.size() == 1 ? "" : "s");
  }
  if (!metrics_out.empty()) {
    write_text_file(metrics_out, obs::metrics_json(metrics.snapshot()));
  }
  if (!trace_out.empty()) {
    write_text_file(trace_out,
                    obs::trace_json(tracer.snapshot(), tracer.dropped()));
  }
  if (g_interrupted.load(std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "interrupted: campaign stopped at the next unit boundary; "
                 "completed shards are durable — rerun with --resume\n");
    return kExitInternal;
  }
  return exit_code;
}

/// `ced_cli store verify|gc --store=DIR`: maintenance passes over the
/// artifact store itself.
int cmd_store(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];
  const std::string store_dir = arg_value(argc, argv, "--store", "");
  if (store_dir.empty()) {
    throw InvalidInputError("store " + sub + " requires --store=DIR");
  }
  storage::ArtifactStore store(store_dir);
  if (!store.status().ok()) {
    throw InvalidInputError(store.status().message);
  }
  if (sub == "verify") {
    const storage::VerifyStats st = store.verify_all();
    for (const auto& e : store.drain_events()) {
      std::fprintf(stderr, "  [store] %s\n", e.c_str());
    }
    std::printf("scanned %zu artifacts: %zu ok, %zu quarantined\n", st.scanned,
                st.ok, st.quarantined);
    return st.quarantined > 0 ? kExitDegraded : kExitOk;
  }
  if (sub == "gc") {
    const storage::GcStats st = store.gc();
    std::printf("gc: removed %zu temp files, %zu quarantined artifacts, "
                "%zu superseded shard checkpoints\n",
                st.tmp_removed, st.quarantine_removed,
                st.stale_shards_removed);
    return kExitOk;
  }
  if (sub == "list") {
    auto names = store.list();
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) std::printf("%s\n", name.c_str());
    return kExitOk;
  }
  if (sub == "show") {
    if (argc < 4 || argv[3][0] == '-') {
      throw InvalidInputError("store show requires an artifact name "
                              "(see `ced_cli store list`)");
    }
    const std::string name = argv[3];
    auto man = storage::load_manifest(store, name);
    for (const auto& e : store.drain_events()) {
      std::fprintf(stderr, "  [store] %s\n", e.c_str());
    }
    if (!man) {
      throw InvalidInputError("cannot load manifest " + name + ": " +
                              man.status().message);
    }
    std::printf("manifest %s\n", name.c_str());
    std::printf("  circuit: %s  p=%d  threads=%d\n", man->circuit.c_str(),
                man->latency, man->threads);
    std::printf("  config digest:  %s\n", man->config_digest.c_str());
    std::printf("  extraction key: %s\n", man->extraction_key.c_str());
    std::printf("  parities (q=%zu):\n", man->parities.size());
    for (std::size_t l = 0; l < man->parities.size(); ++l) {
      std::printf("    tree %zu: mask 0x%llx\n", l,
                  static_cast<unsigned long long>(man->parities[l]));
    }
    std::printf(
        "  stage times: synth=%.3fs extract=%.3fs solve=%.3fs ced=%.3fs "
        "total=%.3fs\n",
        man->t_synth, man->t_extract, man->t_solve, man->t_ced,
        man->t_synth + man->t_extract + man->t_solve + man->t_ced);
    const std::string summary = man->resilience.summary();
    if (!summary.empty()) std::fputs(summary.c_str(), stdout);
    if (!man->spans.empty()) {
      std::fputs(obs::explain_tree(man->spans, {}).c_str(), stdout);
    }
    return kExitOk;
  }
  return usage();
}

int cmd_generate(int argc, char** argv) {
  // --suite=NAME emits the exact KISS2 text of one Table-1 suite circuit
  // (the profile-matched stand-ins are generated, so the text is
  // reproducible); this is how CI hands suite circuits to `protect`.
  const std::string suite = arg_value(argc, argv, "--suite", "");
  if (!suite.empty()) {
    for (const auto& e : benchdata::mcnc_suite()) {
      if (e.name == suite) {
        std::fputs(benchdata::generate_kiss(e.spec).c_str(), stdout);
        return kExitOk;
      }
    }
    throw InvalidInputError("unknown suite circuit: " + suite);
  }
  benchdata::SyntheticSpec spec;
  spec.name = "generated";
  spec.states = std::atoi(arg_value(argc, argv, "--states", "12").c_str());
  spec.inputs = std::atoi(arg_value(argc, argv, "--inputs", "3").c_str());
  spec.outputs = std::atoi(arg_value(argc, argv, "--outputs", "3").c_str());
  spec.seed = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--seed", "1").c_str()));
  spec.self_loop_bias =
      std::atof(arg_value(argc, argv, "--self-loops", "0.2").c_str());
  spec.branches = std::atoi(arg_value(argc, argv, "--branches", "5").c_str());
  try {
    std::fputs(benchdata::generate_kiss(spec).c_str(), stdout);
  } catch (const std::invalid_argument& e) {
    throw InvalidInputError(e.what());
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "analyze") == 0) return cmd_analyze(argc, argv);
    if (std::strcmp(argv[1], "protect") == 0) return cmd_protect(argc, argv);
    if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
    if (std::strcmp(argv[1], "verify") == 0) return cmd_verify(argc, argv);
    if (std::strcmp(argv[1], "campaign") == 0) return cmd_campaign(argc, argv);
    if (std::strcmp(argv[1], "store") == 0) return cmd_store(argc, argv);
    if (std::strcmp(argv[1], "help") == 0 ||
        std::strcmp(argv[1], "--help") == 0) {
      return cmd_help();
    }
  } catch (const InvalidInputError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInvalidInput;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: invalid input: %s\n", e.what());
    return kExitInvalidInput;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return kExitInternal;
  }
  return usage();
}
