#pragma once

/// Umbrella header for the bounded-latency concurrent-error-detection
/// library (reproduction of Almukhaizim/Drineas/Makris, DATE 2004).
/// Pull in everything; fine-grained headers remain available for
/// compile-time-sensitive consumers.

// Structured status/result types shared by every layer, and the
// thread-pool-free parallel-for used by the hot paths.
#include "common/parallel.hpp"
#include "common/status.hpp"

// Logic substrate: cubes/covers, minimizers, netlists, optimization,
// factoring, areas, BLIF/Verilog interchange.
#include "logic/area.hpp"
#include "logic/bitvec.hpp"
#include "logic/blif.hpp"
#include "logic/cover.hpp"
#include "logic/cube.hpp"
#include "logic/factor.hpp"
#include "logic/minimize.hpp"
#include "logic/netlist.hpp"
#include "logic/opt.hpp"
#include "logic/synth.hpp"
#include "logic/truth_table.hpp"

// KISS2 + FSM substrate.
#include "fsm/analysis.hpp"
#include "fsm/encoded.hpp"
#include "fsm/encoding.hpp"
#include "fsm/fsm.hpp"
#include "fsm/minimize_states.hpp"
#include "fsm/synthesize.hpp"
#include "kiss/kiss.hpp"

// Fault simulation substrate.
#include "sim/fault_sim.hpp"
#include "sim/faults.hpp"

// LP solver.
#include "lp/simplex.hpp"

// Observability: metrics registry, span tracer, exporters.
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// The paper's contribution and its extensions.
#include "core/algorithm1.hpp"
#include "core/area_aware.hpp"
#include "core/convolutional.hpp"
#include "core/duplication.hpp"
#include "core/erroneous_case.hpp"
#include "core/exact.hpp"
#include "core/extract.hpp"
#include "core/greedy.hpp"
#include "core/ilp.hpp"
#include "core/latency.hpp"
#include "core/parity.hpp"
#include "core/parity_synth.hpp"
#include "core/pipeline.hpp"
#include "core/resilience.hpp"
#include "core/run.hpp"
#include "core/solver.hpp"
#include "core/verify.hpp"
