#include "kiss/kiss.hpp"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace ced::kiss {
namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("kiss2 parse error (line " + std::to_string(line) +
                           "): " + msg);
}

bool is_pattern(const std::string& s, bool allow_dash) {
  for (char c : s) {
    if (c == '0' || c == '1') continue;
    if (allow_dash && c == '-') continue;
    return false;
  }
  return !s.empty();
}

}  // namespace

Kiss2 parse(std::string_view text) {
  Kiss2 k;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  bool saw_i = false;
  bool saw_o = false;
  bool ended = false;
  std::unordered_set<std::string> seen_rows;

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments ('#' to end of line) and surrounding whitespace.
    if (auto pos = line.find('#'); pos != std::string::npos) {
      line.erase(pos);
    }
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // blank line
    if (ended) fail(line_no, "content after .e");

    if (tok == ".i") {
      if (!(ls >> k.num_inputs) || k.num_inputs <= 0) {
        fail(line_no, "bad .i");
      }
      saw_i = true;
    } else if (tok == ".o") {
      if (!(ls >> k.num_outputs) || k.num_outputs < 0) {
        fail(line_no, "bad .o");
      }
      saw_o = true;
    } else if (tok == ".p") {
      int p = 0;
      if (!(ls >> p)) fail(line_no, "bad .p");
      k.declared_terms = p;
    } else if (tok == ".s") {
      int s = 0;
      if (!(ls >> s)) fail(line_no, "bad .s");
      k.declared_states = s;
    } else if (tok == ".r") {
      if (!(ls >> k.reset_state)) fail(line_no, "bad .r");
    } else if (tok == ".e" || tok == ".end") {
      ended = true;
    } else if (tok[0] == '.') {
      fail(line_no, "unknown directive '" + tok + "'");
    } else {
      Transition t;
      t.input = tok;
      if (!(ls >> t.current >> t.next >> t.output)) {
        fail(line_no, "transition needs 4 fields");
      }
      if (!saw_i || !saw_o) fail(line_no, ".i/.o must precede transitions");
      if (!is_pattern(t.input, true) ||
          static_cast<int>(t.input.size()) != k.num_inputs) {
        fail(line_no, "bad input cube '" + t.input + "'");
      }
      if (!is_pattern(t.output, true) ||
          static_cast<int>(t.output.size()) != k.num_outputs) {
        fail(line_no, "bad output pattern '" + t.output + "'");
      }
      // A deterministic machine cannot fire two rows from the same state on
      // the same input cube; an exact duplicate is always a file error.
      if (!seen_rows.insert(t.current + '\x01' + t.input).second) {
        fail(line_no, "duplicate transition for state '" + t.current +
                          "' on input '" + t.input + "'");
      }
      k.transitions.push_back(std::move(t));
    }
  }

  if (!saw_i || !saw_o) throw std::runtime_error("kiss2: missing .i/.o");
  if (k.transitions.empty()) throw std::runtime_error("kiss2: no transitions");

  std::unordered_set<std::string> states;
  for (const auto& t : k.transitions) {
    states.insert(t.current);
    states.insert(t.next);
  }
  if (k.reset_state.empty()) {
    k.reset_state = k.transitions.front().current;
  } else if (!states.count(k.reset_state)) {
    throw std::runtime_error("kiss2: reset state never appears");
  }
  if (k.declared_terms &&
      *k.declared_terms != static_cast<int>(k.transitions.size())) {
    throw std::runtime_error("kiss2: .p does not match transition count");
  }
  if (k.declared_states &&
      *k.declared_states != static_cast<int>(states.size())) {
    throw std::runtime_error("kiss2: .s does not match state count");
  }
  return k;
}

Result<Kiss2> try_parse(std::string_view text) {
  try {
    return parse(text);
  } catch (const std::exception& e) {
    return Status::invalid_input(Stage::kParse, e.what());
  }
}

std::string write(const Kiss2& k) {
  std::unordered_set<std::string> states;
  for (const auto& t : k.transitions) {
    states.insert(t.current);
    states.insert(t.next);
  }
  std::ostringstream out;
  out << ".i " << k.num_inputs << '\n';
  out << ".o " << k.num_outputs << '\n';
  out << ".p " << k.transitions.size() << '\n';
  out << ".s " << states.size() << '\n';
  if (!k.reset_state.empty()) out << ".r " << k.reset_state << '\n';
  for (const auto& t : k.transitions) {
    out << t.input << ' ' << t.current << ' ' << t.next << ' ' << t.output
        << '\n';
  }
  out << ".e\n";
  return out.str();
}

}  // namespace ced::kiss
