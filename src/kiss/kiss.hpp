#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace ced::kiss {

/// One symbolic state-transition-graph edge as written in a KISS2 file.
struct Transition {
  std::string input;    ///< Input cube: one of '0','1','-' per input bit.
  std::string current;  ///< Symbolic present-state name.
  std::string next;     ///< Symbolic next-state name.
  std::string output;   ///< Output pattern: one of '0','1','-' per output.
};

/// In-memory form of a KISS2 FSM description (the MCNC benchmark format).
struct Kiss2 {
  int num_inputs = 0;                 ///< `.i`
  int num_outputs = 0;                ///< `.o`
  std::optional<int> declared_terms;  ///< `.p` (validated if present)
  std::optional<int> declared_states; ///< `.s` (validated if present)
  std::string reset_state;            ///< `.r`; defaults to first state seen.
  std::vector<Transition> transitions;
};

/// Parses KISS2 text. Throws std::runtime_error with a line-numbered message
/// on malformed input; validates `.p`/`.s` declarations when present and
/// rejects exact duplicate (input cube, present state) transition rows.
Kiss2 parse(std::string_view text);

/// Non-throwing variant: malformed input yields a Status with code
/// kInvalidInput, stage kParse, and the same line-numbered diagnostic the
/// throwing parser would have raised.
Result<Kiss2> try_parse(std::string_view text);

/// Serializes back to KISS2 text (including `.p`, `.s`, `.r`).
std::string write(const Kiss2& k);

}  // namespace ced::kiss
