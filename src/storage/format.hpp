#pragma once

// Versioned, corruption-detecting binary artifact format.
//
// Envelope layout (little-endian):
//   magic   "CEDA"                      4 bytes
//   u16     format version (kFormatVersion)
//   u16     artifact kind (ArtifactKind)
//   u32     section count
//   then per section:
//     u32   tag          (FourCC-ish section id)
//     u64   payload size
//     u32   CRC32 of the payload bytes
//     payload
//
// Every reader path is bounds-checked and returns a classified Status on
// magic/version/kind mismatch, truncation, or a CRC failure — a bit-flipped
// or half-written artifact is *detected*, never silently decoded. The
// store layer (store.hpp) quarantines files this module rejects.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "core/extract.hpp"
#include "core/pipeline.hpp"
#include "fsm/synthesize.hpp"
#include "obs/trace.hpp"
#include "sim/campaign.hpp"
#include "sim/faults.hpp"

namespace ced::storage {

inline constexpr char kMagic[4] = {'C', 'E', 'D', 'A'};
inline constexpr std::uint16_t kFormatVersion = 1;

enum class ArtifactKind : std::uint16_t {
  kCircuit = 1,
  kFaultList = 2,
  kTableBundle = 3,
  kParityScheme = 4,
  kReport = 5,
  kShard = 6,
  kManifest = 7,
  kCampaignShard = 8,
  kCampaignReport = 9,
};

const char* to_string(ArtifactKind k);

// ----------------------------------------------------------- byte streams

/// Append-only little-endian byte buffer used by every encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(std::string_view s);  ///< u64 length + bytes
  void bytes(std::string_view s) { out_.append(s); }

  const std::string& data() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over an encoded payload. Every accessor reports
/// underflow through ok()/status() instead of reading past the end; callers
/// check once at the end of a decode.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  /// True while no read has run past the end.
  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == data_.size(); }
  Status status(const std::string& what) const;

 private:
  bool take(std::size_t n, const char** p);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// -------------------------------------------------------------- envelope

/// Builds an artifact: sections are appended, then seal() produces the
/// final byte string with the envelope header and per-section CRC32s.
class ArtifactWriter {
 public:
  explicit ArtifactWriter(ArtifactKind kind) : kind_(kind) {}

  void section(std::uint32_t tag, std::string payload);
  std::string seal() const;

 private:
  ArtifactKind kind_;
  std::vector<std::pair<std::uint32_t, std::string>> sections_;
};

/// Parses and integrity-checks an artifact envelope. `expected_kind`
/// mismatches, unknown versions, truncation and CRC failures all yield a
/// Status naming the problem.
class ArtifactReader {
 public:
  static Result<ArtifactReader> open(std::string_view bytes,
                                     ArtifactKind expected_kind);

  /// Payload of the first section with `tag`, or a Status when absent.
  Result<std::string_view> section(std::uint32_t tag) const;
  std::size_t num_sections() const { return sections_.size(); }
  ArtifactKind kind() const { return kind_; }

 private:
  ArtifactKind kind_ = ArtifactKind::kCircuit;
  std::vector<std::pair<std::uint32_t, std::string_view>> sections_;
};

/// Envelope-only integrity check (any kind): used by `store verify` scans.
Status validate_envelope(std::string_view bytes);

// ------------------------------------------------------------ serializers
//
// Each encoder produces a complete artifact (envelope included); each
// decoder validates the envelope and every field. encode(decode(bytes))
// reproduces `bytes` exactly — the format is canonical, which is what lets
// tests assert byte-identity of resumed runs.

std::string encode_circuit(const fsm::FsmCircuit& c);
Result<fsm::FsmCircuit> decode_circuit(std::string_view bytes);

std::string encode_fault_list(std::span<const sim::StuckAtFault> faults);
Result<std::vector<sim::StuckAtFault>> decode_fault_list(
    std::string_view bytes);

std::string encode_tables(const std::vector<core::DetectabilityTable>& tabs);
Result<std::vector<core::DetectabilityTable>> decode_tables(
    std::string_view bytes);

std::string encode_shard(const core::ExtractShard& shard);
Result<core::ExtractShard> decode_shard(std::string_view bytes);

/// A parity scheme as stored for later re-validation: the latency bound it
/// was selected for plus the masks.
struct SchemeArtifact {
  int latency = 0;
  std::vector<core::ParityFunc> parities;
};

std::string encode_scheme(const SchemeArtifact& s);
Result<SchemeArtifact> decode_scheme(std::string_view bytes);

std::string encode_report(const core::PipelineReport& rep);
Result<core::PipelineReport> decode_report(std::string_view bytes);

/// The signed-off record of one pipeline run: which configuration ran
/// (RunConfig::digest()), on which extraction input (the content-addressed
/// extraction key), what it decided (cascade levels, degradation events,
/// store incidents), what it produced (q and the parity masks), and how
/// long each stage took — including the stage span tree when the run was
/// traced. Everything a later session needs to audit or reproduce the run
/// without re-running it.
struct ManifestArtifact {
  std::string config_digest;    ///< RunConfig::digest() fingerprint
  std::string extraction_key;   ///< extraction_digest(); "" without archive
  std::string circuit;          ///< human label (CLI argument)
  int latency = 0;
  int threads = 0;              ///< execution context, informational only
  std::vector<core::ParityFunc> parities;
  core::ResilienceReport resilience;
  double t_synth = 0, t_extract = 0, t_solve = 0, t_ced = 0;
  /// Completed spans of the run (empty when tracing was off).
  std::vector<obs::SpanRecord> spans;
};

std::string encode_manifest(const ManifestArtifact& m);
Result<ManifestArtifact> decode_manifest(std::string_view bytes);

/// Campaign checkpoint shard / verdict sheet round-trips. Like every other
/// codec these are canonical (encode(decode(bytes)) == bytes), which is
/// what the campaign's byte-identity acceptance checks compare.
std::string encode_campaign_shard(const sim::CampaignShard& shard);
Result<sim::CampaignShard> decode_campaign_shard(std::string_view bytes);

std::string encode_campaign_report(const sim::CampaignReport& rep);
Result<sim::CampaignReport> decode_campaign_report(std::string_view bytes);

}  // namespace ced::storage
