#include "storage/format.hpp"

#include <bit>
#include <cstring>

#include "common/io.hpp"
#include "core/erroneous_case.hpp"

namespace ced::storage {
namespace {

constexpr std::uint32_t tag4(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kTagEncoding = tag4('E', 'N', 'C', '_');
constexpr std::uint32_t kTagNetlist = tag4('N', 'E', 'T', '_');
constexpr std::uint32_t kTagCovers = tag4('C', 'O', 'V', '_');
constexpr std::uint32_t kTagFaults = tag4('F', 'L', 'T', '_');
constexpr std::uint32_t kTagTables = tag4('T', 'A', 'B', '_');
constexpr std::uint32_t kTagShard = tag4('S', 'H', 'R', 'D');
constexpr std::uint32_t kTagScheme = tag4('S', 'C', 'H', 'M');
constexpr std::uint32_t kTagReport = tag4('R', 'E', 'P', 'T');
constexpr std::uint32_t kTagManifest = tag4('M', 'A', 'N', 'F');
constexpr std::uint32_t kTagCampaignShard = tag4('C', 'S', 'H', 'D');
constexpr std::uint32_t kTagCampaignReport = tag4('C', 'R', 'P', 'T');

Status corrupt(const std::string& what) {
  return Status::invalid_input(Stage::kStore, what);
}

// Resilience reports appear in two artifacts (report + manifest); one
// writer/reader pair keeps the wire layouts identical.
void put_resilience(ByteWriter& w, const core::ResilienceReport& res) {
  w.u8(static_cast<std::uint8_t>(res.status.code));
  w.u8(static_cast<std::uint8_t>(res.status.stage));
  w.str(res.status.message);
  w.u8(res.extraction_truncated ? 1 : 0);
  w.u8(res.table_strengthened ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(res.solver_requested));
  w.u8(static_cast<std::uint8_t>(res.solver_used));
  w.u64(res.events.size());
  for (const core::FallbackEvent& e : res.events) {
    w.u8(static_cast<std::uint8_t>(e.stage));
    w.u8(static_cast<std::uint8_t>(e.reason));
    w.str(e.detail);
    w.f64(e.seconds);
    w.u64(e.cases_seen);
  }
  w.u64(res.store_events.size());
  for (const std::string& e : res.store_events) w.str(e);
}

/// nullptr on success, else what was malformed (for corrupt()).
const char* get_resilience(ByteReader& r, core::ResilienceReport& res) {
  const std::uint8_t code = r.u8();
  const std::uint8_t stage = r.u8();
  if (!r.ok() || code > static_cast<std::uint8_t>(StatusCode::kInternal) ||
      stage > static_cast<std::uint8_t>(Stage::kStore)) {
    return "status malformed";
  }
  res.status.code = static_cast<StatusCode>(code);
  res.status.stage = static_cast<Stage>(stage);
  res.status.message = r.str();
  res.extraction_truncated = r.u8() != 0;
  res.table_strengthened = r.u8() != 0;
  const std::uint8_t requested = r.u8();
  const std::uint8_t used = r.u8();
  if (!r.ok() ||
      requested > static_cast<std::uint8_t>(core::CascadeLevel::kDuplication) ||
      used > static_cast<std::uint8_t>(core::CascadeLevel::kDuplication)) {
    return "cascade levels malformed";
  }
  res.solver_requested = static_cast<core::CascadeLevel>(requested);
  res.solver_used = static_cast<core::CascadeLevel>(used);
  const std::uint64_t num_events = r.u64();
  if (!r.ok() || num_events > 4096) return "events malformed";
  for (std::uint64_t i = 0; i < num_events; ++i) {
    core::FallbackEvent e;
    const std::uint8_t estage = r.u8();
    const std::uint8_t ereason = r.u8();
    if (!r.ok() || estage > static_cast<std::uint8_t>(Stage::kStore) ||
        ereason > static_cast<std::uint8_t>(StatusCode::kInternal)) {
      return "event malformed";
    }
    e.stage = static_cast<Stage>(estage);
    e.reason = static_cast<StatusCode>(ereason);
    e.detail = r.str();
    e.seconds = r.f64();
    e.cases_seen = r.u64();
    res.events.push_back(std::move(e));
  }
  const std::uint64_t num_store_events = r.u64();
  if (!r.ok() || num_store_events > 4096) return "store events malformed";
  for (std::uint64_t i = 0; i < num_store_events; ++i) {
    res.store_events.push_back(r.str());
  }
  return nullptr;
}

}  // namespace

const char* to_string(ArtifactKind k) {
  switch (k) {
    case ArtifactKind::kCircuit: return "circuit";
    case ArtifactKind::kFaultList: return "fault-list";
    case ArtifactKind::kTableBundle: return "table-bundle";
    case ArtifactKind::kParityScheme: return "parity-scheme";
    case ArtifactKind::kReport: return "report";
    case ArtifactKind::kShard: return "shard";
    case ArtifactKind::kManifest: return "manifest";
    case ArtifactKind::kCampaignShard: return "campaign-shard";
    case ArtifactKind::kCampaignReport: return "campaign-report";
  }
  return "?";
}

// ----------------------------------------------------------- byte streams

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u64(s.size());
  out_.append(s);
}

bool ByteReader::take(std::size_t n, const char** p) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  const char* p = nullptr;
  if (!take(1, &p)) return 0;
  return static_cast<std::uint8_t>(*p);
}

std::uint16_t ByteReader::u16() {
  const char* p = nullptr;
  if (!take(2, &p)) return 0;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(static_cast<unsigned char>(p[i]))
                << (8 * i));
  }
  return v;
}

std::uint32_t ByteReader::u32() {
  const char* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  const char* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string s(data_.data() + pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

Status ByteReader::status(const std::string& what) const {
  if (ok_) return Status::make_ok();
  return corrupt(what + ": payload truncated or malformed");
}

// -------------------------------------------------------------- envelope

void ArtifactWriter::section(std::uint32_t tag, std::string payload) {
  sections_.emplace_back(tag, std::move(payload));
}

std::string ArtifactWriter::seal() const {
  ByteWriter w;
  w.bytes(std::string_view(kMagic, 4));
  w.u16(kFormatVersion);
  w.u16(static_cast<std::uint16_t>(kind_));
  w.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [tag, payload] : sections_) {
    w.u32(tag);
    w.u64(payload.size());
    w.u32(io::crc32(payload));
    w.bytes(payload);
  }
  return std::string(w.data());
}

Result<ArtifactReader> ArtifactReader::open(std::string_view bytes,
                                            ArtifactKind expected_kind) {
  if (bytes.size() < 12 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return corrupt("bad magic (not a CED artifact, or header destroyed)");
  }
  ByteReader r(bytes.substr(4));
  const std::uint16_t version = r.u16();
  if (version != kFormatVersion) {
    return corrupt("unsupported format version " + std::to_string(version) +
                   " (expected " + std::to_string(kFormatVersion) + ")");
  }
  const std::uint16_t kind = r.u16();
  const std::uint32_t count = r.u32();
  ArtifactReader out;
  out.kind_ = static_cast<ArtifactKind>(kind);
  std::size_t pos = 12;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (bytes.size() - pos < 16) return corrupt("section header truncated");
    ByteReader h(bytes.substr(pos, 16));
    const std::uint32_t tag = h.u32();
    const std::uint64_t size = h.u64();
    const std::uint32_t crc = h.u32();
    pos += 16;
    if (bytes.size() - pos < size) return corrupt("section payload truncated");
    const std::string_view payload = bytes.substr(pos, size);
    pos += static_cast<std::size_t>(size);
    if (io::crc32(payload) != crc) {
      return corrupt("section CRC mismatch (artifact corrupted)");
    }
    out.sections_.emplace_back(tag, payload);
  }
  if (pos != bytes.size()) return corrupt("trailing garbage after sections");
  if (out.kind_ != expected_kind) {
    return corrupt(std::string("artifact kind mismatch: found ") +
                   to_string(out.kind_) + ", expected " +
                   to_string(expected_kind));
  }
  return out;
}

Result<std::string_view> ArtifactReader::section(std::uint32_t tag) const {
  for (const auto& [t, payload] : sections_) {
    if (t == tag) return payload;
  }
  return corrupt("required section missing");
}

Status validate_envelope(std::string_view bytes) {
  if (bytes.size() < 12 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return corrupt("bad magic");
  }
  ByteReader r(bytes.substr(4));
  const std::uint16_t version = r.u16();
  const std::uint16_t kind = r.u16();
  if (version != kFormatVersion) {
    return corrupt("unsupported format version " + std::to_string(version));
  }
  // Reuse the full parse for bounds + CRC checks; accept whatever kind the
  // header claims.
  auto opened = ArtifactReader::open(bytes, static_cast<ArtifactKind>(kind));
  return opened ? Status::make_ok() : opened.status();
}

// --------------------------------------------------------------- helpers

namespace {

void put_bitvec(ByteWriter& w, const logic::BitVec& bv) {
  w.u64(bv.size());
  w.u64(bv.words().size());
  for (const std::uint64_t word : bv.words()) w.u64(word);
}

bool get_bitvec(ByteReader& r, logic::BitVec& out) {
  const std::uint64_t size = r.u64();
  const std::uint64_t words = r.u64();
  if (!r.ok()) return false;
  if (words != (size + 63) / 64) return false;
  out = logic::BitVec(static_cast<std::size_t>(size));
  for (std::uint64_t wi = 0; wi < words; ++wi) {
    const std::uint64_t word = r.u64();
    if (!r.ok()) return false;
    for (int b = 0; b < 64; ++b) {
      if (!((word >> b) & 1)) continue;
      const std::uint64_t idx = wi * 64 + static_cast<std::uint64_t>(b);
      if (idx >= size) return false;  // trailing bit set: non-canonical
      out.set(static_cast<std::size_t>(idx));
    }
  }
  return true;
}

void put_spec(ByteWriter& w, const logic::SopSpec& s) {
  w.u32(static_cast<std::uint32_t>(s.num_vars));
  put_bitvec(w, s.on);
  put_bitvec(w, s.dc);
}

bool get_spec(ByteReader& r, logic::SopSpec& out) {
  const std::uint32_t vars = r.u32();
  if (!r.ok() || vars > logic::TruthTable::kMaxVars) return false;
  out = logic::SopSpec(static_cast<int>(vars));
  return get_bitvec(r, out.on) && get_bitvec(r, out.dc) &&
         out.on.size() == (std::size_t{1} << vars) &&
         out.dc.size() == (std::size_t{1} << vars);
}

void put_table(ByteWriter& w, const core::DetectabilityTable& t) {
  w.u32(static_cast<std::uint32_t>(t.num_bits));
  w.u32(static_cast<std::uint32_t>(t.latency));
  w.u8(t.strengthened ? 1 : 0);
  w.u8(t.truncated ? 1 : 0);
  w.str(t.truncation_reason);
  w.u64(t.num_faults);
  w.u64(t.num_detectable_faults);
  w.u64(t.num_activations);
  w.u64(t.num_paths);
  w.u64(t.num_loop_truncations);
  w.u64(t.cases.size());
  for (const core::ErroneousCase& ec : t.cases) {
    w.u8(ec.length);
    for (int k = 0; k < ec.length; ++k) {
      w.u64(ec.diff[static_cast<std::size_t>(k)]);
    }
  }
}

bool get_table(ByteReader& r, core::DetectabilityTable& t) {
  t.num_bits = static_cast<int>(r.u32());
  t.latency = static_cast<int>(r.u32());
  const std::uint8_t strengthened = r.u8();
  const std::uint8_t truncated = r.u8();
  if (strengthened > 1 || truncated > 1) return false;
  t.strengthened = strengthened != 0;
  t.truncated = truncated != 0;
  t.truncation_reason = r.str();
  t.num_faults = r.u64();
  t.num_detectable_faults = r.u64();
  t.num_activations = r.u64();
  t.num_paths = r.u64();
  t.num_loop_truncations = r.u64();
  const std::uint64_t cases = r.u64();
  if (!r.ok() || t.num_bits < 0 || t.num_bits > 64 || t.latency < 1 ||
      t.latency > core::kMaxLatency) {
    return false;
  }
  t.cases.clear();
  t.cases.reserve(static_cast<std::size_t>(cases));
  for (std::uint64_t i = 0; i < cases; ++i) {
    core::ErroneousCase ec;
    ec.length = r.u8();
    if (!r.ok() || ec.length < 1 || ec.length > core::kMaxLatency) {
      return false;
    }
    for (int k = 0; k < ec.length; ++k) {
      ec.diff[static_cast<std::size_t>(k)] = r.u64();
    }
    if (!r.ok()) return false;
    t.cases.push_back(ec);
  }
  return r.ok();
}

void put_tables(ByteWriter& w,
                const std::vector<core::DetectabilityTable>& tabs) {
  w.u64(tabs.size());
  for (const auto& t : tabs) put_table(w, t);
}

bool get_tables(ByteReader& r, std::vector<core::DetectabilityTable>& tabs) {
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > core::kMaxLatency) return false;
  tabs.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    core::DetectabilityTable t;
    if (!get_table(r, t)) return false;
    tabs.push_back(std::move(t));
  }
  return true;
}

}  // namespace

// ----------------------------------------------------------- FsmCircuit

std::string encode_circuit(const fsm::FsmCircuit& c) {
  ArtifactWriter art(ArtifactKind::kCircuit);

  ByteWriter enc;
  enc.u32(static_cast<std::uint32_t>(c.enc.num_inputs));
  enc.u32(static_cast<std::uint32_t>(c.enc.num_state_bits));
  enc.u32(static_cast<std::uint32_t>(c.enc.num_outputs));
  enc.u64(c.enc.reset_code);
  enc.u32(static_cast<std::uint32_t>(c.enc.encoding.num_bits));
  enc.u64(c.enc.encoding.codes.size());
  for (const std::uint64_t code : c.enc.encoding.codes) enc.u64(code);
  enc.u64(c.enc.next_state.size());
  for (const auto& s : c.enc.next_state) put_spec(enc, s);
  enc.u64(c.enc.outputs.size());
  for (const auto& s : c.enc.outputs) put_spec(enc, s);
  art.section(kTagEncoding, enc.take());

  ByteWriter net;
  const logic::Netlist& n = c.netlist;
  net.u64(n.num_nets());
  std::size_t input_idx = 0;
  for (std::uint32_t g = 0; g < n.num_nets(); ++g) {
    const logic::Gate& gate = n.gate(g);
    net.u8(static_cast<std::uint8_t>(gate.type));
    if (gate.type == logic::GateType::kInput) {
      net.str(n.input_name(input_idx++));
    } else if (gate.type != logic::GateType::kConst0 &&
               gate.type != logic::GateType::kConst1) {
      net.u32(static_cast<std::uint32_t>(gate.fanins.size()));
      for (const std::uint32_t f : gate.fanins) net.u32(f);
    }
  }
  net.u64(n.num_outputs());
  for (std::size_t o = 0; o < n.num_outputs(); ++o) {
    net.u32(n.outputs()[o]);
    net.str(n.output_name(o));
  }
  art.section(kTagNetlist, net.take());

  ByteWriter cov;
  cov.u64(c.covers.size());
  for (const logic::Cover& cv : c.covers) {
    cov.u32(static_cast<std::uint32_t>(cv.num_vars()));
    cov.u64(cv.cubes().size());
    for (const logic::Cube& cube : cv.cubes()) {
      cov.u64(cube.care);
      cov.u64(cube.val);
    }
  }
  art.section(kTagCovers, cov.take());

  return art.seal();
}

Result<fsm::FsmCircuit> decode_circuit(std::string_view bytes) {
  auto art = ArtifactReader::open(bytes, ArtifactKind::kCircuit);
  if (!art) return art.status();

  fsm::FsmCircuit c;

  auto enc_bytes = art->section(kTagEncoding);
  if (!enc_bytes) return enc_bytes.status();
  {
    ByteReader r(*enc_bytes);
    c.enc.num_inputs = static_cast<int>(r.u32());
    c.enc.num_state_bits = static_cast<int>(r.u32());
    c.enc.num_outputs = static_cast<int>(r.u32());
    c.enc.reset_code = r.u64();
    c.enc.encoding.num_bits = static_cast<int>(r.u32());
    const std::uint64_t num_codes = r.u64();
    if (!r.ok() || c.enc.num_inputs < 0 || c.enc.num_state_bits < 0 ||
        c.enc.num_outputs < 0 || num_codes > (std::uint64_t{1} << 20)) {
      return corrupt("circuit encoding section malformed");
    }
    for (std::uint64_t i = 0; i < num_codes; ++i) {
      c.enc.encoding.codes.push_back(r.u64());
    }
    const std::uint64_t num_ns = r.u64();
    if (!r.ok() || num_ns != static_cast<std::uint64_t>(c.enc.num_state_bits)) {
      return corrupt("circuit next-state spec count mismatch");
    }
    for (std::uint64_t i = 0; i < num_ns; ++i) {
      logic::SopSpec s(0);
      if (!get_spec(r, s)) return corrupt("circuit next-state spec malformed");
      c.enc.next_state.push_back(std::move(s));
    }
    const std::uint64_t num_out = r.u64();
    if (!r.ok() || num_out != static_cast<std::uint64_t>(c.enc.num_outputs)) {
      return corrupt("circuit output spec count mismatch");
    }
    for (std::uint64_t i = 0; i < num_out; ++i) {
      logic::SopSpec s(0);
      if (!get_spec(r, s)) return corrupt("circuit output spec malformed");
      c.enc.outputs.push_back(std::move(s));
    }
    if (!r.at_end()) return corrupt("circuit encoding section has extra bytes");
  }

  auto net_bytes = art->section(kTagNetlist);
  if (!net_bytes) return net_bytes.status();
  {
    ByteReader r(*net_bytes);
    const std::uint64_t num_nets = r.u64();
    if (!r.ok() || num_nets > (std::uint64_t{1} << 28)) {
      return corrupt("netlist size malformed");
    }
    for (std::uint64_t g = 0; g < num_nets; ++g) {
      const std::uint8_t type_raw = r.u8();
      if (!r.ok() ||
          type_raw > static_cast<std::uint8_t>(logic::GateType::kXnor)) {
        return corrupt("netlist gate type out of range");
      }
      const auto type = static_cast<logic::GateType>(type_raw);
      if (type == logic::GateType::kInput) {
        c.netlist.add_input(r.str());
      } else if (type == logic::GateType::kConst0) {
        c.netlist.add_const(false);
      } else if (type == logic::GateType::kConst1) {
        c.netlist.add_const(true);
      } else {
        const std::uint32_t fanin_count = r.u32();
        if (!r.ok() || fanin_count > num_nets) {
          return corrupt("netlist fanin count malformed");
        }
        std::vector<std::uint32_t> fanins;
        fanins.reserve(fanin_count);
        for (std::uint32_t i = 0; i < fanin_count; ++i) {
          const std::uint32_t f = r.u32();
          if (!r.ok() || f >= g) return corrupt("netlist fanin out of range");
          fanins.push_back(f);
        }
        try {
          c.netlist.add_gate(type, std::move(fanins));
        } catch (const std::exception& e) {
          return corrupt(std::string("netlist gate rejected: ") + e.what());
        }
      }
    }
    const std::uint64_t num_outputs = r.u64();
    if (!r.ok() || num_outputs > num_nets) {
      return corrupt("netlist output count malformed");
    }
    for (std::uint64_t o = 0; o < num_outputs; ++o) {
      const std::uint32_t net = r.u32();
      if (!r.ok() || net >= num_nets) {
        return corrupt("netlist output net out of range");
      }
      c.netlist.mark_output(net, r.str());
    }
    if (!r.at_end()) return corrupt("netlist section has extra bytes");
  }

  auto cov_bytes = art->section(kTagCovers);
  if (!cov_bytes) return cov_bytes.status();
  {
    ByteReader r(*cov_bytes);
    const std::uint64_t num_covers = r.u64();
    if (!r.ok() || num_covers > (std::uint64_t{1} << 20)) {
      return corrupt("cover count malformed");
    }
    for (std::uint64_t i = 0; i < num_covers; ++i) {
      const std::uint32_t vars = r.u32();
      const std::uint64_t cubes = r.u64();
      if (!r.ok() || vars > 64 || cubes > (std::uint64_t{1} << 28)) {
        return corrupt("cover header malformed");
      }
      logic::Cover cv(static_cast<int>(vars));
      for (std::uint64_t k = 0; k < cubes; ++k) {
        logic::Cube cube;
        cube.care = r.u64();
        cube.val = r.u64();
        cv.add(cube);
      }
      if (!r.ok()) return corrupt("cover cubes truncated");
      c.covers.push_back(std::move(cv));
    }
    if (!r.at_end()) return corrupt("cover section has extra bytes");
  }

  return c;
}

// ----------------------------------------------------------- fault lists

std::string encode_fault_list(std::span<const sim::StuckAtFault> faults) {
  ArtifactWriter art(ArtifactKind::kFaultList);
  ByteWriter w;
  w.u64(faults.size());
  for (const auto& f : faults) {
    w.u32(f.net);
    w.u8(f.stuck_value ? 1 : 0);
  }
  art.section(kTagFaults, w.take());
  return art.seal();
}

Result<std::vector<sim::StuckAtFault>> decode_fault_list(
    std::string_view bytes) {
  auto art = ArtifactReader::open(bytes, ArtifactKind::kFaultList);
  if (!art) return art.status();
  auto payload = art->section(kTagFaults);
  if (!payload) return payload.status();
  ByteReader r(*payload);
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > (std::uint64_t{1} << 32)) {
    return corrupt("fault count malformed");
  }
  std::vector<sim::StuckAtFault> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    sim::StuckAtFault f;
    f.net = r.u32();
    const std::uint8_t stuck = r.u8();
    if (!r.ok() || stuck > 1) return corrupt("fault entry malformed");
    f.stuck_value = stuck != 0;
    out.push_back(f);
  }
  if (!r.at_end()) return corrupt("fault list has extra bytes");
  return out;
}

// ------------------------------------------------------------ tables

std::string encode_tables(const std::vector<core::DetectabilityTable>& tabs) {
  ArtifactWriter art(ArtifactKind::kTableBundle);
  ByteWriter w;
  put_tables(w, tabs);
  art.section(kTagTables, w.take());
  return art.seal();
}

Result<std::vector<core::DetectabilityTable>> decode_tables(
    std::string_view bytes) {
  auto art = ArtifactReader::open(bytes, ArtifactKind::kTableBundle);
  if (!art) return art.status();
  auto payload = art->section(kTagTables);
  if (!payload) return payload.status();
  ByteReader r(*payload);
  std::vector<core::DetectabilityTable> tabs;
  if (!get_tables(r, tabs) || !r.at_end()) {
    return corrupt("table bundle malformed");
  }
  return tabs;
}

// ------------------------------------------------------------ shards

std::string encode_shard(const core::ExtractShard& shard) {
  ArtifactWriter art(ArtifactKind::kShard);
  ByteWriter w;
  w.u32(shard.index);
  w.u32(shard.num_shards);
  put_tables(w, shard.tables);
  art.section(kTagShard, w.take());
  return art.seal();
}

Result<core::ExtractShard> decode_shard(std::string_view bytes) {
  auto art = ArtifactReader::open(bytes, ArtifactKind::kShard);
  if (!art) return art.status();
  auto payload = art->section(kTagShard);
  if (!payload) return payload.status();
  ByteReader r(*payload);
  core::ExtractShard shard;
  shard.index = r.u32();
  shard.num_shards = r.u32();
  if (!r.ok() || shard.index >= shard.num_shards) {
    return corrupt("shard header malformed");
  }
  if (!get_tables(r, shard.tables) || !r.at_end()) {
    return corrupt("shard tables malformed");
  }
  return shard;
}

// ------------------------------------------------------------ schemes

std::string encode_scheme(const SchemeArtifact& s) {
  ArtifactWriter art(ArtifactKind::kParityScheme);
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(s.latency));
  w.u64(s.parities.size());
  for (const core::ParityFunc p : s.parities) w.u64(p);
  art.section(kTagScheme, w.take());
  return art.seal();
}

Result<SchemeArtifact> decode_scheme(std::string_view bytes) {
  auto art = ArtifactReader::open(bytes, ArtifactKind::kParityScheme);
  if (!art) return art.status();
  auto payload = art->section(kTagScheme);
  if (!payload) return payload.status();
  ByteReader r(*payload);
  SchemeArtifact s;
  s.latency = static_cast<int>(r.u32());
  const std::uint64_t count = r.u64();
  if (!r.ok() || s.latency < 1 || s.latency > core::kMaxLatency ||
      count > 64) {
    return corrupt("scheme header malformed");
  }
  for (std::uint64_t i = 0; i < count; ++i) s.parities.push_back(r.u64());
  if (!r.at_end()) return corrupt("scheme has extra bytes");
  return s;
}

// ------------------------------------------------------------ reports

std::string encode_report(const core::PipelineReport& rep) {
  ArtifactWriter art(ArtifactKind::kReport);
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(rep.inputs));
  w.u32(static_cast<std::uint32_t>(rep.state_bits));
  w.u32(static_cast<std::uint32_t>(rep.outputs));
  w.u64(rep.orig_gates);
  w.f64(rep.orig_area);
  w.u64(rep.num_faults);
  w.u64(rep.num_detectable_faults);
  w.u64(rep.num_cases);
  w.u32(static_cast<std::uint32_t>(rep.latency));
  w.u32(static_cast<std::uint32_t>(rep.num_trees));
  w.u64(rep.ced_gates);
  w.f64(rep.ced_area);
  w.u64(rep.parities.size());
  for (const core::ParityFunc p : rep.parities) w.u64(p);
  const core::Algorithm1Stats& st = rep.algo_stats;
  w.u32(static_cast<std::uint32_t>(st.lp_solves));
  w.u32(static_cast<std::uint32_t>(st.roundings));
  w.u32(static_cast<std::uint32_t>(st.repairs));
  w.u32(static_cast<std::uint32_t>(st.final_q));
  w.u32(static_cast<std::uint32_t>(st.lp_iterations));
  w.u8(st.greedy_fallback ? 1 : 0);
  w.u8(st.lp_budget_hit ? 1 : 0);
  w.u8(st.deadline_hit ? 1 : 0);
  w.u8(st.greedy_degraded ? 1 : 0);
  w.u64(st.qs_tried.size());
  for (const int q : st.qs_tried) w.u32(static_cast<std::uint32_t>(q));
  put_resilience(w, rep.resilience);
  w.f64(rep.t_synth);
  w.f64(rep.t_extract);
  w.f64(rep.t_solve);
  w.f64(rep.t_ced);
  art.section(kTagReport, w.take());
  return art.seal();
}

Result<core::PipelineReport> decode_report(std::string_view bytes) {
  auto art = ArtifactReader::open(bytes, ArtifactKind::kReport);
  if (!art) return art.status();
  auto payload = art->section(kTagReport);
  if (!payload) return payload.status();
  ByteReader r(*payload);
  core::PipelineReport rep;
  rep.inputs = static_cast<int>(r.u32());
  rep.state_bits = static_cast<int>(r.u32());
  rep.outputs = static_cast<int>(r.u32());
  rep.orig_gates = r.u64();
  rep.orig_area = r.f64();
  rep.num_faults = r.u64();
  rep.num_detectable_faults = r.u64();
  rep.num_cases = r.u64();
  rep.latency = static_cast<int>(r.u32());
  rep.num_trees = static_cast<int>(r.u32());
  rep.ced_gates = r.u64();
  rep.ced_area = r.f64();
  const std::uint64_t num_parities = r.u64();
  if (!r.ok() || num_parities > 64) return corrupt("report parities malformed");
  for (std::uint64_t i = 0; i < num_parities; ++i) {
    rep.parities.push_back(r.u64());
  }
  core::Algorithm1Stats& st = rep.algo_stats;
  st.lp_solves = static_cast<int>(r.u32());
  st.roundings = static_cast<int>(r.u32());
  st.repairs = static_cast<int>(r.u32());
  st.final_q = static_cast<int>(r.u32());
  st.lp_iterations = static_cast<int>(r.u32());
  st.greedy_fallback = r.u8() != 0;
  st.lp_budget_hit = r.u8() != 0;
  st.deadline_hit = r.u8() != 0;
  st.greedy_degraded = r.u8() != 0;
  const std::uint64_t num_qs = r.u64();
  if (!r.ok() || num_qs > 4096) return corrupt("report qs_tried malformed");
  for (std::uint64_t i = 0; i < num_qs; ++i) {
    st.qs_tried.push_back(static_cast<int>(r.u32()));
  }
  if (const char* err = get_resilience(r, rep.resilience)) {
    return corrupt(std::string("report ") + err);
  }
  rep.t_synth = r.f64();
  rep.t_extract = r.f64();
  rep.t_solve = r.f64();
  rep.t_ced = r.f64();
  if (!r.at_end()) return corrupt("report has extra bytes");
  return rep;
}

// ------------------------------------------------------------ manifests

std::string encode_manifest(const ManifestArtifact& m) {
  ArtifactWriter art(ArtifactKind::kManifest);
  ByteWriter w;
  w.str(m.config_digest);
  w.str(m.extraction_key);
  w.str(m.circuit);
  w.u32(static_cast<std::uint32_t>(m.latency));
  w.u32(static_cast<std::uint32_t>(m.threads));
  w.u64(m.parities.size());
  for (const core::ParityFunc p : m.parities) w.u64(p);
  put_resilience(w, m.resilience);
  w.f64(m.t_synth);
  w.f64(m.t_extract);
  w.f64(m.t_solve);
  w.f64(m.t_ced);
  w.u64(m.spans.size());
  for (const obs::SpanRecord& s : m.spans) {
    w.u64(s.id);
    w.u64(s.parent);
    w.str(s.name);
    w.f64(s.start_s);
    w.f64(s.dur_s);
    w.u64(s.attrs.size());
    for (const auto& [k, v] : s.attrs) {
      w.str(k);
      w.str(v);
    }
  }
  art.section(kTagManifest, w.take());
  return art.seal();
}

Result<ManifestArtifact> decode_manifest(std::string_view bytes) {
  auto art = ArtifactReader::open(bytes, ArtifactKind::kManifest);
  if (!art) return art.status();
  auto payload = art->section(kTagManifest);
  if (!payload) return payload.status();
  ByteReader r(*payload);
  ManifestArtifact m;
  m.config_digest = r.str();
  m.extraction_key = r.str();
  m.circuit = r.str();
  m.latency = static_cast<int>(r.u32());
  m.threads = static_cast<int>(r.u32());
  const std::uint64_t num_parities = r.u64();
  if (!r.ok() || num_parities > 64) {
    return corrupt("manifest parities malformed");
  }
  for (std::uint64_t i = 0; i < num_parities; ++i) {
    m.parities.push_back(r.u64());
  }
  if (const char* err = get_resilience(r, m.resilience)) {
    return corrupt(std::string("manifest ") + err);
  }
  m.t_synth = r.f64();
  m.t_extract = r.f64();
  m.t_solve = r.f64();
  m.t_ced = r.f64();
  const std::uint64_t num_spans = r.u64();
  if (!r.ok() || num_spans > 65536) return corrupt("manifest spans malformed");
  for (std::uint64_t i = 0; i < num_spans; ++i) {
    obs::SpanRecord s;
    s.id = r.u64();
    s.parent = r.u64();
    s.name = r.str();
    s.start_s = r.f64();
    s.dur_s = r.f64();
    const std::uint64_t num_attrs = r.u64();
    if (!r.ok() || num_attrs > 256) return corrupt("manifest attrs malformed");
    for (std::uint64_t j = 0; j < num_attrs; ++j) {
      std::string k = r.str();
      std::string v = r.str();
      s.attrs.emplace_back(std::move(k), std::move(v));
    }
    m.spans.push_back(std::move(s));
  }
  if (!r.at_end()) return corrupt("manifest has extra bytes");
  return m;
}

// ----------------------------------------------------------- campaigns

namespace {

void put_verdict(ByteWriter& w, const sim::FaultVerdict& v) {
  w.u64(v.unit);
  w.u64(v.activations);
  w.u64(v.detected_in_bound);
  w.u64(v.detected_late);
  w.u64(v.silent_escape);
  w.u32(static_cast<std::uint32_t>(v.max_latency));
  w.u32(static_cast<std::uint32_t>(v.histogram.size()));
  for (const std::uint64_t h : v.histogram) w.u64(h);
}

bool get_verdict(ByteReader& r, sim::FaultVerdict& v) {
  v.unit = r.u64();
  v.activations = r.u64();
  v.detected_in_bound = r.u64();
  v.detected_late = r.u64();
  v.silent_escape = r.u64();
  v.max_latency = static_cast<int>(r.u32());
  const std::uint32_t hist = r.u32();
  if (!r.ok() || hist > 64) return false;
  v.histogram.reserve(hist);
  for (std::uint32_t i = 0; i < hist; ++i) v.histogram.push_back(r.u64());
  return r.ok();
}

}  // namespace

std::string encode_campaign_shard(const sim::CampaignShard& shard) {
  ArtifactWriter art(ArtifactKind::kCampaignShard);
  ByteWriter w;
  w.u32(shard.index);
  w.u32(shard.num_shards);
  w.u64(shard.verdicts.size());
  for (const sim::FaultVerdict& v : shard.verdicts) put_verdict(w, v);
  art.section(kTagCampaignShard, w.take());
  return art.seal();
}

Result<sim::CampaignShard> decode_campaign_shard(std::string_view bytes) {
  auto art = ArtifactReader::open(bytes, ArtifactKind::kCampaignShard);
  if (!art) return art.status();
  auto payload = art->section(kTagCampaignShard);
  if (!payload) return payload.status();
  ByteReader r(*payload);
  sim::CampaignShard shard;
  shard.index = r.u32();
  shard.num_shards = r.u32();
  const std::uint64_t count = r.u64();
  if (!r.ok() || shard.index >= shard.num_shards || count > (1u << 24)) {
    return corrupt("campaign shard header malformed");
  }
  shard.verdicts.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_verdict(r, shard.verdicts[i])) {
      return corrupt("campaign shard verdict malformed");
    }
  }
  if (!r.at_end()) return corrupt("campaign shard has extra bytes");
  return shard;
}

std::string encode_campaign_report(const sim::CampaignReport& rep) {
  ArtifactWriter art(ArtifactKind::kCampaignReport);
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(rep.model));
  w.u32(static_cast<std::uint32_t>(rep.policy));
  w.u32(static_cast<std::uint32_t>(rep.latency_bound));
  w.u32(static_cast<std::uint32_t>(rep.horizon));
  w.u32(static_cast<std::uint32_t>(rep.persistence));
  w.u32(static_cast<std::uint32_t>(rep.flip_bits));
  w.u32(static_cast<std::uint32_t>(rep.walks));
  w.u32(static_cast<std::uint32_t>(rep.walk_length));
  w.u64(rep.seed);
  w.u64(rep.num_units);
  w.u64(rep.activations);
  w.u64(rep.detected_in_bound);
  w.u64(rep.detected_late);
  w.u64(rep.silent_escape);
  w.u64(rep.benign_units);
  w.u32(static_cast<std::uint32_t>(rep.max_latency));
  w.u32(static_cast<std::uint32_t>(rep.histogram.size()));
  for (const std::uint64_t h : rep.histogram) w.u64(h);
  w.u8(rep.truncated ? 1 : 0);
  w.str(rep.truncation_reason);
  w.u64(rep.verdicts.size());
  for (const sim::FaultVerdict& v : rep.verdicts) put_verdict(w, v);
  art.section(kTagCampaignReport, w.take());
  return art.seal();
}

Result<sim::CampaignReport> decode_campaign_report(std::string_view bytes) {
  auto art = ArtifactReader::open(bytes, ArtifactKind::kCampaignReport);
  if (!art) return art.status();
  auto payload = art->section(kTagCampaignReport);
  if (!payload) return payload.status();
  ByteReader r(*payload);
  sim::CampaignReport rep;
  const std::uint32_t model = r.u32();
  const std::uint32_t policy = r.u32();
  rep.latency_bound = static_cast<int>(r.u32());
  rep.horizon = static_cast<int>(r.u32());
  rep.persistence = static_cast<int>(r.u32());
  rep.flip_bits = static_cast<int>(r.u32());
  rep.walks = static_cast<int>(r.u32());
  rep.walk_length = static_cast<int>(r.u32());
  rep.seed = r.u64();
  rep.num_units = r.u64();
  rep.activations = r.u64();
  rep.detected_in_bound = r.u64();
  rep.detected_late = r.u64();
  rep.silent_escape = r.u64();
  rep.benign_units = r.u64();
  rep.max_latency = static_cast<int>(r.u32());
  if (!r.ok() || model > 2 || policy > 1) {
    return corrupt("campaign report header malformed");
  }
  rep.model = static_cast<sim::FaultModel>(model);
  rep.policy = static_cast<sim::CampaignPolicy>(policy);
  const std::uint32_t hist = r.u32();
  if (!r.ok() || hist > 64) return corrupt("campaign report histogram malformed");
  for (std::uint32_t i = 0; i < hist; ++i) rep.histogram.push_back(r.u64());
  rep.truncated = r.u8() != 0;
  rep.truncation_reason = r.str();
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > (1u << 24)) {
    return corrupt("campaign report verdict count malformed");
  }
  rep.verdicts.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_verdict(r, rep.verdicts[i])) {
      return corrupt("campaign report verdict malformed");
    }
  }
  if (!r.at_end()) return corrupt("campaign report has extra bytes");
  return rep;
}

}  // namespace ced::storage
