#pragma once

// Crash-safe, corruption-detecting artifact store.
//
// Layout: one directory holding `<name>.ced` artifact files plus a
// `quarantine/` subdirectory. Every write is atomic (temp file + fsync +
// rename, see common/io.hpp) so a killed process leaves either the old
// bytes, the new bytes, or a stray `*.tmp.*` file that `gc` sweeps —
// never a half-written artifact under the real name. Every read is
// validated (magic, version, kind, per-section CRC32); artifacts that
// fail validation are moved to quarantine, recorded as an event, and
// reported as a miss so callers transparently recompute.
//
// Thread safety: all methods may be called concurrently (checkpoint
// shards are persisted from extraction worker threads).

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "core/extract.hpp"
#include "storage/format.hpp"

namespace ced::storage {

/// Advisory cross-process lease over a store directory, backed by
/// flock(2) on `<dir>/.store.lock`. Writers (put, quarantine moves) hold
/// it shared; the maintenance sweeps (verify_all, gc) hold it exclusive —
/// so a daemon worker persisting a checkpoint shard and a concurrent
/// `ced_cli store gc` in another process serialize instead of tearing
/// each other (gc could otherwise unlink the writer's in-flight atomic
/// temp file between create and rename). Acquisition blocks; both sides'
/// critical sections are short. A store whose lock file cannot be opened
/// degrades to unlocked operation (held() == false) rather than failing —
/// the lock is a hardening layer, not a correctness dependency for
/// single-process use.
class StoreLock {
 public:
  StoreLock(const std::filesystem::path& dir, bool exclusive);
  ~StoreLock();
  StoreLock(const StoreLock&) = delete;
  StoreLock& operator=(const StoreLock&) = delete;

  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Result of an integrity scan over every artifact in the store.
struct VerifyStats {
  std::size_t scanned = 0;
  std::size_t ok = 0;
  std::size_t quarantined = 0;  ///< failed validation, moved aside
};

/// Result of a garbage-collection pass.
struct GcStats {
  std::size_t tmp_removed = 0;         ///< stray atomic-write temp files
  std::size_t quarantine_removed = 0;  ///< previously quarantined artifacts
  std::size_t stale_shards_removed = 0;///< checkpoints whose table exists
};

class ArtifactStore {
 public:
  /// Opens (and creates, if needed) the store directory and its
  /// quarantine/ subdirectory. Failure is recorded in status(): the store
  /// then behaves as always-miss and every put records an event.
  explicit ArtifactStore(std::filesystem::path dir);

  const std::filesystem::path& dir() const { return dir_; }
  const Status& status() const { return init_status_; }

  /// Atomically writes `<name>.ced`. Failures become events (and the
  /// returned Status), never exceptions.
  Status put(const std::string& name, std::string_view bytes);

  /// Reads `<name>.ced` and checks the envelope (magic/version/kind/CRC).
  /// A missing file is a plain miss; a file that fails validation is
  /// quarantined, recorded as an event, and returned as the failure
  /// Status — the caller treats both as "recompute".
  Result<std::string> get_validated(const std::string& name,
                                    ArtifactKind kind);

  bool exists(const std::string& name) const;
  void remove(const std::string& name);
  /// Names (without the .ced suffix) of every artifact in the store.
  std::vector<std::string> list() const;

  /// Moves `<name>.ced` to quarantine and records an event. Used when an
  /// artifact passes the envelope check but fails semantic decoding.
  void discard_corrupt(const std::string& name, const std::string& why);

  /// Validates every artifact; quarantines the ones that fail.
  VerifyStats verify_all();
  /// Removes stray temp files, quarantined artifacts, and checkpoint
  /// shards made redundant by a complete table bundle.
  GcStats gc();

  /// Returns and clears the accumulated incident log (quarantines, write
  /// failures). The pipeline folds these into ResilienceReport::store_events.
  std::vector<std::string> drain_events();

  /// Attaches observability sinks: store reads/writes/quarantines become
  /// counters (ced_store_reads_total, ced_store_writes_total,
  /// ced_store_quarantines_total). Write-only diagnostics on a cold path —
  /// updates go straight to the registry, no shard buffering. The caller
  /// keeps ownership; sinks must outlive the store or be reset to {}.
  void set_sinks(const obs::Sinks& sinks) { sinks_ = sinks; }

 private:
  std::filesystem::path path_for(const std::string& name) const;
  void quarantine_file(const std::filesystem::path& p, const std::string& why);
  void event(std::string e);

  void count(const char* name) const;

  std::filesystem::path dir_;
  Status init_status_;
  obs::Sinks sinks_;
  mutable std::mutex mu_;
  std::vector<std::string> events_;
};

/// core::ExtractArchive backed by an ArtifactStore: table bundles under
/// `tab-<key>.ced`, checkpoint shards under `shard-<key>-NNN.ced`. All
/// corruption handling (quarantine + recompute) happens here; the
/// extraction code only ever sees hits and misses.
class StoreArchive final : public core::ExtractArchive {
 public:
  explicit StoreArchive(ArtifactStore& store) : store_(store) {}

  std::vector<core::DetectabilityTable> load_tables(
      const std::string& key) override;
  void store_tables(
      const std::string& key,
      const std::vector<core::DetectabilityTable>& tables) override;
  bool load_shard(const std::string& key, std::uint32_t shard,
                  std::uint32_t num_shards,
                  core::ExtractShard& out) override;
  void store_shard(const std::string& key,
                   const core::ExtractShard& shard) override;
  void drop_shards(const std::string& key) override;
  std::vector<std::string> drain_events() override;

 private:
  ArtifactStore& store_;
};

/// Canonical artifact names.
std::string table_name(const std::string& key);
std::string shard_name(const std::string& key, std::uint32_t index);
std::string scheme_name(const std::string& key, int latency,
                        const std::string& solver);
std::string manifest_name(const std::string& key, int latency,
                          const std::string& solver);

/// Scheme round-trip through a store (corruption-checked like any other
/// artifact; a corrupt scheme is quarantined and reported as a miss).
Status store_scheme(ArtifactStore& store, const std::string& name,
                    const SchemeArtifact& scheme);
Result<SchemeArtifact> load_scheme(ArtifactStore& store,
                                   const std::string& name);

/// Run-manifest round-trip (same quarantine-on-corruption contract).
Status store_manifest(ArtifactStore& store, const std::string& name,
                      const ManifestArtifact& manifest);
Result<ManifestArtifact> load_manifest(ArtifactStore& store,
                                       const std::string& name);

/// Campaign artifacts: the finished verdict sheet under `camp-<key>.ced`,
/// checkpoint shards under `cshard-<key>-NNN.ced`. `key` is the campaign's
/// content digest (sim::campaign_digest), so resumed and re-run campaigns
/// with identical result-shaping inputs share checkpoints and a completed
/// report supersedes its shards (gc() removes them).
std::string campaign_report_name(const std::string& key);
std::string campaign_shard_name(const std::string& key, std::uint32_t index);

/// Wires the campaign engine's checkpoint callbacks to a store: load
/// validates the envelope, decodes, and checks shard identity (corrupt or
/// mismatched checkpoints are quarantined and reported as misses); save
/// persists a completed shard atomically.
sim::CampaignCheckpointHooks make_campaign_hooks(ArtifactStore& store,
                                                 const std::string& key);

/// Removes every checkpoint shard of a campaign key.
void drop_campaign_shards(ArtifactStore& store, const std::string& key);

/// Verdict-sheet round-trip (quarantine-on-corruption like the others).
Status store_campaign_report(ArtifactStore& store, const std::string& name,
                             const sim::CampaignReport& report);
Result<sim::CampaignReport> load_campaign_report(ArtifactStore& store,
                                                 const std::string& name);

}  // namespace ced::storage
