#include "storage/store.hpp"

#include <cstdio>
#include <system_error>

#include <sys/file.h>
#include <unistd.h>

#include "common/io.hpp"
#include "common/retry.hpp"

namespace ced::storage {

namespace fs = std::filesystem;

StoreLock::StoreLock(const fs::path& dir, bool exclusive) {
  const std::string path = (dir / ".store.lock").string();
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return;
  if (::flock(fd_, exclusive ? LOCK_EX : LOCK_SH) != 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StoreLock::~StoreLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

ArtifactStore::ArtifactStore(fs::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_ / "quarantine", ec);
  if (ec) {
    init_status_ = Status::internal(
        Stage::kStore, "cannot create store directory " + dir_.string() +
                           ": " + ec.message());
    event("store unusable: " + init_status_.message);
  }
}

fs::path ArtifactStore::path_for(const std::string& name) const {
  return dir_ / (name + ".ced");
}

void ArtifactStore::event(std::string e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

std::vector<std::string> ArtifactStore::drain_events() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.swap(events_);
  return out;
}

void ArtifactStore::count(const char* name) const {
  if (sinks_.metrics != nullptr) sinks_.metrics->add(name);
}

Status ArtifactStore::put(const std::string& name, std::string_view bytes) {
  if (!init_status_.ok()) return init_status_;
  count("ced_store_writes_total");
  // Shared lease for the whole atomic write so a concurrent maintenance
  // sweep in another process (exclusive) cannot unlink the in-flight
  // temp file between create and rename.
  StoreLock lease(dir_, /*exclusive=*/false);
  // Transient filesystem errors (EINTR storms, momentary EAGAIN/ENOSPC
  // blips under the chaos harness) get a short bounded retry before the
  // failure is surfaced as an event.
  Status st;
  const RetryPolicy policy{/*max_attempts=*/3, /*base_ms=*/5.0,
                           /*cap_ms=*/50.0, /*max_elapsed_ms=*/500.0};
  retry_call(policy, [&](int attempt) {
    st = io::atomic_write_file(path_for(name), bytes);
    if (!st.ok() && attempt + 1 < policy.max_attempts) {
      count("ced_store_write_retries_total");
    }
    return st.ok();
  });
  if (!st.ok()) event("write failed for " + name + ".ced: " + st.message);
  return st;
}

void ArtifactStore::quarantine_file(const fs::path& p, const std::string& why) {
  const fs::path dest = dir_ / "quarantine" / p.filename();
  std::error_code ec;
  fs::rename(p, dest, ec);
  if (ec) fs::remove(p, ec);  // cross-device or races: drop it instead
  count("ced_store_quarantines_total");
  event("quarantined " + p.filename().string() + ": " + why +
        "; recomputing");
}

Result<std::string> ArtifactStore::get_validated(const std::string& name,
                                                 ArtifactKind kind) {
  count("ced_store_reads_total");
  // Shared lease: covers both the read and a possible quarantine move, so
  // a cross-process gc can't sweep the file out from under either step.
  StoreLock lease(dir_, /*exclusive=*/false);
  const fs::path p = path_for(name);
  auto bytes = io::read_file(p);
  if (!bytes) {
    // Missing (or unreadable) artifact: a plain cache miss, not an incident.
    return Status::invalid_input(Stage::kStore,
                                 name + ".ced: " + bytes.status().message);
  }
  auto art = ArtifactReader::open(*bytes, kind);
  if (!art) {
    quarantine_file(p, art.status().message);
    return art.status();
  }
  return std::move(*bytes);
}

bool ArtifactStore::exists(const std::string& name) const {
  std::error_code ec;
  return fs::exists(path_for(name), ec);
}

void ArtifactStore::remove(const std::string& name) {
  std::error_code ec;
  fs::remove(path_for(name), ec);
}

std::vector<std::string> ArtifactStore::list() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() == ".ced") out.push_back(p.stem().string());
  }
  return out;
}

void ArtifactStore::discard_corrupt(const std::string& name,
                                    const std::string& why) {
  StoreLock lease(dir_, /*exclusive=*/false);
  quarantine_file(path_for(name), why);
}

VerifyStats ArtifactStore::verify_all() {
  VerifyStats stats;
  // Exclusive lease: no writer in any process may be mid-put while the
  // scan classifies files (a half-visible write would be quarantined as
  // corrupt). quarantine_file itself takes no lock — callers hold one.
  StoreLock lease(dir_, /*exclusive=*/true);
  for (const std::string& name : list()) {
    ++stats.scanned;
    auto bytes = io::read_file(path_for(name));
    if (!bytes) {
      quarantine_file(path_for(name), bytes.status().message);
      ++stats.quarantined;
      continue;
    }
    Status st = validate_envelope(*bytes);
    if (st.ok()) {
      ++stats.ok;
    } else {
      quarantine_file(path_for(name), st.message);
      ++stats.quarantined;
    }
  }
  return stats;
}

GcStats ArtifactStore::gc() {
  GcStats stats;
  // Exclusive lease: the temp-file sweep below would otherwise race a
  // concurrent writer's atomic_write_file (unlinking its temp between
  // create and rename makes the rename fail).
  StoreLock lease(dir_, /*exclusive=*/true);
  std::error_code ec;
  // Stray atomic-write temp files (a crash between create and rename).
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string fname = it->path().filename().string();
    if (fname.find(".tmp.") != std::string::npos) {
      std::error_code rec;
      if (fs::remove(it->path(), rec)) ++stats.tmp_removed;
    }
  }
  // Quarantined artifacts have served their diagnostic purpose.
  for (fs::directory_iterator it(dir_ / "quarantine", ec), end;
       !ec && it != end; it.increment(ec)) {
    std::error_code rec;
    if (fs::remove(it->path(), rec)) ++stats.quarantine_removed;
  }
  // Checkpoint shards whose complete table bundle exists are redundant:
  // shard-<key>-NNN is superseded by tab-<key>.
  for (const std::string& name : list()) {
    if (name.rfind("shard-", 0) != 0) continue;
    const std::size_t dash = name.rfind('-');
    if (dash == std::string::npos || dash <= 6) continue;
    const std::string key = name.substr(6, dash - 6);
    if (exists(table_name(key))) {
      remove(name);
      ++stats.stale_shards_removed;
    }
  }
  // Same for campaign checkpoints: cshard-<key>-NNN is superseded by the
  // finished verdict sheet camp-<key>.
  for (const std::string& name : list()) {
    if (name.rfind("cshard-", 0) != 0) continue;
    const std::size_t dash = name.rfind('-');
    if (dash == std::string::npos || dash <= 7) continue;
    const std::string key = name.substr(7, dash - 7);
    if (exists(campaign_report_name(key))) {
      remove(name);
      ++stats.stale_shards_removed;
    }
  }
  return stats;
}

// ------------------------------------------------------------- naming

std::string table_name(const std::string& key) { return "tab-" + key; }

std::string shard_name(const std::string& key, std::uint32_t index) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), "-%03u", index);
  return "shard-" + key + suffix;
}

std::string scheme_name(const std::string& key, int latency,
                        const std::string& solver) {
  return "scheme-" + key + "-p" + std::to_string(latency) + "-" + solver;
}

std::string manifest_name(const std::string& key, int latency,
                          const std::string& solver) {
  return "man-" + key + "-p" + std::to_string(latency) + "-" + solver;
}

// -------------------------------------------------------- StoreArchive

std::vector<core::DetectabilityTable> StoreArchive::load_tables(
    const std::string& key) {
  const std::string name = table_name(key);
  auto bytes = store_.get_validated(name, ArtifactKind::kTableBundle);
  if (!bytes) return {};
  auto tables = decode_tables(*bytes);
  if (!tables) {
    store_.discard_corrupt(name, tables.status().message);
    return {};
  }
  return std::move(*tables);
}

void StoreArchive::store_tables(
    const std::string& key,
    const std::vector<core::DetectabilityTable>& tables) {
  store_.put(table_name(key), encode_tables(tables));
}

bool StoreArchive::load_shard(const std::string& key, std::uint32_t shard,
                              std::uint32_t num_shards,
                              core::ExtractShard& out) {
  const std::string name = shard_name(key, shard);
  auto bytes = store_.get_validated(name, ArtifactKind::kShard);
  if (!bytes) return false;
  auto decoded = decode_shard(*bytes);
  if (!decoded) {
    store_.discard_corrupt(name, decoded.status().message);
    return false;
  }
  if (decoded->index != shard || decoded->num_shards != num_shards) {
    store_.discard_corrupt(name, "shard identity mismatch");
    return false;
  }
  out = std::move(*decoded);
  return true;
}

void StoreArchive::store_shard(const std::string& key,
                               const core::ExtractShard& shard) {
  store_.put(shard_name(key, shard.index), encode_shard(shard));
}

void StoreArchive::drop_shards(const std::string& key) {
  for (const std::string& name : store_.list()) {
    if (name.rfind("shard-" + key + "-", 0) == 0) store_.remove(name);
  }
}

std::vector<std::string> StoreArchive::drain_events() {
  return store_.drain_events();
}

// ------------------------------------------------------------- schemes

Status store_scheme(ArtifactStore& store, const std::string& name,
                    const SchemeArtifact& scheme) {
  return store.put(name, encode_scheme(scheme));
}

Result<SchemeArtifact> load_scheme(ArtifactStore& store,
                                   const std::string& name) {
  auto bytes = store.get_validated(name, ArtifactKind::kParityScheme);
  if (!bytes) return bytes.status();
  auto scheme = decode_scheme(*bytes);
  if (!scheme) store.discard_corrupt(name, scheme.status().message);
  return scheme;
}

// ------------------------------------------------------------ manifests

Status store_manifest(ArtifactStore& store, const std::string& name,
                      const ManifestArtifact& manifest) {
  return store.put(name, encode_manifest(manifest));
}

Result<ManifestArtifact> load_manifest(ArtifactStore& store,
                                       const std::string& name) {
  auto bytes = store.get_validated(name, ArtifactKind::kManifest);
  if (!bytes) return bytes.status();
  auto manifest = decode_manifest(*bytes);
  if (!manifest) store.discard_corrupt(name, manifest.status().message);
  return manifest;
}

// ------------------------------------------------------------ campaigns

std::string campaign_report_name(const std::string& key) {
  return "camp-" + key;
}

std::string campaign_shard_name(const std::string& key, std::uint32_t index) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), "-%03u", index);
  return "cshard-" + key + suffix;
}

sim::CampaignCheckpointHooks make_campaign_hooks(ArtifactStore& store,
                                                 const std::string& key) {
  sim::CampaignCheckpointHooks hooks;
  hooks.load = [&store, key](std::uint32_t shard, std::uint32_t num_shards,
                             sim::CampaignShard& out) {
    const std::string name = campaign_shard_name(key, shard);
    auto bytes = store.get_validated(name, ArtifactKind::kCampaignShard);
    if (!bytes) return false;
    auto decoded = decode_campaign_shard(*bytes);
    if (!decoded) {
      store.discard_corrupt(name, decoded.status().message);
      return false;
    }
    if (decoded->index != shard || decoded->num_shards != num_shards) {
      store.discard_corrupt(name, "campaign shard identity mismatch");
      return false;
    }
    out = std::move(*decoded);
    return true;
  };
  hooks.save = [&store, key](const sim::CampaignShard& shard) {
    store.put(campaign_shard_name(key, shard.index),
              encode_campaign_shard(shard));
  };
  return hooks;
}

void drop_campaign_shards(ArtifactStore& store, const std::string& key) {
  for (const std::string& name : store.list()) {
    if (name.rfind("cshard-" + key + "-", 0) == 0) store.remove(name);
  }
}

Status store_campaign_report(ArtifactStore& store, const std::string& name,
                             const sim::CampaignReport& report) {
  return store.put(name, encode_campaign_report(report));
}

Result<sim::CampaignReport> load_campaign_report(ArtifactStore& store,
                                                 const std::string& name) {
  auto bytes = store.get_validated(name, ArtifactKind::kCampaignReport);
  if (!bytes) return bytes.status();
  auto report = decode_campaign_report(*bytes);
  if (!report) store.discard_corrupt(name, report.status().message);
  return report;
}


}  // namespace ced::storage
