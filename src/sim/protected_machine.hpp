#pragma once

// Cycle-accurate model of the full protected design of Fig. 3: the
// functional FSM netlist advancing its state register while the synthesized
// checker (parity compaction trees + prediction logic + comparator, built by
// core/parity_synth) watches every transition. The campaign engine
// (sim/campaign.hpp) drives this model under injected faults; everything
// here is batched the same way as the extraction fault simulator — 64
// concrete input values per netlist pass — so exhaustive per-state sweeps
// cost two netlist evaluations per (state, 64 inputs) block: one for the
// FSM response row, one for the checker verdicts over that row.
//
// The split mirrors fault_sim.hpp: a ProtectedMachine holds the shared,
// immutable golden data (reachable set, fault-free response rows, fault-free
// checker verdicts), and each worker opens a private FaultSession per fault
// whose caches may grow into corrupted state codes the golden machine never
// visits. Sessions never write shared state, which is what lets the
// campaign fan units out with parallel_for and stay deterministic.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/parity_synth.hpp"
#include "fsm/synthesize.hpp"
#include "sim/fault_sim.hpp"

namespace ced::sim {

/// Batched checker evaluation: given one present state and the FSM's
/// observable response for every concrete input value (`responses[a]` for
/// input a, as produced by simulate_all_inputs), returns the packed error
/// verdicts — bit (a % 64) of word a/64 is 1 iff the checker asserts its
/// error output on the transition (input a, state_code, responses[a]).
/// 64 transitions are evaluated per checker-netlist pass.
std::vector<std::uint64_t> checker_error_mask(
    const core::CedHardware& hw, std::uint64_t state_code,
    std::span<const std::uint64_t> responses);

/// One state's fully-simulated transition row: the FSM response per input
/// plus the checker verdict per input, for a fixed injection context.
struct TransitionRow {
  std::vector<std::uint64_t> response;  ///< packed observable word per input
  std::vector<std::uint64_t> error;     ///< packed checker bits, 64 per word

  bool error_at(std::uint64_t input) const {
    return ((error[input >> 6] >> (input & 63)) & 1) != 0;
  }
};

/// Shared, immutable-after-construction view of the protected design: the
/// functional circuit, the checker hardware, the reachable state set, and
/// the fault-free rows (response + checker verdict) for every reachable
/// state. Construction runs the golden simulation once; afterwards the
/// object is read-only and safe to share across campaign workers.
class ProtectedMachine {
 public:
  ProtectedMachine(const fsm::FsmCircuit& circuit,
                   const core::CedHardware& hw);

  const fsm::FsmCircuit& circuit() const { return circuit_; }
  const core::CedHardware& hw() const { return hw_; }
  const std::vector<std::uint64_t>& reachable() const { return reachable_; }
  std::uint64_t num_inputs() const {
    return std::uint64_t{1} << circuit_.r();
  }

  /// Fault-free row for a *reachable* state; nullptr for any other code
  /// (sessions fall back to their private caches for those).
  const TransitionRow* golden_row(std::uint64_t state_code) const;

 private:
  const fsm::FsmCircuit& circuit_;
  const core::CedHardware& hw_;
  std::vector<std::uint64_t> reachable_;
  std::unordered_map<std::uint64_t, TransitionRow> golden_;
};

/// A worker's private simulation context for one fault (or for the
/// fault-free machine when `injection` is null — the transient-flip models
/// corrupt the state register, not the logic). Rows are memoized per state
/// code: faulty rows in one cache, fault-free rows in another that reads
/// through to the shared ProtectedMachine for reachable codes and simulates
/// privately for corrupted ones (where the checker verdict is genuinely
/// interesting: prediction don't-cares at unreachable codes mean the
/// fault-free logic can raise the error signal there).
class FaultSession {
 public:
  FaultSession(const ProtectedMachine& pm, const logic::Injection* injection);

  /// Row of the machine with the session's fault active. Requires the
  /// session to have an injection.
  const TransitionRow& faulty_row(std::uint64_t state_code);

  /// Row of the fault-free machine at `state_code` (any code, reachable or
  /// not). Used for divergence reference and for aged-out faults.
  const TransitionRow& golden_row(std::uint64_t state_code);

  const ProtectedMachine& machine() const { return pm_; }

 private:
  TransitionRow simulate(std::uint64_t state_code,
                         const logic::Injection* injection) const;

  const ProtectedMachine& pm_;
  const logic::Injection* injection_;
  std::unordered_map<std::uint64_t, TransitionRow> faulty_;
  std::unordered_map<std::uint64_t, TransitionRow> golden_local_;
};

}  // namespace ced::sim
