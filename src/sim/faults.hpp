#pragma once

#include <string>
#include <vector>

#include "logic/netlist.hpp"

namespace ced::sim {

/// A single stuck-at fault on one net of a netlist.
struct StuckAtFault {
  std::uint32_t net = 0;
  bool stuck_value = false;

  logic::Injection injection() const {
    return logic::Injection{net, stuck_value ? ~std::uint64_t{0} : 0};
  }

  std::string to_string() const {
    return "net" + std::to_string(net) + (stuck_value ? "/SA1" : "/SA0");
  }

  bool operator==(const StuckAtFault&) const = default;
};

/// Options controlling fault list generation.
struct FaultListOptions {
  /// Apply cheap structural equivalence collapsing (buffer chains, and the
  /// controlled-value equivalence between a single-fanout gate-output net
  /// and its driving gate).
  bool collapse = true;
};

/// Enumerates stuck-at-0/1 faults on every net of `n` except constants.
/// With collapsing enabled, faults provably equivalent to an already-listed
/// fault are dropped (the returned list still dominates full coverage).
///
/// The returned list is in *canonical order* — ascending net id, SA0 before
/// SA1 — independent of collapse decisions, platform, or enumeration
/// internals. This order is a contract: extraction and campaign artifact
/// digests hash the list and resume checkpoints partition it by position,
/// so reordering it invalidates every content-addressed cache key.
std::vector<StuckAtFault> enumerate_stuck_at(const logic::Netlist& n,
                                             const FaultListOptions& opts = {});

}  // namespace ced::sim
