#include "sim/fault_sim.hpp"

#include <algorithm>

namespace ced::sim {

std::vector<std::uint64_t> simulate_all_inputs(
    const fsm::FsmCircuit& c, std::uint64_t state_code,
    const logic::Injection* injection) {
  const int r = c.r();
  const int s = c.s();
  const int n = c.n();
  const std::uint64_t num_inputs = std::uint64_t{1} << r;
  std::vector<std::uint64_t> result(num_inputs, 0);

  const auto& nl = c.netlist;
  std::vector<std::uint64_t> words(static_cast<std::size_t>(r + s), 0);
  std::vector<std::uint64_t> values;

  // Pattern t of a batch starting at `base` is input value base + t.
  // Input bit i < 6 alternates inside the word with period 2^i; bits >= 6
  // are constant within one batch.
  static constexpr std::uint64_t kStripe[6] = {
      0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
      0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};

  for (int b = 0; b < s; ++b) {
    words[static_cast<std::size_t>(r + b)] =
        ((state_code >> b) & 1) ? ~std::uint64_t{0} : 0;
  }

  const std::uint64_t batch_count = (num_inputs + 63) / 64;
  for (std::uint64_t batch = 0; batch < batch_count; ++batch) {
    const std::uint64_t base = batch * 64;
    const std::uint64_t in_batch = std::min<std::uint64_t>(64, num_inputs - base);
    for (int i = 0; i < r; ++i) {
      if (i < 6) {
        words[static_cast<std::size_t>(i)] = kStripe[i];
      } else {
        words[static_cast<std::size_t>(i)] =
            ((base >> i) & 1) ? ~std::uint64_t{0} : 0;
      }
    }
    nl.eval(words, values, injection);
    for (std::uint64_t t = 0; t < in_batch; ++t) {
      std::uint64_t obs = 0;
      for (int o = 0; o < n; ++o) {
        obs |= ((values[nl.outputs()[static_cast<std::size_t>(o)]] >> t) & 1)
               << o;
      }
      result[base + t] = obs;
    }
  }
  return result;
}

const std::vector<std::uint64_t>& GoldenCache::rows(std::uint64_t state_code) {
  auto it = cache_.find(state_code);
  if (it == cache_.end()) {
    it = cache_.emplace(state_code, simulate_all_inputs(circuit_, state_code))
             .first;
  }
  return it->second;
}

void GoldenCache::populate(std::span<const std::uint64_t> state_codes) {
  for (const std::uint64_t code : state_codes) rows(code);
}

const std::vector<std::uint64_t>* GoldenCache::find(
    std::uint64_t state_code) const {
  const auto it = cache_.find(state_code);
  return it == cache_.end() ? nullptr : &it->second;
}

const std::vector<std::uint64_t>& FaultyCache::rows(std::uint64_t state_code) {
  auto it = cache_.find(state_code);
  if (it == cache_.end()) {
    it = cache_
             .emplace(state_code,
                      simulate_all_inputs(circuit_, state_code, &injection_))
             .first;
  }
  return it->second;
}

std::vector<std::uint64_t> reachable_codes(const fsm::FsmCircuit& c,
                                           std::uint64_t reset_code) {
  GoldenCache golden(c);
  std::vector<std::uint64_t> order;
  std::unordered_map<std::uint64_t, bool> seen;
  std::vector<std::uint64_t> stack{reset_code};
  seen[reset_code] = true;
  while (!stack.empty()) {
    const std::uint64_t code = stack.back();
    stack.pop_back();
    order.push_back(code);
    for (std::uint64_t obs : golden.rows(code)) {
      const std::uint64_t next = c.next_state_of(obs);
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace ced::sim
