#include "sim/faults.hpp"

#include <algorithm>
#include <array>

namespace ced::sim {

std::vector<StuckAtFault> enumerate_stuck_at(const logic::Netlist& n,
                                             const FaultListOptions& opts) {
  using logic::GateType;
  const std::size_t nets = n.num_nets();

  std::vector<int> fanout(nets, 0);
  for (std::uint32_t id = 0; id < nets; ++id) {
    for (auto f : n.gate(id).fanins) ++fanout[f];
  }
  for (auto out : n.outputs()) {
    ++fanout[out];  // primary outputs are observed, acting as extra fanout
  }

  // drop[net][v] = fault (net, v) is equivalent to a fault we keep elsewhere.
  std::vector<std::array<bool, 2>> drop(nets, {false, false});
  if (opts.collapse) {
    for (std::uint32_t id = 0; id < nets; ++id) {
      const logic::Gate& g = n.gate(id);
      for (auto a : g.fanins) {
        if (fanout[a] != 1) continue;
        switch (g.type) {
          case GateType::kBuf:
          case GateType::kNot:
            // Input faults map 1:1 onto output faults.
            drop[a][0] = drop[a][1] = true;
            break;
          case GateType::kAnd:
          case GateType::kNand:
            drop[a][0] = true;  // controlling value 0 == output fault
            break;
          case GateType::kOr:
          case GateType::kNor:
            drop[a][1] = true;  // controlling value 1 == output fault
            break;
          default:
            break;
        }
      }
    }
  }

  std::vector<StuckAtFault> faults;
  faults.reserve(2 * nets);
  for (std::uint32_t id = 0; id < nets; ++id) {
    const GateType t = n.gate(id).type;
    if (t == GateType::kConst0 || t == GateType::kConst1) continue;
    if (!drop[id][0]) faults.push_back(StuckAtFault{id, false});
    if (!drop[id][1]) faults.push_back(StuckAtFault{id, true});
  }
  // Canonical order is a documented contract (see the header): extraction
  // and campaign digests hash this list and resume checkpoints shard it by
  // position, so the order must survive refactors of the collapse pass —
  // enforce it explicitly rather than relying on the emission loop above.
  std::sort(faults.begin(), faults.end(),
            [](const StuckAtFault& a, const StuckAtFault& b) {
              return a.net != b.net ? a.net < b.net
                                    : a.stuck_value < b.stuck_value;
            });
  return faults;
}

}  // namespace ced::sim
