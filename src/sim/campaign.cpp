#include "sim/campaign.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_map>

#include "common/digest.hpp"
#include "common/parallel.hpp"
#include "core/erroneous_case.hpp"
#include "core/extract.hpp"
#include "core/rng.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ced::sim {
namespace {

/// Sentinel for "no path detects within the remaining depth".
constexpr int kNever = 1 << 20;

void classify_episode(FaultVerdict& v, int first_detection, int bound,
                      int horizon) {
  ++v.activations;
  if (first_detection > horizon) {
    ++v.silent_escape;
    return;
  }
  if (first_detection <= bound) {
    ++v.detected_in_bound;
  } else {
    ++v.detected_late;
  }
  ++v.histogram[static_cast<std::size_t>(first_detection - 1)];
  v.max_latency = std::max(v.max_latency, first_detection);
}

/// Memoized worst-case first-detection search for the exhaustive policy.
/// worst(state, age, depth) is the maximum over all input paths of the
/// number of further transitions until the checker first fires (>= 1), or
/// kNever when some path survives `depth` transitions undetected. The memo
/// key folds age through min(age, persistence): once the fault has aged
/// out, all ages behave identically, which is what makes the recursion
/// terminate in O(states * persistence * horizon) table entries.
struct ExhaustiveSearch {
  FaultSession& session;
  const fsm::FsmCircuit& circuit;
  int persistence = 0;
  std::unordered_map<std::uint64_t, int> memo;

  int age_key(int age) const {
    return persistence <= 0 ? 0 : std::min(age, persistence);
  }

  int worst(std::uint64_t state, int age, int depth) {
    const std::uint64_t key =
        (state << 12) | (static_cast<std::uint64_t>(age_key(age)) << 6) |
        static_cast<std::uint64_t>(depth);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    const bool active = persistence <= 0 || age < persistence;
    const TransitionRow& row =
        active ? session.faulty_row(state) : session.golden_row(state);
    const std::uint64_t num_inputs = row.response.size();
    int worst_val = 0;
    for (std::uint64_t a = 0; a < num_inputs; ++a) {
      int cand;
      if (row.error_at(a)) {
        cand = 1;
      } else if (depth <= 1) {
        cand = kNever;
      } else {
        const int sub =
            worst(circuit.next_state_of(row.response[a]), age + 1, depth - 1);
        cand = sub >= kNever ? kNever : 1 + sub;
      }
      if (cand > worst_val) worst_val = cand;
      if (worst_val >= kNever) break;
    }
    memo.emplace(key, worst_val);
    return worst_val;
  }
};

FaultVerdict judge_stuck_exhaustive(const ProtectedMachine& pm,
                                    const StuckAtFault& fault,
                                    std::uint64_t unit,
                                    const CampaignOptions& opts, int horizon) {
  FaultVerdict v;
  v.unit = unit;
  v.histogram.assign(static_cast<std::size_t>(horizon), 0);
  const logic::Injection inj = fault.injection();
  FaultSession session(pm, &inj);
  ExhaustiveSearch search{session, pm.circuit(), opts.persistence, {}};
  const std::uint64_t num_inputs = pm.num_inputs();

  for (const std::uint64_t c : pm.reachable()) {
    const TransitionRow& faulty = session.faulty_row(c);
    const TransitionRow* golden = pm.golden_row(c);
    for (std::uint64_t a = 0; a < num_inputs; ++a) {
      if (faulty.response[a] == golden->response[a]) continue;
      int first;
      if (faulty.error_at(a)) {
        first = 1;
      } else if (horizon <= 1) {
        first = kNever;
      } else {
        const int sub = search.worst(
            pm.circuit().next_state_of(faulty.response[a]), 1, horizon - 1);
        first = sub >= kNever ? kNever : 1 + sub;
      }
      classify_episode(v, first, opts.latency_bound, horizon);
    }
  }
  return v;
}

FaultVerdict judge_stuck_walks(const ProtectedMachine& pm,
                               const StuckAtFault& fault, std::uint64_t unit,
                               std::uint64_t unit_index,
                               const CampaignOptions& opts, int horizon) {
  FaultVerdict v;
  v.unit = unit;
  v.histogram.assign(static_cast<std::size_t>(horizon), 0);
  const logic::Injection inj = fault.injection();
  FaultSession session(pm, &inj);
  const fsm::FsmCircuit& circuit = pm.circuit();
  const std::uint64_t input_mask = pm.num_inputs() - 1;
  const core::Rng unit_rng = core::Rng(opts.seed).stream(unit_index);
  const auto& reach = pm.reachable();

  for (std::size_t si = 0; si < reach.size(); ++si) {
    for (int w = 0; w < opts.walks; ++w) {
      core::Rng rng = unit_rng.stream(
          static_cast<std::uint64_t>(si) *
              static_cast<std::uint64_t>(opts.walks) +
          static_cast<std::uint64_t>(w));
      std::uint64_t state = reach[si];
      int pending = -1;  // cycle of the episode's activation, -1 = none
      // The walk runs `walk_length` transitions but never abandons an open
      // episode: it extends (at most `horizon` cycles) until the episode
      // resolves, so every activation is classified, never dropped.
      for (int t = 0; t < opts.walk_length || pending >= 0; ++t) {
        const std::uint64_t a = rng.next() & input_mask;
        // The fault re-arms after every resolved episode (intermittent
        // model); within an episode it stays active for `persistence`
        // cycles after the activation (0 = permanent).
        const bool active = pending < 0 || opts.persistence <= 0 ||
                            (t - pending) < opts.persistence;
        const TransitionRow& row =
            active ? session.faulty_row(state) : session.golden_row(state);
        const std::uint64_t obs = row.response[a];
        if (pending < 0 && active &&
            obs != session.golden_row(state).response[a]) {
          pending = t;
        }
        if (row.error_at(a)) {
          if (pending >= 0) {
            classify_episode(v, t - pending + 1, opts.latency_bound, horizon);
            pending = -1;
          }
          state = circuit.enc.reset_code;  // system-level recovery
          continue;
        }
        if (pending >= 0 && t - pending + 1 >= horizon) {
          ++v.activations;
          ++v.silent_escape;
          pending = -1;
          state = circuit.enc.reset_code;
          continue;
        }
        state = circuit.next_state_of(obs);
      }
    }
  }
  return v;
}

FaultVerdict judge_flip_walks(const ProtectedMachine& pm, std::uint64_t mask,
                              std::uint64_t unit_index,
                              const CampaignOptions& opts, int horizon) {
  FaultVerdict v;
  v.unit = mask;
  v.histogram.assign(static_cast<std::size_t>(horizon), 0);
  FaultSession session(pm, nullptr);  // the logic stays fault-free
  const fsm::FsmCircuit& circuit = pm.circuit();
  const std::uint64_t input_mask = pm.num_inputs() - 1;
  const int s = circuit.s();
  const core::Rng unit_rng = core::Rng(opts.seed).stream(unit_index);
  const auto& reach = pm.reachable();

  for (std::size_t si = 0; si < reach.size(); ++si) {
    for (int w = 0; w < opts.walks; ++w) {
      core::Rng rng = unit_rng.stream(
          static_cast<std::uint64_t>(si) *
              static_cast<std::uint64_t>(opts.walks) +
          static_cast<std::uint64_t>(w));
      std::uint64_t golden_state = reach[si];
      std::uint64_t faulty_state = golden_state ^ mask;  // the upset itself
      bool output_diverged = false;
      int detected = 0;
      for (int t = 1; t <= horizon; ++t) {
        const std::uint64_t a = rng.next() & input_mask;
        const TransitionRow& fr = session.golden_row(faulty_state);
        if (fr.error_at(a)) {
          detected = t;
          break;
        }
        const TransitionRow& gr = session.golden_row(golden_state);
        const std::uint64_t fobs = fr.response[a];
        const std::uint64_t gobs = gr.response[a];
        if (((fobs ^ gobs) >> s) != 0) output_diverged = true;
        faulty_state = circuit.next_state_of(fobs);
        golden_state = circuit.next_state_of(gobs);
        if (faulty_state == golden_state) break;  // reconverged
      }
      if (detected > 0) {
        classify_episode(v, detected, opts.latency_bound, horizon);
      } else if (output_diverged || faulty_state != golden_state) {
        // Wrong outputs were produced — or latent state corruption outlived
        // the horizon — and the checker never fired.
        ++v.activations;
        ++v.silent_escape;
      }
      // else: the upset reconverged without ever being observable — benign.
    }
  }
  return v;
}

FaultVerdict judge_unit(const ProtectedMachine& pm,
                        std::span<const StuckAtFault> faults,
                        std::span<const std::uint64_t> units,
                        std::uint64_t unit_index, const CampaignOptions& opts,
                        int horizon) {
  const std::uint64_t unit = units[unit_index];
  if (opts.model == FaultModel::kStuckAt) {
    const StuckAtFault& fault = faults[unit_index];
    if (opts.policy == CampaignPolicy::kExhaustive) {
      return judge_stuck_exhaustive(pm, fault, unit, opts, horizon);
    }
    return judge_stuck_walks(pm, fault, unit, unit_index, opts, horizon);
  }
  return judge_flip_walks(pm, unit, unit_index, opts, horizon);
}

void absorb_netlist(Digest128& d, const logic::Netlist& net) {
  d.absorb(net.num_nets());
  for (std::uint32_t g = 0; g < net.num_nets(); ++g) {
    const logic::Gate& gate = net.gate(g);
    d.absorb(static_cast<std::uint64_t>(gate.type));
    d.absorb(gate.fanins.size());
    for (const std::uint32_t f : gate.fanins) {
      d.absorb(static_cast<std::uint64_t>(f));
    }
  }
  d.absorb(net.num_outputs());
  for (const std::uint32_t o : net.outputs()) {
    d.absorb(static_cast<std::uint64_t>(o));
  }
}

void validate_options(const fsm::FsmCircuit& circuit,
                      const CampaignOptions& opts) {
  if (opts.latency_bound < 1 || opts.latency_bound > core::kMaxLatency) {
    throw std::invalid_argument("run_campaign: latency bound out of range");
  }
  const int horizon = resolved_horizon(opts);
  if (horizon < opts.latency_bound || horizon > 62) {
    throw std::invalid_argument(
        "run_campaign: horizon must be in [latency_bound, 62]");
  }
  if (opts.persistence < 0) {
    throw std::invalid_argument("run_campaign: negative persistence");
  }
  if (opts.model != FaultModel::kStuckAt &&
      opts.policy == CampaignPolicy::kExhaustive) {
    throw std::invalid_argument(
        "run_campaign: the exhaustive policy covers stuck-at models only; "
        "flip models use --policy=walks");
  }
  if (opts.policy == CampaignPolicy::kExhaustive && circuit.s() > 48) {
    throw std::invalid_argument(
        "run_campaign: exhaustive policy needs <= 48 state bits");
  }
  if (opts.policy == CampaignPolicy::kRandomWalks &&
      (opts.walks < 1 || opts.walk_length < 1)) {
    throw std::invalid_argument(
        "run_campaign: walks and walk_length must be >= 1");
  }
  if (opts.model == FaultModel::kAdversarialFlip) {
    if (opts.flip_bits < 1 || opts.flip_bits > circuit.s()) {
      throw std::invalid_argument(
          "run_campaign: flip_bits must be in [1, state bits]");
    }
    if (circuit.s() > 20) {
      throw std::invalid_argument(
          "run_campaign: adversarial flip enumeration needs <= 20 state "
          "bits");
    }
  }
}

}  // namespace

const char* to_string(FaultModel m) {
  switch (m) {
    case FaultModel::kStuckAt: return "stuck-at";
    case FaultModel::kTransientFlip: return "transient-flip";
    case FaultModel::kAdversarialFlip: return "adversarial-flip";
  }
  return "?";
}

const char* to_string(CampaignPolicy p) {
  switch (p) {
    case CampaignPolicy::kExhaustive: return "exhaustive";
    case CampaignPolicy::kRandomWalks: return "walks";
  }
  return "?";
}

int resolved_horizon(const CampaignOptions& opts) {
  return opts.horizon > 0 ? opts.horizon : opts.latency_bound + 2;
}

std::vector<std::uint64_t> campaign_units(const fsm::FsmCircuit& circuit,
                                          std::span<const StuckAtFault> faults,
                                          const CampaignOptions& opts) {
  std::vector<std::uint64_t> units;
  switch (opts.model) {
    case FaultModel::kStuckAt:
      units.reserve(faults.size());
      for (const StuckAtFault& f : faults) {
        units.push_back((static_cast<std::uint64_t>(f.net) << 1) |
                        (f.stuck_value ? 1u : 0u));
      }
      break;
    case FaultModel::kTransientFlip:
      for (int b = 0; b < circuit.s(); ++b) {
        units.push_back(std::uint64_t{1} << b);
      }
      break;
    case FaultModel::kAdversarialFlip: {
      const std::uint64_t limit = std::uint64_t{1} << circuit.s();
      for (std::uint64_t mask = 1; mask < limit; ++mask) {
        if (std::popcount(mask) <= opts.flip_bits) units.push_back(mask);
      }
      break;
    }
  }
  return units;
}

std::string unit_label(FaultModel model, std::uint64_t unit) {
  if (model == FaultModel::kStuckAt) {
    return StuckAtFault{static_cast<std::uint32_t>(unit >> 1),
                        (unit & 1) != 0}
        .to_string();
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "flip:0x%llx",
                static_cast<unsigned long long>(unit));
  return buf;
}

std::string campaign_digest(const fsm::FsmCircuit& circuit,
                            const core::CedHardware& hw,
                            std::span<const StuckAtFault> faults,
                            const CampaignOptions& opts, int num_shards) {
  Digest128 d;
  d.absorb(std::uint64_t{1});  // digest schema version; bump on change
  // Functional circuit: interface, encoding, the reference netlist.
  d.absorb(static_cast<std::uint64_t>(circuit.r()));
  d.absorb(static_cast<std::uint64_t>(circuit.s()));
  d.absorb(static_cast<std::uint64_t>(circuit.o()));
  d.absorb(circuit.enc.reset_code);
  d.absorb(static_cast<std::uint64_t>(circuit.enc.encoding.num_bits));
  for (const std::uint64_t c : circuit.enc.encoding.codes) d.absorb(c);
  absorb_netlist(d, circuit.netlist);
  // Protection hardware: the checker netlist covers every synthesis option
  // that could change observable behaviour (don't-care fill included).
  d.absorb(static_cast<std::uint64_t>(hw.q));
  d.absorb(std::uint64_t{hw.two_rail ? 1u : 0u});
  for (const core::ParityFunc p : hw.parities) d.absorb(p);
  absorb_netlist(d, hw.checker);
  // Fault model.
  d.absorb(faults.size());
  for (const StuckAtFault& f : faults) {
    d.absorb((static_cast<std::uint64_t>(f.net) << 1) |
             (f.stuck_value ? 1u : 0u));
  }
  // Result-shaping campaign options + the shard partition. Budget valves
  // (deadline, threads, max_new_shards) are excluded: truncated results
  // are never cached.
  d.absorb(static_cast<std::uint64_t>(opts.model));
  d.absorb(static_cast<std::uint64_t>(opts.policy));
  d.absorb(static_cast<std::uint64_t>(opts.latency_bound));
  d.absorb(static_cast<std::uint64_t>(resolved_horizon(opts)));
  d.absorb(static_cast<std::uint64_t>(opts.persistence));
  d.absorb(static_cast<std::uint64_t>(opts.flip_bits));
  d.absorb(static_cast<std::uint64_t>(opts.walks));
  d.absorb(static_cast<std::uint64_t>(opts.walk_length));
  d.absorb(opts.seed);
  d.absorb(static_cast<std::uint64_t>(num_shards));
  return d.hex();
}

CampaignReport run_campaign(const fsm::FsmCircuit& circuit,
                            const core::CedHardware& hw,
                            std::span<const StuckAtFault> faults,
                            const CampaignOptions& opts,
                            const CampaignShardingOptions& sharding,
                            const CampaignCheckpointHooks& hooks) {
  validate_options(circuit, opts);
  const int horizon = resolved_horizon(opts);

  obs::ScopedSpan span(opts.obs, "campaign");
  span.attr("model", std::string(to_string(opts.model)));
  span.attr("policy", std::string(to_string(opts.policy)));
  const obs::Sinks sinks =
      span.id() != 0 ? opts.obs.under(span.id()) : opts.obs;

  const ProtectedMachine pm(circuit, hw);
  const std::vector<std::uint64_t> units =
      campaign_units(circuit, faults, opts);
  span.attr("units", static_cast<std::uint64_t>(units.size()));
  const int num_shards =
      core::resolve_checkpoint_shards(sharding.num_shards, units.size());
  const std::vector<std::size_t> bounds =
      shard_bounds(units.size(), num_shards);

  // Phase 1: collect checkpointed shards; list the rest.
  std::vector<CampaignShard> shards(static_cast<std::size_t>(num_shards));
  std::vector<char> have(static_cast<std::size_t>(num_shards), 0);
  std::vector<char> tripped(static_cast<std::size_t>(num_shards), 0);
  std::vector<std::size_t> to_run;
  for (int i = 0; i < num_shards; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    CampaignShard loaded;
    if (hooks.load &&
        hooks.load(static_cast<std::uint32_t>(i),
                   static_cast<std::uint32_t>(num_shards), loaded) &&
        loaded.index == static_cast<std::uint32_t>(i) &&
        loaded.num_shards == static_cast<std::uint32_t>(num_shards) &&
        loaded.verdicts.size() == bounds[idx + 1] - bounds[idx]) {
      shards[idx] = std::move(loaded);
      have[idx] = 1;
    } else {
      to_run.push_back(idx);
    }
  }
  std::size_t skipped = 0;
  if (sharding.max_new_shards > 0 &&
      to_run.size() > static_cast<std::size_t>(sharding.max_new_shards)) {
    skipped = to_run.size() - static_cast<std::size_t>(sharding.max_new_shards);
    to_run.resize(static_cast<std::size_t>(sharding.max_new_shards));
  }

  // Phase 2: compute the missing shards. Each shard is a pure function of
  // (design, its unit block, options, shard count); the deadline is polled
  // at unit boundaries so a trip keeps the shard's completed units as a
  // partial (never persisted) result.
  parallel_for(opts.threads, to_run.size(), [&](std::size_t k) {
    const std::size_t i = to_run[k];
    obs::ScopedSpan shard_span(sinks, "campaign-shard");
    shard_span.attr("shard", static_cast<std::uint64_t>(i));
    obs::MetricsShard ms(sinks.metrics);
    CampaignShard sh;
    sh.index = static_cast<std::uint32_t>(i);
    sh.num_shards = static_cast<std::uint32_t>(num_shards);
    for (std::size_t u = bounds[i]; u < bounds[i + 1]; ++u) {
      if (opts.deadline.expired()) {
        tripped[i] = 1;
        break;
      }
      FaultVerdict v = judge_unit(pm, faults, units,
                                  static_cast<std::uint64_t>(u), opts, horizon);
      ms.add("ced_campaign_units_total");
      ms.add("ced_campaign_activations_total", v.activations);
      ms.add("ced_campaign_detected_in_bound_total", v.detected_in_bound);
      ms.add("ced_campaign_detected_late_total", v.detected_late);
      ms.add("ced_campaign_silent_escapes_total", v.silent_escape);
      for (std::size_t b = 0; b < v.histogram.size(); ++b) {
        for (std::uint64_t c = 0; c < v.histogram[b]; ++c) {
          ms.observe("ced_campaign_latency", static_cast<double>(b + 1));
        }
      }
      sh.verdicts.push_back(std::move(v));
    }
    shards[i] = std::move(sh);
    have[i] = 1;
    if (!tripped[i] && hooks.save) hooks.save(shards[i]);
  });

  // Phase 3: deterministic merge in fixed shard (= unit) order. Partial
  // shards contribute their completed units; skipped shards contribute
  // nothing and are reported through the truncation flag.
  CampaignReport rep;
  rep.model = opts.model;
  rep.policy = opts.policy;
  rep.latency_bound = opts.latency_bound;
  rep.horizon = horizon;
  rep.persistence = opts.persistence;
  rep.flip_bits = opts.flip_bits;
  rep.walks = opts.walks;
  rep.walk_length = opts.walk_length;
  rep.seed = opts.seed;
  rep.num_units = units.size();
  rep.histogram.assign(static_cast<std::size_t>(horizon), 0);
  bool any_tripped = false;
  for (int i = 0; i < num_shards; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!have[idx]) continue;
    any_tripped = any_tripped || tripped[idx] != 0;
    for (FaultVerdict& v : shards[idx].verdicts) {
      rep.activations += v.activations;
      rep.detected_in_bound += v.detected_in_bound;
      rep.detected_late += v.detected_late;
      rep.silent_escape += v.silent_escape;
      if (v.benign()) ++rep.benign_units;
      rep.max_latency = std::max(rep.max_latency, v.max_latency);
      for (std::size_t b = 0; b < v.histogram.size(); ++b) {
        rep.histogram[b] += v.histogram[b];
      }
      rep.verdicts.push_back(std::move(v));
    }
  }
  if (any_tripped) {
    rep.truncated = true;
    rep.truncation_reason =
        "campaign deadline expired; verdicts cover the units completed "
        "(completed shards are checkpointed — resume to finish)";
  }
  if (skipped > 0) {
    rep.truncated = true;
    rep.truncation_reason =
        "max_new_shards valve: " + std::to_string(skipped) +
        " shard(s) skipped; resume to finish";
  }
  return rep;
}

std::string campaign_report_json(const CampaignReport& report,
                                 const std::string& circuit_label,
                                 double wall_seconds, int threads) {
  std::string j = "{";
  const auto str = [&](const char* key, const std::string& value) {
    j += "\"";
    j += key;
    j += "\":\"" + obs::json_escape(value) + "\",";
  };
  const auto num = [&](const char* key, std::uint64_t value) {
    j += "\"";
    j += key;
    j += "\":" + std::to_string(value) + ",";
  };
  const auto boolean = [&](const char* key, bool value) {
    j += "\"";
    j += key;
    j += value ? "\":true," : "\":false,";
  };
  str("circuit", circuit_label);
  str("model", to_string(report.model));
  str("policy", to_string(report.policy));
  num("latency_bound", static_cast<std::uint64_t>(report.latency_bound));
  num("horizon", static_cast<std::uint64_t>(report.horizon));
  num("persistence", static_cast<std::uint64_t>(report.persistence));
  num("flip_bits", static_cast<std::uint64_t>(report.flip_bits));
  num("walks", static_cast<std::uint64_t>(report.walks));
  num("walk_length", static_cast<std::uint64_t>(report.walk_length));
  str("seed", std::to_string(report.seed));
  num("num_units", report.num_units);
  num("units_judged", report.verdicts.size());
  num("activations", report.activations);
  num("detected_in_bound", report.detected_in_bound);
  num("detected_late", report.detected_late);
  num("silent_escape", report.silent_escape);
  num("benign_units", report.benign_units);
  num("max_latency", static_cast<std::uint64_t>(report.max_latency));
  boolean("hard_guarantee", report.hard_guarantee());
  boolean("bound_holds", report.bound_holds());
  boolean("truncated", report.truncated);
  str("truncation_reason", report.truncation_reason);
  j += "\"histogram\":[";
  for (std::size_t b = 0; b < report.histogram.size(); ++b) {
    if (b != 0) j += ",";
    j += std::to_string(report.histogram[b]);
  }
  j += "],";
  j += "\"wall_seconds\":" + obs::json_number(wall_seconds) + ",";
  j += "\"threads\":" + std::to_string(threads) + "}";
  return j;
}

}  // namespace ced::sim
