#pragma once

// Closed-loop fault-injection campaign engine: empirically proves (or
// measures) bounded-latency detection by driving the full protected design
// (sim/protected_machine.hpp) under injected faults and recording when the
// checker actually fires.
//
// Fault models:
//   kStuckAt         persistent stuck-at on a netlist net, active for
//                    `persistence` cycles after its first activation
//                    (0 = permanent). With persistence 0 or >= the latency
//                    bound this is the paper's §2 fault class, and the
//                    campaign's verdict is a hard guarantee check: any
//                    detected_late or silent_escape episode falsifies the
//                    scheme (CampaignReport::hard_guarantee()).
//   kTransientFlip   single-cycle upsets of one state-register bit (the
//                    OpenSEA-style SEU model). The logic stays fault-free;
//                    only the register is corrupted, which the Fig. 3
//                    checker cannot in general see (the paper excludes SEUs
//                    for p > 1) — the campaign *measures* the escape rate
//                    instead of asserting a bound.
//   kAdversarialFlip all k-bit state-register flips with 1 <= popcount <=
//                    flip_bits (the SCFI-style fault attacker). Diagnostics
//                    like kTransientFlip.
//
// Policies:
//   kExhaustive      every activation scenario (fault, reachable state,
//                    input), then the worst case over ALL input paths up to
//                    the horizon (memoized; stuck-at models only). This is
//                    the strongest statement the engine makes: a clean
//                    exhaustive run is a proof over every bounded path.
//   kRandomWalks     seeded random input walks from every reachable
//                    activation state (all models). Deterministic per seed
//                    at any thread count: walk w from activation-state
//                    index si of unit u draws from
//                    Rng(seed).stream(u).stream(si * walks + w).
//
// Episode taxonomy (one episode per activation):
//   detected_in_bound  checker fired within latency_bound cycles
//   detected_late      fired after the bound but within the horizon
//   silent_escape      observable divergence, never flagged within the
//                      horizon (flip models: also unreconverged latent
//                      state corruption at the horizon)
//   benign             a unit with no activation at all (stuck-at faults
//                      masked by the logic; flips that reconverge silently)
//
// The engine reuses the house substrate: units are partitioned into a fixed
// shard count independent of the worker-thread count, shards run under
// parallel_for with private deadline polling, completed shards persist
// through CampaignCheckpointHooks (storage wires them to the ArtifactStore
// under the content-addressed campaign_digest key), and a killed campaign
// resumed from its checkpoints produces byte-identical verdicts.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/resilience.hpp"
#include "obs/trace.hpp"
#include "sim/faults.hpp"
#include "sim/protected_machine.hpp"

namespace ced::sim {

enum class FaultModel {
  kStuckAt = 0,
  kTransientFlip = 1,
  kAdversarialFlip = 2,
};

enum class CampaignPolicy {
  kExhaustive = 0,
  kRandomWalks = 1,
};

const char* to_string(FaultModel m);
const char* to_string(CampaignPolicy p);

struct CampaignOptions {
  FaultModel model = FaultModel::kStuckAt;
  CampaignPolicy policy = CampaignPolicy::kExhaustive;
  /// Latency bound p the scheme was selected for (1 .. kMaxLatency).
  int latency_bound = 2;
  /// Escape cutoff in cycles: detection after `horizon` counts as
  /// silent_escape, between bound and horizon as detected_late.
  /// 0 resolves to latency_bound + 2 (see resolved_horizon).
  int horizon = 0;
  /// kStuckAt: cycles the fault stays active after first activation;
  /// 0 = permanent. The §2 guarantee needs persistence >= latency_bound.
  int persistence = 0;
  /// kAdversarialFlip: maximum simultaneously flipped state bits.
  int flip_bits = 1;
  /// kRandomWalks: walks per (unit, activation state) and their length.
  int walks = 8;
  int walk_length = 96;
  std::uint64_t seed = 0xca4a16e;
  /// Worker threads for the shard fan-out (0 = CED_THREADS env or hardware
  /// concurrency). Verdicts are byte-identical at any count.
  int threads = 0;
  /// Cooperative valve: an expired deadline stops at the next unit
  /// boundary; completed shards stay durable, the report says truncated.
  core::Deadline deadline;
  /// Write-only diagnostics; verdicts are identical with sinks set or null.
  obs::Sinks obs;
};

/// The horizon actually used: opts.horizon, or latency_bound + 2 when 0.
int resolved_horizon(const CampaignOptions& opts);

/// Per-unit verdict. A "unit" is one fault of the model: a stuck-at fault
/// (encoded net << 1 | stuck_value, in canonical enumerate_stuck_at order)
/// or a state-register flip mask.
struct FaultVerdict {
  std::uint64_t unit = 0;
  std::uint64_t activations = 0;
  std::uint64_t detected_in_bound = 0;
  std::uint64_t detected_late = 0;
  std::uint64_t silent_escape = 0;
  /// Largest observed first-detection latency over detected episodes.
  int max_latency = 0;
  /// histogram[k-1] = episodes first detected k cycles after activation
  /// (size = horizon).
  std::vector<std::uint64_t> histogram;

  bool benign() const { return activations == 0; }
  bool operator==(const FaultVerdict&) const = default;
};

/// One completed checkpoint shard: the verdicts of a contiguous unit block,
/// a pure function of (design, unit block, options, shard count).
struct CampaignShard {
  std::uint32_t index = 0;
  std::uint32_t num_shards = 0;
  std::vector<FaultVerdict> verdicts;
};

struct CampaignShardingOptions {
  /// Checkpoint shards (0 = core::kDefaultCheckpointShards), clamped to
  /// the unit count. Part of the campaign key.
  int num_shards = 0;
  /// Stop (deterministically) after computing this many new shards; used
  /// by tests and `--max-new-shards` as the deterministic analogue of a
  /// wall-clock trip. 0 = no limit.
  int max_new_shards = 0;
};

/// Checkpoint callbacks wired up by the storage layer (the campaign engine
/// performs no file I/O). `load` fills `out` and returns true when a
/// completed shard exists for (shard, num_shards); `save` receives every
/// newly completed (never truncated) shard, possibly concurrently.
struct CampaignCheckpointHooks {
  std::function<bool(std::uint32_t shard, std::uint32_t num_shards,
                     CampaignShard& out)>
      load;
  std::function<void(const CampaignShard&)> save;
};

/// The campaign's verdict sheet. Everything here is a deterministic
/// function of (circuit, checker, fault list, options, shard partition) —
/// wall-clock and thread count deliberately never enter, so the encoded
/// report is byte-identical across reruns, thread counts and resumes.
struct CampaignReport {
  FaultModel model = FaultModel::kStuckAt;
  CampaignPolicy policy = CampaignPolicy::kExhaustive;
  int latency_bound = 0;
  int horizon = 0;
  int persistence = 0;
  int flip_bits = 0;
  int walks = 0;
  int walk_length = 0;
  std::uint64_t seed = 0;

  std::uint64_t num_units = 0;
  std::uint64_t activations = 0;
  std::uint64_t detected_in_bound = 0;
  std::uint64_t detected_late = 0;
  std::uint64_t silent_escape = 0;
  std::uint64_t benign_units = 0;
  int max_latency = 0;
  std::vector<std::uint64_t> histogram;  ///< summed over units

  /// True when a valve (deadline or max_new_shards) stopped the campaign
  /// before every unit was judged: verdicts cover the units completed.
  bool truncated = false;
  std::string truncation_reason;

  std::vector<FaultVerdict> verdicts;  ///< unit order

  /// True when the fault model is within the paper's §2 class, i.e. the
  /// campaign asserts the bound instead of merely measuring coverage.
  bool hard_guarantee() const {
    return model == FaultModel::kStuckAt &&
           (persistence == 0 || persistence >= latency_bound);
  }
  /// Empirical form of the paper's claim: every activation detected within
  /// the bound. A hard-guarantee campaign with bound_holds() false is a
  /// falsified scheme (run_campaign reports it; callers decide the exit).
  bool bound_holds() const {
    return detected_late == 0 && silent_escape == 0;
  }
};

/// The model's unit list, in canonical order: stuck-at faults as
/// net << 1 | stuck_value (enumerate_stuck_at order), flip masks ascending
/// (popcount 1 for kTransientFlip, 1..flip_bits for kAdversarialFlip).
std::vector<std::uint64_t> campaign_units(const fsm::FsmCircuit& circuit,
                                          std::span<const StuckAtFault> faults,
                                          const CampaignOptions& opts);

/// Human-readable unit name ("net7/SA1", "flip:0x4", ...).
std::string unit_label(FaultModel model, std::uint64_t unit);

/// Content digest (32 hex chars) of everything the verdicts depend on: the
/// functional netlist + encoding, the checker netlist + parities, the fault
/// list, every result-shaping campaign option and the shard partition.
/// Budget valves (deadline, threads, max_new_shards) are excluded —
/// truncated results are never cached. This is the campaign's artifact key.
std::string campaign_digest(const fsm::FsmCircuit& circuit,
                            const core::CedHardware& hw,
                            std::span<const StuckAtFault> faults,
                            const CampaignOptions& opts, int num_shards);

/// Runs the campaign: shards the unit list, loads checkpointed shards via
/// `hooks`, fans the rest out over opts.threads workers, persists every
/// newly completed shard, and merges verdicts in fixed unit order.
/// Throws std::invalid_argument for malformed options (flip models under
/// kExhaustive, horizon below the bound, latency out of range).
CampaignReport run_campaign(const fsm::FsmCircuit& circuit,
                            const core::CedHardware& hw,
                            std::span<const StuckAtFault> faults,
                            const CampaignOptions& opts,
                            const CampaignShardingOptions& sharding = {},
                            const CampaignCheckpointHooks& hooks = {});

/// One BENCH_campaign.json entry for this report: the verdict totals, the
/// latency histogram, and the run context (label, wall seconds, threads —
/// context only; the verdict fields are the deterministic part).
std::string campaign_report_json(const CampaignReport& report,
                                 const std::string& circuit_label,
                                 double wall_seconds, int threads);

}  // namespace ced::sim
