#include "sim/protected_machine.hpp"

#include <stdexcept>

namespace ced::sim {

std::vector<std::uint64_t> checker_error_mask(
    const core::CedHardware& hw, std::uint64_t state_code,
    std::span<const std::uint64_t> responses) {
  const int r = hw.r;
  const int s = hw.s;
  const int n = hw.n;
  const logic::Netlist& nl = hw.checker;
  const std::uint64_t num_inputs = responses.size();
  const std::size_t error_index =
      static_cast<std::size_t>(2 * hw.q + (hw.two_rail ? 2 : 0));
  const std::uint32_t error_net = nl.outputs()[error_index];

  std::vector<std::uint64_t> mask((num_inputs + 63) / 64, 0);
  std::vector<std::uint64_t> words(static_cast<std::size_t>(r + s + n), 0);
  std::vector<std::uint64_t> values;

  // Same batching scheme as simulate_all_inputs: pattern t of the batch at
  // `base` is concrete input value base + t, so input bit i < 6 is a stripe
  // constant and bits >= 6 are fixed within a batch.
  static constexpr std::uint64_t kStripe[6] = {
      0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
      0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};

  for (int b = 0; b < s; ++b) {
    words[static_cast<std::size_t>(r + b)] =
        ((state_code >> b) & 1) ? ~std::uint64_t{0} : 0;
  }

  const std::uint64_t batch_count = (num_inputs + 63) / 64;
  for (std::uint64_t batch = 0; batch < batch_count; ++batch) {
    const std::uint64_t base = batch * 64;
    const std::uint64_t in_batch =
        std::min<std::uint64_t>(64, num_inputs - base);
    for (int i = 0; i < r; ++i) {
      if (i < 6) {
        words[static_cast<std::size_t>(i)] = kStripe[i];
      } else {
        words[static_cast<std::size_t>(i)] =
            ((base >> i) & 1) ? ~std::uint64_t{0} : 0;
      }
    }
    // Observable bits: transpose the batch's response words so word r+s+o
    // carries bit o of responses[base + t] at pattern position t.
    for (int o = 0; o < n; ++o) {
      std::uint64_t w = 0;
      for (std::uint64_t t = 0; t < in_batch; ++t) {
        w |= ((responses[base + t] >> o) & 1) << t;
      }
      words[static_cast<std::size_t>(r + s + o)] = w;
    }
    nl.eval(words, values);
    std::uint64_t err = values[error_net];
    if (in_batch < 64) err &= (std::uint64_t{1} << in_batch) - 1;
    mask[batch] = err;
  }
  return mask;
}

ProtectedMachine::ProtectedMachine(const fsm::FsmCircuit& circuit,
                                   const core::CedHardware& hw)
    : circuit_(circuit), hw_(hw) {
  if (hw.r != circuit.r() || hw.s != circuit.s() || hw.n != circuit.n()) {
    throw std::invalid_argument(
        "ProtectedMachine: checker interface does not match the circuit");
  }
  reachable_ = reachable_codes(circuit, circuit.enc.reset_code);
  for (const std::uint64_t code : reachable_) {
    TransitionRow row;
    row.response = simulate_all_inputs(circuit_, code);
    row.error = checker_error_mask(hw_, code, row.response);
    golden_.emplace(code, std::move(row));
  }
}

const TransitionRow* ProtectedMachine::golden_row(
    std::uint64_t state_code) const {
  const auto it = golden_.find(state_code);
  return it == golden_.end() ? nullptr : &it->second;
}

FaultSession::FaultSession(const ProtectedMachine& pm,
                           const logic::Injection* injection)
    : pm_(pm), injection_(injection) {}

TransitionRow FaultSession::simulate(std::uint64_t state_code,
                                     const logic::Injection* injection) const {
  TransitionRow row;
  row.response = simulate_all_inputs(pm_.circuit(), state_code, injection);
  row.error = checker_error_mask(pm_.hw(), state_code, row.response);
  return row;
}

const TransitionRow& FaultSession::faulty_row(std::uint64_t state_code) {
  auto it = faulty_.find(state_code);
  if (it == faulty_.end()) {
    if (injection_ == nullptr) {
      throw std::logic_error("FaultSession: faulty_row without an injection");
    }
    it = faulty_.emplace(state_code, simulate(state_code, injection_)).first;
  }
  return it->second;
}

const TransitionRow& FaultSession::golden_row(std::uint64_t state_code) {
  if (const TransitionRow* shared = pm_.golden_row(state_code)) {
    return *shared;
  }
  auto it = golden_local_.find(state_code);
  if (it == golden_local_.end()) {
    it = golden_local_.emplace(state_code, simulate(state_code, nullptr))
             .first;
  }
  return it->second;
}

}  // namespace ced::sim
