#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "fsm/synthesize.hpp"
#include "sim/faults.hpp"

namespace ced::sim {

/// Computes the packed observable word (next-state bits then outputs) of one
/// FSM transition for every concrete input value 0 .. 2^r - 1, starting from
/// `state_code`, optionally with a fault injected. 64 inputs are evaluated
/// per netlist pass.
std::vector<std::uint64_t> simulate_all_inputs(
    const fsm::FsmCircuit& c, std::uint64_t state_code,
    const logic::Injection* injection = nullptr);

/// Lazy cache of fault-free transition responses keyed by present-state
/// code. The fault-free circuit is the golden model for all error analysis,
/// so these rows are shared across every fault.
class GoldenCache {
 public:
  explicit GoldenCache(const fsm::FsmCircuit& c) : circuit_(c) {}

  const std::vector<std::uint64_t>& rows(std::uint64_t state_code);
  const fsm::FsmCircuit& circuit() const { return circuit_; }

  /// Simulates every given state code up front. After this the cache can be
  /// read concurrently through find() — it becomes immutable shared state
  /// for the parallel extraction fan-out.
  void populate(std::span<const std::uint64_t> state_codes);

  /// Read-only lookup; nullptr when the code was never simulated. Safe to
  /// call from multiple threads as long as no thread calls rows()/populate()
  /// concurrently.
  const std::vector<std::uint64_t>* find(std::uint64_t state_code) const;

 private:
  const fsm::FsmCircuit& circuit_;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> cache_;
};

/// A worker's view of the golden model: reads hit the shared pre-populated
/// GoldenCache (immutable during the fan-out, so lock-free), and codes
/// outside the pre-populated set — faulty walks can drag the reference
/// through states the fault-free machine never visits — fall back to a
/// private per-worker cache.
class GoldenView {
 public:
  explicit GoldenView(const GoldenCache& shared)
      : shared_(shared), local_(shared.circuit()) {}

  const std::vector<std::uint64_t>& rows(std::uint64_t state_code) {
    if (const auto* r = shared_.find(state_code)) return *r;
    return local_.rows(state_code);
  }

 private:
  const GoldenCache& shared_;
  GoldenCache local_;
};

/// Per-fault memo of faulty transition responses keyed by state code.
class FaultyCache {
 public:
  FaultyCache(const fsm::FsmCircuit& c, const StuckAtFault& f)
      : circuit_(c), injection_(f.injection()) {}

  const std::vector<std::uint64_t>& rows(std::uint64_t state_code);

 private:
  const fsm::FsmCircuit& circuit_;
  logic::Injection injection_;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> cache_;
};

/// State codes reachable in the fault-free circuit from `reset_code` under
/// every input sequence (BFS over all concrete inputs).
std::vector<std::uint64_t> reachable_codes(const fsm::FsmCircuit& c,
                                           std::uint64_t reset_code);

}  // namespace ced::sim
