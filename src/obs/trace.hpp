#pragma once

// Span-tracing half of the observability layer (ced_obs): a hierarchical
// monotonic-clock tracer with a bounded ring-buffer sink, the RAII
// ScopedSpan wrapper, the Sinks bundle every instrumented layer threads
// through its options, and the boundary-consistent StageClock the pipeline
// uses so stage times always sum exactly to the run total.
//
// Parenting is explicit (numeric span ids, no thread-local ambient span):
// a worker span created on a pool thread nests under whatever stage span
// spawned the fan-out simply because the stage passed its id down — the
// same discipline as the deterministic shard partitions in
// common/parallel.hpp.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ced::obs {

/// One finished span: timing relative to the tracer's epoch plus free-form
/// string attributes. `parent == 0` marks a root.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  double start_s = 0.0;
  double dur_s = 0.0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Thread-safe span sink. Completed spans land in a fixed-capacity ring
/// buffer (oldest dropped first, with a drop counter) so a runaway
/// instrumentation loop can never exhaust memory. begin/end accept explicit
/// time points so callers that already hold a boundary timestamp (the
/// StageClock) can share one clock sample between adjacent spans.
class Tracer {
 public:
  using clock = std::chrono::steady_clock;

  explicit Tracer(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity), epoch_(clock::now()) {}

  clock::time_point epoch() const { return epoch_; }

  /// Opens a span; returns its id (never 0).
  std::uint64_t begin_span(std::string name, std::uint64_t parent = 0,
                           clock::time_point at = clock::now());
  /// Closes an open span; unknown ids are ignored (the span may have been
  /// evicted — never an error path).
  void end_span(std::uint64_t id, clock::time_point at = clock::now());
  /// Attaches a key/value attribute to a still-open span.
  void attr(std::uint64_t id, std::string key, std::string value);

  /// Completed spans in start-time order (ties broken by id, which is
  /// allocation order — stable across runs at any thread count for
  /// deterministic work).
  std::vector<SpanRecord> snapshot() const;
  std::uint64_t dropped() const;

 private:
  double since_epoch(clock::time_point t) const {
    return std::chrono::duration<double>(t - epoch_).count();
  }

  std::size_t capacity_;
  clock::time_point epoch_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<SpanRecord> open_;
  std::vector<SpanRecord> done_;  // ring buffer
  std::size_t done_head_ = 0;     // next write slot once full
  bool done_full_ = false;
};

/// The observability hooks one layer hands the next. Copyable and tiny;
/// all-null (the default) means "observability off" and every instrument
/// downstream reduces to a branch. `parent_span` scopes new spans under
/// the caller's span — use under() when descending a level.
struct Sinks {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  std::uint64_t parent_span = 0;

  bool enabled() const { return tracer != nullptr || metrics != nullptr; }
  /// Same sinks, reparented: spans opened through the result nest under
  /// `parent`.
  Sinks under(std::uint64_t parent) const { return {tracer, metrics, parent}; }
};

/// RAII span: opens on construction (no-op with a null tracer), closes on
/// destruction or an explicit end(). Movable so helpers can return one.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, std::string name, std::uint64_t parent = 0)
      : tracer_(tracer) {
    if (tracer_) id_ = tracer_->begin_span(std::move(name), parent);
  }
  ScopedSpan(const Sinks& sinks, std::string name)
      : ScopedSpan(sinks.tracer, std::move(name), sinks.parent_span) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = other.tracer_;
      id_ = other.id_;
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }
  ~ScopedSpan() { end(); }

  /// Id for parenting child spans; 0 when tracing is off.
  std::uint64_t id() const { return id_; }

  void attr(std::string key, std::string value) {
    if (tracer_ && id_) tracer_->attr(id_, std::move(key), std::move(value));
  }
  void attr(std::string key, std::uint64_t value) {
    attr(std::move(key), std::to_string(value));
  }

  void end() {
    if (tracer_ && id_) tracer_->end_span(id_);
    tracer_ = nullptr;
    id_ = 0;
  }

 private:
  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Boundary-consistent stage timer. The old stage-times code took a fresh
/// steady_clock::now() pair around every stage, so the per-stage durations
/// never summed to the separately-measured run total (each gap between one
/// stage's end sample and the next stage's start sample leaked). Here every
/// transition takes ONE clock sample that serves as both the end of the
/// closing stage and the start of the next, so by construction
///   sum(stage laps) == total()
/// up to float addition. Spans opened/closed through the clock share the
/// same boundary timestamps, keeping the trace and the printed stage times
/// in exact agreement.
class StageClock {
 public:
  using clock = std::chrono::steady_clock;

  StageClock() : start_(clock::now()), boundary_(start_) {}

  clock::time_point boundary() const { return boundary_; }

  /// Opens a stage span starting at the current boundary (0 with a null
  /// tracer).
  std::uint64_t open(Tracer* tracer, std::string name,
                     std::uint64_t parent = 0) {
    if (!tracer) return 0;
    return tracer->begin_span(std::move(name), parent, boundary_);
  }

  /// Advances the boundary to now; returns the closed stage's seconds.
  double lap() {
    const clock::time_point now = clock::now();
    const double dt = std::chrono::duration<double>(now - boundary_).count();
    boundary_ = now;
    return dt;
  }

  /// lap() plus closing `span` at the new boundary (the span's end equals
  /// the next stage's start exactly).
  double close(Tracer* tracer, std::uint64_t span) {
    const double dt = lap();
    if (tracer && span) tracer->end_span(span, boundary_);
    return dt;
  }

  /// Seconds from construction to the last boundary: the telescoping sum
  /// of every lap taken so far.
  double total() const {
    return std::chrono::duration<double>(boundary_ - start_).count();
  }

 private:
  clock::time_point start_, boundary_;
};

}  // namespace ced::obs
