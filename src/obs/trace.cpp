#include "obs/trace.hpp"

#include <algorithm>

namespace ced::obs {

std::uint64_t Tracer::begin_span(std::string name, std::uint64_t parent,
                                 clock::time_point at) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord rec;
  rec.id = next_id_++;
  rec.parent = parent;
  rec.name = std::move(name);
  rec.start_s = since_epoch(at);
  open_.push_back(std::move(rec));
  return open_.back().id;
}

void Tracer::end_span(std::uint64_t id, clock::time_point at) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(open_.begin(), open_.end(),
                         [id](const SpanRecord& r) { return r.id == id; });
  if (it == open_.end()) return;
  SpanRecord rec = std::move(*it);
  open_.erase(it);
  rec.dur_s = since_epoch(at) - rec.start_s;
  if (rec.dur_s < 0.0) rec.dur_s = 0.0;
  if (done_.size() < capacity_) {
    done_.push_back(std::move(rec));
  } else {
    done_[done_head_] = std::move(rec);
    done_head_ = (done_head_ + 1) % capacity_;
    done_full_ = true;
    ++dropped_;
  }
}

void Tracer::attr(std::uint64_t id, std::string key, std::string value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(open_.begin(), open_.end(),
                         [id](const SpanRecord& r) { return r.id == id; });
  if (it == open_.end()) return;
  it->attrs.emplace_back(std::move(key), std::move(value));
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out = done_;
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_s != b.start_s) return a.start_s < b.start_s;
                     return a.id < b.id;
                   });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace ced::obs
