#pragma once

// Minimal JSON string/number formatting shared by the obs exporters and
// the bench harnesses (bench::json_escape/json_number delegate here, so
// every JSON emitter in the tree escapes identically).

#include <string>
#include <string_view>

namespace ced::obs {

/// Escapes `s` for use inside a double-quoted JSON string (quotes,
/// backslash, and control characters; everything else passes through).
std::string json_escape(std::string_view s);

/// Formats a finite double with six decimals; NaN/Inf become "null" so the
/// emitted document always parses.
std::string json_number(double v);

}  // namespace ced::obs
