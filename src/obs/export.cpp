#include "obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <functional>

#include "obs/json.hpp"

namespace ced::obs {
namespace {

std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Shortest %g-style rendering for histogram edges ("0.005", "1", "20").
std::string edge_text(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string metrics_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"edges\": [";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      if (i) out += ", ";
      out += json_number(h.edges[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"sum\": " + json_number(h.sum) +
           ", \"count\": " + std::to_string(h.total) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string trace_json(const std::vector<SpanRecord>& spans,
                       std::uint64_t dropped) {
  std::string out = "{\n  \"dropped\": " + std::to_string(dropped) +
                    ",\n  \"spans\": [";
  bool first = true;
  for (const SpanRecord& s : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent) + ", \"name\": \"" +
           json_escape(s.name) + "\", \"start_s\": " + json_number(s.start_s) +
           ", \"dur_s\": " + json_number(s.dur_s) + ", \"attrs\": {";
    for (std::size_t i = 0; i < s.attrs.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + json_escape(s.attrs[i].first) + "\": \"" +
             json_escape(s.attrs[i].second) + "\"";
    }
    out += "}}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + json_number(v) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cum += h.counts[i];
      const std::string le =
          i < h.edges.size() ? edge_text(h.edges[i]) : "+Inf";
      out += n + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) + "\n";
    }
    out += n + "_sum " + json_number(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.total) + "\n";
  }
  return out;
}

std::string explain_tree(const std::vector<SpanRecord>& spans,
                         const MetricsSnapshot& snap) {
  std::string out;
  // Children in snapshot (start-time) order under each parent.
  std::vector<std::vector<std::size_t>> kids(spans.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    bool found = false;
    if (spans[i].parent != 0) {
      for (std::size_t j = 0; j < spans.size(); ++j) {
        if (spans[j].id == spans[i].parent) {
          kids[j].push_back(i);
          found = true;
          break;
        }
      }
    }
    if (!found) roots.push_back(i);
  }
  double root_total = 0.0;
  for (std::size_t r : roots) root_total += spans[r].dur_s;

  std::function<void(std::size_t, int)> emit = [&](std::size_t i, int depth) {
    const SpanRecord& s = spans[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%9.3fs ", s.dur_s);
    out += buf;
    if (root_total > 0.0) {
      std::snprintf(buf, sizeof(buf), "%5.1f%%  ",
                    100.0 * s.dur_s / root_total);
      out += buf;
    }
    for (int d = 0; d < depth; ++d) out += "  ";
    out += s.name;
    for (const auto& [k, v] : s.attrs) out += "  " + k + "=" + v;
    out += "\n";
    for (std::size_t c : kids[i]) emit(c, depth + 1);
  };
  for (std::size_t r : roots) emit(r, 0);

  if (!snap.counters.empty() || !snap.gauges.empty()) {
    out += "--\n";
    for (const auto& [name, v] : snap.counters) {
      out += name + " = " + std::to_string(v) + "\n";
    }
    for (const auto& [name, v] : snap.gauges) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", v);
      out += name + " = " + std::string(buf) + "\n";
    }
  }
  return out;
}

}  // namespace ced::obs
