#pragma once

// Exporters for the observability layer: machine-readable JSON dumps of
// the metrics snapshot and the span trace, Prometheus text exposition for
// the metrics, and the human-oriented `--explain` span tree printed by
// ced_cli. All output is deterministic given the inputs (maps are ordered,
// spans are sorted) so tests can golden-compare it.

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ced::obs {

/// One JSON document: {"counters":{...},"gauges":{...},"histograms":{...}}.
std::string metrics_json(const MetricsSnapshot& snap);

/// One JSON document: {"dropped":N,"spans":[{...},...]} with spans in
/// start-time order; each span carries id/parent/name/start_s/dur_s/attrs.
std::string trace_json(const std::vector<SpanRecord>& spans,
                       std::uint64_t dropped = 0);

/// Prometheus text exposition format (one `# TYPE` line per family).
/// Metric names are sanitized to [a-zA-Z0-9_:].
std::string prometheus_text(const MetricsSnapshot& snap);

/// Human span tree: indentation follows parent links, every line shows
/// duration, percentage of the root, and attributes; a metrics appendix
/// lists the counters and gauges. What `ced_cli --explain` prints.
std::string explain_tree(const std::vector<SpanRecord>& spans,
                         const MetricsSnapshot& snap);

}  // namespace ced::obs
