#pragma once

// Metrics half of the observability layer (ced_obs): counters, gauges and
// fixed-bucket histograms behind one registry.
//
// Design rules, in priority order:
//   1. Nothing here may feed back into a decision: instruments are
//      write-only from the pipeline's point of view, so q and the selected
//      parities are byte-identical with metrics on or off.
//   2. Zero overhead when disabled: every hot path records through a
//      MetricsShard whose null-registry form compiles down to a pointer
//      test, and the hot loops themselves accumulate plain locals that are
//      folded once per scope (the same shard-then-merge idiom as
//      common/parallel.hpp).
//   3. Dependency-free: ced_obs uses the C++ standard library only, so
//      every other layer (core, lp, storage, bench, tools) can link it.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ced::obs {

/// Cumulative fixed-bucket histogram (Prometheus shape): `edges` are the
/// ascending inclusive upper bounds of the finite buckets and an implicit
/// +Inf bucket catches the rest, so `counts` has edges.size() + 1 entries.
struct Histogram {
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  double sum = 0.0;
  std::uint64_t total = 0;

  Histogram() = default;
  explicit Histogram(std::vector<double> bucket_edges)
      : edges(std::move(bucket_edges)), counts(edges.size() + 1, 0) {}

  void observe(double value);
  void merge(const Histogram& other);
};

/// Edges used when a value is observed under a name nobody defined:
/// a 1-2-5 decade ladder wide enough for both durations (seconds) and
/// small counts.
const std::vector<double>& default_histogram_edges();

/// Point-in-time copy of every instrument, keyed by name. Ordered maps so
/// exporters emit in a stable order (golden tests diff the output).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
};

/// Thread-safe sink for all metrics of one run. Cheap enough to mutate
/// directly for cold-path events (store reads, cascade fallbacks); hot
/// loops go through a MetricsShard instead so they take the lock once per
/// scope, not once per event.
class MetricsRegistry {
 public:
  /// Pre-declares `name` as a histogram with the given bucket edges.
  /// Idempotent; observations before the definition use default edges.
  void define_histogram(const std::string& name, std::vector<double> edges);

  void add(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  void observe(std::string_view name, double value);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  MetricsSnapshot data_;
};

/// Per-thread (or per-scope) accumulation buffer: add()/observe() touch
/// only private vectors, and everything folds into the registry in one
/// locked pass on flush() or destruction. A default-constructed or
/// null-registry shard makes every call a no-op, which is how instrumented
/// code keeps zero overhead when observability is off.
class MetricsShard {
 public:
  MetricsShard() = default;
  explicit MetricsShard(MetricsRegistry* registry) : reg_(registry) {}
  MetricsShard(const MetricsShard&) = delete;
  MetricsShard& operator=(const MetricsShard&) = delete;
  ~MetricsShard() { flush(); }

  bool enabled() const { return reg_ != nullptr; }

  void add(std::string_view name, std::uint64_t delta = 1);
  void observe(std::string_view name, double value);

  /// Folds the buffered values into the registry and clears the buffers.
  void flush();

 private:
  MetricsRegistry* reg_ = nullptr;
  // Linear vectors, not maps: a shard sees a handful of distinct names.
  std::vector<std::pair<std::string, std::uint64_t>> counts_;
  std::vector<std::pair<std::string, std::vector<double>>> samples_;
};

}  // namespace ced::obs
