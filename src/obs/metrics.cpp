#include "obs/metrics.hpp"

#include <algorithm>

namespace ced::obs {

void Histogram::observe(double value) {
  if (counts.size() != edges.size() + 1) counts.assign(edges.size() + 1, 0);
  // Edges are inclusive upper bounds (Prometheus `le` semantics).
  std::size_t b = 0;
  while (b < edges.size() && value > edges[b]) ++b;
  ++counts[b];
  sum += value;
  ++total;
}

void Histogram::merge(const Histogram& other) {
  if (edges.empty() && counts.empty()) {
    *this = other;
    return;
  }
  if (other.edges == edges && other.counts.size() == counts.size()) {
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
    sum += other.sum;
    total += other.total;
    return;
  }
  // Mismatched shapes (a redefinition raced an observation): keep the
  // receiver's buckets and fold the other side's mass into them via its
  // sum/total only — counts cannot be re-binned without the raw samples.
  sum += other.sum;
  total += other.total;
  if (!counts.empty()) counts.back() += other.total;
}

const std::vector<double>& default_histogram_edges() {
  static const std::vector<double> kEdges = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,  0.2,   0.5,
      1.0,   2.0,   5.0,   10.0, 20.0, 50.0, 100.0, 1000.0};
  return kEdges;
}

void MetricsRegistry::define_histogram(const std::string& name,
                                       std::vector<double> edges) {
  std::sort(edges.begin(), edges.end());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.histograms.find(name);
  if (it != data_.histograms.end()) return;  // first definition wins
  data_.histograms.emplace(name, Histogram(std::move(edges)));
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.counters[std::string(name)] += delta;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.gauges[std::string(name)] = value;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.histograms.find(std::string(name));
  if (it == data_.histograms.end()) {
    it = data_.histograms
             .emplace(std::string(name), Histogram(default_histogram_edges()))
             .first;
  }
  it->second.observe(value);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

void MetricsShard::add(std::string_view name, std::uint64_t delta) {
  if (!reg_) return;
  for (auto& [n, v] : counts_) {
    if (n == name) {
      v += delta;
      return;
    }
  }
  counts_.emplace_back(std::string(name), delta);
}

void MetricsShard::observe(std::string_view name, double value) {
  if (!reg_) return;
  for (auto& [n, v] : samples_) {
    if (n == name) {
      v.push_back(value);
      return;
    }
  }
  samples_.emplace_back(std::string(name), std::vector<double>{value});
}

void MetricsShard::flush() {
  if (!reg_) return;
  for (const auto& [n, v] : counts_) {
    if (v != 0) reg_->add(n, v);
  }
  for (const auto& [n, vs] : samples_) {
    for (double v : vs) reg_->observe(n, v);
  }
  counts_.clear();
  samples_.clear();
}

}  // namespace ced::obs
