#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace ced::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace ced::obs
