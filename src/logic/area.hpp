#pragma once

#include "logic/netlist.hpp"

namespace ced::logic {

/// A standard-cell area model in the spirit of the MCNC `mcnc.genlib`
/// library that SIS maps to. Areas are in normalized units (inverter = 1.0);
/// gates wider than max_fanin are costed as balanced trees of max_fanin
/// cells, mirroring what the synthesizer emits.
struct CellLibrary {
  double inv = 1.0;
  double buf = 1.0;
  double nand2 = 1.5;
  double nor2 = 1.5;
  double and2 = 2.0;
  double or2 = 2.0;
  double xor2 = 2.5;
  double xnor2 = 2.5;
  double dff = 4.5;
  /// Extra area per fan-in beyond 2 (wider cells up to max_fanin).
  double per_extra_fanin = 0.5;
  int max_fanin = 4;

  /// The default library used across the experiments.
  static const CellLibrary& mcnc();

  /// Area of one gate instance with `fanin` inputs (>= 1 for logic gates).
  double gate_area(GateType type, int fanin) const;
};

/// Report of cost metrics for a netlist.
struct AreaReport {
  std::size_t gates = 0;  ///< Logic gate count (excl. inputs/consts/bufs).
  double area = 0.0;      ///< Standard-cell area in library units.
};

/// Sums gate areas over the netlist; `extra_dffs` adds flip-flop area (the
/// netlist itself is purely combinational; registers live at its boundary).
AreaReport measure_area(const Netlist& n, const CellLibrary& lib,
                        std::size_t extra_dffs = 0);

}  // namespace ced::logic
