#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ced::logic {

/// Gate primitives of the target cell library.
enum class GateType : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
};

const char* gate_type_name(GateType t);

/// One gate instance. Fan-ins refer to earlier gate ids (the netlist is
/// topologically ordered by construction).
struct Gate {
  GateType type = GateType::kInput;
  std::vector<std::uint32_t> fanins;
};

/// A forced value on one net during evaluation, used for fault injection.
/// `value_word` is replicated across the 64 parallel patterns (all-zeros for
/// stuck-at-0, all-ones for stuck-at-1).
struct Injection {
  std::uint32_t net = 0;
  std::uint64_t value_word = 0;
};

/// A combinational gate-level netlist with named primary inputs/outputs.
///
/// Evaluation is 64-way pattern-parallel: each net carries a 64-bit word, bit
/// t of which is the net's value under pattern t. This is the workhorse of
/// the fault simulator.
class Netlist {
 public:
  /// Appends a primary input; returns its net id.
  std::uint32_t add_input(std::string name);
  /// Appends a constant net.
  std::uint32_t add_const(bool value);
  /// Appends a gate over existing nets; returns its net id.
  /// And/Or/Nand/Nor accept >= 1 fan-ins; Xor/Xnor >= 1; Not/Buf exactly 1.
  std::uint32_t add_gate(GateType type, std::vector<std::uint32_t> fanins);
  /// Declares an existing net as a primary output.
  void mark_output(std::uint32_t net, std::string name);

  std::size_t num_nets() const { return gates_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  const std::vector<std::uint32_t>& inputs() const { return inputs_; }
  const std::vector<std::uint32_t>& outputs() const { return outputs_; }
  const Gate& gate(std::uint32_t net) const { return gates_[net]; }
  const std::string& input_name(std::size_t i) const { return input_names_[i]; }
  const std::string& output_name(std::size_t i) const {
    return output_names_[i];
  }

  /// Number of logic gates (excludes inputs, constants and buffers).
  std::size_t gate_count() const;

  /// Evaluates all nets for 64 parallel input patterns.
  ///
  /// `input_words[i]` is the word for the i-th primary input (declaration
  /// order). `values` is resized to num_nets(); `values[net]` receives the
  /// word of each net. At most one injection is applied (nullptr = fault-free).
  void eval(std::span<const std::uint64_t> input_words,
            std::vector<std::uint64_t>& values,
            const Injection* injection = nullptr) const;

  /// Convenience single-pattern evaluation: bit i of `assignment` is input i.
  /// Returns one word whose bit o is output o (declaration order);
  /// requires num_outputs() <= 64.
  std::uint64_t eval_single(std::uint64_t assignment,
                            const Injection* injection = nullptr) const;

 private:
  std::vector<Gate> gates_;
  std::vector<std::uint32_t> inputs_;
  std::vector<std::string> input_names_;
  std::vector<std::uint32_t> outputs_;
  std::vector<std::string> output_names_;
};

}  // namespace ced::logic
