#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "logic/cover.hpp"
#include "logic/synth.hpp"

namespace ced::logic {

/// A factored Boolean expression: literals combined by AND/OR nodes.
/// Produced by algebraic (SIS-style "quick") factoring of a two-level
/// cover; synthesizing the tree yields multilevel logic that is usually
/// much smaller than the flat SOP.
struct FactorNode {
  enum class Kind { kConst, kLiteral, kAnd, kOr };

  Kind kind = Kind::kConst;
  bool value = false;    ///< kConst
  int var = 0;           ///< kLiteral
  bool positive = true;  ///< kLiteral
  std::vector<FactorNode> children;  ///< kAnd / kOr

  static FactorNode constant(bool v) {
    FactorNode n;
    n.kind = Kind::kConst;
    n.value = v;
    return n;
  }
  static FactorNode literal(int var, bool positive) {
    FactorNode n;
    n.kind = Kind::kLiteral;
    n.var = var;
    n.positive = positive;
    return n;
  }
};

/// Factors a cover by recursive common-cube extraction and division by the
/// most frequent literal (the classic "quick factor" recipe). The result
/// computes exactly the same function as the SOP.
FactorNode factor_cover(const Cover& cover);

/// Number of literal leaves of a factored form (the standard multilevel
/// cost estimate).
int factor_literal_count(const FactorNode& node);

/// Evaluates the factored form on a complete assignment (testing aid).
bool factor_evaluate(const FactorNode& node, std::uint64_t assignment);

/// Synthesizes the factored form onto a netlist; `var_nets[i]` carries
/// variable i. Returns the output net.
std::uint32_t synthesize_factor(SynthContext& ctx, const FactorNode& node,
                                std::span<const std::uint32_t> var_nets);

}  // namespace ced::logic
