#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ced::logic {

/// A product term (cube) over at most 64 Boolean variables.
///
/// Each variable is either absent (don't-care in the product) or appears as a
/// positive/negative literal. The representation is a pair of masks:
///   care bit i = 1  -> variable i appears as a literal,
///   val  bit i      -> polarity of that literal (meaningful only when care=1).
///
/// A minterm (complete variable assignment) is a `std::uint64_t` whose bit i
/// holds the value of variable i. The 64-variable limit comfortably covers
/// every function handled by this library (FSM next-state/output logic over
/// primary inputs + state bits).
struct Cube {
  std::uint64_t care = 0;
  std::uint64_t val = 0;

  /// The universal cube (tautology: no literals).
  static Cube universe() { return Cube{}; }

  /// Cube equal to a single minterm over `num_vars` variables.
  static Cube minterm(std::uint64_t assignment, int num_vars);

  /// Number of literals in the product.
  int num_literals() const;

  /// True if the cube contains the given complete assignment.
  bool contains(std::uint64_t assignment) const {
    return ((assignment ^ val) & care) == 0;
  }

  /// True if `other`'s cube (as a set of minterms) is a subset of this one.
  bool covers(const Cube& other) const {
    // Every literal of *this must be present in `other` with equal polarity.
    return (care & ~other.care) == 0 && ((val ^ other.val) & care) == 0;
  }

  /// True if the two cubes share at least one minterm.
  bool intersects(const Cube& other) const {
    return ((val ^ other.val) & care & other.care) == 0;
  }

  /// Intersection of two cubes; only valid when intersects() is true.
  Cube intersection(const Cube& other) const {
    return Cube{care | other.care, (val & care) | (other.val & other.care)};
  }

  /// Adds/replaces a literal on variable `var` with the given polarity.
  Cube with_literal(int var, bool positive) const;

  /// Removes the literal (if any) on variable `var`.
  Cube without_literal(int var) const;

  /// Number of minterms of the cube when interpreted over `num_vars` vars.
  std::uint64_t num_minterms(int num_vars) const;

  /// PLA-style text: one char per variable, '0'/'1'/'-', variable 0 first.
  std::string to_string(int num_vars) const;

  bool operator==(const Cube&) const = default;
};

/// Calls `fn(minterm)` for every complete assignment contained in the cube.
/// `fn` may return void; enumeration is in increasing minterm order of the
/// free variables. Intended for cubes over <= ~20 variables.
template <typename Fn>
void for_each_minterm(const Cube& c, int num_vars, Fn&& fn) {
  const std::uint64_t var_mask =
      num_vars >= 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << num_vars) - 1);
  const std::uint64_t free_mask = ~c.care & var_mask;
  const std::uint64_t base = c.val & c.care;
  // Standard subset-enumeration trick over the free variable mask.
  std::uint64_t sub = 0;
  while (true) {
    fn(base | sub);
    if (sub == free_mask) break;
    sub = (sub - free_mask) & free_mask;
  }
}

struct CubeHash {
  std::size_t operator()(const Cube& c) const {
    std::uint64_t h = c.care * 0x9e3779b97f4a7c15ull;
    h ^= c.val + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace ced::logic
