#pragma once

#include <cstdint>

#include "logic/bitvec.hpp"
#include "logic/cover.hpp"

namespace ced::logic {

/// Explicit truth table of a single-output Boolean function over up to
/// kMaxVars variables, stored as a minterm bit set (bit m = f(m)).
class TruthTable {
 public:
  static constexpr int kMaxVars = 22;

  TruthTable() = default;
  /// All-zero function of `num_vars` inputs.
  explicit TruthTable(int num_vars);

  static TruthTable from_cover(const Cover& c);

  int num_vars() const { return num_vars_; }
  std::uint64_t num_rows() const { return std::uint64_t{1} << num_vars_; }

  bool get(std::uint64_t assignment) const { return bits_.test(assignment); }
  void set(std::uint64_t assignment, bool v = true) {
    bits_.set(assignment, v);
  }

  const BitVec& bits() const { return bits_; }
  BitVec& bits() { return bits_; }

  bool operator==(const TruthTable&) const = default;

 private:
  int num_vars_ = 0;
  BitVec bits_;
};

/// An incompletely specified single-output function: ON-set and DC-set as
/// minterm bit sets of size 2^num_vars (the OFF-set is the complement of
/// their union). This is the interchange format consumed by the minimizers.
struct SopSpec {
  int num_vars = 0;
  BitVec on;
  BitVec dc;

  explicit SopSpec(int vars)
      : num_vars(vars),
        on(std::size_t{1} << vars),
        dc(std::size_t{1} << vars) {}

  BitVec off() const {
    BitVec o = on;
    o |= dc;
    return ~o;
  }
};

/// True if `cover` is a valid implementation of `spec`:
/// it covers every ON minterm and touches no OFF minterm.
bool cover_implements(const Cover& cover, const SopSpec& spec);

}  // namespace ced::logic
