#include "logic/netlist.hpp"

#include <stdexcept>

namespace ced::logic {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kInput: return "input";
    case GateType::kConst0: return "const0";
    case GateType::kConst1: return "const1";
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kOr: return "or";
    case GateType::kNand: return "nand";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
  }
  return "?";
}

std::uint32_t Netlist::add_input(std::string name) {
  const auto id = static_cast<std::uint32_t>(gates_.size());
  gates_.push_back(Gate{GateType::kInput, {}});
  inputs_.push_back(id);
  input_names_.push_back(std::move(name));
  return id;
}

std::uint32_t Netlist::add_const(bool value) {
  const auto id = static_cast<std::uint32_t>(gates_.size());
  gates_.push_back(Gate{value ? GateType::kConst1 : GateType::kConst0, {}});
  return id;
}

std::uint32_t Netlist::add_gate(GateType type,
                                std::vector<std::uint32_t> fanins) {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      throw std::invalid_argument("use add_input/add_const");
    case GateType::kBuf:
    case GateType::kNot:
      if (fanins.size() != 1) {
        throw std::invalid_argument("unary gate needs exactly one fan-in");
      }
      break;
    default:
      if (fanins.empty()) {
        throw std::invalid_argument("gate needs at least one fan-in");
      }
      break;
  }
  const auto id = static_cast<std::uint32_t>(gates_.size());
  for (auto f : fanins) {
    if (f >= id) throw std::invalid_argument("fan-in must be an earlier net");
  }
  gates_.push_back(Gate{type, std::move(fanins)});
  return id;
}

void Netlist::mark_output(std::uint32_t net, std::string name) {
  if (net >= gates_.size()) throw std::invalid_argument("unknown net");
  outputs_.push_back(net);
  output_names_.push_back(std::move(name));
}

std::size_t Netlist::gate_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    switch (g.type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
      case GateType::kBuf:
        break;
      default:
        ++n;
    }
  }
  return n;
}

void Netlist::eval(std::span<const std::uint64_t> input_words,
                   std::vector<std::uint64_t>& values,
                   const Injection* injection) const {
  if (input_words.size() != inputs_.size()) {
    throw std::invalid_argument("wrong number of input words");
  }
  values.assign(gates_.size(), 0);
  std::size_t next_input = 0;
  for (std::uint32_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    std::uint64_t v = 0;
    switch (g.type) {
      case GateType::kInput:
        v = input_words[next_input++];
        break;
      case GateType::kConst0:
        v = 0;
        break;
      case GateType::kConst1:
        v = ~std::uint64_t{0};
        break;
      case GateType::kBuf:
        v = values[g.fanins[0]];
        break;
      case GateType::kNot:
        v = ~values[g.fanins[0]];
        break;
      case GateType::kAnd:
      case GateType::kNand:
        v = ~std::uint64_t{0};
        for (auto f : g.fanins) v &= values[f];
        if (g.type == GateType::kNand) v = ~v;
        break;
      case GateType::kOr:
      case GateType::kNor:
        v = 0;
        for (auto f : g.fanins) v |= values[f];
        if (g.type == GateType::kNor) v = ~v;
        break;
      case GateType::kXor:
      case GateType::kXnor:
        v = 0;
        for (auto f : g.fanins) v ^= values[f];
        if (g.type == GateType::kXnor) v = ~v;
        break;
    }
    if (injection != nullptr && injection->net == id) {
      v = injection->value_word;
    }
    values[id] = v;
  }
}

std::uint64_t Netlist::eval_single(std::uint64_t assignment,
                                   const Injection* injection) const {
  if (outputs_.size() > 64) {
    throw std::logic_error("eval_single supports at most 64 outputs");
  }
  thread_local std::vector<std::uint64_t> values;
  thread_local std::vector<std::uint64_t> input_words;
  input_words.assign(inputs_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    input_words[i] = (assignment >> i) & 1 ? ~std::uint64_t{0} : 0;
  }
  eval(input_words, values, injection);
  std::uint64_t out = 0;
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    out |= (values[outputs_[o]] & 1) << o;
  }
  return out;
}

}  // namespace ced::logic
