#pragma once

#include <string>
#include <string_view>

#include "logic/netlist.hpp"

namespace ced::logic {

/// Serializes a combinational netlist as BLIF (the Berkeley Logic
/// Interchange Format consumed by SIS/ABC): one `.names` block per gate.
/// Net names are `n<id>`; primary inputs/outputs keep their netlist names.
std::string write_blif(const Netlist& n, const std::string& model_name);

/// Parses a combinational BLIF model back into a netlist. Supports
/// `.model`, `.inputs`, `.outputs`, `.names` (multiple single-output SOP
/// rows, `0/1/-` input plane, `1` or `0` output plane) and `.end`;
/// latches and subcircuits are rejected. Throws std::runtime_error with a
/// line-numbered message on malformed input.
Netlist read_blif(std::string_view text);

/// Serializes the netlist as a structural Verilog module (assign-style,
/// synthesizable). Intended for taking results into conventional flows.
std::string write_verilog(const Netlist& n, const std::string& module_name);

}  // namespace ced::logic
