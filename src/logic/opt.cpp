#include "logic/opt.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace ced::logic {
namespace {

/// What an old net maps to in the rewritten netlist: a constant or a
/// (possibly complemented) new net.
struct Repl {
  bool is_const = false;
  bool const_val = false;
  std::uint32_t net = 0;
  bool neg = false;

  static Repl constant(bool v) {
    Repl r;
    r.is_const = true;
    r.const_val = v;
    return r;
  }
  static Repl wire(std::uint32_t n, bool neg = false) {
    Repl r;
    r.net = n;
    r.neg = neg;
    return r;
  }
  Repl negated() const {
    Repl r = *this;
    if (r.is_const) {
      r.const_val = !r.const_val;
    } else {
      r.neg = !r.neg;
    }
    return r;
  }
};

class Rewriter {
 public:
  Rewriter(const Netlist& src, const OptimizeOptions& opts,
           OptimizeStats* stats)
      : src_(src), opts_(opts), stats_(stats) {}

  Netlist run() {
    mark_live();
    repl_.resize(src_.num_nets());
    std::size_t next_input = 0;
    for (std::uint32_t id = 0; id < src_.num_nets(); ++id) {
      const Gate& g = src_.gate(id);
      if (g.type == GateType::kInput) {
        // Inputs are always kept so the interface stays stable.
        repl_[id] = Repl::wire(out_.add_input(src_.input_name(next_input)));
        ++next_input;
        continue;
      }
      if (!live_[id]) {
        bump(stats_ ? &stats_->swept : nullptr);
        continue;
      }
      repl_[id] = rewrite(g);
    }
    for (std::size_t o = 0; o < src_.num_outputs(); ++o) {
      out_.mark_output(materialize(repl_[src_.outputs()[o]]),
                       src_.output_name(o));
    }
    if (stats_) {
      stats_->gates_before = src_.gate_count();
      stats_->gates_after = out_.gate_count();
    }
    return std::move(out_);
  }

 private:
  static void bump(std::size_t* counter) {
    if (counter) ++*counter;
  }

  void mark_live() {
    live_.assign(src_.num_nets(), !opts_.sweep_dead);
    std::vector<std::uint32_t> stack(src_.outputs());
    for (auto o : stack) live_[o] = true;
    while (!stack.empty()) {
      const std::uint32_t id = stack.back();
      stack.pop_back();
      for (auto f : src_.gate(id).fanins) {
        if (!live_[f]) {
          live_[f] = true;
          stack.push_back(f);
        }
      }
    }
  }

  /// Returns the new net carrying a Repl's value, creating constants and
  /// shared inverters as needed.
  std::uint32_t materialize(const Repl& r) {
    if (r.is_const) {
      int& c = const_net_[r.const_val ? 1 : 0];
      if (c < 0) c = static_cast<int>(out_.add_const(r.const_val));
      return static_cast<std::uint32_t>(c);
    }
    if (!r.neg) return r.net;
    return strash(GateType::kNot, {r.net});
  }

  /// Creates (or reuses) a gate via structural hashing.
  std::uint32_t strash(GateType type, std::vector<std::uint32_t> fanins) {
    if (type != GateType::kNot) {
      std::sort(fanins.begin(), fanins.end());
    }
    const auto key = std::make_pair(type, fanins);
    if (opts_.structural_hash) {
      auto it = strash_.find(key);
      if (it != strash_.end()) {
        bump(stats_ ? &stats_->merged : nullptr);
        return it->second;
      }
    }
    const std::uint32_t id = out_.add_gate(type, std::move(fanins));
    if (opts_.structural_hash) strash_.emplace(key, id);
    return id;
  }

  Repl rewrite(const Gate& g) {
    switch (g.type) {
      case GateType::kConst0:
        return Repl::constant(false);
      case GateType::kConst1:
        return Repl::constant(true);
      case GateType::kBuf:
        bump(stats_ ? &stats_->folded : nullptr);
        return repl_[g.fanins[0]];
      case GateType::kNot:
        if (opts_.collapse_unary) {
          bump(stats_ ? &stats_->folded : nullptr);
          return repl_[g.fanins[0]].negated();
        }
        return Repl::wire(strash(GateType::kNot,
                                 {materialize(repl_[g.fanins[0]])}));
      case GateType::kAnd:
      case GateType::kNand:
        return rewrite_andor(g, /*is_and=*/true,
                             g.type == GateType::kNand);
      case GateType::kOr:
      case GateType::kNor:
        return rewrite_andor(g, /*is_and=*/false, g.type == GateType::kNor);
      case GateType::kXor:
      case GateType::kXnor:
        return rewrite_xor(g, g.type == GateType::kXnor);
      default:
        break;
    }
    // Unreachable (inputs handled by the caller).
    return Repl::constant(false);
  }

  Repl rewrite_andor(const Gate& g, bool is_and, bool negate_out) {
    // Collect literal fan-ins; fold constants and duplicates.
    std::vector<std::pair<std::uint32_t, bool>> lits;  // (net, neg)
    for (auto f : g.fanins) {
      const Repl& r = repl_[f];
      if (r.is_const) {
        if (!opts_.fold_constants) {
          lits.emplace_back(materialize(r), false);
          continue;
        }
        if (r.const_val == is_and) continue;  // identity element
        // Dominating constant.
        bump(stats_ ? &stats_->folded : nullptr);
        return Repl::constant(negate_out ? is_and : !is_and);
      }
      lits.emplace_back(r.net, r.neg);
    }
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    // x AND NOT x = 0; x OR NOT x = 1.
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
      if (lits[i].first == lits[i + 1].first &&
          lits[i].second != lits[i + 1].second) {
        bump(stats_ ? &stats_->folded : nullptr);
        return Repl::constant(negate_out ? is_and : !is_and);
      }
    }
    if (lits.empty()) {
      return Repl::constant(negate_out ? !is_and : is_and);
    }
    if (lits.size() == 1) {
      bump(stats_ ? &stats_->folded : nullptr);
      Repl r = Repl::wire(lits[0].first, lits[0].second);
      return negate_out ? r.negated() : r;
    }
    std::vector<std::uint32_t> nets;
    nets.reserve(lits.size());
    for (const auto& [net, neg] : lits) {
      nets.push_back(neg ? strash(GateType::kNot, {net}) : net);
    }
    GateType type;
    if (is_and) {
      type = negate_out ? GateType::kNand : GateType::kAnd;
    } else {
      type = negate_out ? GateType::kNor : GateType::kOr;
    }
    return Repl::wire(strash(type, std::move(nets)));
  }

  Repl rewrite_xor(const Gate& g, bool negate_out) {
    bool flip = negate_out;
    // Parity of each (net) with complemented inputs folded into `flip`;
    // pairs of equal nets cancel.
    std::map<std::uint32_t, int> count;
    for (auto f : g.fanins) {
      const Repl& r = repl_[f];
      if (r.is_const) {
        flip ^= r.const_val;
        continue;
      }
      flip ^= r.neg;
      ++count[r.net];
    }
    std::vector<std::uint32_t> nets;
    for (const auto& [net, c] : count) {
      if (c & 1) nets.push_back(net);
    }
    if (nets.empty()) {
      bump(stats_ ? &stats_->folded : nullptr);
      return Repl::constant(flip);
    }
    if (nets.size() == 1) {
      bump(stats_ ? &stats_->folded : nullptr);
      return Repl::wire(nets[0], flip);
    }
    const GateType type = flip ? GateType::kXnor : GateType::kXor;
    return Repl::wire(strash(type, std::move(nets)));
  }

  const Netlist& src_;
  const OptimizeOptions& opts_;
  OptimizeStats* stats_;
  Netlist out_;
  std::vector<Repl> repl_;
  std::vector<bool> live_;
  std::map<std::pair<GateType, std::vector<std::uint32_t>>, std::uint32_t>
      strash_;
  int const_net_[2] = {-1, -1};
};

}  // namespace

Netlist optimize_netlist(const Netlist& n, const OptimizeOptions& opts,
                         OptimizeStats* stats) {
  if (stats) *stats = OptimizeStats{};
  Netlist out = Rewriter(n, opts, stats).run();
  // Folding can orphan logic whose liveness was decided before the fold;
  // iterate until the gate count stabilizes (usually one extra pass).
  for (int pass = 0; pass < 4; ++pass) {
    OptimizeStats extra;
    Netlist next = Rewriter(out, opts, &extra).run();
    if (next.gate_count() == out.gate_count()) break;
    if (stats) {
      stats->folded += extra.folded;
      stats->merged += extra.merged;
      stats->swept += extra.swept;
      stats->gates_after = next.gate_count();
    }
    out = std::move(next);
  }
  return out;
}

}  // namespace ced::logic
