#include "logic/truth_table.hpp"

#include <stdexcept>

namespace ced::logic {

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > kMaxVars) {
    throw std::invalid_argument("TruthTable variable count out of range");
  }
  bits_ = BitVec(std::size_t{1} << num_vars);
}

TruthTable TruthTable::from_cover(const Cover& c) {
  TruthTable t(c.num_vars());
  for (const auto& cube : c.cubes()) {
    for_each_minterm(cube, c.num_vars(),
                     [&](std::uint64_t m) { t.bits_.set(m); });
  }
  return t;
}

bool cover_implements(const Cover& cover, const SopSpec& spec) {
  if (cover.num_vars() != spec.num_vars) return false;
  // No cube may touch the OFF-set.
  const BitVec off = spec.off();
  BitVec covered(std::size_t{1} << spec.num_vars);
  for (const auto& cube : cover.cubes()) {
    bool bad = false;
    for_each_minterm(cube, spec.num_vars, [&](std::uint64_t m) {
      if (off.test(m)) bad = true;
      covered.set(m);
    });
    if (bad) return false;
  }
  return spec.on.is_subset_of(covered);
}

}  // namespace ced::logic
