#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "logic/cover.hpp"
#include "logic/netlist.hpp"

namespace ced::logic {

/// Options for structural synthesis.
struct SynthOptions {
  /// Maximum fan-in of any emitted gate; wider functions become trees.
  int max_fanin = 4;
};

/// Incremental builder of gate structures on a netlist with literal sharing.
///
/// Inverters and constants are cached so multiple SOP outputs synthesized
/// through the same context share complemented literals, as a multi-output
/// two-level mapper would.
class SynthContext {
 public:
  explicit SynthContext(Netlist& nl, SynthOptions opts = {})
      : nl_(nl), opts_(opts) {}

  Netlist& netlist() { return nl_; }
  const SynthOptions& options() const { return opts_; }

  /// Shared constant net.
  std::uint32_t constant(bool v);
  /// Shared inverter of `net`.
  std::uint32_t inverted(std::uint32_t net);

  /// Fan-in-bounded balanced gate trees. Empty input yields the tree's
  /// identity element (AND -> 1, OR/XOR -> 0); single input passes through.
  std::uint32_t and_tree(std::vector<std::uint32_t> nets);
  std::uint32_t or_tree(std::vector<std::uint32_t> nets);
  std::uint32_t xor_tree(std::vector<std::uint32_t> nets);

  /// Synthesizes a two-level SOP: `var_nets[i]` is the net carrying cube
  /// variable i. Returns the output net.
  std::uint32_t sop(const Cover& cover,
                    std::span<const std::uint32_t> var_nets);

  /// Inequality comparator: OR of bitwise XOR of two equal-length buses.
  /// Output is 1 iff the buses differ.
  std::uint32_t comparator(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b);

 private:
  std::uint32_t tree(GateType type, std::vector<std::uint32_t> nets,
                     bool empty_value);

  Netlist& nl_;
  SynthOptions opts_;
  std::unordered_map<std::uint32_t, std::uint32_t> inverter_cache_;
  std::int64_t const_net_[2] = {-1, -1};
};

}  // namespace ced::logic
