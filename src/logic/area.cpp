#include "logic/area.hpp"

#include <stdexcept>

namespace ced::logic {

const CellLibrary& CellLibrary::mcnc() {
  static const CellLibrary lib{};
  return lib;
}

double CellLibrary::gate_area(GateType type, int fanin) const {
  if (fanin > max_fanin) {
    throw std::invalid_argument("gate wider than library max fan-in");
  }
  const double extra = per_extra_fanin * static_cast<double>(fanin > 2 ? fanin - 2 : 0);
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0.0;
    case GateType::kBuf:
      return buf;
    case GateType::kNot:
      return inv;
    case GateType::kAnd:
      return fanin == 1 ? buf : and2 + extra;
    case GateType::kOr:
      return fanin == 1 ? buf : or2 + extra;
    case GateType::kNand:
      return fanin == 1 ? inv : nand2 + extra;
    case GateType::kNor:
      return fanin == 1 ? inv : nor2 + extra;
    case GateType::kXor:
      return fanin == 1 ? buf : xor2 + extra;
    case GateType::kXnor:
      return fanin == 1 ? inv : xnor2 + extra;
  }
  return 0.0;
}

AreaReport measure_area(const Netlist& n, const CellLibrary& lib,
                        std::size_t extra_dffs) {
  AreaReport r;
  r.gates = n.gate_count();
  for (std::uint32_t id = 0; id < n.num_nets(); ++id) {
    const Gate& g = n.gate(id);
    r.area += lib.gate_area(g.type, static_cast<int>(g.fanins.size()));
  }
  r.area += lib.dff * static_cast<double>(extra_dffs);
  return r;
}

}  // namespace ced::logic
