#include "logic/synth.hpp"

#include <deque>
#include <stdexcept>

namespace ced::logic {

std::uint32_t SynthContext::constant(bool v) {
  const int idx = v ? 1 : 0;
  if (const_net_[idx] < 0) {
    const_net_[idx] = static_cast<std::int64_t>(nl_.add_const(v));
  }
  return static_cast<std::uint32_t>(const_net_[idx]);
}

std::uint32_t SynthContext::inverted(std::uint32_t net) {
  auto it = inverter_cache_.find(net);
  if (it != inverter_cache_.end()) return it->second;
  const std::uint32_t inv = nl_.add_gate(GateType::kNot, {net});
  inverter_cache_.emplace(net, inv);
  return inv;
}

std::uint32_t SynthContext::tree(GateType type,
                                 std::vector<std::uint32_t> nets,
                                 bool empty_value) {
  if (nets.empty()) return constant(empty_value);
  std::deque<std::uint32_t> q(nets.begin(), nets.end());
  while (q.size() > 1) {
    std::vector<std::uint32_t> group;
    const int width = opts_.max_fanin;
    for (int i = 0; i < width && !q.empty(); ++i) {
      group.push_back(q.front());
      q.pop_front();
    }
    q.push_back(nl_.add_gate(type, std::move(group)));
  }
  return q.front();
}

std::uint32_t SynthContext::and_tree(std::vector<std::uint32_t> nets) {
  return tree(GateType::kAnd, std::move(nets), true);
}

std::uint32_t SynthContext::or_tree(std::vector<std::uint32_t> nets) {
  return tree(GateType::kOr, std::move(nets), false);
}

std::uint32_t SynthContext::xor_tree(std::vector<std::uint32_t> nets) {
  return tree(GateType::kXor, std::move(nets), false);
}

std::uint32_t SynthContext::sop(const Cover& cover,
                                std::span<const std::uint32_t> var_nets) {
  if (cover.num_vars() > static_cast<int>(var_nets.size())) {
    throw std::invalid_argument("sop: not enough variable nets");
  }
  std::vector<std::uint32_t> products;
  products.reserve(cover.size());
  for (const auto& cube : cover.cubes()) {
    std::vector<std::uint32_t> lits;
    for (int v = 0; v < cover.num_vars(); ++v) {
      const std::uint64_t m = std::uint64_t{1} << v;
      if (!(cube.care & m)) continue;
      lits.push_back((cube.val & m) ? var_nets[v] : inverted(var_nets[v]));
    }
    products.push_back(and_tree(std::move(lits)));
  }
  return or_tree(std::move(products));
}

std::uint32_t SynthContext::comparator(std::span<const std::uint32_t> a,
                                       std::span<const std::uint32_t> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("comparator: bus width mismatch");
  }
  std::vector<std::uint32_t> diffs;
  diffs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    diffs.push_back(nl_.add_gate(GateType::kXor, {a[i], b[i]}));
  }
  return or_tree(std::move(diffs));
}

}  // namespace ced::logic
