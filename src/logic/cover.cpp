#include "logic/cover.hpp"

namespace ced::logic {

void Cover::remove_contained_cubes() {
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool contained = false;
    for (std::size_t j = 0; j < cubes_.size() && !contained; ++j) {
      if (i == j) continue;
      if (cubes_[j].covers(cubes_[i])) {
        // Break ties between identical cubes by index so exactly one is kept.
        if (cubes_[i].covers(cubes_[j]) && i < j) continue;
        contained = true;
      }
    }
    if (!contained) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
}

std::string Cover::to_string() const {
  std::string s;
  for (const auto& c : cubes_) {
    s += c.to_string(num_vars_);
    s += '\n';
  }
  return s;
}

}  // namespace ced::logic
