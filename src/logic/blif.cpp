#include "logic/blif.hpp"

#include <bit>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "logic/cover.hpp"
#include "logic/synth.hpp"

namespace ced::logic {
namespace {

std::string net_name(std::uint32_t id) { return "n" + std::to_string(id); }

void write_names_block(std::ostringstream& out, const Gate& g,
                       std::uint32_t id) {
  const auto in = [&](std::size_t i) { return net_name(g.fanins[i]); };
  const std::size_t k = g.fanins.size();
  out << ".names";
  for (std::size_t i = 0; i < k; ++i) out << ' ' << in(i);
  out << ' ' << net_name(id) << '\n';
  switch (g.type) {
    case GateType::kConst0:
      break;  // empty cover = constant 0
    case GateType::kConst1:
      out << "1\n";
      break;
    case GateType::kBuf:
      out << "1 1\n";
      break;
    case GateType::kNot:
      out << "0 1\n";
      break;
    case GateType::kAnd:
      out << std::string(k, '1') << " 1\n";
      break;
    case GateType::kNand:
      out << std::string(k, '1') << " 0\n";
      break;
    case GateType::kOr:
      for (std::size_t i = 0; i < k; ++i) {
        std::string row(k, '-');
        row[i] = '1';
        out << row << " 1\n";
      }
      break;
    case GateType::kNor:
      out << std::string(k, '0') << " 1\n";
      break;
    case GateType::kXor:
    case GateType::kXnor: {
      const bool want = g.type == GateType::kXor;
      for (std::uint64_t m = 0; m < (std::uint64_t{1} << k); ++m) {
        if ((std::popcount(m) % 2 == 1) != want) continue;
        std::string row(k, '0');
        for (std::size_t i = 0; i < k; ++i) {
          if ((m >> i) & 1) row[i] = '1';
        }
        out << row << " 1\n";
      }
      break;
    }
    case GateType::kInput:
      break;
  }
}

}  // namespace

std::string write_blif(const Netlist& n, const std::string& model_name) {
  std::ostringstream out;
  out << ".model " << model_name << '\n';
  out << ".inputs";
  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    out << ' ' << n.input_name(i);
  }
  out << "\n.outputs";
  for (std::size_t o = 0; o < n.num_outputs(); ++o) {
    out << ' ' << n.output_name(o);
  }
  out << '\n';

  // Alias each primary input's internal net to its name.
  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    out << ".names " << n.input_name(i) << ' ' << net_name(n.inputs()[i])
        << "\n1 1\n";
  }
  for (std::uint32_t id = 0; id < n.num_nets(); ++id) {
    if (n.gate(id).type == GateType::kInput) continue;
    write_names_block(out, n.gate(id), id);
  }
  for (std::size_t o = 0; o < n.num_outputs(); ++o) {
    out << ".names " << net_name(n.outputs()[o]) << ' ' << n.output_name(o)
        << "\n1 1\n";
  }
  out << ".end\n";
  return out.str();
}

namespace {

struct NamesBlock {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::string> rows;  // input plane + output char (space-split)
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("blif parse error (line " + std::to_string(line) +
                           "): " + msg);
}

}  // namespace

Netlist read_blif(std::string_view text) {
  // --- Tokenize into logical lines (honoring '\' continuations).
  std::vector<std::pair<int, std::string>> lines;
  {
    std::istringstream in{std::string(text)};
    std::string raw;
    int no = 0;
    std::string pending;
    int pending_no = 0;
    while (std::getline(in, raw)) {
      ++no;
      if (auto pos = raw.find('#'); pos != std::string::npos) raw.erase(pos);
      while (!raw.empty() && (raw.back() == '\r' || raw.back() == ' ')) {
        raw.pop_back();
      }
      if (!raw.empty() && raw.back() == '\\') {
        raw.pop_back();
        if (pending.empty()) pending_no = no;
        pending += raw + " ";
        continue;
      }
      if (!pending.empty()) {
        lines.emplace_back(pending_no, pending + raw);
        pending.clear();
      } else if (!raw.empty()) {
        lines.emplace_back(no, raw);
      }
    }
  }

  std::vector<std::string> input_names, output_names;
  std::map<std::string, NamesBlock> blocks;
  bool saw_model = false;

  for (std::size_t li = 0; li < lines.size(); ++li) {
    auto [no, line] = lines[li];
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == ".model") {
      saw_model = true;
    } else if (tok == ".inputs") {
      std::string name;
      while (ls >> name) input_names.push_back(name);
    } else if (tok == ".outputs") {
      std::string name;
      while (ls >> name) output_names.push_back(name);
    } else if (tok == ".names") {
      NamesBlock b;
      b.line = no;
      std::string name;
      std::vector<std::string> sig;
      while (ls >> name) sig.push_back(name);
      if (sig.empty()) fail(no, ".names needs at least an output");
      b.output = sig.back();
      sig.pop_back();
      b.inputs = std::move(sig);
      // Consume row lines.
      while (li + 1 < lines.size() && lines[li + 1].second[0] != '.') {
        b.rows.push_back(lines[++li].second);
      }
      if (blocks.count(b.output)) fail(no, "net driven twice: " + b.output);
      blocks.emplace(b.output, std::move(b));
    } else if (tok == ".end") {
      break;
    } else if (tok == ".latch" || tok == ".subckt" || tok == ".gate") {
      fail(no, "unsupported construct: " + tok);
    } else if (!tok.empty() && tok[0] == '.') {
      fail(no, "unknown directive: " + tok);
    } else {
      fail(no, "row outside .names block");
    }
  }
  if (!saw_model) throw std::runtime_error("blif: missing .model");

  Netlist out;
  SynthContext ctx(out);
  std::map<std::string, std::uint32_t> nets;
  for (const auto& name : input_names) {
    nets.emplace(name, out.add_input(name));
  }

  // Recursive elaboration with cycle detection.
  std::map<std::string, int> visiting;  // 1 = on stack
  std::function<std::uint32_t(const std::string&)> elaborate =
      [&](const std::string& name) -> std::uint32_t {
    auto it = nets.find(name);
    if (it != nets.end()) return it->second;
    auto bit = blocks.find(name);
    if (bit == blocks.end()) {
      throw std::runtime_error("blif: undriven net: " + name);
    }
    if (visiting[name]) {
      throw std::runtime_error("blif: combinational cycle at " + name);
    }
    visiting[name] = 1;
    const NamesBlock& b = bit->second;
    std::vector<std::uint32_t> fan;
    fan.reserve(b.inputs.size());
    for (const auto& in_name : b.inputs) fan.push_back(elaborate(in_name));

    // Build the SOP cover from the rows.
    Cover cover(static_cast<int>(b.inputs.size()));
    bool out_plane_one = true;
    bool first = true;
    for (const auto& row : b.rows) {
      std::istringstream rs(row);
      std::string plane, oc;
      if (b.inputs.empty()) {
        rs >> oc;  // constant block: row is just the output value
      } else {
        rs >> plane >> oc;
      }
      if (oc != "0" && oc != "1") fail(b.line, "bad row in " + name);
      const bool one = oc == "1";
      if (first) {
        out_plane_one = one;
        first = false;
      } else if (one != out_plane_one) {
        fail(b.line, "mixed output planes in " + name);
      }
      if (plane.size() != b.inputs.size()) {
        fail(b.line, "row width mismatch in " + name);
      }
      Cube c;
      for (std::size_t i = 0; i < plane.size(); ++i) {
        if (plane[i] == '1') {
          c = c.with_literal(static_cast<int>(i), true);
        } else if (plane[i] == '0') {
          c = c.with_literal(static_cast<int>(i), false);
        } else if (plane[i] != '-') {
          fail(b.line, "bad plane character in " + name);
        }
      }
      cover.add(c);
    }

    std::uint32_t net;
    if (b.rows.empty()) {
      net = ctx.constant(false);
    } else {
      net = ctx.sop(cover, fan);
      if (!out_plane_one) net = ctx.inverted(net);
    }
    visiting[name] = 0;
    nets.emplace(name, net);
    return net;
  };

  for (const auto& name : output_names) {
    out.mark_output(elaborate(name), name);
  }
  return out;
}

std::string write_verilog(const Netlist& n, const std::string& module_name) {
  std::ostringstream out;
  out << "module " << module_name << "(";
  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    out << n.input_name(i) << ", ";
  }
  for (std::size_t o = 0; o < n.num_outputs(); ++o) {
    out << n.output_name(o) << (o + 1 < n.num_outputs() ? ", " : "");
  }
  out << ");\n";
  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    out << "  input " << n.input_name(i) << ";\n";
  }
  for (std::size_t o = 0; o < n.num_outputs(); ++o) {
    out << "  output " << n.output_name(o) << ";\n";
  }

  auto ref = [&](std::uint32_t id) { return net_name(id); };
  for (std::uint32_t id = 0; id < n.num_nets(); ++id) {
    out << "  wire " << ref(id) << ";\n";
  }
  std::size_t next_input = 0;
  for (std::uint32_t id = 0; id < n.num_nets(); ++id) {
    const Gate& g = n.gate(id);
    out << "  assign " << ref(id) << " = ";
    auto join = [&](const char* op, bool negate) {
      if (negate) out << "~(";
      for (std::size_t i = 0; i < g.fanins.size(); ++i) {
        out << ref(g.fanins[i]);
        if (i + 1 < g.fanins.size()) out << ' ' << op << ' ';
      }
      if (negate) out << ')';
    };
    switch (g.type) {
      case GateType::kInput:
        out << n.input_name(next_input++);
        break;
      case GateType::kConst0:
        out << "1'b0";
        break;
      case GateType::kConst1:
        out << "1'b1";
        break;
      case GateType::kBuf:
        out << ref(g.fanins[0]);
        break;
      case GateType::kNot:
        out << '~' << ref(g.fanins[0]);
        break;
      case GateType::kAnd:
        join("&", false);
        break;
      case GateType::kNand:
        join("&", true);
        break;
      case GateType::kOr:
        join("|", false);
        break;
      case GateType::kNor:
        join("|", true);
        break;
      case GateType::kXor:
        join("^", false);
        break;
      case GateType::kXnor:
        join("^", true);
        break;
    }
    out << ";\n";
  }
  for (std::size_t o = 0; o < n.num_outputs(); ++o) {
    out << "  assign " << n.output_name(o) << " = " << ref(n.outputs()[o])
        << ";\n";
  }
  out << "endmodule\n";
  return out.str();
}

}  // namespace ced::logic
