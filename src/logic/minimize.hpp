#pragma once

#include "logic/cover.hpp"
#include "logic/truth_table.hpp"

namespace ced::logic {

/// Options for the heuristic two-level minimizer.
struct EspressoOptions {
  /// Run the IRREDUNDANT pass after expansion.
  bool irredundant = true;
  /// Number of REDUCE/EXPAND refinement iterations after the first pass.
  int refine_iterations = 1;
};

/// Heuristic two-level (SOP) minimization in the spirit of ESPRESSO:
/// EXPAND each ON minterm against the OFF-set, skip minterms already
/// covered, then IRREDUNDANT and an optional REDUCE/EXPAND refinement.
///
/// The result always implements `spec` exactly (covers ON, avoids OFF);
/// don't-cares are exploited during expansion. Deterministic.
Cover minimize_espresso(const SopSpec& spec, const EspressoOptions& opts = {});

/// Exact two-level minimization (Quine-McCluskey prime generation followed
/// by branch-and-bound minimum cover). Guards `spec.num_vars <= 14`;
/// intended for small functions and for validating the heuristic.
Cover minimize_exact(const SopSpec& spec);

/// The trivial one-cube-per-ON-minterm cover (baseline / test helper).
Cover cover_from_on_set(const SopSpec& spec);

}  // namespace ced::logic
