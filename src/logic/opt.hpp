#pragma once

#include "logic/netlist.hpp"

namespace ced::logic {

/// Options for the netlist clean-up optimizer.
struct OptimizeOptions {
  bool fold_constants = true;   ///< constant propagation through gates
  bool structural_hash = true;  ///< merge structurally identical gates
  bool collapse_unary = true;   ///< drop buffers, fold NOT(NOT(x))
  bool sweep_dead = true;       ///< remove logic unreachable from outputs
};

/// Statistics of one optimization run.
struct OptimizeStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t folded = 0;   ///< gates removed by constant folding / unary
  std::size_t merged = 0;   ///< gates merged by structural hashing
  std::size_t swept = 0;    ///< gates removed as dead
};

/// Rewrites `n` into an equivalent, usually smaller netlist:
/// primary inputs and outputs keep their order and names; for every input
/// assignment the outputs are bit-identical (tests enforce this).
///
/// Passes: constant folding (AND with 0, OR with 1, XOR of equal nets, ...),
/// duplicate-fan-in simplification, buffer/double-inverter collapsing,
/// structural hashing (one gate per (type, fan-in multiset)), and a final
/// dead-logic sweep.
Netlist optimize_netlist(const Netlist& n, const OptimizeOptions& opts = {},
                         OptimizeStats* stats = nullptr);

}  // namespace ced::logic
