#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ced::logic {

/// Dynamically sized bit vector backed by 64-bit words.
///
/// Used throughout the library for minterm sets (ON/OFF/DC sets of Boolean
/// functions) and reachability/marking sets. Bits beyond size() are kept
/// zero as a class invariant so whole-word operations (count, any, subset
/// tests) need no masking.
class BitVec {
 public:
  BitVec() = default;

  /// Construct a vector of `n` bits, all initialized to `value`.
  explicit BitVec(std::size_t n, bool value = false);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v = true) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }
  void reset(std::size_t i) { set(i, false); }

  /// Set or clear every bit.
  void fill(bool value);

  /// Number of set bits.
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  BitVec& operator&=(const BitVec& o);
  BitVec& operator|=(const BitVec& o);
  BitVec& operator^=(const BitVec& o);
  /// Clears every bit of *this that is set in `o` (set difference).
  BitVec& subtract(const BitVec& o);
  /// Bitwise complement within size().
  BitVec operator~() const;

  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  bool operator==(const BitVec& o) const = default;

  /// True if any bit is set in both vectors.
  bool intersects(const BitVec& o) const;
  /// True if every set bit of *this is also set in `o`.
  bool is_subset_of(const BitVec& o) const;

  /// Index of the first set bit, or size() if none.
  std::size_t find_first() const;
  /// Index of the first set bit strictly after `i`, or size() if none.
  std::size_t find_next(std::size_t i) const;

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void trim();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ced::logic
