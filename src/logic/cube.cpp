#include "logic/cube.hpp"

#include <bit>
#include <stdexcept>

namespace ced::logic {

Cube Cube::minterm(std::uint64_t assignment, int num_vars) {
  if (num_vars < 0 || num_vars > 64) {
    throw std::invalid_argument("Cube supports at most 64 variables");
  }
  const std::uint64_t mask =
      num_vars == 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << num_vars) - 1);
  return Cube{mask, assignment & mask};
}

int Cube::num_literals() const { return std::popcount(care); }

Cube Cube::with_literal(int var, bool positive) const {
  Cube r = *this;
  const std::uint64_t m = std::uint64_t{1} << var;
  r.care |= m;
  if (positive) {
    r.val |= m;
  } else {
    r.val &= ~m;
  }
  return r;
}

Cube Cube::without_literal(int var) const {
  Cube r = *this;
  const std::uint64_t m = std::uint64_t{1} << var;
  r.care &= ~m;
  r.val &= ~m;
  return r;
}

std::uint64_t Cube::num_minterms(int num_vars) const {
  const int free_vars = num_vars - num_literals();
  return free_vars >= 64 ? 0 : (std::uint64_t{1} << free_vars);
}

std::string Cube::to_string(int num_vars) const {
  std::string s;
  s.reserve(static_cast<std::size_t>(num_vars));
  for (int v = 0; v < num_vars; ++v) {
    const std::uint64_t m = std::uint64_t{1} << v;
    if (!(care & m)) {
      s.push_back('-');
    } else {
      s.push_back((val & m) ? '1' : '0');
    }
  }
  return s;
}

}  // namespace ced::logic
