#include "logic/factor.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

namespace ced::logic {
namespace {

/// Largest cube contained in every cube of the list (common literals).
Cube common_cube(const std::vector<Cube>& cubes) {
  Cube common = cubes.front();
  for (std::size_t i = 1; i < cubes.size(); ++i) {
    // Keep literals present in both with equal polarity.
    const std::uint64_t both = common.care & cubes[i].care;
    const std::uint64_t agree = ~(common.val ^ cubes[i].val);
    common.care = both & agree;
    common.val &= common.care;
  }
  return common;
}

/// Removes the literals of `divisor` from `c` (assumes divisor covers
/// a subset of c's literals).
Cube divide_out(const Cube& c, const Cube& divisor) {
  Cube r = c;
  r.care &= ~divisor.care;
  r.val &= r.care;
  return r;
}

FactorNode and_of(std::vector<FactorNode> children) {
  if (children.size() == 1) return std::move(children.front());
  FactorNode n;
  n.kind = FactorNode::Kind::kAnd;
  n.children = std::move(children);
  return n;
}

FactorNode or_of(std::vector<FactorNode> children) {
  if (children.size() == 1) return std::move(children.front());
  FactorNode n;
  n.kind = FactorNode::Kind::kOr;
  n.children = std::move(children);
  return n;
}

FactorNode cube_to_and(const Cube& c, int num_vars) {
  std::vector<FactorNode> lits;
  for (int v = 0; v < num_vars; ++v) {
    const std::uint64_t m = std::uint64_t{1} << v;
    if (c.care & m) {
      lits.push_back(FactorNode::literal(v, (c.val & m) != 0));
    }
  }
  if (lits.empty()) return FactorNode::constant(true);
  return and_of(std::move(lits));
}

FactorNode factor_rec(std::vector<Cube> cubes, int num_vars) {
  if (cubes.empty()) return FactorNode::constant(false);
  for (const Cube& c : cubes) {
    if (c.care == 0) return FactorNode::constant(true);  // tautology cube
  }
  if (cubes.size() == 1) return cube_to_and(cubes.front(), num_vars);

  // 1) Common-cube extraction: F = c * (F / c).
  const Cube common = common_cube(cubes);
  if (common.care != 0) {
    std::vector<Cube> quotient;
    quotient.reserve(cubes.size());
    for (const Cube& c : cubes) quotient.push_back(divide_out(c, common));
    std::vector<FactorNode> parts;
    parts.push_back(cube_to_and(common, num_vars));
    parts.push_back(factor_rec(std::move(quotient), num_vars));
    return and_of(std::move(parts));
  }

  // 2) Divide by the most frequent literal: F = L * (F/L) + R.
  std::unordered_map<std::uint64_t, int> freq;  // key: var*2 + polarity
  for (const Cube& c : cubes) {
    for (int v = 0; v < num_vars; ++v) {
      const std::uint64_t m = std::uint64_t{1} << v;
      if (c.care & m) {
        ++freq[static_cast<std::uint64_t>(v) * 2 + ((c.val & m) ? 1 : 0)];
      }
    }
  }
  std::uint64_t best_key = 0;
  int best = 0;
  for (const auto& [key, n] : freq) {
    if (n > best || (n == best && key < best_key)) {
      best = n;
      best_key = key;
    }
  }
  if (best < 2) {
    // No sharing left: plain OR of cube ANDs.
    std::vector<FactorNode> terms;
    terms.reserve(cubes.size());
    for (const Cube& c : cubes) terms.push_back(cube_to_and(c, num_vars));
    return or_of(std::move(terms));
  }

  const int var = static_cast<int>(best_key / 2);
  const bool pol = best_key % 2 != 0;
  const Cube lit = Cube::universe().with_literal(var, pol);
  std::vector<Cube> quotient, remainder;
  for (const Cube& c : cubes) {
    const std::uint64_t m = std::uint64_t{1} << var;
    if ((c.care & m) && ((c.val & m) != 0) == pol) {
      quotient.push_back(divide_out(c, lit));
    } else {
      remainder.push_back(c);
    }
  }
  std::vector<FactorNode> product;
  product.push_back(FactorNode::literal(var, pol));
  product.push_back(factor_rec(std::move(quotient), num_vars));
  FactorNode left = and_of(std::move(product));
  if (remainder.empty()) return left;
  std::vector<FactorNode> sum;
  sum.push_back(std::move(left));
  sum.push_back(factor_rec(std::move(remainder), num_vars));
  return or_of(std::move(sum));
}

}  // namespace

FactorNode factor_cover(const Cover& cover) {
  return factor_rec(cover.cubes(), cover.num_vars());
}

int factor_literal_count(const FactorNode& node) {
  switch (node.kind) {
    case FactorNode::Kind::kConst:
      return 0;
    case FactorNode::Kind::kLiteral:
      return 1;
    default: {
      int n = 0;
      for (const auto& c : node.children) n += factor_literal_count(c);
      return n;
    }
  }
}

bool factor_evaluate(const FactorNode& node, std::uint64_t assignment) {
  switch (node.kind) {
    case FactorNode::Kind::kConst:
      return node.value;
    case FactorNode::Kind::kLiteral:
      return (((assignment >> node.var) & 1) != 0) == node.positive;
    case FactorNode::Kind::kAnd:
      for (const auto& c : node.children) {
        if (!factor_evaluate(c, assignment)) return false;
      }
      return true;
    case FactorNode::Kind::kOr:
      for (const auto& c : node.children) {
        if (factor_evaluate(c, assignment)) return true;
      }
      return false;
  }
  return false;
}

std::uint32_t synthesize_factor(SynthContext& ctx, const FactorNode& node,
                                std::span<const std::uint32_t> var_nets) {
  switch (node.kind) {
    case FactorNode::Kind::kConst:
      return ctx.constant(node.value);
    case FactorNode::Kind::kLiteral:
      return node.positive
                 ? var_nets[static_cast<std::size_t>(node.var)]
                 : ctx.inverted(var_nets[static_cast<std::size_t>(node.var)]);
    case FactorNode::Kind::kAnd:
    case FactorNode::Kind::kOr: {
      // Flatten same-kind descendants so the mapper can use wide cells
      // instead of chains of 2-input gates.
      std::vector<std::uint32_t> nets;
      std::vector<const FactorNode*> stack{&node};
      while (!stack.empty()) {
        const FactorNode* cur = stack.back();
        stack.pop_back();
        for (const auto& c : cur->children) {
          if (c.kind == node.kind) {
            stack.push_back(&c);
          } else {
            nets.push_back(synthesize_factor(ctx, c, var_nets));
          }
        }
      }
      return node.kind == FactorNode::Kind::kAnd ? ctx.and_tree(std::move(nets))
                                                 : ctx.or_tree(std::move(nets));
    }
  }
  return ctx.constant(false);
}

}  // namespace ced::logic
