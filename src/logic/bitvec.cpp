#include "logic/bitvec.hpp"

#include <bit>
#include <stdexcept>

namespace ced::logic {

BitVec::BitVec(std::size_t n, bool value)
    : size_(n), words_((n + 63) / 64, value ? ~std::uint64_t{0} : 0) {
  trim();
}

void BitVec::trim() {
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
  }
}

void BitVec::fill(bool value) {
  for (auto& w : words_) w = value ? ~std::uint64_t{0} : 0;
  trim();
}

std::size_t BitVec::count() const {
  std::size_t c = 0;
  for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool BitVec::any() const {
  for (auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  if (o.size_ != size_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
  if (o.size_ != size_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  if (o.size_ != size_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

BitVec& BitVec::subtract(const BitVec& o) {
  if (o.size_ != size_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

BitVec BitVec::operator~() const {
  BitVec r(*this);
  for (auto& w : r.words_) w = ~w;
  r.trim();
  return r;
}

bool BitVec::intersects(const BitVec& o) const {
  if (o.size_ != size_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & o.words_[i]) return true;
  }
  return false;
}

bool BitVec::is_subset_of(const BitVec& o) const {
  if (o.size_ != size_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~o.words_[i]) return false;
  }
  return true;
}

std::size_t BitVec::find_first() const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      return wi * 64 + static_cast<std::size_t>(std::countr_zero(words_[wi]));
    }
  }
  return size_;
}

std::size_t BitVec::find_next(std::size_t i) const {
  ++i;
  if (i >= size_) return size_;
  std::size_t wi = i >> 6;
  std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (i & 63));
  while (true) {
    if (w != 0) {
      return wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
    }
    if (++wi == words_.size()) return size_;
    w = words_[wi];
  }
}

}  // namespace ced::logic
