#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace ced::logic {

/// A sum-of-products (disjunction of cubes) over `num_vars` variables.
class Cover {
 public:
  Cover() = default;
  explicit Cover(int num_vars) : num_vars_(num_vars) {}
  Cover(int num_vars, std::vector<Cube> cubes)
      : num_vars_(num_vars), cubes_(std::move(cubes)) {}

  int num_vars() const { return num_vars_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }
  std::size_t size() const { return cubes_.size(); }
  bool empty() const { return cubes_.empty(); }

  void add(const Cube& c) { cubes_.push_back(c); }

  /// Evaluates the SOP on one complete assignment.
  bool evaluate(std::uint64_t assignment) const {
    for (const auto& c : cubes_) {
      if (c.contains(assignment)) return true;
    }
    return false;
  }

  /// Total number of literals across all cubes (a standard 2-level cost).
  int num_literals() const {
    int n = 0;
    for (const auto& c : cubes_) n += c.num_literals();
    return n;
  }

  /// Removes cubes single-cube-contained in another cube of the cover.
  void remove_contained_cubes();

  /// PLA-style multi-line text (one cube per line).
  std::string to_string() const;

 private:
  int num_vars_ = 0;
  std::vector<Cube> cubes_;
};

}  // namespace ced::logic
