#include "logic/minimize.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ced::logic {
namespace {

/// True if the cube contains no minterm of `off`.
bool disjoint_from(const Cube& c, int num_vars, const BitVec& off) {
  bool hit = false;
  for_each_minterm(c, num_vars, [&](std::uint64_t m) {
    if (off.test(m)) hit = true;
  });
  return !hit;
}

/// Greedily removes literals from `c` (largest expansion first) while the
/// cube stays disjoint from the OFF-set.
Cube expand_cube(Cube c, int num_vars, const BitVec& off) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Try literals in a fixed order; removing one literal doubles the cube,
    // so any removable literal is an improvement. Re-scan after success so
    // interactions between literals are re-examined.
    for (int v = 0; v < num_vars; ++v) {
      const std::uint64_t m = std::uint64_t{1} << v;
      if (!(c.care & m)) continue;
      const Cube wider = c.without_literal(v);
      if (disjoint_from(wider, num_vars, off)) {
        c = wider;
        changed = true;
      }
    }
  }
  return c;
}

void mark_minterms(const Cube& c, int num_vars, BitVec& set) {
  for_each_minterm(c, num_vars, [&](std::uint64_t m) { set.set(m); });
}

/// Removes cubes whose ON-minterms are fully covered by the other cubes.
/// Cubes are considered from smallest to largest so that redundant small
/// cubes vanish first.
void irredundant(Cover& cover, const SopSpec& spec) {
  auto& cubes = cover.cubes();
  std::vector<std::size_t> order(cubes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cubes[a].num_literals() > cubes[b].num_literals();
  });

  std::vector<bool> removed(cubes.size(), false);
  for (std::size_t oi : order) {
    // Is every ON-minterm of cubes[oi] covered by some other kept cube?
    bool needed = false;
    for_each_minterm(cubes[oi], spec.num_vars, [&](std::uint64_t m) {
      if (needed || !spec.on.test(m)) return;
      for (std::size_t j = 0; j < cubes.size(); ++j) {
        if (j == oi || removed[j]) continue;
        if (cubes[j].contains(m)) return;
      }
      needed = true;
    });
    if (!needed) removed[oi] = true;
  }

  std::vector<Cube> kept;
  kept.reserve(cubes.size());
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    if (!removed[i]) kept.push_back(cubes[i]);
  }
  cubes = std::move(kept);
}

/// Shrinks each cube to the smallest cube containing its ON-minterms that
/// are not covered by any other cube, giving EXPAND room to move.
void reduce(Cover& cover, const SopSpec& spec) {
  auto& cubes = cover.cubes();
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    std::uint64_t and_mask = ~std::uint64_t{0};
    std::uint64_t or_mask = 0;
    bool saw = false;
    for_each_minterm(cubes[i], spec.num_vars, [&](std::uint64_t m) {
      if (!spec.on.test(m)) return;
      for (std::size_t j = 0; j < cubes.size(); ++j) {
        if (j != i && cubes[j].contains(m)) return;
      }
      and_mask &= m;
      or_mask |= m;
      saw = true;
    });
    if (!saw) continue;  // Fully shared cube; leave to IRREDUNDANT.
    // Smallest enclosing cube of the private ON-minterms.
    const std::uint64_t var_mask =
        spec.num_vars == 64 ? ~std::uint64_t{0}
                            : ((std::uint64_t{1} << spec.num_vars) - 1);
    Cube shrunk;
    // A variable stays free only if the private minterms disagree on it.
    shrunk.care = ~(and_mask ^ or_mask) & var_mask;
    shrunk.val = and_mask & shrunk.care;
    cubes[i] = shrunk;
  }
}

}  // namespace

Cover cover_from_on_set(const SopSpec& spec) {
  Cover c(spec.num_vars);
  for (std::size_t m = spec.on.find_first(); m < spec.on.size();
       m = spec.on.find_next(m)) {
    c.add(Cube::minterm(m, spec.num_vars));
  }
  return c;
}

Cover minimize_espresso(const SopSpec& spec, const EspressoOptions& opts) {
  if (spec.num_vars > TruthTable::kMaxVars) {
    throw std::invalid_argument("minimize_espresso: too many variables");
  }
  const BitVec off = spec.off();
  Cover cover(spec.num_vars);

  BitVec covered(spec.on.size());
  for (std::size_t m = spec.on.find_first(); m < spec.on.size();
       m = spec.on.find_next(m)) {
    if (covered.test(m)) continue;
    const Cube c =
        expand_cube(Cube::minterm(m, spec.num_vars), spec.num_vars, off);
    mark_minterms(c, spec.num_vars, covered);
    cover.add(c);
  }

  if (opts.irredundant) irredundant(cover, spec);

  for (int it = 0; it < opts.refine_iterations; ++it) {
    const std::size_t before = cover.size();
    const int lits_before = cover.num_literals();
    Cover refined = cover;
    reduce(refined, spec);
    for (auto& c : refined.cubes()) c = expand_cube(c, spec.num_vars, off);
    refined.remove_contained_cubes();
    irredundant(refined, spec);
    if (refined.size() < before ||
        (refined.size() == before && refined.num_literals() < lits_before)) {
      cover = std::move(refined);
    } else {
      break;
    }
  }
  return cover;
}

namespace {

struct CubeKey {
  bool operator()(const Cube& a, const Cube& b) const {
    return a.care == b.care && a.val == b.val;
  }
};

/// Quine-McCluskey prime implicant generation over ON ∪ DC.
std::vector<Cube> prime_implicants(const SopSpec& spec) {
  std::unordered_set<Cube, CubeHash, CubeKey> current;
  for (std::size_t m = 0; m < spec.on.size(); ++m) {
    if (spec.on.test(m) || spec.dc.test(m)) {
      current.insert(Cube::minterm(m, spec.num_vars));
    }
  }

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::unordered_set<Cube, CubeHash, CubeKey> next;
    std::unordered_set<Cube, CubeHash, CubeKey> merged;
    // Group by care mask; two cubes merge when care masks match and values
    // differ in exactly one cared bit.
    std::vector<Cube> cubes(current.begin(), current.end());
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_care;
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      by_care[cubes[i].care].push_back(i);
    }
    for (const auto& [care, idxs] : by_care) {
      (void)care;
      for (std::size_t a = 0; a < idxs.size(); ++a) {
        for (std::size_t b = a + 1; b < idxs.size(); ++b) {
          const Cube& x = cubes[idxs[a]];
          const Cube& y = cubes[idxs[b]];
          const std::uint64_t diff = (x.val ^ y.val) & x.care;
          if (std::popcount(diff) == 1) {
            Cube m{x.care & ~diff, x.val & ~diff & (x.care & ~diff)};
            m.val = x.val & m.care;
            next.insert(m);
            merged.insert(x);
            merged.insert(y);
          }
        }
      }
    }
    for (const auto& c : cubes) {
      if (!merged.count(c)) primes.push_back(c);
    }
    current = std::move(next);
  }
  return primes;
}

/// Branch-and-bound minimum unate cover: rows are ON minterms, columns are
/// primes. Ties broken toward fewer literals.
class CoverSolver {
 public:
  CoverSolver(const std::vector<Cube>& primes,
              const std::vector<std::uint64_t>& rows)
      : primes_(primes), rows_(rows) {
    row_candidates_.resize(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t p = 0; p < primes.size(); ++p) {
        if (primes[p].contains(rows[r])) row_candidates_[r].push_back(p);
      }
    }
  }

  std::vector<std::size_t> solve() {
    best_size_ = std::numeric_limits<std::size_t>::max();
    std::vector<bool> row_done(rows_.size(), false);
    std::vector<std::size_t> chosen;
    recurse(row_done, chosen);
    return best_;
  }

 private:
  void recurse(std::vector<bool>& row_done, std::vector<std::size_t>& chosen) {
    if (chosen.size() + 1 > best_size_) return;  // bound (need >= 1 more?)
    // Find the uncovered row with the fewest candidate primes.
    std::size_t pick = rows_.size();
    std::size_t pick_deg = std::numeric_limits<std::size_t>::max();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (row_done[r]) continue;
      if (row_candidates_[r].size() < pick_deg) {
        pick = r;
        pick_deg = row_candidates_[r].size();
      }
    }
    if (pick == rows_.size()) {  // everything covered
      if (chosen.size() < best_size_ ||
          (chosen.size() == best_size_ &&
           literal_count(chosen) < literal_count(best_))) {
        best_ = chosen;
        best_size_ = chosen.size();
      }
      return;
    }
    if (chosen.size() + 1 > best_size_) return;
    for (std::size_t p : row_candidates_[pick]) {
      std::vector<std::size_t> newly;
      for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (!row_done[r] && primes_[p].contains(rows_[r])) {
          row_done[r] = true;
          newly.push_back(r);
        }
      }
      chosen.push_back(p);
      recurse(row_done, chosen);
      chosen.pop_back();
      for (std::size_t r : newly) row_done[r] = false;
    }
  }

  int literal_count(const std::vector<std::size_t>& sel) const {
    int n = 0;
    for (std::size_t p : sel) n += primes_[p].num_literals();
    return n;
  }

  const std::vector<Cube>& primes_;
  const std::vector<std::uint64_t>& rows_;
  std::vector<std::vector<std::size_t>> row_candidates_;
  std::vector<std::size_t> best_;
  std::size_t best_size_ = 0;
};

}  // namespace

Cover minimize_exact(const SopSpec& spec) {
  if (spec.num_vars > 14) {
    throw std::invalid_argument("minimize_exact: too many variables");
  }
  std::vector<Cube> primes = prime_implicants(spec);
  std::vector<std::uint64_t> rows;
  for (std::size_t m = spec.on.find_first(); m < spec.on.size();
       m = spec.on.find_next(m)) {
    rows.push_back(m);
  }
  if (rows.empty()) return Cover(spec.num_vars);
  CoverSolver solver(primes, rows);
  Cover result(spec.num_vars);
  for (std::size_t p : solver.solve()) result.add(primes[p]);
  return result;
}

}  // namespace ced::logic
