#pragma once

#include <chrono>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace ced::lp {

/// Relation of one linear constraint.
enum class Relation { kLe, kGe, kEq };

enum class Objective { kMinimize, kMaximize };

enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit, kTimeLimit };

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A linear program over bounded variables:
///   optimize  c'x   s.t.  each constraint,  l <= x <= u.
///
/// Built incrementally; solved by `solve` (dense two-phase primal simplex
/// with upper-bounded variables and Bland anti-cycling).
class LpProblem {
 public:
  /// Adds a variable with bounds [lower, upper]; returns its index.
  int add_variable(double lower, double upper, double objective = 0.0);

  /// Adds a constraint sum(coeff * var) rel rhs. Terms may repeat a
  /// variable; coefficients are accumulated.
  void add_constraint(std::vector<std::pair<int, double>> terms, Relation rel,
                      double rhs);

  void set_objective_sense(Objective sense) { sense_ = sense; }

  int num_variables() const { return static_cast<int>(lower_.size()); }
  int num_constraints() const { return static_cast<int>(rhs_.size()); }

  // Internal accessors used by the solver.
  const std::vector<double>& lower() const { return lower_; }
  const std::vector<double>& upper() const { return upper_; }
  const std::vector<double>& objective() const { return obj_; }
  Objective sense() const { return sense_; }
  const std::vector<std::vector<std::pair<int, double>>>& rows() const {
    return rows_;
  }
  const std::vector<Relation>& relations() const { return rels_; }
  const std::vector<double>& rhs() const { return rhs_; }

 private:
  std::vector<double> lower_, upper_, obj_;
  std::vector<std::vector<std::pair<int, double>>> rows_;
  std::vector<Relation> rels_;
  std::vector<double> rhs_;
  Objective sense_ = Objective::kMinimize;
};

struct SolverOptions {
  int max_iterations = 200000;
  double eps = 1e-9;
  /// Absolute wall-clock deadline checked cooperatively every few hundred
  /// pivots; when it passes, the solve stops with Status::kTimeLimit
  /// instead of running to optimality. Defaults to "never".
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Observability sinks: a span per solve plus pivot counters. Write-only
  /// diagnostics — the pivot sequence and the result are byte-identical
  /// with sinks set or null.
  obs::Sinks obs;
};

struct LpResult {
  Status status = Status::kInfeasible;
  double objective = 0.0;
  /// Values of the problem variables (size = num_variables()) when
  /// status is kOptimal.
  std::vector<double> x;
  /// Simplex pivots consumed (both phases), whatever the outcome — the
  /// budget accounting callers report in resilience diagnostics.
  int iterations = 0;
};

/// Solves the LP. Deterministic.
LpResult solve(const LpProblem& p, const SolverOptions& opts = {});

}  // namespace ced::lp
