#include "lp/simplex.hpp"

#include <cmath>
#include <stdexcept>

namespace ced::lp {

int LpProblem::add_variable(double lower, double upper, double objective) {
  if (!(lower <= upper)) throw std::invalid_argument("bad variable bounds");
  if (!std::isfinite(lower)) {
    throw std::invalid_argument("lower bound must be finite");
  }
  lower_.push_back(lower);
  upper_.push_back(upper);
  obj_.push_back(objective);
  return static_cast<int>(lower_.size()) - 1;
}

void LpProblem::add_constraint(std::vector<std::pair<int, double>> terms,
                               Relation rel, double rhs) {
  for (const auto& [v, c] : terms) {
    (void)c;
    if (v < 0 || v >= num_variables()) {
      throw std::invalid_argument("constraint references unknown variable");
    }
  }
  rows_.push_back(std::move(terms));
  rels_.push_back(rel);
  rhs_.push_back(rhs);
}

namespace {

/// Dense tableau simplex with upper-bounded variables.
///
/// Invariants: every nonbasic variable sits at 0 in its current orientation
/// (`flipped[j]` records reflection y' = ub - y); basic columns are unit
/// vectors; all b >= 0 up to tolerance.
class Tableau {
 public:
  Tableau(int rows, int cols)
      : m_(rows), n_(cols), t_(static_cast<std::size_t>(rows) * cols, 0.0),
        b_(rows, 0.0), d_(cols, 0.0), ub_(cols, kInfinity),
        flipped_(cols, false), basis_(rows, -1) {}

  double& at(int i, int j) { return t_[static_cast<std::size_t>(i) * n_ + j]; }
  double at(int i, int j) const {
    return t_[static_cast<std::size_t>(i) * n_ + j];
  }

  int m_, n_;
  std::vector<double> t_;   // m x n coefficient tableau
  std::vector<double> b_;   // basic values
  std::vector<double> d_;   // reduced costs
  std::vector<double> ub_;  // upper bounds in current orientation
  std::vector<bool> flipped_;
  std::vector<int> basis_;  // basis_[i] = column basic in row i
  std::vector<bool> is_basic_;

  void rebuild_basic_flags() {
    is_basic_.assign(static_cast<std::size_t>(n_), false);
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] >= 0) is_basic_[static_cast<std::size_t>(basis_[i])] = true;
    }
  }

  /// Reflects nonbasic column j (y' = ub - y); requires finite ub.
  void reflect_nonbasic(int j) {
    const double u = ub_[static_cast<std::size_t>(j)];
    for (int i = 0; i < m_; ++i) {
      b_[static_cast<std::size_t>(i)] -= at(i, j) * u;
      at(i, j) = -at(i, j);
    }
    d_[static_cast<std::size_t>(j)] = -d_[static_cast<std::size_t>(j)];
    flipped_[static_cast<std::size_t>(j)] = !flipped_[static_cast<std::size_t>(j)];
  }

  /// Rewrites basic row r so its basic variable is replaced by its
  /// complement (used when the leaving variable exits at its upper bound).
  void reflect_basic_row(int r) {
    const int l = basis_[static_cast<std::size_t>(r)];
    const double u = ub_[static_cast<std::size_t>(l)];
    b_[static_cast<std::size_t>(r)] = u - b_[static_cast<std::size_t>(r)];
    for (int j = 0; j < n_; ++j) {
      if (j != l) at(r, j) = -at(r, j);
    }
    flipped_[static_cast<std::size_t>(l)] = !flipped_[static_cast<std::size_t>(l)];
  }

  /// Gauss-Jordan pivot on (r, j); T[r][j] must be nonzero.
  ///
  /// The row updates are written over __restrict__ row pointers so the
  /// element-wise axpy loops vectorize (rows of t_ never alias each other
  /// for i != r). Plain mul+sub per element — no reduction, no FMA
  /// contraction — so the vectorized result is bit-identical to the scalar
  /// loop and the pivot sequence never depends on the compiler.
  void pivot(int r, int j) {
    const std::size_t n = static_cast<std::size_t>(n_);
    double* __restrict__ row_r = t_.data() + static_cast<std::size_t>(r) * n;
    const double p = row_r[static_cast<std::size_t>(j)];
    const double inv = 1.0 / p;
    for (std::size_t k = 0; k < n; ++k) row_r[k] *= inv;
    b_[static_cast<std::size_t>(r)] *= inv;
    row_r[static_cast<std::size_t>(j)] = 1.0;
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      double* __restrict__ row_i = t_.data() + static_cast<std::size_t>(i) * n;
      const double f = row_i[static_cast<std::size_t>(j)];
      if (f == 0.0) continue;
      for (std::size_t k = 0; k < n; ++k) row_i[k] -= f * row_r[k];
      row_i[static_cast<std::size_t>(j)] = 0.0;
      b_[static_cast<std::size_t>(i)] -= f * b_[static_cast<std::size_t>(r)];
    }
    const double fd = d_[static_cast<std::size_t>(j)];
    if (fd != 0.0) {
      double* __restrict__ d = d_.data();
      for (std::size_t k = 0; k < n; ++k) d[k] -= fd * row_r[k];
      d[static_cast<std::size_t>(j)] = 0.0;
    }
    basis_[static_cast<std::size_t>(r)] = j;
  }
};

enum class StepResult { kImproved, kOptimal, kUnbounded };

/// One simplex iteration; `bland` forces Bland's anti-cycling rule.
StepResult step(Tableau& tb, double eps, bool bland) {
  tb.rebuild_basic_flags();
  // Entering column: negative reduced cost.
  int enter = -1;
  double best = -eps;
  for (int j = 0; j < tb.n_; ++j) {
    if (tb.is_basic_[static_cast<std::size_t>(j)]) continue;
    const double dj = tb.d_[static_cast<std::size_t>(j)];
    if (dj < -eps) {
      if (bland) {
        enter = j;
        break;
      }
      if (dj < best) {
        best = dj;
        enter = j;
      }
    }
  }
  if (enter < 0) return StepResult::kOptimal;

  // Ratio test. Movement delta >= 0 of the entering variable.
  double limit = tb.ub_[static_cast<std::size_t>(enter)];
  int leave_row = -1;
  bool leave_at_upper = false;
  for (int i = 0; i < tb.m_; ++i) {
    const double w = tb.at(i, enter);
    const double bi = tb.b_[static_cast<std::size_t>(i)];
    const int l = tb.basis_[static_cast<std::size_t>(i)];
    const double ubl = tb.ub_[static_cast<std::size_t>(l)];
    if (w > eps) {
      const double ratio = bi / w;
      if (ratio < limit - 1e-12 ||
          (leave_row >= 0 && ratio < limit + 1e-12 && bland &&
           l < tb.basis_[static_cast<std::size_t>(leave_row)])) {
        limit = ratio < limit ? ratio : limit;
        leave_row = i;
        leave_at_upper = false;
      }
    } else if (w < -eps && std::isfinite(ubl)) {
      const double ratio = (ubl - bi) / (-w);
      if (ratio < limit - 1e-12 ||
          (leave_row >= 0 && ratio < limit + 1e-12 && bland &&
           l < tb.basis_[static_cast<std::size_t>(leave_row)])) {
        limit = ratio < limit ? ratio : limit;
        leave_row = i;
        leave_at_upper = true;
      }
    }
  }

  if (!std::isfinite(limit)) return StepResult::kUnbounded;

  if (leave_row < 0) {
    // Bound flip: entering variable moves to its (finite) upper bound.
    tb.reflect_nonbasic(enter);
    return StepResult::kImproved;
  }

  if (leave_at_upper) tb.reflect_basic_row(leave_row);
  tb.pivot(leave_row, enter);
  return StepResult::kImproved;
}

double phase_objective(const Tableau& tb, const std::vector<double>& cost) {
  double z = 0.0;
  for (int i = 0; i < tb.m_; ++i) {
    const int l = tb.basis_[static_cast<std::size_t>(i)];
    double c = cost[static_cast<std::size_t>(l)];
    if (tb.flipped_[static_cast<std::size_t>(l)]) c = -c;  // oriented cost sign
    z += c * tb.b_[static_cast<std::size_t>(i)];
  }
  return z;
}

}  // namespace

static LpResult solve_impl(const LpProblem& p, const SolverOptions& opts) {
  const int nv = p.num_variables();
  const int m = p.num_constraints();

  // Column layout: [problem vars | slack/surplus | artificials].
  // A row whose slack enters with coefficient +1 (after sign normalization)
  // can use that slack as its initial basic variable and needs no
  // artificial — in the library's cover LPs this removes nearly all of
  // phase 1.
  int num_slacks = 0;
  for (Relation r : p.relations()) {
    if (r != Relation::kEq) ++num_slacks;
  }

  // Shift problem variables to [0, u - l]; compute adjusted rhs.
  std::vector<double> shifted_rhs = p.rhs();
  for (int i = 0; i < m; ++i) {
    for (const auto& [v, c] : p.rows()[static_cast<std::size_t>(i)]) {
      shifted_rhs[static_cast<std::size_t>(i)] -=
          c * p.lower()[static_cast<std::size_t>(v)];
    }
  }

  std::vector<bool> needs_artificial(static_cast<std::size_t>(m), true);
  int num_artificials = 0;
  for (int i = 0; i < m; ++i) {
    const bool negate = shifted_rhs[static_cast<std::size_t>(i)] < 0.0;
    const Relation rel = p.relations()[static_cast<std::size_t>(i)];
    const bool slack_basis =
        (rel == Relation::kLe && !negate) || (rel == Relation::kGe && negate);
    needs_artificial[static_cast<std::size_t>(i)] = !slack_basis;
    if (!slack_basis) ++num_artificials;
  }

  const int n = nv + num_slacks + num_artificials;
  Tableau tb(m, n);
  for (int j = 0; j < nv; ++j) {
    tb.ub_[static_cast<std::size_t>(j)] =
        p.upper()[static_cast<std::size_t>(j)] -
        p.lower()[static_cast<std::size_t>(j)];
  }

  int slack_col = nv;
  int art_col = nv + num_slacks;
  for (int i = 0; i < m; ++i) {
    const bool negate = shifted_rhs[static_cast<std::size_t>(i)] < 0.0;
    const double sign = negate ? -1.0 : 1.0;
    for (const auto& [v, c] : p.rows()[static_cast<std::size_t>(i)]) {
      tb.at(i, v) += sign * c;
    }
    const Relation rel = p.relations()[static_cast<std::size_t>(i)];
    int slack_here = -1;
    if (rel != Relation::kEq) {
      slack_here = slack_col;
      tb.at(i, slack_col) = sign * (rel == Relation::kLe ? 1.0 : -1.0);
      ++slack_col;
    }
    tb.b_[static_cast<std::size_t>(i)] =
        sign * shifted_rhs[static_cast<std::size_t>(i)];
    if (needs_artificial[static_cast<std::size_t>(i)]) {
      tb.at(i, art_col) = 1.0;
      tb.basis_[static_cast<std::size_t>(i)] = art_col;
      ++art_col;
    } else {
      tb.basis_[static_cast<std::size_t>(i)] = slack_here;
    }
  }

  int iter = 0;
  int stall = 0;
  const bool has_deadline =
      opts.deadline != std::chrono::steady_clock::time_point::max();
  auto out_of_time = [&] {
    return has_deadline && (iter & 255) == 0 &&
           std::chrono::steady_clock::now() >= opts.deadline;
  };

  // ---- Phase 1: minimize sum of artificials (skipped when none exist).
  std::vector<double> cost1(static_cast<std::size_t>(n), 0.0);
  if (num_artificials > 0) {
    for (int j = nv + num_slacks; j < n; ++j) {
      cost1[static_cast<std::size_t>(j)] = 1.0;
    }
    // Price out the basis: artificial basic rows have cost 1.
    for (int j = 0; j < n; ++j) {
      double d = cost1[static_cast<std::size_t>(j)];
      for (int i = 0; i < m; ++i) {
        if (needs_artificial[static_cast<std::size_t>(i)]) d -= tb.at(i, j);
      }
      tb.d_[static_cast<std::size_t>(j)] = d;
    }
    for (int i = 0; i < m; ++i) {
      tb.d_[static_cast<std::size_t>(tb.basis_[static_cast<std::size_t>(i)])] =
          0.0;
    }

    double last_obj = phase_objective(tb, cost1);
    for (;; ++iter) {
      if (iter > opts.max_iterations) {
        return LpResult{Status::kIterLimit, 0, {}, iter};
      }
      if (out_of_time()) return LpResult{Status::kTimeLimit, 0, {}, iter};
      const StepResult sr = step(tb, opts.eps, stall > 2 * (m + n));
      if (sr == StepResult::kOptimal) break;
      if (sr == StepResult::kUnbounded) break;  // cannot happen in phase 1
      const double obj = phase_objective(tb, cost1);
      if (obj < last_obj - 1e-12) {
        stall = 0;
        last_obj = obj;
      } else {
        ++stall;
      }
    }
    if (phase_objective(tb, cost1) > 1e-6) {
      return LpResult{Status::kInfeasible, 0, {}, iter};
    }

    // Pin artificials to zero so they never re-enter with positive value.
    for (int j = nv + num_slacks; j < n; ++j) {
      if (tb.flipped_[static_cast<std::size_t>(j)]) {
        // Artificial sits at its "upper" orientation; its value is ~0.
        tb.flipped_[static_cast<std::size_t>(j)] = false;
      }
      tb.ub_[static_cast<std::size_t>(j)] = 0.0;
    }
  }

  // ---- Phase 2: original objective (as minimization).
  const double obj_sign = p.sense() == Objective::kMaximize ? -1.0 : 1.0;
  std::vector<double> cost2(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < nv; ++j) {
    cost2[static_cast<std::size_t>(j)] =
        obj_sign * p.objective()[static_cast<std::size_t>(j)];
  }
  for (int j = 0; j < n; ++j) {
    tb.d_[static_cast<std::size_t>(j)] =
        tb.flipped_[static_cast<std::size_t>(j)]
            ? -cost2[static_cast<std::size_t>(j)]
            : cost2[static_cast<std::size_t>(j)];
  }
  tb.rebuild_basic_flags();
  for (int i = 0; i < m; ++i) {
    const int l = tb.basis_[static_cast<std::size_t>(i)];
    const double dl = tb.d_[static_cast<std::size_t>(l)];
    if (dl == 0.0) continue;
    for (int k = 0; k < tb.n_; ++k) {
      tb.d_[static_cast<std::size_t>(k)] -= dl * tb.at(i, k);
    }
    tb.d_[static_cast<std::size_t>(l)] = 0.0;
  }

  stall = 0;
  double last_obj = phase_objective(tb, cost2);
  for (;; ++iter) {
    if (iter > opts.max_iterations) {
      return LpResult{Status::kIterLimit, 0, {}, iter};
    }
    if (out_of_time()) return LpResult{Status::kTimeLimit, 0, {}, iter};
    const StepResult sr = step(tb, opts.eps, stall > 2 * (m + n));
    if (sr == StepResult::kOptimal) break;
    if (sr == StepResult::kUnbounded) {
      return LpResult{Status::kUnbounded, 0, {}, iter};
    }
    const double obj = phase_objective(tb, cost2);
    if (obj < last_obj - 1e-12) {
      stall = 0;
      last_obj = obj;
    } else {
      ++stall;
    }
  }

  // ---- Extract solution in original coordinates.
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < m; ++i) {
    y[static_cast<std::size_t>(tb.basis_[static_cast<std::size_t>(i)])] =
        tb.b_[static_cast<std::size_t>(i)];
  }
  LpResult res;
  res.status = Status::kOptimal;
  res.iterations = iter;
  res.x.resize(static_cast<std::size_t>(nv));
  for (int j = 0; j < nv; ++j) {
    double v = y[static_cast<std::size_t>(j)];
    if (tb.flipped_[static_cast<std::size_t>(j)]) {
      v = tb.ub_[static_cast<std::size_t>(j)] - v;
    }
    double x = v + p.lower()[static_cast<std::size_t>(j)];
    // Clamp tiny numerical noise back into the box.
    if (x < p.lower()[static_cast<std::size_t>(j)]) {
      x = p.lower()[static_cast<std::size_t>(j)];
    }
    if (x > p.upper()[static_cast<std::size_t>(j)]) {
      x = p.upper()[static_cast<std::size_t>(j)];
    }
    res.x[static_cast<std::size_t>(j)] = x;
  }
  res.objective = 0.0;
  for (int j = 0; j < nv; ++j) {
    res.objective += p.objective()[static_cast<std::size_t>(j)] *
                     res.x[static_cast<std::size_t>(j)];
  }
  return res;
}

namespace {

const char* to_label(Status s) {
  switch (s) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kIterLimit: return "iter-limit";
    case Status::kTimeLimit: return "time-limit";
  }
  return "?";
}

}  // namespace

LpResult solve(const LpProblem& p, const SolverOptions& opts) {
  // Observability wrapper: the solve itself never consults the sinks, so
  // the pivot sequence is identical whether or not anything is recording.
  if (!opts.obs.enabled()) return solve_impl(p, opts);
  obs::ScopedSpan span(opts.obs, "lp-solve");
  const LpResult res = solve_impl(p, opts);
  span.attr("vars", static_cast<std::uint64_t>(p.num_variables()));
  span.attr("rows", static_cast<std::uint64_t>(p.num_constraints()));
  span.attr("pivots", static_cast<std::uint64_t>(res.iterations));
  span.attr("status", to_label(res.status));
  if (opts.obs.metrics != nullptr) {
    obs::MetricsShard shard(opts.obs.metrics);
    shard.add("ced_lp_solves_total");
    shard.add("ced_lp_pivots_total", static_cast<std::uint64_t>(res.iterations));
    shard.observe("ced_lp_pivots_per_solve",
                  static_cast<double>(res.iterations));
  }
  return res;
}

}  // namespace ced::lp
