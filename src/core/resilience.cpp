#include "core/resilience.hpp"

#include <cstdio>

namespace ced::core {

const char* to_string(CascadeLevel level) {
  switch (level) {
    case CascadeLevel::kExact: return "exact";
    case CascadeLevel::kLpRounding: return "lp+rounding";
    case CascadeLevel::kGreedy: return "greedy";
    case CascadeLevel::kDuplication: return "duplication-floor";
  }
  return "?";
}

std::string ResilienceReport::summary() const {
  if (!degraded() && store_events.empty()) return {};
  std::string out;
  if (!degraded()) {
    // Store incidents without any quality degradation: audit lines only.
    for (const auto& e : store_events) {
      out += "  [store] " + e + "\n";
    }
    return out;
  }
  out += "resilience: ";
  out += status.ok() ? "degraded" : status.to_text();
  out += " (solver ";
  out += to_string(solver_requested);
  if (solver_used != solver_requested) {
    out += " -> ";
    out += to_string(solver_used);
  }
  out += ")";
  if (extraction_truncated) out += " [extraction truncated]";
  if (table_strengthened) out += " [table strengthened]";
  out += "\n";
  for (const auto& e : events) {
    char line[160];
    std::snprintf(line, sizeof(line), "  [%s] %s: %s (t=%.3fs, cases=%zu)\n",
                  ced::to_string(e.stage), ced::to_string(e.reason),
                  e.detail.c_str(), e.seconds, e.cases_seen);
    out += line;
  }
  for (const auto& e : store_events) {
    out += "  [store] " + e + "\n";
  }
  return out;
}

}  // namespace ced::core
