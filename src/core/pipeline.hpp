#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/algorithm1.hpp"
#include "core/exact.hpp"
#include "core/extract.hpp"
#include "core/parity_synth.hpp"
#include "core/resilience.hpp"
#include "fsm/synthesize.hpp"
#include "sim/faults.hpp"

namespace ced::core {

/// Which parity-selection solver drives the pipeline.
enum class SolverKind {
  kLpRounding,  ///< Algorithm 1 (LP relaxation + randomized rounding)
  kGreedy,      ///< greedy/local-search baseline
  kExact,       ///< exhaustive optimum (small instances only; falls back
                ///< to Algorithm 1 when the instance is too large)
};

struct PipelineOptions {
  fsm::EncodingKind encoding = fsm::EncodingKind::kBinary;
  fsm::FsmSynthOptions synth;
  int latency = 1;
  SolverKind solver = SolverKind::kLpRounding;
  Algorithm1Options algo;
  ExactOptions exact;      ///< used when solver == kExact
  CedSynthOptions ced;
  logic::CellLibrary library = logic::CellLibrary::mcnc();
  sim::FaultListOptions faults;
  ExtractOptions extract;  ///< .latency is overridden by `latency`
  /// Worker threads for the parallel stages (erroneous-case extraction and
  /// randomized-rounding trials): 1 = serial, 0 = CED_THREADS env or
  /// hardware concurrency, otherwise exactly that many. Overrides the
  /// `threads` members of `extract` and `algo`. Results (tables, parities,
  /// CED hardware) are identical for every thread count on non-truncated
  /// runs; only wall-clock changes.
  int threads = 0;
  /// Subset-dominance condensation before the solver (coverkernel.hpp):
  /// rows whose difference-word set contains another row's set add no
  /// constraint and are deleted, shrinking m before the LP/rounding ever
  /// runs. Provably solution-preserving (the returned cover is re-verified
  /// against the full table); disable to solve on the raw table.
  bool condense = true;
  /// Resource budget for the whole run. When any valve trips, stages
  /// degrade (exact -> LP+RR -> greedy -> duplication-style floor; table
  /// truncation) instead of throwing; see PipelineReport::resilience.
  RunBudget budget;

  /// Optional persistent artifact cache (storage::StoreArchive; non-owning,
  /// must outlive the run). When set, extraction first consults the store:
  /// a warm hit skips the whole stage (t_extract collapses to the load
  /// time), a miss runs shard-checkpointed extraction and persists every
  /// completed shard plus — on a complete run — the final table bundle.
  /// Corrupt artifacts are quarantined and recomputed; the incidents land
  /// in ResilienceReport::store_events, never in an exception.
  ExtractArchive* archive = nullptr;
  /// Read existing shard checkpoints before extracting (the `--resume`
  /// flag): an interrupted run's completed shards are loaded and only the
  /// remainder is computed, yielding tables byte-identical to an
  /// uninterrupted run. Checkpoints are written regardless; `resume` only
  /// gates reading them. Ignored without `archive`.
  bool resume = false;
  /// Checkpoint shard partition (0 = kDefaultCheckpointShards). Fixed
  /// independently of `threads` so artifacts are stable across machines;
  /// part of the cache key. Ignored without `archive`.
  int checkpoint_shards = 0;
  /// Deterministically stop extraction after computing this many new shards
  /// (0 = no limit): the controllable analogue of a budget trip, used by
  /// resume tests and `--max-new-shards`. Ignored without `archive`.
  int max_new_shards = 0;

  /// Observability sinks for the whole run (obs/trace.hpp): a span per
  /// stage and per cascade level, counters/histograms for the hot loops.
  /// Strictly write-only — q, the parities and the CED hardware are
  /// byte-identical with sinks set or all-null, at any thread count.
  /// Excluded from RunConfig::digest() for the same reason.
  obs::Sinks obs;
};

/// Everything the paper's Table 1 reports for one circuit at one latency,
/// plus diagnostics.
struct PipelineReport {
  // Original circuit.
  int inputs = 0, state_bits = 0, outputs = 0;
  std::size_t orig_gates = 0;
  double orig_area = 0.0;  ///< combinational logic + state register

  // Fault model / detectability table.
  std::size_t num_faults = 0;
  std::size_t num_detectable_faults = 0;
  std::size_t num_cases = 0;

  // Solution.
  int latency = 0;
  int num_trees = 0;               ///< q
  std::size_t ced_gates = 0;       ///< CED hardware gate count
  double ced_area = 0.0;           ///< CED hardware cost (incl. hold regs)
  std::vector<ParityFunc> parities;
  Algorithm1Stats algo_stats;

  /// Which budget valves fired, which cascade level answered, and the
  /// overall status classification for this report.
  ResilienceReport resilience;

  /// Content-addressed extraction cache key (extraction_digest) when the
  /// run had an artifact archive; empty otherwise. Diagnostic only (names
  /// the run-manifest artifact); not persisted by encode_report.
  std::string extraction_key;

  // Wall-clock seconds per stage, measured on shared boundaries (one clock
  // sample ends a stage and starts the next — obs::StageClock), so
  // t_synth + t_extract + t_solve + t_ced telescopes to the exact span
  // from run start to the last stage boundary.
  double t_synth = 0, t_extract = 0, t_solve = 0, t_ced = 0;
};

/// The engine behind ced::run_pipeline / ced::run_latency_sweep
/// (core/run.hpp): synthesizes once, extracts the table once at
/// max(latencies), and derives each smaller-latency table by truncation
/// (provably identical to direct extraction). Returns one report per
/// requested latency, in order. Not part of the public surface — callers
/// go through ced::RunConfig.
std::vector<PipelineReport> run_latency_sweep_impl(
    const fsm::Fsm& f, std::span<const int> latencies,
    const PipelineOptions& opts);

/// Runs the full flow on one FSM: encode + synthesize, enumerate stuck-at
/// faults, build the detectability table at `opts.latency`, minimize the
/// parity functions, synthesize the Fig. 3 hardware, and measure costs.
[[deprecated("use ced::run_pipeline(f, RunConfig) — see core/run.hpp; "
             "RunConfig::wrap(opts) adopts an existing option block")]]
PipelineReport run_pipeline(const fsm::Fsm& f, const PipelineOptions& opts);

/// Shared-extraction sweep over several latency bounds.
[[deprecated("use ced::run_latency_sweep(f, latencies, RunConfig) — see "
             "core/run.hpp")]]
std::vector<PipelineReport> run_latency_sweep(const fsm::Fsm& f,
                                              std::span<const int> latencies,
                                              const PipelineOptions& opts);

/// Solver dispatch shared by the pipeline and the benches. `warm_start`
/// optionally seeds the incumbent (see minimize_parity_functions).
std::vector<ParityFunc> select_parities(const DetectabilityTable& table,
                                        SolverKind solver,
                                        const Algorithm1Options& algo,
                                        Algorithm1Stats* stats = nullptr,
                                        std::span<const ParityFunc> warm_start = {});

/// The degradation cascade: runs the requested solver under the budget,
/// falling back exact -> LP+RR -> greedy -> duplication-style single-bit
/// floor when a budget valve trips or a level cannot certify an answer.
/// Always returns a complete cover of `table` (possibly the floor) and
/// records every downgrade in `resilience`.
std::vector<ParityFunc> select_parities_resilient(
    const DetectabilityTable& table, const PipelineOptions& opts,
    const Deadline& deadline, Algorithm1Stats* stats,
    std::span<const ParityFunc> warm_start, ResilienceReport& resilience);

/// The always-feasible answer-quality floor: one single-bit parity function
/// per needed observable bit (the shape of duplicate-and-compare). Computed
/// in one pass over the table; covers every case unconditionally.
std::vector<ParityFunc> duplication_floor_cover(const DetectabilityTable& table);

}  // namespace ced::core
