#include "core/verify.hpp"

#include "core/rng.hpp"
#include "sim/fault_sim.hpp"

namespace ced::core {
namespace {

struct WalkOutcome {
  std::size_t activations = 0;
  std::size_t violations = 0;
  int max_latency = 0;
  bool any_error = false;
};

/// Runs one input walk with an optional fault and scores detection latency.
WalkOutcome run_walk(const fsm::FsmCircuit& circuit, const CedHardware& hw,
                     const logic::Injection* inj, std::uint64_t start_state,
                     int steps, int bound, Rng& rng,
                     std::vector<std::string>* messages) {
  WalkOutcome out;
  const std::uint64_t input_mask =
      (std::uint64_t{1} << circuit.r()) - 1;
  std::uint64_t state = start_state;
  int pending = -1;  // transition index of the earliest undetected activation

  for (int t = 0; t < steps; ++t) {
    const std::uint64_t a = rng.next() & input_mask;
    const std::uint64_t obs = circuit.eval(a, state, inj);
    const bool err = hw.error_asserted(a, state, obs);

    if (inj != nullptr) {
      const std::uint64_t golden = circuit.eval(a, state);
      if (obs != golden && pending < 0) {
        pending = t;
        ++out.activations;
      }
    }

    if (err) {
      out.any_error = true;
      if (pending >= 0) {
        const int lat = t - pending + 1;
        out.max_latency = std::max(out.max_latency, lat);
        if (lat > bound) {
          ++out.violations;
          if (messages && messages->size() < 8) {
            messages->push_back("detection after " + std::to_string(lat) +
                                " transitions (bound " +
                                std::to_string(bound) + ")");
          }
        }
        pending = -1;
      }
      // System-level recovery: once the error signal fires, the machine is
      // restarted. Without this, later activations could begin at corrupted
      // state codes outside the enumerated (reachable) activation set.
      state = circuit.enc.reset_code;
      continue;
    }
    if (pending >= 0 && t - pending + 1 >= bound) {
      ++out.violations;
      if (messages && messages->size() < 8) {
        messages->push_back(
            "no detection within " + std::to_string(bound) +
            " transitions of activation at state code " +
            std::to_string(state));
      }
      pending = -1;
      state = circuit.enc.reset_code;
      continue;
    }

    state = circuit.next_state_of(obs);
  }
  return out;
}

}  // namespace

VerifyResult verify_bounded_detection(const fsm::FsmCircuit& circuit,
                                      const CedHardware& hw,
                                      std::span<const sim::StuckAtFault> faults,
                                      int latency_bound,
                                      const VerifyOptions& opts) {
  VerifyResult res;
  res.faults_total = faults.size();
  Rng rng(opts.seed);

  const auto reachable =
      sim::reachable_codes(circuit, circuit.enc.reset_code);

  // Fault-free runs: the error signal must stay silent.
  for (int w = 0; w < opts.fault_free_walks; ++w) {
    const std::uint64_t start =
        reachable[static_cast<std::size_t>(w) % reachable.size()];
    const auto out = run_walk(circuit, hw, nullptr, start, opts.walk_length,
                              latency_bound, rng, nullptr);
    if (out.any_error) {
      ++res.false_alarms;
      if (res.messages.size() < 8) {
        res.messages.push_back("false alarm in fault-free walk " +
                               std::to_string(w));
      }
    }
  }

  for (const auto& f : faults) {
    const logic::Injection inj = f.injection();
    bool activated = false;
    for (int w = 0; w < opts.walks; ++w) {
      const std::uint64_t start =
          reachable[(static_cast<std::size_t>(w) + f.net) % reachable.size()];
      const auto out = run_walk(circuit, hw, &inj, start, opts.walk_length,
                                latency_bound, rng, &res.messages);
      res.activations_checked += out.activations;
      res.violations += out.violations;
      res.max_latency_observed =
          std::max(res.max_latency_observed, out.max_latency);
      if (out.activations > 0) activated = true;
    }
    if (activated) ++res.faults_activated;
  }
  return res;
}

}  // namespace ced::core
