#include "core/ilp.hpp"

#include <stdexcept>

namespace ced::core {
namespace {

void add_beta_variables(LpFormulation& f) {
  f.beta_var.resize(static_cast<std::size_t>(f.q) * f.n);
  for (int l = 0; l < f.q; ++l) {
    for (int j = 0; j < f.n; ++j) {
      f.beta_var[static_cast<std::size_t>(l) * f.n + j] =
          f.problem.add_variable(0.0, 1.0, 1.0);  // objective: sparsity
    }
  }
  f.problem.set_objective_sense(lp::Objective::kMinimize);
}

}  // namespace

LpFormulation build_lp(const DetectabilityTable& table,
                       std::span<const std::uint32_t> rows, int q) {
  LpFormulation f;
  f.q = q;
  f.n = table.num_bits;
  f.p = table.latency;
  f.rows.assign(rows.begin(), rows.end());
  add_beta_variables(f);

  // r^{(lk)}_i in [0,1]; only steps k < length(i) exist.
  for (std::uint32_t row : rows) {
    const ErroneousCase& ec = table.cases[row];
    std::vector<std::pair<int, double>> cover_terms;
    for (int l = 0; l < q; ++l) {
      for (int k = 0; k < ec.length; ++k) {
        const int r_var = f.problem.add_variable(0.0, 1.0, 0.0);
        // r - V(i,:,k) beta^{(l)} <= 0, written as kLe so the simplex can
        // seed the row's basis with its slack (no artificial needed).
        std::vector<std::pair<int, double>> terms;
        for (int j = 0; j < f.n; ++j) {
          if ((ec.diff[static_cast<std::size_t>(k)] >> j) & 1) {
            terms.emplace_back(
                f.beta_var[static_cast<std::size_t>(l) * f.n + j], -1.0);
          }
        }
        terms.emplace_back(r_var, 1.0);
        f.problem.add_constraint(std::move(terms), lp::Relation::kLe, 0.0);
        cover_terms.emplace_back(r_var, 1.0);
      }
    }
    // sum_{l,k} r^{(lk)}_i >= 1.
    f.problem.add_constraint(std::move(cover_terms), lp::Relation::kGe, 1.0);
  }
  return f;
}

LpFormulation build_lp_statement5(const DetectabilityTable& table,
                                  std::span<const std::uint32_t> rows, int q) {
  LpFormulation f;
  f.q = q;
  f.n = table.num_bits;
  f.p = table.latency;
  f.rows.assign(rows.begin(), rows.end());
  add_beta_variables(f);

  const double w_upper = static_cast<double>(f.n) / 2.0;
  for (std::uint32_t row : rows) {
    const ErroneousCase& ec = table.cases[row];
    std::vector<std::pair<int, double>> cover_terms;
    for (int l = 0; l < q; ++l) {
      for (int k = 0; k < ec.length; ++k) {
        const int r_var = f.problem.add_variable(0.0, 1.0, 0.0);
        const int w_var = f.problem.add_variable(0.0, w_upper, 0.0);
        // V(i,:,k) beta^{(l)} = 2 w + r.
        std::vector<std::pair<int, double>> terms;
        for (int j = 0; j < f.n; ++j) {
          if ((ec.diff[static_cast<std::size_t>(k)] >> j) & 1) {
            terms.emplace_back(
                f.beta_var[static_cast<std::size_t>(l) * f.n + j], 1.0);
          }
        }
        terms.emplace_back(w_var, -2.0);
        terms.emplace_back(r_var, -1.0);
        f.problem.add_constraint(std::move(terms), lp::Relation::kEq, 0.0);
        cover_terms.emplace_back(r_var, 1.0);
      }
    }
    f.problem.add_constraint(std::move(cover_terms), lp::Relation::kGe, 1.0);
  }
  return f;
}

std::vector<std::vector<double>> beta_values(const LpFormulation& f,
                                             const lp::LpResult& r) {
  if (r.status != lp::Status::kOptimal) {
    throw std::invalid_argument("beta_values: LP was not solved");
  }
  std::vector<std::vector<double>> out(
      static_cast<std::size_t>(f.q),
      std::vector<double>(static_cast<std::size_t>(f.n), 0.0));
  for (int l = 0; l < f.q; ++l) {
    for (int j = 0; j < f.n; ++j) {
      out[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)] =
          r.x[static_cast<std::size_t>(
              f.beta_var[static_cast<std::size_t>(l) * f.n + j])];
    }
  }
  return out;
}

}  // namespace ced::core
