#include "core/algorithm1.hpp"

#include <algorithm>
#include <atomic>

#include "common/parallel.hpp"
#include "core/rng.hpp"

namespace ced::core {
namespace {

/// Number of detecting (bit, step) entries of a case: rows with few entries
/// constrain the LP the most and are sampled first.
int hardness_of(const ErroneousCase& ec) {
  int total = 0;
  for (int k = 0; k < ec.length; ++k) {
    total += std::popcount(ec.diff[static_cast<std::size_t>(k)]);
  }
  return total;
}

/// Insertion-ordered row list with O(1) duplicate rejection: the LP rows
/// and the stride spread overlap, and full-table checks keep teaching the
/// sample rows it already knows — without dedup every screening trial
/// re-evaluates those indices.
class RowSet {
 public:
  explicit RowSet(std::size_t universe) : in_(universe, false) {}

  void add(std::uint32_t r) {
    if (in_[r]) return;
    in_[r] = true;
    rows_.push_back(r);
  }

  const std::vector<std::uint32_t>& rows() const { return rows_; }

 private:
  std::vector<bool> in_;
  std::vector<std::uint32_t> rows_;
};

/// One randomized rounding per eq. (1), with a mild late-iteration blend
/// toward 1/2 on fractional bits to escape repeatedly failing extreme
/// points.
std::vector<ParityFunc> round_once(const std::vector<std::vector<double>>& x,
                                   double blend, Rng& rng) {
  std::vector<ParityFunc> betas;
  for (const auto& tree : x) {
    ParityFunc b = 0;
    for (std::size_t j = 0; j < tree.size(); ++j) {
      double prob = tree[j];
      if (prob > 1e-9 && prob < 1.0 - 1e-9) {
        prob = (1.0 - blend) * prob + blend * 0.5;
      }
      if (rng.flip(prob)) b |= std::uint64_t{1} << j;
    }
    if (b != 0) betas.push_back(b);
  }
  return betas;
}

/// Hill-climb repair over a row subset: flips bits of the candidate trees
/// to reduce the number of uncovered rows (exact GF(2) evaluation, but only
/// on `rows` — callers re-verify against the full table). On the kernel
/// path each tree holds a BetaCursor over a subset kernel, so probing a
/// flip is one column XOR per step plus a T-way OR, instead of a full
/// per-case re-scan; acceptance rule and scan order match the scalar loop,
/// so the repaired trees are identical.
bool repair_on(std::vector<ParityFunc>& betas, const DetectabilityTable& table,
               std::span<const std::uint32_t> rows, int n) {
  if (kernel_mode() == KernelMode::kScalar) {
    auto uncovered = uncovered_among(betas, table, rows);
    bool improved = true;
    while (!uncovered.empty() && improved) {
      improved = false;
      for (std::size_t t = 0; t < betas.size() && !uncovered.empty(); ++t) {
        for (int j = 0; j < n; ++j) {
          const ParityFunc saved = betas[t];
          betas[t] ^= std::uint64_t{1} << j;
          auto trial = uncovered_among(betas, table, rows);
          if (trial.size() < uncovered.size()) {
            uncovered = std::move(trial);
            improved = true;
          } else {
            betas[t] = saved;
          }
        }
      }
    }
    return uncovered.empty();
  }

  const CoverKernel sub(table, rows);
  std::vector<BetaCursor> cur;
  cur.reserve(betas.size());
  for (const ParityFunc b : betas) cur.emplace_back(sub, b);
  std::vector<std::uint64_t> acc(sub.num_words());
  auto count_uncovered = [&]() {
    std::fill(acc.begin(), acc.end(), 0);
    for (const BetaCursor& c : cur) c.or_covered_into(acc.data());
    return sub.num_rows() - sub.count(acc.data());
  };
  std::size_t unc = count_uncovered();
  bool improved = true;
  while (unc > 0 && improved) {
    improved = false;
    for (std::size_t t = 0; t < cur.size() && unc > 0; ++t) {
      for (int j = 0; j < n; ++j) {
        cur[t].flip(j);
        const std::size_t trial = count_uncovered();
        if (trial < unc) {
          unc = trial;
          improved = true;
        } else {
          cur[t].flip(j);
        }
      }
    }
  }
  for (std::size_t t = 0; t < cur.size(); ++t) betas[t] = cur[t].beta();
  return unc == 0;
}

/// Full-table uncovered rows through the shared kernel when available.
std::vector<std::uint32_t> full_uncovered(const SolverContext& ctx,
                                          std::span<const ParityFunc> betas) {
  if (ctx.kernel) return ctx.kernel->uncovered(betas);
  return uncovered_cases(betas, *ctx.table);
}

}  // namespace

SolverContext::SolverContext(const DetectabilityTable& t) : table(&t) {
  if (kernel_mode() == KernelMode::kBitsliced) kernel.emplace(t);
  hardness.resize(t.cases.size());
  for (std::size_t i = 0; i < t.cases.size(); ++i) {
    hardness[i] = hardness_of(t.cases[i]);
  }
  hard_order.resize(t.cases.size());
  for (std::size_t i = 0; i < hard_order.size(); ++i) {
    hard_order[i] = static_cast<std::uint32_t>(i);
  }
  std::stable_sort(hard_order.begin(), hard_order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return hardness[a] < hardness[b];
                   });
}

std::optional<std::vector<ParityFunc>> solve_for_q(
    const DetectabilityTable& table, int q, const Algorithm1Options& opts,
    Algorithm1Stats* stats, const SolverContext* ctx) {
  if (table.cases.empty()) return std::vector<ParityFunc>{};
  if (q <= 0) return std::nullopt;

  // The hardness ordering and the kernel depend only on the table; a
  // caller probing several q values (the binary search) passes one context
  // down instead of recomputing them per probe.
  std::optional<SolverContext> local_ctx;
  if (ctx == nullptr) {
    local_ctx.emplace(table);
    ctx = &*local_ctx;
  }

  // Base stream for this q; every rounding trial forks its own child
  // stream from (base, round, trial-index), so trials are independent and
  // reproducible regardless of how they are scheduled across threads.
  const Rng base(opts.seed ^ (static_cast<std::uint64_t>(q) << 32));
  const int threads = resolve_threads(opts.threads);
  const std::size_t lp_limit =
      std::min(table.cases.size(),
               static_cast<std::size_t>(std::max(opts.lp_sample_rows, 0)));
  std::vector<std::uint32_t> rows(ctx->hard_order.begin(),
                                  ctx->hard_order.begin() +
                                      static_cast<std::ptrdiff_t>(lp_limit));
  std::vector<bool> in_lp(table.cases.size(), false);
  for (auto rid : rows) in_lp[rid] = true;

  // Verification sample: the LP rows plus a spread over the whole table
  // (deduplicated — the spread overlaps the LP rows). Roundings are
  // screened against it; only screen-passing candidates pay for the exact
  // full-table Statement-4 check.
  RowSet check(table.cases.size());
  for (auto rid : rows) check.add(rid);
  if (table.cases.size() > opts.verify_sample_cap) {
    const std::size_t stride = table.cases.size() / opts.verify_sample_cap;
    for (std::size_t i = 0; i < table.cases.size(); i += stride) {
      check.add(static_cast<std::uint32_t>(i));
    }
  } else {
    for (std::size_t i = 0; i < table.cases.size(); ++i) {
      check.add(static_cast<std::uint32_t>(i));
    }
  }

  // Full exact check with sample refinement: a candidate that covers the
  // sample but misses full-table rows teaches the sample those rows.
  auto full_check = [&](std::vector<ParityFunc>& betas) -> bool {
    const auto missed = full_uncovered(*ctx, betas);
    if (missed.empty()) return true;
    for (std::size_t i = 0; i < missed.size() && i < 64; ++i) {
      check.add(missed[i]);
    }
    return false;
  };

  std::vector<ParityFunc> best_attempt;
  std::size_t best_uncovered = table.cases.size() + 1;

  // Forward the wall-clock budget and the observability sinks into each
  // LP solve (the simplex records pivots and a span per solve).
  lp::SolverOptions lp_opts = opts.lp;
  if (opts.deadline.armed() && opts.deadline.time_point() < lp_opts.deadline) {
    lp_opts.deadline = opts.deadline.time_point();
  }
  lp_opts.obs = opts.obs;

  for (int round = 0; round < opts.row_rounds; ++round) {
    if (opts.deadline.expired()) {
      if (stats) stats->deadline_hit = true;
      break;
    }
    LpFormulation f = opts.use_statement5
                          ? build_lp_statement5(table, rows, q)
                          : build_lp(table, rows, q);
    const lp::LpResult res = lp::solve(f.problem, lp_opts);
    if (stats) {
      ++stats->lp_solves;
      stats->lp_iterations += res.iterations;
    }
    if (res.status == lp::Status::kInfeasible) return std::nullopt;
    if (res.status != lp::Status::kOptimal) {
      // Solver budget hit (iteration or time limit): record it instead of
      // silently abandoning the round, then fall through to repair.
      if (stats) {
        stats->lp_budget_hit = true;
        if (res.status == lp::Status::kTimeLimit) stats->deadline_hit = true;
      }
      break;
    }
    const auto x = beta_values(f, res);

    // Algorithm 1's ITER trials are mutually independent given the LP
    // solution, so run them concurrently: each trial rounds with its own
    // derived Rng stream and is screened against a snapshot of the sample
    // rows (one shared subset kernel — immutable, hence safely read by all
    // workers). The sequential resolution below walks trials in index
    // order — first full-check success by lowest trial index wins — so the
    // outcome is identical for every thread count.
    struct Trial {
      std::vector<ParityFunc> betas;
      std::size_t uncov = 0;
      bool ran = false;
    };
    std::vector<Trial> trials(static_cast<std::size_t>(std::max(opts.iter, 0)));
    const std::vector<std::uint32_t> screen = check.rows();
    std::optional<CoverKernel> screen_kernel;
    if (ctx->kernel) screen_kernel.emplace(table, screen);
    std::atomic<int> executed{0};
    parallel_for(threads, trials.size(), [&](std::size_t it) {
      if (opts.deadline.expired()) return;  // trial skipped, noted below
      const double blend =
          opts.iter <= 1
              ? 0.0
              : 0.5 * std::max(0.0, (2.0 * static_cast<double>(it) -
                                     opts.iter) /
                                        static_cast<double>(opts.iter));
      Rng trial_rng = base.stream(
          (static_cast<std::uint64_t>(round) << 32) + it);
      Trial& tr = trials[it];
      tr.betas = round_once(x, blend, trial_rng);
      tr.uncov = screen_kernel
                     ? screen_kernel->uncovered_count(tr.betas)
                     : uncovered_among(tr.betas, table, screen).size();
      tr.ran = true;
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    if (stats) {
      const auto ran =
          static_cast<std::uint64_t>(executed.load(std::memory_order_relaxed));
      stats->roundings += static_cast<int>(ran);
      // Screening-cost accounting at trial-batch granularity (outside the
      // decision path; the search never reads these).
      const std::uint64_t evals = ran * screen.size();
      if (screen_kernel) {
        stats->kernel_case_evals += evals;
      } else {
        stats->scalar_case_evals += evals;
      }
    }
    bool trials_skipped = false;
    for (Trial& tr : trials) {
      if (!tr.ran) {
        trials_skipped = true;
        continue;
      }
      if (tr.uncov == 0 && full_check(tr.betas)) {
        return prune_redundant(tr.betas, table, ctx->kernel_ptr());
      }
      if (tr.uncov < best_uncovered &&
          tr.betas.size() <= static_cast<std::size_t>(q)) {
        best_uncovered = tr.uncov;
        best_attempt = std::move(tr.betas);
      }
    }
    if (trials_skipped) {
      if (stats) stats->deadline_hit = true;
      // Out of time mid-batch: fall through to row generation once, the
      // outer loop's own deadline check ends the search.
    }

    // Row generation: add the hardest still-violated sample rows of the
    // best attempt and re-solve.
    if (best_attempt.empty()) break;
    auto uncov = uncovered_among(best_attempt, table, check.rows());
    std::stable_sort(uncov.begin(), uncov.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return ctx->hardness[a] < ctx->hardness[b];
                     });
    bool added = false;
    for (std::uint32_t rid : uncov) {
      if (in_lp[rid]) continue;
      in_lp[rid] = true;
      rows.push_back(rid);
      added = true;
      if (rows.size() >=
          static_cast<std::size_t>(opts.lp_sample_rows) *
              static_cast<std::size_t>(round + 2)) {
        break;
      }
    }
    if (!added && round > 0) break;  // LP already sees every hard row
  }

  if (opts.repair && !best_attempt.empty()) {
    // Pad with empty trees up to q so repair has full freedom.
    while (best_attempt.size() < static_cast<std::size_t>(q)) {
      best_attempt.push_back(0);
    }
    for (auto& b : best_attempt) {
      if (b == 0) b = 1;  // give the climber a starting bit
    }
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (opts.deadline.expired()) {
        if (stats) stats->deadline_hit = true;
        break;
      }
      if (stats) ++stats->repairs;
      if (!repair_on(best_attempt, table, check.rows(), table.num_bits)) break;
      if (full_check(best_attempt)) {
        return prune_redundant(best_attempt, table, ctx->kernel_ptr());
      }
      // full_check extended the sample with missed cases; repair again.
    }
  }
  return std::nullopt;
}

namespace {

/// Seeds the post-optimization verification sample: a spread over the
/// whole table (missed full-table rows are added — deduplicated — as the
/// pass learns them).
void seed_verification_sample(RowSet& check, const DetectabilityTable& table,
                              std::size_t cap) {
  if (table.cases.size() > cap) {
    const std::size_t stride = table.cases.size() / cap;
    for (std::size_t i = 0; i < table.cases.size(); i += stride) {
      check.add(static_cast<std::uint32_t>(i));
    }
  } else {
    for (std::size_t i = 0; i < table.cases.size(); ++i) {
      check.add(static_cast<std::uint32_t>(i));
    }
  }
}

/// Tries to shrink `best` by dropping one tree and hill-climb repairing the
/// remainder (sample-screened, full-table verified). Loops until no single
/// drop can be repaired.
void drop_and_repair(std::vector<ParityFunc>& best,
                     const DetectabilityTable& table,
                     const Algorithm1Options& opts, Algorithm1Stats* stats,
                     const SolverContext& ctx) {
  RowSet check(table.cases.size());
  seed_verification_sample(check, table, opts.verify_sample_cap);
  bool improved = true;
  while (improved && best.size() > 1) {
    improved = false;
    for (std::size_t drop = 0; drop < best.size(); ++drop) {
      if (opts.deadline.expired()) {
        if (stats) stats->deadline_hit = true;
        return;
      }
      std::vector<ParityFunc> cand;
      cand.reserve(best.size() - 1);
      for (std::size_t i = 0; i < best.size(); ++i) {
        if (i != drop) cand.push_back(best[i]);
      }
      bool covered = false;
      for (int attempt = 0; attempt < 4; ++attempt) {
        if (stats) ++stats->repairs;
        if (!repair_on(cand, table, check.rows(), table.num_bits)) break;
        const auto missed = full_uncovered(ctx, cand);
        if (missed.empty()) {
          covered = true;
          break;
        }
        for (std::size_t i = 0; i < missed.size() && i < 64; ++i) {
          check.add(missed[i]);
        }
      }
      if (covered) {
        best = prune_redundant(cand, table, ctx.kernel_ptr());
        improved = true;
        break;
      }
    }
  }
}

}  // namespace

std::vector<ParityFunc> minimize_parity_functions(
    const DetectabilityTable& table, const Algorithm1Options& opts,
    Algorithm1Stats* stats, std::span<const ParityFunc> warm_start,
    const SolverContext* shared_ctx) {
  if (table.cases.empty()) {
    if (stats) stats->final_q = 0;
    return {};
  }

  // Instrumentation always reads through a non-null stats block so the
  // metric fold below works for callers that pass none.
  Algorithm1Stats local_stats;
  Algorithm1Stats* st = stats ? stats : &local_stats;
  const Algorithm1Stats entry = *st;  // fold deltas, not lifetime totals

  obs::ScopedSpan algo_span(opts.obs, "algorithm1");
  Algorithm1Options obs_opts = opts;
  obs_opts.obs = opts.obs.under(algo_span.id());

  // Everything that depends only on the table — the bit-sliced kernel and
  // the hardness ordering — is computed once and shared by the greedy
  // seeding, every q probed by the binary search, and the post-pass. The
  // cascade driver passes its own context down; standalone callers build
  // a local one.
  std::optional<SolverContext> local_ctx;
  if (shared_ctx == nullptr) local_ctx.emplace(table);
  const SolverContext& ctx = shared_ctx ? *shared_ctx : *local_ctx;

  // Greedy upper bound doubles as the fallback solution; it shares the
  // overall deadline so even the seeding degrades gracefully.
  GreedyOptions greedy_opts = opts.greedy;
  if (opts.deadline.armed() && !greedy_opts.deadline.armed()) {
    greedy_opts.deadline = opts.deadline;
  }
  greedy_opts.obs = obs_opts.obs;
  GreedyStats greedy_stats;
  const std::vector<ParityFunc> greedy =
      greedy_cover(table, greedy_opts, &greedy_stats, ctx.kernel_ptr());
  if (stats && greedy_stats.deadline_hit) {
    stats->greedy_degraded = true;
    stats->deadline_hit = true;
  }
  std::vector<ParityFunc> best = greedy;
  bool from_greedy = true;
  const bool warm_covers =
      !warm_start.empty() && warm_start.size() <= best.size() &&
      (ctx.kernel ? ctx.kernel->covers_all(warm_start)
                  : covers_all(warm_start, table));
  if (warm_covers) {
    best.assign(warm_start.begin(), warm_start.end());
    best = prune_redundant(best, table, ctx.kernel_ptr());
    from_greedy = false;
  }

  int left = 1;
  int right = static_cast<int>(best.size());
  while (left < right) {
    if (opts.deadline.expired()) {
      // Out of time: the incumbent (greedy or a prior q's solution) is a
      // verified complete cover — return it instead of searching on.
      st->deadline_hit = true;
      break;
    }
    const int q = left + (right - left) / 2;
    st->qs_tried.push_back(q);
    obs::ScopedSpan probe(obs_opts.obs, "solve-q");
    probe.attr("q", std::to_string(q));
    Algorithm1Options probe_opts = obs_opts;
    probe_opts.obs = obs_opts.obs.under(probe.id());
    auto sol = solve_for_q(table, q, probe_opts, st, &ctx);
    probe.attr("cover", sol ? "yes" : "no");
    if (sol && sol->size() < best.size()) {
      best = std::move(*sol);
      from_greedy = false;
      right = static_cast<int>(best.size());
    } else if (sol) {
      // Found a cover but not smaller than current best; still shrink the
      // search window.
      right = q;
      from_greedy = false;
    } else {
      left = q + 1;
    }
  }

  if (opts.post_optimize && !opts.deadline.expired()) {
    obs::ScopedSpan post(obs_opts.obs, "post-optimize");
    const std::size_t before = best.size();
    drop_and_repair(best, table, opts, st, ctx);
    if (best.size() < before) from_greedy = false;
    // The incumbent may be a warm start the local search cannot shrink;
    // give the independent greedy solution the same chance when it ties.
    if (!from_greedy && greedy.size() <= best.size()) {
      std::vector<ParityFunc> alt = greedy;
      drop_and_repair(alt, table, opts, st, ctx);
      if (alt.size() < best.size()) best = std::move(alt);
    }
  }

  st->final_q = static_cast<int>(best.size());
  st->greedy_fallback = from_greedy;

  // Fold the search's metrics (deltas over this call, so a reused stats
  // block never double-counts) and annotate the span with the binary-search
  // trajectory. All write-only: nothing above ever read a sink.
  if (obs::MetricsRegistry* m = opts.obs.metrics) {
    obs::MetricsShard shard(m);
    shard.add("ced_solve_lp_solves_total",
              static_cast<std::uint64_t>(st->lp_solves - entry.lp_solves));
    shard.add("ced_solve_lp_pivots_total",
              static_cast<std::uint64_t>(st->lp_iterations -
                                         entry.lp_iterations));
    shard.add("ced_solve_roundings_total",
              static_cast<std::uint64_t>(st->roundings - entry.roundings));
    shard.add("ced_solve_repairs_total",
              static_cast<std::uint64_t>(st->repairs - entry.repairs));
    shard.add("ced_solve_kernel_case_evals_total",
              st->kernel_case_evals - entry.kernel_case_evals);
    shard.add("ced_solve_scalar_case_evals_total",
              st->scalar_case_evals - entry.scalar_case_evals);
    shard.add("ced_solve_q_probes_total",
              static_cast<std::uint64_t>(st->qs_tried.size() -
                                         entry.qs_tried.size()));
  }
  if (opts.obs.tracer != nullptr) {
    std::string qs;
    for (std::size_t i = entry.qs_tried.size(); i < st->qs_tried.size(); ++i) {
      if (!qs.empty()) qs += ",";
      qs += std::to_string(st->qs_tried[i]);
    }
    algo_span.attr("qs_tried", qs);
    algo_span.attr("final_q", std::to_string(st->final_q));
    algo_span.attr("greedy_fallback", from_greedy ? "yes" : "no");
  }
  return best;
}

}  // namespace ced::core
