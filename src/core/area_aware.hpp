#pragma once

#include "core/algorithm1.hpp"
#include "core/parity_synth.hpp"

namespace ced::core {

/// Options for area-aware parity selection.
struct AreaAwareOptions {
  /// Count-minimization used to obtain the starting cover.
  Algorithm1Options algo;
  /// Synthesis settings used when scoring a candidate (the score is the
  /// real post-synthesis CED area, not an estimate).
  CedSynthOptions ced;
  logic::CellLibrary library = logic::CellLibrary::mcnc();
  /// Local-search sweeps over (tree, bit) flip moves.
  int passes = 2;
  /// Hard budget on full cost evaluations (each one synthesizes the
  /// compaction trees, prediction logic and comparator).
  int max_evaluations = 120;
  std::uint64_t seed = 0xa3ea;
};

struct AreaAwareResult {
  std::vector<ParityFunc> parities;
  double initial_area = 0.0;  ///< cost of the count-minimal cover
  double final_area = 0.0;    ///< cost after area-driven local search
  int evaluations = 0;        ///< full synthesis evaluations spent
};

/// §5 of the paper observes that minimizing the *number* of parity
/// functions does not always minimize hardware (the dk16 anomaly) and that
/// the literature lacks area-driven selection. This implements that missing
/// step: starting from the count-minimal cover of Algorithm 1, a local
/// search over single-bit tree edits accepts only moves that (a) keep the
/// cover complete (exact Statement-4 check) and (b) reduce the *synthesized*
/// CED area. The tree count never increases.
AreaAwareResult minimize_parity_area(const fsm::FsmCircuit& circuit,
                                     const DetectabilityTable& table,
                                     const AreaAwareOptions& opts = {});

}  // namespace ced::core
