#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "core/exact.hpp"

namespace ced::core {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

PipelineReport report_for(const fsm::FsmCircuit& circuit,
                          const std::vector<sim::StuckAtFault>& faults,
                          const DetectabilityTable& table,
                          const PipelineOptions& opts,
                          std::span<const ParityFunc> warm_start,
                          bool warm_is_lower_latency_cover = false) {
  PipelineReport rep;
  rep.inputs = circuit.r();
  rep.state_bits = circuit.s();
  rep.outputs = circuit.o();
  const auto orig = logic::measure_area(
      circuit.netlist, opts.library,
      static_cast<std::size_t>(circuit.s()));  // state register flip-flops
  rep.orig_gates = orig.gates;
  rep.orig_area = orig.area;
  rep.num_faults = faults.size();
  rep.num_detectable_faults = table.num_detectable_faults;
  rep.num_cases = table.cases.size();
  rep.latency = table.latency;

  auto t0 = std::chrono::steady_clock::now();
  rep.parities = select_parities(table, opts.solver, opts.algo,
                                 &rep.algo_stats, warm_start);
  // A cover for a smaller latency bound is always a valid cover for this
  // one (detecting earlier is allowed), even when this table was
  // conservatively strengthened and the solver could not do as well.
  if (warm_is_lower_latency_cover && !warm_start.empty() &&
      warm_start.size() < rep.parities.size()) {
    rep.parities.assign(warm_start.begin(), warm_start.end());
    rep.algo_stats.final_q = static_cast<int>(rep.parities.size());
  }
  rep.t_solve = seconds_since(t0);
  rep.num_trees = static_cast<int>(rep.parities.size());

  t0 = std::chrono::steady_clock::now();
  const CedHardware hw = synthesize_ced(circuit, rep.parities, opts.ced);
  const auto cost = hw.cost(opts.library);
  rep.ced_gates = cost.gates;
  rep.ced_area = cost.area;
  rep.t_ced = seconds_since(t0);
  return rep;
}

}  // namespace

std::vector<ParityFunc> select_parities(const DetectabilityTable& table,
                                        SolverKind solver,
                                        const Algorithm1Options& algo,
                                        Algorithm1Stats* stats,
                                        std::span<const ParityFunc> warm_start) {
  switch (solver) {
    case SolverKind::kGreedy:
      return greedy_cover(table, algo.greedy);
    case SolverKind::kExact: {
      if (auto sol = exact_min_cover(table)) {
        if (stats) stats->final_q = static_cast<int>(sol->size());
        return *sol;
      }
      return minimize_parity_functions(table, algo, stats, warm_start);
    }
    case SolverKind::kLpRounding:
      return minimize_parity_functions(table, algo, stats, warm_start);
  }
  return {};
}

PipelineReport run_pipeline(const fsm::Fsm& f, const PipelineOptions& opts) {
  auto sweep = run_latency_sweep(f, std::vector<int>{opts.latency}, opts);
  return sweep.front();
}

std::vector<PipelineReport> run_latency_sweep(const fsm::Fsm& f,
                                              std::span<const int> latencies,
                                              const PipelineOptions& opts) {
  auto t0 = std::chrono::steady_clock::now();
  const fsm::FsmCircuit circuit = fsm::synthesize_fsm(f, opts.encoding,
                                                      opts.synth);
  const double t_synth = seconds_since(t0);

  const std::vector<sim::StuckAtFault> faults =
      sim::enumerate_stuck_at(circuit.netlist, opts.faults);

  const int p_max = *std::max_element(latencies.begin(), latencies.end());
  ExtractOptions ex = opts.extract;
  ex.latency = p_max;
  t0 = std::chrono::steady_clock::now();
  const std::vector<DetectabilityTable> tables =
      extract_cases_multi(circuit, faults, ex);
  const double t_extract = seconds_since(t0);

  std::vector<PipelineReport> reports;
  std::vector<ParityFunc> warm;
  for (int p : latencies) {
    const DetectabilityTable& table = tables[static_cast<std::size_t>(p - 1)];
    // A cover for latency p stays valid at p+1 (detecting at step 1 is
    // always allowed), so sweeping in ascending order lets each latency
    // warm-start from the previous solution; q(p) becomes monotone.
    const bool ascending = warm.empty() || p >= reports.back().latency;
    PipelineReport rep =
        report_for(circuit, faults, table, opts, warm, ascending);
    rep.t_synth = t_synth;
    rep.t_extract = t_extract;
    warm = rep.parities;
    reports.push_back(std::move(rep));
  }
  return reports;
}

}  // namespace ced::core
