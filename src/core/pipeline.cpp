#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/solver.hpp"

namespace ced::core {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

PipelineReport report_for(const fsm::FsmCircuit& circuit,
                          const std::vector<sim::StuckAtFault>& faults,
                          const DetectabilityTable& table,
                          const PipelineOptions& opts,
                          const Deadline& deadline,
                          std::span<const ParityFunc> warm_start,
                          bool warm_is_lower_latency_cover,
                          obs::StageClock& clock, const obs::Sinks& run_obs) {
  PipelineReport rep;
  rep.inputs = circuit.r();
  rep.state_bits = circuit.s();
  rep.outputs = circuit.o();
  const auto orig = logic::measure_area(
      circuit.netlist, opts.library,
      static_cast<std::size_t>(circuit.s()));  // state register flip-flops
  rep.orig_gates = orig.gates;
  rep.orig_area = orig.area;
  rep.num_faults = faults.size();
  rep.num_detectable_faults = table.num_detectable_faults;
  rep.num_cases = table.cases.size();
  rep.latency = table.latency;

  rep.resilience.extraction_truncated = table.truncated;
  rep.resilience.table_strengthened = table.strengthened;
  if (table.truncated) {
    rep.resilience.record(Stage::kExtract, StatusCode::kTruncated,
                          table.truncation_reason, 0.0, table.cases.size());
  }

  const std::uint64_t solve_span =
      clock.open(run_obs.tracer, "solve", run_obs.parent_span);
  if (run_obs.tracer != nullptr && solve_span != 0) {
    run_obs.tracer->attr(solve_span, "latency",
                         std::to_string(table.latency));
  }
  // Reparent the sinks under this report's solve span so the cascade's
  // spans (solver:exact, algorithm1, greedy, lp-solve) nest beneath it.
  PipelineOptions solve_opts;
  const PipelineOptions* effective = &opts;
  if (run_obs.enabled()) {
    solve_opts = opts;
    solve_opts.obs = run_obs.under(solve_span);
    effective = &solve_opts;
  }
  rep.parities = select_parities_resilient(table, *effective, deadline,
                                           &rep.algo_stats, warm_start,
                                           rep.resilience);
  // A cover for a smaller latency bound is always a valid cover for this
  // one (detecting earlier is allowed), even when this table was
  // conservatively strengthened and the solver could not do as well. The
  // shortcut is only sound when the warm cover's source table was complete,
  // so truncated sweeps skip it.
  if (warm_is_lower_latency_cover && !warm_start.empty() &&
      warm_start.size() < rep.parities.size()) {
    rep.parities.assign(warm_start.begin(), warm_start.end());
    rep.algo_stats.final_q = static_cast<int>(rep.parities.size());
  }
  rep.t_solve = clock.close(run_obs.tracer, solve_span);
  rep.num_trees = static_cast<int>(rep.parities.size());

  const std::uint64_t ced_span =
      clock.open(run_obs.tracer, "ced-synth", run_obs.parent_span);
  const CedHardware hw = synthesize_ced(circuit, rep.parities, opts.ced);
  const auto cost = hw.cost(opts.library);
  rep.ced_gates = cost.gates;
  rep.ced_area = cost.area;
  rep.t_ced = clock.close(run_obs.tracer, ced_span);

  if (rep.resilience.status.ok() && rep.resilience.degraded()) {
    rep.resilience.status = Status::truncated(
        Stage::kPipeline,
        "run degraded under budget; cover is valid for the cases covered");
  }
  return rep;
}

/// Builds one classified-but-empty report per requested latency; used when
/// the run cannot proceed at all (invalid input, internal failure).
std::vector<PipelineReport> classified_reports(std::span<const int> latencies,
                                               const PipelineOptions& opts,
                                               Status status) {
  std::vector<PipelineReport> reports;
  for (int p : latencies) {
    PipelineReport rep;
    rep.latency = p;
    rep.resilience.solver_requested = cascade_level_of(opts.solver);
    rep.resilience.solver_used = cascade_level_of(opts.solver);
    rep.resilience.status = status;
    reports.push_back(std::move(rep));
  }
  return reports;
}

}  // namespace

std::vector<ParityFunc> duplication_floor_cover(
    const DetectabilityTable& table) {
  std::uint64_t used = 0;
  std::vector<ParityFunc> out;
  for (const auto& ec : table.cases) {
    for (int k = 0; k < ec.length; ++k) {
      const std::uint64_t w = ec.diff[static_cast<std::size_t>(k)];
      if (w == 0) continue;
      const ParityFunc beta = w & (~w + 1);
      if (!(used & beta)) {
        used |= beta;
        out.push_back(beta);
      }
      break;
    }
  }
  return out;
}

namespace {

/// The degradation cascade on one (possibly condensed) table, driven by
/// the solver_cascade() table (core/solver.hpp): start at the requested
/// level, run each Solver until one certifies a scheme, and record every
/// fall-through. The public wrapper below handles condensation and
/// full-table re-verification.
std::vector<ParityFunc> select_parities_on(
    const DetectabilityTable& table, const PipelineOptions& opts,
    const Deadline& deadline, Algorithm1Stats* stats,
    std::span<const ParityFunc> warm_start, ResilienceReport& resilience) {
  const auto t0 = std::chrono::steady_clock::now();
  resilience.solver_requested = cascade_level_of(opts.solver);
  resilience.solver_used = resilience.solver_requested;
  if (table.cases.empty()) {
    if (stats) stats->final_q = 0;
    return {};
  }

  // One context for every level: the kernel and the hardness ordering
  // depend only on the table, and the run-scoped state (deadline, outputs,
  // warm start, sinks) no longer travels as five parallel parameters.
  SolverContext ctx(table);
  ctx.deadline = deadline;
  ctx.stats = stats;
  ctx.resilience = &resilience;
  ctx.warm_start = warm_start;
  ctx.obs = opts.obs;
  ctx.cascade_start = t0;

  const auto cascade = solver_cascade();
  for (std::size_t i = cascade_entry(opts.solver); i < cascade.size(); ++i) {
    Result<ParityScheme> r = cascade[i]->solve(ctx, opts);
    if (r) {
      resilience.solver_used = r->level;
      return std::move(r->parities);
    }
    // This level could not certify an answer: record the downgrade,
    // naming the level the cascade falls to, and keep going.
    const Solver* next = i + 1 < cascade.size() ? cascade[i + 1] : nullptr;
    std::string detail = r.status().message;
    if (next != nullptr) {
      detail += "; falling back to ";
      detail += next->name();
    }
    resilience.record(r.status().stage, r.status().code, std::move(detail),
                      seconds_since(t0), table.cases.size());
    if (next != nullptr) resilience.solver_used = next->level();
  }

  // Unreachable in practice — the greedy level's single-bit close-out never
  // fails — but keep the cascade total: the duplication floor is computable
  // unconditionally in one pass.
  resilience.record(Stage::kPipeline, StatusCode::kInternal,
                    "every cascade level failed; emitting the duplication "
                    "floor directly",
                    seconds_since(t0), table.cases.size());
  resilience.solver_used = CascadeLevel::kDuplication;
  auto floor = duplication_floor_cover(table);
  if (stats) stats->final_q = static_cast<int>(floor.size());
  return floor;
}

}  // namespace

std::vector<ParityFunc> select_parities_resilient(
    const DetectabilityTable& table, const PipelineOptions& opts,
    const Deadline& deadline, Algorithm1Stats* stats,
    std::span<const ParityFunc> warm_start, ResilienceReport& resilience) {
  if (!opts.condense || table.cases.empty()) {
    return select_parities_on(table, opts, deadline, stats, warm_start,
                              resilience);
  }

  // Subset-dominance condensation (coverkernel.hpp): rows whose word set
  // contains another row's word set add no constraint, so the solvers see
  // a smaller m with the same optimal q.
  const CondensedTable cond = condense_table(table);
  if (stats) stats->condensed_cases = cond.table.cases.size();
  if (cond.removed == 0) {
    return select_parities_on(table, opts, deadline, stats, warm_start,
                              resilience);
  }
  std::vector<ParityFunc> sol = select_parities_on(
      cond.table, opts, deadline, stats, warm_start, resilience);
  // The dominance argument makes a condensed-table cover a full-table
  // cover; re-verify anyway (cheap on the kernel) so a condensation defect
  // could never ship an unsound scheme — fall back to the raw table if the
  // impossible happens.
  if (!covers_all(sol, table)) {
    resilience.record(Stage::kPipeline, StatusCode::kInternal,
                      "condensed-table cover failed full-table verification; "
                      "re-solving on the raw table",
                      0.0, table.cases.size());
    if (stats) stats->condensed_cases = 0;
    return select_parities_on(table, opts, deadline, stats, warm_start,
                              resilience);
  }
  return sol;
}

std::vector<ParityFunc> select_parities(const DetectabilityTable& table,
                                        SolverKind solver,
                                        const Algorithm1Options& algo,
                                        Algorithm1Stats* stats,
                                        std::span<const ParityFunc> warm_start) {
  PipelineOptions opts;
  opts.solver = solver;
  opts.algo = algo;
  opts.threads = algo.threads;
  ResilienceReport scratch;
  return select_parities_resilient(table, opts, algo.deadline, stats,
                                   warm_start, scratch);
}

std::vector<PipelineReport> run_latency_sweep_impl(
    const fsm::Fsm& f, std::span<const int> latencies,
    const PipelineOptions& opts) {
  if (latencies.empty()) return {};
  const Deadline deadline = Deadline::from(opts.budget);
  for (int p : latencies) {
    if (p < 1 || p > kMaxLatency) {
      return classified_reports(
          latencies, opts,
          Status::invalid_input(Stage::kPipeline,
                                "latency bound " + std::to_string(p) +
                                    " out of range [1, " +
                                    std::to_string(kMaxLatency) + "]"));
    }
  }

  try {
    obs::ScopedSpan run_span(opts.obs, "pipeline");
    run_span.attr("latencies", static_cast<std::uint64_t>(latencies.size()));
    const obs::Sinks run_obs = opts.obs.under(run_span.id());

    // Every stage boundary below is ONE clock sample shared by the closing
    // and the opening stage (obs::StageClock), so the per-report stage
    // times telescope exactly to the run total.
    obs::StageClock clock;
    const std::uint64_t synth_span =
        clock.open(run_obs.tracer, "synth", run_obs.parent_span);
    const fsm::FsmCircuit circuit = fsm::synthesize_fsm(f, opts.encoding,
                                                        opts.synth);
    const double t_synth = clock.close(run_obs.tracer, synth_span);
    if (circuit.n() > 64) {
      return classified_reports(
          latencies, opts,
          Status::invalid_input(Stage::kSynth,
                                "more than 64 observable bits"));
    }

    // The extract stage covers fault enumeration too: it is part of
    // producing the detectability tables, and folding it in keeps the
    // stage laps gap-free.
    const std::uint64_t extract_span =
        clock.open(run_obs.tracer, "extract", run_obs.parent_span);
    const std::vector<sim::StuckAtFault> faults =
        sim::enumerate_stuck_at(circuit.netlist, opts.faults);

    const int p_max = *std::max_element(latencies.begin(), latencies.end());
    ExtractOptions ex = opts.extract;
    ex.latency = p_max;
    ex.deadline = deadline;
    ex.threads = opts.threads;
    if (run_obs.enabled()) ex.obs = run_obs.under(extract_span);
    if (opts.budget.max_cases > 0) ex.max_cases = opts.budget.max_cases;
    std::vector<DetectabilityTable> tables;
    std::vector<std::string> store_events;
    std::string extraction_key;
    bool archive_hit = false;
    if (opts.archive != nullptr) {
      // Content-addressed cache: the key pins circuit, fault list, the
      // result-shaping extraction options and the shard partition, so a hit
      // is byte-identical to what extraction would have produced.
      const int num_shards =
          resolve_checkpoint_shards(opts.checkpoint_shards, faults.size());
      extraction_key = extraction_digest(circuit, faults, ex, num_shards);
      tables = opts.archive->load_tables(extraction_key);
      const bool shape_ok =
          tables.size() == static_cast<std::size_t>(p_max) &&
          tables.front().num_bits == circuit.n() &&
          tables.front().num_faults == faults.size();
      if (!tables.empty() && !shape_ok) {
        store_events.push_back(
            "stored table bundle has the wrong shape for key " +
            extraction_key + "; ignoring it and re-extracting");
        tables.clear();
      }
      archive_hit = !tables.empty();
      if (tables.empty()) {
        ShardedExtractOptions sharding;
        sharding.num_shards = num_shards;
        sharding.max_new_shards = opts.max_new_shards;
        ExtractCheckpointHooks hooks;
        if (opts.resume) {
          hooks.load = [&](std::uint32_t s, std::uint32_t n,
                           ExtractShard& out) {
            return opts.archive->load_shard(extraction_key, s, n, out);
          };
        }
        hooks.save = [&](const ExtractShard& s) {
          opts.archive->store_shard(extraction_key, s);
        };
        tables = extract_cases_sharded(circuit, faults, ex, sharding, hooks);
        const bool complete = std::none_of(
            tables.begin(), tables.end(),
            [](const DetectabilityTable& t) { return t.truncated; });
        if (complete) {
          opts.archive->store_tables(extraction_key, tables);
          opts.archive->drop_shards(extraction_key);
        }
      }
      for (auto& e : opts.archive->drain_events()) {
        store_events.push_back(std::move(e));
      }
    } else {
      tables = extract_cases_multi(circuit, faults, ex);
    }
    const double t_extract = clock.close(run_obs.tracer, extract_span);
    if (run_obs.metrics != nullptr && !tables.empty()) {
      // Stage-level extraction metrics (write-only; the deepest table is
      // the superset every smaller latency is a prefix of).
      const DetectabilityTable& deep = tables.back();
      obs::MetricsShard shard(run_obs.metrics);
      shard.add("ced_extract_cases_total",
                static_cast<std::uint64_t>(deep.cases.size()));
      shard.add("ced_extract_activations_total", deep.num_activations);
      shard.add("ced_extract_paths_total", deep.num_paths);
      shard.add("ced_extract_faults_total",
                static_cast<std::uint64_t>(faults.size()));
      if (opts.archive != nullptr) {
        shard.add(archive_hit ? "ced_store_table_hits_total"
                              : "ced_store_table_misses_total");
      }
      shard.add("ced_store_events_total",
                static_cast<std::uint64_t>(store_events.size()));
      shard.flush();
      if (t_extract > 0.0) {
        run_obs.metrics->set_gauge(
            "ced_extract_cases_per_second",
            static_cast<double>(deep.cases.size()) / t_extract);
      }
    }
    const bool any_truncated =
        std::any_of(tables.begin(), tables.end(),
                    [](const DetectabilityTable& t) { return t.truncated; });

    std::vector<PipelineReport> reports;
    std::vector<ParityFunc> warm;
    for (int p : latencies) {
      const DetectabilityTable& table =
          tables[static_cast<std::size_t>(p - 1)];
      // A cover for latency p stays valid at p+1 (detecting at step 1 is
      // always allowed), so sweeping in ascending order lets each latency
      // warm-start from the previous solution; q(p) becomes monotone. The
      // unverified assignment shortcut additionally requires every table of
      // the sweep to be complete (truncated tables lose the containment
      // argument between latencies).
      const bool ascending = warm.empty() || p >= reports.back().latency;
      PipelineReport rep =
          report_for(circuit, faults, table, opts, deadline, warm,
                     ascending && !any_truncated, clock, run_obs);
      rep.t_synth = t_synth;
      rep.t_extract = t_extract;
      rep.extraction_key = extraction_key;
      rep.resilience.store_events = store_events;
      warm = rep.parities;
      reports.push_back(std::move(rep));
    }
    return reports;
  } catch (const std::invalid_argument& e) {
    return classified_reports(
        latencies, opts, Status::invalid_input(Stage::kPipeline, e.what()));
  } catch (const std::exception& e) {
    return classified_reports(latencies, opts,
                              Status::internal(Stage::kPipeline, e.what()));
  }
}

// Deprecated shims (declared [[deprecated]] in pipeline.hpp): one
// transition period for callers that still assemble PipelineOptions by
// hand. New code validates through ced::RunConfig (core/run.hpp).

PipelineReport run_pipeline(const fsm::Fsm& f, const PipelineOptions& opts) {
  auto sweep = run_latency_sweep_impl(f, std::vector<int>{opts.latency}, opts);
  return sweep.front();
}

std::vector<PipelineReport> run_latency_sweep(const fsm::Fsm& f,
                                              std::span<const int> latencies,
                                              const PipelineOptions& opts) {
  return run_latency_sweep_impl(f, latencies, opts);
}

}  // namespace ced::core
