#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "core/exact.hpp"

namespace ced::core {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

CascadeLevel level_of(SolverKind solver) {
  switch (solver) {
    case SolverKind::kExact: return CascadeLevel::kExact;
    case SolverKind::kGreedy: return CascadeLevel::kGreedy;
    case SolverKind::kLpRounding: return CascadeLevel::kLpRounding;
  }
  return CascadeLevel::kLpRounding;
}

PipelineReport report_for(const fsm::FsmCircuit& circuit,
                          const std::vector<sim::StuckAtFault>& faults,
                          const DetectabilityTable& table,
                          const PipelineOptions& opts,
                          const Deadline& deadline,
                          std::span<const ParityFunc> warm_start,
                          bool warm_is_lower_latency_cover = false) {
  PipelineReport rep;
  rep.inputs = circuit.r();
  rep.state_bits = circuit.s();
  rep.outputs = circuit.o();
  const auto orig = logic::measure_area(
      circuit.netlist, opts.library,
      static_cast<std::size_t>(circuit.s()));  // state register flip-flops
  rep.orig_gates = orig.gates;
  rep.orig_area = orig.area;
  rep.num_faults = faults.size();
  rep.num_detectable_faults = table.num_detectable_faults;
  rep.num_cases = table.cases.size();
  rep.latency = table.latency;

  rep.resilience.extraction_truncated = table.truncated;
  rep.resilience.table_strengthened = table.strengthened;
  if (table.truncated) {
    rep.resilience.record(Stage::kExtract, StatusCode::kTruncated,
                          table.truncation_reason, 0.0, table.cases.size());
  }

  auto t0 = std::chrono::steady_clock::now();
  rep.parities = select_parities_resilient(table, opts, deadline,
                                           &rep.algo_stats, warm_start,
                                           rep.resilience);
  // A cover for a smaller latency bound is always a valid cover for this
  // one (detecting earlier is allowed), even when this table was
  // conservatively strengthened and the solver could not do as well. The
  // shortcut is only sound when the warm cover's source table was complete,
  // so truncated sweeps skip it.
  if (warm_is_lower_latency_cover && !warm_start.empty() &&
      warm_start.size() < rep.parities.size()) {
    rep.parities.assign(warm_start.begin(), warm_start.end());
    rep.algo_stats.final_q = static_cast<int>(rep.parities.size());
  }
  rep.t_solve = seconds_since(t0);
  rep.num_trees = static_cast<int>(rep.parities.size());

  t0 = std::chrono::steady_clock::now();
  const CedHardware hw = synthesize_ced(circuit, rep.parities, opts.ced);
  const auto cost = hw.cost(opts.library);
  rep.ced_gates = cost.gates;
  rep.ced_area = cost.area;
  rep.t_ced = seconds_since(t0);

  if (rep.resilience.status.ok() && rep.resilience.degraded()) {
    rep.resilience.status = Status::truncated(
        Stage::kPipeline,
        "run degraded under budget; cover is valid for the cases covered");
  }
  return rep;
}

/// Builds one classified-but-empty report per requested latency; used when
/// the run cannot proceed at all (invalid input, internal failure).
std::vector<PipelineReport> classified_reports(std::span<const int> latencies,
                                               const PipelineOptions& opts,
                                               Status status) {
  std::vector<PipelineReport> reports;
  for (int p : latencies) {
    PipelineReport rep;
    rep.latency = p;
    rep.resilience.solver_requested = level_of(opts.solver);
    rep.resilience.solver_used = level_of(opts.solver);
    rep.resilience.status = status;
    reports.push_back(std::move(rep));
  }
  return reports;
}

}  // namespace

std::vector<ParityFunc> duplication_floor_cover(
    const DetectabilityTable& table) {
  std::uint64_t used = 0;
  std::vector<ParityFunc> out;
  for (const auto& ec : table.cases) {
    for (int k = 0; k < ec.length; ++k) {
      const std::uint64_t w = ec.diff[static_cast<std::size_t>(k)];
      if (w == 0) continue;
      const ParityFunc beta = w & (~w + 1);
      if (!(used & beta)) {
        used |= beta;
        out.push_back(beta);
      }
      break;
    }
  }
  return out;
}

namespace {

/// The degradation cascade on one (possibly condensed) table; the public
/// wrapper below handles condensation and full-table re-verification.
std::vector<ParityFunc> select_parities_on(
    const DetectabilityTable& table, const PipelineOptions& opts,
    const Deadline& deadline, Algorithm1Stats* stats,
    std::span<const ParityFunc> warm_start, ResilienceReport& resilience) {
  const auto t0 = std::chrono::steady_clock::now();
  resilience.solver_requested = level_of(opts.solver);
  resilience.solver_used = resilience.solver_requested;
  if (table.cases.empty()) {
    if (stats) stats->final_q = 0;
    return {};
  }

  SolverKind level = opts.solver;

  if (level == SolverKind::kExact) {
    ExactOptions ex = opts.exact;
    if (opts.budget.max_exact_nodes > 0) {
      ex.max_nodes = opts.budget.max_exact_nodes;
    }
    if (deadline.armed() && !ex.deadline.armed()) ex.deadline = deadline;
    ExactOutcome outcome;
    if (auto sol = exact_min_cover(table, ex, &outcome)) {
      if (stats) stats->final_q = static_cast<int>(sol->size());
      return *sol;
    }
    std::string why;
    if (outcome.too_large) {
      why = "instance exceeds exact-solver size limit";
    } else if (outcome.deadline_hit) {
      why = "wall-clock budget exhausted after " +
            std::to_string(outcome.nodes) + " branch-and-bound nodes";
    } else if (outcome.node_budget_hit) {
      why = "branch-and-bound node budget (" +
            std::to_string(outcome.nodes) + " nodes) exhausted";
    } else if (outcome.uncoverable) {
      why = "a case is uncoverable within the candidate space";
    } else {
      why = "exact search could not certify an optimum";
    }
    resilience.record(Stage::kExact,
                      outcome.uncoverable ? StatusCode::kInfeasible
                                          : StatusCode::kTruncated,
                      why + "; falling back to LP+rounding",
                      seconds_since(t0), table.cases.size());
    resilience.solver_used = CascadeLevel::kLpRounding;
    level = SolverKind::kLpRounding;
  }

  if (level == SolverKind::kLpRounding) {
    if (deadline.expired()) {
      resilience.record(Stage::kLp, StatusCode::kTruncated,
                        "wall-clock budget exhausted before the LP stage; "
                        "falling back to greedy",
                        seconds_since(t0), table.cases.size());
      resilience.solver_used = CascadeLevel::kGreedy;
      level = SolverKind::kGreedy;
    } else {
      Algorithm1Options algo = opts.algo;
      algo.threads = opts.threads;
      if (deadline.armed() && !algo.deadline.armed()) algo.deadline = deadline;
      if (opts.budget.max_lp_iterations > 0) {
        algo.lp.max_iterations = opts.budget.max_lp_iterations;
      }
      if (opts.budget.max_rounding_attempts > 0) {
        algo.iter = std::min(algo.iter, opts.budget.max_rounding_attempts);
      }
      Algorithm1Stats local;
      Algorithm1Stats* st = stats ? stats : &local;
      auto sol = minimize_parity_functions(table, algo, st, warm_start);
      if (st->lp_budget_hit) {
        resilience.record(
            Stage::kLp, StatusCode::kTruncated,
            "LP solve stopped on its iteration/time budget (" +
                std::to_string(st->lp_iterations) + " pivots total)",
            seconds_since(t0), table.cases.size());
      }
      if (st->deadline_hit && !st->lp_budget_hit) {
        resilience.record(Stage::kRounding, StatusCode::kTruncated,
                          "wall-clock budget cut the rounding search short "
                          "after " + std::to_string(st->roundings) +
                              " roundings",
                          seconds_since(t0), table.cases.size());
      }
      // greedy_fallback under budget pressure means the answer really came
      // from the next cascade level; without pressure it just means the
      // greedy bound was already optimal — not a degradation.
      if (st->greedy_fallback && (st->lp_budget_hit || st->deadline_hit)) {
        resilience.solver_used = st->greedy_degraded
                                     ? CascadeLevel::kDuplication
                                     : CascadeLevel::kGreedy;
      }
      return sol;
    }
  }

  // Greedy level (requested directly or reached by fallback).
  GreedyOptions greedy = opts.algo.greedy;
  if (deadline.armed() && !greedy.deadline.armed()) greedy.deadline = deadline;
  GreedyStats gs;
  auto sol = greedy_cover(table, greedy, &gs);
  if (resilience.solver_used != CascadeLevel::kGreedy &&
      level == SolverKind::kGreedy) {
    resilience.solver_used = level_of(level);
  }
  if (gs.deadline_hit) {
    resilience.record(Stage::kGreedy, StatusCode::kTruncated,
                      "greedy search out of time; closed out with " +
                          std::to_string(gs.single_bit_completions) +
                          " single-bit functions (duplication-style floor)",
                      seconds_since(t0), table.cases.size());
    resilience.solver_used = CascadeLevel::kDuplication;
  }
  if (stats) {
    stats->final_q = static_cast<int>(sol.size());
    stats->greedy_fallback = true;
    stats->deadline_hit = stats->deadline_hit || gs.deadline_hit;
    stats->greedy_degraded = stats->greedy_degraded || gs.deadline_hit;
  }
  return sol;
}

}  // namespace

std::vector<ParityFunc> select_parities_resilient(
    const DetectabilityTable& table, const PipelineOptions& opts,
    const Deadline& deadline, Algorithm1Stats* stats,
    std::span<const ParityFunc> warm_start, ResilienceReport& resilience) {
  if (!opts.condense || table.cases.empty()) {
    return select_parities_on(table, opts, deadline, stats, warm_start,
                              resilience);
  }

  // Subset-dominance condensation (coverkernel.hpp): rows whose word set
  // contains another row's word set add no constraint, so the solvers see
  // a smaller m with the same optimal q.
  const CondensedTable cond = condense_table(table);
  if (stats) stats->condensed_cases = cond.table.cases.size();
  if (cond.removed == 0) {
    return select_parities_on(table, opts, deadline, stats, warm_start,
                              resilience);
  }
  std::vector<ParityFunc> sol = select_parities_on(
      cond.table, opts, deadline, stats, warm_start, resilience);
  // The dominance argument makes a condensed-table cover a full-table
  // cover; re-verify anyway (cheap on the kernel) so a condensation defect
  // could never ship an unsound scheme — fall back to the raw table if the
  // impossible happens.
  if (!covers_all(sol, table)) {
    resilience.record(Stage::kPipeline, StatusCode::kInternal,
                      "condensed-table cover failed full-table verification; "
                      "re-solving on the raw table",
                      0.0, table.cases.size());
    if (stats) stats->condensed_cases = 0;
    return select_parities_on(table, opts, deadline, stats, warm_start,
                              resilience);
  }
  return sol;
}

std::vector<ParityFunc> select_parities(const DetectabilityTable& table,
                                        SolverKind solver,
                                        const Algorithm1Options& algo,
                                        Algorithm1Stats* stats,
                                        std::span<const ParityFunc> warm_start) {
  PipelineOptions opts;
  opts.solver = solver;
  opts.algo = algo;
  opts.threads = algo.threads;
  ResilienceReport scratch;
  return select_parities_resilient(table, opts, algo.deadline, stats,
                                   warm_start, scratch);
}

PipelineReport run_pipeline(const fsm::Fsm& f, const PipelineOptions& opts) {
  auto sweep = run_latency_sweep(f, std::vector<int>{opts.latency}, opts);
  return sweep.front();
}

std::vector<PipelineReport> run_latency_sweep(const fsm::Fsm& f,
                                              std::span<const int> latencies,
                                              const PipelineOptions& opts) {
  if (latencies.empty()) return {};
  const Deadline deadline = Deadline::from(opts.budget);
  for (int p : latencies) {
    if (p < 1 || p > kMaxLatency) {
      return classified_reports(
          latencies, opts,
          Status::invalid_input(Stage::kPipeline,
                                "latency bound " + std::to_string(p) +
                                    " out of range [1, " +
                                    std::to_string(kMaxLatency) + "]"));
    }
  }

  try {
    auto t0 = std::chrono::steady_clock::now();
    const fsm::FsmCircuit circuit = fsm::synthesize_fsm(f, opts.encoding,
                                                        opts.synth);
    const double t_synth = seconds_since(t0);
    if (circuit.n() > 64) {
      return classified_reports(
          latencies, opts,
          Status::invalid_input(Stage::kSynth,
                                "more than 64 observable bits"));
    }

    const std::vector<sim::StuckAtFault> faults =
        sim::enumerate_stuck_at(circuit.netlist, opts.faults);

    const int p_max = *std::max_element(latencies.begin(), latencies.end());
    ExtractOptions ex = opts.extract;
    ex.latency = p_max;
    ex.deadline = deadline;
    ex.threads = opts.threads;
    if (opts.budget.max_cases > 0) ex.max_cases = opts.budget.max_cases;
    t0 = std::chrono::steady_clock::now();
    std::vector<DetectabilityTable> tables;
    std::vector<std::string> store_events;
    if (opts.archive != nullptr) {
      // Content-addressed cache: the key pins circuit, fault list, the
      // result-shaping extraction options and the shard partition, so a hit
      // is byte-identical to what extraction would have produced.
      const int num_shards =
          resolve_checkpoint_shards(opts.checkpoint_shards, faults.size());
      const std::string key =
          extraction_digest(circuit, faults, ex, num_shards);
      tables = opts.archive->load_tables(key);
      const bool shape_ok =
          tables.size() == static_cast<std::size_t>(p_max) &&
          tables.front().num_bits == circuit.n() &&
          tables.front().num_faults == faults.size();
      if (!tables.empty() && !shape_ok) {
        store_events.push_back(
            "stored table bundle has the wrong shape for key " + key +
            "; ignoring it and re-extracting");
        tables.clear();
      }
      if (tables.empty()) {
        ShardedExtractOptions sharding;
        sharding.num_shards = num_shards;
        sharding.max_new_shards = opts.max_new_shards;
        ExtractCheckpointHooks hooks;
        if (opts.resume) {
          hooks.load = [&](std::uint32_t s, std::uint32_t n,
                           ExtractShard& out) {
            return opts.archive->load_shard(key, s, n, out);
          };
        }
        hooks.save = [&](const ExtractShard& s) {
          opts.archive->store_shard(key, s);
        };
        tables = extract_cases_sharded(circuit, faults, ex, sharding, hooks);
        const bool complete = std::none_of(
            tables.begin(), tables.end(),
            [](const DetectabilityTable& t) { return t.truncated; });
        if (complete) {
          opts.archive->store_tables(key, tables);
          opts.archive->drop_shards(key);
        }
      }
      for (auto& e : opts.archive->drain_events()) {
        store_events.push_back(std::move(e));
      }
    } else {
      tables = extract_cases_multi(circuit, faults, ex);
    }
    const double t_extract = seconds_since(t0);
    const bool any_truncated =
        std::any_of(tables.begin(), tables.end(),
                    [](const DetectabilityTable& t) { return t.truncated; });

    std::vector<PipelineReport> reports;
    std::vector<ParityFunc> warm;
    for (int p : latencies) {
      const DetectabilityTable& table =
          tables[static_cast<std::size_t>(p - 1)];
      // A cover for latency p stays valid at p+1 (detecting at step 1 is
      // always allowed), so sweeping in ascending order lets each latency
      // warm-start from the previous solution; q(p) becomes monotone. The
      // unverified assignment shortcut additionally requires every table of
      // the sweep to be complete (truncated tables lose the containment
      // argument between latencies).
      const bool ascending = warm.empty() || p >= reports.back().latency;
      PipelineReport rep = report_for(circuit, faults, table, opts, deadline,
                                      warm, ascending && !any_truncated);
      rep.t_synth = t_synth;
      rep.t_extract = t_extract;
      rep.resilience.store_events = store_events;
      warm = rep.parities;
      reports.push_back(std::move(rep));
    }
    return reports;
  } catch (const std::invalid_argument& e) {
    return classified_reports(
        latencies, opts, Status::invalid_input(Stage::kPipeline, e.what()));
  } catch (const std::exception& e) {
    return classified_reports(latencies, opts,
                              Status::internal(Stage::kPipeline, e.what()));
  }
}

}  // namespace ced::core
