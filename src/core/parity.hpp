#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/extract.hpp"

namespace ced::core {

/// A parity function: the XOR of the next-state/output bits selected by the
/// mask (bit j = observable bit b_{j+1}). The paper's beta vectors (§4).
using ParityFunc = std::uint64_t;

/// True iff the parity function detects the erroneous case at step `k`
/// (odd overlap between the tree and the step's difference set).
inline bool detects_at(ParityFunc beta, const ErroneousCase& ec, int k) {
  return (std::popcount(beta & ec.diff[static_cast<std::size_t>(k)]) & 1) != 0;
}

/// True iff the parity function covers the erroneous case: it detects the
/// fault effect at some step within the case's recorded path (Statement 1).
inline bool covers(ParityFunc beta, const ErroneousCase& ec) {
  for (int k = 0; k < ec.length; ++k) {
    if (detects_at(beta, ec, k)) return true;
  }
  return false;
}

/// True iff some function in the set covers the erroneous case.
inline bool covers(std::span<const ParityFunc> betas,
                   const ErroneousCase& ec) {
  for (ParityFunc b : betas) {
    if (covers(b, ec)) return true;
  }
  return false;
}

/// True iff the parity set covers every case (the integer feasibility test
/// of Statement 4, evaluated exactly in GF(2)).
bool covers_all(std::span<const ParityFunc> betas,
                const DetectabilityTable& table);

/// Indices of cases not covered by the set.
std::vector<std::uint32_t> uncovered_cases(std::span<const ParityFunc> betas,
                                           const DetectabilityTable& table);

/// Subset variant: indices (from `rows`) of cases not covered by the set.
/// Lets solvers work on samples of very large tables.
std::vector<std::uint32_t> uncovered_among(std::span<const ParityFunc> betas,
                                           const DetectabilityTable& table,
                                           std::span<const std::uint32_t> rows);

class CoverKernel;

/// Drops parity functions that cover no case not already covered by the
/// rest (cheap post-pass; keeps earlier functions preferentially). Runs in
/// one pass over per-tree coverage bitmaps on the bit-sliced kernel
/// (core/coverkernel.hpp), or as the original O(q^2 * m) re-verification
/// loop under CED_KERNEL=scalar; both orders of removal — and hence the
/// results — are identical.
std::vector<ParityFunc> prune_redundant(std::span<const ParityFunc> betas,
                                        const DetectabilityTable& table);

/// Variant reusing a caller-held full-table kernel (built once per table by
/// the solvers); `kernel` may be null to build one internally.
std::vector<ParityFunc> prune_redundant(std::span<const ParityFunc> betas,
                                        const DetectabilityTable& table,
                                        const CoverKernel* kernel);

}  // namespace ced::core
