#include "core/area_aware.hpp"

#include <algorithm>

#include "core/rng.hpp"

namespace ced::core {
namespace {

double cost_of(const fsm::FsmCircuit& circuit,
               const std::vector<ParityFunc>& parities,
               const AreaAwareOptions& opts) {
  const CedHardware hw = synthesize_ced(circuit, parities, opts.ced);
  return hw.cost(opts.library).area;
}

}  // namespace

AreaAwareResult minimize_parity_area(const fsm::FsmCircuit& circuit,
                                     const DetectabilityTable& table,
                                     const AreaAwareOptions& opts) {
  AreaAwareResult res;
  res.parities = minimize_parity_functions(table, opts.algo);
  res.initial_area = cost_of(circuit, res.parities, opts);
  res.evaluations = 1;
  double current = res.initial_area;

  Rng rng(opts.seed);
  const int n = table.num_bits;

  for (int pass = 0; pass < opts.passes; ++pass) {
    bool improved = false;
    for (std::size_t t = 0; t < res.parities.size(); ++t) {
      // Visit bits in a random order so successive passes explore
      // different move sequences.
      std::vector<int> order(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) order[static_cast<std::size_t>(j)] = j;
      for (std::size_t j = order.size(); j > 1; --j) {
        std::swap(order[j - 1], order[rng.next() % j]);
      }

      for (int j : order) {
        if (res.evaluations >= opts.max_evaluations) {
          res.final_area = current;
          return res;
        }
        const ParityFunc saved = res.parities[t];
        res.parities[t] ^= std::uint64_t{1} << j;
        if (res.parities[t] == 0 || !covers_all(res.parities, table)) {
          res.parities[t] = saved;
          continue;
        }
        const double cand = cost_of(circuit, res.parities, opts);
        ++res.evaluations;
        if (cand < current - 1e-9) {
          current = cand;
          improved = true;
        } else {
          res.parities[t] = saved;
        }
      }
    }
    if (!improved) break;
  }
  res.final_area = current;
  return res;
}

}  // namespace ced::core
