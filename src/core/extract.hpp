#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include <string>

#include "core/erroneous_case.hpp"
#include "core/resilience.hpp"
#include "fsm/synthesize.hpp"
#include "obs/trace.hpp"
#include "sim/fault_sim.hpp"
#include "sim/faults.hpp"

namespace ced::core {

/// How the per-step difference sets of an erroneous case are defined.
///
/// The paper (§3.1) formally defines an EC from the divergence of the
/// error-free machine GM(A, c) and the faulty machine BM_f(A, c) driven by
/// the same input sequence from the same start state — `kMachineLevel`.
/// Those difference sets are what the authors' fault simulator tabulated,
/// and they grow with latency (the two machines' states drift apart), which
/// is where the paper's large latency savings come from.
///
/// The Fig. 3 architecture, however, predicts from the FSM's *actual*
/// state register: once the register is corrupted, the checker can only
/// see the faulty logic differ from the fault-free logic evaluated at the
/// same (corrupted) state — `kImplementable`. This is the sound semantics:
/// a cover of the implementable table provably yields bounded-latency
/// detection in sequential simulation (see core/verify.hpp), at a somewhat
/// higher parity cost. The bench suite quantifies the gap.
enum class DiffSemantics {
  kImplementable,
  kMachineLevel,
};

struct ExtractOptions {
  /// Latency bound p (1 .. kMaxLatency).
  int latency = 1;
  DiffSemantics semantics = DiffSemantics::kImplementable;
  /// Enumerate activations only from state codes reachable from reset in
  /// the fault-free circuit (matches real operation). When false, every
  /// s-bit code is an activation candidate.
  bool restrict_to_reachable = true;
  /// Above this many (subset-minimal, canonical) cases, a table degrades
  /// gracefully: cases are strengthened to their k smallest difference
  /// words, with k stepping down until the table fits. Strengthening only
  /// removes detection alternatives, so results stay sound (possibly a few
  /// extra parity trees); the table's `strengthened` flag reports it.
  std::size_t degrade_threshold = 2'000'000;
  /// Hard valve (after degradation to single-word cases). Reaching it no
  /// longer throws: the affected table freezes with its cases found so far
  /// and reports `truncated` — a cover of the frozen table is still a valid
  /// (partial-coverage) answer for exactly those cases.
  std::size_t max_cases = 5'000'000;
  /// Cooperative wall-clock budget: when it expires mid-DFS, extraction
  /// stops and every table still open is marked truncated.
  Deadline deadline;
  /// Worker threads for the per-fault enumeration (faults are sharded in
  /// fixed blocks across workers and the per-worker case sets merged
  /// deterministically). 1 = serial, 0 = CED_THREADS env or hardware
  /// concurrency (see common/parallel.hpp). The resulting `cases` vectors
  /// are identical for every thread count on non-truncated runs; the
  /// path-enumeration statistics (num_paths, num_loop_truncations) depend
  /// on the shard partition because subtree pruning only sees a worker's
  /// own cases.
  int threads = 0;
  /// Observability sinks: one span per extraction shard (nested under
  /// `parent_span`, typically the pipeline's extract stage span) plus
  /// per-shard counters. Write-only diagnostics — the extracted tables are
  /// byte-identical with sinks set or null, at any thread count.
  obs::Sinks obs;
};

/// The error detectability table of Fig. 2: the union of all erroneous
/// cases in canonical form (sorted distinct nonzero step difference-words;
/// see extract_cases_multi), plus extraction statistics. Rows the cover
/// problem cannot distinguish are merged.
struct DetectabilityTable {
  int num_bits = 0;  ///< n = state bits + outputs
  int latency = 0;   ///< p used during extraction
  /// True if the degrade threshold forced case strengthening (results are
  /// then conservative: a valid cover, possibly with extra trees).
  bool strengthened = false;
  /// True if a budget valve (case limit or wall-clock deadline) stopped
  /// enumeration before exhausting the path space: `cases` then holds the
  /// subset found so far, and detection claims hold for exactly those rows.
  bool truncated = false;
  /// Human-readable reason when `truncated` is set.
  std::string truncation_reason;
  std::vector<ErroneousCase> cases;

  // Statistics.
  std::size_t num_faults = 0;           ///< faults simulated
  std::size_t num_detectable_faults = 0;///< faults with >= 1 activation
  std::size_t num_activations = 0;      ///< (fault, state, input-class) roots
  std::size_t num_paths = 0;            ///< enumerated paths (pre-dedup)
  std::size_t num_loop_truncations = 0; ///< paths cut by the loop rule

  /// V(i, j, k) of §4 (0-based i, j, k).
  bool v(std::size_t i, int j, int k) const {
    const ErroneousCase& ec = cases[i];
    if (k >= ec.length) return false;
    return (ec.diff[static_cast<std::size_t>(k)] >> j) & 1;
  }
};

/// Builds the detectability tables for every latency bound 1..opts.latency
/// in a single fault-simulation + path-enumeration pass (§2, §3.1):
/// result[p-1] is the table for bound p.
///
/// Cases are stored in *canonical form*: the sorted set of distinct nonzero
/// step difference-words. Coverage of an EC depends only on that set
/// (a parity tree detects the case iff it has odd overlap with SOME step's
/// difference), so canonicalization merges rows the cover problem cannot
/// distinguish — exactness is preserved while path-order blowup collapses.
std::vector<DetectabilityTable> extract_cases_multi(
    const fsm::FsmCircuit& circuit,
    std::span<const sim::StuckAtFault> faults, const ExtractOptions& opts);

/// Single-latency convenience wrapper: the table for bound opts.latency.
DetectabilityTable extract_cases(const fsm::FsmCircuit& circuit,
                                 std::span<const sim::StuckAtFault> faults,
                                 const ExtractOptions& opts = {});

// ---------------------------------------------------------------------------
// Checkpointed (shard-granular) extraction.
//
// The fault list is split into a FIXED contiguous-block partition whose
// shard count is independent of the worker-thread count, and every shard is
// extracted as a pure function of (circuit, its fault block, options, shard
// count): each shard runs with private budget valves, so its result never
// depends on what other shards did or on execution timing. That makes a
// completed shard a durable unit of work — the storage layer persists each
// one as it finishes, and a later run can load the completed shards and
// compute only the remainder, producing tables byte-identical (cases AND
// statistics) to an uninterrupted run at any thread count.
// ---------------------------------------------------------------------------

/// One completed shard: the per-latency tables holding the shard's local
/// statistics and its own compacted, sorted case lists. Mergeable in fixed
/// shard order into the final tables.
struct ExtractShard {
  std::uint32_t index = 0;
  std::uint32_t num_shards = 0;
  std::vector<DetectabilityTable> tables;  ///< one per latency 1..p
};

/// Default checkpoint shard count (before clamping to the fault count).
/// Fixed — NOT derived from the thread count — so the shard partition, and
/// with it every per-shard artifact, is stable across machines and runs.
inline constexpr int kDefaultCheckpointShards = 16;

/// Resolves a requested checkpoint shard count: <= 0 picks the default,
/// and the result never exceeds the fault count (>= 1 always).
int resolve_checkpoint_shards(int requested, std::size_t num_faults);

struct ShardedExtractOptions {
  /// Checkpoint shards (0 = kDefaultCheckpointShards), clamped to the
  /// fault count. Part of the cache key: different partitions produce
  /// identical case lists but different path statistics.
  int num_shards = 0;
  /// Stop (deterministically) after computing this many new shards this
  /// run; remaining shards are skipped and the tables report truncation
  /// with a resume hint. 0 = no limit. This is the deterministic analogue
  /// of a wall-clock budget trip, used by tests and by `--max-new-shards`.
  int max_new_shards = 0;
};

/// Checkpoint callbacks wired up by the storage layer (core performs no
/// file I/O itself). `load` returns true and fills `out` when a completed
/// shard artifact exists for (shard, num_shards); `save` is called with
/// every newly completed (never truncated) shard, possibly from worker
/// threads concurrently. Either may be empty.
struct ExtractCheckpointHooks {
  std::function<bool(std::uint32_t shard, std::uint32_t num_shards,
                     ExtractShard& out)>
      load;
  std::function<void(const ExtractShard&)> save;
};

/// Sharded, checkpointable variant of extract_cases_multi. Shards still to
/// compute run under opts.threads workers; loaded shards cost nothing. A
/// wall-clock/case-valve trip mid-shard keeps that shard's partial cases in
/// the returned (truncated) tables but never persists them. When every
/// shard is available the result is byte-identical to any other complete
/// run with the same `num_shards`, at any thread count.
std::vector<DetectabilityTable> extract_cases_sharded(
    const fsm::FsmCircuit& circuit, std::span<const sim::StuckAtFault> faults,
    const ExtractOptions& opts, const ShardedExtractOptions& sharding = {},
    const ExtractCheckpointHooks& hooks = {});

/// Content digest (32 hex chars) of everything a detectability-table bundle
/// depends on: the synthesized circuit (netlist, encoding, reset code), the
/// collapsed fault list, the result-shaping extraction options (latency,
/// semantics, reachability restriction, degrade threshold) and the shard
/// partition. Two runs with equal digests produce byte-identical tables, so
/// the digest is the artifact-store cache key; budget valves (deadline,
/// max_cases) are deliberately excluded — truncated results are never
/// cached.
std::string extraction_digest(const fsm::FsmCircuit& circuit,
                              std::span<const sim::StuckAtFault> faults,
                              const ExtractOptions& opts, int num_shards);

/// Interface to a persistent, corruption-detecting artifact cache for
/// extraction results, implemented by storage::StoreArchive (src/storage).
/// Core calls it through this interface so the dependency points from
/// storage to core, not the other way. Implementations must not throw and
/// must tolerate concurrent store_shard calls from worker threads.
class ExtractArchive {
 public:
  virtual ~ExtractArchive() = default;

  /// Cached complete table bundle for `key` (latencies 1..p in order).
  /// Empty on miss; corrupt artifacts are quarantined, reported through
  /// drain_events(), and read as a miss.
  virtual std::vector<DetectabilityTable> load_tables(
      const std::string& key) = 0;
  virtual void store_tables(const std::string& key,
                            const std::vector<DetectabilityTable>& tables) = 0;

  /// Shard checkpoints for `key`.
  virtual bool load_shard(const std::string& key, std::uint32_t shard,
                          std::uint32_t num_shards, ExtractShard& out) = 0;
  virtual void store_shard(const std::string& key, const ExtractShard& s) = 0;
  /// Drops the shard checkpoints of `key` once the final bundle is durable.
  virtual void drop_shards(const std::string& key) = 0;

  /// Store incidents (quarantined corrupt artifacts, unwritable files, ...)
  /// since the last drain, as human-readable lines; the pipeline records
  /// them in ResilienceReport::store_events.
  virtual std::vector<std::string> drain_events() = 0;
};

}  // namespace ced::core
