#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <string>

#include "core/erroneous_case.hpp"
#include "core/resilience.hpp"
#include "fsm/synthesize.hpp"
#include "sim/fault_sim.hpp"
#include "sim/faults.hpp"

namespace ced::core {

/// How the per-step difference sets of an erroneous case are defined.
///
/// The paper (§3.1) formally defines an EC from the divergence of the
/// error-free machine GM(A, c) and the faulty machine BM_f(A, c) driven by
/// the same input sequence from the same start state — `kMachineLevel`.
/// Those difference sets are what the authors' fault simulator tabulated,
/// and they grow with latency (the two machines' states drift apart), which
/// is where the paper's large latency savings come from.
///
/// The Fig. 3 architecture, however, predicts from the FSM's *actual*
/// state register: once the register is corrupted, the checker can only
/// see the faulty logic differ from the fault-free logic evaluated at the
/// same (corrupted) state — `kImplementable`. This is the sound semantics:
/// a cover of the implementable table provably yields bounded-latency
/// detection in sequential simulation (see core/verify.hpp), at a somewhat
/// higher parity cost. The bench suite quantifies the gap.
enum class DiffSemantics {
  kImplementable,
  kMachineLevel,
};

struct ExtractOptions {
  /// Latency bound p (1 .. kMaxLatency).
  int latency = 1;
  DiffSemantics semantics = DiffSemantics::kImplementable;
  /// Enumerate activations only from state codes reachable from reset in
  /// the fault-free circuit (matches real operation). When false, every
  /// s-bit code is an activation candidate.
  bool restrict_to_reachable = true;
  /// Above this many (subset-minimal, canonical) cases, a table degrades
  /// gracefully: cases are strengthened to their k smallest difference
  /// words, with k stepping down until the table fits. Strengthening only
  /// removes detection alternatives, so results stay sound (possibly a few
  /// extra parity trees); the table's `strengthened` flag reports it.
  std::size_t degrade_threshold = 2'000'000;
  /// Hard valve (after degradation to single-word cases). Reaching it no
  /// longer throws: the affected table freezes with its cases found so far
  /// and reports `truncated` — a cover of the frozen table is still a valid
  /// (partial-coverage) answer for exactly those cases.
  std::size_t max_cases = 5'000'000;
  /// Cooperative wall-clock budget: when it expires mid-DFS, extraction
  /// stops and every table still open is marked truncated.
  Deadline deadline;
  /// Worker threads for the per-fault enumeration (faults are sharded in
  /// fixed blocks across workers and the per-worker case sets merged
  /// deterministically). 1 = serial, 0 = CED_THREADS env or hardware
  /// concurrency (see common/parallel.hpp). The resulting `cases` vectors
  /// are identical for every thread count on non-truncated runs; the
  /// path-enumeration statistics (num_paths, num_loop_truncations) depend
  /// on the shard partition because subtree pruning only sees a worker's
  /// own cases.
  int threads = 0;
};

/// The error detectability table of Fig. 2: the union of all erroneous
/// cases in canonical form (sorted distinct nonzero step difference-words;
/// see extract_cases_multi), plus extraction statistics. Rows the cover
/// problem cannot distinguish are merged.
struct DetectabilityTable {
  int num_bits = 0;  ///< n = state bits + outputs
  int latency = 0;   ///< p used during extraction
  /// True if the degrade threshold forced case strengthening (results are
  /// then conservative: a valid cover, possibly with extra trees).
  bool strengthened = false;
  /// True if a budget valve (case limit or wall-clock deadline) stopped
  /// enumeration before exhausting the path space: `cases` then holds the
  /// subset found so far, and detection claims hold for exactly those rows.
  bool truncated = false;
  /// Human-readable reason when `truncated` is set.
  std::string truncation_reason;
  std::vector<ErroneousCase> cases;

  // Statistics.
  std::size_t num_faults = 0;           ///< faults simulated
  std::size_t num_detectable_faults = 0;///< faults with >= 1 activation
  std::size_t num_activations = 0;      ///< (fault, state, input-class) roots
  std::size_t num_paths = 0;            ///< enumerated paths (pre-dedup)
  std::size_t num_loop_truncations = 0; ///< paths cut by the loop rule

  /// V(i, j, k) of §4 (0-based i, j, k).
  bool v(std::size_t i, int j, int k) const {
    const ErroneousCase& ec = cases[i];
    if (k >= ec.length) return false;
    return (ec.diff[static_cast<std::size_t>(k)] >> j) & 1;
  }
};

/// Builds the detectability tables for every latency bound 1..opts.latency
/// in a single fault-simulation + path-enumeration pass (§2, §3.1):
/// result[p-1] is the table for bound p.
///
/// Cases are stored in *canonical form*: the sorted set of distinct nonzero
/// step difference-words. Coverage of an EC depends only on that set
/// (a parity tree detects the case iff it has odd overlap with SOME step's
/// difference), so canonicalization merges rows the cover problem cannot
/// distinguish — exactness is preserved while path-order blowup collapses.
std::vector<DetectabilityTable> extract_cases_multi(
    const fsm::FsmCircuit& circuit,
    std::span<const sim::StuckAtFault> faults, const ExtractOptions& opts);

/// Single-latency convenience wrapper: the table for bound opts.latency.
DetectabilityTable extract_cases(const fsm::FsmCircuit& circuit,
                                 std::span<const sim::StuckAtFault> faults,
                                 const ExtractOptions& opts = {});

}  // namespace ced::core
