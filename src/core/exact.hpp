#pragma once

#include <optional>
#include <vector>

#include "core/parity.hpp"
#include "core/resilience.hpp"

namespace ced::core {

struct ExactOptions {
  /// Refuse instances with more observable bits than this (the candidate
  /// space is 2^n - 1 parity functions and dominance pruning is quadratic
  /// in it).
  int max_bits = 14;
  /// Branch-and-bound node budget; nullopt result when exhausted.
  std::size_t max_nodes = 50'000'000;
  /// Wall-clock budget for the search; on expiry the solve aborts with
  /// `deadline_hit` so the caller can fall back to a cheaper solver.
  Deadline deadline;
};

/// Why an exact solve returned nullopt (all false on success) — drives the
/// degradation cascade's fallback classification.
struct ExactOutcome {
  bool too_large = false;      ///< instance exceeded max_bits
  bool node_budget_hit = false;
  bool deadline_hit = false;
  bool uncoverable = false;    ///< some case no candidate covers
  std::size_t nodes = 0;       ///< branch-and-bound nodes explored
};

/// Exact minimum number of parity functions (optimal Statement-1 solution)
/// by exhaustive candidate enumeration + dominance pruning + branch and
/// bound set cover. Intended for small instances: validates the LP
/// rounding and greedy solvers in tests and in the solver-quality bench.
///
/// Returns nullopt when the instance exceeds the option limits.
std::optional<std::vector<ParityFunc>> exact_min_cover(
    const DetectabilityTable& table, const ExactOptions& opts = {},
    ExactOutcome* outcome = nullptr);

}  // namespace ced::core
