#pragma once

#include <cstdint>
#include <vector>

#include "core/parity.hpp"
#include "core/resilience.hpp"
#include "obs/trace.hpp"

namespace ced::core {

/// Options for the greedy / local-search baseline solver.
struct GreedyOptions {
  /// Random restarts per selected parity function (in addition to the
  /// deterministic single-bit and all-ones starting points).
  int restarts = 8;
  /// Candidate search runs on at most this many still-uncovered cases at a
  /// time; the final solution is always verified (and extended) against the
  /// full table, so sampling affects only speed/quality, never coverage.
  std::size_t sample_cap = 20'000;
  std::uint64_t seed = 0x5eed;
  /// Wall-clock budget. On expiry the hill climbing stops and the
  /// still-uncovered cases are closed out with single-bit functions (one
  /// per needed observable bit), so the solver always terminates with a
  /// complete — if larger — cover.
  Deadline deadline;
  /// Observability sinks (a span per greedy_cover call plus hill-climb
  /// counters). Write-only diagnostics: the selected functions are
  /// byte-identical with sinks set or null.
  obs::Sinks obs;
};

/// Diagnostics for the resilience layer.
struct GreedyStats {
  bool deadline_hit = false;
  /// Parity functions appended by the single-bit close-out.
  int single_bit_completions = 0;
  /// Hill climbs executed (one per starting point considered).
  std::uint64_t climbs = 0;
};

class CoverKernel;

/// Greedy set-cover style baseline: repeatedly picks the parity function
/// covering the most still-uncovered erroneous cases, where each candidate
/// is found by hill-climbing over bit flips from several starting points.
/// Always returns a complete cover (single-bit functions guarantee
/// progress: diff[0] of every case is nonzero, so some bit of step 1
/// detects it... more precisely, any bit set in diff[0] gives odd overlap
/// when chosen alone).
///
/// The hill climbs run on the bit-sliced kernel (delta evaluation: one
/// column XOR per flipped bit) unless CED_KERNEL=scalar; both paths pick
/// identical functions. `full_kernel` optionally reuses a caller-held
/// full-table kernel (else one is built internally when needed).
std::vector<ParityFunc> greedy_cover(const DetectabilityTable& table,
                                     const GreedyOptions& opts = {},
                                     GreedyStats* stats = nullptr,
                                     const CoverKernel* full_kernel = nullptr);

}  // namespace ced::core
