#include "core/coverkernel.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <unordered_set>

namespace ced::core {
namespace {

std::atomic<int>& mode_override() {
  static std::atomic<int> v{-1};
  return v;
}

KernelMode env_mode() {
  static const KernelMode m = [] {
    const char* e = std::getenv("CED_KERNEL");
    return (e != nullptr && std::string_view(e) == "scalar")
               ? KernelMode::kScalar
               : KernelMode::kBitsliced;
  }();
  return m;
}

}  // namespace

KernelMode kernel_mode() {
  const int o = mode_override().load(std::memory_order_relaxed);
  return o < 0 ? env_mode() : static_cast<KernelMode>(o);
}

ScopedKernelMode::ScopedKernelMode(KernelMode mode)
    : saved_(mode_override().exchange(static_cast<int>(mode),
                                      std::memory_order_relaxed)) {}

ScopedKernelMode::~ScopedKernelMode() {
  mode_override().store(saved_, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// CoverKernel
// ---------------------------------------------------------------------------

CoverKernel::CoverKernel(const DetectabilityTable& table) {
  build(table, {});
}

CoverKernel::CoverKernel(const DetectabilityTable& table,
                         std::span<const std::uint32_t> rows) {
  rows_.assign(rows.begin(), rows.end());
  build(table, rows_);
}

void CoverKernel::build(const DetectabilityTable& table,
                        std::span<const std::uint32_t> rows) {
  n_ = table.num_bits;
  beta_mask_ = n_ >= 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << n_) - 1);
  m_ = rows_.empty() ? table.cases.size() : rows_.size();
  words_ = (m_ + 63) / 64;
#ifndef NDEBUG
  table_ = &table;
#endif

  steps_ = 0;
  for (std::size_t r = 0; r < m_; ++r) {
    const ErroneousCase& ec =
        table.cases[rows_.empty() ? r : rows[r]];
    steps_ = std::max(steps_, static_cast<int>(ec.length));
  }
  cols_.assign(static_cast<std::size_t>(steps_) *
                   static_cast<std::size_t>(n_) * words_,
               0);

  // Scatter: bit j of diff word k of local row r sets bit r of column
  // (k, j). One pass over the selected rows.
  for (std::size_t r = 0; r < m_; ++r) {
    const ErroneousCase& ec =
        table.cases[rows_.empty() ? r : rows[r]];
    const std::uint64_t row_bit = std::uint64_t{1} << (r & 63);
    const std::size_t row_word = r >> 6;
    for (int k = 0; k < ec.length; ++k) {
      std::uint64_t w = ec.diff[static_cast<std::size_t>(k)] & beta_mask_;
      const std::size_t step_base = static_cast<std::size_t>(k) *
                                    static_cast<std::size_t>(n_) * words_;
      while (w != 0) {
        const int j = std::countr_zero(w);
        w &= w - 1;
        cols_[step_base + static_cast<std::size_t>(j) * words_ + row_word] |=
            row_bit;
      }
    }
  }
}

namespace {

/// out = XOR of the selected columns (overwrite). `beta` nonzero.
void xor_selected(const CoverKernel& k, int step, ParityFunc beta,
                  std::uint64_t* out) {
  bool first = true;
  while (beta != 0) {
    const int j = std::countr_zero(beta);
    beta &= beta - 1;
    const auto col = k.column(step, j);
    if (first) {
      std::memcpy(out, col.data(), col.size() * sizeof(std::uint64_t));
      first = false;
    } else {
      for (std::size_t w = 0; w < col.size(); ++w) out[w] ^= col[w];
    }
  }
}

std::uint64_t last_word_mask(std::size_t m) {
  const std::size_t rem = m & 63;
  return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
}

}  // namespace

void CoverKernel::covered_bitmap(ParityFunc beta, std::uint64_t* out) const {
  std::fill(out, out + words_, 0);
  accumulate_covered(beta, out);
}

void CoverKernel::accumulate_covered(ParityFunc beta,
                                     std::uint64_t* acc) const {
  beta &= beta_mask_;
  if (beta == 0 || m_ == 0) return;
  std::vector<std::uint64_t> tmp(words_);
  for (int k = 0; k < steps_; ++k) {
    xor_selected(*this, k, beta, tmp.data());
    for (std::size_t w = 0; w < words_; ++w) acc[w] |= tmp[w];
  }
}

std::size_t CoverKernel::count(const std::uint64_t* bits) const {
  std::size_t c = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    c += static_cast<std::size_t>(std::popcount(bits[w]));
  }
  return c;
}

std::size_t CoverKernel::coverage_count(ParityFunc beta) const {
  if (m_ == 0) return 0;
  std::vector<std::uint64_t> cov(words_);
  accumulate_covered(beta, cov.data());
  return count(cov.data());
}

bool CoverKernel::covers_all(std::span<const ParityFunc> betas) const {
  const bool full = uncovered_count(betas) == 0;
#ifndef NDEBUG
  // Scalar-oracle agreement (debug builds only).
  bool scalar = true;
  for (std::size_t r = 0; r < m_ && scalar; ++r) {
    scalar = covers(betas, table_->cases[global_row(
                               static_cast<std::uint32_t>(r))]);
  }
  assert(scalar == full && "CoverKernel::covers_all disagrees with scalar");
#endif
  return full;
}

std::size_t CoverKernel::uncovered_count(
    std::span<const ParityFunc> betas) const {
  if (m_ == 0) return 0;
  std::vector<std::uint64_t> acc(words_);
  for (const ParityFunc b : betas) accumulate_covered(b, acc.data());
  return m_ - count(acc.data());
}

std::vector<std::uint32_t> CoverKernel::uncovered(
    std::span<const ParityFunc> betas) const {
  std::vector<std::uint32_t> out;
  if (m_ == 0) return out;
  std::vector<std::uint64_t> acc(words_);
  for (const ParityFunc b : betas) accumulate_covered(b, acc.data());
  acc[words_ - 1] |= ~last_word_mask(m_);  // padding reads as covered
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t miss = ~acc[w];
    while (miss != 0) {
      const int b = std::countr_zero(miss);
      miss &= miss - 1;
      out.push_back(static_cast<std::uint32_t>((w << 6) + b));
    }
  }
#ifndef NDEBUG
  // Scalar-oracle agreement (debug builds only).
  std::vector<std::uint32_t> scalar;
  for (std::size_t r = 0; r < m_; ++r) {
    if (!covers(betas,
                table_->cases[global_row(static_cast<std::uint32_t>(r))])) {
      scalar.push_back(static_cast<std::uint32_t>(r));
    }
  }
  assert(scalar == out && "CoverKernel::uncovered disagrees with scalar");
#endif
  return out;
}

bool CoverKernel::union_is_full(const std::uint64_t* a,
                                const std::uint64_t* b) const {
  if (m_ == 0) return true;
  for (std::size_t w = 0; w + 1 < words_; ++w) {
    if ((a[w] | b[w]) != ~std::uint64_t{0}) return false;
  }
  return (a[words_ - 1] | b[words_ - 1] | ~last_word_mask(m_)) ==
         ~std::uint64_t{0};
}

// ---------------------------------------------------------------------------
// BetaCursor
// ---------------------------------------------------------------------------

BetaCursor::BetaCursor(const CoverKernel& kernel, ParityFunc beta)
    : k_(&kernel),
      steps_(static_cast<std::size_t>(kernel.num_steps()) *
                 kernel.num_words(),
             0) {
  beta &= kernel.num_bits() >= 64
              ? ~std::uint64_t{0}
              : ((std::uint64_t{1} << kernel.num_bits()) - 1);
  while (beta != 0) {
    const int j = std::countr_zero(beta);
    beta &= beta - 1;
    flip(j);
  }
}

void BetaCursor::flip(int j) {
  beta_ ^= std::uint64_t{1} << j;
  const std::size_t W = k_->num_words();
  for (int k = 0; k < k_->num_steps(); ++k) {
    const auto col = k_->column(k, j);
    std::uint64_t* step = steps_.data() + static_cast<std::size_t>(k) * W;
    for (std::size_t w = 0; w < W; ++w) step[w] ^= col[w];
  }
}

std::size_t BetaCursor::covered_count() const {
  const std::size_t W = k_->num_words();
  const int steps = k_->num_steps();
  std::size_t c = 0;
  for (std::size_t w = 0; w < W; ++w) {
    std::uint64_t acc = 0;
    for (int k = 0; k < steps; ++k) {
      acc |= steps_[static_cast<std::size_t>(k) * W + w];
    }
    c += static_cast<std::size_t>(std::popcount(acc));
  }
  return c;
}

void BetaCursor::or_covered_into(std::uint64_t* acc) const {
  const std::size_t W = k_->num_words();
  const int steps = k_->num_steps();
  for (std::size_t w = 0; w < W; ++w) {
    std::uint64_t v = 0;
    for (int k = 0; k < steps; ++k) {
      v |= steps_[static_cast<std::size_t>(k) * W + w];
    }
    acc[w] |= v;
  }
}

// ---------------------------------------------------------------------------
// Condensation
// ---------------------------------------------------------------------------

CondensedTable condense_table(const DetectabilityTable& table) {
  CondensedTable out;
  out.table = table;
  out.table.cases.clear();
  out.table.cases.reserve(table.cases.size());
  out.kept_rows.reserve(table.cases.size());

  std::unordered_set<ErroneousCase, ErroneousCaseHash> all(
      table.cases.begin(), table.cases.end(), table.cases.size() * 2 + 1);

  for (std::size_t i = 0; i < table.cases.size(); ++i) {
    const ErroneousCase& ec = table.cases[i];
    bool dominated = false;
    if (ec.length > 1) {
      // Probe every nonempty proper subset of the word set; the subset of a
      // sorted distinct sequence is itself sorted and distinct, hence
      // canonical and directly hashable.
      const unsigned full = (1u << ec.length) - 1u;
      for (unsigned sel = 1; sel < full && !dominated; ++sel) {
        ErroneousCase sub;
        sub.length = static_cast<std::uint8_t>(std::popcount(sel));
        int t = 0;
        for (int k = 0; k < ec.length; ++k) {
          if ((sel >> k) & 1u) {
            sub.diff[static_cast<std::size_t>(t++)] =
                ec.diff[static_cast<std::size_t>(k)];
          }
        }
        dominated = all.contains(sub);
      }
    }
    if (dominated) {
      ++out.removed;
    } else {
      out.kept_rows.push_back(static_cast<std::uint32_t>(i));
      out.table.cases.push_back(ec);
    }
  }
  return out;
}

}  // namespace ced::core
