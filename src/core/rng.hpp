#pragma once

#include <cstdint>

namespace ced::core {

/// Small deterministic xorshift64* PRNG. All randomized stages of the
/// library draw from this so runs are reproducible from a seed; nothing
/// reads entropy from the environment.
struct Rng {
  std::uint64_t state = 0x5eed;

  explicit Rng(std::uint64_t seed = 0x5eed) : state(seed | 1) {}

  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with the given probability.
  bool flip(double probability) { return uniform() < probability; }
};

}  // namespace ced::core
