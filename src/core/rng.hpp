#pragma once

#include <cstdint>

namespace ced::core {

/// Small deterministic xorshift64* PRNG. All randomized stages of the
/// library draw from this so runs are reproducible from a seed; nothing
/// reads entropy from the environment.
///
/// Seeds are run through a splitmix64 finalizer before use: the raw seed
/// value is an *identifier*, not the xorshift state. The old `seed | 1`
/// initialization aliased seed 0 onto seed 1 and gave adjacent seeds
/// heavily correlated streams (xorshift only slowly diffuses single-bit
/// state differences); the mixer decorrelates them, which the concurrent
/// rounding and per-worker streams rely on (one stream per (seed, index)).
struct Rng {
  std::uint64_t state = 0;

  /// splitmix64 finalizer: a bijective 64-bit mix with full avalanche.
  static constexpr std::uint64_t mix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  explicit Rng(std::uint64_t seed = 0x5eed) : state(mix(seed)) {
    // xorshift64* requires nonzero state; mix() maps exactly one input to 0.
    if (state == 0) state = 0x9e3779b97f4a7c15ull;
  }

  /// Decorrelated child stream, deterministic in (this stream's seed,
  /// index): used to give each rounding trial / worker its own
  /// reproducible sequence regardless of execution order.
  Rng stream(std::uint64_t index) const {
    Rng child(0);
    child.state = mix(state ^ mix(index));
    if (child.state == 0) child.state = 0x9e3779b97f4a7c15ull;
    return child;
  }

  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with the given probability.
  bool flip(double probability) { return uniform() < probability; }
};

}  // namespace ced::core
