#pragma once

#include <span>
#include <vector>

#include "fsm/synthesize.hpp"
#include "sim/faults.hpp"

namespace ced::core {

struct LatencyAnalysisOptions {
  /// Cap on the reported bound (path enumeration cost grows with it).
  int max_latency = 8;
  bool restrict_to_reachable = true;
};

/// Per-fault loop structure summary.
struct LatencyAnalysis {
  /// For each fault: the depth at which path enumeration saturates — the
  /// length of the longest loop-free faulty path from any activation,
  /// capped at max_latency (0 when the fault never activates). Beyond this
  /// depth every path of the fault has revisited a state, so additional
  /// latency opens no new detection alternatives for it (§2's loop rule).
  std::vector<int> shortest_loop_per_fault;
  /// max over faults: increasing the latency bound beyond this value can
  /// never reduce the number of parity functions further.
  int max_useful_latency = 0;
};

/// Implements §2's "maximum latency of interest": the bound past which the
/// loop rule has truncated every enumeration path of every fault.
LatencyAnalysis analyze_useful_latency(
    const fsm::FsmCircuit& circuit, std::span<const sim::StuckAtFault> faults,
    const LatencyAnalysisOptions& opts = {});

}  // namespace ced::core
