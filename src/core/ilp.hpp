#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/extract.hpp"
#include "lp/simplex.hpp"

namespace ced::core {

/// An LP relaxation instance of the parity-selection problem for a fixed
/// number of trees `q` over a subset of the detectability table's rows.
/// Variable bookkeeping lets the rounding stage find the beta variables.
struct LpFormulation {
  lp::LpProblem problem;
  int q = 0;
  int n = 0;
  int p = 0;
  /// Row indices of the table included in this formulation.
  std::vector<std::uint32_t> rows;
  /// beta_var[l * n + j] = LP variable index of beta^{(l)}_j.
  std::vector<int> beta_var;
};

/// Builds the LP relaxation of Statement 5 with the auxiliary w variables
/// eliminated analytically (w = (V beta - r) / 2, whose [0, n/2] bounds
/// reduce to r <= V beta). This is the production formulation: it has the
/// same feasible beta/r set as Statement 5 but q*p*m fewer variables.
///
/// Objective: minimize sum of beta (prefers sparse parity trees so the
/// rounded points stay cheap).
LpFormulation build_lp(const DetectabilityTable& table,
                       std::span<const std::uint32_t> rows, int q);

/// Builds the *literal* Statement 5 of the paper, including the w
/// variables and the mod-removing equalities. Used to validate that the
/// reduced formulation is an exact reformulation.
LpFormulation build_lp_statement5(const DetectabilityTable& table,
                                  std::span<const std::uint32_t> rows, int q);

/// Extracts the fractional beta block from an LP solution.
/// Result[l][j] = value of beta^{(l)}_j in [0,1].
std::vector<std::vector<double>> beta_values(const LpFormulation& f,
                                             const lp::LpResult& r);

}  // namespace ced::core
