#include "core/run.hpp"

#include "common/digest.hpp"
#include "core/erroneous_case.hpp"

namespace ced {

using core::PipelineOptions;

RunConfig RunConfig::wrap(core::PipelineOptions opts) {
  RunConfig cfg;
  cfg.opts_ = std::move(opts);
  return cfg;
}

std::string RunConfig::digest() const {
  const PipelineOptions& o = opts_;
  Digest128 d;
  d.absorb(std::uint64_t{1});  // config-digest schema version
  d.absorb(static_cast<std::uint64_t>(o.encoding));
  d.absorb(static_cast<std::uint64_t>(o.latency));
  d.absorb(static_cast<std::uint64_t>(o.solver));
  d.absorb(std::uint64_t{o.condense ? 1u : 0u});
  // Synthesis shaping (front end and CED back end).
  d.absorb(static_cast<std::uint64_t>(o.synth.minimizer));
  d.absorb(std::uint64_t{o.synth.factor ? 1u : 0u});
  d.absorb(std::uint64_t{o.synth.optimize ? 1u : 0u});
  d.absorb(static_cast<std::uint64_t>(o.ced.minimizer));
  d.absorb(std::uint64_t{o.ced.dc_unreachable ? 1u : 0u});
  d.absorb(std::uint64_t{o.ced.factor ? 1u : 0u});
  d.absorb(std::uint64_t{o.ced.optimize ? 1u : 0u});
  d.absorb(std::uint64_t{o.ced.two_rail ? 1u : 0u});
  // Fault model + extraction shaping.
  d.absorb(std::uint64_t{o.faults.collapse ? 1u : 0u});
  d.absorb(static_cast<std::uint64_t>(o.extract.semantics));
  d.absorb(std::uint64_t{o.extract.restrict_to_reachable ? 1u : 0u});
  d.absorb(static_cast<std::uint64_t>(o.extract.degrade_threshold));
  d.absorb(static_cast<std::uint64_t>(o.extract.max_cases));
  d.absorb(static_cast<std::uint64_t>(o.checkpoint_shards));
  // Solver knobs (Algorithm 1, exact, greedy, LP).
  d.absorb(static_cast<std::uint64_t>(o.algo.iter));
  d.absorb(static_cast<std::uint64_t>(o.algo.lp_sample_rows));
  d.absorb(static_cast<std::uint64_t>(o.algo.row_rounds));
  d.absorb(static_cast<std::uint64_t>(o.algo.verify_sample_cap));
  d.absorb(std::uint64_t{o.algo.repair ? 1u : 0u});
  d.absorb(std::uint64_t{o.algo.post_optimize ? 1u : 0u});
  d.absorb(std::uint64_t{o.algo.use_statement5 ? 1u : 0u});
  d.absorb(o.algo.seed);
  d.absorb(static_cast<std::uint64_t>(o.algo.lp.max_iterations));
  d.absorb(o.algo.lp.eps);
  d.absorb(static_cast<std::uint64_t>(o.algo.greedy.restarts));
  d.absorb(static_cast<std::uint64_t>(o.algo.greedy.sample_cap));
  d.absorb(o.algo.greedy.seed);
  d.absorb(static_cast<std::uint64_t>(o.exact.max_bits));
  d.absorb(static_cast<std::uint64_t>(o.exact.max_nodes));
  // Budget valves: they shape (truncate) results, so they are part of the
  // config identity even though complete runs never feel them.
  d.absorb(o.budget.wall_seconds);
  d.absorb(static_cast<std::uint64_t>(o.budget.max_cases));
  d.absorb(static_cast<std::uint64_t>(o.budget.max_lp_iterations));
  d.absorb(static_cast<std::uint64_t>(o.budget.max_rounding_attempts));
  d.absorb(static_cast<std::uint64_t>(o.budget.max_exact_nodes));
  d.absorb(static_cast<std::uint64_t>(o.max_new_shards));
  return d.hex();
}

RunConfig::Builder& RunConfig::Builder::latency(int p) {
  opts_.latency = p;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::solver(core::SolverKind kind) {
  opts_.solver = kind;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::encoding(fsm::EncodingKind e) {
  opts_.encoding = e;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::semantics(core::DiffSemantics s) {
  opts_.extract.semantics = s;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::threads(int n) {
  opts_.threads = n;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::condense(bool on) {
  opts_.condense = on;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::seed(std::uint64_t s) {
  opts_.algo.seed = s;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::budget(const core::RunBudget& b) {
  opts_.budget = b;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::wall_seconds(double s) {
  opts_.budget.wall_seconds = s;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::max_cases(std::size_t n) {
  opts_.budget.max_cases = n;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::archive(core::ExtractArchive* a) {
  opts_.archive = a;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::resume(bool on) {
  opts_.resume = on;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::checkpoint_shards(int n) {
  opts_.checkpoint_shards = n;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::max_new_shards(int n) {
  opts_.max_new_shards = n;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::observe(const obs::Sinks& sinks) {
  opts_.obs = sinks;
  return *this;
}
RunConfig::Builder& RunConfig::Builder::tune(
    const std::function<void(core::PipelineOptions&)>& fn) {
  fn(opts_);
  return *this;
}

Result<RunConfig> RunConfig::Builder::build() const {
  const PipelineOptions& o = opts_;
  const auto invalid = [](std::string msg) {
    return Result<RunConfig>(
        Status::invalid_input(Stage::kPipeline, std::move(msg)));
  };
  if (o.latency < 1 || o.latency > core::kMaxLatency) {
    return invalid("latency bound " + std::to_string(o.latency) +
                   " out of range [1, " + std::to_string(core::kMaxLatency) +
                   "]");
  }
  if (o.threads < 0) {
    return invalid("threads must be >= 0 (0 = CED_THREADS/auto), got " +
                   std::to_string(o.threads));
  }
  if (o.checkpoint_shards < 0) {
    return invalid("checkpoint_shards must be >= 0 (0 = default), got " +
                   std::to_string(o.checkpoint_shards));
  }
  if (o.max_new_shards < 0) {
    return invalid("max_new_shards must be >= 0 (0 = no limit), got " +
                   std::to_string(o.max_new_shards));
  }
  if (o.archive == nullptr && o.resume) {
    return invalid("resume requested without an artifact archive");
  }
  if (o.archive == nullptr && o.max_new_shards > 0) {
    return invalid("max_new_shards requested without an artifact archive");
  }
  if (o.budget.wall_seconds < 0.0) {
    return invalid("budget.wall_seconds must be >= 0, got " +
                   std::to_string(o.budget.wall_seconds));
  }
  if (o.budget.max_lp_iterations < 0 || o.budget.max_rounding_attempts < 0) {
    return invalid("budget iteration caps must be >= 0");
  }
  if (o.algo.iter < 1) {
    return invalid("algo.iter (rounding attempts per LP solution) must be "
                   ">= 1, got " + std::to_string(o.algo.iter));
  }
  if (o.algo.lp_sample_rows < 1 || o.algo.row_rounds < 1) {
    return invalid("algo.lp_sample_rows and algo.row_rounds must be >= 1");
  }
  if (o.exact.max_bits < 1 || o.exact.max_bits > 64) {
    return invalid("exact.max_bits out of range [1, 64], got " +
                   std::to_string(o.exact.max_bits));
  }
  return RunConfig::wrap(o);
}

core::PipelineReport run_pipeline(const fsm::Fsm& f, const RunConfig& cfg) {
  auto sweep = run_latency_sweep(
      f, std::vector<int>{cfg.options().latency}, cfg);
  return sweep.front();
}

std::vector<core::PipelineReport> run_latency_sweep(
    const fsm::Fsm& f, std::span<const int> latencies, const RunConfig& cfg) {
  return core::run_latency_sweep_impl(f, latencies, cfg.options());
}

}  // namespace ced
