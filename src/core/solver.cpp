#include "core/solver.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <string>

#include "core/exact.hpp"

namespace ced::core {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ----------------------------------------------------------------- exact

class ExactSolver final : public Solver {
 public:
  const char* name() const override { return "exact"; }
  CascadeLevel level() const override { return CascadeLevel::kExact; }

  Result<ParityScheme> solve(SolverContext& ctx,
                             const PipelineOptions& opts) const override {
    const DetectabilityTable& table = *ctx.table;
    ExactOptions ex = opts.exact;
    if (opts.budget.max_exact_nodes > 0) {
      ex.max_nodes = opts.budget.max_exact_nodes;
    }
    if (ctx.deadline.armed() && !ex.deadline.armed()) ex.deadline = ctx.deadline;

    obs::ScopedSpan span(ctx.obs, "solver:exact");
    ExactOutcome outcome;
    auto sol = exact_min_cover(table, ex, &outcome);
    span.attr("nodes", static_cast<std::uint64_t>(outcome.nodes));
    if (ctx.obs.metrics != nullptr) {
      obs::MetricsShard shard(ctx.obs.metrics);
      shard.add("ced_exact_solves_total");
      shard.add("ced_exact_nodes_total",
                static_cast<std::uint64_t>(outcome.nodes));
    }
    if (sol) {
      span.attr("q", static_cast<std::uint64_t>(sol->size()));
      if (ctx.stats != nullptr) {
        ctx.stats->final_q = static_cast<int>(sol->size());
      }
      return ParityScheme{std::move(*sol), CascadeLevel::kExact};
    }
    std::string why;
    if (outcome.too_large) {
      why = "instance exceeds exact-solver size limit";
    } else if (outcome.deadline_hit) {
      why = "wall-clock budget exhausted after " +
            std::to_string(outcome.nodes) + " branch-and-bound nodes";
    } else if (outcome.node_budget_hit) {
      why = "branch-and-bound node budget (" + std::to_string(outcome.nodes) +
            " nodes) exhausted";
    } else if (outcome.uncoverable) {
      why = "a case is uncoverable within the candidate space";
    } else {
      why = "exact search could not certify an optimum";
    }
    return Status{outcome.uncoverable ? StatusCode::kInfeasible
                                      : StatusCode::kTruncated,
                  Stage::kExact, std::move(why)};
  }
};

// ----------------------------------------------------- Algorithm 1 (LP+RR)

class LpRoundingSolver final : public Solver {
 public:
  const char* name() const override { return "LP+rounding"; }
  CascadeLevel level() const override { return CascadeLevel::kLpRounding; }

  Result<ParityScheme> solve(SolverContext& ctx,
                             const PipelineOptions& opts) const override {
    const DetectabilityTable& table = *ctx.table;
    if (ctx.deadline.expired()) {
      return Status::truncated(
          Stage::kLp, "wall-clock budget exhausted before the LP stage");
    }
    Algorithm1Options algo = opts.algo;
    algo.threads = opts.threads;
    if (ctx.obs.enabled()) algo.obs = ctx.obs;
    if (ctx.deadline.armed() && !algo.deadline.armed()) {
      algo.deadline = ctx.deadline;
    }
    if (opts.budget.max_lp_iterations > 0) {
      algo.lp.max_iterations = opts.budget.max_lp_iterations;
    }
    if (opts.budget.max_rounding_attempts > 0) {
      algo.iter = std::min(algo.iter, opts.budget.max_rounding_attempts);
    }
    Algorithm1Stats local;
    Algorithm1Stats* st = ctx.stats != nullptr ? ctx.stats : &local;
    auto sol = minimize_parity_functions(table, algo, st, ctx.warm_start, &ctx);
    if (ctx.resilience != nullptr) {
      if (st->lp_budget_hit) {
        ctx.resilience->record(
            Stage::kLp, StatusCode::kTruncated,
            "LP solve stopped on its iteration/time budget (" +
                std::to_string(st->lp_iterations) + " pivots total)",
            seconds_since(ctx.cascade_start), table.cases.size());
      }
      if (st->deadline_hit && !st->lp_budget_hit) {
        ctx.resilience->record(
            Stage::kRounding, StatusCode::kTruncated,
            "wall-clock budget cut the rounding search short after " +
                std::to_string(st->roundings) + " roundings",
            seconds_since(ctx.cascade_start), table.cases.size());
      }
    }
    // greedy_fallback under budget pressure means the answer really came
    // from the next cascade level; without pressure it just means the
    // greedy bound was already optimal — not a degradation.
    CascadeLevel delivered = CascadeLevel::kLpRounding;
    if (st->greedy_fallback && (st->lp_budget_hit || st->deadline_hit)) {
      delivered = st->greedy_degraded ? CascadeLevel::kDuplication
                                      : CascadeLevel::kGreedy;
    }
    return ParityScheme{std::move(sol), delivered};
  }
};

// ---------------------------------------------------------------- greedy

class GreedySolver final : public Solver {
 public:
  const char* name() const override { return "greedy"; }
  CascadeLevel level() const override { return CascadeLevel::kGreedy; }

  Result<ParityScheme> solve(SolverContext& ctx,
                             const PipelineOptions& opts) const override {
    const DetectabilityTable& table = *ctx.table;
    GreedyOptions greedy = opts.algo.greedy;
    if (ctx.deadline.armed() && !greedy.deadline.armed()) {
      greedy.deadline = ctx.deadline;
    }
    if (ctx.obs.enabled()) greedy.obs = ctx.obs;
    GreedyStats gs;
    auto sol = greedy_cover(table, greedy, &gs, ctx.kernel_ptr());
    if (gs.deadline_hit && ctx.resilience != nullptr) {
      ctx.resilience->record(
          Stage::kGreedy, StatusCode::kTruncated,
          "greedy search out of time; closed out with " +
              std::to_string(gs.single_bit_completions) +
              " single-bit functions (duplication-style floor)",
          seconds_since(ctx.cascade_start), table.cases.size());
    }
    if (ctx.stats != nullptr) {
      ctx.stats->final_q = static_cast<int>(sol.size());
      ctx.stats->greedy_fallback = true;
      ctx.stats->deadline_hit = ctx.stats->deadline_hit || gs.deadline_hit;
      ctx.stats->greedy_degraded =
          ctx.stats->greedy_degraded || gs.deadline_hit;
    }
    // The single-bit close-out keeps this level infallible, which is what
    // lets the cascade driver stay a plain loop.
    return ParityScheme{std::move(sol), gs.deadline_hit
                                            ? CascadeLevel::kDuplication
                                            : CascadeLevel::kGreedy};
  }
};

}  // namespace

std::span<const Solver* const> solver_cascade() {
  static const ExactSolver exact;
  static const LpRoundingSolver lp;
  static const GreedySolver greedy;
  static const std::array<const Solver*, 3> table = {&exact, &lp, &greedy};
  return table;
}

std::size_t cascade_entry(SolverKind kind) {
  switch (kind) {
    case SolverKind::kExact: return 0;
    case SolverKind::kLpRounding: return 1;
    case SolverKind::kGreedy: return 2;
  }
  return 1;
}

CascadeLevel cascade_level_of(SolverKind kind) {
  return solver_cascade()[cascade_entry(kind)]->level();
}

}  // namespace ced::core
