#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace ced::core {

/// Cooperative resource budget for one pipeline run. Every limit is a soft
/// valve checked inside the stage's own loop (EC-extraction DFS, simplex
/// pivoting, rounding retries, branch-and-bound): when it trips, the stage
/// stops where it is and returns partial-but-honest results with a
/// truncation status instead of throwing. Zero means "no limit here"
/// (stage-level defaults still apply).
struct RunBudget {
  /// Wall-clock budget for the whole run, shared by all stages.
  double wall_seconds = 0.0;
  /// Cap on erroneous cases per detectability table (overrides
  /// ExtractOptions::max_cases when nonzero).
  std::size_t max_cases = 0;
  /// Cap on simplex iterations per LP solve.
  int max_lp_iterations = 0;
  /// Cap on randomized-rounding attempts per LP solution.
  int max_rounding_attempts = 0;
  /// Cap on branch-and-bound nodes for the exact solver.
  std::size_t max_exact_nodes = 0;

  /// Optional external interrupt channel (non-owning; must outlive the
  /// run). When the pointed-to flag becomes true, every Deadline built
  /// from this budget reports expired() at the next cooperative poll, so
  /// the run checkpoints and degrades exactly as if its wall clock had
  /// run out. This is how ced_cli turns SIGINT into a prompt checkpoint
  /// and how the ced_serve daemon drains in-flight work on SIGTERM.
  /// Deliberately not part of unlimited(): an interrupt channel is not a
  /// standing limit, and it never shapes results unless it actually fires
  /// (tripped runs report kTruncated like any other valve).
  const std::atomic<bool>* interrupt = nullptr;

  bool unlimited() const {
    return wall_seconds <= 0.0 && max_cases == 0 && max_lp_iterations == 0 &&
           max_rounding_attempts == 0 && max_exact_nodes == 0;
  }
};

/// A wall-clock deadline that stages poll cooperatively. Default-constructed
/// deadlines never expire, so unlimited runs pay only a branch.
class Deadline {
 public:
  Deadline() = default;

  static Deadline after(double seconds) {
    Deadline d;
    if (seconds > 0.0) {
      d.armed_ = true;
      d.at_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
    }
    return d;
  }

  /// Unlimited when the budget has no wall-clock component — unless the
  /// budget carries an interrupt flag, which arms the deadline as a pure
  /// trip wire (no time component, expires only when the flag fires).
  static Deadline from(const RunBudget& budget) {
    Deadline d = after(budget.wall_seconds);
    d.trip_ = budget.interrupt;
    return d;
  }

  bool armed() const { return armed_ || trip_ != nullptr; }
  bool expired() const {
    if (trip_ != nullptr && trip_->load(std::memory_order_relaxed)) {
      return true;
    }
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Time point for APIs that take absolute deadlines (the LP solver);
  /// time_point::max() when unarmed.
  std::chrono::steady_clock::time_point time_point() const {
    return armed_ ? at_ : std::chrono::steady_clock::time_point::max();
  }

 private:
  bool armed_ = false;
  const std::atomic<bool>* trip_ = nullptr;
  std::chrono::steady_clock::time_point at_{};
};

/// Answer-quality levels of the solver degradation cascade, best first.
/// A run that cannot finish its requested level falls to the next one;
/// the duplication-style floor (one single-bit function per needed
/// observable bit, the classical duplicate-and-compare shape) is computable
/// in one pass over the table and always feasible.
enum class CascadeLevel {
  kExact = 0,
  kLpRounding,
  kGreedy,
  kDuplication,
};

const char* to_string(CascadeLevel level);

/// One recorded downgrade or truncation: which stage fired, why, and how
/// much of the run had been consumed when it did.
struct FallbackEvent {
  Stage stage = Stage::kNone;
  StatusCode reason = StatusCode::kTruncated;
  std::string detail;
  double seconds = 0.0;       ///< wall-clock into the run when it fired
  std::size_t cases_seen = 0; ///< table rows available at that point
};

/// Resilience diagnostics for one pipeline report: overall classification,
/// which degradations fired, and which cascade level produced the answer.
/// `status.code == kOk` means the full-quality path ran to completion;
/// kTruncated means the result is valid for the cases actually covered but
/// some budget valve fired along the way.
struct ResilienceReport {
  Status status;
  bool extraction_truncated = false;
  bool table_strengthened = false;
  CascadeLevel solver_requested = CascadeLevel::kLpRounding;
  CascadeLevel solver_used = CascadeLevel::kLpRounding;
  std::vector<FallbackEvent> events;

  /// Artifact-store incidents (a corrupt cache file quarantined and
  /// transparently recomputed, an unwritable checkpoint, ...). Deliberately
  /// NOT part of degraded(): the store always falls back to recomputation,
  /// so the answer itself is full quality — these lines are an audit trail,
  /// not a quality downgrade.
  std::vector<std::string> store_events;

  bool degraded() const {
    return !status.ok() || extraction_truncated ||
           solver_used != solver_requested || !events.empty();
  }

  void record(Stage stage, StatusCode reason, std::string detail,
              double seconds = 0.0, std::size_t cases_seen = 0) {
    events.push_back({stage, reason, std::move(detail), seconds, cases_seen});
  }

  /// Multi-line human summary (one line per event) for CLI stderr and
  /// bench logs; empty string when nothing degraded.
  std::string summary() const;
};

}  // namespace ced::core
