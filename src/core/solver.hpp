#pragma once

// The common interface behind the three parity-selection solvers
// (Algorithm 1 / LP+rounding, greedy, exact) and the table the degradation
// cascade iterates over.
//
// Before this header, pipeline.cpp hand-rolled the cascade as a chain of
// if/else blocks, each re-spelling how to budget its solver, when to give
// up, and what to write into the resilience report. Now every level is a
// Solver: it reads its run-scoped inputs (deadline, warm start, stats,
// obs sinks) from the SolverContext the driver built once per table, and
// either returns a complete ParityScheme or a classified Status explaining
// why the cascade should fall one level. The driver in pipeline.cpp is a
// loop over solver_cascade() — adding a level means adding a row, not a
// branch.

#include <span>

#include "core/algorithm1.hpp"
#include "core/pipeline.hpp"

namespace ced::core {

/// What one cascade level delivered: a complete cover plus the answer
/// quality it actually achieved. `level` can be lower than the solver's
/// nominal level (the LP solver reports kGreedy when budget pressure made
/// it return its greedy seed; greedy reports kDuplication after the
/// single-bit close-out).
struct ParityScheme {
  std::vector<ParityFunc> parities;
  CascadeLevel level = CascadeLevel::kLpRounding;
};

/// One parity-selection strategy. Implementations are stateless; all
/// run-scoped state travels through the SolverContext.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Human label used in fallback messages ("exact", "LP+rounding", ...).
  virtual const char* name() const = 0;
  /// Nominal cascade level of this solver.
  virtual CascadeLevel level() const = 0;

  /// Attempts a complete cover of *ctx.table. A Status result (kTruncated,
  /// kInfeasible) means "this level cannot certify an answer" and sends
  /// the cascade to the next row; non-fatal degradations inside a
  /// successful solve are recorded through ctx.resilience instead.
  virtual Result<ParityScheme> solve(SolverContext& ctx,
                                     const PipelineOptions& opts) const = 0;
};

/// The registered cascade, best answer quality first: exact, LP+rounding,
/// greedy (whose single-bit close-out is the duplication-style floor, so
/// the last row never fails). Stateless singletons with static storage.
std::span<const Solver* const> solver_cascade();

/// Index into solver_cascade() where `kind` enters the cascade.
std::size_t cascade_entry(SolverKind kind);

/// The CascadeLevel a requested SolverKind corresponds to.
CascadeLevel cascade_level_of(SolverKind kind);

}  // namespace ced::core
