#pragma once

#include "fsm/synthesize.hpp"
#include "logic/area.hpp"

namespace ced::core {

/// Cost of the classical duplicate-and-compare CED baseline the paper
/// measures against (§5): a full copy of the next-state/output logic with
/// its own shadow state register, plus an n-bit inequality comparator.
/// Every observable bit is independently predicted, so the scheme uses n
/// "functions" where the parity method uses q trees.
struct DuplicationReport {
  std::size_t functions = 0;        ///< n = s + o
  std::size_t gates = 0;            ///< duplicate logic + comparator gates
  double area = 0.0;                ///< incl. shadow state register DFFs
};

DuplicationReport duplication_baseline(const fsm::FsmCircuit& circuit,
                                       const logic::CellLibrary& lib,
                                       const logic::SynthOptions& synth = {});

}  // namespace ced::core
