#include "core/parity.hpp"

#include <bit>

namespace ced::core {

bool covers_all(std::span<const ParityFunc> betas,
                const DetectabilityTable& table) {
  for (const ErroneousCase& ec : table.cases) {
    if (!covers(betas, ec)) return false;
  }
  return true;
}

std::vector<std::uint32_t> uncovered_cases(std::span<const ParityFunc> betas,
                                           const DetectabilityTable& table) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < table.cases.size(); ++i) {
    if (!covers(betas, table.cases[i])) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

std::vector<std::uint32_t> uncovered_among(
    std::span<const ParityFunc> betas, const DetectabilityTable& table,
    std::span<const std::uint32_t> rows) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i : rows) {
    if (!covers(betas, table.cases[i])) out.push_back(i);
  }
  return out;
}

std::vector<ParityFunc> prune_redundant(std::span<const ParityFunc> betas,
                                        const DetectabilityTable& table) {
  std::vector<ParityFunc> kept(betas.begin(), betas.end());
  // Try removing from the back so earlier (usually stronger) trees survive.
  for (std::size_t i = kept.size(); i-- > 0;) {
    std::vector<ParityFunc> trial;
    trial.reserve(kept.size() - 1);
    for (std::size_t j = 0; j < kept.size(); ++j) {
      if (j != i) trial.push_back(kept[j]);
    }
    if (covers_all(trial, table)) kept = std::move(trial);
  }
  return kept;
}

}  // namespace ced::core
