#include "core/parity.hpp"

#include <bit>

#include "core/coverkernel.hpp"

namespace ced::core {
namespace {

/// Whether to route a one-shot query through a freshly built bit-sliced
/// kernel. Building costs one scatter pass over the rows, so it only pays
/// off for multi-beta queries on enough rows; both paths compute identical
/// results, so the threshold affects speed only.
bool route_to_kernel(std::size_t num_rows, std::size_t num_betas) {
  return kernel_mode() == KernelMode::kBitsliced && num_betas >= 2 &&
         num_rows >= 1024;
}

std::vector<ParityFunc> prune_scalar(std::span<const ParityFunc> betas,
                                     const DetectabilityTable& table) {
  std::vector<ParityFunc> kept(betas.begin(), betas.end());
  // Try removing from the back so earlier (usually stronger) trees survive.
  for (std::size_t i = kept.size(); i-- > 0;) {
    std::vector<ParityFunc> trial;
    trial.reserve(kept.size() - 1);
    for (std::size_t j = 0; j < kept.size(); ++j) {
      if (j != i) trial.push_back(kept[j]);
    }
    bool all = true;
    for (const ErroneousCase& ec : table.cases) {
      if (!covers(trial, ec)) {
        all = false;
        break;
      }
    }
    if (all) kept = std::move(trial);
  }
  return kept;
}

/// One pass over per-tree coverage bitmaps instead of the O(q^2 * m)
/// re-verification loop. Walking trees from the back, tree t is removable
/// iff the union of every earlier tree (all still present when the scalar
/// loop reaches t) and every kept later tree already covers all rows —
/// i.e. no row is covered only by tree t. Prefix unions are precomputed
/// and the kept-suffix union accumulates during the walk, reproducing the
/// scalar back-to-front removal order exactly.
std::vector<ParityFunc> prune_kernel(std::span<const ParityFunc> betas,
                                     const CoverKernel& kernel) {
  const std::size_t q = betas.size();
  const std::size_t W = kernel.num_words();
  std::vector<std::uint64_t> cov(q * W, 0);
  for (std::size_t t = 0; t < q; ++t) {
    kernel.covered_bitmap(betas[t], cov.data() + t * W);
  }
  std::vector<std::uint64_t> pre((q + 1) * W, 0);
  for (std::size_t t = 0; t < q; ++t) {
    for (std::size_t w = 0; w < W; ++w) {
      pre[(t + 1) * W + w] = pre[t * W + w] | cov[t * W + w];
    }
  }
  std::vector<std::uint64_t> suf(W, 0);
  std::vector<char> keep(q, 1);
  for (std::size_t t = q; t-- > 0;) {
    if (kernel.union_is_full(pre.data() + t * W, suf.data())) {
      keep[t] = 0;
    } else {
      for (std::size_t w = 0; w < W; ++w) suf[w] |= cov[t * W + w];
    }
  }
  std::vector<ParityFunc> out;
  out.reserve(q);
  for (std::size_t t = 0; t < q; ++t) {
    if (keep[t]) out.push_back(betas[t]);
  }
  return out;
}

}  // namespace

bool covers_all(std::span<const ParityFunc> betas,
                const DetectabilityTable& table) {
  if (route_to_kernel(table.cases.size(), betas.size())) {
    return CoverKernel(table).covers_all(betas);
  }
  for (const ErroneousCase& ec : table.cases) {
    if (!covers(betas, ec)) return false;
  }
  return true;
}

std::vector<std::uint32_t> uncovered_cases(std::span<const ParityFunc> betas,
                                           const DetectabilityTable& table) {
  if (route_to_kernel(table.cases.size(), betas.size())) {
    return CoverKernel(table).uncovered(betas);
  }
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < table.cases.size(); ++i) {
    if (!covers(betas, table.cases[i])) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

std::vector<std::uint32_t> uncovered_among(
    std::span<const ParityFunc> betas, const DetectabilityTable& table,
    std::span<const std::uint32_t> rows) {
  if (route_to_kernel(rows.size(), betas.size())) {
    const CoverKernel kernel(table, rows);
    std::vector<std::uint32_t> out = kernel.uncovered(betas);
    // Local subset rows -> table rows; local order follows `rows` order, so
    // the result matches the scalar iteration exactly.
    for (std::uint32_t& r : out) r = rows[r];
    return out;
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t i : rows) {
    if (!covers(betas, table.cases[i])) out.push_back(i);
  }
  return out;
}

std::vector<ParityFunc> prune_redundant(std::span<const ParityFunc> betas,
                                        const DetectabilityTable& table,
                                        const CoverKernel* kernel) {
  if (kernel_mode() == KernelMode::kScalar) {
    return prune_scalar(betas, table);
  }
  if (kernel != nullptr) return prune_kernel(betas, *kernel);
  return prune_kernel(betas, CoverKernel(table));
}

std::vector<ParityFunc> prune_redundant(std::span<const ParityFunc> betas,
                                        const DetectabilityTable& table) {
  return prune_redundant(betas, table, nullptr);
}

}  // namespace ced::core
