#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/parity_synth.hpp"
#include "sim/faults.hpp"

namespace ced::core {

struct VerifyOptions {
  /// Random input walks per fault (plus one from every reachable state for
  /// short exhaustive prefixes when the input space is small).
  int walks = 20;
  int walk_length = 96;
  std::uint64_t seed = 0x7e57;
  /// Fault-free walks used to check for false alarms.
  int fault_free_walks = 50;
};

/// Outcome of end-to-end sequential validation of a CED design.
struct VerifyResult {
  std::size_t faults_total = 0;
  std::size_t faults_activated = 0;   ///< faults that produced >= 1 error
  std::size_t activations_checked = 0;
  std::size_t violations = 0;         ///< detection later than the bound
  std::size_t false_alarms = 0;       ///< error asserted fault-free
  int max_latency_observed = 0;       ///< transitions from activation to detection
  std::vector<std::string> messages;  ///< first few failure descriptions

  bool ok() const { return violations == 0 && false_alarms == 0; }
};

/// Drives the full architecture cycle by cycle: the (possibly faulty) FSM
/// circuit advances its state register while the checker of Fig. 3 watches
/// every transition. Asserts that
///   (a) fault-free runs never raise the error signal, and
///   (b) once a fault first corrupts a transition, the error signal is
///       raised within `latency_bound` transitions of the activation,
///       on every simulated input path.
VerifyResult verify_bounded_detection(const fsm::FsmCircuit& circuit,
                                      const CedHardware& hw,
                                      std::span<const sim::StuckAtFault> faults,
                                      int latency_bound,
                                      const VerifyOptions& opts = {});

}  // namespace ced::core
