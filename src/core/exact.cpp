#include "core/exact.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "core/coverkernel.hpp"
#include "logic/bitvec.hpp"

namespace ced::core {
namespace {

/// Enumerates every candidate parity function with its coverage set.
/// Bit-sliced path: walk the 2^n - 1 nonzero betas in Gray-code order, so
/// consecutive candidates differ in exactly one bit and the cursor moves by
/// a single column XOR per step — then sort back to ascending beta so the
/// candidate order (and with it dominance pruning and branch and bound)
/// matches the scalar enumeration exactly.
void enumerate_candidates(const DetectabilityTable& table,
                          std::vector<ParityFunc>& candidates,
                          std::vector<logic::BitVec>& cover_sets) {
  const int n = table.num_bits;
  const std::size_t m = table.cases.size();
  const std::uint64_t num_candidates = (std::uint64_t{1} << n) - 1;

  if (kernel_mode() == KernelMode::kScalar) {
    candidates.reserve(num_candidates);
    for (std::uint64_t beta = 1; beta <= num_candidates; ++beta) {
      logic::BitVec cov(m);
      bool any = false;
      for (std::size_t i = 0; i < m; ++i) {
        if (covers(beta, table.cases[i])) {
          cov.set(i);
          any = true;
        }
      }
      if (!any) continue;
      candidates.push_back(beta);
      cover_sets.push_back(std::move(cov));
    }
    return;
  }

  const CoverKernel kernel(table);
  BetaCursor cur(kernel, 0);
  std::vector<std::uint64_t> covered(kernel.num_words());
  std::vector<std::pair<ParityFunc, logic::BitVec>> found;
  std::uint64_t prev_gray = 0;
  for (std::uint64_t i = 1; i <= num_candidates; ++i) {
    const std::uint64_t gray = i ^ (i >> 1);
    cur.flip(std::countr_zero(gray ^ prev_gray));
    prev_gray = gray;
    std::fill(covered.begin(), covered.end(), 0);
    cur.or_covered_into(covered.data());
    logic::BitVec cov(m);
    bool any = false;
    for (std::size_t w = 0; w < covered.size(); ++w) {
      std::uint64_t bits = covered[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        cov.set((w << 6) + static_cast<std::size_t>(b));
        any = true;
      }
    }
    if (any) found.emplace_back(cur.beta(), std::move(cov));
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  candidates.reserve(found.size());
  cover_sets.reserve(found.size());
  for (auto& [beta, cov] : found) {
    candidates.push_back(beta);
    cover_sets.push_back(std::move(cov));
  }
}

/// Branch-and-bound minimum cover over precomputed candidate coverage sets.
class Bnb {
 public:
  Bnb(const std::vector<logic::BitVec>& cover_sets, std::size_t num_cases,
      const ExactOptions& opts)
      : cover_sets_(cover_sets), num_cases_(num_cases), opts_(opts) {}

  std::optional<std::vector<std::size_t>> solve(std::size_t upper_bound) {
    best_size_ = upper_bound + 1;
    logic::BitVec covered(num_cases_);
    std::vector<std::size_t> chosen;
    aborted_ = false;
    recurse(covered, chosen);
    // Optimality can only be certified when the search ran to completion.
    if (aborted_ || best_.empty()) return std::nullopt;
    return best_;
  }

  std::size_t nodes() const { return nodes_; }
  bool node_budget_hit() const { return node_budget_hit_; }
  bool deadline_hit() const { return deadline_hit_; }

 private:
  void recurse(logic::BitVec& covered, std::vector<std::size_t>& chosen) {
    if (aborted_) return;
    if (++nodes_ > opts_.max_nodes) {
      node_budget_hit_ = true;
      aborted_ = true;
      return;
    }
    if ((nodes_ & 4095u) == 0 && opts_.deadline.expired()) {
      deadline_hit_ = true;
      aborted_ = true;
      return;
    }
    // First uncovered case.
    std::size_t row = num_cases_;
    for (std::size_t i = 0; i < num_cases_; ++i) {
      if (!covered.test(i)) {
        row = i;
        break;
      }
    }
    if (row == num_cases_) {
      if (chosen.size() < best_size_) {
        best_size_ = chosen.size();
        best_ = chosen;
      }
      return;
    }
    if (chosen.size() + 1 >= best_size_) return;

    // Branch on every candidate covering that case.
    for (std::size_t c = 0; c < cover_sets_.size(); ++c) {
      if (!cover_sets_[c].test(row)) continue;
      logic::BitVec saved = covered;
      covered |= cover_sets_[c];
      chosen.push_back(c);
      recurse(covered, chosen);
      chosen.pop_back();
      covered = std::move(saved);
      if (aborted_) return;
    }
  }

  const std::vector<logic::BitVec>& cover_sets_;
  std::size_t num_cases_;
  const ExactOptions& opts_;
  std::size_t nodes_ = 0;
  std::size_t best_size_ = 0;
  std::vector<std::size_t> best_;
  bool aborted_ = false;
  bool node_budget_hit_ = false;
  bool deadline_hit_ = false;
};

}  // namespace

std::optional<std::vector<ParityFunc>> exact_min_cover(
    const DetectabilityTable& table, const ExactOptions& opts,
    ExactOutcome* outcome) {
  if (outcome) *outcome = {};
  const int n = table.num_bits;
  if (n > opts.max_bits) {
    if (outcome) outcome->too_large = true;
    return std::nullopt;
  }
  const std::size_t m = table.cases.size();
  if (m == 0) return std::vector<ParityFunc>{};
  if (opts.deadline.expired()) {
    if (outcome) outcome->deadline_hit = true;
    return std::nullopt;
  }

  // Enumerate all candidate parity functions with their coverage sets
  // (Gray-code walk on the bit-sliced kernel; scalar under CED_KERNEL).
  std::vector<ParityFunc> candidates;
  std::vector<logic::BitVec> cover_sets;
  enumerate_candidates(table, candidates, cover_sets);

  // Dominance pruning: drop candidates whose coverage is a subset of
  // another candidate's (keep the first of equals).
  std::vector<bool> dominated(candidates.size(), false);
  for (std::size_t a = 0; a < candidates.size(); ++a) {
    if (dominated[a]) continue;
    for (std::size_t b = 0; b < candidates.size(); ++b) {
      if (a == b || dominated[b]) continue;
      if (!cover_sets[b].is_subset_of(cover_sets[a])) continue;
      // Equal sets: keep the lower-index candidate only.
      if (cover_sets[a] == cover_sets[b] && a > b) continue;
      dominated[b] = true;
    }
  }
  std::vector<ParityFunc> cand2;
  std::vector<logic::BitVec> cov2;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!dominated[i]) {
      cand2.push_back(candidates[i]);
      cov2.push_back(std::move(cover_sets[i]));
    }
  }

  // Upper bound: simple greedy over the candidate sets.
  std::vector<std::size_t> greedy_sel;
  {
    logic::BitVec covered(m);
    while (covered.count() < m) {
      std::size_t best = cov2.size();
      std::size_t best_gain = 0;
      for (std::size_t c = 0; c < cov2.size(); ++c) {
        logic::BitVec gain = cov2[c];
        gain.subtract(covered);
        const std::size_t g = gain.count();
        if (g > best_gain) {
          best_gain = g;
          best = c;
        }
      }
      if (best == cov2.size()) {  // uncoverable case
        if (outcome) outcome->uncoverable = true;
        return std::nullopt;
      }
      covered |= cov2[best];
      greedy_sel.push_back(best);
    }
  }

  Bnb bnb(cov2, m, opts);
  const auto sel = bnb.solve(greedy_sel.size());
  if (outcome) {
    outcome->nodes = bnb.nodes();
    outcome->node_budget_hit = bnb.node_budget_hit();
    outcome->deadline_hit = bnb.deadline_hit();
  }
  if (!sel) return std::nullopt;
  std::vector<ParityFunc> out;
  out.reserve(sel->size());
  for (std::size_t c : *sel) out.push_back(cand2[c]);
  return out;
}

}  // namespace ced::core
