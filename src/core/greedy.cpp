#include "core/greedy.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/coverkernel.hpp"
#include "core/rng.hpp"

namespace ced::core {
namespace {

std::size_t coverage_over(ParityFunc beta, const DetectabilityTable& table,
                          const std::vector<std::uint32_t>& pending) {
  std::size_t c = 0;
  for (std::uint32_t i : pending) {
    if (covers(beta, table.cases[i])) ++c;
  }
  return c;
}

/// Hill-climbs `beta` over single-bit flips to maximize coverage of the
/// pending cases. Deterministic given the start point.
ParityFunc climb(ParityFunc beta, int n, const DetectabilityTable& table,
                 const std::vector<std::uint32_t>& pending) {
  std::size_t best = coverage_over(beta, table, pending);
  bool improved = true;
  while (improved) {
    improved = false;
    for (int j = 0; j < n; ++j) {
      const ParityFunc cand = beta ^ (std::uint64_t{1} << j);
      if (cand == 0) continue;
      const std::size_t c = coverage_over(cand, table, pending);
      if (c > best) {
        best = c;
        beta = cand;
        improved = true;
      }
    }
  }
  return beta;
}

/// Kernel twin of `climb`: the candidate at each step is the current beta
/// with one bit flipped, so the cursor's per-step bitmaps move by a single
/// column XOR per probe (flip back on rejection). Same starting points,
/// same acceptance rule, same scan order — identical result, without the
/// per-case popcount re-scan.
std::pair<ParityFunc, std::size_t> climb_kernel(ParityFunc beta, int n,
                                                const CoverKernel& kernel) {
  BetaCursor cur(kernel, beta);
  std::size_t best = cur.covered_count();
  bool improved = true;
  while (improved) {
    improved = false;
    for (int j = 0; j < n; ++j) {
      if ((cur.beta() ^ (std::uint64_t{1} << j)) == 0) continue;
      cur.flip(j);
      const std::size_t c = cur.covered_count();
      if (c > best) {
        best = c;
        improved = true;
      } else {
        cur.flip(j);
      }
    }
  }
  return {cur.beta(), best};
}

/// Covers every case index in `pending` (a subset of the table) by
/// repeatedly appending the best hill-climbed parity function.
void cover_subset(const DetectabilityTable& table, const GreedyOptions& opts,
                  std::vector<std::uint32_t> pending, Rng& rng,
                  std::vector<ParityFunc>& solution, std::uint64_t& climbs) {
  const int n = table.num_bits;
  const std::uint64_t mask =
      n == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  const bool bitsliced = kernel_mode() == KernelMode::kBitsliced;
  while (!pending.empty()) {
    if (opts.deadline.expired()) return;  // caller closes out the remainder
    // The pending set shrinks every round, so a fresh subset kernel per
    // round stays proportional to the remaining work.
    std::optional<CoverKernel> sub;
    if (bitsliced) sub.emplace(table, pending);
    ParityFunc best_beta = 0;
    std::size_t best_cov = 0;

    auto consider = [&](ParityFunc start) {
      ++climbs;
      ParityFunc b;
      std::size_t c;
      if (sub) {
        std::tie(b, c) = climb_kernel(start & mask, n, *sub);
      } else {
        b = climb(start & mask, n, table, pending);
        c = coverage_over(b, table, pending);
      }
      if (b == 0) return;
      if (c > best_cov) {
        best_cov = c;
        best_beta = b;
      }
    };

    for (int j = 0; j < n; ++j) consider(std::uint64_t{1} << j);
    consider(mask);
    for (int t = 0; t < opts.restarts; ++t) consider(rng.next() & mask);

    if (best_cov == 0) {
      // Should be impossible: every case has a nonzero diff word at some
      // step, and a single-bit function on a set bit of that word covers it.
      // Guard against surprises to avoid an infinite loop.
      const ErroneousCase& ec = table.cases[pending.front()];
      for (int k = 0; k < ec.length; ++k) {
        if (ec.diff[static_cast<std::size_t>(k)] != 0) {
          best_beta = ec.diff[static_cast<std::size_t>(k)] &
                      (~ec.diff[static_cast<std::size_t>(k)] + 1);
          break;
        }
      }
      best_cov = sub ? sub->coverage_count(best_beta)
                     : coverage_over(best_beta, table, pending);
    }

    solution.push_back(best_beta);
    std::vector<std::uint32_t> still;
    still.reserve(pending.size() - best_cov);
    if (sub) {
      std::vector<std::uint64_t> cov(sub->num_words());
      sub->covered_bitmap(best_beta, cov.data());
      for (std::size_t r = 0; r < pending.size(); ++r) {
        if (!((cov[r >> 6] >> (r & 63)) & 1u)) still.push_back(pending[r]);
      }
    } else {
      for (std::uint32_t i : pending) {
        if (!covers(best_beta, table.cases[i])) still.push_back(i);
      }
    }
    pending = std::move(still);
  }
}

std::vector<ParityFunc> greedy_cover_impl(const DetectabilityTable& table,
                                          const GreedyOptions& opts,
                                          GreedyStats* stats,
                                          const CoverKernel* full_kernel) {
  Rng rng(opts.seed);
  std::vector<ParityFunc> solution;
  const bool bitsliced = kernel_mode() == KernelMode::kBitsliced;
  std::optional<CoverKernel> own_kernel;
  if (bitsliced && full_kernel == nullptr && !table.cases.empty()) {
    own_kernel.emplace(table);
  }
  const CoverKernel* full = nullptr;
  if (bitsliced) {
    full = full_kernel != nullptr ? full_kernel
                                  : (own_kernel ? &*own_kernel : nullptr);
  }

  // Work on samples of the uncovered set; re-verify against the full table
  // between rounds. Each round strictly shrinks the uncovered set, so this
  // terminates with a complete cover.
  std::vector<std::uint32_t> pending(table.cases.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    pending[i] = static_cast<std::uint32_t>(i);
  }
  while (!pending.empty()) {
    if (opts.deadline.expired()) {
      // Budget exhausted: close out the remaining cases instantly with one
      // single-bit function per needed bit (the lowest set bit of a case's
      // first nonzero word always gives odd overlap), keeping the cover
      // complete without further search.
      if (stats) stats->deadline_hit = true;
      std::uint64_t used = 0;
      for (std::uint32_t i : pending) {
        const ErroneousCase& ec = table.cases[i];
        for (int k = 0; k < ec.length; ++k) {
          const std::uint64_t w = ec.diff[static_cast<std::size_t>(k)];
          if (w == 0) continue;
          const ParityFunc beta = w & (~w + 1);
          if (!(used & beta)) {
            used |= beta;
            solution.push_back(beta);
            if (stats) ++stats->single_bit_completions;
          }
          break;
        }
      }
      return solution;
    }
    std::vector<std::uint32_t> sample;
    if (pending.size() <= opts.sample_cap) {
      sample = pending;
    } else {
      // Deterministic stride-based sample spread over the uncovered set.
      sample.reserve(opts.sample_cap);
      const std::size_t stride = pending.size() / opts.sample_cap;
      const std::size_t offset = rng.next() % stride;
      for (std::size_t i = offset; i < pending.size() && sample.size() < opts.sample_cap;
           i += stride) {
        sample.push_back(pending[i]);
      }
    }
    cover_subset(table, opts, std::move(sample), rng, solution,
                 stats->climbs);
    pending = full != nullptr ? full->uncovered(solution)
                              : uncovered_cases(solution, table);
  }

  return prune_redundant(solution, table, full);
}

}  // namespace

std::vector<ParityFunc> greedy_cover(const DetectabilityTable& table,
                                     const GreedyOptions& opts,
                                     GreedyStats* stats,
                                     const CoverKernel* full_kernel) {
  GreedyStats local;
  GreedyStats* st = stats != nullptr ? stats : &local;
  if (!opts.obs.enabled()) {
    return greedy_cover_impl(table, opts, st, full_kernel);
  }
  // Observability wrapper, outside the search: the chosen functions are
  // byte-identical with sinks set or null.
  obs::ScopedSpan span(opts.obs, "greedy");
  auto sol = greedy_cover_impl(table, opts, st, full_kernel);
  span.attr("functions", static_cast<std::uint64_t>(sol.size()));
  span.attr("climbs", st->climbs);
  if (st->deadline_hit) {
    span.attr("single_bit_completions",
              static_cast<std::uint64_t>(st->single_bit_completions));
  }
  if (opts.obs.metrics != nullptr) {
    obs::MetricsShard shard(opts.obs.metrics);
    shard.add("ced_greedy_covers_total");
    shard.add("ced_greedy_climbs_total", st->climbs);
    shard.add("ced_greedy_single_bit_completions_total",
              static_cast<std::uint64_t>(st->single_bit_completions));
  }
  return sol;
}

}  // namespace ced::core
