#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

namespace ced::core {

/// Maximum supported detection-latency bound `p`. The paper evaluates
/// p in {1,2,3}; loop truncation (§2) makes larger bounds useless for the
/// benchmark machines. Keeping the bound small keeps ErroneousCase compact,
/// which matters: large machines produce millions of cases.
inline constexpr int kMaxLatency = 4;

/// One Erroneous Case EC(A, c, f) (§3.1): for one fault, one activation
/// state and one input path of length <= p, the sets of next-state/output
/// bits (bit j = b_{j+1}) in which the faulty response differs from the
/// fault-free response along the path's steps.
///
/// Stored in canonical form: `diff[0..length-1]` are the path's *distinct
/// nonzero* difference words, sorted ascending. A parity function covers
/// the case iff it has odd overlap with one of them (Statement 1), which
/// depends only on this set — dormant steps (zero words), repeats and step
/// order are irrelevant to the cover problem, so canonicalization merges
/// equivalent paths without changing any solution. `length` can be shorter
/// than p because of loop truncation (§2) and this merging; it is always
/// >= 1 (a case starts at an erroneous transition).
struct ErroneousCase {
  std::array<std::uint64_t, kMaxLatency> diff{};
  std::uint8_t length = 0;

  bool operator==(const ErroneousCase&) const = default;
};

struct ErroneousCaseHash {
  std::size_t operator()(const ErroneousCase& ec) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull * (ec.length + 1);
    for (int k = 0; k < ec.length; ++k) {
      h ^= ec.diff[static_cast<std::size_t>(k)] + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace ced::core
