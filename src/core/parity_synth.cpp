#include "core/parity_synth.hpp"

#include <stdexcept>
#include <unordered_set>

#include "logic/factor.hpp"
#include "logic/opt.hpp"
#include "sim/fault_sim.hpp"

namespace ced::core {

bool CedHardware::error_asserted(std::uint64_t input,
                                 std::uint64_t state_code,
                                 std::uint64_t observable) const {
  const std::uint64_t assignment =
      input | (state_code << r) | (observable << (r + s));
  const std::uint64_t outs = checker.eval_single(assignment);
  // Output order: q compacted, q predicted, [rail0, rail1,] error.
  const int error_index = 2 * q + (two_rail ? 2 : 0);
  return ((outs >> error_index) & 1) != 0;
}

CedHardware synthesize_ced(const fsm::FsmCircuit& circuit,
                           std::span<const ParityFunc> parities,
                           const CedSynthOptions& opts) {
  CedHardware hw;
  hw.parities.assign(parities.begin(), parities.end());
  hw.r = circuit.r();
  hw.s = circuit.s();
  hw.n = circuit.n();
  hw.q = static_cast<int>(parities.size());
  hw.hold_registers = 2 * parities.size();

  if (hw.r + hw.s + hw.n > 62) {
    throw std::invalid_argument("synthesize_ced: checker input space too wide");
  }

  logic::Netlist& nl = hw.checker;
  std::vector<std::uint32_t> in_nets, st_nets, obs_nets;
  for (int i = 0; i < hw.r; ++i) {
    in_nets.push_back(nl.add_input("in" + std::to_string(i)));
  }
  for (int i = 0; i < hw.s; ++i) {
    st_nets.push_back(nl.add_input("st" + std::to_string(i)));
  }
  for (int i = 0; i < hw.n; ++i) {
    obs_nets.push_back(nl.add_input("b" + std::to_string(i)));
  }

  logic::SynthContext ctx(nl, opts.synth);

  // --- Compaction: one XOR tree per parity function.
  std::vector<std::uint32_t> compact_nets;
  for (std::size_t l = 0; l < parities.size(); ++l) {
    std::vector<std::uint32_t> taps;
    for (int j = 0; j < hw.n; ++j) {
      if ((parities[l] >> j) & 1) taps.push_back(obs_nets[static_cast<std::size_t>(j)]);
    }
    const std::uint32_t net = ctx.xor_tree(std::move(taps));
    compact_nets.push_back(net);
  }

  // --- Prediction logic: parity of the fault-free response, as a function
  // of (input, present state).
  const int vars = hw.r + hw.s;
  std::vector<logic::SopSpec> specs(parities.size(), logic::SopSpec(vars));
  {
    sim::GoldenCache golden(circuit);
    std::unordered_set<std::uint64_t> reachable;
    for (std::uint64_t c :
         sim::reachable_codes(circuit, circuit.enc.reset_code)) {
      reachable.insert(c);
    }
    const std::uint64_t num_codes = std::uint64_t{1} << hw.s;
    const std::uint64_t num_inputs = std::uint64_t{1} << hw.r;
    for (std::uint64_t code = 0; code < num_codes; ++code) {
      const bool dc = opts.dc_unreachable && !reachable.count(code);
      if (dc) {
        for (auto& spec : specs) {
          for (std::uint64_t a = 0; a < num_inputs; ++a) {
            spec.dc.set(circuit.enc.pack(a, code));
          }
        }
        continue;
      }
      const auto& rows = golden.rows(code);
      for (std::uint64_t a = 0; a < num_inputs; ++a) {
        const std::uint64_t alpha = circuit.enc.pack(a, code);
        for (std::size_t l = 0; l < parities.size(); ++l) {
          if (std::popcount(parities[l] & rows[a]) & 1) {
            specs[l].on.set(alpha);
          }
        }
      }
    }
  }

  std::vector<std::uint32_t> pred_vars = in_nets;
  pred_vars.insert(pred_vars.end(), st_nets.begin(), st_nets.end());
  std::vector<std::uint32_t> pred_nets;
  for (std::size_t l = 0; l < parities.size(); ++l) {
    logic::Cover cover =
        opts.minimizer == fsm::MinimizerKind::kExact
            ? logic::minimize_exact(specs[l])
            : (opts.minimizer == fsm::MinimizerKind::kNone
                   ? logic::cover_from_on_set(specs[l])
                   : logic::minimize_espresso(specs[l]));
    if (opts.factor) {
      pred_nets.push_back(logic::synthesize_factor(
          ctx, logic::factor_cover(cover), pred_vars));
    } else {
      pred_nets.push_back(ctx.sop(cover, pred_vars));
    }
  }

  // --- Comparator over the held values.
  for (std::size_t l = 0; l < compact_nets.size(); ++l) {
    nl.mark_output(compact_nets[l], "compact" + std::to_string(l));
  }
  for (std::size_t l = 0; l < pred_nets.size(); ++l) {
    nl.mark_output(pred_nets[l], "pred" + std::to_string(l));
  }
  if (opts.two_rail && !parities.empty()) {
    hw.two_rail = true;
    // Dual-rail pairs (compact_l, NOT pred_l): complementary exactly when
    // compact_l == pred_l. A tree of two-rail checker cells reduces them
    // to one pair; rails equal <=> some pair was non-complementary.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (std::size_t l = 0; l < compact_nets.size(); ++l) {
      pairs.emplace_back(compact_nets[l], ctx.inverted(pred_nets[l]));
    }
    while (pairs.size() > 1) {
      std::vector<std::pair<std::uint32_t, std::uint32_t>> next;
      for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
        const auto [a0, a1] = pairs[i];
        const auto [b0, b1] = pairs[i + 1];
        const std::uint32_t z1 = nl.add_gate(
            logic::GateType::kOr,
            {nl.add_gate(logic::GateType::kAnd, {a1, b1}),
             nl.add_gate(logic::GateType::kAnd, {a0, b0})});
        const std::uint32_t z0 = nl.add_gate(
            logic::GateType::kOr,
            {nl.add_gate(logic::GateType::kAnd, {a1, b0}),
             nl.add_gate(logic::GateType::kAnd, {a0, b1})});
        next.emplace_back(z0, z1);
      }
      if (pairs.size() % 2 == 1) next.push_back(pairs.back());
      pairs = std::move(next);
    }
    nl.mark_output(pairs[0].first, "rail0");
    nl.mark_output(pairs[0].second, "rail1");
    nl.mark_output(
        nl.add_gate(logic::GateType::kXnor, {pairs[0].first, pairs[0].second}),
        "error");
  } else {
    const std::uint32_t error_net = ctx.comparator(compact_nets, pred_nets);
    nl.mark_output(error_net, "error");
  }
  if (opts.optimize) {
    hw.checker = logic::optimize_netlist(hw.checker);
  }
  return hw;
}

}  // namespace ced::core
