#pragma once

#include <span>
#include <vector>

#include "core/parity.hpp"
#include "fsm/synthesize.hpp"
#include "logic/area.hpp"

namespace ced::core {

struct CedSynthOptions {
  fsm::MinimizerKind minimizer = fsm::MinimizerKind::kEspresso;
  logic::SynthOptions synth;
  /// Treat unreachable state codes as don't-cares when minimizing the
  /// prediction logic (sound: the fault-free machine never visits them).
  bool dc_unreachable = true;
  /// Factor the prediction covers into multilevel logic before mapping.
  bool factor = true;
  /// Run the netlist optimizer on the finished checker.
  bool optimize = true;
  /// Build the comparator as a tree of two-rail checker cells (the
  /// totally-self-checking comparator style of the paper's ref [8],
  /// Bolchini et al.) instead of a plain XOR/OR tree. The checker then
  /// also exposes dual-rail outputs whose non-complementarity signals
  /// either an FSM error or a fault inside the checker itself.
  bool two_rail = false;
};

/// The synthesized CED circuitry of Fig. 3: q XOR compaction trees over the
/// FSM's next-state/output bits, the combinational prediction logic, and
/// the inequality comparator. Hold registers (output hold + prediction
/// hold, 2q flip-flops) are accounted separately since the netlist itself
/// is combinational.
///
/// Checker netlist interface:
///   inputs : r primary inputs, s present-state bits, n observable bits
///            (the FSM logic's actual next-state/output values);
///   outputs: q compacted bits, q predicted bits, 1 error bit
///            (error = 1 iff compacted != predicted).
struct CedHardware {
  std::vector<ParityFunc> parities;
  logic::Netlist checker;
  std::size_t hold_registers = 0;  ///< 2q
  int r = 0, s = 0, n = 0, q = 0;
  /// True when the comparator is a two-rail checker tree; the checker then
  /// has two extra outputs (rail0, rail1) before the final error bit.
  bool two_rail = false;

  /// Evaluates the checker for one transition; returns true iff the error
  /// signal is asserted. `observable` is the FSM logic's n-bit response.
  bool error_asserted(std::uint64_t input, std::uint64_t state_code,
                      std::uint64_t observable) const;

  /// Total CED hardware cost: checker gates plus hold-register area.
  logic::AreaReport cost(const logic::CellLibrary& lib) const {
    return logic::measure_area(checker, lib, hold_registers);
  }
};

/// Builds the Fig. 3 architecture for the chosen parity functions.
/// The prediction logic is specified from the fault-free circuit itself
/// (golden simulation of every reachable state) and minimized with the
/// same two-level flow as the FSM logic.
CedHardware synthesize_ced(const fsm::FsmCircuit& circuit,
                           std::span<const ParityFunc> parities,
                           const CedSynthOptions& opts = {});

}  // namespace ced::core
