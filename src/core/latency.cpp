#include "core/latency.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/erroneous_case.hpp"
#include "sim/fault_sim.hpp"

namespace ced::core {
namespace {

/// Depth-capped DFS over the faulty machine's walk: returns the length of
/// the longest loop-free path starting at `state` (the path ends when a
/// state repeats or the cap is hit).
int longest_loop_free(const fsm::FsmCircuit& circuit, sim::FaultyCache& faulty,
                      std::uint64_t state,
                      std::vector<std::uint64_t>& path, int cap) {
  if (static_cast<int>(path.size()) >= cap) return cap;
  // Distinct successors of `state` under the fault.
  std::vector<std::uint64_t> succ;
  for (std::uint64_t obs : faulty.rows(state)) {
    succ.push_back(circuit.next_state_of(obs));
  }
  std::sort(succ.begin(), succ.end());
  succ.erase(std::unique(succ.begin(), succ.end()), succ.end());

  int best = static_cast<int>(path.size());
  for (std::uint64_t next : succ) {
    if (std::find(path.begin(), path.end(), next) != path.end()) continue;
    path.push_back(next);
    best = std::max(best,
                    longest_loop_free(circuit, faulty, next, path, cap));
    path.pop_back();
    if (best >= cap) return cap;
  }
  return best;
}

}  // namespace

LatencyAnalysis analyze_useful_latency(
    const fsm::FsmCircuit& circuit, std::span<const sim::StuckAtFault> faults,
    const LatencyAnalysisOptions& opts) {
  LatencyAnalysis out;
  out.shortest_loop_per_fault.reserve(faults.size());

  sim::GoldenCache golden(circuit);
  std::vector<std::uint64_t> activation_codes;
  if (opts.restrict_to_reachable) {
    activation_codes = sim::reachable_codes(circuit, circuit.enc.reset_code);
  } else {
    for (std::uint64_t c = 0; c <= circuit.state_mask(); ++c) {
      activation_codes.push_back(c);
    }
  }

  for (const auto& f : faults) {
    sim::FaultyCache faulty(circuit, f);

    // Roots: faulty successors of activation transitions (the first
    // erroneous state of every path, §2).
    std::unordered_set<std::uint64_t> roots;
    for (std::uint64_t c : activation_codes) {
      const auto& good = golden.rows(c);
      const auto& bad = faulty.rows(c);
      for (std::size_t a = 0; a < good.size(); ++a) {
        if (good[a] != bad[a]) {
          roots.insert(circuit.next_state_of(bad[a]));
        }
      }
    }
    if (roots.empty()) {
      out.shortest_loop_per_fault.push_back(0);
      continue;
    }

    int bound = 0;
    for (std::uint64_t root : roots) {
      // Steps = the activation transition (into `root`) plus the loop-free
      // walk from there; a path of k states corresponds to k steps.
      std::vector<std::uint64_t> path{root};
      bound = std::max(bound, longest_loop_free(circuit, faulty, root, path,
                                                opts.max_latency));
      if (bound >= opts.max_latency) {
        bound = opts.max_latency;
        break;
      }
    }
    out.shortest_loop_per_fault.push_back(bound);
  }

  for (int l : out.shortest_loop_per_fault) {
    out.max_useful_latency = std::max(out.max_useful_latency, l);
  }
  out.max_useful_latency =
      std::min(std::max(out.max_useful_latency, 1), opts.max_latency);
  return out;
}

}  // namespace ced::core
