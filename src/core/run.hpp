#pragma once

// The consolidated public pipeline API.
//
// PRs 1-4 accreted knobs onto core::PipelineOptions one orthogonal feature
// at a time (budget valves, store/resume, thread counts, condensation, and
// now observability sinks); callers assembled the struct field-by-field
// with no validation until deep inside the run. This header collapses that
// sprawl into one validated object:
//
//   auto cfg = ced::RunConfig::Builder()
//                  .latency(2)
//                  .solver(core::SolverKind::kLpRounding)
//                  .threads(4)
//                  .budget(budget)
//                  .observe({&tracer, &metrics})
//                  .build();                 // Result<RunConfig>
//   if (!cfg) { /* cfg.status() says which knob is out of contract */ }
//   core::PipelineReport rep = ced::run_pipeline(f, *cfg);
//
// ced::run_pipeline / ced::run_latency_sweep are the single entry points;
// the old core::run_pipeline(f, PipelineOptions) signatures remain as
// deprecated shims (see core/pipeline.hpp) for one transition period.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace ced {

/// A validated, run-ready pipeline configuration. Construct through the
/// Builder (validation happens once, in build()); a default-constructed
/// RunConfig carries the library defaults, which are always valid.
class RunConfig {
 public:
  class Builder;

  RunConfig() = default;

  /// The underlying option block consumed by the pipeline internals.
  const core::PipelineOptions& options() const { return opts_; }

  /// Observability sinks for this run (all-null when not observing).
  const obs::Sinks& sinks() const { return opts_.obs; }

  /// Stable 32-hex-char fingerprint of every result-shaping knob (solver,
  /// latency, budget, extraction shaping, seeds, shard partition).
  /// Deliberately EXCLUDES pure execution knobs — thread count, archive
  /// binding, resume, and the obs sinks — which never change q or the
  /// selected parities; two runs with equal digests and equal inputs
  /// produce the same scheme. Recorded in the run manifest.
  std::string digest() const;

  /// Adopts an existing option block without validation. Transitional —
  /// the deprecated core:: shims and benches funnel through here; new code
  /// should use the Builder.
  static RunConfig wrap(core::PipelineOptions opts);

 private:
  core::PipelineOptions opts_;
};

/// Fluent builder. Setters cover the knobs callers actually vary; tune()
/// is the escape hatch for deep fields (LP iteration caps, synthesis
/// options, fault-model flags) so the full PipelineOptions surface stays
/// reachable without one builder method per leaf field.
class RunConfig::Builder {
 public:
  Builder() = default;
  /// Starts from an existing configuration (re-validate after edits).
  explicit Builder(const RunConfig& base) : opts_(base.opts_) {}

  Builder& latency(int p);
  Builder& solver(core::SolverKind kind);
  Builder& encoding(fsm::EncodingKind e);
  Builder& semantics(core::DiffSemantics s);
  Builder& threads(int n);
  Builder& condense(bool on);
  Builder& seed(std::uint64_t s);

  Builder& budget(const core::RunBudget& b);
  Builder& wall_seconds(double s);
  Builder& max_cases(std::size_t n);

  Builder& archive(core::ExtractArchive* a);
  Builder& resume(bool on);
  Builder& checkpoint_shards(int n);
  Builder& max_new_shards(int n);

  Builder& observe(const obs::Sinks& sinks);

  /// Mutates the raw option block (applied in call order, before
  /// validation). The documented escape hatch for fields without a
  /// dedicated setter.
  Builder& tune(const std::function<void(core::PipelineOptions&)>& fn);

  /// Validates and freezes the configuration. On contract violations the
  /// Result carries kInvalidInput naming the first offending knob.
  Result<RunConfig> build() const;

 private:
  core::PipelineOptions opts_;
};

/// Runs the full flow on one FSM under a validated configuration — the
/// single pipeline entry point.
core::PipelineReport run_pipeline(const fsm::Fsm& f, const RunConfig& cfg);

/// Shared-extraction sweep over several latency bounds (see
/// core::PipelineReport); cfg.latency is ignored in favour of `latencies`.
std::vector<core::PipelineReport> run_latency_sweep(
    const fsm::Fsm& f, std::span<const int> latencies, const RunConfig& cfg);

}  // namespace ced
