#pragma once

#include "core/algorithm1.hpp"
#include "core/parity_synth.hpp"

namespace ced::core {

/// A concurrent checker in the style of Holmquist & Kinney's
/// convolutional-code method (the paper's refs [4]/[14]): per-cycle key
/// bits are generated from the FSM's next-state/output bits, predicted
/// from (input, state), and their mismatch stream is folded into XOR
/// accumulators that are sampled (and cleared) once every `window` cycles.
/// Detection latency is bounded by the window length; the cost of the
/// extra sequential state is what the DATE'04 paper contrasts its
/// stateless bounded-latency scheme against ("for convolutional codes of
/// latency more than one clock cycle, the method becomes cumbersome").
///
/// Key-bit masks are chosen as a latency-1 parity cover, so every
/// erroneous transition flips at least one mismatch bit the moment it
/// happens. Cancellation inside a window is ruled out by K accumulator
/// banks per stream whose tap matrix (bank b taps phases 0..b) is
/// invertible over GF(2): any nonzero mismatch pattern leaves a nonzero
/// syndrome. The price is K·q accumulator flip-flops — the cost growth
/// with latency that makes the method "cumbersome" beyond one cycle.
struct ConvolutionalCed {
  std::vector<ParityFunc> keys;  ///< key-generator masks (latency-1 cover)
  int window = 1;                ///< K: syndrome sampling period
  /// Combinational part: key XOR trees + prediction logic + per-stream
  /// mismatch bits (reuses the Fig. 3 checker structure).
  CedHardware combo;
  /// Sequential state: K banks of q accumulator flip-flops
  /// plus a mod-K sampling counter.
  std::size_t registers = 0;

  logic::AreaReport cost(const logic::CellLibrary& lib) const;
};

struct ConvolutionalOptions {
  CedSynthOptions ced;
  Algorithm1Options algo;  ///< used to find the latency-1 key cover
};

/// Builds the convolutional checker with detection-latency bound `window`.
/// `p1_table` must be a latency-1 detectability table of `circuit`.
ConvolutionalCed synthesize_convolutional(const fsm::FsmCircuit& circuit,
                                          const DetectabilityTable& p1_table,
                                          int window,
                                          const ConvolutionalOptions& opts = {});

/// Cycle-accurate functional model of the checker (for verification and
/// the comparison bench).
class ConvolutionalChecker {
 public:
  explicit ConvolutionalChecker(const ConvolutionalCed& ced) : ced_(ced) {
    reset();
  }

  /// Advances one transition; returns true iff the error signal is
  /// asserted this cycle (only at sampling points).
  bool step(std::uint64_t input, std::uint64_t state_code,
            std::uint64_t observable);

  void reset();

 private:
  const ConvolutionalCed& ced_;
  std::vector<bool> acc_;  ///< window * q accumulator bits
  int phase_ = 0;
};

}  // namespace ced::core
