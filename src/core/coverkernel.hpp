#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/extract.hpp"
#include "core/parity.hpp"

namespace ced::core {

/// Which cover-evaluation implementation the solvers use.
///
/// `kBitsliced` (the default) evaluates parity coverage on the transposed
/// table (CoverKernel below); `kScalar` keeps the original per-case
/// popcount loops from core/parity.hpp as a reference oracle. Both paths
/// compute the same exact GF(2) quantities in the same iteration order, so
/// the final q and the selected parity functions are byte-identical —
/// the scalar mode exists for verification and as an escape hatch
/// (`CED_KERNEL=scalar`), never to change results.
enum class KernelMode {
  kBitsliced,
  kScalar,
};

/// Resolved evaluation mode: a ScopedKernelMode override if active,
/// otherwise the CED_KERNEL environment variable ("scalar" selects the
/// scalar oracle; anything else — including unset — is bit-sliced).
KernelMode kernel_mode();

/// RAII override of kernel_mode() for tests and benches. Overrides nest;
/// destruction restores the previous mode. Not meant to race concurrent
/// solver calls (flip it between solves, not during one).
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode);
  ~ScopedKernelMode();
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  int saved_;
};

/// Bit-sliced (transposed) view of a DetectabilityTable, built once and
/// queried many times by the Statement-4 solvers.
///
/// Layout: for every (step k, observable bit j) there is a column of
/// `num_words()` 64-bit words whose bit r is V(row r, j, k) — 64 cases per
/// word. Because parity of a popcount distributes over XOR,
///
///   parity(popcount(beta & diff_r[k])) = XOR_{j in beta} V(r, j, k),
///
/// the "beta detects row r at step k" bitmap over all rows is the XOR of
/// beta's selected columns, and the covered bitmap is the OR of those
/// per-step bitmaps. Evaluating one beta over M rows costs
/// ~popcount(beta) * steps * M/64 word ops instead of M * steps scalar
/// popcounts, and flipping a single bit of beta costs one column XOR per
/// step (see BetaCursor).
///
/// A kernel can be built over the whole table or over a row subset; local
/// row r of a subset kernel corresponds to table row rows[r] (queries
/// report local indices in `rows` order, which matches the scalar
/// uncovered_among iteration order).
///
/// The kernel is immutable after construction and safe to share across
/// threads.
class CoverKernel {
 public:
  /// Full-table kernel: local row i == table row i.
  explicit CoverKernel(const DetectabilityTable& table);
  /// Subset kernel over `rows` (indices into table.cases; duplicates
  /// allowed — each occurrence gets its own local row, matching scalar
  /// iteration over the same list).
  CoverKernel(const DetectabilityTable& table,
              std::span<const std::uint32_t> rows);

  int num_bits() const { return n_; }
  /// Steps actually materialized: the maximum case length over the selected
  /// rows (<= kMaxLatency). Columns for steps beyond a row's length are 0.
  int num_steps() const { return steps_; }
  std::size_t num_rows() const { return m_; }
  /// Words per column (= ceil(num_rows / 64)).
  std::size_t num_words() const { return words_; }

  std::span<const std::uint64_t> column(int step, int bit) const {
    return {cols_.data() +
                (static_cast<std::size_t>(step) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(bit)) *
                    words_,
            words_};
  }

  /// Table row index of local row `local` (identity for full kernels).
  std::uint32_t global_row(std::uint32_t local) const {
    return rows_.empty() ? local : rows_[local];
  }

  /// Number of local rows covered by `beta`.
  std::size_t coverage_count(ParityFunc beta) const;

  /// Writes the covered bitmap of `beta` (num_words() words; padding bits
  /// beyond num_rows() are 0) into `out`.
  void covered_bitmap(ParityFunc beta, std::uint64_t* out) const;

  /// ORs the covered bitmap of `beta` into `acc` (num_words() words).
  void accumulate_covered(ParityFunc beta, std::uint64_t* acc) const;

  /// True iff the set covers every local row (exact Statement-4 test).
  bool covers_all(std::span<const ParityFunc> betas) const;

  /// Number of local rows not covered by the set.
  std::size_t uncovered_count(std::span<const ParityFunc> betas) const;

  /// Local rows not covered by the set, ascending (for a full kernel these
  /// are table row indices; for a subset kernel, positions in `rows`).
  std::vector<std::uint32_t> uncovered(std::span<const ParityFunc> betas) const;

  /// True iff (a | b) covers every local row; `a`/`b` are covered bitmaps
  /// of num_words() words. Used by the one-pass prune_redundant.
  bool union_is_full(const std::uint64_t* a, const std::uint64_t* b) const;

  /// Popcount of `bits` restricted to real rows (num_words() words).
  std::size_t count(const std::uint64_t* bits) const;

 private:
  void build(const DetectabilityTable& table,
             std::span<const std::uint32_t> rows);

  int n_ = 0;
  int steps_ = 0;
  std::size_t m_ = 0;
  std::size_t words_ = 0;
  std::uint64_t beta_mask_ = 0;  ///< low n_ bits
  std::vector<std::uint64_t> cols_;
  std::vector<std::uint32_t> rows_;  ///< empty = identity (full table)

#ifndef NDEBUG
  const DetectabilityTable* table_ = nullptr;  ///< scalar-oracle cross-check
#endif
};

/// Incremental single-beta evaluator over a CoverKernel: keeps the per-step
/// parity bitmaps of the current beta, so flipping one bit is one column
/// XOR per step (the hill-climb delta identity: XORing column (k, j) into
/// step bitmap k toggles exactly the rows whose step-k detection parity
/// changes when bit j of beta flips).
class BetaCursor {
 public:
  BetaCursor(const CoverKernel& kernel, ParityFunc beta);

  ParityFunc beta() const { return beta_; }

  /// Toggles bit `j` (0 <= j < kernel.num_bits()) of the beta.
  void flip(int j);

  /// Rows covered by the current beta.
  std::size_t covered_count() const;

  /// ORs the current covered bitmap into `acc` (num_words() words).
  void or_covered_into(std::uint64_t* acc) const;

 private:
  const CoverKernel* k_;
  ParityFunc beta_ = 0;
  /// steps * num_words() words: steps_[k*W + w].
  std::vector<std::uint64_t> steps_;
};

/// A detectability table with subset-dominated rows removed, plus the
/// back-map needed for verification and reporting.
struct CondensedTable {
  DetectabilityTable table;              ///< dominated rows removed
  std::vector<std::uint32_t> kept_rows;  ///< condensed row -> original row
  std::size_t removed = 0;               ///< rows dropped by dominance
};

/// Subset-dominance condensation (solution-preserving table shrink).
///
/// Cases are canonical sets of nonzero difference words; a parity function
/// covers a case iff it has odd overlap with SOME word of the set. So if
/// case A's word set is a proper subset of case B's, every cover of A also
/// covers B and B adds no constraint — it is deleted. Chains bottom out at
/// subset-minimal cases, which are always kept, so every removed row has a
/// kept row whose words are a subset of its own: a cover of the condensed
/// table provably covers the full table, and (condensed rows being a subset
/// of the original rows) the converse holds too — the optimal q is
/// unchanged. Exact duplicates were already merged during extraction.
///
/// Cost: one hash lookup per nonempty proper subset of each case's word
/// set — at most 2^kMaxLatency - 2 = 14 lookups per row.
CondensedTable condense_table(const DetectabilityTable& table);

}  // namespace ced::core
