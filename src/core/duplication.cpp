#include "core/duplication.hpp"

#include "logic/synth.hpp"

namespace ced::core {

DuplicationReport duplication_baseline(const fsm::FsmCircuit& circuit,
                                       const logic::CellLibrary& lib,
                                       const logic::SynthOptions& synth) {
  // Rebuild the FSM logic from its minimized covers into a fresh netlist
  // (the duplicate), add inputs carrying the original machine's observable
  // bits, and compare.
  logic::Netlist dup;
  std::vector<std::uint32_t> var_nets;
  for (int i = 0; i < circuit.r(); ++i) {
    var_nets.push_back(dup.add_input("in" + std::to_string(i)));
  }
  for (int i = 0; i < circuit.s(); ++i) {
    var_nets.push_back(dup.add_input("shadow_st" + std::to_string(i)));
  }
  std::vector<std::uint32_t> obs_nets;
  for (int i = 0; i < circuit.n(); ++i) {
    obs_nets.push_back(dup.add_input("b" + std::to_string(i)));
  }

  logic::SynthContext ctx(dup, synth);
  std::vector<std::uint32_t> dup_outs;
  for (const auto& cover : circuit.covers) {
    dup_outs.push_back(ctx.sop(cover, var_nets));
  }
  const std::uint32_t err = ctx.comparator(dup_outs, obs_nets);
  dup.mark_output(err, "error");

  DuplicationReport rep;
  rep.functions = static_cast<std::size_t>(circuit.n());
  const auto area = logic::measure_area(
      dup, lib, static_cast<std::size_t>(circuit.s()));  // shadow register
  rep.gates = area.gates;
  rep.area = area.area;
  return rep;
}

}  // namespace ced::core
