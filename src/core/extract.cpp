#include "core/extract.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "common/digest.hpp"
#include "common/parallel.hpp"

namespace ced::core {
namespace {

using CaseSet = std::unordered_set<ErroneousCase, ErroneousCaseHash>;

/// One state of the enumerated walk: the fault-free (reference) machine's
/// state and the faulty machine's state. Under kImplementable semantics the
/// reference is re-anchored to the faulty register every step, so good ==
/// bad throughout.
struct Pair {
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  bool operator==(const Pair&) const = default;
};

/// Distinct single-step behaviours from one pair under one fault: inputs
/// are grouped into classes by (difference word, successor pair).
struct StepClass {
  std::uint64_t diff = 0;
  Pair next;

  bool operator<(const StepClass& o) const {
    if (diff != o.diff) return diff < o.diff;
    if (next.good != o.next.good) return next.good < o.next.good;
    return next.bad < o.next.bad;
  }
  bool operator==(const StepClass&) const = default;
};

std::vector<StepClass> step_classes(const std::vector<std::uint64_t>& golden,
                                    const std::vector<std::uint64_t>& faulty,
                                    const fsm::FsmCircuit& c,
                                    DiffSemantics semantics) {
  std::vector<StepClass> classes;
  classes.reserve(16);
  for (std::size_t a = 0; a < golden.size(); ++a) {
    StepClass cls;
    cls.diff = golden[a] ^ faulty[a];
    cls.next.bad = c.next_state_of(faulty[a]);
    cls.next.good = semantics == DiffSemantics::kMachineLevel
                        ? c.next_state_of(golden[a])
                        : cls.next.bad;  // re-anchor to the real register
    classes.push_back(cls);
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

/// Canonical form of a path's difference sequence: the sorted set of its
/// distinct nonzero step words. Coverage (exists step with odd overlap)
/// only depends on this set.
ErroneousCase canonicalize(const std::uint64_t* diffs, int len) {
  ErroneousCase ec;
  std::array<std::uint64_t, kMaxLatency> tmp{};
  int n = 0;
  for (int k = 0; k < len; ++k) {
    if (diffs[k] != 0) tmp[static_cast<std::size_t>(n++)] = diffs[k];
  }
  // Insertion sort: n <= kMaxLatency (tiny), and it avoids std::sort's
  // large inlined thresholds that trip -Warray-bounds on small arrays.
  for (int i = 1; i < n; ++i) {
    const std::uint64_t v = tmp[static_cast<std::size_t>(i)];
    int j = i;
    while (j > 0 && tmp[static_cast<std::size_t>(j - 1)] > v) {
      tmp[static_cast<std::size_t>(j)] = tmp[static_cast<std::size_t>(j - 1)];
      --j;
    }
    tmp[static_cast<std::size_t>(j)] = v;
  }
  int m = 0;
  for (int k = 0; k < n; ++k) {
    if (k == 0 || tmp[static_cast<std::size_t>(k)] !=
                      tmp[static_cast<std::size_t>(k - 1)]) {
      ec.diff[static_cast<std::size_t>(m++)] = tmp[static_cast<std::size_t>(k)];
    }
  }
  ec.length = static_cast<std::uint8_t>(m);
  return ec;
}

/// True if some nonempty proper subset of ec's word set is already a
/// case: that case implies ec (odd overlap with the subset's word is odd
/// overlap with ec's), making ec a redundant row.
bool dominated(const ErroneousCase& ec, const CaseSet& set) {
  const unsigned full = (1u << ec.length) - 1;
  for (unsigned mask = 1; mask < full; ++mask) {
    ErroneousCase sub;
    int m = 0;
    for (int k = 0; k < ec.length; ++k) {
      if ((mask >> k) & 1) {
        sub.diff[static_cast<std::size_t>(m++)] =
            ec.diff[static_cast<std::size_t>(k)];
      }
    }
    sub.length = static_cast<std::uint8_t>(m);
    if (set.count(sub)) return true;
  }
  return false;
}

/// Rebuilds a set keeping only subset-minimal cases.
void compact(CaseSet& set) {
  CaseSet kept;
  kept.reserve(set.size());
  for (const auto& ec : set) {
    if (!dominated(ec, set)) kept.insert(ec);
  }
  set = std::move(kept);
}

/// Strengthens a case to its `k` smallest difference words (sound: it
/// only removes detection alternatives).
ErroneousCase strengthen(const ErroneousCase& ec, int k) {
  if (ec.length <= k) return ec;
  ErroneousCase s;
  s.length = static_cast<std::uint8_t>(k);
  for (int i = 0; i < k; ++i) {
    s.diff[static_cast<std::size_t>(i)] = ec.diff[static_cast<std::size_t>(i)];
  }
  return s;
}

/// Budget state shared by every extraction worker. All flags and counters
/// are polled with relaxed atomics — a tripped valve stops the workers
/// cooperatively (each notices at its next check), which is exactly the
/// partial-but-honest truncation semantics of the serial path.
struct SharedValves {
  explicit SharedValves(std::size_t num_tables)
      : frozen(num_tables), reasons(num_tables) {}

  /// Global stop: every table frozen, or the deadline fired.
  std::atomic<bool> stop{false};
  /// Per-table freeze flags: a frozen table accepts no further cases
  /// anywhere; workers keep the rows found so far.
  std::vector<std::atomic<bool>> frozen;
  /// Live erroneous cases across all workers' sets (inserts minus cases
  /// removed by compaction) — the concurrent form of the serial
  /// `set.size() > max_cases` valve.
  std::atomic<std::int64_t> cases{0};

  std::mutex reason_mu;
  std::vector<std::string> reasons;  ///< first freeze reason per table

  bool all_frozen() const {
    for (const auto& f : frozen) {
      if (!f.load(std::memory_order_relaxed)) return false;
    }
    return true;
  }

  /// Freezes table t (first caller's reason wins) and stops the run once
  /// every table is frozen.
  void freeze(std::size_t t, const std::string& reason) {
    bool expected = false;
    if (frozen[t].compare_exchange_strong(expected, true,
                                          std::memory_order_relaxed)) {
      const std::lock_guard<std::mutex> lock(reason_mu);
      reasons[t] = reason;
    }
    if (all_frozen()) stop.store(true, std::memory_order_relaxed);
  }
};

/// One extraction worker: walks its shard of the fault list with a private
/// FaultyCache per fault and private per-latency case sets, reading golden
/// rows through a GoldenView over the pre-populated shared cache. Identical
/// to the old serial Extractor except that the budget valves live in
/// SharedValves.
class ShardWorker {
 public:
  ShardWorker(const fsm::FsmCircuit& circuit, const ExtractOptions& opts,
              const sim::GoldenCache& shared_golden,
              std::span<const std::uint64_t> activation_codes,
              SharedValves& valves, int num_shards)
      : circuit_(circuit), opts_(opts), golden_(shared_golden),
        activation_codes_(activation_codes), valves_(valves),
        tables_(static_cast<std::size_t>(opts.latency)),
        sets_(static_cast<std::size_t>(opts.latency)),
        compact_threshold_(static_cast<std::size_t>(opts.latency),
                           kCompactStart),
        max_words_(static_cast<std::size_t>(opts.latency), kMaxLatency),
        // Per-worker share of the degradation threshold so K workers
        // together hold at most ~degrade_threshold live cases. A single
        // shard keeps the exact serial threshold.
        degrade_threshold_(
            num_shards <= 1
                ? opts.degrade_threshold
                : std::max<std::size_t>(
                      opts.degrade_threshold /
                          static_cast<std::size_t>(num_shards),
                      1024)) {}

  void run(std::span<const sim::StuckAtFault> faults) {
    for (const auto& f : faults) {
      if (stopped()) break;
      sim::FaultyCache faulty(circuit_, f);
      bool detectable = false;
      for (std::uint64_t c : activation_codes_) {
        if (stopped()) break;
        check_deadline();
        const auto classes = step_classes(golden_.rows(c), faulty.rows(c),
                                          circuit_, opts_.semantics);
        for (const auto& cls : classes) {
          if (cls.diff == 0) continue;  // fault dormant: not an activation
          detectable = true;
          for (auto& t : tables_) ++t.num_activations;
          diffs_[0] = cls.diff;
          record(1);
          // The path's states are those reached by erroneous transitions
          // ("starting from the first erroneous state", §2): h1, h2, ...
          // The activation state c is not part of the loop-detection set.
          path_states_[0] = cls.next;
          descend(faulty, cls.next, 1);
        }
      }
      if (detectable) {
        for (auto& t : tables_) ++t.num_detectable_faults;
      }
    }
  }

  const std::vector<DetectabilityTable>& tables() const { return tables_; }
  std::vector<CaseSet>& sets() { return sets_; }

 private:
  bool stopped() const { return valves_.stop.load(std::memory_order_relaxed); }

  bool frozen(std::size_t t) const {
    return valves_.frozen[t].load(std::memory_order_relaxed);
  }

  /// Extends the current path from `pair` at step index `depth`
  /// (diffs_[0..depth-1] and path_states_[0..depth-1] are filled).
  void descend(sim::FaultyCache& faulty, const Pair& pair, int depth) {
    if (depth == opts_.latency || stopped()) return;
    if ((++tick_ & 1023u) == 0) check_deadline();
    const auto classes = step_classes(golden_.rows(pair.good),
                                      faulty.rows(pair.bad), circuit_,
                                      opts_.semantics);
    for (const auto& cls : classes) {
      if (stopped()) return;
      diffs_[static_cast<std::size_t>(depth)] = cls.diff;
      record(depth + 1);
      bool loop = false;
      for (int i = 0; i < depth; ++i) {
        if (path_states_[static_cast<std::size_t>(i)] == cls.next) {
          loop = true;
          break;
        }
      }
      if (loop) {
        // The pair repeats: longer bounds gain no further alternatives
        // along this path; the truncated case is their requirement too.
        for (auto& t : tables_) ++t.num_loop_truncations;
        const ErroneousCase ec = canonicalize(diffs_.data(), depth + 1);
        for (int p = depth + 2; p <= opts_.latency; ++p) {
          ++tables_[static_cast<std::size_t>(p - 1)].num_paths;
          insert(ec, p);
        }
      } else if (!extensions_redundant(depth + 1)) {
        path_states_[static_cast<std::size_t>(depth)] = cls.next;
        descend(faulty, cls.next, depth + 1);
      }
    }
  }

  /// Subtree prune: extensions of the current prefix (of length `len`)
  /// would be recorded into tables len+1..p, each as a superset of the
  /// prefix's word set. If every one of those tables already requires the
  /// prefix set itself or a subset of it, all extensions are dominated rows
  /// there and the subtree contributes nothing. (Workers only see their own
  /// cases, so this prunes less under sharding — the pruned rows are
  /// dominated ones, which the deterministic merge compacts away anyway.)
  bool extensions_redundant(int len) {
    if (len + 1 > opts_.latency) return false;  // no extensions anyway
    const ErroneousCase prefix = canonicalize(diffs_.data(), len);
    for (int t = len + 1; t <= opts_.latency; ++t) {
      const auto& set = sets_[static_cast<std::size_t>(t - 1)];
      if (!set.count(prefix) && !dominated(prefix, set)) return false;
    }
    return true;
  }

  /// Records the current path prefix of length `len` as a complete case of
  /// the latency-`len` table.
  void record(int len) {
    ++tables_[static_cast<std::size_t>(len - 1)].num_paths;
    insert(canonicalize(diffs_.data(), len), len);
  }

  /// Cooperative wall-clock check: on expiry, every still-open table is
  /// frozen with its partial contents and all workers' DFS unwinds.
  void check_deadline() {
    if (stopped() || !opts_.deadline.armed() || !opts_.deadline.expired()) {
      return;
    }
    for (std::size_t t = 0; t < valves_.frozen.size(); ++t) {
      valves_.freeze(t, "wall-clock budget exhausted during extraction");
    }
    valves_.stop.store(true, std::memory_order_relaxed);
  }

  /// Applies a local set-size change to the shared live-case counter.
  void credit_cases(std::int64_t before, std::int64_t after) {
    if (after != before) {
      valves_.cases.fetch_add(after - before, std::memory_order_relaxed);
    }
  }

  void insert(ErroneousCase ec, int latency) {
    const auto t = static_cast<std::size_t>(latency - 1);
    if (frozen(t)) return;
    auto& set = sets_[t];
    ec = strengthen(ec, max_words_[t]);
    if (dominated(ec, set)) return;
    const auto before = static_cast<std::int64_t>(set.size());
    set.insert(ec);
    credit_cases(before, static_cast<std::int64_t>(set.size()));
    auto& threshold = compact_threshold_[t];
    if (set.size() > threshold) {
      const auto pre = static_cast<std::int64_t>(set.size());
      compact(set);
      credit_cases(pre, static_cast<std::int64_t>(set.size()));
      threshold = std::max<std::size_t>(2 * set.size(), kCompactStart);
    }
    while (set.size() > degrade_threshold_ && max_words_[t] > 1) {
      // Degrade: strengthen every case of this table to fewer words and
      // rebuild the subset-minimal antichain.
      --max_words_[t];
      tables_[t].strengthened = true;
      CaseSet rebuilt;
      rebuilt.reserve(set.size());
      for (const auto& c : set) rebuilt.insert(strengthen(c, max_words_[t]));
      compact(rebuilt);
      const auto pre = static_cast<std::int64_t>(set.size());
      set = std::move(rebuilt);
      credit_cases(pre, static_cast<std::int64_t>(set.size()));
      threshold = std::max<std::size_t>(2 * set.size(), kCompactStart);
    }
    if (static_cast<std::size_t>(std::max<std::int64_t>(
            valves_.cases.load(std::memory_order_relaxed), 0)) >
        opts_.max_cases) {
      // Recoverable truncation (the old behaviour threw here): compact this
      // worker's set first; if the global count still overflows, keep the
      // subset-minimal cases found so far and freeze the table everywhere.
      const auto pre = static_cast<std::int64_t>(set.size());
      compact(set);
      credit_cases(pre, static_cast<std::int64_t>(set.size()));
      if (static_cast<std::size_t>(std::max<std::int64_t>(
              valves_.cases.load(std::memory_order_relaxed), 0)) >
          opts_.max_cases) {
        valves_.freeze(
            t, "erroneous-case limit (" + std::to_string(opts_.max_cases) +
                   ") exceeded; table holds the cases found so far");
      }
    }
  }

  static constexpr std::size_t kCompactStart = 1u << 17;

  const fsm::FsmCircuit& circuit_;
  const ExtractOptions& opts_;
  sim::GoldenView golden_;
  std::span<const std::uint64_t> activation_codes_;
  SharedValves& valves_;
  std::vector<DetectabilityTable> tables_;  ///< local statistics only
  std::vector<CaseSet> sets_;
  std::vector<std::size_t> compact_threshold_;
  std::vector<int> max_words_;
  const std::size_t degrade_threshold_;
  std::uint32_t tick_ = 0;
  std::array<std::uint64_t, kMaxLatency> diffs_{};
  std::array<Pair, kMaxLatency + 1> path_states_{};
};

}  // namespace

std::vector<DetectabilityTable> extract_cases_multi(
    const fsm::FsmCircuit& circuit,
    std::span<const sim::StuckAtFault> faults, const ExtractOptions& opts) {
  if (opts.latency < 1 || opts.latency > kMaxLatency) {
    throw std::invalid_argument("extract_cases: latency out of range");
  }
  if (circuit.n() > 64) {
    throw std::invalid_argument("extract_cases: more than 64 observable bits");
  }
  std::vector<DetectabilityTable> tables(
      static_cast<std::size_t>(opts.latency));
  for (int p = 1; p <= opts.latency; ++p) {
    tables[static_cast<std::size_t>(p - 1)].num_bits = circuit.n();
    tables[static_cast<std::size_t>(p - 1)].latency = p;
    tables[static_cast<std::size_t>(p - 1)].num_faults = faults.size();
  }

  std::vector<std::uint64_t> activation_codes;
  if (opts.restrict_to_reachable) {
    activation_codes = sim::reachable_codes(circuit, circuit.enc.reset_code);
  } else {
    for (std::uint64_t c = 0; c <= circuit.state_mask(); ++c) {
      activation_codes.push_back(c);
    }
  }

  // The golden model is shared read-only state across workers: simulate
  // every activation code up front so the fan-out only reads it. (Faulty
  // walks can still reach codes outside this set; those go through each
  // worker's private GoldenView overlay.)
  sim::GoldenCache golden(circuit);
  golden.populate(activation_codes);

  // Shard the fault list in fixed contiguous blocks. The shard partition —
  // not the execution interleaving — determines each worker's output, and
  // the merged, compacted, sorted case lists are identical for every shard
  // count (see DESIGN.md: the final antichain of subset-minimal canonical
  // cases is invariant under enumeration order).
  const int threads = resolve_threads(opts.threads);
  const int num_shards = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(threads), faults.empty() ? 1 : faults.size()));
  SharedValves valves(static_cast<std::size_t>(opts.latency));

  std::vector<std::unique_ptr<ShardWorker>> workers(
      static_cast<std::size_t>(num_shards));
  const auto bounds = shard_bounds(faults.size(), num_shards);
  parallel_for(num_shards, workers.size(), [&](std::size_t s) {
    // Worker spans parent under the caller's extract-stage span via the
    // explicit parent id — no thread-local ambient state (obs/trace.hpp).
    obs::ScopedSpan span(opts.obs, "extract-shard");
    span.attr("shard", static_cast<std::uint64_t>(s));
    span.attr("faults",
              static_cast<std::uint64_t>(bounds[s + 1] - bounds[s]));
    auto worker = std::make_unique<ShardWorker>(
        circuit, opts, golden, activation_codes, valves, num_shards);
    worker->run(faults.subspan(bounds[s], bounds[s + 1] - bounds[s]));
    const DetectabilityTable& deep = worker->tables().back();
    span.attr("activations", static_cast<std::uint64_t>(deep.num_activations));
    span.attr("paths", static_cast<std::uint64_t>(deep.num_paths));
    if (opts.obs.metrics != nullptr) {
      obs::MetricsShard mshard(opts.obs.metrics);
      mshard.add("ced_extract_shards_total");
    }
    workers[s] = std::move(worker);
  });

  // Deterministic merge in fixed shard order, then the same
  // compact-and-sort finish as the serial path: byte-identical tables for
  // any thread count.
  for (int p = 1; p <= opts.latency; ++p) {
    const auto t = static_cast<std::size_t>(p - 1);
    auto& table = tables[t];
    CaseSet merged;
    for (auto& w : workers) {
      auto& set = w->sets()[t];
      merged.insert(set.begin(), set.end());
      set.clear();
      const DetectabilityTable& lt = w->tables()[t];
      table.num_activations += lt.num_activations;
      table.num_paths += lt.num_paths;
      table.num_loop_truncations += lt.num_loop_truncations;
      table.strengthened = table.strengthened || lt.strengthened;
      if (p == 1) table.num_detectable_faults += lt.num_detectable_faults;
    }
    compact(merged);  // drop supersets that arrived before their subsets
    table.cases.assign(merged.begin(), merged.end());
    std::sort(table.cases.begin(), table.cases.end(),
              [](const ErroneousCase& a, const ErroneousCase& b) {
                if (a.length != b.length) return a.length < b.length;
                return a.diff < b.diff;
              });
    if (valves.frozen[t].load(std::memory_order_relaxed)) {
      table.truncated = true;
      table.truncation_reason = valves.reasons[t];
    }
  }
  // num_detectable_faults is a per-fault property, identical for every
  // latency; mirror the p=1 sum into the other tables.
  for (int p = 2; p <= opts.latency; ++p) {
    tables[static_cast<std::size_t>(p - 1)].num_detectable_faults =
        tables[0].num_detectable_faults;
  }
  return tables;
}

DetectabilityTable extract_cases(const fsm::FsmCircuit& circuit,
                                 std::span<const sim::StuckAtFault> faults,
                                 const ExtractOptions& opts) {
  return std::move(extract_cases_multi(circuit, faults, opts).back());
}

// ------------------------------------------------- checkpointed extraction

namespace {

bool case_less(const ErroneousCase& a, const ErroneousCase& b) {
  if (a.length != b.length) return a.length < b.length;
  return a.diff < b.diff;
}

/// Materializes one worker's private sets into the shard's per-latency
/// tables: compact to the subset-minimal antichain and sort. Within-shard
/// compaction only removes rows the global merge would remove anyway, so
/// the final antichain is unchanged.
ExtractShard shard_from_worker(ShardWorker& worker, const SharedValves& valves,
                               std::uint32_t index, std::uint32_t num_shards,
                               std::size_t shard_faults) {
  ExtractShard sh;
  sh.index = index;
  sh.num_shards = num_shards;
  sh.tables = worker.tables();  // local statistics
  auto& sets = worker.sets();
  for (std::size_t t = 0; t < sh.tables.size(); ++t) {
    DetectabilityTable& table = sh.tables[t];
    table.num_faults = shard_faults;
    compact(sets[t]);
    table.cases.assign(sets[t].begin(), sets[t].end());
    sets[t].clear();
    std::sort(table.cases.begin(), table.cases.end(), case_less);
    if (valves.frozen[t].load(std::memory_order_relaxed)) {
      table.truncated = true;
      table.truncation_reason = valves.reasons[t];
    }
  }
  return sh;
}

bool shard_truncated(const ExtractShard& sh) {
  for (const auto& t : sh.tables) {
    if (t.truncated) return true;
  }
  return false;
}

}  // namespace

int resolve_checkpoint_shards(int requested, std::size_t num_faults) {
  const int n = requested >= 1 ? requested : kDefaultCheckpointShards;
  if (num_faults == 0) return 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(n), num_faults));
}

std::string extraction_digest(const fsm::FsmCircuit& circuit,
                              std::span<const sim::StuckAtFault> faults,
                              const ExtractOptions& opts, int num_shards) {
  Digest128 d;
  d.absorb(std::uint64_t{1});  // digest schema version; bump on change
  d.absorb(static_cast<std::uint64_t>(kMaxLatency));
  // Circuit: interface sizes, state encoding, and the full netlist — the
  // netlist is the reference implementation, so hashing it covers every
  // synthesis option that could change behaviour.
  d.absorb(static_cast<std::uint64_t>(circuit.r()));
  d.absorb(static_cast<std::uint64_t>(circuit.s()));
  d.absorb(static_cast<std::uint64_t>(circuit.o()));
  d.absorb(circuit.enc.reset_code);
  d.absorb(static_cast<std::uint64_t>(circuit.enc.encoding.num_bits));
  for (const std::uint64_t c : circuit.enc.encoding.codes) d.absorb(c);
  const logic::Netlist& net = circuit.netlist;
  d.absorb(net.num_nets());
  for (std::uint32_t g = 0; g < net.num_nets(); ++g) {
    const logic::Gate& gate = net.gate(g);
    d.absorb(static_cast<std::uint64_t>(gate.type));
    d.absorb(gate.fanins.size());
    for (const std::uint32_t f : gate.fanins) {
      d.absorb(static_cast<std::uint64_t>(f));
    }
  }
  d.absorb(net.num_outputs());
  for (const std::uint32_t o : net.outputs()) {
    d.absorb(static_cast<std::uint64_t>(o));
  }
  // Fault model.
  d.absorb(faults.size());
  for (const auto& f : faults) {
    d.absorb((static_cast<std::uint64_t>(f.net) << 1) |
             (f.stuck_value ? 1u : 0u));
  }
  // Result-shaping extraction options + the shard partition. Budget valves
  // (deadline, max_cases) are excluded: truncated results are never cached.
  d.absorb(static_cast<std::uint64_t>(opts.latency));
  d.absorb(static_cast<std::uint64_t>(opts.semantics));
  d.absorb(std::uint64_t{opts.restrict_to_reachable ? 1u : 0u});
  d.absorb(opts.degrade_threshold);
  d.absorb(static_cast<std::uint64_t>(num_shards));
  return d.hex();
}

std::vector<DetectabilityTable> extract_cases_sharded(
    const fsm::FsmCircuit& circuit, std::span<const sim::StuckAtFault> faults,
    const ExtractOptions& opts, const ShardedExtractOptions& sharding,
    const ExtractCheckpointHooks& hooks) {
  if (opts.latency < 1 || opts.latency > kMaxLatency) {
    throw std::invalid_argument("extract_cases: latency out of range");
  }
  if (circuit.n() > 64) {
    throw std::invalid_argument("extract_cases: more than 64 observable bits");
  }
  const auto num_tables = static_cast<std::size_t>(opts.latency);
  const int num_shards =
      resolve_checkpoint_shards(sharding.num_shards, faults.size());
  const auto bounds = shard_bounds(faults.size(), num_shards);

  // Phase 1: collect checkpointed shards; list the rest.
  std::vector<ExtractShard> shards(static_cast<std::size_t>(num_shards));
  std::vector<char> present(static_cast<std::size_t>(num_shards), 0);
  std::vector<std::uint32_t> missing;
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(num_shards); ++s) {
    ExtractShard& sh = shards[s];
    if (hooks.load &&
        hooks.load(s, static_cast<std::uint32_t>(num_shards), sh) &&
        sh.index == s &&
        sh.num_shards == static_cast<std::uint32_t>(num_shards) &&
        sh.tables.size() == num_tables && !shard_truncated(sh)) {
      present[s] = 1;
    } else {
      sh = ExtractShard{};
      missing.push_back(s);
    }
  }
  if (opts.obs.metrics != nullptr) {
    opts.obs.metrics->add(
        "ced_extract_shards_resumed_total",
        static_cast<std::uint64_t>(static_cast<std::size_t>(num_shards) -
                                   missing.size()));
  }

  // Phase 2: compute (up to the quota) the missing shards, in index order.
  // Each shard runs with PRIVATE valves, so its content is a pure function
  // of (circuit, fault block, opts, num_shards) — never of timing or of the
  // other shards — which is what makes checkpoints replayable.
  std::size_t allowed = missing.size();
  if (sharding.max_new_shards > 0) {
    allowed = std::min<std::size_t>(
        allowed, static_cast<std::size_t>(sharding.max_new_shards));
  }
  const std::size_t skipped = missing.size() - allowed;
  if (allowed > 0) {
    std::vector<std::uint64_t> activation_codes;
    if (opts.restrict_to_reachable) {
      activation_codes = sim::reachable_codes(circuit, circuit.enc.reset_code);
    } else {
      for (std::uint64_t c = 0; c <= circuit.state_mask(); ++c) {
        activation_codes.push_back(c);
      }
    }
    sim::GoldenCache golden(circuit);
    golden.populate(activation_codes);

    parallel_for(resolve_threads(opts.threads), allowed, [&](std::size_t i) {
      const std::uint32_t s = missing[i];
      obs::ScopedSpan span(opts.obs, "extract-shard");
      span.attr("shard", static_cast<std::uint64_t>(s));
      SharedValves valves(num_tables);
      ShardWorker worker(circuit, opts, golden, activation_codes, valves,
                         num_shards);
      const std::size_t begin = bounds[s];
      const std::size_t end = bounds[s + 1];
      span.attr("faults", static_cast<std::uint64_t>(end - begin));
      worker.run(faults.subspan(begin, end - begin));
      if (opts.obs.metrics != nullptr) {
        obs::MetricsShard mshard(opts.obs.metrics);
        mshard.add("ced_extract_shards_total");
        mshard.add("ced_extract_shards_computed_total");
      }
      ExtractShard sh =
          shard_from_worker(worker, valves, s,
                            static_cast<std::uint32_t>(num_shards),
                            end - begin);
      // Only complete shards become checkpoints; a valve-tripped shard
      // keeps its partial cases in this run's (truncated) result but is
      // recomputed from scratch on resume.
      if (!shard_truncated(sh) && hooks.save) hooks.save(sh);
      shards[s] = std::move(sh);
      present[s] = 1;
    });
  }

  // Phase 3: deterministic merge in fixed shard order — identical to a
  // fresh full run whenever every shard is present and complete.
  std::vector<DetectabilityTable> tables(num_tables);
  for (int p = 1; p <= opts.latency; ++p) {
    const auto t = static_cast<std::size_t>(p - 1);
    DetectabilityTable& table = tables[t];
    table.num_bits = circuit.n();
    table.latency = p;
    table.num_faults = faults.size();
    CaseSet merged;
    for (int s = 0; s < num_shards; ++s) {
      if (!present[static_cast<std::size_t>(s)]) continue;
      const ExtractShard& sh = shards[static_cast<std::size_t>(s)];
      const DetectabilityTable& lt = sh.tables[t];
      merged.insert(lt.cases.begin(), lt.cases.end());
      table.num_activations += lt.num_activations;
      table.num_paths += lt.num_paths;
      table.num_loop_truncations += lt.num_loop_truncations;
      table.strengthened = table.strengthened || lt.strengthened;
      if (p == 1) table.num_detectable_faults += lt.num_detectable_faults;
      if (lt.truncated) {
        table.truncated = true;
        if (table.truncation_reason.empty()) {
          table.truncation_reason = lt.truncation_reason;
        }
      }
    }
    compact(merged);
    table.cases.assign(merged.begin(), merged.end());
    std::sort(table.cases.begin(), table.cases.end(), case_less);
    if (skipped > 0) {
      table.truncated = true;
      if (table.truncation_reason.empty()) {
        table.truncation_reason =
            "checkpoint quota: " + std::to_string(skipped) + " of " +
            std::to_string(num_shards) +
            " shards left for a later run; re-run with --resume to continue";
      }
    }
  }
  for (int p = 2; p <= opts.latency; ++p) {
    tables[static_cast<std::size_t>(p - 1)].num_detectable_faults =
        tables[0].num_detectable_faults;
  }
  return tables;
}

}  // namespace ced::core
