#include "core/extract.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ced::core {
namespace {

using CaseSet = std::unordered_set<ErroneousCase, ErroneousCaseHash>;

/// One state of the enumerated walk: the fault-free (reference) machine's
/// state and the faulty machine's state. Under kImplementable semantics the
/// reference is re-anchored to the faulty register every step, so good ==
/// bad throughout.
struct Pair {
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  bool operator==(const Pair&) const = default;
};

/// Distinct single-step behaviours from one pair under one fault: inputs
/// are grouped into classes by (difference word, successor pair).
struct StepClass {
  std::uint64_t diff = 0;
  Pair next;

  bool operator<(const StepClass& o) const {
    if (diff != o.diff) return diff < o.diff;
    if (next.good != o.next.good) return next.good < o.next.good;
    return next.bad < o.next.bad;
  }
  bool operator==(const StepClass&) const = default;
};

std::vector<StepClass> step_classes(const std::vector<std::uint64_t>& golden,
                                    const std::vector<std::uint64_t>& faulty,
                                    const fsm::FsmCircuit& c,
                                    DiffSemantics semantics) {
  std::vector<StepClass> classes;
  classes.reserve(16);
  for (std::size_t a = 0; a < golden.size(); ++a) {
    StepClass cls;
    cls.diff = golden[a] ^ faulty[a];
    cls.next.bad = c.next_state_of(faulty[a]);
    cls.next.good = semantics == DiffSemantics::kMachineLevel
                        ? c.next_state_of(golden[a])
                        : cls.next.bad;  // re-anchor to the real register
    classes.push_back(cls);
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

/// Canonical form of a path's difference sequence: the sorted set of its
/// distinct nonzero step words. Coverage (exists step with odd overlap)
/// only depends on this set.
ErroneousCase canonicalize(const std::uint64_t* diffs, int len) {
  ErroneousCase ec;
  std::array<std::uint64_t, kMaxLatency> tmp{};
  int n = 0;
  for (int k = 0; k < len; ++k) {
    if (diffs[k] != 0) tmp[static_cast<std::size_t>(n++)] = diffs[k];
  }
  // Insertion sort: n <= kMaxLatency (tiny), and it avoids std::sort's
  // large inlined thresholds that trip -Warray-bounds on small arrays.
  for (int i = 1; i < n; ++i) {
    const std::uint64_t v = tmp[static_cast<std::size_t>(i)];
    int j = i;
    while (j > 0 && tmp[static_cast<std::size_t>(j - 1)] > v) {
      tmp[static_cast<std::size_t>(j)] = tmp[static_cast<std::size_t>(j - 1)];
      --j;
    }
    tmp[static_cast<std::size_t>(j)] = v;
  }
  int m = 0;
  for (int k = 0; k < n; ++k) {
    if (k == 0 || tmp[static_cast<std::size_t>(k)] !=
                      tmp[static_cast<std::size_t>(k - 1)]) {
      ec.diff[static_cast<std::size_t>(m++)] = tmp[static_cast<std::size_t>(k)];
    }
  }
  ec.length = static_cast<std::uint8_t>(m);
  return ec;
}

class Extractor {
 public:
  Extractor(const fsm::FsmCircuit& circuit, const ExtractOptions& opts,
            std::vector<DetectabilityTable>& tables)
      : circuit_(circuit), opts_(opts), tables_(tables), golden_(circuit),
        sets_(static_cast<std::size_t>(opts.latency)),
        compact_threshold_(static_cast<std::size_t>(opts.latency),
                           kCompactStart),
        max_words_(static_cast<std::size_t>(opts.latency), kMaxLatency),
        frozen_(static_cast<std::size_t>(opts.latency), false) {}

  void run(std::span<const sim::StuckAtFault> faults) {
    std::vector<std::uint64_t> activation_codes;
    if (opts_.restrict_to_reachable) {
      activation_codes =
          sim::reachable_codes(circuit_, circuit_.enc.reset_code);
    } else {
      for (std::uint64_t c = 0; c <= circuit_.state_mask(); ++c) {
        activation_codes.push_back(c);
      }
    }

    for (auto& t : tables_) t.num_faults = faults.size();
    for (const auto& f : faults) {
      if (stop_) break;
      sim::FaultyCache faulty(circuit_, f);
      bool detectable = false;
      for (std::uint64_t c : activation_codes) {
        if (stop_) break;
        check_deadline();
        const auto classes = step_classes(golden_.rows(c), faulty.rows(c),
                                          circuit_, opts_.semantics);
        for (const auto& cls : classes) {
          if (cls.diff == 0) continue;  // fault dormant: not an activation
          detectable = true;
          for (auto& t : tables_) ++t.num_activations;
          diffs_[0] = cls.diff;
          record(1);
          // The path's states are those reached by erroneous transitions
          // ("starting from the first erroneous state", §2): h1, h2, ...
          // The activation state c is not part of the loop-detection set.
          path_states_[0] = cls.next;
          descend(faulty, cls.next, 1);
        }
      }
      if (detectable) {
        for (auto& t : tables_) ++t.num_detectable_faults;
      }
    }

    for (int p = 1; p <= opts_.latency; ++p) {
      auto& t = tables_[static_cast<std::size_t>(p - 1)];
      auto& set = sets_[static_cast<std::size_t>(p - 1)];
      compact(set);  // drop supersets that arrived before their subsets
      t.cases.assign(set.begin(), set.end());
      std::sort(t.cases.begin(), t.cases.end(),
                [](const ErroneousCase& a, const ErroneousCase& b) {
                  if (a.length != b.length) return a.length < b.length;
                  return a.diff < b.diff;
                });
    }
  }

 private:
  /// Extends the current path from `pair` at step index `depth`
  /// (diffs_[0..depth-1] and path_states_[0..depth-1] are filled).
  void descend(sim::FaultyCache& faulty, const Pair& pair, int depth) {
    if (depth == opts_.latency || stop_) return;
    if ((++tick_ & 1023u) == 0) check_deadline();
    const auto classes = step_classes(golden_.rows(pair.good),
                                      faulty.rows(pair.bad), circuit_,
                                      opts_.semantics);
    for (const auto& cls : classes) {
      if (stop_) return;
      diffs_[static_cast<std::size_t>(depth)] = cls.diff;
      record(depth + 1);
      bool loop = false;
      for (int i = 0; i < depth; ++i) {
        if (path_states_[static_cast<std::size_t>(i)] == cls.next) {
          loop = true;
          break;
        }
      }
      if (loop) {
        // The pair repeats: longer bounds gain no further alternatives
        // along this path; the truncated case is their requirement too.
        for (auto& t : tables_) ++t.num_loop_truncations;
        const ErroneousCase ec = canonicalize(diffs_.data(), depth + 1);
        for (int p = depth + 2; p <= opts_.latency; ++p) {
          ++tables_[static_cast<std::size_t>(p - 1)].num_paths;
          insert(ec, p);
        }
      } else if (!extensions_redundant(depth + 1)) {
        path_states_[static_cast<std::size_t>(depth)] = cls.next;
        descend(faulty, cls.next, depth + 1);
      }
    }
  }

  /// Subtree prune: extensions of the current prefix (of length `len`)
  /// would be recorded into tables len+1..p, each as a superset of the
  /// prefix's word set. If every one of those tables already requires the
  /// prefix set itself or a subset of it, all extensions are dominated rows
  /// there and the subtree contributes nothing.
  bool extensions_redundant(int len) {
    if (len + 1 > opts_.latency) return false;  // no extensions anyway
    const ErroneousCase prefix = canonicalize(diffs_.data(), len);
    for (int t = len + 1; t <= opts_.latency; ++t) {
      const auto& set = sets_[static_cast<std::size_t>(t - 1)];
      if (!set.count(prefix) && !dominated(prefix, set)) return false;
    }
    return true;
  }

  /// Records the current path prefix of length `len` as a complete case of
  /// the latency-`len` table.
  void record(int len) {
    ++tables_[static_cast<std::size_t>(len - 1)].num_paths;
    insert(canonicalize(diffs_.data(), len), len);
  }

  /// True if some nonempty proper subset of ec's word set is already a
  /// case: that case implies ec (odd overlap with the subset's word is odd
  /// overlap with ec's), making ec a redundant row.
  static bool dominated(const ErroneousCase& ec, const CaseSet& set) {
    const unsigned full = (1u << ec.length) - 1;
    for (unsigned mask = 1; mask < full; ++mask) {
      ErroneousCase sub;
      int m = 0;
      for (int k = 0; k < ec.length; ++k) {
        if ((mask >> k) & 1) {
          sub.diff[static_cast<std::size_t>(m++)] =
              ec.diff[static_cast<std::size_t>(k)];
        }
      }
      sub.length = static_cast<std::uint8_t>(m);
      if (set.count(sub)) return true;
    }
    return false;
  }

  /// Rebuilds a set keeping only subset-minimal cases.
  static void compact(CaseSet& set) {
    CaseSet kept;
    kept.reserve(set.size());
    for (const auto& ec : set) {
      if (!dominated(ec, set)) kept.insert(ec);
    }
    set = std::move(kept);
  }

  /// Strengthens a case to its `k` smallest difference words (sound: it
  /// only removes detection alternatives).
  static ErroneousCase strengthen(const ErroneousCase& ec, int k) {
    if (ec.length <= k) return ec;
    ErroneousCase s;
    s.length = static_cast<std::uint8_t>(k);
    for (int i = 0; i < k; ++i) {
      s.diff[static_cast<std::size_t>(i)] = ec.diff[static_cast<std::size_t>(i)];
    }
    return s;
  }

  /// Freezes table `t`: no further cases are accepted, the rows found so
  /// far stand, and the truncation is reported instead of thrown.
  void freeze(std::size_t t, const std::string& reason) {
    if (frozen_[t]) return;
    frozen_[t] = true;
    tables_[t].truncated = true;
    tables_[t].truncation_reason = reason;
    bool all = true;
    for (std::size_t i = 0; i < frozen_.size(); ++i) {
      if (!frozen_[i]) all = false;
    }
    if (all) stop_ = true;
  }

  /// Cooperative wall-clock check: on expiry, every still-open table is
  /// frozen with its partial contents and the DFS unwinds.
  void check_deadline() {
    if (stop_ || !opts_.deadline.armed() || !opts_.deadline.expired()) return;
    for (std::size_t t = 0; t < frozen_.size(); ++t) {
      freeze(t, "wall-clock budget exhausted during extraction");
    }
    stop_ = true;
  }

  void insert(ErroneousCase ec, int latency) {
    const auto t = static_cast<std::size_t>(latency - 1);
    if (frozen_[t]) return;
    auto& set = sets_[t];
    ec = strengthen(ec, max_words_[t]);
    if (dominated(ec, set)) return;
    set.insert(ec);
    auto& threshold = compact_threshold_[t];
    if (set.size() > threshold) {
      compact(set);
      threshold = std::max<std::size_t>(2 * set.size(), kCompactStart);
    }
    while (set.size() > opts_.degrade_threshold && max_words_[t] > 1) {
      // Degrade: strengthen every case of this table to fewer words and
      // rebuild the subset-minimal antichain.
      --max_words_[t];
      tables_[t].strengthened = true;
      CaseSet rebuilt;
      rebuilt.reserve(set.size());
      for (const auto& c : set) rebuilt.insert(strengthen(c, max_words_[t]));
      compact(rebuilt);
      set = std::move(rebuilt);
      threshold = std::max<std::size_t>(2 * set.size(), kCompactStart);
    }
    if (set.size() > opts_.max_cases) {
      // Recoverable truncation (the old behaviour threw here): keep the
      // subset-minimal cases found so far and freeze this table.
      compact(set);
      if (set.size() > opts_.max_cases) {
        freeze(t,
               "erroneous-case limit (" + std::to_string(opts_.max_cases) +
                   ") exceeded; table holds the cases found so far");
      }
    }
  }

  static constexpr std::size_t kCompactStart = 1u << 17;

  const fsm::FsmCircuit& circuit_;
  const ExtractOptions& opts_;
  std::vector<DetectabilityTable>& tables_;
  sim::GoldenCache golden_;
  std::vector<CaseSet> sets_;
  std::vector<std::size_t> compact_threshold_;
  std::vector<int> max_words_;
  std::vector<bool> frozen_;
  bool stop_ = false;
  std::uint32_t tick_ = 0;
  std::array<std::uint64_t, kMaxLatency> diffs_{};
  std::array<Pair, kMaxLatency + 1> path_states_{};
};

}  // namespace

std::vector<DetectabilityTable> extract_cases_multi(
    const fsm::FsmCircuit& circuit,
    std::span<const sim::StuckAtFault> faults, const ExtractOptions& opts) {
  if (opts.latency < 1 || opts.latency > kMaxLatency) {
    throw std::invalid_argument("extract_cases: latency out of range");
  }
  if (circuit.n() > 64) {
    throw std::invalid_argument("extract_cases: more than 64 observable bits");
  }
  std::vector<DetectabilityTable> tables(
      static_cast<std::size_t>(opts.latency));
  for (int p = 1; p <= opts.latency; ++p) {
    tables[static_cast<std::size_t>(p - 1)].num_bits = circuit.n();
    tables[static_cast<std::size_t>(p - 1)].latency = p;
  }
  Extractor ex(circuit, opts, tables);
  ex.run(faults);
  return tables;
}

DetectabilityTable extract_cases(const fsm::FsmCircuit& circuit,
                                 std::span<const sim::StuckAtFault> faults,
                                 const ExtractOptions& opts) {
  return std::move(extract_cases_multi(circuit, faults, opts).back());
}

}  // namespace ced::core
