#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "core/coverkernel.hpp"
#include "core/extract.hpp"
#include "core/greedy.hpp"
#include "core/ilp.hpp"
#include "core/parity.hpp"
#include "obs/trace.hpp"

namespace ced::core {

/// Options for Algorithm 1 (LP relaxation + randomized rounding inside a
/// binary search on the number of parity trees q).
struct Algorithm1Options {
  /// ITER of the paper: rounding attempts per LP solution.
  int iter = 40;
  /// Delayed row generation: number of table rows in the initial LP (the
  /// hardest rows — fewest detecting bits — are chosen first). The full
  /// table is always used for the exact Statement-4 feasibility check.
  int lp_sample_rows = 48;
  /// Rounds of adding violated rows and re-solving.
  int row_rounds = 4;
  /// Roundings are screened against a sample of at most this many rows;
  /// a full exact Statement-4 check runs only on screen-passing candidates
  /// (and teaches the sample any rows it missed).
  std::size_t verify_sample_cap = 20'000;
  /// Hill-climb repair of the best near-miss rounding before giving up on
  /// one q (practical extension; disable for a paper-faithful solver).
  bool repair = true;
  /// After the binary search: repeatedly try dropping one tree from the
  /// incumbent and repairing the loss (practical extension that enforces
  /// solution quality independent of rounding luck; disable for a
  /// paper-faithful solver).
  bool post_optimize = true;
  /// Use the literal Statement-5 formulation (with w variables) instead of
  /// the reduced one. Slower; primarily for equivalence testing.
  bool use_statement5 = false;
  std::uint64_t seed = 0xced;
  /// Worker threads for the randomized-rounding trials. Each trial draws
  /// from its own Rng stream derived from (seed, q, round, trial-index) and
  /// the first success by lowest trial index wins, so the selected parities
  /// are identical for every thread count (1 = serial, 0 = CED_THREADS env
  /// or hardware concurrency).
  int threads = 0;
  lp::SolverOptions lp;
  GreedyOptions greedy;
  /// Wall-clock budget for the whole Algorithm-1 search (forwarded to the
  /// LP solver and the greedy seeding). On expiry the binary search stops
  /// and the best incumbent so far is returned — never nothing.
  Deadline deadline;
  /// Observability sinks (spans for the binary search and LP solves,
  /// counters for trials/repairs/pivots). Purely write-only diagnostics:
  /// the selected parities are byte-identical with sinks set or null.
  obs::Sinks obs;
};

struct Algorithm1Stats {
  int lp_solves = 0;
  int roundings = 0;
  int repairs = 0;
  int final_q = 0;
  /// Simplex pivots consumed across all LP solves.
  int lp_iterations = 0;
  /// True when the binary search never beat the greedy upper bound and the
  /// greedy solution was returned.
  bool greedy_fallback = false;
  /// True when an LP solve stopped on its iteration or time budget (the
  /// former silent `break` path — now recorded).
  bool lp_budget_hit = false;
  /// True when the wall-clock deadline cut the search short.
  bool deadline_hit = false;
  /// True when even the greedy seeding ran out of time and closed out with
  /// single-bit functions.
  bool greedy_degraded = false;
  /// Rows the pipeline's solver actually saw after subset-dominance
  /// condensation (see core/coverkernel.hpp); 0 when condensation was
  /// disabled or the solver was invoked outside the pipeline; equals the
  /// table size when nothing was dominated.
  std::size_t condensed_cases = 0;
  std::vector<int> qs_tried;
  /// Screening-check row evaluations performed through the bit-sliced
  /// kernel vs the scalar path (trial-batch granularity: executed trials x
  /// sample rows). Diagnostics only — never consulted by the search.
  std::uint64_t kernel_case_evals = 0;
  std::uint64_t scalar_case_evals = 0;
};

struct ResilienceReport;

/// Per-table precomputation shared by every q probed by the binary search
/// and by the post-optimization pass: the bit-sliced cover kernel plus the
/// hardness ordering of the rows (both depend only on the table, so they
/// are built once per cascade instead of per solve_for_q call). Standalone
/// solve_for_q callers get a local one automatically.
///
/// Since the Solver-interface redesign this struct also carries the
/// run-scoped state the cascade threads through every level (solver.hpp):
/// the shared deadline, the stats/resilience outputs, the warm start, and
/// the observability sinks. The constructor leaves all of it defaulted;
/// only the cascade driver (pipeline.cpp) fills it in.
struct SolverContext {
  explicit SolverContext(const DetectabilityTable& table);

  const DetectabilityTable* table;
  /// Engaged unless CED_KERNEL=scalar.
  std::optional<CoverKernel> kernel;
  /// Detecting (bit, step) entry count per row (fewest = hardest: those
  /// rows constrain the LP the most and are sampled first).
  std::vector<int> hardness;
  /// Every row index, stably sorted by ascending hardness.
  std::vector<std::uint32_t> hard_order;

  const CoverKernel* kernel_ptr() const { return kernel ? &*kernel : nullptr; }

  // ---- run-scoped state (filled by the cascade driver, defaulted
  // ---- otherwise; solvers read these instead of taking five parameters).
  /// Shared wall-clock budget for the whole selection run.
  Deadline deadline;
  /// Optional diagnostics output (never read back by the solvers).
  Algorithm1Stats* stats = nullptr;
  /// Optional degradation audit trail for non-fatal events.
  ResilienceReport* resilience = nullptr;
  /// Optional incumbent seed (see minimize_parity_functions).
  std::span<const ParityFunc> warm_start;
  /// Observability sinks; parent_span scopes the per-level spans.
  obs::Sinks obs;
  /// When the cascade started (fallback events report seconds into it).
  std::chrono::steady_clock::time_point cascade_start =
      std::chrono::steady_clock::now();
};

/// Tries to find q parity functions covering every case of the table:
/// LP relaxation (with delayed row generation), randomized rounding per
/// eq. (1), exact Statement-4 verification against the full table.
/// `ctx` (optional) shares the kernel and hardness precomputation across
/// calls; it must have been built for this same table.
std::optional<std::vector<ParityFunc>> solve_for_q(
    const DetectabilityTable& table, int q, const Algorithm1Options& opts = {},
    Algorithm1Stats* stats = nullptr, const SolverContext* ctx = nullptr);

/// Algorithm 1: binary search on q (upper bound seeded by the greedy
/// solver, which also serves as the fallback solution). Returns a complete
/// cover; size is minimal up to rounding luck.
///
/// `warm_start` optionally seeds the incumbent: if it covers the table and
/// is smaller than the greedy solution it becomes the starting upper bound
/// (used by latency sweeps, where a p-cover always covers p+1's table).
/// `shared_ctx` (optional) reuses a caller-built kernel + hardness
/// precomputation for this same table (the cascade driver builds one
/// context for all levels); run-scoped fields of the context are ignored
/// here — the explicit parameters win.
std::vector<ParityFunc> minimize_parity_functions(
    const DetectabilityTable& table, const Algorithm1Options& opts = {},
    Algorithm1Stats* stats = nullptr,
    std::span<const ParityFunc> warm_start = {},
    const SolverContext* shared_ctx = nullptr);

}  // namespace ced::core
