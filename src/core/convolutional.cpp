#include "core/convolutional.hpp"

#include <stdexcept>

#include "core/algorithm1.hpp"

namespace ced::core {

logic::AreaReport ConvolutionalCed::cost(const logic::CellLibrary& lib) const {
  logic::AreaReport r = combo.cost(lib);
  // combo.cost charged 2q hold registers (the Fig. 3 structure). The
  // convolutional scheme instead needs K accumulator banks of q flip-flops
  // each (full-rank tap matrix; see header) with an XOR2 feedback per bit,
  // plus the mod-K sampling counter.
  const std::size_t q = keys.size();
  const std::size_t acc_bits = static_cast<std::size_t>(window) * q;
  r.area -= lib.dff * static_cast<double>(2 * q);   // replace hold regs
  r.area += lib.dff * static_cast<double>(acc_bits);
  r.gates += acc_bits;  // accumulator feedback XORs
  r.area += static_cast<double>(acc_bits) * lib.xor2;
  int counter_bits = 0;
  for (int w = window - 1; w > 0; w >>= 1) ++counter_bits;
  r.area += lib.dff * static_cast<double>(counter_bits) +
            2.0 * static_cast<double>(counter_bits);  // counter + increment
  return r;
}

ConvolutionalCed synthesize_convolutional(const fsm::FsmCircuit& circuit,
                                          const DetectabilityTable& p1_table,
                                          int window,
                                          const ConvolutionalOptions& opts) {
  if (p1_table.latency != 1) {
    throw std::invalid_argument(
        "synthesize_convolutional: needs a latency-1 table");
  }
  if (window < 1) {
    throw std::invalid_argument("synthesize_convolutional: bad window");
  }
  ConvolutionalCed ced;
  ced.window = window;
  ced.keys = minimize_parity_functions(p1_table, opts.algo);
  ced.combo = synthesize_ced(circuit, ced.keys, opts.ced);
  ced.registers =
      static_cast<std::size_t>(window) * ced.keys.size();
  return ced;
}

bool ConvolutionalChecker::step(std::uint64_t input, std::uint64_t state_code,
                                std::uint64_t observable) {
  const std::uint64_t assignment = input | (state_code << ced_.combo.r) |
                                   (observable << (ced_.combo.r + ced_.combo.s));
  const std::uint64_t outs = ced_.combo.checker.eval_single(assignment);
  const int q = ced_.combo.q;
  const int k = ced_.window;
  for (int l = 0; l < q; ++l) {
    const bool mismatch =
        (((outs >> l) ^ (outs >> (q + l))) & 1) != 0;  // compact != pred
    if (!mismatch) continue;
    // Lower-triangular tap matrix: bank b accumulates the mismatches of
    // phases 0..b. The matrix is invertible, so any nonzero mismatch
    // pattern within a window leaves a nonzero syndrome in some bank.
    for (int b = phase_; b < k; ++b) {
      const std::size_t idx =
          static_cast<std::size_t>(b) * static_cast<std::size_t>(q) +
          static_cast<std::size_t>(l);
      acc_[idx] = !acc_[idx];
    }
  }
  ++phase_;
  if (phase_ < k) return false;
  bool error = false;
  for (bool bit : acc_) error = error || bit;
  reset();
  return error;
}

void ConvolutionalChecker::reset() {
  acc_.assign(static_cast<std::size_t>(ced_.window) * ced_.keys.size(),
              false);
  phase_ = 0;
}

}  // namespace ced::core
