#pragma once

// The ced_serve daemon core: a long-running protection service over the
// existing pipeline, engineered so its own failure behavior is a tested
// property (ISSUE 6 / DESIGN.md §12).
//
//   - Admission control: a bounded worker pool fed by a FIFO-per-tenant
//     queue drained round-robin across tenants. When the queue is full the
//     daemon answers a structured kOverloaded with a retry-after hint
//     (never unbounded queueing); with `degrade_on_overload` it instead
//     serves overflow from the cheap greedy/duplication-floor cascade
//     under a strict wall budget, flagged `degraded`.
//   - Deadlines: a per-request `deadline_ms` becomes the run's
//     RunBudget.wall_seconds, so the existing cooperative valves enforce
//     it inside every stage loop.
//   - Dedup & caching: identical requests (same machine bytes + same
//     result-shaping config, budget excluded) coalesce onto one in-flight
//     run; with a store bound, warm hits serve the persisted scheme
//     without running extraction at all, and cold misses run
//     shard-checkpointed extraction with resume on — so a kill -9 mid-run
//     plus restart completes from checkpoints, byte-identical.
//   - Graceful drain: stop accepting, give in-flight work a grace period,
//     then trip every run's interrupt valve so it checkpoints; queued
//     requests get kDraining; manifests are flushed; drain() returns only
//     when every thread has exited.
//
// The Server object is fully in-process (the tests run it on an ephemeral
// unix socket inside a tempdir); tools/ced_serve.cpp adds the process
// scaffolding (flags, signals, pidfile-free systemd-style lifecycle).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "storage/store.hpp"

namespace ced::serve {

struct ServerOptions {
  /// Unix-domain listener path ("" = none). An existing socket file is
  /// replaced (the daemon assumes ownership of the path).
  std::string unix_socket;
  /// TCP listener on 127.0.0.1 (-1 = off, 0 = ephemeral port; see
  /// tcp_port() for the resolved value).
  int tcp_port = -1;
  /// Plain-HTTP listener on 127.0.0.1 serving GET /metrics (Prometheus
  /// text) and /healthz (-1 = off, 0 = ephemeral).
  int metrics_port = -1;

  /// Worker pool size (cold pipeline runs execute here).
  int workers = 2;
  /// Max requests waiting for a worker, across all tenants. Beyond this,
  /// admission rejects (kOverloaded) or degrades, never queues.
  int queue_depth = 16;
  /// Pipeline threads per job. Workers already provide inter-request
  /// parallelism; 1 keeps one job on one core.
  int threads_per_request = 1;

  /// Artifact store directory ("" = stateless: no warm cache, no
  /// checkpoints, no manifests).
  std::string store_dir;
  /// Checkpoint shard partition for cold extraction (0 = default 16).
  int checkpoint_shards = 0;

  /// Serve queue overflow from the degraded cascade (greedy solver under
  /// `degraded_budget_s`) instead of rejecting. Bounded: at most
  /// 2*workers such runs in flight, beyond which kOverloaded applies.
  bool degrade_on_overload = false;
  double degraded_budget_s = 0.5;

  /// Wall budget applied when a request carries no deadline_ms
  /// (0 = unlimited).
  double default_deadline_s = 0.0;
  /// How long drain() lets in-flight work run before tripping the
  /// interrupt valve (checkpoint-and-return).
  double drain_grace_s = 5.0;

  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Chaos/test hooks (0 = off): injected latency before each job body
  /// and per checkpoint-shard persist. They widen race windows the chaos
  /// harness aims at (kill -9 mid-extraction, queue saturation) without
  /// needing a machine large enough to be naturally slow.
  int chaos_job_delay_ms = 0;
  int chaos_shard_delay_ms = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds listeners and starts the accept/worker threads. kInvalidInput
  /// when no listener is configured or a bind fails.
  Status start();

  /// Graceful shutdown; see class comment. Idempotent, blocks until every
  /// thread has exited. After drain() the object can only be destroyed.
  void drain();

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Resolved listener endpoints (valid after start()).
  int tcp_port() const { return resolved_tcp_port_; }
  int metrics_port() const { return resolved_metrics_port_; }

  /// The daemon's metrics registry (shared with every pipeline run's obs
  /// sinks and the /metrics endpoint).
  obs::MetricsRegistry& metrics() { return registry_; }

 private:
  struct InFlight {
    Request req;
    std::string key;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Response resp;
  };

  // Listener plumbing.
  Status bind_listeners();
  void accept_loop(int listen_fd);
  void metrics_http_loop();
  void conn_loop(int fd);
  void close_all_connections();

  // Admission + execution.
  Response handle_request(Request req);
  Response admit_and_wait(Request req);
  std::shared_ptr<InFlight> pop_next_job_locked();
  void worker_loop();
  void finish(const std::shared_ptr<InFlight>& flight, Response resp);
  Response execute(const Request& req, bool degraded_mode);
  Response run_protect(const Request& req, bool degraded_mode);
  Response run_sweep(const Request& req, bool degraded_mode);
  Response run_verify(const Request& req);
  Response health_response();
  std::string dedup_key(const Request& req) const;
  double overload_retry_hint_locked() const;

  ServerOptions opts_;
  obs::MetricsRegistry registry_;

  std::unique_ptr<storage::ArtifactStore> store_;

  // Listeners: fds + the self-pipe that wakes accept loops for drain.
  std::vector<int> listen_fds_;
  int metrics_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int resolved_tcp_port_ = -1;
  int resolved_metrics_port_ = -1;

  std::vector<std::thread> accept_threads_;
  std::thread metrics_thread_;
  std::vector<std::thread> worker_threads_;

  // Open connections (for forced shutdown on drain) and their threads.
  std::mutex conn_mu_;
  std::unordered_set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  // Admission state. tenant_q_ holds queued-not-yet-running flights;
  // rr_ is the round-robin rotation of tenants with nonempty queues;
  // in_flight_ spans queued AND running jobs (the dedup window).
  std::mutex adm_mu_;
  std::condition_variable work_cv_;
  std::map<std::string, std::deque<std::shared_ptr<InFlight>>> tenant_q_;
  std::deque<std::string> rr_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> in_flight_;
  int queued_ = 0;
  int active_ = 0;
  int degraded_inline_ = 0;
  bool stop_workers_ = false;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_trip_{false};  ///< RunBudget.interrupt target
  std::atomic<bool> drained_{false};
};

}  // namespace ced::serve
