#pragma once

// Client side of the ced_serve protocol: connect, frame, retry.
//
// `Client::call` is the resilient entry point: it retries transport
// failures (connect refused, torn frames — the daemon restarting under
// chaos) and service pushback (kOverloaded, kDraining) with the shared
// capped-exponential/decorrelated-jitter policy from common/retry.hpp,
// honoring the server's retry-after hint when one is present. Structured
// outcomes (kOk/kDegraded/kInvalidInput/kNotFound/kInternal) are final and
// returned to the caller untouched — retrying an invalid request would
// never help.

#include <functional>
#include <string>

#include "common/retry.hpp"
#include "common/status.hpp"
#include "serve/protocol.hpp"

namespace ced::serve {

struct ClientOptions {
  /// Unix-domain socket path ("" = use TCP).
  std::string unix_socket;
  /// TCP endpoint on 127.0.0.1 (used when unix_socket is empty).
  int tcp_port = -1;
  /// Retry policy for transport failures and service pushback.
  RetryPolicy retry{};
  /// Jitter seed (deterministic backoff sequences in tests).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Injectable sleep for tests; nullptr = std::this_thread::sleep_for.
  std::function<void(double ms)> sleep;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class Client {
 public:
  explicit Client(ClientOptions opts);

  /// One request/response exchange without retries: connect (or reuse the
  /// kept-alive connection), write the frame, read one frame back.
  /// Transport failures surface as kTruncated (torn/closed) or kInternal
  /// (connect/IO errors).
  Result<Response> call_once(const Request& req);

  /// Resilient exchange; see file comment. The number of attempts and the
  /// total backoff are bounded by the policy — on budget exhaustion the
  /// last failure (transport Status or pushback Response) is returned.
  Result<Response> call(const Request& req);

  /// Drops the kept-alive connection (next call reconnects).
  void disconnect();

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

 private:
  Status connect();

  ClientOptions opts_;
  RetryState retry_;
  int fd_ = -1;
};

}  // namespace ced::serve
