#include "serve/wire.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace ced::serve {

// ---------------------------------------------------------------- JSON

const Json* Json::get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::str_or(std::string fallback) const {
  return type_ == Type::kString ? str_ : std::move(fallback);
}

double Json::num_or(double fallback) const {
  return type_ == Type::kNumber ? num_ : fallback;
}

bool Json::bool_or(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

bool valid_utf8(std::string_view s) {
  const auto* p = reinterpret_cast<const unsigned char*>(s.data());
  const auto* end = p + s.size();
  while (p < end) {
    const unsigned char c = *p;
    if (c < 0x80) {
      ++p;
      continue;
    }
    int len;
    std::uint32_t cp;
    if ((c & 0xE0) == 0xC0) {
      len = 2;
      cp = c & 0x1Fu;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      cp = c & 0x0Fu;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      cp = c & 0x07u;
    } else {
      return false;  // stray continuation byte or invalid lead
    }
    if (end - p < len) return false;  // truncated sequence
    for (int i = 1; i < len; ++i) {
      if ((p[i] & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (p[i] & 0x3Fu);
    }
    // Overlongs, UTF-16 surrogates, and > U+10FFFF are all invalid.
    static constexpr std::uint32_t kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
    if (cp < kMin[len] || cp > 0x10FFFF ||
        (cp >= 0xD800 && cp <= 0xDFFF)) {
      return false;
    }
    p += len;
  }
  return true;
}

namespace {
constexpr int kMaxDepth = 64;
}  // namespace

// Not in an anonymous namespace: Json names this exact class as a friend.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Json> run() {
    skip_ws();
    Json v;
    Status st = parse_value(v, 0);
    if (!st.ok()) return st;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing content after JSON value");
    }
    return v;
  }

 private:
  Status fail(const std::string& what) const {
    return Status::invalid_input(
        Stage::kParse, what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        out.type_ = Json::Type::kString;
        return parse_string(out.str_);
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out.type_ = Json::Type::kBool;
          out.bool_ = true;
          return Status::make_ok();
        }
        return fail("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out.type_ = Json::Type::kBool;
          out.bool_ = false;
          return Status::make_ok();
        }
        return fail("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out.type_ = Json::Type::kNull;
          return Status::make_ok();
        }
        return fail("bad literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail(std::string("unexpected character '") + c + "'");
    }
  }

  Status parse_object(Json& out, int depth) {
    ++pos_;  // '{'
    out.type_ = Json::Type::kObject;
    skip_ws();
    if (eat('}')) return Status::make_ok();
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key string");
      }
      std::string key;
      Status st = parse_string(key);
      if (!st.ok()) return st;
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      skip_ws();
      Json value;
      st = parse_value(value, depth + 1);
      if (!st.ok()) return st;
      out.members_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return Status::make_ok();
      return fail("expected ',' or '}' in object");
    }
  }

  Status parse_array(Json& out, int depth) {
    ++pos_;  // '['
    out.type_ = Json::Type::kArray;
    skip_ws();
    if (eat(']')) return Status::make_ok();
    for (;;) {
      skip_ws();
      Json value;
      Status st = parse_value(value, depth + 1);
      if (!st.ok()) return st;
      out.items_.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return Status::make_ok();
      return fail("expected ',' or ']' in array");
    }
  }

  Status parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::make_ok();
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!read_hex4(cp)) return fail("bad \\u escape");
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: require the low half immediately after.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!read_hex4(lo) || lo < 0xDC00 || lo > 0xDFFF) {
              return fail("unpaired UTF-16 surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool read_hex4(std::uint32_t& out) {
    if (text_.size() - pos_ < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return false;
    }
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status parse_number(Json& out) {
    const std::size_t start = pos_;
    if (eat('-')) {}
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return fail("bad number");
    }
    // No leading zeros: "0" alone or a nonzero first digit.
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("bad number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("bad number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* endp = nullptr;
    const double v = std::strtod(token.c_str(), &endp);
    if (endp != token.c_str() + token.size() || !std::isfinite(v)) {
      return fail("number out of range");
    }
    out.type_ = Json::Type::kNumber;
    out.num_ = v;
    return Status::make_ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<Json> Json::parse(std::string_view text) {
  if (!valid_utf8(text)) {
    return Status::invalid_input(Stage::kParse, "payload is not valid UTF-8");
  }
  return JsonParser(text).run();
}

// -------------------------------------------------------------- frames

namespace {

/// Reads exactly n bytes; returns bytes actually read (short on EOF).
std::size_t read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ::ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    break;  // EOF, timeout, or hard error
  }
  return got;
}

}  // namespace

FrameStatus read_frame(int fd, std::string& out, std::size_t max_bytes) {
  unsigned char hdr[4];
  const std::size_t h = read_exact(fd, reinterpret_cast<char*>(hdr), 4);
  if (h == 0) return FrameStatus::kClosed;
  if (h < 4) return FrameStatus::kTorn;
  const std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                            (static_cast<std::uint32_t>(hdr[1]) << 16) |
                            (static_cast<std::uint32_t>(hdr[2]) << 8) |
                            static_cast<std::uint32_t>(hdr[3]);
  if (len == 0 || len > max_bytes) return FrameStatus::kTooLarge;
  out.resize(len);
  if (read_exact(fd, out.data(), len) < len) return FrameStatus::kTorn;
  return FrameStatus::kOk;
}

Status write_frame(int fd, std::string_view payload) {
  if (payload.size() > 0xFFFFFFFFull) {
    return Status::internal(Stage::kParse, "frame payload too large");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string buf;
  buf.reserve(4 + payload.size());
  buf.push_back(static_cast<char>((len >> 24) & 0xFF));
  buf.push_back(static_cast<char>((len >> 16) & 0xFF));
  buf.push_back(static_cast<char>((len >> 8) & 0xFF));
  buf.push_back(static_cast<char>(len & 0xFF));
  buf.append(payload);
  std::size_t sent = 0;
  while (sent < buf.size()) {
#ifdef MSG_NOSIGNAL
    const ::ssize_t r =
        ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
#else
    const ::ssize_t r = ::send(fd, buf.data() + sent, buf.size() - sent, 0);
#endif
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::internal(Stage::kParse, std::string("send failed: ") +
                                                 std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
  return Status::make_ok();
}

}  // namespace ced::serve
