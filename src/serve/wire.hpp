#pragma once

// Wire layer of the ced_serve protocol: length-prefixed JSON frames over a
// stream socket, plus the strict little JSON reader both ends share.
//
// Frame format (DESIGN.md §12):
//
//   +----------------+---------------------+
//   | length N (u32, | N bytes of UTF-8    |
//   | big-endian)    | JSON (one document) |
//   +----------------+---------------------+
//
// One request document per frame, one response document per frame. The
// length prefix is bounded (kDefaultMaxFrameBytes unless overridden): a
// prefix above the bound is rejected *before* any allocation, so a
// malicious or corrupt 4-byte header cannot make the daemon reserve
// gigabytes. Payloads must be valid UTF-8 and one complete JSON value;
// anything else earns a structured kInvalidInput response, never a crash.
//
// The JSON reader is deliberately strict and small: objects, arrays,
// strings (with escapes), finite numbers, booleans, null; depth-limited;
// whole-payload UTF-8 validation; no extensions (no comments, no trailing
// commas, no NaN). Strictness is the first line of the daemon's
// malformed-input hardening — see tests/test_serve.cpp.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace ced::serve {

/// Default cap on one frame's payload (8 MiB holds any realistic KISS2
/// machine with two orders of magnitude to spare).
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;

// ---------------------------------------------------------------- JSON

/// One parsed JSON value. Object member order is preserved (useful for
/// deterministic re-serialization in tests); lookups are linear, which is
/// fine at protocol scale.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Member lookup; nullptr when absent or not an object.
  const Json* get(std::string_view key) const;

  /// Typed accessors with defaults (never throw; wrong type = default).
  std::string str_or(std::string fallback) const;
  double num_or(double fallback) const;
  bool bool_or(bool fallback) const;
  const std::vector<Json>& items() const { return items_; }

  /// Strict parse of one complete JSON document. Enforces: valid UTF-8
  /// over the whole payload, nesting depth <= 64, no bytes after the
  /// value. Errors carry kInvalidInput with a position-tagged message.
  static Result<Json> parse(std::string_view text);

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                                // arrays
  std::vector<std::pair<std::string, Json>> members_;      // objects
};

/// True iff `s` is well-formed UTF-8 (rejects overlongs, surrogates,
/// out-of-range code points, and truncated sequences).
bool valid_utf8(std::string_view s);

// -------------------------------------------------------------- frames

/// How one read_frame() call ended.
enum class FrameStatus {
  kOk = 0,    ///< one complete frame in `out`
  kClosed,    ///< clean EOF on a frame boundary (peer finished)
  kTorn,      ///< EOF or error mid-frame (peer died / chaos truncation)
  kTooLarge,  ///< length prefix exceeds the bound; nothing was read past it
};

/// Blocking read of one frame from a stream socket. `max_bytes` bounds the
/// declared payload length (checked before allocating). On kTooLarge the
/// connection is no longer frame-aligned and must be closed after the
/// error response.
FrameStatus read_frame(int fd, std::string& out,
                       std::size_t max_bytes = kDefaultMaxFrameBytes);

/// Blocking write of one frame (length prefix + payload). Uses
/// MSG_NOSIGNAL so a peer that vanished mid-write surfaces as a Status,
/// not SIGPIPE.
Status write_frame(int fd, std::string_view payload);

}  // namespace ced::serve
