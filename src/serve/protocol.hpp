#pragma once

// Request/response schemas of the ced_serve protocol (one JSON document
// per frame; see wire.hpp for the frame format and DESIGN.md §12 for the
// full contract). Both directions are implemented here so the daemon, the
// client, and the tests share one codec and cannot drift apart.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "serve/wire.hpp"

namespace ced::serve {

/// Wire-level outcome classification carried in every response's "status"
/// field. Extends the library's StatusCode vocabulary with the service
/// conditions (overload, drain) that only exist once requests queue.
enum class Code {
  kOk = 0,        ///< full-quality result
  kDegraded,      ///< valid result, but a budget valve or cascade fired
  kInvalidInput,  ///< malformed frame/JSON/request or bad KISS2 machine
  kOverloaded,    ///< admission refused; retry after `retry_after_ms`
  kDraining,      ///< daemon is shutting down; retry against another one
  kNotFound,      ///< verify: no stored scheme under this key
  kInternal,      ///< unexpected server-side failure
};

const char* to_string(Code code);

/// Operations the daemon accepts.
///   protect — run (or serve from cache) the bounded-latency CED pipeline
///   verify  — re-prove a stored scheme against a fresh synthesis
///   sweep   — shared-extraction sweep over several latency bounds
///   health  — liveness/readiness probe (answered even while draining)
///   metrics — Prometheus text snapshot (also scrapable over HTTP)
struct Request {
  std::string op;          ///< protect | verify | sweep | health | metrics
  std::string id;          ///< client token, echoed verbatim in the response
  std::string tenant;      ///< fair-queueing key ("" = shared default lane)
  std::string kiss;        ///< KISS2 machine text (protect/verify/sweep)
  int latency = 2;
  std::vector<int> latencies;  ///< sweep only
  std::string solver = "lp";       ///< lp | greedy | exact
  std::string encoding = "binary"; ///< binary | gray | onehot | spread
  std::string semantics = "impl";  ///< impl | machine
  std::uint64_t seed = 0;          ///< 0 = library default
  double deadline_ms = 0;  ///< per-request budget; 0 = server default
};

/// Validates and extracts a request from a parsed JSON document. Unknown
/// keys are ignored (forward compatibility); wrong types and missing
/// required fields are kInvalidInput with a field-naming message.
Result<Request> parse_request(const Json& doc);

/// Serializes a request (client side).
std::string encode_request(const Request& req);

/// One latency level of a sweep response.
struct SweepEntry {
  int latency = 0;
  int q = 0;
  std::vector<std::uint64_t> parities;
  bool degraded = false;
};

struct Response {
  std::string id;
  Code code = Code::kOk;
  std::string error;        ///< human detail when code != kOk/kDegraded
  double retry_after_ms = 0;  ///< backoff hint (kOverloaded/kDraining)

  // protect / verify / sweep payload
  int latency = 0;
  int q = 0;
  std::vector<std::uint64_t> parities;
  std::vector<SweepEntry> sweep;
  bool cached = false;     ///< served from the artifact store, no pipeline
  bool deduped = false;    ///< coalesced onto an identical in-flight run
  bool degraded = false;   ///< resilience report had degradations
  double t_extract_s = 0, t_solve_s = 0;

  // verify payload
  std::uint64_t activations = 0, violations = 0;

  // health payload
  std::string state;       ///< "ready" | "draining"
  int workers = 0;
  int queued = 0;
  int active = 0;

  // metrics payload
  std::string prometheus;
};

std::string encode_response(const Response& resp);

/// Parses a response document (client side).
Result<Response> parse_response(const Json& doc);

/// Ready-made structured error response (shared by every rejection path so
/// even a half-parsed request gets a well-formed frame back).
Response error_response(Code code, std::string detail,
                        const std::string& id = "",
                        double retry_after_ms = 0);

}  // namespace ced::serve
