#include "serve/protocol.hpp"

#include <cmath>

#include "obs/json.hpp"

namespace ced::serve {

const char* to_string(Code code) {
  switch (code) {
    case Code::kOk: return "ok";
    case Code::kDegraded: return "degraded";
    case Code::kInvalidInput: return "invalid-input";
    case Code::kOverloaded: return "overloaded";
    case Code::kDraining: return "draining";
    case Code::kNotFound: return "not-found";
    case Code::kInternal: return "internal";
  }
  return "?";
}

namespace {

Status bad(const std::string& what) {
  return Status::invalid_input(Stage::kParse, what);
}

/// Integer extraction with range check (JSON numbers are doubles).
Result<std::int64_t> int_field(const Json& v, const char* name,
                               std::int64_t lo, std::int64_t hi) {
  const double d = v.num_or(NAN);
  if (!std::isfinite(d) || d != std::floor(d)) {
    return bad(std::string("field '") + name + "' must be an integer");
  }
  if (d < static_cast<double>(lo) || d > static_cast<double>(hi)) {
    return bad(std::string("field '") + name + "' out of range");
  }
  return static_cast<std::int64_t>(d);
}

void append_kv(std::string& out, const char* key, const std::string& value,
               bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":\"";
  out += obs::json_escape(value);
  out += '"';
}

void append_kv(std::string& out, const char* key, double value, bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  out += obs::json_number(value);
}

void append_kv_int(std::string& out, const char* key, std::int64_t value,
                   bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void append_kv(std::string& out, const char* key, bool value, bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  out += value ? "true" : "false";
}

void append_parities(std::string& out, const char* key,
                     const std::vector<std::uint64_t>& parities, bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":[";
  // Parity masks travel as hex strings: JSON numbers are doubles and lose
  // bits above 2^53, which would silently corrupt wide masks.
  for (std::size_t i = 0; i < parities.size(); ++i) {
    if (i != 0) out += ',';
    char buf[24];
    std::snprintf(buf, sizeof(buf), "\"0x%llx\"",
                  static_cast<unsigned long long>(parities[i]));
    out += buf;
  }
  out += ']';
}

Result<std::vector<std::uint64_t>> parse_parities(const Json& arr,
                                                  const char* name) {
  if (!arr.is_array()) {
    return bad(std::string("field '") + name + "' must be an array");
  }
  std::vector<std::uint64_t> out;
  out.reserve(arr.items().size());
  for (const Json& item : arr.items()) {
    const std::string s = item.str_or("");
    if (s.rfind("0x", 0) != 0 || s.size() < 3 || s.size() > 18) {
      return bad(std::string("field '") + name +
                 "' entries must be 0x-hex strings");
    }
    std::uint64_t v = 0;
    for (std::size_t i = 2; i < s.size(); ++i) {
      const char c = s[i];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
      else return bad(std::string("field '") + name + "' has a bad hex digit");
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace

Result<Request> parse_request(const Json& doc) {
  if (!doc.is_object()) {
    return bad("request must be a JSON object");
  }
  Request req;
  const Json* op = doc.get("op");
  if (op == nullptr || !op->is_string()) {
    return bad("missing required string field 'op'");
  }
  req.op = op->str_or("");
  if (req.op != "protect" && req.op != "verify" && req.op != "sweep" &&
      req.op != "health" && req.op != "metrics") {
    return bad("unknown op '" + req.op + "'");
  }
  if (const Json* v = doc.get("id")) {
    if (!v->is_string()) return bad("field 'id' must be a string");
    req.id = v->str_or("");
    if (req.id.size() > 256) return bad("field 'id' too long");
  }
  if (const Json* v = doc.get("tenant")) {
    if (!v->is_string()) return bad("field 'tenant' must be a string");
    req.tenant = v->str_or("");
    if (req.tenant.size() > 256) return bad("field 'tenant' too long");
  }
  if (const Json* v = doc.get("deadline_ms")) {
    const double d = v->num_or(NAN);
    if (!std::isfinite(d) || d < 0) {
      return bad("field 'deadline_ms' must be a non-negative number");
    }
    req.deadline_ms = d;
  }
  const bool needs_machine =
      req.op == "protect" || req.op == "verify" || req.op == "sweep";
  if (!needs_machine) return req;

  const Json* kiss = doc.get("kiss");
  if (kiss == nullptr || !kiss->is_string()) {
    return bad("op '" + req.op + "' requires string field 'kiss'");
  }
  req.kiss = kiss->str_or("");
  if (req.kiss.empty()) return bad("field 'kiss' must not be empty");

  if (const Json* v = doc.get("latency")) {
    auto n = int_field(*v, "latency", 1, 64);
    if (!n) return n.status();
    req.latency = static_cast<int>(*n);
  }
  if (const Json* v = doc.get("latencies")) {
    if (!v->is_array() || v->items().empty()) {
      return bad("field 'latencies' must be a non-empty array");
    }
    if (v->items().size() > 64) return bad("field 'latencies' too long");
    for (const Json& item : v->items()) {
      auto n = int_field(item, "latencies", 1, 64);
      if (!n) return n.status();
      req.latencies.push_back(static_cast<int>(*n));
    }
  }
  if (req.op == "sweep" && req.latencies.empty()) {
    return bad("op 'sweep' requires field 'latencies'");
  }
  if (const Json* v = doc.get("solver")) {
    req.solver = v->str_or("");
    if (req.solver != "lp" && req.solver != "greedy" && req.solver != "exact") {
      return bad("field 'solver' must be lp|greedy|exact");
    }
  }
  if (const Json* v = doc.get("encoding")) {
    req.encoding = v->str_or("");
    if (req.encoding != "binary" && req.encoding != "gray" &&
        req.encoding != "onehot" && req.encoding != "spread") {
      return bad("field 'encoding' must be binary|gray|onehot|spread");
    }
  }
  if (const Json* v = doc.get("semantics")) {
    req.semantics = v->str_or("");
    if (req.semantics != "impl" && req.semantics != "machine") {
      return bad("field 'semantics' must be impl|machine");
    }
  }
  if (const Json* v = doc.get("seed")) {
    auto n = int_field(*v, "seed", 0, (std::int64_t{1} << 53) - 1);
    if (!n) return n.status();
    req.seed = static_cast<std::uint64_t>(*n);
  }
  return req;
}

std::string encode_request(const Request& req) {
  std::string out = "{";
  bool first = true;
  append_kv(out, "op", req.op, &first);
  if (!req.id.empty()) append_kv(out, "id", req.id, &first);
  if (!req.tenant.empty()) append_kv(out, "tenant", req.tenant, &first);
  if (req.deadline_ms > 0) {
    append_kv(out, "deadline_ms", req.deadline_ms, &first);
  }
  if (!req.kiss.empty()) {
    append_kv(out, "kiss", req.kiss, &first);
    append_kv_int(out, "latency", req.latency, &first);
    if (!req.latencies.empty()) {
      if (!first) out += ',';
      first = false;
      out += "\"latencies\":[";
      for (std::size_t i = 0; i < req.latencies.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(req.latencies[i]);
      }
      out += ']';
    }
    append_kv(out, "solver", req.solver, &first);
    append_kv(out, "encoding", req.encoding, &first);
    append_kv(out, "semantics", req.semantics, &first);
    if (req.seed != 0) {
      append_kv_int(out, "seed", static_cast<std::int64_t>(req.seed), &first);
    }
  }
  out += '}';
  return out;
}

std::string encode_response(const Response& resp) {
  std::string out = "{";
  bool first = true;
  append_kv(out, "id", resp.id, &first);
  append_kv(out, "status", std::string(to_string(resp.code)), &first);
  if (!resp.error.empty()) append_kv(out, "error", resp.error, &first);
  if (resp.retry_after_ms > 0) {
    append_kv(out, "retry_after_ms", resp.retry_after_ms, &first);
  }
  if (resp.code == Code::kOk || resp.code == Code::kDegraded) {
    if (resp.latency > 0 || resp.q > 0 || !resp.parities.empty()) {
      append_kv_int(out, "latency", resp.latency, &first);
      append_kv_int(out, "q", resp.q, &first);
      append_parities(out, "parities", resp.parities, &first);
      append_kv(out, "cached", resp.cached, &first);
      append_kv(out, "deduped", resp.deduped, &first);
      append_kv(out, "degraded", resp.degraded, &first);
      append_kv(out, "t_extract_s", resp.t_extract_s, &first);
      append_kv(out, "t_solve_s", resp.t_solve_s, &first);
    }
    if (!resp.sweep.empty()) {
      if (!first) out += ',';
      first = false;
      out += "\"sweep\":[";
      for (std::size_t i = 0; i < resp.sweep.size(); ++i) {
        const SweepEntry& e = resp.sweep[i];
        if (i != 0) out += ',';
        out += "{\"latency\":" + std::to_string(e.latency) +
               ",\"q\":" + std::to_string(e.q) + ",";
        bool efirst = true;
        append_parities(out, "parities", e.parities, &efirst);
        append_kv(out, "degraded", e.degraded, &efirst);
        out += '}';
      }
      out += ']';
    }
    if (resp.activations > 0 || resp.violations > 0) {
      append_kv_int(out, "activations",
                    static_cast<std::int64_t>(resp.activations), &first);
      append_kv_int(out, "violations",
                    static_cast<std::int64_t>(resp.violations), &first);
    }
    if (!resp.state.empty()) {
      append_kv(out, "state", resp.state, &first);
      append_kv_int(out, "workers", resp.workers, &first);
      append_kv_int(out, "queued", resp.queued, &first);
      append_kv_int(out, "active", resp.active, &first);
    }
    if (!resp.prometheus.empty()) {
      append_kv(out, "prometheus", resp.prometheus, &first);
    }
  }
  out += '}';
  return out;
}

Result<Response> parse_response(const Json& doc) {
  if (!doc.is_object()) return bad("response must be a JSON object");
  Response resp;
  const Json* status = doc.get("status");
  if (status == nullptr || !status->is_string()) {
    return bad("missing required string field 'status'");
  }
  const std::string code = status->str_or("");
  if (code == "ok") resp.code = Code::kOk;
  else if (code == "degraded") resp.code = Code::kDegraded;
  else if (code == "invalid-input") resp.code = Code::kInvalidInput;
  else if (code == "overloaded") resp.code = Code::kOverloaded;
  else if (code == "draining") resp.code = Code::kDraining;
  else if (code == "not-found") resp.code = Code::kNotFound;
  else if (code == "internal") resp.code = Code::kInternal;
  else return bad("unknown status '" + code + "'");

  if (const Json* v = doc.get("id")) resp.id = v->str_or("");
  if (const Json* v = doc.get("error")) resp.error = v->str_or("");
  if (const Json* v = doc.get("retry_after_ms")) {
    resp.retry_after_ms = v->num_or(0);
  }
  if (const Json* v = doc.get("latency")) {
    resp.latency = static_cast<int>(v->num_or(0));
  }
  if (const Json* v = doc.get("q")) resp.q = static_cast<int>(v->num_or(0));
  if (const Json* v = doc.get("parities")) {
    auto p = parse_parities(*v, "parities");
    if (!p) return p.status();
    resp.parities = std::move(*p);
  }
  if (const Json* v = doc.get("sweep")) {
    if (!v->is_array()) return bad("field 'sweep' must be an array");
    for (const Json& item : v->items()) {
      SweepEntry e;
      e.latency = static_cast<int>(item.get("latency") != nullptr
                                       ? item.get("latency")->num_or(0)
                                       : 0);
      e.q = static_cast<int>(
          item.get("q") != nullptr ? item.get("q")->num_or(0) : 0);
      if (const Json* p = item.get("parities")) {
        auto masks = parse_parities(*p, "sweep.parities");
        if (!masks) return masks.status();
        e.parities = std::move(*masks);
      }
      if (const Json* d = item.get("degraded")) e.degraded = d->bool_or(false);
      resp.sweep.push_back(std::move(e));
    }
  }
  if (const Json* v = doc.get("cached")) resp.cached = v->bool_or(false);
  if (const Json* v = doc.get("deduped")) resp.deduped = v->bool_or(false);
  if (const Json* v = doc.get("degraded")) resp.degraded = v->bool_or(false);
  if (const Json* v = doc.get("t_extract_s")) resp.t_extract_s = v->num_or(0);
  if (const Json* v = doc.get("t_solve_s")) resp.t_solve_s = v->num_or(0);
  if (const Json* v = doc.get("activations")) {
    resp.activations = static_cast<std::uint64_t>(v->num_or(0));
  }
  if (const Json* v = doc.get("violations")) {
    resp.violations = static_cast<std::uint64_t>(v->num_or(0));
  }
  if (const Json* v = doc.get("state")) resp.state = v->str_or("");
  if (const Json* v = doc.get("workers")) {
    resp.workers = static_cast<int>(v->num_or(0));
  }
  if (const Json* v = doc.get("queued")) {
    resp.queued = static_cast<int>(v->num_or(0));
  }
  if (const Json* v = doc.get("active")) {
    resp.active = static_cast<int>(v->num_or(0));
  }
  if (const Json* v = doc.get("prometheus")) resp.prometheus = v->str_or("");
  return resp;
}

Response error_response(Code code, std::string detail, const std::string& id,
                        double retry_after_ms) {
  Response resp;
  resp.id = id;
  resp.code = code;
  resp.error = std::move(detail);
  resp.retry_after_ms = retry_after_ms;
  return resp;
}

}  // namespace ced::serve
