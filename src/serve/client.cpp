#include "serve/client.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ced::serve {

Client::Client(ClientOptions opts)
    : opts_(std::move(opts)), retry_(opts_.retry, opts_.seed) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::connect() {
  if (fd_ >= 0) return Status::make_ok();
  int fd = -1;
  if (!opts_.unix_socket.empty()) {
    sockaddr_un addr{};
    if (opts_.unix_socket.size() >= sizeof(addr.sun_path)) {
      return Status::invalid_input(Stage::kParse, "unix socket path too long");
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::internal(Stage::kParse,
                              std::string("socket: ") + std::strerror(errno));
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Status st = Status::internal(
          Stage::kParse, "connect " + opts_.unix_socket + ": " +
                             std::strerror(errno));
      ::close(fd);
      return st;
    }
  } else if (opts_.tcp_port >= 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::internal(Stage::kParse,
                              std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Status st = Status::internal(
          Stage::kParse, "connect 127.0.0.1:" + std::to_string(opts_.tcp_port) +
                             ": " + std::strerror(errno));
      ::close(fd);
      return st;
    }
  } else {
    return Status::invalid_input(Stage::kParse,
                                 "client has no endpoint configured");
  }
  fd_ = fd;
  return Status::make_ok();
}

Result<Response> Client::call_once(const Request& req) {
  const Status conn = connect();
  if (!conn.ok()) return conn;
  const Status sent = write_frame(fd_, encode_request(req));
  if (!sent.ok()) {
    disconnect();
    return sent;
  }
  std::string payload;
  const FrameStatus fs = read_frame(fd_, payload, opts_.max_frame_bytes);
  if (fs != FrameStatus::kOk) {
    disconnect();
    return Status{StatusCode::kTruncated, Stage::kParse,
                  fs == FrameStatus::kClosed
                      ? "connection closed before the response frame"
                      : "torn response frame"};
  }
  auto doc = Json::parse(payload);
  if (!doc) return doc.status();
  return parse_response(*doc);
}

Result<Response> Client::call(const Request& req) {
  const auto sleep_ms = [&](double ms) {
    if (ms <= 0) return;
    if (opts_.sleep) {
      opts_.sleep(ms);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    }
  };
  Result<Response> last =
      Status::internal(Stage::kParse, "retry budget allowed no attempts");
  for (;;) {
    last = call_once(req);
    double hint = 0;
    if (last) {
      const Code code = last->code;
      if (code != Code::kOverloaded && code != Code::kDraining) return last;
      hint = last->retry_after_ms;  // server pushback: retry with its hint
    }
    const double delay =
        hint > 0 ? retry_.next_delay_ms(hint) : retry_.next_delay_ms();
    if (delay < 0) return last;  // policy exhausted; surface the last word
    sleep_ms(delay);
  }
}

}  // namespace ced::serve
