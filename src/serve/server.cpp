#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/digest.hpp"
#include "core/run.hpp"
#include "core/verify.hpp"
#include "kiss/kiss.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace ced::serve {

namespace {

using namespace std::chrono_literals;

core::SolverKind solver_kind(const std::string& s) {
  if (s == "greedy") return core::SolverKind::kGreedy;
  if (s == "exact") return core::SolverKind::kExact;
  return core::SolverKind::kLpRounding;
}

const char* solver_tag(core::SolverKind solver) {
  switch (solver) {
    case core::SolverKind::kGreedy: return "greedy";
    case core::SolverKind::kExact: return "exact";
    case core::SolverKind::kLpRounding: break;
  }
  return "lp";
}

fsm::EncodingKind encoding_kind(const std::string& s) {
  if (s == "gray") return fsm::EncodingKind::kGray;
  if (s == "onehot") return fsm::EncodingKind::kOneHot;
  if (s == "spread") return fsm::EncodingKind::kSpread;
  return fsm::EncodingKind::kBinary;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Chaos hook: a delegating archive that sleeps per persisted checkpoint
/// shard, stretching cold extraction so the harness can reliably kill the
/// daemon mid-request on machines of any size.
class DelayingArchive final : public core::ExtractArchive {
 public:
  DelayingArchive(core::ExtractArchive& inner, int delay_ms)
      : inner_(inner), delay_ms_(delay_ms) {}

  std::vector<core::DetectabilityTable> load_tables(
      const std::string& key) override {
    return inner_.load_tables(key);
  }
  void store_tables(
      const std::string& key,
      const std::vector<core::DetectabilityTable>& tables) override {
    inner_.store_tables(key, tables);
  }
  bool load_shard(const std::string& key, std::uint32_t shard,
                  std::uint32_t num_shards,
                  core::ExtractShard& out) override {
    return inner_.load_shard(key, shard, num_shards, out);
  }
  void store_shard(const std::string& key,
                   const core::ExtractShard& shard) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    inner_.store_shard(key, shard);
  }
  void drop_shards(const std::string& key) override {
    inner_.drop_shards(key);
  }
  std::vector<std::string> drain_events() override {
    return inner_.drain_events();
  }

 private:
  core::ExtractArchive& inner_;
  int delay_ms_;
};

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  opts_.workers = std::max(1, opts_.workers);
  opts_.queue_depth = std::max(1, opts_.queue_depth);
  opts_.threads_per_request = std::max(1, opts_.threads_per_request);
  registry_.define_histogram("ced_serve_request_seconds",
                             {0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0});
  if (!opts_.store_dir.empty()) {
    store_ = std::make_unique<storage::ArtifactStore>(opts_.store_dir);
    store_->set_sinks(obs::Sinks{nullptr, &registry_, 0});
  }
}

Server::~Server() {
  if (running()) drain();
}

// ----------------------------------------------------------- listeners

namespace {

int make_unix_listener(const std::string& path, Status& st) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    st = Status::invalid_input(Stage::kParse,
                               "unix socket path too long: " + path);
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    st = Status::internal(Stage::kParse,
                          std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  ::unlink(path.c_str());  // daemon owns the path; stale files are replaced
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    st = Status::internal(Stage::kParse, "bind/listen on " + path + ": " +
                                             std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

int make_tcp_listener(int port, int& resolved_port, Status& st) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    st = Status::internal(Stage::kParse,
                          std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    st = Status::internal(Stage::kParse,
                          "bind/listen on 127.0.0.1:" + std::to_string(port) +
                              ": " + std::strerror(errno));
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    resolved_port = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace

Status Server::bind_listeners() {
  Status st = Status::make_ok();
  if (!opts_.unix_socket.empty()) {
    const int fd = make_unix_listener(opts_.unix_socket, st);
    if (fd < 0) return st;
    listen_fds_.push_back(fd);
  }
  if (opts_.tcp_port >= 0) {
    const int fd = make_tcp_listener(opts_.tcp_port, resolved_tcp_port_, st);
    if (fd < 0) return st;
    listen_fds_.push_back(fd);
  }
  if (listen_fds_.empty()) {
    return Status::invalid_input(
        Stage::kParse, "no listener configured (need unix_socket or tcp_port)");
  }
  if (opts_.metrics_port >= 0) {
    metrics_fd_ =
        make_tcp_listener(opts_.metrics_port, resolved_metrics_port_, st);
    if (metrics_fd_ < 0) return st;
  }
  return Status::make_ok();
}

Status Server::start() {
  if (running()) {
    return Status::invalid_input(Stage::kParse, "server already started");
  }
  Status st = bind_listeners();
  if (!st.ok()) return st;
  if (::pipe(wake_pipe_) != 0) {
    return Status::internal(Stage::kParse,
                            std::string("pipe: ") + std::strerror(errno));
  }
  running_.store(true, std::memory_order_release);
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
  if (metrics_fd_ >= 0) {
    metrics_thread_ = std::thread([this] { metrics_http_loop(); });
  }
  for (int w = 0; w < opts_.workers; ++w) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
  return Status::make_ok();
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // drain woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener closed under us
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (draining()) {
      ::close(fd);
      continue;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { conn_loop(fd); });
  }
}

void Server::metrics_http_loop() {
  for (;;) {
    pollfd fds[2] = {{metrics_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(metrics_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    // One short-lived scrape per connection, handled inline: read the
    // request head (bounded, 2s cap), answer, close.
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string head;
    char buf[1024];
    while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos) {
      const ::ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
      if (r <= 0) break;
      head.append(buf, static_cast<std::size_t>(r));
    }
    std::string body, status_line = "HTTP/1.1 200 OK";
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    if (head.rfind("GET /metrics", 0) == 0) {
      body = obs::prometheus_text(registry_.snapshot());
    } else if (head.rfind("GET /healthz", 0) == 0) {
      if (draining()) {
        status_line = "HTTP/1.1 503 Service Unavailable";
        body = "draining\n";
      } else {
        body = "ok\n";
      }
    } else {
      status_line = "HTTP/1.1 404 Not Found";
      body = "not found\n";
    }
    std::string resp = status_line + "\r\nContent-Type: " + content_type +
                       "\r\nContent-Length: " + std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n" + body;
    std::size_t sent = 0;
    while (sent < resp.size()) {
#ifdef MSG_NOSIGNAL
      const ::ssize_t r =
          ::send(fd, resp.data() + sent, resp.size() - sent, MSG_NOSIGNAL);
#else
      const ::ssize_t r = ::send(fd, resp.data() + sent, resp.size() - sent, 0);
#endif
      if (r <= 0) break;
      sent += static_cast<std::size_t>(r);
    }
    ::close(fd);
  }
}

void Server::conn_loop(int fd) {
  std::string payload;
  for (;;) {
    const FrameStatus fs = read_frame(fd, payload, opts_.max_frame_bytes);
    if (fs == FrameStatus::kClosed) break;
    if (fs == FrameStatus::kTorn) {
      registry_.add("ced_serve_torn_frames_total");
      break;
    }
    if (fs == FrameStatus::kTooLarge) {
      // The stream is no longer frame-aligned: answer once, then close.
      registry_.add("ced_serve_invalid_frames_total");
      write_frame(fd, encode_response(error_response(
                          Code::kInvalidInput,
                          "frame length prefix exceeds limit (" +
                              std::to_string(opts_.max_frame_bytes) +
                              " bytes) or is zero")));
      break;
    }
    Response resp;
    auto doc = Json::parse(payload);
    if (!doc) {
      registry_.add("ced_serve_invalid_frames_total");
      resp = error_response(Code::kInvalidInput, doc.status().message);
    } else {
      auto req = parse_request(*doc);
      if (!req) {
        registry_.add("ced_serve_invalid_frames_total");
        resp = error_response(Code::kInvalidInput, req.status().message);
      } else {
        resp = handle_request(std::move(*req));
      }
    }
    if (!write_frame(fd, encode_response(resp)).ok()) break;
  }
  {
    // Deregister before closing: once close() returns, accept() may hand
    // the same fd number to a new connection, and erasing afterwards
    // would drop *that* connection's registration — close_all_connections
    // would then never wake its handler and drain() would join forever.
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

void Server::close_all_connections() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const int fd : conn_fds_) {
    // Read side only: wakes a conn_loop blocked in read_frame (recv
    // returns 0) without cutting off a response it is still writing —
    // a drained request must receive its answer, not an EOF.
    ::shutdown(fd, SHUT_RD);
  }
}

// ------------------------------------------------------------ admission

Response Server::handle_request(Request req) {
  registry_.add("ced_serve_requests_total");
  const auto started = std::chrono::steady_clock::now();
  Response resp;
  if (req.op == "health") {
    resp = health_response();
    resp.id = req.id;
  } else if (req.op == "metrics") {
    resp.id = req.id;
    resp.code = Code::kOk;
    resp.prometheus = obs::prometheus_text(registry_.snapshot());
  } else {
    resp = admit_and_wait(std::move(req));
  }
  registry_.observe(
      "ced_serve_request_seconds",
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count());
  return resp;
}

std::string Server::dedup_key(const Request& req) const {
  // Identity = machine bytes + every result-shaping knob. The per-request
  // deadline is deliberately excluded (it shapes *timing*, not the ideal
  // answer); a shared result can still report degraded=true, which the
  // response surfaces to every waiter.
  Digest128 d;
  d.absorb(std::string_view(req.op));
  d.absorb(std::string_view(req.kiss));
  d.absorb(static_cast<std::uint64_t>(req.latency));
  d.absorb(static_cast<std::uint64_t>(req.latencies.size()));
  for (const int p : req.latencies) d.absorb(static_cast<std::uint64_t>(p));
  d.absorb(std::string_view(req.solver));
  d.absorb(std::string_view(req.encoding));
  d.absorb(std::string_view(req.semantics));
  d.absorb(req.seed);
  return d.hex();
}

double Server::overload_retry_hint_locked() const {
  // Rough service-time guess: the deeper the backlog per worker, the
  // longer the suggested backoff. Deliberately coarse — the client jitters
  // on top of it.
  return 100.0 * (1.0 + static_cast<double>(queued_) /
                            static_cast<double>(opts_.workers));
}

Response Server::admit_and_wait(Request req) {
  const std::string key = dedup_key(req);
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(adm_mu_);
    if (draining()) {
      registry_.add("ced_serve_drain_rejections_total");
      return error_response(Code::kDraining, "daemon is draining", req.id,
                            500.0);
    }
    auto it = in_flight_.find(key);
    if (it != in_flight_.end()) {
      flight = it->second;
      registry_.add("ced_serve_dedup_joins_total");
    } else if (queued_ >= opts_.queue_depth) {
      if (opts_.degrade_on_overload &&
          degraded_inline_ < 2 * opts_.workers) {
        ++degraded_inline_;
        lock.unlock();
        registry_.add("ced_serve_degraded_mode_total");
        Response resp = execute(req, /*degraded_mode=*/true);
        resp.id = req.id;
        std::lock_guard<std::mutex> relock(adm_mu_);
        --degraded_inline_;
        return resp;
      }
      registry_.add("ced_serve_overload_rejections_total");
      return error_response(
          Code::kOverloaded,
          "admission queue full (" + std::to_string(queued_) + " waiting)",
          req.id, overload_retry_hint_locked());
    } else {
      flight = std::make_shared<InFlight>();
      flight->req = req;
      flight->key = key;
      in_flight_[key] = flight;
      auto& lane = tenant_q_[req.tenant];
      if (lane.empty()) rr_.push_back(req.tenant);
      lane.push_back(flight);
      ++queued_;
      leader = true;
      work_cv_.notify_one();
    }
  }
  std::unique_lock<std::mutex> flock(flight->mu);
  flight->cv.wait(flock, [&] { return flight->done; });
  Response resp = flight->resp;
  resp.id = req.id;
  resp.deduped = !leader;
  return resp;
}

std::shared_ptr<Server::InFlight> Server::pop_next_job_locked() {
  // Fair scheduling: rotate through tenants with queued work, taking the
  // oldest request of each (FIFO within a tenant, round-robin across).
  while (!rr_.empty()) {
    const std::string tenant = rr_.front();
    rr_.pop_front();
    auto it = tenant_q_.find(tenant);
    if (it == tenant_q_.end() || it->second.empty()) continue;
    auto flight = it->second.front();
    it->second.pop_front();
    if (!it->second.empty()) {
      rr_.push_back(tenant);
    } else {
      tenant_q_.erase(it);
    }
    return flight;
  }
  return nullptr;
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<InFlight> flight;
    bool answer_draining = false;
    {
      std::unique_lock<std::mutex> lock(adm_mu_);
      work_cv_.wait(lock, [&] { return stop_workers_ || queued_ > 0; });
      flight = pop_next_job_locked();
      if (flight == nullptr) {
        if (stop_workers_) return;
        continue;
      }
      --queued_;
      answer_draining = draining();
      if (!answer_draining) ++active_;
    }
    if (answer_draining) {
      // Queued work at drain time is not started: the client retries
      // against a live instance instead of waiting out a doomed run.
      registry_.add("ced_serve_drain_rejections_total");
      finish(flight, error_response(Code::kDraining,
                                    "daemon drained before this request ran",
                                    flight->req.id, 500.0));
      continue;
    }
    Response resp = execute(flight->req, /*degraded_mode=*/false);
    {
      std::lock_guard<std::mutex> lock(adm_mu_);
      --active_;
    }
    finish(flight, std::move(resp));
  }
}

void Server::finish(const std::shared_ptr<InFlight>& flight, Response resp) {
  {
    std::lock_guard<std::mutex> lock(adm_mu_);
    auto it = in_flight_.find(flight->key);
    if (it != in_flight_.end() && it->second == flight) in_flight_.erase(it);
  }
  std::lock_guard<std::mutex> flock(flight->mu);
  flight->resp = std::move(resp);
  flight->done = true;
  flight->cv.notify_all();
}

// ------------------------------------------------------------ execution

Response Server::execute(const Request& req, bool degraded_mode) {
  if (opts_.chaos_job_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts_.chaos_job_delay_ms));
  }
  try {
    if (req.op == "verify") return run_verify(req);
    if (req.op == "sweep") return run_sweep(req, degraded_mode);
    return run_protect(req, degraded_mode);
  } catch (const std::exception& e) {
    registry_.add("ced_serve_internal_errors_total");
    return error_response(Code::kInternal, e.what(), req.id);
  }
}

namespace {

/// Parses the request's machine or reports kInvalidInput.
Result<fsm::Fsm> parse_machine(const Request& req) {
  const Result<kiss::Kiss2> parsed = kiss::try_parse(req.kiss);
  if (!parsed) return parsed.status();
  try {
    return fsm::Fsm::from_kiss(*parsed);
  } catch (const std::exception& e) {
    return Status::invalid_input(Stage::kParse,
                                 std::string("invalid machine: ") + e.what());
  }
}

Code code_for(const core::ResilienceReport& res) {
  switch (res.status.code) {
    case StatusCode::kInvalidInput: return Code::kInvalidInput;
    case StatusCode::kInternal:
    case StatusCode::kInfeasible: return Code::kInternal;
    default: break;
  }
  return res.degraded() ? Code::kDegraded : Code::kOk;
}

}  // namespace

Response Server::run_protect(const Request& req, bool degraded_mode) {
  auto machine = parse_machine(req);
  if (!machine) {
    return error_response(Code::kInvalidInput, machine.status().message,
                          req.id);
  }

  const core::SolverKind solver =
      degraded_mode ? core::SolverKind::kGreedy : solver_kind(req.solver);
  const fsm::EncodingKind encoding = encoding_kind(req.encoding);

  // Per-request wall budget: explicit deadline > server default; degraded
  // mode clamps hard so overflow traffic stays cheap.
  double wall_s = req.deadline_ms > 0 ? req.deadline_ms / 1000.0
                                      : opts_.default_deadline_s;
  if (degraded_mode) {
    wall_s = wall_s > 0 ? std::min(wall_s, opts_.degraded_budget_s)
                        : opts_.degraded_budget_s;
  }

  std::optional<storage::StoreArchive> archive;
  std::optional<DelayingArchive> delayed;
  core::ExtractArchive* arch = nullptr;
  if (store_ != nullptr && !degraded_mode) {
    archive.emplace(*store_);
    arch = &*archive;
    if (opts_.chaos_shard_delay_ms > 0) {
      delayed.emplace(*archive, opts_.chaos_shard_delay_ms);
      arch = &*delayed;
    }
  }

  obs::Tracer tracer;
  RunConfig::Builder builder;
  builder.latency(req.latency)
      .solver(solver)
      .encoding(encoding)
      .threads(opts_.threads_per_request)
      .observe(obs::Sinks{&tracer, &registry_, 0})
      .tune([&](core::PipelineOptions& o) {
        o.budget.wall_seconds = wall_s;
        o.budget.interrupt = &drain_trip_;
      });
  if (req.semantics == "machine") {
    builder.semantics(core::DiffSemantics::kMachineLevel);
  }
  if (req.seed != 0) builder.seed(req.seed);
  if (arch != nullptr) {
    builder.archive(arch)
        .resume(true)  // always pick up checkpoints left by a crashed run
        .checkpoint_shards(opts_.checkpoint_shards);
  }
  const Result<RunConfig> cfg = builder.build();
  if (!cfg) {
    return error_response(Code::kInvalidInput, cfg.status().message, req.id);
  }

  // Warm path: a scheme persisted under the extraction key means a prior
  // full-quality run already answered this exact question — serve it
  // without touching extraction or the solver.
  std::string key;
  if (store_ != nullptr && !degraded_mode) {
    const fsm::FsmCircuit circuit =
        fsm::synthesize_fsm(*machine, encoding, cfg->options().synth);
    const auto faults =
        sim::enumerate_stuck_at(circuit.netlist, cfg->options().faults);
    core::ExtractOptions ex = cfg->options().extract;
    ex.latency = req.latency;
    const int num_shards = core::resolve_checkpoint_shards(
        opts_.checkpoint_shards, faults.size());
    key = core::extraction_digest(circuit, faults, ex, num_shards);
    auto scheme = storage::load_scheme(
        *store_, storage::scheme_name(key, req.latency, solver_tag(solver)));
    if (scheme) {
      registry_.add("ced_serve_warm_hits_total");
      Response resp;
      resp.id = req.id;
      resp.code = Code::kOk;
      resp.latency = scheme->latency;
      resp.q = static_cast<int>(scheme->parities.size());
      resp.parities = scheme->parities;
      resp.cached = true;
      return resp;
    }
  }
  registry_.add(degraded_mode ? "ced_serve_degraded_runs_total"
                              : "ced_serve_cold_misses_total");

  const core::PipelineReport rep = ced::run_pipeline(*machine, *cfg);
  const core::ResilienceReport& res = rep.resilience;
  if (res.status.code == StatusCode::kInvalidInput ||
      res.status.code == StatusCode::kInternal ||
      res.status.code == StatusCode::kInfeasible) {
    return error_response(code_for(res), res.status.to_text(), req.id);
  }

  if (store_ != nullptr && !degraded_mode && !key.empty()) {
    // Mirror ced_cli: full-quality schemes become warm cache entries;
    // manifests are the audit record and are stored even for degraded
    // runs (a drain-tripped run documents exactly where it stopped).
    if (!res.degraded()) {
      storage::SchemeArtifact scheme;
      scheme.latency = rep.latency;
      scheme.parities = rep.parities;
      storage::store_scheme(
          *store_,
          storage::scheme_name(key, rep.latency, solver_tag(solver)), scheme);
    }
    storage::ManifestArtifact man;
    man.config_digest = cfg->digest();
    man.extraction_key = key;
    man.circuit = "serve:" + req.tenant;
    man.latency = rep.latency;
    man.threads = opts_.threads_per_request;
    man.parities = rep.parities;
    man.resilience = res;
    man.t_synth = rep.t_synth;
    man.t_extract = rep.t_extract;
    man.t_solve = rep.t_solve;
    man.t_ced = rep.t_ced;
    man.spans = tracer.snapshot();
    storage::store_manifest(
        *store_, storage::manifest_name(key, rep.latency, solver_tag(solver)),
        man);
  }

  Response resp;
  resp.id = req.id;
  resp.code = res.degraded() || degraded_mode ? Code::kDegraded : Code::kOk;
  resp.latency = rep.latency;
  resp.q = rep.num_trees;
  resp.parities = rep.parities;
  resp.degraded = res.degraded() || degraded_mode;
  resp.t_extract_s = rep.t_extract;
  resp.t_solve_s = rep.t_solve;
  return resp;
}

Response Server::run_sweep(const Request& req, bool degraded_mode) {
  auto machine = parse_machine(req);
  if (!machine) {
    return error_response(Code::kInvalidInput, machine.status().message,
                          req.id);
  }
  obs::Tracer tracer;
  double wall_s = req.deadline_ms > 0 ? req.deadline_ms / 1000.0
                                      : opts_.default_deadline_s;
  if (degraded_mode) {
    wall_s = wall_s > 0 ? std::min(wall_s, opts_.degraded_budget_s)
                        : opts_.degraded_budget_s;
  }
  RunConfig::Builder builder;
  builder
      .solver(degraded_mode ? core::SolverKind::kGreedy
                            : solver_kind(req.solver))
      .encoding(encoding_kind(req.encoding))
      .threads(opts_.threads_per_request)
      .observe(obs::Sinks{&tracer, &registry_, 0})
      .tune([&](core::PipelineOptions& o) {
        o.budget.wall_seconds = wall_s;
        o.budget.interrupt = &drain_trip_;
      });
  if (req.semantics == "machine") {
    builder.semantics(core::DiffSemantics::kMachineLevel);
  }
  if (req.seed != 0) builder.seed(req.seed);
  const Result<RunConfig> cfg = builder.build();
  if (!cfg) {
    return error_response(Code::kInvalidInput, cfg.status().message, req.id);
  }
  registry_.add("ced_serve_sweeps_total");
  const auto reports = ced::run_latency_sweep(*machine, req.latencies, *cfg);
  Response resp;
  resp.id = req.id;
  resp.code = Code::kOk;
  for (const core::PipelineReport& rep : reports) {
    if (rep.resilience.status.code == StatusCode::kInvalidInput) {
      return error_response(Code::kInvalidInput,
                            rep.resilience.status.to_text(), req.id);
    }
    SweepEntry e;
    e.latency = rep.latency;
    e.q = rep.num_trees;
    e.parities = rep.parities;
    e.degraded = rep.resilience.degraded() || degraded_mode;
    if (e.degraded) resp.code = Code::kDegraded;
    resp.sweep.push_back(std::move(e));
  }
  return resp;
}

Response Server::run_verify(const Request& req) {
  if (store_ == nullptr) {
    return error_response(Code::kInvalidInput,
                          "verify requires a daemon started with a store",
                          req.id);
  }
  auto machine = parse_machine(req);
  if (!machine) {
    return error_response(Code::kInvalidInput, machine.status().message,
                          req.id);
  }
  const fsm::EncodingKind encoding = encoding_kind(req.encoding);
  const fsm::FsmCircuit circuit = fsm::synthesize_fsm(*machine, encoding, {});
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);
  core::ExtractOptions ex;
  ex.latency = req.latency;
  if (req.semantics == "machine") {
    ex.semantics = core::DiffSemantics::kMachineLevel;
  }
  const int num_shards =
      core::resolve_checkpoint_shards(opts_.checkpoint_shards, faults.size());
  const std::string key =
      core::extraction_digest(circuit, faults, ex, num_shards);
  auto scheme = storage::load_scheme(
      *store_,
      storage::scheme_name(key, req.latency, solver_tag(solver_kind(req.solver))));
  if (!scheme) {
    return error_response(Code::kNotFound,
                          "no stored scheme for this machine/config: " +
                              scheme.status().message,
                          req.id);
  }
  const core::CedHardware hw =
      core::synthesize_ced(circuit, scheme->parities, {});
  const core::VerifyResult vr =
      core::verify_bounded_detection(circuit, hw, faults, scheme->latency);
  Response resp;
  resp.id = req.id;
  resp.code = vr.ok() ? Code::kOk : Code::kDegraded;
  resp.latency = scheme->latency;
  resp.q = static_cast<int>(scheme->parities.size());
  resp.parities = scheme->parities;
  resp.activations = vr.activations_checked;
  resp.violations = vr.violations;
  return resp;
}

Response Server::health_response() {
  Response resp;
  resp.code = Code::kOk;
  std::lock_guard<std::mutex> lock(adm_mu_);
  resp.state = draining() ? "draining" : "ready";
  resp.workers = opts_.workers;
  resp.queued = queued_;
  resp.active = active_;
  return resp;
}

// --------------------------------------------------------------- drain

void Server::drain() {
  if (!running() || drained_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);

  // Stop accepting: wake the accept loops, then close the listeners.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const auto r = ::write(wake_pipe_[1], &byte, 1);
  }
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  for (int& fd : listen_fds_) close_fd(fd);
  listen_fds_.clear();
  close_fd(metrics_fd_);
  if (!opts_.unix_socket.empty()) ::unlink(opts_.unix_socket.c_str());

  // Give in-flight work its grace period, then trip the interrupt valve
  // so whatever is still running checkpoints and returns truncated.
  const auto grace_end =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(0.0, opts_.drain_grace_s)));
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(adm_mu_);
      if (active_ == 0) break;
    }
    if (std::chrono::steady_clock::now() >= grace_end) {
      drain_trip_.store(true, std::memory_order_release);
      break;
    }
    std::this_thread::sleep_for(5ms);
  }

  // Workers: answer everything still queued with kDraining, then exit.
  {
    std::lock_guard<std::mutex> lock(adm_mu_);
    stop_workers_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : worker_threads_) t.join();
  worker_threads_.clear();

  // Connections: every flight has its response by now, but the conn
  // threads may still be writing them out. Shut down the read side so
  // idle connections unblock, let in-progress writes finish, then join.
  close_all_connections();
  std::vector<std::thread> conns;
  {
    // Join outside the lock: conn_loop re-takes conn_mu_ on its way out.
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) t.join();
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);

  if (store_ != nullptr) {
    // Manifests were flushed per job; surface any accumulated incidents
    // as metrics so the final scrape (or a post-mortem) sees them.
    const auto events = store_->drain_events();
    if (!events.empty()) {
      registry_.add("ced_serve_store_incidents_total", events.size());
    }
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace ced::serve
