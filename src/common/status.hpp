#pragma once

#include <string>
#include <utility>

namespace ced {

/// Machine-readable classification of how an operation ended. Every stage
/// of the pipeline reports one of these instead of throwing (or silently
/// breaking) when it runs out of budget or meets bad input, so oversized
/// instances degrade instead of killing a whole sweep.
enum class StatusCode {
  kOk = 0,       ///< completed fully
  kTruncated,    ///< budget exhausted; result is partial but honest
  kInfeasible,   ///< no solution exists within the stated constraints
  kInvalidInput, ///< malformed or out-of-contract input
  kInternal,     ///< unexpected failure (a bug or resource exhaustion)
};

/// Pipeline stage that produced a status (for diagnostics and reports).
enum class Stage {
  kNone = 0,
  kParse,
  kSynth,
  kExtract,
  kLp,
  kRounding,
  kGreedy,
  kExact,
  kCedSynth,
  kVerify,
  kPipeline,
  kStore,
};

inline const char* to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kTruncated: return "truncated";
    case StatusCode::kInfeasible: return "infeasible";
    case StatusCode::kInvalidInput: return "invalid-input";
    case StatusCode::kInternal: return "internal-error";
  }
  return "?";
}

inline const char* to_string(Stage s) {
  switch (s) {
    case Stage::kNone: return "none";
    case Stage::kParse: return "parse";
    case Stage::kSynth: return "synth";
    case Stage::kExtract: return "extract";
    case Stage::kLp: return "lp";
    case Stage::kRounding: return "rounding";
    case Stage::kGreedy: return "greedy";
    case Stage::kExact: return "exact";
    case Stage::kCedSynth: return "ced-synth";
    case Stage::kVerify: return "verify";
    case Stage::kPipeline: return "pipeline";
    case Stage::kStore: return "store";
  }
  return "?";
}

/// Error code + originating stage + human message. Statuses compose: a
/// degraded-but-successful run carries kTruncated, a crash-free rejection
/// of bad input carries kInvalidInput.
struct Status {
  StatusCode code = StatusCode::kOk;
  Stage stage = Stage::kNone;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }

  static Status make_ok() { return {}; }
  static Status truncated(Stage st, std::string msg) {
    return {StatusCode::kTruncated, st, std::move(msg)};
  }
  static Status infeasible(Stage st, std::string msg) {
    return {StatusCode::kInfeasible, st, std::move(msg)};
  }
  static Status invalid_input(Stage st, std::string msg) {
    return {StatusCode::kInvalidInput, st, std::move(msg)};
  }
  static Status internal(Stage st, std::string msg) {
    return {StatusCode::kInternal, st, std::move(msg)};
  }

  /// "stage: code: message" one-liner for logs and CLI stderr.
  std::string to_text() const {
    std::string out = to_string(stage);
    out += ": ";
    out += to_string(code);
    if (!message.empty()) {
      out += ": ";
      out += message;
    }
    return out;
  }
};

/// Value-or-status result. Deliberately small: either holds a T (status
/// ok or truncated — partial results are values too) or only a Status.
template <typename T>
class Result {
 public:
  Result(T value)  // NOLINT(google-explicit-constructor)
      : has_value_(true), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}  // NOLINT
  Result(T value, Status status)
      : has_value_(true), value_(std::move(value)), status_(std::move(status)) {}

  bool has_value() const { return has_value_; }
  explicit operator bool() const { return has_value_; }

  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T& operator*() { return value_; }
  const T& operator*() const { return value_; }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

 private:
  bool has_value_ = false;
  T value_{};
  Status status_{};
};

}  // namespace ced
