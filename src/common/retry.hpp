#pragma once

// Reusable retry policy: capped exponential backoff with decorrelated
// jitter, bounded by both an attempt count and a total-elapsed budget.
//
// The jitter is the "decorrelated" variant (AWS architecture blog):
//     next = min(cap, uniform(base, prev * 3))
// which spreads retries of many concurrent clients apart instead of
// re-synchronizing them the way plain exponential-with-full-jitter does
// after the first collision. The RNG is a small private splitmix64 so a
// fixed seed yields a reproducible delay sequence (tests pin it).
//
// Two consumers today: ced_client retries transient daemon failures
// (connect refused, kOverloaded with a retry-after hint, torn frames),
// and ArtifactStore::put retries transient filesystem write errors.
// Header-only; depends only on the standard library.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

namespace ced {

struct RetryPolicy {
  int max_attempts = 5;          ///< total tries, including the first
  double base_ms = 50.0;         ///< first-retry floor
  double cap_ms = 2000.0;        ///< per-delay ceiling
  double max_elapsed_ms = 30000.0;  ///< whole-operation budget (0 = none)

  static RetryPolicy none() { return {1, 0.0, 0.0, 0.0}; }
};

/// One operation's retry bookkeeping. Ask `next_delay_ms()` after each
/// failure: a non-negative value is how long to back off before the next
/// attempt; a negative value means the budget (attempts or elapsed time)
/// is exhausted and the failure is final.
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy, std::uint64_t seed = 1)
      : policy_(policy),
        rng_state_(seed | 1),
        prev_ms_(policy.base_ms),
        started_(std::chrono::steady_clock::now()) {}

  int attempts() const { return attempts_; }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - started_)
        .count();
  }

  double next_delay_ms() {
    ++attempts_;
    if (attempts_ >= policy_.max_attempts) return -1.0;
    if (policy_.max_elapsed_ms > 0.0 && elapsed_ms() >= policy_.max_elapsed_ms) {
      return -1.0;
    }
    const double lo = policy_.base_ms;
    const double hi = std::max(lo, prev_ms_ * 3.0);
    const double delay = std::min(policy_.cap_ms, lo + uniform() * (hi - lo));
    prev_ms_ = delay;
    return delay;
  }

  /// Server-directed override (an explicit retry-after hint wins over the
  /// computed jitter but still counts against both budgets).
  double next_delay_ms(double hint_ms) {
    const double computed = next_delay_ms();
    if (computed < 0.0) return computed;
    if (hint_ms > 0.0) {
      prev_ms_ = std::min(policy_.cap_ms, hint_ms);
      return prev_ms_;
    }
    return computed;
  }

 private:
  double uniform() {
    // splitmix64, mapped to [0, 1).
    rng_state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = rng_state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  RetryPolicy policy_;
  std::uint64_t rng_state_;
  double prev_ms_;
  int attempts_ = 0;
  std::chrono::steady_clock::time_point started_;
};

/// Runs `attempt` until it reports success, returns a non-retryable
/// failure, or the policy budget runs out. `attempt(attempt_index)` returns
/// true on success; `retryable()` classifies the failure; `sleep_ms` is
/// injectable so tests never actually wait. Returns true iff an attempt
/// succeeded.
inline bool retry_call(
    const RetryPolicy& policy, const std::function<bool(int)>& attempt,
    std::uint64_t seed = 1,
    const std::function<void(double)>& sleep_ms = [](double ms) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    }) {
  RetryState state(policy, seed);
  for (int i = 0;; ++i) {
    if (attempt(i)) return true;
    const double delay = state.next_delay_ms();
    if (delay < 0.0) return false;
    sleep_ms(delay);
  }
}

}  // namespace ced
