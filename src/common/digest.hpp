#pragma once

// Streaming 128-bit content hash for cache keys and config fingerprints
// (two decorrelated splitmix-style lanes; not cryptographic, just
// collision-resistant enough for content addressing). Shared by the
// extraction cache key (core/extract.cpp) and the run-manifest config
// digest (core/run.cpp) so both render the same 32-hex-char shape.

#include <cstdint>
#include <string>
#include <string_view>

namespace ced {

struct Digest128 {
  std::uint64_t a = 0x243f6a8885a308d3ull;
  std::uint64_t b = 0x13198a2e03707344ull;

  void absorb(std::uint64_t x) {
    a ^= x + 0x9e3779b97f4a7c15ull;
    a = (a ^ (a >> 30)) * 0xbf58476d1ce4e5b9ull;
    a = (a ^ (a >> 27)) * 0x94d049bb133111ebull;
    a ^= a >> 31;
    b += x ^ (a * 0xff51afd7ed558ccdull);
    b = (b ^ (b >> 33)) * 0xc4ceb9fe1a85ec53ull;
    b ^= b >> 29;
  }

  void absorb(double x) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(x));
    __builtin_memcpy(&bits, &x, sizeof(bits));
    absorb(bits);
  }

  void absorb(std::string_view s) {
    absorb(static_cast<std::uint64_t>(s.size()));
    std::uint64_t word = 0;
    int n = 0;
    for (const char c : s) {
      word = (word << 8) | static_cast<unsigned char>(c);
      if (++n == 8) {
        absorb(word);
        word = 0;
        n = 0;
      }
    }
    if (n != 0) absorb(word);
  }

  std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
      out[static_cast<std::size_t>(i)] = digits[(a >> (60 - 4 * i)) & 0xF];
      out[static_cast<std::size_t>(16 + i)] =
          digits[(b >> (60 - 4 * i)) & 0xF];
    }
    return out;
  }
};

}  // namespace ced
