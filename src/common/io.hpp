#pragma once

// Durable file I/O primitives shared by the artifact store and the tools:
// whole-file reads, crash-safe atomic writes (temp file + fsync + rename),
// and the CRC32 used for artifact integrity checking. Header-only so every
// layer can use it without a new library dependency.

#include <array>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include <fcntl.h>
#include <unistd.h>

#include "common/status.hpp"

namespace ced::io {

/// CRC32 (IEEE 802.3, polynomial 0xEDB88320, reflected), the checksum that
/// guards every artifact section. Table built once at first use.
inline std::uint32_t crc32(std::string_view data,
                           std::uint32_t seed = 0) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

/// Reads a whole file into a string. Missing/unreadable files yield a
/// classified status instead of an exception.
inline Result<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::invalid_input(Stage::kStore,
                                 "cannot open " + path + ": " +
                                     std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    return Status::internal(Stage::kStore, "read error on " + path);
  }
  return out;
}

/// Crash-safe whole-file write: the bytes land in `<path>.tmp.<pid>`, are
/// fsync'd, and the temp file is renamed over `path` (atomic on POSIX), so a
/// reader never observes a half-written artifact — it sees either the old
/// file or the new one. The containing directory is fsync'd afterwards so
/// the rename itself survives a power cut.
inline Status atomic_write_file(const std::string& path,
                                std::string_view bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::internal(Stage::kStore, "cannot create " + tmp + ": " +
                                               std::strerror(errno));
  }
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ::ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::internal(Stage::kStore, "write error on " + tmp + ": " +
                                                 std::strerror(err));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::internal(Stage::kStore,
                            "fsync failed on " + tmp + ": " +
                                std::strerror(err));
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::internal(Stage::kStore,
                            "close failed on " + tmp + ": " +
                                std::strerror(err));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::internal(Stage::kStore, "rename " + tmp + " -> " + path +
                                               " failed: " +
                                               std::strerror(err));
  }
  // Persist the rename: fsync the directory entry. Best-effort — some
  // filesystems reject O_RDONLY fsync on directories; the data itself is
  // already durable at this point.
  const std::string dir = [&] {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
  }();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::make_ok();
}

}  // namespace ced::io
