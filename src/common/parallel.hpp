#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace ced {

/// Resolves a requested worker count to a concrete one:
///   requested >= 1  ->  exactly that many workers (1 = fully serial)
///   requested <= 0  ->  the CED_THREADS environment variable if set and
///                       positive, otherwise std::thread::hardware_concurrency
/// The result is always >= 1, so callers can divide by it unconditionally.
inline int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("CED_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

/// Runs fn(index) for every index in [0, n), distributed over `threads`
/// workers. Indices are claimed dynamically (atomic counter), so uneven
/// per-item cost balances itself; callers that need determinism must make
/// fn(i) depend only on i, never on claim order. With threads <= 1 (or a
/// single item) the loop runs inline on the calling thread — no pool, no
/// atomics — so serial behaviour and serial performance are preserved.
///
/// The first exception thrown by any fn(i) is rethrown on the calling
/// thread after every worker has joined; remaining items are abandoned.
template <typename Fn>
void parallel_for(int threads, std::size_t n, Fn&& fn) {
  threads = resolve_threads(threads);
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads),
                                             n));
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::atomic<bool> error_claimed{false};
  auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        if (!error_claimed.exchange(true, std::memory_order_acq_rel)) {
          error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) pool.emplace_back(body);
  body();
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

/// Contiguous block partition of [0, n) into `shards` ranges; shard i is
/// [bounds[i], bounds[i+1]). Deterministic in (n, shards): the parallel
/// extraction relies on this so a fixed thread count always produces the
/// same per-worker fault lists.
inline std::vector<std::size_t> shard_bounds(std::size_t n, int shards) {
  if (shards < 1) shards = 1;
  std::vector<std::size_t> bounds(static_cast<std::size_t>(shards) + 1, 0);
  for (int i = 0; i <= shards; ++i) {
    bounds[static_cast<std::size_t>(i)] =
        n * static_cast<std::size_t>(i) / static_cast<std::size_t>(shards);
  }
  return bounds;
}

/// Runs fn(shard, begin, end) for every nonempty shard of the contiguous
/// block partition of [0, n), one worker per shard, concurrently. Exception
/// semantics match parallel_for.
template <typename Fn>
void parallel_shards(int threads, std::size_t n, Fn&& fn) {
  const int shards = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(resolve_threads(threads)),
                            n == 0 ? 1 : n));
  const auto bounds = shard_bounds(n, shards);
  parallel_for(shards, static_cast<std::size_t>(shards), [&](std::size_t s) {
    const std::size_t begin = bounds[s];
    const std::size_t end = bounds[s + 1];
    if (begin < end) fn(static_cast<int>(s), begin, end);
  });
}

}  // namespace ced
