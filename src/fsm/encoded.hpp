#pragma once

#include <vector>

#include "fsm/encoding.hpp"
#include "fsm/fsm.hpp"
#include "logic/truth_table.hpp"

namespace ced::fsm {

/// The FSM after state assignment: one incompletely specified Boolean
/// function per next-state bit and per primary output, all over the same
/// variable space.
///
/// Variable order (combinational input space, `num_vars()` = r + s):
///   vars 0 .. r-1   : primary inputs,
///   vars r .. r+s-1 : present-state bits.
/// Assignment packing: `assignment = input | (state_code << r)`.
///
/// Unspecified (state, input) pairs, output '-' positions, and unused state
/// codes are don't-cares.
struct EncodedFsm {
  int num_inputs = 0;      ///< r
  int num_state_bits = 0;  ///< s
  int num_outputs = 0;     ///< o = n - s
  std::uint64_t reset_code = 0;  ///< encoded reset state
  StateEncoding encoding;
  std::vector<logic::SopSpec> next_state;  ///< s specs
  std::vector<logic::SopSpec> outputs;     ///< o specs

  int num_vars() const { return num_inputs + num_state_bits; }
  /// Total observable bits n = s + o (next-state bits then outputs).
  int num_observable() const { return num_state_bits + num_outputs; }

  std::uint64_t pack(std::uint64_t input, std::uint64_t state_code) const {
    return input | (state_code << num_inputs);
  }
};

/// Encodes `f` under the given state assignment, expanding every STG edge
/// into minterms of the combinational input space. Throws if r + s exceeds
/// the truth-table limit.
EncodedFsm encode_fsm(const Fsm& f, EncodingKind kind);
EncodedFsm encode_fsm(const Fsm& f, const StateEncoding& enc);

}  // namespace ced::fsm
