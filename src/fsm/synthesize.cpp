#include "fsm/synthesize.hpp"

#include "logic/factor.hpp"
#include "logic/opt.hpp"

namespace ced::fsm {
namespace {

logic::Cover run_minimizer(const logic::SopSpec& spec, MinimizerKind kind) {
  switch (kind) {
    case MinimizerKind::kEspresso:
      return logic::minimize_espresso(spec);
    case MinimizerKind::kExact:
      return logic::minimize_exact(spec);
    case MinimizerKind::kNone:
      return logic::cover_from_on_set(spec);
  }
  return logic::Cover(spec.num_vars);
}

}  // namespace

FsmCircuit synthesize_fsm(const EncodedFsm& enc, const FsmSynthOptions& opts) {
  FsmCircuit c;
  c.enc = enc;

  std::vector<std::uint32_t> var_nets;
  for (int i = 0; i < enc.num_inputs; ++i) {
    var_nets.push_back(c.netlist.add_input("in" + std::to_string(i)));
  }
  for (int i = 0; i < enc.num_state_bits; ++i) {
    var_nets.push_back(c.netlist.add_input("st" + std::to_string(i)));
  }

  logic::SynthContext ctx(c.netlist, opts.synth);
  auto emit = [&](logic::Cover cover, const std::string& name) {
    std::uint32_t net;
    if (opts.factor) {
      net = logic::synthesize_factor(ctx, logic::factor_cover(cover),
                                     var_nets);
    } else {
      net = ctx.sop(cover, var_nets);
    }
    c.netlist.mark_output(net, name);
    c.covers.push_back(std::move(cover));
  };
  for (int b = 0; b < enc.num_state_bits; ++b) {
    emit(run_minimizer(enc.next_state[b], opts.minimizer),
         "ns" + std::to_string(b));
  }
  for (int b = 0; b < enc.num_outputs; ++b) {
    emit(run_minimizer(enc.outputs[b], opts.minimizer),
         "out" + std::to_string(b));
  }
  if (opts.optimize) {
    c.netlist = logic::optimize_netlist(c.netlist);
  }
  return c;
}

FsmCircuit synthesize_fsm(const Fsm& f, EncodingKind kind,
                          const FsmSynthOptions& opts) {
  return synthesize_fsm(encode_fsm(f, kind), opts);
}

}  // namespace ced::fsm
