#include "fsm/analysis.hpp"

#include <algorithm>
#include <queue>

namespace ced::fsm {

std::vector<int> shortest_cycle_per_state(const Fsm& f) {
  const int n = f.num_states();
  // Successor sets (deduplicated).
  std::vector<std::vector<int>> succ(n);
  for (const auto& e : f.edges()) {
    succ[e.from].push_back(e.to);
  }
  for (auto& v : succ) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  std::vector<int> result(n, 0);
  for (int s = 0; s < n; ++s) {
    // BFS from every successor of s back to s.
    std::vector<int> dist(n, -1);
    std::queue<int> q;
    for (int t : succ[s]) {
      if (t == s) {
        result[s] = 1;  // self-loop
        break;
      }
      if (dist[t] < 0) {
        dist[t] = 1;
        q.push(t);
      }
    }
    if (result[s] == 1) continue;
    int best = 0;
    while (!q.empty() && best == 0) {
      const int u = q.front();
      q.pop();
      for (int t : succ[u]) {
        if (t == s) {
          best = dist[u] + 1;
          break;
        }
        if (dist[t] < 0) {
          dist[t] = dist[u] + 1;
          q.push(t);
        }
      }
    }
    result[s] = best;
  }
  return result;
}

StgStats analyze_stg(const Fsm& f) {
  StgStats st;
  st.num_states = f.num_states();
  st.num_edges = static_cast<int>(f.edges().size());
  std::vector<bool> has_self(f.num_states(), false);
  for (const auto& e : f.edges()) {
    if (e.from == e.to) {
      ++st.num_self_loops;
      has_self[e.from] = true;
    }
  }
  st.states_with_self_loop =
      static_cast<int>(std::count(has_self.begin(), has_self.end(), true));
  const auto reach = f.reachable_states();
  st.reachable_states =
      static_cast<int>(std::count(reach.begin(), reach.end(), true));
  int shortest = 0;
  for (int c : shortest_cycle_per_state(f)) {
    if (c > 0 && (shortest == 0 || c < shortest)) shortest = c;
  }
  st.shortest_cycle = shortest;
  return st;
}

}  // namespace ced::fsm
