#include "fsm/minimize_states.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "kiss/kiss.hpp"

namespace ced::fsm {
namespace {

/// Rebuilds a machine from a class assignment: one representative state
/// per class; `emit_all_members` controls whether only the representative's
/// edges (exact minimization) or every member's edges (compatible merging,
/// where members refine each other's don't-cares) are kept.
Fsm rebuild(const Fsm& f, const std::vector<int>& cls, int num_classes,
            bool emit_all_members) {
  std::vector<int> rep(static_cast<std::size_t>(num_classes), -1);
  for (int s = 0; s < f.num_states(); ++s) {
    if (rep[static_cast<std::size_t>(cls[static_cast<std::size_t>(s)])] < 0) {
      rep[static_cast<std::size_t>(cls[static_cast<std::size_t>(s)])] = s;
    }
  }

  kiss::Kiss2 k;
  k.num_inputs = f.num_inputs();
  k.num_outputs = f.num_outputs();
  k.reset_state =
      f.state_name(rep[static_cast<std::size_t>(
          cls[static_cast<std::size_t>(f.reset_state())])]);

  auto class_name = [&](int c) {
    return f.state_name(rep[static_cast<std::size_t>(c)]);
  };

  std::vector<kiss::Transition> seen;
  for (const auto& e : f.edges()) {
    const int from_cls = cls[static_cast<std::size_t>(e.from)];
    if (!emit_all_members &&
        e.from != rep[static_cast<std::size_t>(from_cls)]) {
      continue;
    }
    kiss::Transition t;
    t.input = e.input.to_string(f.num_inputs());
    t.current = class_name(from_cls);
    t.next = class_name(cls[static_cast<std::size_t>(e.to)]);
    t.output = e.output;
    k.transitions.push_back(std::move(t));
  }
  // Drop exact duplicate rows (members often share behaviour).
  std::sort(k.transitions.begin(), k.transitions.end(),
            [](const kiss::Transition& a, const kiss::Transition& b) {
              return std::tie(a.input, a.current, a.next, a.output) <
                     std::tie(b.input, b.current, b.next, b.output);
            });
  k.transitions.erase(
      std::unique(k.transitions.begin(), k.transitions.end(),
                  [](const kiss::Transition& a, const kiss::Transition& b) {
                    return std::tie(a.input, a.current, a.next, a.output) ==
                           std::tie(b.input, b.current, b.next, b.output);
                  }),
      k.transitions.end());
  return Fsm::from_kiss(k);
}

}  // namespace

StateMinimizeResult minimize_states(const Fsm& f) {
  const int n = f.num_states();
  const std::uint64_t inputs = std::uint64_t{1} << f.num_inputs();

  std::vector<int> cls(static_cast<std::size_t>(n), 0);
  int num_classes = 1;
  while (true) {
    // Signature: per input, (specified?, output pattern, next class).
    std::map<std::vector<std::pair<std::string, int>>, int> index;
    std::vector<int> next_cls(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      std::vector<std::pair<std::string, int>> sig;
      sig.reserve(inputs + 1);
      sig.emplace_back("", cls[static_cast<std::size_t>(s)]);
      for (std::uint64_t a = 0; a < inputs; ++a) {
        const auto b = f.behavior_for(s, a);
        if (!b) {
          sig.emplace_back("?", -1);
        } else {
          sig.emplace_back(b->output, cls[static_cast<std::size_t>(b->next)]);
        }
      }
      auto [it, inserted] = index.emplace(std::move(sig), index.size());
      (void)inserted;
      next_cls[static_cast<std::size_t>(s)] = static_cast<int>(it->second);
    }
    const int new_count = static_cast<int>(index.size());
    cls = std::move(next_cls);
    if (new_count == num_classes) break;
    num_classes = new_count;
  }

  StateMinimizeResult res{rebuild(f, cls, num_classes, false), cls, n,
                          num_classes};
  return res;
}

StateMinimizeResult merge_compatible_states(const Fsm& f) {
  const int n = f.num_states();
  const std::uint64_t inputs = std::uint64_t{1} << f.num_inputs();

  // ---- Pairwise incompatibility by iterative marking.
  auto outputs_conflict = [&](const std::string& a, const std::string& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if ((a[i] == '0' && b[i] == '1') || (a[i] == '1' && b[i] == '0')) {
        return true;
      }
    }
    return false;
  };

  std::vector<std::vector<bool>> incompat(
      static_cast<std::size_t>(n), std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      for (std::uint64_t a = 0; a < inputs && !incompat[u][v]; ++a) {
        const auto bu = f.behavior_for(u, a);
        const auto bv = f.behavior_for(v, a);
        if (bu && bv && outputs_conflict(bu->output, bv->output)) {
          incompat[u][v] = incompat[v][u] = true;
        }
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (incompat[u][v]) continue;
        for (std::uint64_t a = 0; a < inputs; ++a) {
          const auto bu = f.behavior_for(u, a);
          const auto bv = f.behavior_for(v, a);
          if (!bu || !bv) continue;
          const int nu = bu->next;
          const int nv = bv->next;
          if (incompat[static_cast<std::size_t>(nu)][static_cast<std::size_t>(nv)]) {
            incompat[u][v] = incompat[v][u] = true;
            changed = true;
            break;
          }
        }
      }
    }
  }

  // ---- Greedy merging with implication closure.
  std::vector<int> cls(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> members(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    cls[static_cast<std::size_t>(s)] = s;
    members[static_cast<std::size_t>(s)] = {s};
  }

  auto try_merge = [&](int u, int v) {
    std::vector<int> trial_cls = cls;
    auto trial_members = members;
    std::vector<std::pair<int, int>> work{{trial_cls[u], trial_cls[v]}};
    while (!work.empty()) {
      auto [c1, c2] = work.back();
      work.pop_back();
      if (c1 == c2) continue;
      for (int x : trial_members[static_cast<std::size_t>(c1)]) {
        for (int y : trial_members[static_cast<std::size_t>(c2)]) {
          if (incompat[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)]) {
            return false;
          }
        }
      }
      // Merge c2 into c1.
      for (int y : trial_members[static_cast<std::size_t>(c2)]) {
        trial_cls[static_cast<std::size_t>(y)] = c1;
      }
      auto& m1 = trial_members[static_cast<std::size_t>(c1)];
      auto& m2 = trial_members[static_cast<std::size_t>(c2)];
      m1.insert(m1.end(), m2.begin(), m2.end());
      m2.clear();
      // Implications: specified successors of one class must share a class.
      for (std::uint64_t a = 0; a < inputs; ++a) {
        int first = -1;
        for (int x : m1) {
          const auto b = f.behavior_for(x, a);
          if (!b) continue;
          const int nc = trial_cls[static_cast<std::size_t>(b->next)];
          if (first < 0) {
            first = nc;
          } else if (nc != first) {
            work.emplace_back(first, nc);
          }
        }
      }
    }
    cls = std::move(trial_cls);
    members = std::move(trial_members);
    return true;
  };

  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (cls[static_cast<std::size_t>(u)] == cls[static_cast<std::size_t>(v)]) {
        continue;
      }
      if (incompat[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)]) {
        continue;
      }
      try_merge(u, v);
    }
  }

  // Densify class ids.
  std::map<int, int> dense;
  for (int s = 0; s < n; ++s) {
    dense.emplace(cls[static_cast<std::size_t>(s)],
                  static_cast<int>(dense.size()));
  }
  std::vector<int> final_cls(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    final_cls[static_cast<std::size_t>(s)] =
        dense[cls[static_cast<std::size_t>(s)]];
  }

  StateMinimizeResult res{rebuild(f, final_cls, static_cast<int>(dense.size()),
                                  true),
                          final_cls, n, static_cast<int>(dense.size())};
  return res;
}

}  // namespace ced::fsm
