#include "fsm/fsm.hpp"

#include <stdexcept>
#include <unordered_map>

namespace ced::fsm {
namespace {

logic::Cube cube_from_pattern(const std::string& pattern) {
  logic::Cube c;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == '0') c = c.with_literal(static_cast<int>(i), false);
    if (pattern[i] == '1') c = c.with_literal(static_cast<int>(i), true);
  }
  return c;
}

std::string pattern_from_cube(const logic::Cube& c, int width) {
  return c.to_string(width);
}

/// Two specified output patterns conflict if some position has '0' vs '1'.
bool outputs_conflict(const std::string& a, const std::string& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] == '0' && b[i] == '1') || (a[i] == '1' && b[i] == '0')) {
      return true;
    }
  }
  return false;
}

}  // namespace

Fsm Fsm::from_kiss(const kiss::Kiss2& k) {
  Fsm f;
  f.num_inputs_ = k.num_inputs;
  f.num_outputs_ = k.num_outputs;
  if (k.num_inputs > 30) {
    throw std::runtime_error("Fsm: more than 30 primary inputs unsupported");
  }

  std::unordered_map<std::string, int> index;
  auto intern = [&](const std::string& name) {
    auto [it, inserted] = index.emplace(name, f.state_names_.size());
    if (inserted) f.state_names_.push_back(name);
    return it->second;
  };

  for (const auto& t : k.transitions) {
    Edge e;
    e.input = cube_from_pattern(t.input);
    e.from = intern(t.current);
    e.to = intern(t.next);
    e.output = t.output;
    f.edges_.push_back(std::move(e));
  }
  f.reset_state_ = intern(k.reset_state);

  f.out_edges_.resize(f.state_names_.size());
  for (std::size_t i = 0; i < f.edges_.size(); ++i) {
    f.out_edges_[f.edges_[i].from].push_back(static_cast<int>(i));
  }

  // Determinism check: overlapping edges from one state must agree.
  for (int s = 0; s < f.num_states(); ++s) {
    const auto& out = f.out_edges_[s];
    for (std::size_t a = 0; a < out.size(); ++a) {
      for (std::size_t b = a + 1; b < out.size(); ++b) {
        const Edge& ea = f.edges_[out[a]];
        const Edge& eb = f.edges_[out[b]];
        if (!ea.input.intersects(eb.input)) continue;
        if (ea.to != eb.to || outputs_conflict(ea.output, eb.output)) {
          throw std::runtime_error(
              "Fsm: nondeterministic transitions from state '" +
              f.state_names_[s] + "'");
        }
      }
    }
  }
  return f;
}

kiss::Kiss2 Fsm::to_kiss() const {
  kiss::Kiss2 k;
  k.num_inputs = num_inputs_;
  k.num_outputs = num_outputs_;
  k.reset_state = state_names_[reset_state_];
  for (const auto& e : edges_) {
    kiss::Transition t;
    t.input = pattern_from_cube(e.input, num_inputs_);
    t.current = state_names_[e.from];
    t.next = state_names_[e.to];
    t.output = e.output;
    k.transitions.push_back(std::move(t));
  }
  k.declared_states = num_states();
  k.declared_terms = static_cast<int>(edges_.size());
  return k;
}

std::optional<int> Fsm::edge_for(int state, std::uint64_t input) const {
  for (int ei : out_edges_[state]) {
    if (edges_[ei].input.contains(input)) return ei;
  }
  return std::nullopt;
}

std::optional<Fsm::Behavior> Fsm::behavior_for(int state,
                                               std::uint64_t input) const {
  std::optional<Behavior> b;
  for (int ei : out_edges_[state]) {
    const Edge& e = edges_[ei];
    if (!e.input.contains(input)) continue;
    if (!b) {
      b = Behavior{e.to, e.output};
      continue;
    }
    // Determinism guarantees equal next states and conflict-free outputs;
    // specified bits refine don't-cares.
    for (std::size_t i = 0; i < e.output.size(); ++i) {
      if (b->output[i] == '-') b->output[i] = e.output[i];
    }
  }
  return b;
}

int Fsm::state_index(const std::string& name) const {
  for (int s = 0; s < num_states(); ++s) {
    if (state_names_[static_cast<std::size_t>(s)] == name) return s;
  }
  return -1;
}

bool Fsm::is_complete() const {
  const std::uint64_t space = std::uint64_t{1} << num_inputs_;
  for (int s = 0; s < num_states(); ++s) {
    // Count minterms covered by this state's (deterministic) edges; overlap
    // makes a simple sum insufficient, so walk the space when it is small
    // and fall back to cube arithmetic otherwise.
    for (std::uint64_t a = 0; a < space; ++a) {
      if (!edge_for(s, a)) return false;
    }
  }
  return true;
}

std::vector<bool> Fsm::reachable_states() const {
  std::vector<bool> seen(num_states(), false);
  std::vector<int> stack{reset_state_};
  seen[reset_state_] = true;
  while (!stack.empty()) {
    const int s = stack.back();
    stack.pop_back();
    for (int ei : out_edges_[s]) {
      const int t = edges_[ei].to;
      if (!seen[t]) {
        seen[t] = true;
        stack.push_back(t);
      }
    }
  }
  return seen;
}

}  // namespace ced::fsm
