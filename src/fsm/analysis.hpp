#pragma once

#include <vector>

#include "fsm/fsm.hpp"

namespace ced::fsm {

/// Structural statistics of a state transition graph.
struct StgStats {
  int num_states = 0;
  int num_edges = 0;
  int num_self_loops = 0;        ///< edges with from == to
  int states_with_self_loop = 0;
  int reachable_states = 0;
  /// Length of the shortest directed cycle in the STG, or 0 if acyclic.
  int shortest_cycle = 0;
};

StgStats analyze_stg(const Fsm& f);

/// Shortest directed cycle through each state (BFS per state);
/// entry is 0 when the state lies on no cycle.
std::vector<int> shortest_cycle_per_state(const Fsm& f);

}  // namespace ced::fsm
