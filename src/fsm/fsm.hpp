#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kiss/kiss.hpp"
#include "logic/cube.hpp"

namespace ced::fsm {

/// One edge of the symbolic state transition graph. The input condition is
/// a cube over the primary inputs; the output pattern may contain
/// don't-cares ('-').
struct Edge {
  logic::Cube input;
  int from = 0;
  int to = 0;
  std::string output;
};

/// A symbolic (unencoded) Mealy FSM, as read from KISS2.
///
/// States are indexed densely; edge input conditions are cubes over the
/// `num_inputs()` primary inputs. The machine need not be completely
/// specified: (state, input) pairs matched by no edge are don't-cares that
/// synthesis is free to exploit.
class Fsm {
 public:
  /// Builds from a parsed KISS2 description; validates determinism
  /// (overlapping input cubes from one state must agree on next state and
  /// on all specified output bits). Throws std::runtime_error otherwise.
  static Fsm from_kiss(const kiss::Kiss2& k);

  /// Round-trips back to KISS2 (used by the writer and tests).
  kiss::Kiss2 to_kiss() const;

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }
  int num_states() const { return static_cast<int>(state_names_.size()); }
  int reset_state() const { return reset_state_; }
  const std::string& state_name(int s) const { return state_names_[s]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edges leaving state `s` (indices into edges()).
  const std::vector<int>& edges_from(int s) const { return out_edges_[s]; }

  /// First edge matching (state, concrete input), or nullopt if the pair is
  /// unspecified. Determinism makes "first" unambiguous.
  std::optional<int> edge_for(int state, std::uint64_t input) const;

  /// The merged behaviour of (state, concrete input): when several
  /// consistent edges overlap, their specified output bits are combined
  /// (an edge's '1'/'0' refines another's '-'). Returns nullopt when the
  /// pair is unspecified.
  struct Behavior {
    int next = 0;
    std::string output;
  };
  std::optional<Behavior> behavior_for(int state, std::uint64_t input) const;

  /// Index of a state by name, or -1.
  int state_index(const std::string& name) const;

  /// True if every state covers the full input space.
  bool is_complete() const;

  /// States reachable from the reset state (over specified edges).
  std::vector<bool> reachable_states() const;

 private:
  int num_inputs_ = 0;
  int num_outputs_ = 0;
  int reset_state_ = 0;
  std::vector<std::string> state_names_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_edges_;
};

}  // namespace ced::fsm
