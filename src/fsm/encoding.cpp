#include "fsm/encoding.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace ced::fsm {
namespace {

int bits_for(int n) {
  int b = 0;
  while ((1 << b) < n) ++b;
  return std::max(b, 1);
}

/// Greedy assignment: order states by STG degree, give each state the free
/// code maximizing the minimum Hamming distance to its already-assigned STG
/// neighbours (a light-weight stand-in for NOVA-style encoders).
StateEncoding encode_spread(const Fsm& f) {
  const int n = f.num_states();
  const int bits = bits_for(n);
  const int num_codes = 1 << bits;

  std::vector<std::vector<int>> adj(n);
  for (const auto& e : f.edges()) {
    if (e.from != e.to) {
      adj[e.from].push_back(e.to);
      adj[e.to].push_back(e.from);
    }
  }

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return adj[a].size() > adj[b].size();
  });

  StateEncoding enc;
  enc.num_bits = bits;
  enc.codes.assign(n, 0);
  std::vector<bool> used(num_codes, false);
  std::vector<bool> assigned(n, false);

  for (int s : order) {
    int best_code = -1;
    int best_score = -1;
    for (int c = 0; c < num_codes; ++c) {
      if (used[c]) continue;
      int score = 0;
      for (int t : adj[s]) {
        if (assigned[t]) {
          score += std::popcount(static_cast<unsigned>(
              c ^ static_cast<int>(enc.codes[t])));
        }
      }
      if (score > best_score) {
        best_score = score;
        best_code = c;
      }
    }
    enc.codes[s] = static_cast<std::uint64_t>(best_code);
    used[best_code] = true;
    assigned[s] = true;
  }
  return enc;
}

}  // namespace

int StateEncoding::state_of(std::uint64_t code) const {
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] == code) return static_cast<int>(i);
  }
  return -1;
}

StateEncoding encode_states(const Fsm& f, EncodingKind kind) {
  const int n = f.num_states();
  StateEncoding enc;
  switch (kind) {
    case EncodingKind::kBinary:
      enc.num_bits = bits_for(n);
      for (int i = 0; i < n; ++i) enc.codes.push_back(i);
      break;
    case EncodingKind::kGray:
      enc.num_bits = bits_for(n);
      for (int i = 0; i < n; ++i) {
        enc.codes.push_back(static_cast<std::uint64_t>(i ^ (i >> 1)));
      }
      break;
    case EncodingKind::kOneHot:
      if (n > 48) {
        throw std::invalid_argument("one-hot encoding too wide");
      }
      enc.num_bits = n;
      for (int i = 0; i < n; ++i) {
        enc.codes.push_back(std::uint64_t{1} << i);
      }
      break;
    case EncodingKind::kSpread:
      return encode_spread(f);
  }
  return enc;
}

}  // namespace ced::fsm
