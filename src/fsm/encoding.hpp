#pragma once

#include <cstdint>
#include <vector>

#include "fsm/fsm.hpp"

namespace ced::fsm {

/// State-assignment strategies.
enum class EncodingKind {
  kBinary,   ///< code(i) = i over ceil(log2 |S|) bits
  kGray,     ///< code(i) = i ^ (i >> 1)
  kOneHot,   ///< |S| bits, exactly one set
  kSpread,   ///< binary-width codes chosen to maximize pairwise Hamming
             ///< distance between adjacent states (greedy heuristic)
};

/// A concrete state assignment: `codes[state]` is its binary code over
/// `num_bits` bits.
struct StateEncoding {
  int num_bits = 0;
  std::vector<std::uint64_t> codes;

  /// Reverse lookup: state index with the given code, or -1.
  int state_of(std::uint64_t code) const;
};

/// Computes a state assignment for `f`.
StateEncoding encode_states(const Fsm& f, EncodingKind kind);

}  // namespace ced::fsm
