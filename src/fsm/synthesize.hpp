#pragma once

#include "fsm/encoded.hpp"
#include "logic/area.hpp"
#include "logic/minimize.hpp"
#include "logic/netlist.hpp"
#include "logic/synth.hpp"

namespace ced::fsm {

/// Which two-level minimizer to run on each next-state/output function.
enum class MinimizerKind {
  kEspresso,  ///< heuristic (default)
  kExact,     ///< Quine-McCluskey + branch-and-bound (small functions only)
  kNone,      ///< raw minterm covers (testing/baselines)
};

struct FsmSynthOptions {
  MinimizerKind minimizer = MinimizerKind::kEspresso;
  logic::SynthOptions synth;
  /// Algebraically factor each minimized cover before mapping (multilevel
  /// logic instead of flat SOP; much closer to SIS-mapped gate counts).
  bool factor = true;
  /// Run the netlist optimizer (constant folding, structural hashing,
  /// dead-logic sweep) after mapping.
  bool optimize = true;
};

/// The synthesized FSM: encoded specification plus the combinational
/// next-state/output netlist.
///
/// Netlist interface contract:
///   inputs  0..r-1   primary inputs, r..r+s-1 present-state bits;
///   outputs 0..s-1   next-state bits, s..s+o-1 primary outputs.
/// The netlist is the *reference implementation*: don't-care choices made
/// during minimization become the machine's defined behaviour, and the
/// fault-free netlist is the golden model for all error analysis.
struct FsmCircuit {
  EncodedFsm enc;
  logic::Netlist netlist;
  /// Minimized cover per observable bit (next-state bits then outputs);
  /// retained for reporting and for predictor reuse.
  std::vector<logic::Cover> covers;

  int r() const { return enc.num_inputs; }
  int s() const { return enc.num_state_bits; }
  int o() const { return enc.num_outputs; }
  /// Observable bits n = s + o.
  int n() const { return enc.num_observable(); }

  std::uint64_t state_mask() const {
    return (std::uint64_t{1} << s()) - 1;
  }

  /// Evaluates one transition. Returns the packed observable word:
  /// bits 0..s-1 = next state code, bits s..n-1 = outputs.
  std::uint64_t eval(std::uint64_t input, std::uint64_t state_code,
                     const logic::Injection* injection = nullptr) const {
    return netlist.eval_single(enc.pack(input, state_code), injection);
  }

  std::uint64_t next_state_of(std::uint64_t observable) const {
    return observable & state_mask();
  }
};

/// Minimizes every next-state/output function of `enc` and maps the result
/// onto a shared-literal two-level netlist.
FsmCircuit synthesize_fsm(const EncodedFsm& enc,
                          const FsmSynthOptions& opts = {});

/// Convenience: encode + synthesize in one step.
FsmCircuit synthesize_fsm(const Fsm& f, EncodingKind kind,
                          const FsmSynthOptions& opts = {});

}  // namespace ced::fsm
