#include "fsm/encoded.hpp"

#include <stdexcept>

namespace ced::fsm {

EncodedFsm encode_fsm(const Fsm& f, EncodingKind kind) {
  return encode_fsm(f, encode_states(f, kind));
}

EncodedFsm encode_fsm(const Fsm& f, const StateEncoding& enc) {
  EncodedFsm e;
  e.num_inputs = f.num_inputs();
  e.num_state_bits = enc.num_bits;
  e.num_outputs = f.num_outputs();
  e.reset_code = enc.codes[static_cast<std::size_t>(f.reset_state())];
  e.encoding = enc;

  const int vars = e.num_vars();
  if (vars > logic::TruthTable::kMaxVars) {
    throw std::runtime_error("encode_fsm: input+state space too large");
  }
  const std::size_t space = std::size_t{1} << vars;

  e.next_state.assign(e.num_state_bits, logic::SopSpec(vars));
  e.outputs.assign(e.num_outputs, logic::SopSpec(vars));

  // Track which assignments are touched by some STG edge; everything else
  // is a global don't-care.
  logic::BitVec specified(space);

  for (const auto& edge : f.edges()) {
    const std::uint64_t state_code = enc.codes[edge.from];
    const std::uint64_t next_code = enc.codes[edge.to];
    logic::for_each_minterm(edge.input, f.num_inputs(), [&](std::uint64_t in) {
      const std::uint64_t a = e.pack(in, state_code);
      specified.set(a);
      for (int b = 0; b < e.num_state_bits; ++b) {
        if ((next_code >> b) & 1) {
          e.next_state[b].on.set(a);
        }
      }
      for (int b = 0; b < e.num_outputs; ++b) {
        const char c = edge.output[static_cast<std::size_t>(b)];
        if (c == '1') {
          e.outputs[b].on.set(a);
        } else if (c == '-') {
          e.outputs[b].dc.set(a);
        }
      }
    });
  }

  const logic::BitVec unspecified = ~specified;
  for (auto& spec : e.next_state) spec.dc |= unspecified;
  for (auto& spec : e.outputs) {
    spec.dc |= unspecified;
    // An output bit may have been marked DC by one edge; if another edge
    // forces it ON for the same assignment, ON wins.
    spec.dc.subtract(spec.on);
  }
  return e;
}

}  // namespace ced::fsm
