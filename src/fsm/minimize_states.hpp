#pragma once

#include <vector>

#include "fsm/fsm.hpp"

namespace ced::fsm {

/// Result of a state-minimization pass.
struct StateMinimizeResult {
  Fsm machine;                 ///< the reduced machine
  std::vector<int> state_map;  ///< old state index -> new state index
  int states_before = 0;
  int states_after = 0;
};

/// Exact state minimization for the completely specified part of the
/// behaviour: partition refinement over concrete inputs (Moore/Hopcroft
/// style, adapted to Mealy machines). Unspecified responses are treated as
/// a distinct value, so two states merge only when their specified *and*
/// unspecified behaviour coincides — always safe, possibly conservative
/// for incompletely specified machines.
StateMinimizeResult minimize_states(const Fsm& f);

/// Heuristic reduction for incompletely specified machines: greedy merging
/// of compatible states with implication closure (a merge is committed
/// only if every state pair it transitively forces together is itself
/// compatible). The reduced machine implements the original: every
/// specified transition keeps its next-state class and its specified
/// output bits.
StateMinimizeResult merge_compatible_states(const Fsm& f);

}  // namespace ced::fsm
