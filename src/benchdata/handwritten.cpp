#include "benchdata/handwritten.hpp"

#include <stdexcept>

namespace ced::benchdata {
namespace {

// A Mealy serial "0101" sequence detector: input bit stream, output pulses
// on every completed 0101.
const char* kSeqDetect = R"(.i 1
.o 1
.r S0
0 S0 S1 0
1 S0 S0 0
0 S1 S1 0
1 S1 S2 0
0 S2 S3 0
1 S2 S0 0
0 S3 S1 0
1 S3 S2 1
.e
)";

// Traffic-light controller: inputs {car_waiting, timer_expired}; outputs
// one-hot {green, yellow, red} for the main road.
const char* kTraffic = R"(.i 2
.o 3
.r GREEN
0- GREEN GREEN 100
10 GREEN GREEN 100
11 GREEN YELLOW 100
-0 YELLOW YELLOW 010
-1 YELLOW RED 010
-0 RED RED 001
-1 RED GREEN 001
.e
)";

// Vending machine: accepts nickels (01) / dimes (10), vends at 15 cents,
// returns change when over. Inputs: {dime, nickel}; outputs {vend, change}.
const char* kVending = R"(.i 2
.o 2
.r C0
00 C0 C0 00
01 C0 C5 00
10 C0 C10 00
11 C0 C0 00
00 C5 C5 00
01 C5 C10 00
10 C5 C0 10
11 C5 C5 00
00 C10 C10 00
01 C10 C0 10
10 C10 C0 11
11 C10 C10 00
.e
)";

// Round-robin 2-client bus arbiter with requests r0 r1; grants g0 g1.
// Priority rotates after each grant.
const char* kArbiter = R"(.i 2
.o 2
.r A0
00 A0 A0 00
10 A0 G0A 10
01 A0 G1B 01
11 A0 G0A 10
00 A1 A1 00
10 A1 G0B 10
01 A1 G1A 01
11 A1 G1A 01
00 G0A A1 00
10 G0A G0A 10
01 G0A G1B 01
11 G0A G1B 01
00 G1A A0 00
01 G1A G1A 01
10 G1A G0B 10
11 G1A G0B 10
00 G0B A1 00
10 G0B G0A 10
01 G0B G1B 01
11 G0B G1B 01
00 G1B A0 00
01 G1B G1A 01
10 G1B G0B 10
11 G1B G0B 10
.e
)";

// Modulo-5 up/down counter with enable: inputs {en, dir}; outputs the
// count in 3-bit binary.
const char* kModulo5 = R"(.i 2
.o 3
.r N0
0- N0 N0 000
10 N0 N1 000
11 N0 N4 000
0- N1 N1 001
10 N1 N2 001
11 N1 N0 001
0- N2 N2 010
10 N2 N3 010
11 N2 N1 010
0- N3 N3 011
10 N3 N4 011
11 N3 N2 011
0- N4 N4 100
10 N4 N0 100
11 N4 N3 100
.e
)";

// Simple link-layer receiver: hunts for a sync pattern (11), then counts a
// 2-bit payload, checks even parity, and reports ok/err. Inputs {bit};
// outputs {ok, err, busy}.
const char* kLinkRx = R"(.i 1
.o 3
.r HUNT
0 HUNT HUNT 000
1 HUNT SYN1 000
0 SYN1 HUNT 000
1 SYN1 PAY0 001
0 PAY0 PAY1E 001
1 PAY0 PAY1O 001
0 PAY1E CHKE 001
1 PAY1E CHKO 001
0 PAY1O CHKO 001
1 PAY1O CHKE 001
0 CHKE HUNT 100
1 CHKE HUNT 010
0 CHKO HUNT 010
1 CHKO HUNT 100
.e
)";

const std::vector<NamedKiss>& table() {
  static const std::vector<NamedKiss> t = {
      {"seq_detect", kSeqDetect}, {"traffic", kTraffic},
      {"vending", kVending},      {"arbiter", kArbiter},
      {"modulo5", kModulo5},      {"link_rx", kLinkRx},
  };
  return t;
}

}  // namespace

const std::vector<NamedKiss>& handwritten_fsms() { return table(); }

const std::string& handwritten_kiss(const std::string& name) {
  for (const auto& e : table()) {
    if (e.name == name) return e.kiss;
  }
  throw std::invalid_argument("unknown hand-written FSM: " + name);
}

}  // namespace ced::benchdata
