#pragma once

#include <string>
#include <vector>

#include "benchdata/generator.hpp"
#include "fsm/fsm.hpp"

namespace ced::benchdata {

/// One entry of the experimental suite: the paper's Table 1 circuits.
struct SuiteEntry {
  std::string name;
  SyntheticSpec spec;  ///< profile-matched synthetic stand-in (see DESIGN.md)
};

/// Structural profiles of the 16 MCNC/LGSynth'91 FSMs of Table 1
/// (interface widths and state counts from the published benchmark set;
/// branching and self-loop knobs set per §5's structural observations:
/// small machines — donfile, s27, s386 — are self-loop heavy, large ones —
/// pma, s298, s1488 — are not).
const std::vector<SuiteEntry>& mcnc_suite();

/// Builds the FSM for one suite entry by name; throws if unknown.
fsm::Fsm suite_fsm(const std::string& name);

/// Subset of suite names small enough for quick tests.
std::vector<std::string> small_suite_names();

}  // namespace ced::benchdata
