#pragma once

#include <string>
#include <vector>

namespace ced::benchdata {

/// A named KISS2 source.
struct NamedKiss {
  std::string name;
  std::string kiss;
};

/// Genuine hand-written FSMs (KISS2 text) used by examples and tests:
/// small real controllers whose behaviour is easy to reason about.
const std::vector<NamedKiss>& handwritten_fsms();

/// Looks up one hand-written FSM by name; throws if unknown.
const std::string& handwritten_kiss(const std::string& name);

}  // namespace ced::benchdata
