#include "benchdata/suite.hpp"

#include <stdexcept>

namespace ced::benchdata {
namespace {

SyntheticSpec spec(const char* name, int in, int states, int out,
                   int branches, double self_loop, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = name;
  s.inputs = in;
  s.states = states;
  s.outputs = out;
  s.branches = branches;
  s.self_loop_bias = self_loop;
  s.output_dc_bias = 0.12;
  // Controller-style sparse outputs and localized successor sets keep the
  // synthesized two-level logic in the size regime of the SIS-mapped
  // originals (dense random STGs would be several times larger).
  s.output_one_bias = 0.22;
  s.targets_per_state = 4;
  s.seed = seed;
  return s;
}

const std::vector<SuiteEntry>& build() {
  // Interface widths / state counts follow the published LGSynth'91 FSM
  // benchmark profiles for the circuits named in Table 1.
  static const std::vector<SuiteEntry> suite = {
      {"cse", spec("cse", 7, 16, 7, 6, 0.25, 101)},
      {"donfile", spec("donfile", 2, 24, 1, 4, 0.50, 102)},
      {"dk14", spec("dk14", 3, 7, 5, 8, 0.15, 103)},
      {"dk16", spec("dk16", 2, 27, 3, 4, 0.45, 104)},
      {"ex1", spec("ex1", 9, 20, 19, 5, 0.20, 105)},
      {"keyb", spec("keyb", 7, 19, 2, 6, 0.25, 106)},
      {"pma", spec("pma", 8, 24, 8, 6, 0.08, 107)},
      {"sse", spec("sse", 7, 16, 7, 6, 0.25, 108)},
      {"styr", spec("styr", 9, 30, 10, 5, 0.15, 109)},
      {"s27", spec("s27", 4, 6, 1, 6, 0.50, 110)},
      {"s298", spec("s298", 3, 135, 6, 5, 0.06, 111)},
      {"s386", spec("s386", 7, 13, 7, 6, 0.45, 112)},
      {"s1488", spec("s1488", 8, 48, 19, 5, 0.08, 113)},
      {"tav", spec("tav", 4, 4, 4, 8, 0.20, 114)},
      {"tbk", spec("tbk", 6, 32, 3, 8, 0.15, 115)},
      {"tma", spec("tma", 7, 20, 6, 6, 0.20, 116)},
  };
  return suite;
}

}  // namespace

const std::vector<SuiteEntry>& mcnc_suite() { return build(); }

fsm::Fsm suite_fsm(const std::string& name) {
  for (const auto& e : build()) {
    if (e.name == name) return generate_fsm(e.spec);
  }
  throw std::invalid_argument("unknown suite circuit: " + name);
}

std::vector<std::string> small_suite_names() {
  return {"s27", "tav", "dk14", "donfile", "dk16", "s386"};
}

}  // namespace ced::benchdata
