#pragma once

#include <cstdint>
#include <string>

#include "fsm/fsm.hpp"

namespace ced::benchdata {

/// Recipe for one deterministic synthetic state-transition graph.
///
/// The generator emulates the structural profile of an MCNC benchmark FSM:
/// its interface widths, state count, branching factor, and self-loop
/// density (the property §5 of the paper ties to early latency saturation).
/// Input conditions per state are the leaves of a random binary decision
/// tree over the primary inputs, so every machine is deterministic and
/// completely specified by construction.
struct SyntheticSpec {
  std::string name;
  int inputs = 2;
  int states = 8;
  int outputs = 2;
  /// Target number of outgoing edges per state (clamped to 2^inputs).
  int branches = 4;
  /// Probability that an edge is a self-loop.
  double self_loop_bias = 0.2;
  /// Probability that an output bit of an edge is '-' (unspecified).
  double output_dc_bias = 0.1;
  /// Probability that a specified output bit is '1'. Real controller
  /// outputs are sparse (mostly 0 with a few asserted signals); dense
  /// random outputs would synthesize into unrealistically large logic.
  double output_one_bias = 0.5;
  /// Number of distinct non-self next states each state may use
  /// (0 = unlimited). Real STGs have strong target locality, which keeps
  /// the next-state functions small.
  int targets_per_state = 0;
  std::uint64_t seed = 1;
};

/// Builds the FSM for a recipe. Deterministic in the spec (including seed).
/// Every state is reachable from state 0 (a ring edge is forced), and the
/// machine is deterministic and complete.
fsm::Fsm generate_fsm(const SyntheticSpec& spec);

/// KISS2 text of the generated machine (round-trips through the parser).
std::string generate_kiss(const SyntheticSpec& spec);

}  // namespace ced::benchdata
