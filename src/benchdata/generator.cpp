#include "benchdata/generator.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/rng.hpp"
#include "kiss/kiss.hpp"

namespace ced::benchdata {
namespace {

using core::Rng;

/// Splits the full input space into `leaves` disjoint cubes via a random
/// binary decision tree.
void split(std::string cube, std::vector<int> free_vars, int leaves,
           Rng& rng, std::vector<std::string>& out) {
  if (leaves <= 1 || free_vars.empty()) {
    out.push_back(std::move(cube));
    return;
  }
  const std::size_t pick = rng.next() % free_vars.size();
  const int var = free_vars[pick];
  free_vars.erase(free_vars.begin() + static_cast<std::ptrdiff_t>(pick));

  const int left = leaves / 2;
  const int right = leaves - left;
  std::string c0 = cube;
  std::string c1 = cube;
  c0[static_cast<std::size_t>(var)] = '0';
  c1[static_cast<std::size_t>(var)] = '1';
  split(std::move(c0), free_vars, left, rng, out);
  split(std::move(c1), std::move(free_vars), right, rng, out);
}

}  // namespace

std::string generate_kiss(const SyntheticSpec& spec) {
  if (spec.inputs < 1 || spec.inputs > 16) {
    throw std::invalid_argument("generate_kiss: inputs out of range");
  }
  if (spec.states < 2 || spec.outputs < 1) {
    throw std::invalid_argument("generate_kiss: bad state/output count");
  }
  Rng rng(spec.seed ^ 0xbe9cbda7aULL);

  const int max_branches = spec.inputs >= 30 ? 1 << 30 : (1 << spec.inputs);
  const int branches = std::clamp(spec.branches, 1, max_branches);

  std::ostringstream out;
  out << ".i " << spec.inputs << "\n.o " << spec.outputs << "\n.r s0\n";

  for (int st = 0; st < spec.states; ++st) {
    std::vector<std::string> cubes;
    std::vector<int> vars(static_cast<std::size_t>(spec.inputs));
    for (int v = 0; v < spec.inputs; ++v) vars[static_cast<std::size_t>(v)] = v;
    split(std::string(static_cast<std::size_t>(spec.inputs), '-'), vars,
          branches, rng, cubes);

    // Target locality: this state's candidate successor pool.
    std::vector<int> pool;
    pool.push_back((st + 1) % spec.states);  // ring keeps s0-reachability
    if (spec.targets_per_state > 0) {
      while (static_cast<int>(pool.size()) < spec.targets_per_state) {
        pool.push_back(static_cast<int>(
            rng.next() % static_cast<std::uint64_t>(spec.states)));
      }
    }

    for (std::size_t e = 0; e < cubes.size(); ++e) {
      int target;
      if (e == 0) {
        // Forced ring edge keeps every state reachable from s0.
        target = (st + 1) % spec.states;
      } else if (rng.uniform() < spec.self_loop_bias) {
        target = st;
      } else if (spec.targets_per_state > 0) {
        target = pool[rng.next() % pool.size()];
      } else {
        target = static_cast<int>(rng.next() % static_cast<std::uint64_t>(
                                                   spec.states));
      }
      std::string output;
      for (int b = 0; b < spec.outputs; ++b) {
        if (rng.uniform() < spec.output_dc_bias) {
          output.push_back('-');
        } else {
          output.push_back(rng.uniform() < spec.output_one_bias ? '1' : '0');
        }
      }
      out << cubes[e] << " s" << st << " s" << target << ' ' << output
          << '\n';
    }
  }
  out << ".e\n";
  return out.str();
}

fsm::Fsm generate_fsm(const SyntheticSpec& spec) {
  return fsm::Fsm::from_kiss(kiss::parse(generate_kiss(spec)));
}

}  // namespace ced::benchdata
