// Bit-sliced cover kernel (core/coverkernel.hpp): randomized equivalence
// against the scalar popcount oracle, condensation soundness, and
// scalar-vs-kernel / thread-count result identity for every solver that
// routes through the kernel.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <set>
#include <vector>

#include "benchdata/suite.hpp"
#include "core/algorithm1.hpp"
#include "core/coverkernel.hpp"
#include "core/exact.hpp"
#include "core/extract.hpp"
#include "core/greedy.hpp"
#include "core/parity.hpp"
#include "core/pipeline.hpp"
#include "fsm/synthesize.hpp"
#include "sim/faults.hpp"

namespace ced::core {
namespace {

/// Random table in canonical form: each case is a sorted set of 1..max_len
/// distinct nonzero difference words over n bits.
DetectabilityTable random_table(std::mt19937_64& rng, int n, std::size_t m,
                                int max_len) {
  DetectabilityTable t;
  t.num_bits = n;
  t.latency = max_len;
  const std::uint64_t mask =
      n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  std::uniform_int_distribution<int> len_dist(1, max_len);
  while (t.cases.size() < m) {
    std::set<std::uint64_t> words;
    const int len = len_dist(rng);
    for (int k = 0; k < len; ++k) {
      const std::uint64_t w = rng() & mask;
      if (w != 0) words.insert(w);
    }
    if (words.empty()) continue;
    ErroneousCase ec;
    ec.length = static_cast<std::uint8_t>(words.size());
    std::size_t k = 0;
    for (const std::uint64_t w : words) ec.diff[k++] = w;
    t.cases.push_back(ec);
  }
  return t;
}

ParityFunc random_beta(std::mt19937_64& rng, int n) {
  const std::uint64_t mask =
      n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  const std::uint64_t beta = rng() & mask;
  return beta != 0 ? beta : 1;
}

std::size_t scalar_count(ParityFunc beta, const DetectabilityTable& t) {
  std::size_t c = 0;
  for (const ErroneousCase& ec : t.cases) c += covers(beta, ec) ? 1 : 0;
  return c;
}

DetectabilityTable suite_table(const std::string& name, int p) {
  const fsm::Fsm f = benchdata::suite_fsm(name);
  const fsm::FsmCircuit c =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = p;
  opts.threads = 1;
  return extract_cases(c, faults, opts);
}

// Sizes cross the 64-row word boundary and include the n = 64 full-mask
// edge; lengths span 1..kMaxLatency.
struct Shape {
  int n;
  std::size_t m;
  int max_len;
};
const Shape kShapes[] = {
    {4, 7, 1},   {12, 64, 2},        {33, 130, 3},
    {64, 1, 4},  {64, 200, kMaxLatency},
};

TEST(CoverKernel, MatchesScalarOnRandomTables) {
  std::mt19937_64 rng(1);
  for (const Shape& s : kShapes) {
    const DetectabilityTable t = random_table(rng, s.n, s.m, s.max_len);
    const CoverKernel kernel(t);
    ASSERT_EQ(kernel.num_rows(), t.cases.size());
    ASSERT_EQ(kernel.num_bits(), s.n);

    std::vector<ParityFunc> set;
    for (int i = 0; i < 16; ++i) {
      const ParityFunc beta = random_beta(rng, s.n);
      set.push_back(beta);
      EXPECT_EQ(kernel.coverage_count(beta), scalar_count(beta, t))
          << "n=" << s.n << " m=" << s.m << " beta=" << beta;
      std::vector<std::uint64_t> bitmap(kernel.num_words());
      kernel.covered_bitmap(beta, bitmap.data());
      for (std::size_t r = 0; r < t.cases.size(); ++r) {
        EXPECT_EQ((bitmap[r >> 6] >> (r & 63)) & 1,
                  covers(beta, t.cases[r]) ? 1u : 0u);
      }
      // Padding bits beyond num_rows stay zero.
      if (t.cases.size() % 64 != 0) {
        EXPECT_EQ(bitmap.back() >> (t.cases.size() % 64), 0u);
      }
    }
    // Set queries against the scalar module-level implementations.
    ScopedKernelMode scalar(KernelMode::kScalar);
    EXPECT_EQ(kernel.covers_all(set), covers_all(set, t));
    const auto unc = kernel.uncovered(set);
    EXPECT_EQ(unc, uncovered_cases(set, t));
    EXPECT_EQ(kernel.uncovered_count(set), unc.size());
  }
}

TEST(CoverKernel, SubsetKernelMatchesScalarAmong) {
  std::mt19937_64 rng(2);
  const DetectabilityTable t = random_table(rng, 20, 300, 3);
  // Random subset with duplicates, in random order.
  std::vector<std::uint32_t> rows;
  for (int i = 0; i < 90; ++i) {
    rows.push_back(static_cast<std::uint32_t>(rng() % t.cases.size()));
  }
  const CoverKernel kernel(t, rows);
  ASSERT_EQ(kernel.num_rows(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(kernel.global_row(static_cast<std::uint32_t>(r)), rows[r]);
  }
  for (int i = 0; i < 8; ++i) {
    std::vector<ParityFunc> set = {random_beta(rng, 20), random_beta(rng, 20)};
    std::vector<std::uint32_t> got;
    for (const std::uint32_t local : kernel.uncovered(set)) {
      got.push_back(rows[local]);
    }
    ScopedKernelMode scalar(KernelMode::kScalar);
    EXPECT_EQ(got, uncovered_among(set, t, rows));
  }
}

TEST(BetaCursor, FlipMatchesFreshEvaluation) {
  std::mt19937_64 rng(3);
  for (const Shape& s : kShapes) {
    const DetectabilityTable t = random_table(rng, s.n, s.m, s.max_len);
    const CoverKernel kernel(t);
    BetaCursor cur(kernel, 0);
    ParityFunc beta = 0;
    for (int step = 0; step < 200; ++step) {
      const int j = static_cast<int>(rng() % static_cast<unsigned>(s.n));
      cur.flip(j);
      beta ^= std::uint64_t{1} << j;
      ASSERT_EQ(cur.beta(), beta);
      ASSERT_EQ(cur.covered_count(), scalar_count(beta, t))
          << "n=" << s.n << " after flip " << step;
    }
  }
}

TEST(Condense, RemovedRowsAreDominatedByKeptRows) {
  std::mt19937_64 rng(4);
  // Low-entropy words so subset relations actually occur.
  const DetectabilityTable t = random_table(rng, 3, 400, kMaxLatency);
  const CondensedTable cond = condense_table(t);
  ASSERT_EQ(cond.kept_rows.size(), cond.table.cases.size());
  ASSERT_EQ(cond.removed + cond.table.cases.size(), t.cases.size());
  EXPECT_GT(cond.removed, 0u);  // with 7 possible words, dominance is certain

  // Back-map is consistent.
  for (std::size_t i = 0; i < cond.kept_rows.size(); ++i) {
    EXPECT_EQ(cond.table.cases[i], t.cases[cond.kept_rows[i]]);
  }
  // Every removed row strictly contains some kept row's word set.
  std::set<std::uint32_t> kept(cond.kept_rows.begin(), cond.kept_rows.end());
  auto words_of = [](const ErroneousCase& ec) {
    return std::set<std::uint64_t>(ec.diff.begin(), ec.diff.begin() + ec.length);
  };
  for (std::uint32_t r = 0; r < t.cases.size(); ++r) {
    if (kept.count(r)) continue;
    const auto big = words_of(t.cases[r]);
    bool dominated = false;
    for (const ErroneousCase& kc : cond.table.cases) {
      const auto small = words_of(kc);
      if (small.size() < big.size() &&
          std::includes(big.begin(), big.end(), small.begin(), small.end())) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated) << "removed row " << r << " has no kept subset row";
  }
}

TEST(Condense, CondensedCoverCoversFullTable) {
  std::mt19937_64 rng(5);
  for (const int n : {3, 5, 16}) {
    const DetectabilityTable t = random_table(rng, n, 500, kMaxLatency);
    const CondensedTable cond = condense_table(t);
    const auto sol = greedy_cover(cond.table);
    EXPECT_TRUE(covers_all(sol, cond.table));
    EXPECT_TRUE(covers_all(sol, t))
        << "n=" << n << ": condensed cover missed a full-table row";
  }
}

TEST(Condense, FinalQUnchangedOnBenchdata) {
  for (const char* name : {"s27", "tav", "donfile"}) {
    const DetectabilityTable t = suite_table(name, 2);
    int q[2];
    for (const bool condense : {false, true}) {
      PipelineOptions opts;
      opts.threads = 1;
      opts.condense = condense;
      Algorithm1Stats stats;
      ResilienceReport resilience;
      const auto sol = select_parities_resilient(t, opts, Deadline{}, &stats,
                                                 {}, resilience);
      EXPECT_TRUE(covers_all(sol, t));
      q[condense ? 1 : 0] = static_cast<int>(sol.size());
    }
    EXPECT_EQ(q[0], q[1]) << name << ": condensation changed the final q";
  }
}

TEST(KernelScalar, PruneRedundantIdentical) {
  std::mt19937_64 rng(6);
  const DetectabilityTable t = random_table(rng, 14, 600, 3);
  for (int trial = 0; trial < 10; ++trial) {
    // Deliberately redundant set: a full cover plus duplicates and extras.
    std::vector<ParityFunc> betas = greedy_cover(t);
    betas.push_back(betas.front());
    for (int i = 0; i < 4; ++i) betas.push_back(random_beta(rng, 14));
    std::shuffle(betas.begin(), betas.end(), rng);
    if (!covers_all(betas, t)) continue;

    std::vector<ParityFunc> pruned_bits, pruned_scalar;
    {
      ScopedKernelMode mode(KernelMode::kBitsliced);
      pruned_bits = prune_redundant(betas, t);
    }
    {
      ScopedKernelMode mode(KernelMode::kScalar);
      pruned_scalar = prune_redundant(betas, t);
    }
    EXPECT_EQ(pruned_bits, pruned_scalar);
    EXPECT_TRUE(covers_all(pruned_bits, t));
  }
}

TEST(KernelScalar, GreedyIdentical) {
  std::mt19937_64 rng(7);
  for (const Shape& s : kShapes) {
    const DetectabilityTable t = random_table(rng, s.n, s.m, s.max_len);
    std::vector<ParityFunc> bits, scalar;
    {
      ScopedKernelMode mode(KernelMode::kBitsliced);
      bits = greedy_cover(t);
    }
    {
      ScopedKernelMode mode(KernelMode::kScalar);
      scalar = greedy_cover(t);
    }
    EXPECT_EQ(bits, scalar) << "n=" << s.n << " m=" << s.m;
    EXPECT_TRUE(covers_all(bits, t));
  }
}

TEST(KernelScalar, ExactIdentical) {
  std::mt19937_64 rng(8);
  for (int trial = 0; trial < 4; ++trial) {
    const DetectabilityTable t = random_table(rng, 6, 40, 2);
    std::optional<std::vector<ParityFunc>> bits, scalar;
    {
      ScopedKernelMode mode(KernelMode::kBitsliced);
      bits = exact_min_cover(t);
    }
    {
      ScopedKernelMode mode(KernelMode::kScalar);
      scalar = exact_min_cover(t);
    }
    ASSERT_EQ(bits.has_value(), scalar.has_value());
    if (bits) {
      EXPECT_EQ(*bits, *scalar);
    }
  }
}

TEST(KernelScalar, Algorithm1Identical) {
  std::mt19937_64 rng(9);
  const DetectabilityTable t = random_table(rng, 18, 2000, 3);
  Algorithm1Options opts;
  opts.threads = 1;
  std::vector<ParityFunc> bits, scalar;
  {
    ScopedKernelMode mode(KernelMode::kBitsliced);
    bits = minimize_parity_functions(t, opts);
  }
  {
    ScopedKernelMode mode(KernelMode::kScalar);
    scalar = minimize_parity_functions(t, opts);
  }
  EXPECT_EQ(bits, scalar);
  EXPECT_TRUE(covers_all(bits, t));
}

TEST(Determinism, IdenticalAcrossThreadCounts) {
  std::mt19937_64 rng(10);
  const DetectabilityTable t = random_table(rng, 18, 3000, 3);
  std::vector<ParityFunc> per_env[2];
  const char* counts[2] = {"1", "4"};
  for (int i = 0; i < 2; ++i) {
    setenv("CED_THREADS", counts[i], 1);
    Algorithm1Options opts;
    opts.threads = 0;  // resolve from CED_THREADS
    per_env[i] = minimize_parity_functions(t, opts);
  }
  unsetenv("CED_THREADS");
  EXPECT_EQ(per_env[0], per_env[1]);
  EXPECT_TRUE(covers_all(per_env[0], t));
}

}  // namespace
}  // namespace ced::core
