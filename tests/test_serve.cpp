// ced_serve hardening suite: the malformed wire-frame corpus (truncated,
// oversized, invalid UTF-8, garbage JSON — every entry must earn a
// structured kInvalidInput, never a crash), the strict JSON reader,
// retry/backoff bounds, the interrupt valve, warm/cold/dedup serving,
// admission control (overload rejection, degraded mode, per-request
// deadlines), graceful drain, and the RunConfig digest golden pin.

#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "benchdata/generator.hpp"
#include "benchdata/handwritten.hpp"
#include "common/retry.hpp"
#include "core/resilience.hpp"
#include "core/run.hpp"
#include "serve/client.hpp"

namespace ced::serve {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ retry unit

TEST(Retry, DelaysStayWithinPolicyBounds) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_ms = 10.0;
  policy.cap_ms = 100.0;
  policy.max_elapsed_ms = 0.0;
  RetryState state(policy, /*seed=*/42);
  int delays = 0;
  for (;;) {
    const double d = state.next_delay_ms();
    if (d < 0) break;
    EXPECT_GE(d, policy.base_ms);
    EXPECT_LE(d, policy.cap_ms);
    ++delays;
  }
  // max_attempts includes the first try, so 6 attempts = 5 backoffs.
  EXPECT_EQ(delays, 5);
}

TEST(Retry, DeterministicForFixedSeed) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryState a(policy, 7), b(policy, 7), c(policy, 8);
  const double a1 = a.next_delay_ms(), b1 = b.next_delay_ms();
  EXPECT_EQ(a1, b1);
  EXPECT_EQ(a.next_delay_ms(), b.next_delay_ms());
  // A different seed diverges somewhere in the first few draws.
  bool diverged = std::abs(c.next_delay_ms() - a1) > 1e-12;
  diverged = diverged || std::abs(c.next_delay_ms() - a1) > 1e-12;
  EXPECT_TRUE(diverged);
}

TEST(Retry, ServerHintOverridesComputedDelay) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.cap_ms = 500.0;
  RetryState state(policy, 1);
  EXPECT_EQ(state.next_delay_ms(123.0), 123.0);
  // A hint above the cap is clamped.
  EXPECT_EQ(state.next_delay_ms(9999.0), 500.0);
  // The hint path still consumes the attempt budget.
  EXPECT_GE(state.next_delay_ms(1.0), 0.0);
  EXPECT_LT(state.next_delay_ms(1.0), 0.0);
}

TEST(Retry, NonePolicyAllowsNoRetries) {
  RetryState state(RetryPolicy::none(), 1);
  EXPECT_LT(state.next_delay_ms(), 0.0);
}

TEST(Retry, RetryCallStopsOnSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  std::vector<double> slept;
  const bool ok = retry_call(
      policy, [&](int) { return ++calls == 3; }, /*seed=*/1,
      [&](double ms) { slept.push_back(ms); });
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(slept.size(), 2u);
}

// --------------------------------------------------------- interrupt valve

TEST(InterruptValve, TripsDeadlineWithoutWallBudget) {
  std::atomic<bool> flag{false};
  core::RunBudget budget;  // no wall_seconds: only the interrupt channel
  budget.interrupt = &flag;
  core::Deadline d = core::Deadline::from(budget);
  EXPECT_TRUE(d.armed());  // stages must poll even with no wall clock
  EXPECT_FALSE(d.expired());
  flag.store(true);
  EXPECT_TRUE(d.expired());
}

TEST(InterruptValve, UnlimitedBudgetStaysUnarmed) {
  const core::Deadline d = core::Deadline::from(core::RunBudget{});
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
}

// ------------------------------------------------------------- JSON reader

TEST(Json, ParsesNestedDocument) {
  auto doc = Json::parse(
      R"({"op":"protect","n":-2.5e3,"ok":true,"z":null,)"
      R"("arr":[1,"two",{"k":"v"}],"esc":"a\"b\\cA😀"})");
  ASSERT_TRUE(doc.has_value()) << doc.status().to_text();
  EXPECT_EQ(doc->get("op")->str_or(""), "protect");
  EXPECT_EQ(doc->get("n")->num_or(0), -2500.0);
  EXPECT_TRUE(doc->get("ok")->bool_or(false));
  EXPECT_TRUE(doc->get("z")->is_null());
  ASSERT_EQ(doc->get("arr")->items().size(), 3u);
  EXPECT_EQ(doc->get("arr")->items()[2].get("k")->str_or(""), "v");
  // A is 'A'; the surrogate pair is U+1F600 in UTF-8.
  EXPECT_EQ(doc->get("esc")->str_or(""), "a\"b\\cA\xf0\x9f\x98\x80");
}

TEST(Json, MalformedCorpusIsRejectedStructurally) {
  const std::vector<std::pair<const char*, std::string>> corpus = {
      {"empty", ""},
      {"garbage", "not json at all"},
      {"truncated-object", R"({"op":"prot)"},
      {"truncated-array", "[1,2,"},
      {"trailing-content", "{} extra"},
      {"bare-nan", "NaN"},
      {"bare-inf", "Infinity"},
      {"leading-zero", "0123"},
      {"plus-number", "+1"},
      {"trailing-comma-obj", R"({"a":1,})"},
      {"trailing-comma-arr", "[1,]"},
      {"single-quotes", "{'a':1}"},
      {"unquoted-key", "{a:1}"},
      {"bad-escape", R"({"a":"\q"})"},
      {"lone-surrogate", R"({"a":"\ud83d"})"},
      {"raw-control-char", std::string("{\"a\":\"\x01\"}", 10)},
      {"invalid-utf8", std::string("{\"a\":\"\xff\xfe\"}", 10)},
      {"overlong-utf8", std::string("{\"a\":\"\xc0\xaf\"}", 10)},
      {"utf8-surrogate-bytes", std::string("{\"a\":\"\xed\xa0\x80\"}", 11)},
  };
  for (const auto& [name, text] : corpus) {
    auto doc = Json::parse(text);
    EXPECT_FALSE(doc.has_value()) << name;
    if (!doc) {
      EXPECT_EQ(doc.status().code, StatusCode::kInvalidInput) << name;
      EXPECT_FALSE(doc.status().message.empty()) << name;
    }
  }
}

TEST(Json, DepthLimitHolds) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  auto doc = Json::parse(deep);
  ASSERT_FALSE(doc.has_value());
  EXPECT_EQ(doc.status().code, StatusCode::kInvalidInput);
  // 64 levels exactly must still parse.
  std::string ok_depth;
  for (int i = 0; i < 64; ++i) ok_depth += '[';
  for (int i = 0; i < 64; ++i) ok_depth += ']';
  EXPECT_TRUE(Json::parse(ok_depth).has_value());
}

// ----------------------------------------------------------- frame layer

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTrip) {
  ASSERT_TRUE(write_frame(fds_[0], R"({"op":"health"})").ok());
  std::string payload;
  EXPECT_EQ(read_frame(fds_[1], payload), FrameStatus::kOk);
  EXPECT_EQ(payload, R"({"op":"health"})");
}

TEST_F(FramePair, CleanEofIsClosed) {
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string payload;
  EXPECT_EQ(read_frame(fds_[1], payload), FrameStatus::kClosed);
}

TEST_F(FramePair, TruncatedHeaderAndPayloadAreTorn) {
  const char half_header[2] = {0, 0};
  ASSERT_EQ(::send(fds_[0], half_header, 2, 0), 2);
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string payload;
  EXPECT_EQ(read_frame(fds_[1], payload), FrameStatus::kTorn);
}

TEST_F(FramePair, ShortPayloadIsTorn) {
  const unsigned char header[4] = {0, 0, 0, 100};  // declares 100 bytes
  ASSERT_EQ(::send(fds_[0], header, 4, 0), 4);
  ASSERT_EQ(::send(fds_[0], "short", 5, 0), 5);
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string payload;
  EXPECT_EQ(read_frame(fds_[1], payload), FrameStatus::kTorn);
}

TEST_F(FramePair, OversizedPrefixRejectedBeforeAllocation) {
  const unsigned char header[4] = {0x7f, 0xff, 0xff, 0xff};  // ~2 GiB claim
  ASSERT_EQ(::send(fds_[0], header, 4, 0), 4);
  std::string payload;
  EXPECT_EQ(read_frame(fds_[1], payload, /*max_bytes=*/1024),
            FrameStatus::kTooLarge);
  EXPECT_TRUE(payload.empty());  // nothing was reserved for the liar
}

TEST_F(FramePair, ZeroLengthFrameRejected) {
  const unsigned char header[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fds_[0], header, 4, 0), 4);
  std::string payload;
  EXPECT_EQ(read_frame(fds_[1], payload), FrameStatus::kTooLarge);
}

// -------------------------------------------------------------- protocol

TEST(Protocol, RequestRoundTrip) {
  Request req;
  req.op = "sweep";
  req.id = "r-1";
  req.tenant = "team-a";
  req.kiss = benchdata::handwritten_kiss("traffic");
  req.latency = 3;
  req.latencies = {1, 2, 3};
  req.solver = "greedy";
  req.encoding = "gray";
  req.semantics = "machine";
  req.seed = 99;
  req.deadline_ms = 1500;
  auto doc = Json::parse(encode_request(req));
  ASSERT_TRUE(doc.has_value()) << doc.status().to_text();
  auto back = parse_request(*doc);
  ASSERT_TRUE(back.has_value()) << back.status().to_text();
  EXPECT_EQ(back->op, req.op);
  EXPECT_EQ(back->id, req.id);
  EXPECT_EQ(back->tenant, req.tenant);
  EXPECT_EQ(back->kiss, req.kiss);
  EXPECT_EQ(back->latencies, req.latencies);
  EXPECT_EQ(back->solver, req.solver);
  EXPECT_EQ(back->semantics, req.semantics);
  EXPECT_EQ(back->seed, req.seed);
  EXPECT_EQ(back->deadline_ms, req.deadline_ms);
}

TEST(Protocol, ResponseParityMasksSurviveAboveDoublePrecision) {
  Response resp;
  resp.code = Code::kOk;
  resp.q = 2;
  // Above 2^53: a double round-trip would corrupt these masks.
  resp.parities = {0xffffffffffffffffull, 0x8000000000000001ull};
  auto doc = Json::parse(encode_response(resp));
  ASSERT_TRUE(doc.has_value());
  auto back = parse_response(*doc);
  ASSERT_TRUE(back.has_value()) << back.status().to_text();
  EXPECT_EQ(back->parities, resp.parities);
}

TEST(Protocol, InvalidRequestsAreStructurallyRejected) {
  const std::vector<std::pair<const char*, const char*>> corpus = {
      {"not-an-object", "[1,2,3]"},
      {"missing-op", R"({"kiss":".i 1"})"},
      {"unknown-op", R"({"op":"explode","kiss":".i 1"})"},
      {"missing-kiss", R"({"op":"protect"})"},
      {"empty-kiss", R"({"op":"protect","kiss":""})"},
      {"bad-latency-type", R"({"op":"protect","kiss":"x","latency":"two"})"},
      {"negative-latency", R"({"op":"protect","kiss":"x","latency":-3})"},
      {"fractional-latency", R"({"op":"protect","kiss":"x","latency":1.5})"},
      {"bad-solver", R"({"op":"protect","kiss":"x","solver":"quantum"})"},
      {"bad-encoding", R"({"op":"protect","kiss":"x","encoding":"morse"})"},
      {"sweep-without-latencies", R"({"op":"sweep","kiss":"x"})"},
      {"oversized-id",
       R"({"op":"health","id":")"
       "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
       "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
       "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
       "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
       "\"}"},
  };
  for (const auto& [name, text] : corpus) {
    auto doc = Json::parse(text);
    ASSERT_TRUE(doc.has_value()) << name;
    auto req = parse_request(*doc);
    EXPECT_FALSE(req.has_value()) << name;
    if (!req) {
      EXPECT_EQ(req.status().code, StatusCode::kInvalidInput) << name;
    }
  }
}

// --------------------------------------------------------- digest golden

TEST(RunConfigDigest, GoldenPinForKnownConfig) {
  const auto cfg = RunConfig::Builder()
                       .latency(3)
                       .solver(core::SolverKind::kGreedy)
                       .encoding(fsm::EncodingKind::kGray)
                       .seed(7)
                       .build();
  ASSERT_TRUE(cfg.has_value()) << cfg.status().to_text();
  // Pinned: a change here means every stored manifest's config_digest
  // changes meaning. Bump RunConfig's digest schema version deliberately,
  // never accidentally.
  EXPECT_EQ(cfg->digest(), "ed4e0415f7575bd289b1f0532fe6efdc");
  // The digest covers results, not execution context: threads and
  // observability must not move it (archive/resume are covered by
  // test_obs's exclusion checks).
  obs::MetricsRegistry registry;
  const auto ctx = RunConfig::Builder(*cfg)
                       .threads(8)
                       .observe(obs::Sinks{nullptr, &registry, 0})
                       .build();
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->digest(), cfg->digest());
}

// ------------------------------------------------------------ server E2E

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char buf[] = "/tmp/ced_serve_test_XXXXXX";
    ASSERT_NE(::mkdtemp(buf), nullptr);
    dir_ = buf;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  ServerOptions base_options() {
    ServerOptions opts;
    opts.unix_socket = (dir_ / "sock").string();
    opts.store_dir = (dir_ / "store").string();
    opts.workers = 2;
    opts.queue_depth = 4;
    opts.drain_grace_s = 0.05;
    return opts;
  }

  ClientOptions client_options() {
    ClientOptions copts;
    copts.unix_socket = (dir_ / "sock").string();
    copts.retry = RetryPolicy::none();
    return copts;
  }

  Request protect_request(const std::string& kiss, std::uint64_t seed = 0) {
    Request req;
    req.op = "protect";
    req.kiss = kiss;
    req.latency = 2;
    req.seed = seed;
    return req;
  }

  /// Raw connected socket for wire-level attack tests.
  int raw_connect() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, (dir_ / "sock").c_str(),
                 sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  }

  std::uint64_t counter(Server& server, const std::string& name) {
    const auto counters = server.metrics().snapshot().counters;
    const auto it = counters.find(name);
    return it != counters.end() ? it->second : 0;
  }

  fs::path dir_;
};

TEST_F(ServeTest, HealthAndMetricsOps) {
  Server server(base_options());
  ASSERT_TRUE(server.start().ok());
  Client client(client_options());
  Request req;
  req.op = "health";
  req.id = "h1";
  auto resp = client.call_once(req);
  ASSERT_TRUE(resp.has_value()) << resp.status().to_text();
  EXPECT_EQ(resp->code, Code::kOk);
  EXPECT_EQ(resp->id, "h1");
  EXPECT_EQ(resp->state, "ready");
  EXPECT_EQ(resp->workers, 2);
  req.op = "metrics";
  resp = client.call_once(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_NE(resp->prometheus.find("ced_serve_requests_total"),
            std::string::npos);
  server.drain();
}

TEST_F(ServeTest, ColdThenWarmProtect) {
  Server server(base_options());
  ASSERT_TRUE(server.start().ok());
  Client client(client_options());
  const std::string kiss = benchdata::handwritten_kiss("traffic");

  auto cold = client.call_once(protect_request(kiss));
  ASSERT_TRUE(cold.has_value()) << cold.status().to_text();
  ASSERT_EQ(cold->code, Code::kOk) << cold->error;
  EXPECT_FALSE(cold->cached);
  EXPECT_GT(cold->q, 0);
  EXPECT_EQ(cold->parities.size(), static_cast<std::size_t>(cold->q));

  auto warm = client.call_once(protect_request(kiss));
  ASSERT_TRUE(warm.has_value()) << warm.status().to_text();
  ASSERT_EQ(warm->code, Code::kOk) << warm->error;
  EXPECT_TRUE(warm->cached);
  EXPECT_EQ(warm->parities, cold->parities);

  EXPECT_EQ(counter(server, "ced_serve_cold_misses_total"), 1u);
  EXPECT_EQ(counter(server, "ced_serve_warm_hits_total"), 1u);
  server.drain();
}

TEST_F(ServeTest, VerifyAfterProtect) {
  Server server(base_options());
  ASSERT_TRUE(server.start().ok());
  Client client(client_options());
  const std::string kiss = benchdata::handwritten_kiss("traffic");

  Request vreq = protect_request(kiss);
  vreq.op = "verify";
  auto missing = client.call_once(vreq);
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->code, Code::kNotFound);

  auto prot = client.call_once(protect_request(kiss));
  ASSERT_TRUE(prot.has_value());
  ASSERT_EQ(prot->code, Code::kOk) << prot->error;

  auto verified = client.call_once(vreq);
  ASSERT_TRUE(verified.has_value());
  EXPECT_EQ(verified->code, Code::kOk) << verified->error;
  EXPECT_GT(verified->activations, 0u);
  EXPECT_EQ(verified->violations, 0u);
  EXPECT_EQ(verified->parities, prot->parities);
  server.drain();
}

TEST_F(ServeTest, SweepOverLatencies) {
  Server server(base_options());
  ASSERT_TRUE(server.start().ok());
  Client client(client_options());
  Request req = protect_request(benchdata::handwritten_kiss("traffic"));
  req.op = "sweep";
  req.latencies = {1, 2, 3};
  auto resp = client.call_once(req);
  ASSERT_TRUE(resp.has_value()) << resp.status().to_text();
  ASSERT_EQ(resp->code, Code::kOk) << resp->error;
  ASSERT_EQ(resp->sweep.size(), 3u);
  // q is monotone non-increasing in the latency bound (paper Table 2).
  EXPECT_GE(resp->sweep[0].q, resp->sweep[1].q);
  EXPECT_GE(resp->sweep[1].q, resp->sweep[2].q);
  server.drain();
}

TEST_F(ServeTest, ConcurrentIdenticalRequestsCoalesce) {
  ServerOptions opts = base_options();
  opts.chaos_job_delay_ms = 200;  // hold the leader so the follower joins
  Server server(opts);
  ASSERT_TRUE(server.start().ok());
  const std::string kiss = benchdata::handwritten_kiss("traffic");

  Result<Response> first = Status::make_ok(), second = Status::make_ok();
  std::thread leader([&] {
    Client client(client_options());
    first = client.call_once(protect_request(kiss));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::thread follower([&] {
    Client client(client_options());
    second = client.call_once(protect_request(kiss));
  });
  leader.join();
  follower.join();
  ASSERT_TRUE(first.has_value()) << first.status().to_text();
  ASSERT_TRUE(second.has_value()) << second.status().to_text();
  EXPECT_EQ(first->code, Code::kOk) << first->error;
  EXPECT_EQ(second->code, Code::kOk) << second->error;
  EXPECT_EQ(first->parities, second->parities);
  EXPECT_TRUE(second->deduped);
  EXPECT_EQ(counter(server, "ced_serve_dedup_joins_total"), 1u);
  // One pipeline run served both: exactly one cold miss.
  EXPECT_EQ(counter(server, "ced_serve_cold_misses_total"), 1u);
  server.drain();
}

TEST_F(ServeTest, SaturatedQueueRejectsWithRetryHint) {
  ServerOptions opts = base_options();
  opts.workers = 1;
  opts.queue_depth = 1;
  opts.chaos_job_delay_ms = 400;
  Server server(opts);
  ASSERT_TRUE(server.start().ok());
  const std::string kiss = benchdata::handwritten_kiss("traffic");

  // Distinct seeds → distinct dedup keys → three independent jobs.
  std::thread a([&] {
    Client client(client_options());
    (void)client.call_once(protect_request(kiss, 1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread b([&] {
    Client client(client_options());
    (void)client.call_once(protect_request(kiss, 2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client client(client_options());
  auto rejected = client.call_once(protect_request(kiss, 3));
  ASSERT_TRUE(rejected.has_value()) << rejected.status().to_text();
  EXPECT_EQ(rejected->code, Code::kOverloaded);
  EXPECT_GT(rejected->retry_after_ms, 0.0);
  EXPECT_FALSE(rejected->error.empty());
  EXPECT_GE(counter(server, "ced_serve_overload_rejections_total"), 1u);
  a.join();
  b.join();
  server.drain();
}

TEST_F(ServeTest, DegradedModeServesOverflowInline) {
  ServerOptions opts = base_options();
  opts.workers = 1;
  opts.queue_depth = 1;
  opts.chaos_job_delay_ms = 400;
  opts.degrade_on_overload = true;
  opts.degraded_budget_s = 5.0;  // generous: we want an answer, not a trip
  Server server(opts);
  ASSERT_TRUE(server.start().ok());
  const std::string kiss = benchdata::handwritten_kiss("traffic");

  std::thread a([&] {
    Client client(client_options());
    (void)client.call_once(protect_request(kiss, 1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread b([&] {
    Client client(client_options());
    (void)client.call_once(protect_request(kiss, 2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client client(client_options());
  auto overflow = client.call_once(protect_request(kiss, 3));
  ASSERT_TRUE(overflow.has_value()) << overflow.status().to_text();
  // Served inline from the greedy cascade: flagged degraded, still a
  // complete cover.
  EXPECT_EQ(overflow->code, Code::kDegraded) << overflow->error;
  EXPECT_TRUE(overflow->degraded);
  EXPECT_GT(overflow->q, 0);
  EXPECT_GE(counter(server, "ced_serve_degraded_mode_total"), 1u);
  a.join();
  b.join();
  server.drain();
}

TEST_F(ServeTest, PerRequestDeadlinePropagatesIntoRun) {
  Server server(base_options());
  ASSERT_TRUE(server.start().ok());
  Client client(client_options());
  // A machine big enough that extraction cannot finish in a millisecond.
  benchdata::SyntheticSpec spec;
  spec.states = 48;
  spec.inputs = 3;
  spec.seed = 11;
  Request req = protect_request(benchdata::generate_kiss(spec));
  req.latency = 4;
  req.deadline_ms = 1;
  auto resp = client.call_once(req);
  ASSERT_TRUE(resp.has_value()) << resp.status().to_text();
  ASSERT_EQ(resp->code, Code::kDegraded) << resp->error;
  EXPECT_TRUE(resp->degraded);
  // Same machine without the deadline completes at full quality — the
  // degradation above really was the per-request deadline propagating
  // into the run's valves, not the machine being unprotectable.
  req.deadline_ms = 0;
  req.seed = 2;  // different dedup key: don't join the degraded flight
  auto full = client.call_once(req);
  ASSERT_TRUE(full.has_value()) << full.status().to_text();
  EXPECT_EQ(full->code, Code::kOk) << full->error;
  EXPECT_GT(full->q, 0);
  server.drain();
}

TEST_F(ServeTest, MalformedWireCorpusNeverKillsTheDaemon) {
  Server server(base_options());
  ASSERT_TRUE(server.start().ok());

  // Each payload is framed correctly but rotten inside: the daemon must
  // answer a structured kInvalidInput on the same connection.
  const std::vector<std::pair<const char*, std::string>> bad_payloads = {
      {"garbage", "complete garbage"},
      {"truncated-json", R"({"op":"protect","kiss":)"},
      {"invalid-utf8", std::string("\xff\xfe{}", 4)},
      {"wrong-root", "[1,2,3]"},
      {"unknown-op", R"({"op":"detonate","kiss":"x"})"},
      {"missing-kiss", R"({"op":"protect"})"},
      {"bad-kiss-text", R"({"op":"protect","kiss":"this is not kiss2"})"},
  };
  for (const auto& [name, payload] : bad_payloads) {
    const int fd = raw_connect();
    ASSERT_TRUE(write_frame(fd, payload).ok()) << name;
    std::string reply;
    ASSERT_EQ(read_frame(fd, reply), FrameStatus::kOk) << name;
    auto doc = Json::parse(reply);
    ASSERT_TRUE(doc.has_value()) << name;
    auto resp = parse_response(*doc);
    ASSERT_TRUE(resp.has_value()) << name;
    EXPECT_EQ(resp->code, Code::kInvalidInput) << name;
    EXPECT_FALSE(resp->error.empty()) << name;
    ::close(fd);
  }

  // Wire-level attacks: oversized length prefix and a torn frame.
  {
    const int fd = raw_connect();
    const unsigned char header[4] = {0x7f, 0xff, 0xff, 0xff};
    ASSERT_EQ(::send(fd, header, 4, 0), 4);
    std::string reply;
    ASSERT_EQ(read_frame(fd, reply), FrameStatus::kOk);
    auto resp = parse_response(*Json::parse(reply));
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->code, Code::kInvalidInput);
    ::close(fd);
  }
  {
    const int fd = raw_connect();
    const unsigned char header[4] = {0, 0, 0, 50};  // promises 50 bytes
    ASSERT_EQ(::send(fd, header, 4, 0), 4);
    ASSERT_EQ(::send(fd, "only-ten.", 9, 0), 9);
    ::close(fd);  // disconnect mid-frame
  }

  // After the whole corpus the daemon is still alive and serving.
  Client client(client_options());
  Request health;
  health.op = "health";
  auto resp = client.call_once(health);
  ASSERT_TRUE(resp.has_value()) << resp.status().to_text();
  EXPECT_EQ(resp->state, "ready");
  EXPECT_GE(counter(server, "ced_serve_invalid_frames_total"), 6u);
  EXPECT_GE(counter(server, "ced_serve_torn_frames_total"), 1u);
  server.drain();
}

TEST_F(ServeTest, DrainAnswersQueuedWorkAndStopsAccepting) {
  ServerOptions opts = base_options();
  opts.workers = 1;
  opts.queue_depth = 4;
  opts.chaos_job_delay_ms = 300;
  Server server(opts);
  ASSERT_TRUE(server.start().ok());
  const std::string kiss = benchdata::handwritten_kiss("traffic");

  Result<Response> running = Status::make_ok(), queued = Status::make_ok();
  std::thread a([&] {
    Client client(client_options());
    running = client.call_once(protect_request(kiss, 1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread b([&] {
    Client client(client_options());
    queued = client.call_once(protect_request(kiss, 2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server.drain();
  a.join();
  b.join();

  // The in-flight request got an answer (full quality if it beat the grace
  // period, degraded if the valve tripped — never dropped).
  ASSERT_TRUE(running.has_value()) << running.status().to_text();
  EXPECT_TRUE(running->code == Code::kOk || running->code == Code::kDegraded)
      << to_string(running->code);
  // The queued-but-never-started request was told to go elsewhere.
  ASSERT_TRUE(queued.has_value()) << queued.status().to_text();
  EXPECT_EQ(queued->code, Code::kDraining);
  EXPECT_GT(queued->retry_after_ms, 0.0);
  EXPECT_FALSE(server.running());

  // New connections are refused after drain (socket file is gone).
  Client late(client_options());
  Request health;
  health.op = "health";
  EXPECT_FALSE(late.call_once(health).has_value());
}

TEST_F(ServeTest, ClientRetriesThroughOverloadWithInjectedSleep) {
  ServerOptions opts = base_options();
  opts.workers = 1;
  opts.queue_depth = 1;
  opts.chaos_job_delay_ms = 250;
  Server server(opts);
  ASSERT_TRUE(server.start().ok());
  const std::string kiss = benchdata::handwritten_kiss("traffic");

  std::thread a([&] {
    Client client(client_options());
    (void)client.call_once(protect_request(kiss, 1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::thread b([&] {
    Client client(client_options());
    (void)client.call_once(protect_request(kiss, 2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // call(): pushback (kOverloaded) is retried with real waiting — here the
  // injected sleep keeps the test fast while proving the loop consumes the
  // server's retry-after hints.
  ClientOptions copts = client_options();
  copts.retry.max_attempts = 20;
  copts.retry.base_ms = 10.0;
  copts.retry.cap_ms = 50.0;
  copts.retry.max_elapsed_ms = 0.0;
  std::atomic<int> sleeps{0};
  copts.sleep = [&](double ms) {
    ++sleeps;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(std::min(ms, 60.0)));
  };
  Client client(copts);
  auto resp = client.call(protect_request(kiss, 3));
  ASSERT_TRUE(resp.has_value()) << resp.status().to_text();
  EXPECT_EQ(resp->code, Code::kOk) << resp->error;
  EXPECT_GE(sleeps.load(), 1);  // it had to back off at least once
  a.join();
  b.join();
  server.drain();
}

TEST_F(ServeTest, StatelessServerStillProtects) {
  ServerOptions opts = base_options();
  opts.store_dir.clear();  // no store: no cache, no checkpoints
  Server server(opts);
  ASSERT_TRUE(server.start().ok());
  Client client(client_options());
  auto resp =
      client.call_once(protect_request(benchdata::handwritten_kiss("traffic")));
  ASSERT_TRUE(resp.has_value()) << resp.status().to_text();
  EXPECT_EQ(resp->code, Code::kOk) << resp->error;
  EXPECT_FALSE(resp->cached);
  server.drain();
}

}  // namespace
}  // namespace ced::serve
