#include "core/area_aware.hpp"

#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"
#include "core/extract.hpp"
#include "kiss/kiss.hpp"
#include "sim/faults.hpp"

namespace ced::core {
namespace {

struct Harness {
  fsm::FsmCircuit circuit;
  std::vector<sim::StuckAtFault> faults;
  DetectabilityTable table;
};

Harness harness_for(const std::string& name, int p) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
  Harness s{fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {}), {}, {}};
  s.faults = sim::enumerate_stuck_at(s.circuit.netlist);
  ExtractOptions opts;
  opts.latency = p;
  s.table = extract_cases(s.circuit, s.faults, opts);
  return s;
}

class AreaAware : public ::testing::TestWithParam<const char*> {};

TEST_P(AreaAware, NeverWorseAndStillCovers) {
  const Harness s = harness_for(GetParam(), 2);
  const AreaAwareResult r = minimize_parity_area(s.circuit, s.table);
  EXPECT_LE(r.final_area, r.initial_area);
  EXPECT_TRUE(covers_all(r.parities, s.table));
  EXPECT_GE(r.evaluations, 1);
  // The result's reported final area matches a fresh synthesis.
  const CedHardware hw = synthesize_ced(s.circuit, r.parities);
  EXPECT_NEAR(hw.cost(logic::CellLibrary::mcnc()).area, r.final_area, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Machines, AreaAware,
                         ::testing::Values("seq_detect", "traffic", "vending",
                                           "link_rx"));

TEST(AreaAwareOpts, EvaluationBudgetIsRespected) {
  const Harness s = harness_for("vending", 2);
  AreaAwareOptions opts;
  opts.max_evaluations = 3;
  const AreaAwareResult r = minimize_parity_area(s.circuit, s.table, opts);
  EXPECT_LE(r.evaluations, 3);
  EXPECT_TRUE(covers_all(r.parities, s.table));
}

TEST(AreaAwareOpts, TreeCountNeverGrows) {
  const Harness s = harness_for("arbiter", 2);
  const auto count_only = minimize_parity_functions(s.table);
  AreaAwareOptions opts;
  opts.algo = Algorithm1Options{};
  const AreaAwareResult r = minimize_parity_area(s.circuit, s.table, opts);
  EXPECT_LE(r.parities.size(), count_only.size() + 0);  // same solver start
}

}  // namespace
}  // namespace ced::core
