// The parallel runtime: the parallel_for utility itself, cross-thread-count
// determinism of extraction and parity selection, budget starvation under
// concurrency, and the splitmix64-mixed Rng streams the workers rely on.

#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <stdexcept>

#include "benchdata/handwritten.hpp"
#include "benchdata/suite.hpp"
#include "core/extract.hpp"
#include "core/pipeline.hpp"
#include "core/run.hpp"
#include "core/rng.hpp"
#include "kiss/kiss.hpp"
#include "sim/faults.hpp"

namespace ced {
namespace {

fsm::FsmCircuit circuit_for(const std::string& name) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
  return fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
}

// ---------------------------------------------------------------- utility

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(threads, hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(4, 64,
                   [&](std::size_t i) {
                     if (i % 3 == 0) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, SerialDegradationRunsInline) {
  // threads=1 must not spawn: the loop body sees the calling thread's
  // stack/thread-locals and runs in index order.
  std::vector<std::size_t> order;
  parallel_for(1, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ShardBounds, PartitionIsContiguousAndComplete) {
  for (std::size_t n : {0u, 1u, 5u, 64u, 101u}) {
    for (int shards : {1, 2, 4, 9}) {
      const auto b = shard_bounds(n, shards);
      ASSERT_EQ(b.size(), static_cast<std::size_t>(shards) + 1);
      EXPECT_EQ(b.front(), 0u);
      EXPECT_EQ(b.back(), n);
      for (std::size_t i = 0; i + 1 < b.size(); ++i) EXPECT_LE(b[i], b[i + 1]);
    }
  }
}

TEST(ResolveThreads, ExplicitRequestWinsOverEnvironment) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_GE(resolve_threads(0), 1);
  setenv("CED_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(0), 5);
  EXPECT_EQ(resolve_threads(2), 2);  // API override beats the env
  unsetenv("CED_THREADS");
}

// ----------------------------------------------------------- determinism

TEST(ParallelExtract, TablesAreIdenticalAcrossThreadCounts) {
  for (const char* name : {"link_rx", "traffic", "arbiter"}) {
    const fsm::FsmCircuit c = circuit_for(name);
    const auto faults = sim::enumerate_stuck_at(c.netlist);
    core::ExtractOptions serial;
    serial.latency = 3;
    serial.threads = 1;
    core::ExtractOptions wide = serial;
    wide.threads = 4;
    const auto t1 = core::extract_cases_multi(c, faults, serial);
    const auto t4 = core::extract_cases_multi(c, faults, wide);
    ASSERT_EQ(t1.size(), t4.size());
    for (std::size_t p = 0; p < t1.size(); ++p) {
      EXPECT_FALSE(t1[p].truncated);
      EXPECT_FALSE(t4[p].truncated);
      ASSERT_EQ(t1[p].cases.size(), t4[p].cases.size())
          << name << " p=" << p + 1;
      for (std::size_t i = 0; i < t1[p].cases.size(); ++i) {
        EXPECT_TRUE(t1[p].cases[i] == t4[p].cases[i])
            << name << " p=" << p + 1 << " row " << i;
      }
      // Fault/activation counts are per-fault sums, invariant under
      // sharding (unlike num_paths, which depends on per-worker pruning).
      EXPECT_EQ(t1[p].num_faults, t4[p].num_faults);
      EXPECT_EQ(t1[p].num_activations, t4[p].num_activations);
      EXPECT_EQ(t1[p].num_detectable_faults, t4[p].num_detectable_faults);
    }
  }
}

TEST(ParallelExtract, MachineLevelSemanticsAlsoDeterministic) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::ExtractOptions serial;
  serial.latency = 2;
  serial.semantics = core::DiffSemantics::kMachineLevel;
  serial.threads = 1;
  core::ExtractOptions wide = serial;
  wide.threads = 3;
  const auto a = core::extract_cases(c, faults, serial);
  const auto b = core::extract_cases(c, faults, wide);
  ASSERT_EQ(a.cases.size(), b.cases.size());
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    EXPECT_TRUE(a.cases[i] == b.cases[i]);
  }
}

TEST(ParallelPipeline, SelectedParitiesIdenticalAcrossThreadCounts) {
  // End-to-end: same seed, threads=1 vs threads=4 must yield the same
  // detectability tables AND the same selected parity trees for every
  // circuit of the (quick) suite.
  for (const auto& name : benchdata::small_suite_names()) {
    const fsm::Fsm f = benchdata::suite_fsm(name);
    core::PipelineOptions serial;
    serial.latency = 2;
    serial.threads = 1;
    core::PipelineOptions wide = serial;
    wide.threads = 4;
    const auto r1 = ced::run_pipeline(f, ced::RunConfig::wrap(serial));
    const auto r4 = ced::run_pipeline(f, ced::RunConfig::wrap(wide));
    EXPECT_EQ(r1.num_cases, r4.num_cases) << name;
    EXPECT_EQ(r1.num_trees, r4.num_trees) << name;
    EXPECT_EQ(r1.parities, r4.parities) << name;
    EXPECT_EQ(r1.ced_gates, r4.ced_gates) << name;
  }
}

// -------------------------------------------------------------- budgets

TEST(ParallelBudget, CaseValveTruncatesHonestlyUnderConcurrency) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::ExtractOptions opts;
  opts.latency = 3;
  opts.threads = 4;
  opts.max_cases = 8;  // starve: the full table is far larger
  const auto t = core::extract_cases(c, faults, opts);
  EXPECT_TRUE(t.truncated);
  EXPECT_FALSE(t.truncation_reason.empty());
  EXPECT_FALSE(t.cases.empty());
  // The partial table is still well-formed: canonical, deduplicated rows.
  for (const auto& ec : t.cases) {
    ASSERT_GE(ec.length, 1);
    EXPECT_NE(ec.diff[0], 0u);
  }
  for (std::size_t i = 0; i + 1 < t.cases.size(); ++i) {
    for (std::size_t j = i + 1; j < t.cases.size(); ++j) {
      EXPECT_FALSE(t.cases[i] == t.cases[j]);
    }
  }
  // ...and a full pipeline over the starved budget still returns a valid
  // cover of the partial table, flagged as degraded.
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("link_rx")));
  core::PipelineOptions popts;
  popts.latency = 3;
  popts.threads = 4;
  popts.budget.max_cases = 8;
  const auto rep = ced::run_pipeline(f, ced::RunConfig::wrap(popts));
  EXPECT_TRUE(rep.resilience.extraction_truncated);
  EXPECT_TRUE(rep.resilience.degraded());
  EXPECT_FALSE(rep.parities.empty());
}

TEST(ParallelBudget, DeadlineStopsAllWorkers) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::ExtractOptions opts;
  opts.latency = 3;
  opts.threads = 4;
  opts.deadline = core::Deadline::after(1e-9);  // effectively pre-expired
  const auto tables = core::extract_cases_multi(c, faults, opts);
  for (const auto& t : tables) {
    EXPECT_TRUE(t.truncated);
    EXPECT_NE(t.truncation_reason.find("wall-clock"), std::string::npos);
  }
}

// ------------------------------------------------------------------ rng

TEST(Rng, SeedZeroAndOneDiffer) {
  // The old `seed | 1` initialization aliased these two streams.
  core::Rng a(0), b(1);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, AdjacentSeedsDecorrelated) {
  // Adjacent raw seeds must not produce near-identical first draws: count
  // matching leading bits of the first outputs across seed pairs.
  int shared_bits = 0;
  for (std::uint64_t s = 0; s < 64; ++s) {
    core::Rng a(s), b(s + 1);
    shared_bits += std::popcount(~(a.next() ^ b.next()));
  }
  // Random 64-bit words share ~32 bits on average; 64 pairs ≈ 2048 total.
  EXPECT_NEAR(shared_bits, 2048, 256);
}

TEST(Rng, DefaultSeedSequenceIsDocumented) {
  // Regression anchor for reproducibility claims: the default-seed stream
  // is part of the library's observable behaviour. If this changes, every
  // randomized stage's results change — bump EXPERIMENTS.md when touching
  // the seeding path.
  core::Rng rng;  // seed 0x5eed through splitmix64
  const std::uint64_t first = rng.next();
  core::Rng again;
  EXPECT_EQ(first, again.next());
  core::Rng explicit_seed(0x5eed);
  EXPECT_EQ(core::Rng().next(), explicit_seed.next());
}

TEST(Rng, StreamsAreIndependentOfDrawOrder) {
  core::Rng base(42);
  core::Rng s0 = base.stream(0);
  base.next();  // advancing the parent must not perturb child streams
  core::Rng s0_again = core::Rng(42).stream(0);
  EXPECT_EQ(s0.next(), s0_again.next());
  core::Rng s1 = core::Rng(42).stream(1);
  EXPECT_NE(s0_again.next(), s1.next());
}

TEST(Rng, FlipRespectsProbabilityGrossly) {
  core::Rng rng(7);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.flip(0.25) ? 1 : 0;
  EXPECT_NEAR(heads, 2500, 300);
}

}  // namespace
}  // namespace ced
