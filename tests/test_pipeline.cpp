#include "core/pipeline.hpp"
#include "core/run.hpp"

#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"
#include "core/parity.hpp"
#include "kiss/kiss.hpp"

namespace ced::core {
namespace {

fsm::Fsm machine(const std::string& name) {
  return fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
}

TEST(Pipeline, ReportFieldsAreConsistent) {
  PipelineOptions opts;
  opts.latency = 2;
  const PipelineReport rep = ced::run_pipeline(machine("link_rx"), RunConfig::wrap(opts));
  EXPECT_EQ(rep.inputs, 1);
  EXPECT_EQ(rep.outputs, 3);
  EXPECT_EQ(rep.state_bits, 3);
  EXPECT_EQ(rep.latency, 2);
  EXPECT_GT(rep.orig_gates, 0u);
  EXPECT_GT(rep.orig_area, 0.0);
  EXPECT_GT(rep.num_faults, 0u);
  EXPECT_GE(rep.num_detectable_faults, 1u);
  EXPECT_LE(rep.num_detectable_faults, rep.num_faults);
  EXPECT_GT(rep.num_cases, 0u);
  EXPECT_EQ(rep.num_trees, static_cast<int>(rep.parities.size()));
  EXPECT_GT(rep.ced_gates, 0u);
  EXPECT_GT(rep.ced_area, 0.0);
  EXPECT_GE(rep.t_extract, 0.0);
  EXPECT_GE(rep.t_solve, 0.0);
}

TEST(Pipeline, SweepIsMonotoneAndShares) {
  const std::vector<int> ps{1, 2, 3};
  PipelineOptions opts;
  const auto reps = ced::run_latency_sweep(machine("vending"), ps, RunConfig::wrap(opts));
  ASSERT_EQ(reps.size(), 3u);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    EXPECT_EQ(reps[i].latency, ps[i]);
    EXPECT_EQ(reps[i].orig_gates, reps[0].orig_gates);
    EXPECT_EQ(reps[i].num_faults, reps[0].num_faults);
    if (i > 0) {
      EXPECT_LE(reps[i].num_trees, reps[i - 1].num_trees);
    }
  }
}

TEST(Pipeline, SolverKindsAllProduceValidCovers) {
  for (SolverKind kind :
       {SolverKind::kLpRounding, SolverKind::kGreedy, SolverKind::kExact}) {
    PipelineOptions opts;
    opts.latency = 2;
    opts.solver = kind;
    const PipelineReport rep = ced::run_pipeline(machine("traffic"), RunConfig::wrap(opts));
    EXPECT_GT(rep.num_trees, 0) << static_cast<int>(kind);
    // Every parity mask stays within the observable bits.
    const int n = rep.state_bits + rep.outputs;
    for (ParityFunc b : rep.parities) {
      EXPECT_NE(b, 0u);
      EXPECT_EQ(b >> n, 0u);
    }
  }
}

TEST(Pipeline, MachineLevelSemanticsSelectable) {
  PipelineOptions impl;
  impl.latency = 2;
  PipelineOptions ml = impl;
  ml.extract.semantics = DiffSemantics::kMachineLevel;
  const PipelineReport ri = ced::run_pipeline(machine("link_rx"), RunConfig::wrap(impl));
  const PipelineReport rm = ced::run_pipeline(machine("link_rx"), RunConfig::wrap(ml));
  // Machine-level tables are never harder than implementable ones.
  EXPECT_LE(rm.num_trees, ri.num_trees);
}

TEST(Pipeline, EncodingChoiceAffectsStateBits) {
  PipelineOptions onehot;
  onehot.latency = 1;
  onehot.encoding = fsm::EncodingKind::kOneHot;
  const PipelineReport rep = ced::run_pipeline(machine("traffic"), RunConfig::wrap(onehot));
  EXPECT_EQ(rep.state_bits, 3);  // 3 states one-hot
}

TEST(Pipeline, SweepAcceptsUnsortedLatencies) {
  const std::vector<int> ps{2, 1};
  PipelineOptions opts;
  const auto reps = ced::run_latency_sweep(machine("seq_detect"), ps, RunConfig::wrap(opts));
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0].latency, 2);
  EXPECT_EQ(reps[1].latency, 1);
  EXPECT_GE(reps[1].num_trees, reps[0].num_trees);
}

// The deprecated core:: entry points must keep working (they forward to
// the consolidated implementation) for one transition period. This is the
// one sanctioned caller; everything else in the tree goes through
// ced::run_pipeline / ced::run_latency_sweep, and CI builds the library
// with -Werror=deprecated-declarations to keep it that way.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Pipeline, DeprecatedShimsMatchConsolidatedApi) {
  PipelineOptions opts;
  opts.latency = 2;
  const PipelineReport via_shim = run_pipeline(machine("link_rx"), opts);
  const PipelineReport via_api =
      ced::run_pipeline(machine("link_rx"), RunConfig::wrap(opts));
  EXPECT_EQ(via_shim.num_trees, via_api.num_trees);
  EXPECT_EQ(via_shim.parities, via_api.parities);

  const std::vector<int> ps{1, 2};
  const auto shim_sweep = run_latency_sweep(machine("vending"), ps, opts);
  const auto api_sweep =
      ced::run_latency_sweep(machine("vending"), ps, RunConfig::wrap(opts));
  ASSERT_EQ(shim_sweep.size(), api_sweep.size());
  for (std::size_t i = 0; i < shim_sweep.size(); ++i) {
    EXPECT_EQ(shim_sweep[i].parities, api_sweep[i].parities);
  }
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace ced::core
