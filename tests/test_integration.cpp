// End-to-end integration: pipeline + sequential verification of the
// bounded-latency guarantee on every hand-written machine, across
// encodings and latency bounds.

#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"
#include "benchdata/suite.hpp"
#include "core/latency.hpp"
#include "core/pipeline.hpp"
#include "core/run.hpp"
#include "core/verify.hpp"
#include "kiss/kiss.hpp"

namespace ced::core {
namespace {

class EndToEnd : public ::testing::TestWithParam<std::tuple<const char*, int>> {
};

TEST_P(EndToEnd, BoundedDetectionHolds) {
  const auto [name, p] = GetParam();
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));

  PipelineOptions opts;
  opts.latency = p;
  const PipelineReport rep = ced::run_pipeline(f, RunConfig::wrap(opts));
  EXPECT_GT(rep.num_trees, 0);
  EXPECT_GT(rep.num_cases, 0u);
  EXPECT_GT(rep.ced_area, 0.0);

  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist, opts.faults);
  const CedHardware hw = synthesize_ced(circuit, rep.parities, opts.ced);
  const VerifyResult vr =
      verify_bounded_detection(circuit, hw, faults, p);
  EXPECT_EQ(vr.violations, 0u) << name << " p=" << p;
  EXPECT_EQ(vr.false_alarms, 0u) << name << " p=" << p;
  EXPECT_GT(vr.activations_checked, 0u);
  EXPECT_LE(vr.max_latency_observed, p);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, EndToEnd,
    ::testing::Combine(::testing::Values("seq_detect", "traffic", "vending",
                                         "arbiter", "modulo5", "link_rx"),
                       ::testing::Values(1, 2, 3)));

TEST(EndToEndExtra, GreedySolverAlsoVerifies) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("vending")));
  PipelineOptions opts;
  opts.latency = 2;
  opts.solver = SolverKind::kGreedy;
  const PipelineReport rep = ced::run_pipeline(f, RunConfig::wrap(opts));
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);
  const CedHardware hw = synthesize_ced(circuit, rep.parities, opts.ced);
  const VerifyResult vr = verify_bounded_detection(circuit, hw, faults, 2);
  EXPECT_TRUE(vr.ok());
}

TEST(EndToEndExtra, ExactSolverAlsoVerifies) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("traffic")));
  PipelineOptions opts;
  opts.latency = 2;
  opts.solver = SolverKind::kExact;
  const PipelineReport rep = ced::run_pipeline(f, RunConfig::wrap(opts));
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);
  const CedHardware hw = synthesize_ced(circuit, rep.parities, opts.ced);
  const VerifyResult vr = verify_bounded_detection(circuit, hw, faults, 2);
  EXPECT_TRUE(vr.ok());
}

TEST(EndToEndExtra, GrayEncodingVerifies) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("modulo5")));
  PipelineOptions opts;
  opts.latency = 2;
  opts.encoding = fsm::EncodingKind::kGray;
  const PipelineReport rep = ced::run_pipeline(f, RunConfig::wrap(opts));
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);
  const CedHardware hw = synthesize_ced(circuit, rep.parities, opts.ced);
  EXPECT_TRUE(verify_bounded_detection(circuit, hw, faults, 2).ok());
}

TEST(EndToEndExtra, LatencySweepSharesExtraction) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("link_rx")));
  PipelineOptions opts;
  const std::vector<int> ps{1, 2, 3};
  const auto reports = ced::run_latency_sweep(f, ps, RunConfig::wrap(opts));
  ASSERT_EQ(reports.size(), 3u);
  // Monotone: more latency never needs more trees.
  EXPECT_LE(reports[1].num_trees, reports[0].num_trees);
  EXPECT_LE(reports[2].num_trees, reports[1].num_trees);
  for (const auto& r : reports) {
    EXPECT_EQ(r.orig_gates, reports[0].orig_gates);
    EXPECT_EQ(r.num_faults, reports[0].num_faults);
  }
}

TEST(EndToEndExtra, UsefulLatencyBoundsAreSane) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("traffic")));
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);
  const LatencyAnalysis la = analyze_useful_latency(circuit, faults);
  EXPECT_EQ(la.shortest_loop_per_fault.size(), faults.size());
  EXPECT_GE(la.max_useful_latency, 1);
  EXPECT_LE(la.max_useful_latency, 8);
  // Traffic is a 3-state ring with self-loops everywhere: loops are short.
  EXPECT_LE(la.max_useful_latency, 4);
}

TEST(EndToEndExtra, DeliberatelyWeakCoverIsCaughtByVerifier) {
  // Negative control: protect only one output bit; the verifier must find
  // activations that escape the bound.
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("vending")));
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);
  const std::vector<ParityFunc> weak{std::uint64_t{1}
                                     << (circuit.n() - 1)};
  const CedHardware hw = synthesize_ced(circuit, weak);
  const VerifyResult vr = verify_bounded_detection(circuit, hw, faults, 1);
  EXPECT_GT(vr.violations, 0u);
  EXPECT_EQ(vr.false_alarms, 0u);  // a correct predictor never false-alarms
}

TEST(EndToEndExtra, MachineLevelCoverCanMissOnRealHardware) {
  // The reproduction finding in miniature: a cover of the machine-level
  // table is not guaranteed to satisfy the bound on the Fig. 3 checker.
  // (On some machines it happens to hold; this test only asserts that the
  // implementable cover is never *larger* in guarantees: it always passes.)
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("link_rx")));
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);

  ExtractOptions impl;
  impl.latency = 2;
  const auto ti = extract_cases(circuit, faults, impl);
  const auto cover = minimize_parity_functions(ti);
  const CedHardware hw = synthesize_ced(circuit, cover);
  EXPECT_TRUE(verify_bounded_detection(circuit, hw, faults, 2).ok());
}

TEST(EndToEndExtra, SyntheticSuiteSmallCircuitVerifies) {
  const fsm::Fsm f = benchdata::suite_fsm("s27");
  PipelineOptions opts;
  opts.latency = 2;
  const PipelineReport rep = ced::run_pipeline(f, RunConfig::wrap(opts));
  const fsm::FsmCircuit circuit =
      fsm::synthesize_fsm(f, opts.encoding, opts.synth);
  const auto faults = sim::enumerate_stuck_at(circuit.netlist);
  const CedHardware hw = synthesize_ced(circuit, rep.parities, opts.ced);
  VerifyOptions vo;
  vo.walks = 8;
  vo.walk_length = 64;
  const VerifyResult vr =
      verify_bounded_detection(circuit, hw, faults, 2, vo);
  EXPECT_TRUE(vr.ok()) << "violations=" << vr.violations
                       << " false_alarms=" << vr.false_alarms;
}

}  // namespace
}  // namespace ced::core
