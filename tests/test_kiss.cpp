#include "kiss/kiss.hpp"

#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"

namespace ced::kiss {
namespace {

const char* kSimple = R"(# a comment
.i 2
.o 1
.p 3
.s 2
.r A
0- A A 0
1- A B 1
-- B A -
.e
)";

TEST(KissParse, ParsesDirectivesAndTransitions) {
  const Kiss2 k = parse(kSimple);
  EXPECT_EQ(k.num_inputs, 2);
  EXPECT_EQ(k.num_outputs, 1);
  EXPECT_EQ(k.declared_terms, 3);
  EXPECT_EQ(k.declared_states, 2);
  EXPECT_EQ(k.reset_state, "A");
  ASSERT_EQ(k.transitions.size(), 3u);
  EXPECT_EQ(k.transitions[0].input, "0-");
  EXPECT_EQ(k.transitions[1].next, "B");
  EXPECT_EQ(k.transitions[2].output, "-");
}

TEST(KissParse, DefaultsResetToFirstState) {
  const Kiss2 k = parse(".i 1\n.o 1\n0 X Y 1\n1 Y X 0\n.e\n");
  EXPECT_EQ(k.reset_state, "X");
}

TEST(KissParse, RejectsBadInputWidth) {
  EXPECT_THROW(parse(".i 2\n.o 1\n0 A A 1\n.e\n"), std::runtime_error);
}

TEST(KissParse, RejectsBadOutputPattern) {
  EXPECT_THROW(parse(".i 1\n.o 2\n0 A A 1x\n.e\n"), std::runtime_error);
}

TEST(KissParse, RejectsMissingHeader) {
  EXPECT_THROW(parse("0 A A 1\n.e\n"), std::runtime_error);
}

TEST(KissParse, RejectsWrongDeclaredCounts) {
  EXPECT_THROW(parse(".i 1\n.o 1\n.p 5\n0 A A 1\n.e\n"), std::runtime_error);
  EXPECT_THROW(parse(".i 1\n.o 1\n.s 5\n0 A A 1\n.e\n"), std::runtime_error);
}

TEST(KissParse, RejectsUnknownResetState) {
  EXPECT_THROW(parse(".i 1\n.o 1\n.r Z\n0 A A 1\n.e\n"), std::runtime_error);
}

TEST(KissParse, RejectsUnknownDirective) {
  EXPECT_THROW(parse(".i 1\n.o 1\n.bogus\n0 A A 1\n.e\n"), std::runtime_error);
}

TEST(KissParse, RejectsContentAfterEnd) {
  EXPECT_THROW(parse(".i 1\n.o 1\n0 A A 1\n.e\n0 A A 1\n"),
               std::runtime_error);
}

TEST(KissWrite, RoundTripsThroughParser) {
  const Kiss2 k = parse(kSimple);
  const Kiss2 k2 = parse(write(k));
  EXPECT_EQ(k2.num_inputs, k.num_inputs);
  EXPECT_EQ(k2.num_outputs, k.num_outputs);
  EXPECT_EQ(k2.reset_state, k.reset_state);
  ASSERT_EQ(k2.transitions.size(), k.transitions.size());
  for (std::size_t i = 0; i < k.transitions.size(); ++i) {
    EXPECT_EQ(k2.transitions[i].input, k.transitions[i].input);
    EXPECT_EQ(k2.transitions[i].current, k.transitions[i].current);
    EXPECT_EQ(k2.transitions[i].next, k.transitions[i].next);
    EXPECT_EQ(k2.transitions[i].output, k.transitions[i].output);
  }
}

TEST(KissWrite, AllHandwrittenFsmsRoundTrip) {
  for (const auto& e : benchdata::handwritten_fsms()) {
    const Kiss2 k = parse(e.kiss);
    const Kiss2 k2 = parse(write(k));
    EXPECT_EQ(k2.transitions.size(), k.transitions.size()) << e.name;
    EXPECT_EQ(k2.reset_state, k.reset_state) << e.name;
  }
}

}  // namespace
}  // namespace ced::kiss
