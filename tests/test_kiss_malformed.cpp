// Negative-test corpus for the KISS2 parser: truncated files, inconsistent
// declared counts, duplicate transitions, non-binary cubes, and assorted
// garbage. Every entry must produce a clean line-numbered diagnostic —
// via exception from parse() and via Status from try_parse() — never a
// crash, hang, or silently wrong machine.

#include "kiss/kiss.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace ced::kiss {
namespace {

struct BadCase {
  const char* name;
  const char* text;
  const char* expect_in_message;  ///< substring the diagnostic must carry
};

const std::vector<BadCase>& corpus() {
  static const std::vector<BadCase> cases = {
      {"empty-file", "", ".i/.o"},
      {"header-only", ".i 1\n.o 1\n", "no transitions"},
      {"truncated-transition", ".i 2\n.o 1\n01 s0\n", "4 fields"},
      {"transition-before-header", "0 s0 s1 1\n.i 1\n.o 1\n",
       ".i/.o must precede"},
      {"missing-i", ".o 1\n0 s0 s0 1\n", ".i/.o must precede"},
      {"bad-i-count", ".i zero\n.o 1\n0 s0 s0 1\n", "bad .i"},
      {"negative-i", ".i -2\n.o 1\n0 s0 s0 1\n", "bad .i"},
      {"bad-o-count", ".i 1\n.o x\n0 s0 s0 1\n", "bad .o"},
      {"bad-p-count", ".i 1\n.o 1\n.p many\n0 s0 s0 1\n", "bad .p"},
      {"p-mismatch", ".i 1\n.o 1\n.p 3\n0 s0 s0 1\n1 s0 s0 0\n",
       ".p does not match"},
      {"s-mismatch", ".i 1\n.o 1\n.s 5\n0 s0 s1 1\n1 s1 s0 0\n",
       ".s does not match"},
      {"bad-r-state", ".i 1\n.o 1\n.r ghost\n0 s0 s0 1\n",
       "reset state never appears"},
      {"unknown-directive", ".i 1\n.o 1\n.clock 5\n0 s0 s0 1\n",
       "unknown directive"},
      {"non-binary-input-cube", ".i 2\n.o 1\n0x s0 s0 1\n", "bad input cube"},
      {"wrong-input-width", ".i 3\n.o 1\n01 s0 s0 1\n", "bad input cube"},
      {"non-binary-output", ".i 1\n.o 2\n0 s0 s0 2-\n", "bad output"},
      {"wrong-output-width", ".i 1\n.o 2\n0 s0 s0 111\n", "bad output"},
      {"duplicate-transition", ".i 1\n.o 1\n0 s0 s1 1\n0 s0 s0 0\n",
       "duplicate transition"},
      {"duplicate-dash-cube", ".i 2\n.o 1\n-- s0 s0 1\n-- s0 s1 0\n",
       "duplicate transition"},
      {"content-after-end", ".i 1\n.o 1\n0 s0 s0 1\n.e\n1 s0 s0 0\n",
       "after .e"},
  };
  return cases;
}

TEST(KissMalformed, ParseThrowsWithDiagnostic) {
  for (const BadCase& c : corpus()) {
    try {
      (void)parse(c.text);
      FAIL() << c.name << ": expected a parse error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_message),
                std::string::npos)
          << c.name << ": diagnostic was '" << e.what() << "'";
    }
  }
}

TEST(KissMalformed, TryParseReturnsInvalidInputStatus) {
  for (const BadCase& c : corpus()) {
    const Result<Kiss2> r = try_parse(c.text);
    ASSERT_FALSE(r) << c.name;
    EXPECT_EQ(r.status().code, StatusCode::kInvalidInput) << c.name;
    EXPECT_EQ(r.status().stage, Stage::kParse) << c.name;
    EXPECT_NE(r.status().message.find(c.expect_in_message), std::string::npos)
        << c.name << ": diagnostic was '" << r.status().message << "'";
  }
}

TEST(KissMalformed, LineNumberPointsAtOffendingRow) {
  const Result<Kiss2> r =
      try_parse(".i 1\n.o 1\n0 s0 s1 1\n1 s1 s0 0\nbad s1 s0 0\n");
  ASSERT_FALSE(r);
  EXPECT_NE(r.status().message.find("line 5"), std::string::npos)
      << r.status().message;
}

TEST(KissMalformed, TryParseAcceptsWellFormedInput) {
  const Result<Kiss2> r = try_parse(
      ".i 1\n.o 1\n.p 2\n.s 2\n.r s0\n0 s0 s1 1\n1 s1 s0 0\n.e\n");
  ASSERT_TRUE(r);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r->transitions.size(), 2u);
  EXPECT_EQ(r->reset_state, "s0");
}

TEST(KissMalformed, DistinctCubesSameStateAreNotDuplicates) {
  // Overlapping-but-different cubes are the writer's business; only exact
  // (state, cube) repeats are rejected.
  const Result<Kiss2> r =
      try_parse(".i 2\n.o 1\n0- s0 s1 1\n-0 s0 s0 0\n");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->transitions.size(), 2u);
}

}  // namespace
}  // namespace ced::kiss
