// Fault-injection harness for the artifact store: round-trip every
// artifact kind through its canonical encoding, then attack the bytes
// (bit flips at every offset, truncation at every length, version bumps)
// and assert each attack is *detected* — quarantined and recomputed, never
// silently decoded into a wrong answer.

#include "storage/store.hpp"

#include <gtest/gtest.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "benchdata/handwritten.hpp"
#include "common/io.hpp"
#include "core/parity_synth.hpp"
#include "core/pipeline.hpp"
#include "core/run.hpp"
#include "core/verify.hpp"
#include "kiss/kiss.hpp"
#include "sim/faults.hpp"
#include "storage/format.hpp"

namespace ced::storage {
namespace {

namespace fs = std::filesystem;

fsm::FsmCircuit circuit_for(const std::string& name) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
  return fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
}

std::vector<core::DetectabilityTable> tables_for(const fsm::FsmCircuit& c,
                                                 int latency) {
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  core::ExtractOptions opts;
  opts.latency = latency;
  return core::extract_cases_multi(c, faults, opts);
}

/// Every test gets a private store directory, removed unconditionally in
/// TearDown so ctest leaves no quarantine/ or temp litter behind.
class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char buf[] = "/tmp/ced_store_test_XXXXXX";
    ASSERT_NE(::mkdtemp(buf), nullptr);
    dir_ = buf;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void write_raw(const std::string& name, const std::string& bytes) {
    std::ofstream out(dir_ / (name + ".ced"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string read_raw(const std::string& name) {
    auto r = io::read_file(dir_ / (name + ".ced"));
    EXPECT_TRUE(r.has_value()) << r.status().to_text();
    return r ? *r : std::string();
  }

  fs::path dir_;
};

// ------------------------------------------------------------ round trips

TEST_F(StorageTest, CircuitRoundTripIsCanonical) {
  const fsm::FsmCircuit c = circuit_for("traffic");
  const std::string bytes = encode_circuit(c);
  auto decoded = decode_circuit(bytes);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_text();
  EXPECT_EQ(decoded->netlist.num_nets(), c.netlist.num_nets());
  EXPECT_EQ(decoded->netlist.num_outputs(), c.netlist.num_outputs());
  EXPECT_EQ(decoded->covers.size(), c.covers.size());
  EXPECT_EQ(decoded->enc.reset_code, c.enc.reset_code);
  // Functional equivalence on a few input assignments.
  for (std::uint64_t a = 0; a < 16; ++a) {
    EXPECT_EQ(decoded->netlist.eval_single(a), c.netlist.eval_single(a));
  }
  // Canonical: re-encoding the decoded circuit reproduces the bytes.
  EXPECT_EQ(encode_circuit(*decoded), bytes);
}

TEST_F(StorageTest, FaultListRoundTripIsCanonical) {
  const fsm::FsmCircuit c = circuit_for("modulo5");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  const std::string bytes = encode_fault_list(faults);
  auto decoded = decode_fault_list(bytes);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_text();
  ASSERT_EQ(decoded->size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ((*decoded)[i].net, faults[i].net);
    EXPECT_EQ((*decoded)[i].stuck_value, faults[i].stuck_value);
  }
  EXPECT_EQ(encode_fault_list(*decoded), bytes);
}

TEST_F(StorageTest, TableBundleRoundTripIsCanonical) {
  const auto tabs = tables_for(circuit_for("traffic"), 2);
  const std::string bytes = encode_tables(tabs);
  auto decoded = decode_tables(bytes);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_text();
  ASSERT_EQ(decoded->size(), tabs.size());
  for (std::size_t i = 0; i < tabs.size(); ++i) {
    EXPECT_EQ((*decoded)[i].cases, tabs[i].cases);
    EXPECT_EQ((*decoded)[i].num_bits, tabs[i].num_bits);
    EXPECT_EQ((*decoded)[i].latency, tabs[i].latency);
    EXPECT_EQ((*decoded)[i].num_faults, tabs[i].num_faults);
    EXPECT_EQ((*decoded)[i].num_detectable_faults,
              tabs[i].num_detectable_faults);
    EXPECT_EQ((*decoded)[i].num_activations, tabs[i].num_activations);
    EXPECT_EQ((*decoded)[i].num_paths, tabs[i].num_paths);
    EXPECT_EQ((*decoded)[i].truncated, tabs[i].truncated);
  }
  EXPECT_EQ(encode_tables(*decoded), bytes);
}

TEST_F(StorageTest, ShardRoundTripIsCanonical) {
  core::ExtractShard shard;
  shard.index = 3;
  shard.num_shards = 16;
  shard.tables = tables_for(circuit_for("modulo5"), 2);
  const std::string bytes = encode_shard(shard);
  auto decoded = decode_shard(bytes);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_text();
  EXPECT_EQ(decoded->index, 3u);
  EXPECT_EQ(decoded->num_shards, 16u);
  ASSERT_EQ(decoded->tables.size(), shard.tables.size());
  EXPECT_EQ(decoded->tables[1].cases, shard.tables[1].cases);
  EXPECT_EQ(encode_shard(*decoded), bytes);
}

TEST_F(StorageTest, SchemeRoundTripIsCanonicalAndVerifies) {
  // Full loop: pipeline -> store scheme -> load -> synthesize the checker
  // from *deserialized* parities -> sequential bounded-detection proof.
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("traffic")));
  core::PipelineOptions opts;
  opts.latency = 2;
  opts.threads = 1;
  const core::PipelineReport rep = ced::run_pipeline(f, ced::RunConfig::wrap(opts));
  ASSERT_FALSE(rep.resilience.degraded());

  SchemeArtifact scheme;
  scheme.latency = rep.latency;
  scheme.parities = rep.parities;
  const std::string bytes = encode_scheme(scheme);
  auto decoded = decode_scheme(bytes);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_text();
  EXPECT_EQ(decoded->latency, scheme.latency);
  EXPECT_EQ(decoded->parities, scheme.parities);
  EXPECT_EQ(encode_scheme(*decoded), bytes);

  ArtifactStore store(dir_);
  ASSERT_TRUE(store_scheme(store, "scheme-test", scheme).ok());
  auto loaded = load_scheme(store, "scheme-test");
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_text();

  const fsm::FsmCircuit c = circuit_for("traffic");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  const core::CedHardware hw = core::synthesize_ced(c, loaded->parities, {});
  const core::VerifyResult vr =
      core::verify_bounded_detection(c, hw, faults, loaded->latency);
  EXPECT_TRUE(vr.ok()) << vr.violations << " violations, " << vr.false_alarms
                       << " false alarms";
}

TEST_F(StorageTest, ReportRoundTripIsCanonical) {
  core::PipelineReport rep;
  rep.inputs = 3;
  rep.state_bits = 4;
  rep.outputs = 2;
  rep.orig_gates = 120;
  rep.orig_area = 245.5;
  rep.num_faults = 99;
  rep.num_detectable_faults = 97;
  rep.num_cases = 1234;
  rep.latency = 2;
  rep.num_trees = 3;
  rep.ced_gates = 88;
  rep.ced_area = 170.25;
  rep.parities = {0x12, 0x50, 0x2b};
  rep.algo_stats.lp_solves = 4;
  rep.algo_stats.final_q = 3;
  rep.algo_stats.qs_tried = {5, 4, 3};
  rep.algo_stats.lp_budget_hit = true;
  rep.resilience.status = Status::truncated(Stage::kExtract, "test");
  rep.resilience.extraction_truncated = true;
  rep.resilience.solver_used = core::CascadeLevel::kGreedy;
  core::FallbackEvent ev;
  ev.stage = Stage::kExtract;
  ev.reason = StatusCode::kTruncated;
  ev.detail = "case budget";
  ev.seconds = 1.5;
  ev.cases_seen = 1234;
  rep.resilience.events.push_back(ev);
  rep.resilience.store_events.push_back("quarantined tab-x.ced: crc");
  rep.t_synth = 0.01;
  rep.t_extract = 1.25;
  rep.t_solve = 0.5;
  rep.t_ced = 0.02;

  const std::string bytes = encode_report(rep);
  auto decoded = decode_report(bytes);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_text();
  EXPECT_EQ(decoded->parities, rep.parities);
  EXPECT_EQ(decoded->num_cases, rep.num_cases);
  EXPECT_EQ(decoded->algo_stats.qs_tried, rep.algo_stats.qs_tried);
  EXPECT_EQ(decoded->resilience.status.code, StatusCode::kTruncated);
  EXPECT_EQ(decoded->resilience.solver_used, core::CascadeLevel::kGreedy);
  ASSERT_EQ(decoded->resilience.events.size(), 1u);
  EXPECT_EQ(decoded->resilience.events[0].detail, "case budget");
  EXPECT_EQ(decoded->resilience.store_events, rep.resilience.store_events);
  EXPECT_EQ(decoded->t_extract, rep.t_extract);
  EXPECT_EQ(encode_report(*decoded), bytes);
}

ManifestArtifact sample_manifest() {
  ManifestArtifact man;
  man.config_digest = "0123456789abcdef0123456789abcdef";
  man.extraction_key = "deadbeefdeadbeefdeadbeefdeadbeef";
  man.circuit = "traffic";
  man.latency = 2;
  man.threads = 4;
  man.parities = {0x12, 0x50, 0x2b};
  man.resilience.status = Status::truncated(Stage::kLp, "lp budget");
  man.resilience.solver_used = core::CascadeLevel::kGreedy;
  core::FallbackEvent ev;
  ev.stage = Stage::kLp;
  ev.reason = StatusCode::kTruncated;
  ev.detail = "fell back to greedy";
  ev.seconds = 0.25;
  man.resilience.events.push_back(ev);
  man.resilience.store_events.push_back("quarantined tab-x.ced: crc");
  man.t_synth = 0.01;
  man.t_extract = 1.25;
  man.t_solve = 0.5;
  man.t_ced = 0.02;
  obs::SpanRecord root;
  root.id = 1;
  root.name = "pipeline";
  root.dur_s = 1.78;
  obs::SpanRecord child;
  child.id = 2;
  child.parent = 1;
  child.name = "solve";
  child.start_s = 1.26;
  child.dur_s = 0.5;
  child.attrs.emplace_back("q", "3");
  child.attrs.emplace_back("cascade", "greedy");
  man.spans = {root, child};
  return man;
}

TEST_F(StorageTest, ManifestRoundTripIsCanonical) {
  const ManifestArtifact man = sample_manifest();
  const std::string bytes = encode_manifest(man);
  auto decoded = decode_manifest(bytes);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_text();
  EXPECT_EQ(decoded->config_digest, man.config_digest);
  EXPECT_EQ(decoded->extraction_key, man.extraction_key);
  EXPECT_EQ(decoded->circuit, man.circuit);
  EXPECT_EQ(decoded->latency, man.latency);
  EXPECT_EQ(decoded->threads, man.threads);
  EXPECT_EQ(decoded->parities, man.parities);
  EXPECT_EQ(decoded->resilience.status.code, StatusCode::kTruncated);
  EXPECT_EQ(decoded->resilience.solver_used, core::CascadeLevel::kGreedy);
  ASSERT_EQ(decoded->resilience.events.size(), 1u);
  EXPECT_EQ(decoded->resilience.events[0].detail, "fell back to greedy");
  EXPECT_EQ(decoded->resilience.store_events, man.resilience.store_events);
  EXPECT_EQ(decoded->t_extract, man.t_extract);
  ASSERT_EQ(decoded->spans.size(), 2u);
  EXPECT_EQ(decoded->spans[0].name, "pipeline");
  EXPECT_EQ(decoded->spans[1].parent, 1u);
  EXPECT_EQ(decoded->spans[1].attrs, man.spans[1].attrs);
  EXPECT_EQ(decoded->spans[1].start_s, man.spans[1].start_s);
  EXPECT_EQ(encode_manifest(*decoded), bytes);
}

TEST_F(StorageTest, ManifestStoreLoadAndQuarantineOnCorruption) {
  ArtifactStore store(dir_);
  const ManifestArtifact man = sample_manifest();
  const std::string name =
      manifest_name(man.extraction_key, man.latency, "greedy");
  EXPECT_EQ(name, "man-" + man.extraction_key + "-p2-greedy");
  ASSERT_TRUE(store_manifest(store, name, man).ok());

  auto loaded = load_manifest(store, name);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_text();
  EXPECT_EQ(loaded->config_digest, man.config_digest);
  EXPECT_EQ(loaded->spans.size(), man.spans.size());

  // Flip a byte on disk: the load must fail AND quarantine the file.
  std::string bytes = read_raw(name);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x08);
  write_raw(name, bytes);
  EXPECT_FALSE(load_manifest(store, name).has_value());
  EXPECT_FALSE(store.exists(name));
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / (name + ".ced")));
}

// ------------------------------------------------------------- atomic I/O

TEST_F(StorageTest, AtomicWriteLeavesNoTempFilesAndRoundTrips) {
  const fs::path p = dir_ / "artifact.ced";
  const std::string payload = "hello artifact \x01\x02\x03";
  ASSERT_TRUE(io::atomic_write_file(p, payload).ok());
  auto back = io::read_file(p);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  for (const auto& e : fs::directory_iterator(dir_)) {
    EXPECT_EQ(e.path().filename().string().find(".tmp."), std::string::npos)
        << "stray temp file: " << e.path();
  }
  // Overwrite is atomic too.
  ASSERT_TRUE(io::atomic_write_file(p, "v2").ok());
  EXPECT_EQ(*io::read_file(p), "v2");
}

// ----------------------------------------------------- corruption attacks

TEST_F(StorageTest, EverySingleBitFlipIsDetected) {
  const auto tabs = tables_for(circuit_for("modulo5"), 1);
  const std::string bytes = encode_tables(tabs);
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    for (int bit = 0; bit < 8; bit += 3) {  // 3 of 8 bits: still every byte
      std::string mutated = bytes;
      mutated[off] = static_cast<char>(mutated[off] ^ (1 << bit));
      auto decoded = decode_tables(mutated);
      EXPECT_FALSE(decoded.has_value())
          << "flip at byte " << off << " bit " << bit << " went undetected";
    }
  }
}

TEST_F(StorageTest, EveryTruncationIsDetected) {
  const auto tabs = tables_for(circuit_for("modulo5"), 1);
  const std::string bytes = encode_tables(tabs);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = decode_tables(bytes.substr(0, len));
    EXPECT_FALSE(decoded.has_value())
        << "truncation to " << len << " bytes went undetected";
  }
}

TEST_F(StorageTest, VersionBumpIsRejectedWithClearMessage) {
  const std::string bytes = encode_fault_list({});
  std::string mutated = bytes;
  mutated[4] = static_cast<char>(kFormatVersion + 1);  // little-endian u16
  auto decoded = decode_fault_list(mutated);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.status().message.find("version"), std::string::npos)
      << decoded.status().message;
  EXPECT_TRUE(validate_envelope(bytes).ok());
  EXPECT_FALSE(validate_envelope(mutated).ok());
}

TEST_F(StorageTest, CorruptArtifactIsQuarantinedAndBecomesMiss) {
  ArtifactStore store(dir_);
  const auto tabs = tables_for(circuit_for("modulo5"), 1);
  ASSERT_TRUE(store.put("tab-key", encode_tables(tabs)).ok());

  // Flip one byte in the middle of the file on disk.
  std::string bytes = read_raw("tab-key");
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  write_raw("tab-key", bytes);

  auto got = store.get_validated("tab-key", ArtifactKind::kTableBundle);
  EXPECT_FALSE(got.has_value());
  EXPECT_FALSE(store.exists("tab-key"));
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "tab-key.ced"));
  const auto events = store.drain_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("quarantined"), std::string::npos) << events[0];
  // A second read is a plain miss, with no further incident.
  EXPECT_FALSE(
      store.get_validated("tab-key", ArtifactKind::kTableBundle).has_value());
  EXPECT_TRUE(store.drain_events().empty());
}

TEST_F(StorageTest, KindMismatchIsQuarantined) {
  ArtifactStore store(dir_);
  ASSERT_TRUE(store.put("scheme-x", encode_fault_list({})).ok());
  EXPECT_FALSE(
      store.get_validated("scheme-x", ArtifactKind::kParityScheme).has_value());
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "scheme-x.ced"));
}

TEST_F(StorageTest, VerifyAllAndGcSweepTheStore) {
  ArtifactStore store(dir_);
  const auto tabs = tables_for(circuit_for("modulo5"), 1);
  ASSERT_TRUE(store.put("tab-aaa", encode_tables(tabs)).ok());
  ASSERT_TRUE(store.put("tab-bbb", encode_tables(tabs)).ok());
  core::ExtractShard shard;
  shard.index = 0;
  shard.num_shards = 4;
  shard.tables = tabs;
  ASSERT_TRUE(store.put(shard_name("aaa", 0), encode_shard(shard)).ok());

  // Corrupt one table; drop a stray atomic-write temp file.
  std::string bytes = read_raw("tab-bbb");
  bytes[10] = static_cast<char>(bytes[10] ^ 0x01);
  write_raw("tab-bbb", bytes);
  { std::ofstream tmp(dir_ / "tab-ccc.ced.tmp.1234"); tmp << "partial"; }

  const VerifyStats vs = store.verify_all();
  EXPECT_EQ(vs.scanned, 3u);
  EXPECT_EQ(vs.ok, 2u);
  EXPECT_EQ(vs.quarantined, 1u);
  EXPECT_FALSE(store.drain_events().empty());

  const GcStats gc = store.gc();
  EXPECT_EQ(gc.tmp_removed, 1u);
  EXPECT_EQ(gc.quarantine_removed, 1u);
  // shard-aaa-000 is superseded by tab-aaa.
  EXPECT_EQ(gc.stale_shards_removed, 1u);
  EXPECT_TRUE(store.exists("tab-aaa"));
  EXPECT_FALSE(store.exists(shard_name("aaa", 0)));
}

// ------------------------------------------------- pipeline integration

TEST_F(StorageTest, PipelineQuarantinesCorruptCacheAndRecomputes) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("traffic")));
  ArtifactStore store(dir_);
  StoreArchive archive(store);
  core::PipelineOptions opts;
  opts.latency = 2;
  opts.threads = 1;
  opts.archive = &archive;
  const core::PipelineReport ref = ced::run_pipeline(f, ced::RunConfig::wrap(opts));
  ASSERT_FALSE(ref.resilience.degraded());
  ASSERT_TRUE(ref.resilience.store_events.empty());

  // Find and corrupt the cached table bundle on disk.
  std::string tab_name;
  for (const std::string& name : store.list()) {
    if (name.rfind("tab-", 0) == 0) tab_name = name;
  }
  ASSERT_FALSE(tab_name.empty());
  std::string bytes = read_raw(tab_name);
  bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x20);
  write_raw(tab_name, bytes);

  const core::PipelineReport rep = ced::run_pipeline(f, ced::RunConfig::wrap(opts));
  // Same full-quality answer, recomputed; the incident is an audit event,
  // not a degradation.
  EXPECT_EQ(rep.parities, ref.parities);
  EXPECT_EQ(rep.num_cases, ref.num_cases);
  EXPECT_FALSE(rep.resilience.degraded());
  ASSERT_FALSE(rep.resilience.store_events.empty());
  EXPECT_NE(rep.resilience.store_events[0].find("quarantined"),
            std::string::npos);
  EXPECT_FALSE(rep.resilience.summary().empty());
  // The recomputed bundle was re-cached and is valid again.
  EXPECT_TRUE(
      store.get_validated(tab_name, ArtifactKind::kTableBundle).has_value());
}

TEST_F(StorageTest, StoreDirectoryFailureDegradesToAlwaysMiss) {
  // A file where the directory should be: init fails, pipeline still runs.
  const fs::path blocked = dir_ / "blocked";
  { std::ofstream f(blocked); f << "x"; }
  ArtifactStore store(blocked);
  EXPECT_FALSE(store.status().ok());

  StoreArchive archive(store);
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("modulo5")));
  core::PipelineOptions opts;
  opts.latency = 1;
  opts.threads = 1;
  opts.archive = &archive;
  const core::PipelineReport rep = ced::run_pipeline(f, ced::RunConfig::wrap(opts));
  EXPECT_FALSE(rep.resilience.degraded());
  EXPECT_FALSE(rep.resilience.store_events.empty());
  EXPECT_GT(rep.num_cases, 0u);
}

// --------------------------------------------------- cross-process locking

/// Probes the store's advisory lock from a real second process (flock is
/// per-open-file-description, so probing from the same process would lie):
/// forks a child that tries a non-blocking flock on the lock file and
/// reports via its exit code whether the lock was obtainable.
int probe_lock_from_child(const fs::path& dir, int operation) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int fd =
        ::open((dir / ".store.lock").c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) ::_exit(2);
    const int rc = ::flock(fd, operation | LOCK_NB);
    ::_exit(rc == 0 ? 0 : 1);  // 0 = acquired, 1 = would block
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : 2;
}

TEST_F(StorageTest, ExclusiveStoreLockBlocksOtherProcesses) {
  {
    StoreLock lease(dir_, /*exclusive=*/true);
    ASSERT_TRUE(lease.held());
    // While gc/verify_all would hold this, no other process may take the
    // lock in either mode.
    EXPECT_EQ(probe_lock_from_child(dir_, LOCK_SH), 1);
    EXPECT_EQ(probe_lock_from_child(dir_, LOCK_EX), 1);
  }
  // Released on scope exit: the same probes now succeed.
  EXPECT_EQ(probe_lock_from_child(dir_, LOCK_SH), 0);
  EXPECT_EQ(probe_lock_from_child(dir_, LOCK_EX), 0);
}

TEST_F(StorageTest, SharedStoreLocksCoexistButExcludeSweeps) {
  StoreLock writer(dir_, /*exclusive=*/false);
  ASSERT_TRUE(writer.held());
  // Another writer (shared) from a second process is fine...
  EXPECT_EQ(probe_lock_from_child(dir_, LOCK_SH), 0);
  // ...but an exclusive maintenance sweep must wait.
  EXPECT_EQ(probe_lock_from_child(dir_, LOCK_EX), 1);
}

TEST_F(StorageTest, GcDoesNotRaceAConcurrentWriterProcess) {
  ArtifactStore store(dir_);
  ASSERT_TRUE(store.status().ok());
  const std::string bytes = encode_scheme({2, {0x3ull, 0x5ull}});
  ASSERT_TRUE(store.put("scheme-live", bytes).ok());

  // A second process holds the writer (shared) lease mid-put; gc in this
  // process must block until it releases rather than sweeping temp files
  // out from under it. Child: hold LOCK_SH for 300ms, then exit.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const int fd =
        ::open((dir_ / ".store.lock").c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) ::_exit(2);
    if (::flock(fd, LOCK_SH) != 0) ::_exit(2);
    ::usleep(300 * 1000);
    ::_exit(0);
  }
  ::usleep(50 * 1000);  // let the child take the lease
  const auto t0 = std::chrono::steady_clock::now();
  const GcStats gc = store.gc();
  const double waited_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  int status = 0;
  ::waitpid(pid, &status, 0);
  // gc ran only after the writer released (allow generous scheduling
  // slack, but it must have waited a detectable amount).
  EXPECT_GT(waited_ms, 100.0);
  EXPECT_EQ(gc.tmp_removed, 0u);
  EXPECT_TRUE(store.get_validated("scheme-live", ArtifactKind::kParityScheme)
                  .has_value());
}

}  // namespace
}  // namespace ced::storage
