#include "core/extract.hpp"

#include <gtest/gtest.h>

#include <set>

#include "benchdata/handwritten.hpp"
#include "core/greedy.hpp"
#include "core/parity.hpp"
#include "kiss/kiss.hpp"
#include "sim/faults.hpp"

namespace ced::core {
namespace {

fsm::FsmCircuit circuit_for(const std::string& name) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
  return fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
}

TEST(Extract, EveryCaseStartsWithNonzeroDiff) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  for (int p = 1; p <= 3; ++p) {
    ExtractOptions opts;
    opts.latency = p;
    const DetectabilityTable t = extract_cases(c, faults, opts);
    EXPECT_FALSE(t.cases.empty());
    for (const auto& ec : t.cases) {
      EXPECT_NE(ec.diff[0], 0u);
      EXPECT_GE(ec.length, 1);
      EXPECT_LE(ec.length, p);
      // Diff words only use observable bits.
      for (int k = 0; k < ec.length; ++k) {
        EXPECT_EQ(ec.diff[static_cast<std::size_t>(k)] >>
                      static_cast<unsigned>(t.num_bits),
                  0u);
      }
    }
  }
}

TEST(Extract, LatencyOneCasesAreSingleStep) {
  const fsm::FsmCircuit c = circuit_for("traffic");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = 1;
  const DetectabilityTable t = extract_cases(c, faults, opts);
  for (const auto& ec : t.cases) EXPECT_EQ(ec.length, 1);
}

TEST(Extract, CasesAreDeduplicated) {
  const fsm::FsmCircuit c = circuit_for("vending");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = 2;
  const DetectabilityTable t = extract_cases(c, faults, opts);
  for (std::size_t i = 0; i + 1 < t.cases.size(); ++i) {
    for (std::size_t j = i + 1; j < t.cases.size(); ++j) {
      EXPECT_FALSE(t.cases[i] == t.cases[j]) << i << " " << j;
    }
  }
  EXPECT_LE(t.cases.size(), t.num_paths);
}

TEST(Extract, MultiPassMatchesDirectExtraction) {
  // The single-pass multi-latency extraction must equal extracting each
  // bound independently.
  const fsm::FsmCircuit c = circuit_for("arbiter");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions o3;
  o3.latency = 3;
  const auto multi = extract_cases_multi(c, faults, o3);
  ASSERT_EQ(multi.size(), 3u);
  for (int p = 1; p <= 3; ++p) {
    ExtractOptions op;
    op.latency = p;
    const DetectabilityTable direct = extract_cases(c, faults, op);
    const DetectabilityTable& derived = multi[static_cast<std::size_t>(p - 1)];
    ASSERT_EQ(direct.cases.size(), derived.cases.size()) << "p=" << p;
    for (std::size_t i = 0; i < direct.cases.size(); ++i) {
      EXPECT_TRUE(direct.cases[i] == derived.cases[i]) << "p=" << p;
    }
  }
}

TEST(Extract, CanonicalFormIsSortedNonzeroUnique) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = 3;
  const DetectabilityTable t = extract_cases(c, faults, opts);
  for (const auto& ec : t.cases) {
    ASSERT_GE(ec.length, 1);
    for (int k = 0; k < ec.length; ++k) {
      EXPECT_NE(ec.diff[static_cast<std::size_t>(k)], 0u);
      if (k > 0) {
        EXPECT_LT(ec.diff[static_cast<std::size_t>(k - 1)],
                  ec.diff[static_cast<std::size_t>(k)]);
      }
    }
  }
}

TEST(Extract, LowerLatencyCoverStaysValidAtHigherLatency) {
  // Every latency-(p+1) case contains its path's step-1 word, which is a
  // latency-p case's word too, so a cover of table[p] covers table[p+1].
  const fsm::FsmCircuit c = circuit_for("modulo5");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions o3;
  o3.latency = 3;
  const auto multi = extract_cases_multi(c, faults, o3);
  const auto cover1 = greedy_cover(multi[0]);
  EXPECT_TRUE(covers_all(cover1, multi[1]));
  EXPECT_TRUE(covers_all(cover1, multi[2]));
  const auto cover2 = greedy_cover(multi[1]);
  EXPECT_TRUE(covers_all(cover2, multi[2]));
}

TEST(Extract, LoopTruncationHappensOnLoopyMachine) {
  // A machine whose faulty walks revisit states quickly must show
  // loop-truncated (short) cases at p=3.
  const fsm::FsmCircuit c = circuit_for("traffic");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = 3;
  const DetectabilityTable t = extract_cases(c, faults, opts);
  EXPECT_GT(t.num_loop_truncations, 0u);
  bool has_short = false;
  for (const auto& ec : t.cases) {
    if (ec.length < 3) has_short = true;
  }
  EXPECT_TRUE(has_short);
}

TEST(Extract, StatsAreConsistent) {
  const fsm::FsmCircuit c = circuit_for("seq_detect");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = 2;
  const DetectabilityTable t = extract_cases(c, faults, opts);
  EXPECT_EQ(t.num_faults, faults.size());
  EXPECT_LE(t.num_detectable_faults, t.num_faults);
  EXPECT_GT(t.num_detectable_faults, 0u);
  EXPECT_GE(t.num_paths, t.cases.size());
  EXPECT_GE(t.num_activations, 1u);
  EXPECT_EQ(t.latency, 2);
  EXPECT_EQ(t.num_bits, c.n());
}

TEST(Extract, VAccessorMatchesDiffWords) {
  const fsm::FsmCircuit c = circuit_for("traffic");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = 2;
  const DetectabilityTable t = extract_cases(c, faults, opts);
  for (std::size_t i = 0; i < t.cases.size(); ++i) {
    for (int k = 0; k < t.latency; ++k) {
      for (int j = 0; j < t.num_bits; ++j) {
        const bool expect =
            k < t.cases[i].length &&
            ((t.cases[i].diff[static_cast<std::size_t>(k)] >> j) & 1);
        EXPECT_EQ(t.v(i, j, k), expect);
      }
    }
  }
}

TEST(Extract, SemanticsCoincideAtLatencyOne) {
  // With p = 1 there is no state drift: both EC definitions must produce
  // identical tables.
  const fsm::FsmCircuit c = circuit_for("arbiter");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions impl;
  impl.latency = 1;
  ExtractOptions ml = impl;
  ml.semantics = DiffSemantics::kMachineLevel;
  const DetectabilityTable ti = extract_cases(c, faults, impl);
  const DetectabilityTable tm = extract_cases(c, faults, ml);
  ASSERT_EQ(ti.cases.size(), tm.cases.size());
  for (std::size_t i = 0; i < ti.cases.size(); ++i) {
    EXPECT_TRUE(ti.cases[i] == tm.cases[i]);
  }
}

TEST(Extract, MachineLevelDivergesBeyondLatencyOne) {
  // At p >= 2 the reference machine drifts from the faulty one, so the
  // machine-level table generally differs from the implementable one.
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions impl;
  impl.latency = 2;
  ExtractOptions ml = impl;
  ml.semantics = DiffSemantics::kMachineLevel;
  const DetectabilityTable ti = extract_cases(c, faults, impl);
  const DetectabilityTable tm = extract_cases(c, faults, ml);
  bool differ = ti.cases.size() != tm.cases.size();
  for (std::size_t i = 0; !differ && i < ti.cases.size(); ++i) {
    differ = !(ti.cases[i] == tm.cases[i]);
  }
  EXPECT_TRUE(differ);
  // Both stay well-formed.
  for (const auto& ec : tm.cases) {
    EXPECT_NE(ec.diff[0], 0u);
    EXPECT_LE(ec.length, 2);
  }
}

TEST(Extract, MachineLevelStepOneTableMatchesImplementable) {
  // Step-1 difference sets do not depend on the reference anchoring, so
  // the p=1 tables produced as a side effect of a deeper multi-extraction
  // must be identical under both semantics.
  const fsm::FsmCircuit c = circuit_for("modulo5");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions impl;
  impl.latency = 3;
  ExtractOptions ml = impl;
  ml.semantics = DiffSemantics::kMachineLevel;
  const auto ti = extract_cases_multi(c, faults, impl);
  const auto tm = extract_cases_multi(c, faults, ml);
  ASSERT_EQ(ti[0].cases.size(), tm[0].cases.size());
  for (std::size_t i = 0; i < ti[0].cases.size(); ++i) {
    EXPECT_TRUE(ti[0].cases[i] == tm[0].cases[i]);
  }
}

TEST(Extract, RejectsBadLatency) {
  const fsm::FsmCircuit c = circuit_for("traffic");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = 0;
  EXPECT_THROW(extract_cases(c, faults, opts), std::invalid_argument);
  opts.latency = kMaxLatency + 1;
  EXPECT_THROW(extract_cases(c, faults, opts), std::invalid_argument);
}

TEST(Extract, CaseLimitTruncatesInsteadOfThrowing) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = 3;
  ExtractOptions limited = opts;
  limited.max_cases = 5;
  const DetectabilityTable full = extract_cases(c, faults, opts);
  const DetectabilityTable cut = extract_cases(c, faults, limited);
  ASSERT_GT(full.cases.size(), limited.max_cases)
      << "fixture too small to exercise the limit";
  EXPECT_FALSE(full.truncated);
  EXPECT_TRUE(cut.truncated);
  EXPECT_FALSE(cut.truncation_reason.empty());
  // The truncated table holds a usable prefix: nonempty, no larger than the
  // full table, and every retained case also appears in the full extraction.
  EXPECT_FALSE(cut.cases.empty());
  EXPECT_LE(cut.cases.size(), full.cases.size());
  for (const auto& ec : cut.cases) {
    bool found = false;
    for (const auto& ref : full.cases) {
      if (ec == ref) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Extract, UnrestrictedActivationsSupersetReachable) {
  const fsm::FsmCircuit c = circuit_for("seq_detect");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions reach;
  reach.latency = 1;
  ExtractOptions all = reach;
  all.restrict_to_reachable = false;
  const DetectabilityTable tr = extract_cases(c, faults, reach);
  const DetectabilityTable ta = extract_cases(c, faults, all);
  EXPECT_GE(ta.cases.size(), tr.cases.size());
}

}  // namespace
}  // namespace ced::core
