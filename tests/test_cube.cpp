#include "logic/cube.hpp"

#include <gtest/gtest.h>

#include <set>

#include "logic/cover.hpp"

namespace ced::logic {
namespace {

TEST(Cube, UniverseContainsEverything) {
  const Cube u = Cube::universe();
  EXPECT_EQ(u.num_literals(), 0);
  for (std::uint64_t a = 0; a < 16; ++a) EXPECT_TRUE(u.contains(a));
}

TEST(Cube, MintermContainsOnlyItself) {
  const Cube m = Cube::minterm(0b101, 3);
  EXPECT_EQ(m.num_literals(), 3);
  for (std::uint64_t a = 0; a < 8; ++a) {
    EXPECT_EQ(m.contains(a), a == 0b101u);
  }
}

TEST(Cube, WithWithoutLiteral) {
  Cube c = Cube::universe().with_literal(2, true).with_literal(0, false);
  EXPECT_EQ(c.to_string(4), "0-1-");
  EXPECT_TRUE(c.contains(0b0100));
  EXPECT_TRUE(c.contains(0b1100));
  EXPECT_FALSE(c.contains(0b0101));
  EXPECT_FALSE(c.contains(0b0000));
  c = c.without_literal(0);
  EXPECT_EQ(c.to_string(4), "--1-");
  EXPECT_TRUE(c.contains(0b0101));
}

TEST(Cube, CoversIsSetContainment) {
  const Cube big = Cube::universe().with_literal(1, true);   // -1-
  const Cube small = big.with_literal(0, false);             // 01
  EXPECT_TRUE(big.covers(small));
  EXPECT_FALSE(small.covers(big));
  EXPECT_TRUE(big.covers(big));
}

TEST(Cube, IntersectionSemantics) {
  const Cube a = Cube::universe().with_literal(0, true);  // x0
  const Cube b = Cube::universe().with_literal(1, true);  // x1
  EXPECT_TRUE(a.intersects(b));
  const Cube i = a.intersection(b);
  EXPECT_TRUE(i.contains(0b11));
  EXPECT_FALSE(i.contains(0b01));
  const Cube c = Cube::universe().with_literal(0, false);
  EXPECT_FALSE(a.intersects(c));
}

TEST(Cube, NumMinterms) {
  EXPECT_EQ(Cube::universe().num_minterms(4), 16u);
  EXPECT_EQ(Cube::minterm(3, 4).num_minterms(4), 1u);
  EXPECT_EQ(Cube::universe().with_literal(0, true).num_minterms(4), 8u);
}

TEST(Cube, ForEachMintermEnumeratesExactlyTheCube) {
  const Cube c = Cube::universe().with_literal(1, true).with_literal(3, false);
  std::set<std::uint64_t> seen;
  for_each_minterm(c, 5, [&](std::uint64_t m) { seen.insert(m); });
  EXPECT_EQ(seen.size(), c.num_minterms(5));
  for (std::uint64_t a = 0; a < 32; ++a) {
    EXPECT_EQ(seen.count(a) == 1, c.contains(a)) << a;
  }
}

TEST(Cube, ForEachMintermOfMinterm) {
  int count = 0;
  for_each_minterm(Cube::minterm(7, 3), 3, [&](std::uint64_t m) {
    EXPECT_EQ(m, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Cover, EvaluateAndLiterals) {
  Cover c(3);
  c.add(Cube::universe().with_literal(0, true).with_literal(1, true));  // ab
  c.add(Cube::universe().with_literal(2, true));                        // c
  EXPECT_EQ(c.num_literals(), 3);
  EXPECT_TRUE(c.evaluate(0b011));
  EXPECT_TRUE(c.evaluate(0b100));
  EXPECT_FALSE(c.evaluate(0b001));
  EXPECT_FALSE(c.evaluate(0b000));
}

TEST(Cover, RemoveContainedCubes) {
  Cover c(3);
  const Cube big = Cube::universe().with_literal(0, true);
  c.add(big.with_literal(1, true));  // contained in big
  c.add(big);
  c.add(big);  // duplicate: exactly one copy survives
  c.remove_contained_cubes();
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.cubes()[0], big);
}

TEST(Cube, ToStringRoundsTrip) {
  const Cube c =
      Cube::universe().with_literal(0, true).with_literal(3, false);
  EXPECT_EQ(c.to_string(5), "1--0-");
}

}  // namespace
}  // namespace ced::logic
