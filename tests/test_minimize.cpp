#include "logic/minimize.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "logic/truth_table.hpp"

namespace ced::logic {
namespace {

SopSpec random_spec(int vars, double on_density, double dc_density,
                    std::uint64_t seed) {
  SopSpec s(vars);
  ced::core::Rng rng(seed);
  for (std::size_t m = 0; m < s.on.size(); ++m) {
    const double u = rng.uniform();
    if (u < on_density) {
      s.on.set(m);
    } else if (u < on_density + dc_density) {
      s.dc.set(m);
    }
  }
  return s;
}

TEST(Espresso, EmptyFunction) {
  SopSpec s(3);
  const Cover c = minimize_espresso(s);
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(cover_implements(c, s));
}

TEST(Espresso, TautologyBecomesUniverseCube) {
  SopSpec s(4);
  s.on.fill(true);
  const Cover c = minimize_espresso(s);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.cubes()[0].num_literals(), 0);
}

TEST(Espresso, SingleMinterm) {
  SopSpec s(5);
  s.on.set(21);
  const Cover c = minimize_espresso(s);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.cubes()[0], Cube::minterm(21, 5));
}

TEST(Espresso, UsesDontCaresToMerge) {
  // ON = {00}, DC = {01, 10, 11}: a single universe cube suffices.
  SopSpec s(2);
  s.on.set(0);
  s.dc.set(1);
  s.dc.set(2);
  s.dc.set(3);
  const Cover c = minimize_espresso(s);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.cubes()[0].num_literals(), 0);
}

TEST(Espresso, XorNeedsTwoCubes) {
  SopSpec s(2);
  s.on.set(0b01);
  s.on.set(0b10);
  const Cover c = minimize_espresso(s);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(cover_implements(c, s));
}

TEST(Exact, MatchesKnownOptimum) {
  // f = a'b' + ab on 2 vars (XNOR): exactly two cubes of two literals.
  SopSpec s(2);
  s.on.set(0b00);
  s.on.set(0b11);
  const Cover c = minimize_exact(s);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.num_literals(), 4);
  EXPECT_TRUE(cover_implements(c, s));
}

TEST(Exact, ClassicFourVarExample) {
  // Classic QM example: f(a,b,c,d) with minimum 3-cube cover.
  SopSpec s(4);
  for (std::uint64_t m : {4u, 8u, 10u, 11u, 12u, 15u}) s.on.set(m);
  for (std::uint64_t m : {9u, 14u}) s.dc.set(m);
  const Cover c = minimize_exact(s);
  EXPECT_TRUE(cover_implements(c, s));
  EXPECT_LE(c.size(), 3u);
}

TEST(Exact, ThrowsOnTooManyVars) {
  EXPECT_THROW(minimize_exact(SopSpec(15)), std::invalid_argument);
}

TEST(CoverImplements, RejectsOffsetViolation) {
  SopSpec s(2);
  s.on.set(0b00);
  Cover c(2);
  c.add(Cube::universe());  // touches OFF minterms
  EXPECT_FALSE(cover_implements(c, s));
}

TEST(CoverImplements, RejectsUncoveredOn) {
  SopSpec s(2);
  s.on.set(0b00);
  s.on.set(0b11);
  Cover c(2);
  c.add(Cube::minterm(0, 2));
  EXPECT_FALSE(cover_implements(c, s));
}

// ---- Property sweep: heuristic output always implements the spec and is
// never smaller than the exact optimum.

struct MinimizeCase {
  int vars;
  double on_density;
  double dc_density;
  std::uint64_t seed;
};

class MinimizeProperty : public ::testing::TestWithParam<MinimizeCase> {};

TEST_P(MinimizeProperty, EspressoImplementsSpec) {
  const auto& pc = GetParam();
  const SopSpec s = random_spec(pc.vars, pc.on_density, pc.dc_density, pc.seed);
  const Cover c = minimize_espresso(s);
  EXPECT_TRUE(cover_implements(c, s));
  // Never worse than the trivial minterm cover.
  EXPECT_LE(c.size(), s.on.count());
}

TEST_P(MinimizeProperty, EspressoAtLeastExactSize) {
  const auto& pc = GetParam();
  if (pc.vars > 6) GTEST_SKIP() << "exact only on small instances";
  const SopSpec s = random_spec(pc.vars, pc.on_density, pc.dc_density, pc.seed);
  const Cover h = minimize_espresso(s);
  const Cover e = minimize_exact(s);
  EXPECT_TRUE(cover_implements(e, s));
  EXPECT_GE(h.size(), e.size());
  // Heuristic should stay within 2x of optimal on these sizes.
  EXPECT_LE(h.size(), 2 * e.size() + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinimizeProperty,
    ::testing::Values(
        MinimizeCase{3, 0.3, 0.1, 1}, MinimizeCase{3, 0.5, 0.0, 2},
        MinimizeCase{4, 0.2, 0.2, 3}, MinimizeCase{4, 0.6, 0.1, 4},
        MinimizeCase{5, 0.4, 0.1, 5}, MinimizeCase{5, 0.1, 0.3, 6},
        MinimizeCase{6, 0.5, 0.05, 7}, MinimizeCase{6, 0.25, 0.25, 8},
        MinimizeCase{8, 0.3, 0.1, 9}, MinimizeCase{8, 0.5, 0.2, 10},
        MinimizeCase{10, 0.4, 0.1, 11}, MinimizeCase{12, 0.3, 0.1, 12}));

TEST(CoverFromOnSet, TrivialCover) {
  SopSpec s(3);
  s.on.set(1);
  s.on.set(6);
  const Cover c = cover_from_on_set(s);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(cover_implements(c, s));
}

}  // namespace
}  // namespace ced::logic
