#include "core/convolutional.hpp"

#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"
#include "core/extract.hpp"
#include "core/rng.hpp"
#include "kiss/kiss.hpp"
#include "sim/faults.hpp"

namespace ced::core {
namespace {

struct Harness {
  fsm::FsmCircuit circuit;
  std::vector<sim::StuckAtFault> faults;
  DetectabilityTable p1;
};

Harness harness_for(const std::string& name) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
  Harness h{fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {}), {}, {}};
  h.faults = sim::enumerate_stuck_at(h.circuit.netlist);
  ExtractOptions opts;
  opts.latency = 1;
  h.p1 = extract_cases(h.circuit, h.faults, opts);
  return h;
}

TEST(Convolutional, RejectsBadInputs) {
  const Harness h = harness_for("traffic");
  EXPECT_THROW(synthesize_convolutional(h.circuit, h.p1, 0),
               std::invalid_argument);
  ExtractOptions o2;
  o2.latency = 2;
  const auto p2 = extract_cases(h.circuit, h.faults, o2);
  EXPECT_THROW(synthesize_convolutional(h.circuit, p2, 2),
               std::invalid_argument);
}

TEST(Convolutional, FaultFreeRunsStaySilent) {
  const Harness h = harness_for("vending");
  const ConvolutionalCed ced = synthesize_convolutional(h.circuit, h.p1, 2);
  ConvolutionalChecker checker(ced);
  Rng rng(5);
  std::uint64_t state = h.circuit.enc.reset_code;
  const std::uint64_t mask = (std::uint64_t{1} << h.circuit.r()) - 1;
  for (int t = 0; t < 256; ++t) {
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t obs = h.circuit.eval(a, state);
    EXPECT_FALSE(checker.step(a, state, obs)) << "t=" << t;
    state = h.circuit.next_state_of(obs);
  }
}

class ConvWindows : public ::testing::TestWithParam<int> {};

TEST_P(ConvWindows, EveryActivationDetectedWithinTwoWindows) {
  const int window = GetParam();
  const Harness h = harness_for("link_rx");
  const ConvolutionalCed ced =
      synthesize_convolutional(h.circuit, h.p1, window);
  Rng rng(7);
  const std::uint64_t mask = (std::uint64_t{1} << h.circuit.r()) - 1;
  std::size_t activations = 0, escapes = 0;
  for (const auto& f : h.faults) {
    const logic::Injection inj = f.injection();
    ConvolutionalChecker checker(ced);
    std::uint64_t state = h.circuit.enc.reset_code;
    int pending = -1;
    for (int t = 0; t < 128; ++t) {
      const std::uint64_t a = rng.next() & mask;
      const std::uint64_t obs = h.circuit.eval(a, state, &inj);
      const bool err = checker.step(a, state, obs);
      if (obs != h.circuit.eval(a, state) && pending < 0) {
        pending = t;
        ++activations;
      }
      if (err) {
        pending = -1;
        state = h.circuit.enc.reset_code;
        checker.reset();
        continue;
      }
      if (pending >= 0 && t - pending + 1 >= 2 * window) {
        ++escapes;
        pending = -1;
        state = h.circuit.enc.reset_code;
        checker.reset();
        continue;
      }
      state = h.circuit.next_state_of(obs);
    }
  }
  EXPECT_GT(activations, 0u);
  // The full-rank tap matrix makes in-window cancellation impossible, so
  // a latency-1 key cover detects every activation by the next sampling
  // point (at most 2*window - 1 transitions later).
  EXPECT_EQ(escapes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Windows, ConvWindows, ::testing::Values(1, 2, 3, 4));

TEST(Convolutional, CostGrowsWithWindow) {
  const Harness h = harness_for("arbiter");
  const auto& lib = logic::CellLibrary::mcnc();
  double prev = 0;
  for (int k = 1; k <= 4; ++k) {
    const ConvolutionalCed ced = synthesize_convolutional(h.circuit, h.p1, k);
    const double area = ced.cost(lib).area;
    EXPECT_GT(area, prev);
    prev = area;
    EXPECT_EQ(ced.registers,
              static_cast<std::size_t>(k) * ced.keys.size());
  }
}

}  // namespace
}  // namespace ced::core
