#include "fsm/fsm.hpp"

#include <gtest/gtest.h>

#include <set>

#include "benchdata/handwritten.hpp"
#include "fsm/analysis.hpp"
#include "fsm/encoded.hpp"
#include "fsm/encoding.hpp"
#include "fsm/synthesize.hpp"
#include "kiss/kiss.hpp"

namespace ced::fsm {
namespace {

Fsm load(const std::string& name) {
  return Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
}

TEST(Fsm, FromKissBasics) {
  const Fsm f = load("seq_detect");
  EXPECT_EQ(f.num_inputs(), 1);
  EXPECT_EQ(f.num_outputs(), 1);
  EXPECT_EQ(f.num_states(), 4);
  EXPECT_EQ(f.state_name(f.reset_state()), "S0");
  EXPECT_EQ(f.edges().size(), 8u);
  EXPECT_TRUE(f.is_complete());
}

TEST(Fsm, EdgeForMatchesCubes) {
  const Fsm f = load("traffic");
  // State GREEN: input 11 goes to YELLOW, 0-/10 stay GREEN.
  const int green = 0;
  const auto e11 = f.edge_for(green, 0b11);
  ASSERT_TRUE(e11.has_value());
  EXPECT_EQ(f.state_name(f.edges()[*e11].to), "YELLOW");
  const auto e00 = f.edge_for(green, 0b00);
  ASSERT_TRUE(e00.has_value());
  EXPECT_EQ(f.state_name(f.edges()[*e00].to), "GREEN");
}

TEST(Fsm, RejectsNondeterminism) {
  const char* bad = ".i 1\n.o 1\n0 A B 0\n0 A C 0\n1 A A 0\n- B A 0\n- C A 0\n.e\n";
  EXPECT_THROW(Fsm::from_kiss(kiss::parse(bad)), std::runtime_error);
}

TEST(Fsm, AcceptsConsistentOverlap) {
  // Overlapping cubes that agree on next state and outputs are legal.
  const char* ok = ".i 2\n.o 1\n0- A B 1\n00 A B 1\n-- B A 0\n.e\n";
  const Fsm f = Fsm::from_kiss(kiss::parse(ok));
  EXPECT_EQ(f.num_states(), 2);
}

TEST(Fsm, ReachabilityFindsAllFromReset) {
  const Fsm f = load("arbiter");
  const auto reach = f.reachable_states();
  for (int s = 0; s < f.num_states(); ++s) {
    EXPECT_TRUE(reach[static_cast<std::size_t>(s)]) << f.state_name(s);
  }
}

TEST(Fsm, IncompleteDetection) {
  const char* partial = ".i 2\n.o 1\n00 A A 0\n-- B A 1\n01 A B 1\n.e\n";
  const Fsm f = Fsm::from_kiss(kiss::parse(partial));
  EXPECT_FALSE(f.is_complete());
}

TEST(Fsm, ToKissRoundTrip) {
  const Fsm f = load("vending");
  const Fsm g = Fsm::from_kiss(f.to_kiss());
  EXPECT_EQ(g.num_states(), f.num_states());
  EXPECT_EQ(g.edges().size(), f.edges().size());
  EXPECT_EQ(g.num_inputs(), f.num_inputs());
}

// ---- Encodings.

TEST(Encoding, BinaryCodesAreDense) {
  const Fsm f = load("link_rx");
  const StateEncoding e = encode_states(f, EncodingKind::kBinary);
  EXPECT_EQ(e.num_bits, 3);
  for (int s = 0; s < f.num_states(); ++s) {
    EXPECT_EQ(e.codes[static_cast<std::size_t>(s)],
              static_cast<std::uint64_t>(s));
  }
  EXPECT_EQ(e.state_of(2), 2);
  EXPECT_EQ(e.state_of(7), -1);
}

TEST(Encoding, GrayAdjacent) {
  const Fsm f = load("link_rx");
  const StateEncoding e = encode_states(f, EncodingKind::kGray);
  for (int s = 0; s + 1 < f.num_states(); ++s) {
    const auto d = e.codes[static_cast<std::size_t>(s)] ^
                   e.codes[static_cast<std::size_t>(s + 1)];
    EXPECT_EQ(std::popcount(d), 1);
  }
}

TEST(Encoding, OneHotWidthEqualsStates) {
  const Fsm f = load("traffic");
  const StateEncoding e = encode_states(f, EncodingKind::kOneHot);
  EXPECT_EQ(e.num_bits, f.num_states());
  std::set<std::uint64_t> codes(e.codes.begin(), e.codes.end());
  EXPECT_EQ(codes.size(), e.codes.size());
  for (auto c : codes) EXPECT_EQ(std::popcount(c), 1);
}

TEST(Encoding, SpreadCodesAreUnique) {
  const Fsm f = load("arbiter");
  const StateEncoding e = encode_states(f, EncodingKind::kSpread);
  std::set<std::uint64_t> codes(e.codes.begin(), e.codes.end());
  EXPECT_EQ(codes.size(), e.codes.size());
  EXPECT_EQ(e.num_bits, 3);
}

// ---- Encoded specification vs. the symbolic STG.

class EncodeAgree : public ::testing::TestWithParam<
                        std::tuple<const char*, EncodingKind>> {};

TEST_P(EncodeAgree, SpecMatchesStg) {
  const Fsm f = load(std::get<0>(GetParam()));
  const EncodedFsm e = encode_fsm(f, std::get<1>(GetParam()));
  const std::uint64_t inputs = std::uint64_t{1} << f.num_inputs();
  for (int st = 0; st < f.num_states(); ++st) {
    const std::uint64_t code = e.encoding.codes[static_cast<std::size_t>(st)];
    for (std::uint64_t a = 0; a < inputs; ++a) {
      const auto edge = f.edge_for(st, a);
      const std::uint64_t alpha = e.pack(a, code);
      if (!edge) {
        for (const auto& spec : e.next_state) EXPECT_TRUE(spec.dc.test(alpha));
        for (const auto& spec : e.outputs) EXPECT_TRUE(spec.dc.test(alpha));
        continue;
      }
      const Edge& ed = f.edges()[*edge];
      const std::uint64_t next_code =
          e.encoding.codes[static_cast<std::size_t>(ed.to)];
      for (int b = 0; b < e.num_state_bits; ++b) {
        const bool want = (next_code >> b) & 1;
        EXPECT_EQ(e.next_state[static_cast<std::size_t>(b)].on.test(alpha),
                  want);
        EXPECT_FALSE(
            e.next_state[static_cast<std::size_t>(b)].dc.test(alpha));
      }
      for (int b = 0; b < e.num_outputs; ++b) {
        const char c = ed.output[static_cast<std::size_t>(b)];
        const auto& spec = e.outputs[static_cast<std::size_t>(b)];
        if (c == '-') {
          EXPECT_TRUE(spec.dc.test(alpha) || spec.on.test(alpha));
        } else {
          EXPECT_EQ(spec.on.test(alpha), c == '1');
          EXPECT_FALSE(spec.dc.test(alpha));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, EncodeAgree,
    ::testing::Combine(::testing::Values("seq_detect", "traffic", "vending",
                                         "arbiter", "modulo5", "link_rx"),
                       ::testing::Values(EncodingKind::kBinary,
                                         EncodingKind::kGray,
                                         EncodingKind::kSpread)));

// ---- Synthesized netlist agrees with the STG on every specified
// transition (for all encodings and minimizers).

class SynthAgree : public ::testing::TestWithParam<
                       std::tuple<const char*, EncodingKind, MinimizerKind>> {};

TEST_P(SynthAgree, NetlistImplementsStg) {
  const Fsm f = load(std::get<0>(GetParam()));
  FsmSynthOptions opts;
  opts.minimizer = std::get<2>(GetParam());
  const FsmCircuit c = synthesize_fsm(f, std::get<1>(GetParam()), opts);
  const std::uint64_t inputs = std::uint64_t{1} << f.num_inputs();
  for (int st = 0; st < f.num_states(); ++st) {
    const std::uint64_t code =
        c.enc.encoding.codes[static_cast<std::size_t>(st)];
    for (std::uint64_t a = 0; a < inputs; ++a) {
      const auto edge = f.edge_for(st, a);
      if (!edge) continue;  // unspecified: any circuit behaviour is fine
      const Edge& ed = f.edges()[*edge];
      const std::uint64_t obs = c.eval(a, code);
      const std::uint64_t next_code =
          c.enc.encoding.codes[static_cast<std::size_t>(ed.to)];
      EXPECT_EQ(c.next_state_of(obs), next_code);
      for (int b = 0; b < c.o(); ++b) {
        const char want = ed.output[static_cast<std::size_t>(b)];
        if (want == '-') continue;
        EXPECT_EQ((obs >> (c.s() + b)) & 1,
                  static_cast<std::uint64_t>(want == '1'));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, SynthAgree,
    ::testing::Combine(::testing::Values("seq_detect", "traffic", "vending",
                                         "arbiter", "modulo5", "link_rx"),
                       ::testing::Values(EncodingKind::kBinary,
                                         EncodingKind::kGray,
                                         EncodingKind::kOneHot),
                       ::testing::Values(MinimizerKind::kEspresso,
                                         MinimizerKind::kNone)));

// ---- STG analysis.

TEST(Analysis, SelfLoopStats) {
  const Fsm f = load("traffic");
  const StgStats st = analyze_stg(f);
  EXPECT_EQ(st.num_states, 3);
  EXPECT_EQ(st.num_edges, 7);
  EXPECT_EQ(st.num_self_loops, 4);
  EXPECT_EQ(st.states_with_self_loop, 3);
  EXPECT_EQ(st.reachable_states, 3);
  EXPECT_EQ(st.shortest_cycle, 1);
}

TEST(Analysis, ShortestCyclePerState) {
  // Pure ring of 3 states: every state's shortest cycle is 3.
  const char* ring = ".i 1\n.o 1\n- A B 0\n- B C 0\n- C A 0\n.e\n";
  const Fsm f = Fsm::from_kiss(kiss::parse(ring));
  const auto cyc = shortest_cycle_per_state(f);
  for (int c : cyc) EXPECT_EQ(c, 3);
  EXPECT_EQ(analyze_stg(f).shortest_cycle, 3);
}

TEST(Analysis, AcyclicTailReportsZero) {
  const char* tail = ".i 1\n.o 1\n- A B 0\n- B C 0\n- C C 0\n.e\n";
  const Fsm f = Fsm::from_kiss(kiss::parse(tail));
  const auto cyc = shortest_cycle_per_state(f);
  EXPECT_EQ(cyc[0], 0);
  EXPECT_EQ(cyc[1], 0);
  EXPECT_EQ(cyc[2], 1);
}

}  // namespace
}  // namespace ced::fsm
