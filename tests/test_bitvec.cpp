#include "logic/bitvec.hpp"

#include <gtest/gtest.h>

namespace ced::logic {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.none());
}

TEST(BitVec, ConstructAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.none());
  EXPECT_FALSE(v.any());
}

TEST(BitVec, ConstructAllOne) {
  BitVec v(130, true);
  EXPECT_EQ(v.count(), 130u);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(129));
}

TEST(BitVec, SetResetTest) {
  BitVec v(100);
  v.set(3);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.test(3));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(99));
  EXPECT_FALSE(v.test(4));
  EXPECT_EQ(v.count(), 3u);
  v.reset(64);
  EXPECT_FALSE(v.test(64));
  EXPECT_EQ(v.count(), 2u);
}

TEST(BitVec, ComplementRespectsSize) {
  BitVec v(70);
  v.set(0);
  BitVec c = ~v;
  EXPECT_EQ(c.count(), 69u);
  EXPECT_FALSE(c.test(0));
  EXPECT_TRUE(c.test(69));
  // Padding bits must stay zero: complementing twice round-trips.
  EXPECT_EQ(~c, v);
}

TEST(BitVec, BitwiseOps) {
  BitVec a(80), b(80);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(2);
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a ^ b).count(), 2u);
  BitVec d = a;
  d.subtract(b);
  EXPECT_TRUE(d.test(1));
  EXPECT_FALSE(d.test(70));
}

TEST(BitVec, SizeMismatchThrows) {
  BitVec a(10), b(11);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW((void)a.intersects(b), std::invalid_argument);
}

TEST(BitVec, SubsetAndIntersect) {
  BitVec a(128), b(128);
  a.set(5);
  a.set(100);
  b.set(5);
  b.set(100);
  b.set(7);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  BitVec c(128);
  c.set(6);
  EXPECT_FALSE(a.intersects(c));
}

TEST(BitVec, FindFirstNext) {
  BitVec v(200);
  EXPECT_EQ(v.find_first(), 200u);
  v.set(63);
  v.set(64);
  v.set(199);
  EXPECT_EQ(v.find_first(), 63u);
  EXPECT_EQ(v.find_next(63), 64u);
  EXPECT_EQ(v.find_next(64), 199u);
  EXPECT_EQ(v.find_next(199), 200u);
}

TEST(BitVec, IterationMatchesCount) {
  BitVec v(333);
  for (std::size_t i = 0; i < 333; i += 7) v.set(i);
  std::size_t seen = 0;
  for (std::size_t i = v.find_first(); i < v.size(); i = v.find_next(i)) {
    EXPECT_EQ(i % 7, 0u);
    ++seen;
  }
  EXPECT_EQ(seen, v.count());
}

TEST(BitVec, Fill) {
  BitVec v(77);
  v.fill(true);
  EXPECT_EQ(v.count(), 77u);
  v.fill(false);
  EXPECT_TRUE(v.none());
}

}  // namespace
}  // namespace ced::logic
