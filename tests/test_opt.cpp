#include "logic/opt.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "logic/factor.hpp"
#include "logic/minimize.hpp"
#include "logic/synth.hpp"
#include "logic/truth_table.hpp"

namespace ced::logic {
namespace {

/// Builds a random messy netlist (with constants, buffers, duplicate
/// fan-ins and dead logic) for equivalence checking.
Netlist random_netlist(std::uint64_t seed, int inputs, int gates) {
  ced::core::Rng rng(seed);
  Netlist n;
  std::vector<std::uint32_t> nets;
  for (int i = 0; i < inputs; ++i) nets.push_back(n.add_input("i"));
  nets.push_back(n.add_const(false));
  nets.push_back(n.add_const(true));
  for (int g = 0; g < gates; ++g) {
    const GateType t = static_cast<GateType>(3 + rng.next() % 8);
    const int fanin = (t == GateType::kBuf || t == GateType::kNot)
                          ? 1
                          : 1 + static_cast<int>(rng.next() % 4);
    std::vector<std::uint32_t> fi;
    for (int k = 0; k < fanin; ++k) fi.push_back(nets[rng.next() % nets.size()]);
    nets.push_back(n.add_gate(t, fi));
  }
  // A few outputs picked from the tail; earlier gates may be dead.
  for (int o = 0; o < 3; ++o) {
    n.mark_output(nets[nets.size() - 1 - static_cast<std::size_t>(o) * 3],
                  "o" + std::to_string(o));
  }
  return n;
}

void expect_equivalent(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  const std::uint64_t space = std::uint64_t{1} << a.num_inputs();
  for (std::uint64_t v = 0; v < space; ++v) {
    ASSERT_EQ(a.eval_single(v), b.eval_single(v)) << "assignment " << v;
  }
}

class OptimizeEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeEquivalence, PreservesAllOutputs) {
  const Netlist n = random_netlist(GetParam(), 6, 60);
  OptimizeStats stats;
  const Netlist opt = optimize_netlist(n, {}, &stats);
  expect_equivalent(n, opt);
  EXPECT_LE(opt.gate_count(), n.gate_count());
  EXPECT_EQ(stats.gates_before, n.gate_count());
  EXPECT_EQ(stats.gates_after, opt.gate_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(Optimize, FoldsDominatingConstants) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto zero = n.add_const(false);
  const auto one = n.add_const(true);
  n.mark_output(n.add_gate(GateType::kAnd, {a, zero}), "and0");
  n.mark_output(n.add_gate(GateType::kOr, {a, one}), "or1");
  n.mark_output(n.add_gate(GateType::kAnd, {a, one}), "and1");
  const Netlist opt = optimize_netlist(n);
  EXPECT_EQ(opt.gate_count(), 0u);
  expect_equivalent(n, opt);
}

TEST(Optimize, CancelsComplementaryFanins) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto na = n.add_gate(GateType::kNot, {a});
  n.mark_output(n.add_gate(GateType::kAnd, {a, na}), "zero");
  n.mark_output(n.add_gate(GateType::kOr, {a, na}), "one");
  n.mark_output(n.add_gate(GateType::kXor, {a, a}), "xzero");
  const Netlist opt = optimize_netlist(n);
  EXPECT_EQ(opt.gate_count(), 0u);
  expect_equivalent(n, opt);
}

TEST(Optimize, CollapsesDoubleInverters) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto n1 = n.add_gate(GateType::kNot, {a});
  const auto n2 = n.add_gate(GateType::kNot, {n1});
  n.mark_output(n2, "a_again");
  const Netlist opt = optimize_netlist(n);
  EXPECT_EQ(opt.gate_count(), 0u);
  expect_equivalent(n, opt);
}

TEST(Optimize, MergesStructuralDuplicates) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g1 = n.add_gate(GateType::kAnd, {a, b});
  const auto g2 = n.add_gate(GateType::kAnd, {b, a});  // same gate, reordered
  n.mark_output(n.add_gate(GateType::kXor, {g1, g2}), "zero");
  OptimizeStats stats;
  const Netlist opt = optimize_netlist(n, {}, &stats);
  expect_equivalent(n, opt);
  // XOR of two identical signals folds to constant 0.
  EXPECT_EQ(opt.gate_count(), 0u);
}

TEST(Optimize, SweepsDeadLogic) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.add_gate(GateType::kAnd, {a, b});  // dead
  n.add_gate(GateType::kOr, {a, b});   // dead
  const auto live = n.add_gate(GateType::kXor, {a, b});
  n.mark_output(live, "f");
  OptimizeStats stats;
  const Netlist opt = optimize_netlist(n, {}, &stats);
  EXPECT_EQ(opt.gate_count(), 1u);
  EXPECT_EQ(stats.swept, 2u);
  expect_equivalent(n, opt);
}

TEST(Optimize, KeepsInterfaceNamesAndOrder) {
  Netlist n;
  n.add_input("alpha");
  const auto b = n.add_input("beta");
  n.mark_output(b, "out_beta");
  const Netlist opt = optimize_netlist(n);
  ASSERT_EQ(opt.num_inputs(), 2u);
  EXPECT_EQ(opt.input_name(0), "alpha");
  EXPECT_EQ(opt.input_name(1), "beta");
  ASSERT_EQ(opt.num_outputs(), 1u);
  EXPECT_EQ(opt.output_name(0), "out_beta");
}

// ---- Factoring.

SopSpec random_spec(int vars, double density, std::uint64_t seed) {
  SopSpec s(vars);
  ced::core::Rng rng(seed);
  for (std::size_t m = 0; m < s.on.size(); ++m) {
    if (rng.uniform() < density) s.on.set(m);
  }
  return s;
}

class FactorEquivalence
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {
};

TEST_P(FactorEquivalence, FactoredFormComputesTheCover) {
  const auto [vars, density, seed] = GetParam();
  const SopSpec spec = random_spec(vars, density, seed);
  const Cover cover = minimize_espresso(spec);
  const FactorNode f = factor_cover(cover);
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << vars); ++a) {
    EXPECT_EQ(factor_evaluate(f, a), cover.evaluate(a)) << a;
  }
  // Factoring never increases the literal count.
  EXPECT_LE(factor_literal_count(f), cover.num_literals());
}

TEST_P(FactorEquivalence, SynthesizedFactorMatches) {
  const auto [vars, density, seed] = GetParam();
  const SopSpec spec = random_spec(vars, density, seed);
  const Cover cover = minimize_espresso(spec);
  Netlist n;
  std::vector<std::uint32_t> var_nets;
  for (int i = 0; i < vars; ++i) var_nets.push_back(n.add_input("x"));
  SynthContext ctx(n);
  n.mark_output(synthesize_factor(ctx, factor_cover(cover), var_nets), "f");
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << vars); ++a) {
    EXPECT_EQ(n.eval_single(a) & 1,
              static_cast<std::uint64_t>(cover.evaluate(a)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FactorEquivalence,
    ::testing::Values(std::make_tuple(3, 0.4, 21ull),
                      std::make_tuple(4, 0.3, 22ull),
                      std::make_tuple(5, 0.5, 23ull),
                      std::make_tuple(6, 0.2, 24ull),
                      std::make_tuple(6, 0.6, 25ull),
                      std::make_tuple(7, 0.35, 26ull),
                      std::make_tuple(8, 0.25, 27ull),
                      std::make_tuple(8, 0.5, 28ull)));

TEST(Factor, ConstantsAndSingles) {
  Cover empty(3);
  EXPECT_EQ(factor_cover(empty).kind, FactorNode::Kind::kConst);
  EXPECT_FALSE(factor_cover(empty).value);

  Cover taut(3);
  taut.add(Cube::universe());
  EXPECT_TRUE(factor_cover(taut).value);

  Cover lit(3);
  lit.add(Cube::universe().with_literal(1, false));
  const FactorNode f = factor_cover(lit);
  EXPECT_EQ(f.kind, FactorNode::Kind::kLiteral);
  EXPECT_EQ(f.var, 1);
  EXPECT_FALSE(f.positive);
}

TEST(Factor, ExtractsCommonCube) {
  // ab + ac = a(b + c): 3 literal leaves instead of 4.
  Cover c(3);
  c.add(Cube::universe().with_literal(0, true).with_literal(1, true));
  c.add(Cube::universe().with_literal(0, true).with_literal(2, true));
  const FactorNode f = factor_cover(c);
  EXPECT_EQ(factor_literal_count(f), 3);
}

}  // namespace
}  // namespace ced::logic
