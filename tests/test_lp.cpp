#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace ced::lp {
namespace {

TEST(Simplex, TrivialBoundsOnly) {
  LpProblem p;
  const int x = p.add_variable(0, 10, 1.0);
  p.set_objective_sense(Objective::kMaximize);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 10.0, 1e-7);
  EXPECT_NEAR(r.objective, 10.0, 1e-7);
}

TEST(Simplex, ClassicTwoVarMax) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4,0), z = 12.
  LpProblem p;
  const int x = p.add_variable(0, kInfinity, 3.0);
  const int y = p.add_variable(0, kInfinity, 2.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::kLe, 4);
  p.add_constraint({{x, 1}, {y, 3}}, Relation::kLe, 6);
  p.set_objective_sense(Objective::kMaximize);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 12.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 4.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 0.0, 1e-6);
}

TEST(Simplex, MinimizationWithGe) {
  // min 2x + 3y s.t. x + y >= 10, x <= 6 -> x=6, y=4, z=24.
  LpProblem p;
  const int x = p.add_variable(0, 6, 2.0);
  const int y = p.add_variable(0, kInfinity, 3.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::kGe, 10);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 24.0, 1e-6);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + 2y = 4, 0 <= x,y <= 3 -> y=2, x=0, z=2.
  LpProblem p;
  const int x = p.add_variable(0, 3, 1.0);
  const int y = p.add_variable(0, 3, 1.0);
  p.add_constraint({{x, 1}, {y, 2}}, Relation::kEq, 4);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 2.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem p;
  const int x = p.add_variable(0, 1, 1.0);
  p.add_constraint({{x, 1}}, Relation::kGe, 2);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleSystem) {
  LpProblem p;
  const int x = p.add_variable(0, kInfinity, 1.0);
  const int y = p.add_variable(0, kInfinity, 1.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::kLe, 1);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::kGe, 3);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p;
  const int x = p.add_variable(0, kInfinity, 1.0);
  p.set_objective_sense(Objective::kMaximize);
  p.add_constraint({{x, -1}}, Relation::kLe, 0);  // x >= 0, no upper bound
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x s.t. x >= -5 -> x = -5.
  LpProblem p;
  const int x = p.add_variable(-5, 5, 1.0);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], -5.0, 1e-7);
}

TEST(Simplex, NegativeRhsRowsHandled) {
  // min x + y s.t. -x - y <= -4  (i.e. x + y >= 4), x,y in [0,3].
  LpProblem p;
  const int x = p.add_variable(0, 3, 1.0);
  const int y = p.add_variable(0, 3, 1.0);
  p.add_constraint({{x, -1}, {y, -1}}, Relation::kLe, -4);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-6);
}

TEST(Simplex, UpperBoundedVariablesBindAtBounds) {
  // max x + y s.t. x + y <= 10, x <= 3, y <= 4 (bounds) -> z = 7.
  LpProblem p;
  const int x = p.add_variable(0, 3, 1.0);
  const int y = p.add_variable(0, 4, 1.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::kLe, 10);
  p.set_objective_sense(Objective::kMaximize);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-6);
}

TEST(Simplex, DegenerateDoesNotCycle) {
  // A classic degenerate instance (Beale-like); must terminate optimally.
  LpProblem p;
  const int x1 = p.add_variable(0, kInfinity, -0.75);
  const int x2 = p.add_variable(0, kInfinity, 150);
  const int x3 = p.add_variable(0, kInfinity, -0.02);
  const int x4 = p.add_variable(0, kInfinity, 6);
  p.add_constraint({{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}},
                   Relation::kLe, 0);
  p.add_constraint({{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}},
                   Relation::kLe, 0);
  p.add_constraint({{x3, 1}}, Relation::kLe, 1);
  const LpResult r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-6);
}

TEST(Simplex, SolutionSatisfiesAllConstraints) {
  // Random feasible LPs: returned point must satisfy every constraint.
  ced::core::Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    LpProblem p;
    const int nv = 3 + static_cast<int>(rng.next() % 6);
    std::vector<int> vars;
    for (int v = 0; v < nv; ++v) {
      vars.push_back(p.add_variable(0, 1 + rng.uniform() * 4,
                                    rng.uniform() * 2 - 1));
    }
    // Constraints through a known interior point to guarantee feasibility.
    std::vector<double> x0;
    for (int v = 0; v < nv; ++v) x0.push_back(p.upper()[v] * 0.5);
    const int nc = 2 + static_cast<int>(rng.next() % 5);
    std::vector<std::vector<double>> coeffs;
    for (int c = 0; c < nc; ++c) {
      std::vector<std::pair<int, double>> terms;
      std::vector<double> row(static_cast<std::size_t>(nv), 0.0);
      double lhs = 0;
      for (int v = 0; v < nv; ++v) {
        const double a = rng.uniform() * 4 - 2;
        row[static_cast<std::size_t>(v)] = a;
        terms.emplace_back(vars[static_cast<std::size_t>(v)], a);
        lhs += a * x0[static_cast<std::size_t>(v)];
      }
      const int kind = static_cast<int>(rng.next() % 3);
      if (kind == 0) {
        p.add_constraint(terms, Relation::kLe, lhs + rng.uniform());
      } else if (kind == 1) {
        p.add_constraint(terms, Relation::kGe, lhs - rng.uniform());
      } else {
        p.add_constraint(terms, Relation::kEq, lhs);
      }
      coeffs.push_back(row);
    }
    const LpResult r = solve(p);
    ASSERT_EQ(r.status, Status::kOptimal) << "trial " << trial;
    for (int c = 0; c < nc; ++c) {
      double lhs = 0;
      for (int v = 0; v < nv; ++v) {
        lhs += coeffs[static_cast<std::size_t>(c)][static_cast<std::size_t>(v)] *
               r.x[static_cast<std::size_t>(v)];
      }
      const double rhs = p.rhs()[static_cast<std::size_t>(c)];
      switch (p.relations()[static_cast<std::size_t>(c)]) {
        case Relation::kLe: EXPECT_LE(lhs, rhs + 1e-6); break;
        case Relation::kGe: EXPECT_GE(lhs, rhs - 1e-6); break;
        case Relation::kEq: EXPECT_NEAR(lhs, rhs, 1e-6); break;
      }
    }
    for (int v = 0; v < nv; ++v) {
      EXPECT_GE(r.x[static_cast<std::size_t>(v)], p.lower()[v] - 1e-9);
      EXPECT_LE(r.x[static_cast<std::size_t>(v)], p.upper()[v] + 1e-9);
    }
  }
}

TEST(LpProblem, RejectsBadInput) {
  LpProblem p;
  EXPECT_THROW(p.add_variable(2, 1), std::invalid_argument);
  EXPECT_THROW(p.add_variable(-kInfinity, 1), std::invalid_argument);
  p.add_variable(0, 1);
  EXPECT_THROW(p.add_constraint({{5, 1.0}}, Relation::kLe, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ced::lp
