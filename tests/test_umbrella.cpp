// Compile-level test: the umbrella header is self-contained and the
// public entry points are reachable through it.

#include "ced.hpp"

#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"

namespace {

TEST(Umbrella, PublicApiReachable) {
  const ced::fsm::Fsm f = ced::fsm::Fsm::from_kiss(
      ced::kiss::parse(ced::benchdata::handwritten_kiss("traffic")));
  ced::core::PipelineOptions opts;
  opts.latency = 1;
  const ced::core::PipelineReport rep = ced::run_pipeline(f, ced::RunConfig::wrap(opts));
  EXPECT_GT(rep.num_trees, 0);
  EXPECT_TRUE(ced::logic::CellLibrary::mcnc().inv > 0.0);
}

}  // namespace
