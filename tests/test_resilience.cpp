// Fault-injection harness for the resilience layer: starve each stage of
// its budget (cases, LP pivots, rounding attempts, B&B nodes, wall-clock)
// and assert that the run still terminates with a classified status, the
// degradation is recorded, and the returned cover is usable for the cases
// that were actually enumerated.

#include "core/resilience.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "benchdata/generator.hpp"
#include "benchdata/handwritten.hpp"
#include "core/exact.hpp"
#include "core/extract.hpp"
#include "core/greedy.hpp"
#include "core/parity.hpp"
#include "core/pipeline.hpp"
#include "core/run.hpp"
#include "kiss/kiss.hpp"
#include "lp/simplex.hpp"
#include "sim/faults.hpp"

namespace ced::core {
namespace {

fsm::Fsm machine(const std::string& name) {
  return fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
}

DetectabilityTable table_for(const std::string& name, int latency) {
  const fsm::FsmCircuit c =
      fsm::synthesize_fsm(machine(name), fsm::EncodingKind::kBinary, {});
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = latency;
  return extract_cases(c, faults, opts);
}

// An already-expired deadline: armed, and in the past by construction.
Deadline expired_deadline() {
  Deadline d = Deadline::after(1e-12);
  while (!d.expired()) {
  }
  return d;
}

// ---------------------------------------------------------------- budget

TEST(Resilience, DefaultBudgetIsUnlimitedAndDeadlineUnarmed) {
  RunBudget b;
  EXPECT_TRUE(b.unlimited());
  Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(Deadline::from(b).armed());
  b.max_cases = 1;
  EXPECT_FALSE(b.unlimited());
}

TEST(Resilience, ArmedDeadlineExpires) {
  const Deadline d = expired_deadline();
  EXPECT_TRUE(d.armed());
  EXPECT_TRUE(d.expired());
}

TEST(Resilience, ReportClassifiesDegradation) {
  ResilienceReport r;
  EXPECT_FALSE(r.degraded());
  EXPECT_TRUE(r.summary().empty());
  r.record(Stage::kLp, StatusCode::kTruncated, "pivot budget exhausted");
  EXPECT_TRUE(r.degraded());
  EXPECT_NE(r.summary().find("pivot budget"), std::string::npos);
}

// ------------------------------------------------------------ extraction

TEST(Resilience, ExtractionDeadlineFreezesTables) {
  const fsm::FsmCircuit c =
      fsm::synthesize_fsm(machine("link_rx"), fsm::EncodingKind::kBinary, {});
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = 3;
  opts.deadline = expired_deadline();
  const DetectabilityTable t = extract_cases(c, faults, opts);
  EXPECT_TRUE(t.truncated);
  EXPECT_NE(t.truncation_reason.find("wall-clock"), std::string::npos);
}

// --------------------------------------------------------------- simplex

TEST(Resilience, SimplexHonoursIterationAndTimeBudgets) {
  // A small LP the solver would normally finish: min x+y s.t. x+y >= 1.
  lp::LpProblem p;
  const int x = p.add_variable(0.0, 1.0, 1.0);
  const int y = p.add_variable(0.0, 1.0, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Relation::kGe, 1.0);

  lp::SolverOptions normal;
  const lp::LpResult ok = lp::solve(p, normal);
  EXPECT_EQ(ok.status, lp::Status::kOptimal);
  EXPECT_GT(ok.iterations, 0);

  lp::SolverOptions timed;
  timed.deadline = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1);
  const lp::LpResult late = lp::solve(p, timed);
  EXPECT_EQ(late.status, lp::Status::kTimeLimit);
}

// ---------------------------------------------------------------- greedy

TEST(Resilience, GreedyClosesOutUnderExpiredDeadline) {
  const DetectabilityTable t = table_for("traffic", 2);
  GreedyOptions opts;
  opts.deadline = expired_deadline();
  GreedyStats stats;
  const auto cover = greedy_cover(t, opts, &stats);
  EXPECT_TRUE(stats.deadline_hit);
  EXPECT_GT(stats.single_bit_completions, 0);
  EXPECT_TRUE(covers_all(cover, t));
}

// ----------------------------------------------------------------- exact

TEST(Resilience, ExactReportsNodeBudgetExhaustion) {
  const DetectabilityTable t = table_for("link_rx", 2);
  ExactOptions opts;
  opts.max_nodes = 1;
  ExactOutcome outcome;
  const auto r = exact_min_cover(t, opts, &outcome);
  EXPECT_FALSE(r.has_value());
  EXPECT_TRUE(outcome.node_budget_hit);
  EXPECT_FALSE(outcome.uncoverable);
}

TEST(Resilience, ExactReportsDeadlineExhaustion) {
  const DetectabilityTable t = table_for("link_rx", 2);
  ExactOptions opts;
  opts.deadline = expired_deadline();
  ExactOutcome outcome;
  const auto r = exact_min_cover(t, opts, &outcome);
  EXPECT_FALSE(r.has_value());
  EXPECT_TRUE(outcome.deadline_hit);
}

// ------------------------------------------------------- cascade / floor

TEST(Resilience, DuplicationFloorAlwaysCovers) {
  for (const char* name : {"traffic", "link_rx", "seq_detect", "vending"}) {
    const DetectabilityTable t = table_for(name, 2);
    const auto floor = duplication_floor_cover(t);
    EXPECT_TRUE(covers_all(floor, t)) << name;
    for (ParityFunc b : floor) {
      EXPECT_EQ(std::popcount(b), 1) << name;  // single-bit by construction
    }
  }
}

TEST(Resilience, CascadeFallsFromExactToLp) {
  const DetectabilityTable t = table_for("traffic", 2);
  PipelineOptions opts;
  opts.solver = SolverKind::kExact;
  opts.budget.max_exact_nodes = 1;
  ResilienceReport res;
  res.solver_requested = CascadeLevel::kExact;
  res.solver_used = CascadeLevel::kExact;
  Algorithm1Stats stats;
  const auto cover = select_parities_resilient(t, opts, Deadline::from(opts.budget),
                                               &stats, {}, res);
  EXPECT_TRUE(covers_all(cover, t));
  EXPECT_TRUE(res.degraded());
  EXPECT_NE(res.solver_used, CascadeLevel::kExact);
  ASSERT_FALSE(res.events.empty());
  EXPECT_EQ(res.events.front().stage, Stage::kExact);
}

TEST(Resilience, CascadeFallsToFloorWhenWallClockGone) {
  const DetectabilityTable t = table_for("traffic", 2);
  PipelineOptions opts;
  ResilienceReport res;
  Algorithm1Stats stats;
  const auto cover =
      select_parities_resilient(t, opts, expired_deadline(), &stats, {}, res);
  EXPECT_TRUE(covers_all(cover, t));
  EXPECT_TRUE(res.degraded());
  EXPECT_EQ(res.solver_used, CascadeLevel::kDuplication);
}

// -------------------------------------------------------------- pipeline

TEST(Resilience, UnbudgetedPipelineRunsClean) {
  PipelineOptions opts;
  opts.latency = 2;
  const PipelineReport rep = ced::run_pipeline(machine("traffic"), RunConfig::wrap(opts));
  EXPECT_TRUE(rep.resilience.status.ok());
  EXPECT_FALSE(rep.resilience.degraded());
  EXPECT_TRUE(rep.resilience.events.empty());
}

TEST(Resilience, PipelineSurvivesCaseStarvation) {
  PipelineOptions opts;
  opts.latency = 3;
  opts.budget.max_cases = 5;
  const PipelineReport rep = ced::run_pipeline(machine("link_rx"), RunConfig::wrap(opts));
  EXPECT_TRUE(rep.resilience.extraction_truncated);
  EXPECT_TRUE(rep.resilience.degraded());
  EXPECT_EQ(rep.resilience.status.code, StatusCode::kTruncated);
  EXPECT_FALSE(rep.resilience.events.empty());
  // The cover is still usable for the cases that were enumerated.
  EXPECT_GT(rep.num_trees, 0);
  EXPECT_GT(rep.num_cases, 0u);
}

TEST(Resilience, PipelineSurvivesLpStarvation) {
  PipelineOptions opts;
  opts.latency = 2;
  opts.budget.max_lp_iterations = 1;
  const PipelineReport rep = ced::run_pipeline(machine("vending"), RunConfig::wrap(opts));
  // Must terminate with a usable cover whatever path it took.
  EXPECT_GT(rep.num_trees, 0);
  // Rebuild the same table and check the cover against it.
  const DetectabilityTable t = table_for("vending", 2);
  EXPECT_TRUE(covers_all(rep.parities, t));
}

TEST(Resilience, PipelineSurvivesRoundingStarvation) {
  PipelineOptions opts;
  opts.latency = 2;
  opts.budget.max_rounding_attempts = 1;
  const PipelineReport rep = ced::run_pipeline(machine("traffic"), RunConfig::wrap(opts));
  EXPECT_GT(rep.num_trees, 0);
  const DetectabilityTable t = table_for("traffic", 2);
  EXPECT_TRUE(covers_all(rep.parities, t));
}

TEST(Resilience, PipelineSurvivesWallClockStarvation) {
  PipelineOptions opts;
  opts.latency = 3;
  opts.budget.wall_seconds = 1e-9;
  const PipelineReport rep = ced::run_pipeline(machine("link_rx"), RunConfig::wrap(opts));
  EXPECT_TRUE(rep.resilience.degraded());
  EXPECT_FALSE(rep.resilience.status.code == StatusCode::kInternal);
}

TEST(Resilience, GeneratedAdversarialFsmUnderTinyWallBudget) {
  // A generated (larger) machine under a budget far too small to finish.
  // Whatever the timing, the run must terminate with a classified status —
  // never an exception — and any degradation must be recorded.
  benchdata::SyntheticSpec spec;
  spec.name = "adversarial";
  spec.states = 24;
  spec.inputs = 4;
  spec.outputs = 4;
  spec.seed = 7;
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::generate_kiss(spec)));
  PipelineOptions opts;
  opts.latency = 3;
  opts.budget.wall_seconds = 5e-4;
  const PipelineReport rep = ced::run_pipeline(f, RunConfig::wrap(opts));
  EXPECT_NE(rep.resilience.status.code, StatusCode::kInternal);
  EXPECT_NE(rep.resilience.status.code, StatusCode::kInvalidInput);
  if (!rep.resilience.degraded()) {
    EXPECT_TRUE(rep.resilience.status.ok());
  }
}

TEST(Resilience, ExactRequestWithNodeStarvationDegradesNotThrows) {
  PipelineOptions opts;
  opts.latency = 2;
  opts.solver = SolverKind::kExact;
  opts.budget.max_exact_nodes = 1;
  const PipelineReport rep = ced::run_pipeline(machine("traffic"), RunConfig::wrap(opts));
  EXPECT_TRUE(rep.resilience.degraded());
  EXPECT_EQ(rep.resilience.solver_requested, CascadeLevel::kExact);
  EXPECT_NE(rep.resilience.solver_used, CascadeLevel::kExact);
  EXPECT_GT(rep.num_trees, 0);
  const DetectabilityTable t = table_for("traffic", 2);
  EXPECT_TRUE(covers_all(rep.parities, t));
}

TEST(Resilience, SweepClassifiesBadLatencyAsInvalidInput) {
  const std::vector<int> ps{0};
  PipelineOptions opts;
  const auto reps = ced::run_latency_sweep(machine("traffic"), ps, RunConfig::wrap(opts));
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].resilience.status.code, StatusCode::kInvalidInput);
  EXPECT_TRUE(reps[0].resilience.degraded());
}

TEST(Resilience, TruncatedSweepDisablesWarmStartShortcut) {
  // With a tiny case budget, every latency must be solved from its own
  // (truncated) table — the cross-latency assignment shortcut is unsound
  // on incomplete tables. All reports must still carry covers.
  const std::vector<int> ps{1, 2, 3};
  PipelineOptions opts;
  opts.budget.max_cases = 4;
  const auto reps = ced::run_latency_sweep(machine("link_rx"), ps, RunConfig::wrap(opts));
  ASSERT_EQ(reps.size(), 3u);
  for (const auto& r : reps) {
    EXPECT_TRUE(r.resilience.extraction_truncated);
    EXPECT_GT(r.num_trees, 0);
  }
}

// ----------------------------------------------------------- status type

TEST(Resilience, StatusAndResultBasics) {
  const Status ok = Status::make_ok();
  EXPECT_TRUE(ok.ok());
  const Status bad = Status::invalid_input(Stage::kParse, "boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.to_text().find("boom"), std::string::npos);
  EXPECT_NE(bad.to_text().find("parse"), std::string::npos);

  Result<int> good = 7;
  ASSERT_TRUE(good);
  EXPECT_EQ(*good, 7);
  Result<int> err = bad;
  EXPECT_FALSE(err);
  EXPECT_EQ(err.status().code, StatusCode::kInvalidInput);
}

}  // namespace
}  // namespace ced::core
